module mccp

go 1.24
