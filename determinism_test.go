// Differential determinism tests: the simulation kernel's fast paths
// (PicoBlaze instruction batching, crossbar burst transfers, bulk FIFO
// moves, the windowed GHASH/AES functional models) must be invisible in
// virtual time. Every workload here runs twice on the fast kernel (run-to-
// run determinism) and once against the retained cycle-by-cycle reference
// path (sim.CompatDefault), asserting identical cycle counts, throughput
// figures and packet digests. These tests are the guard that keeps the
// fast path honest forever: any divergence — a reordered event, a word
// arriving a cycle early — shows up as a changed cycle count or digest.
package mccp_test

import (
	"reflect"
	"testing"

	"mccp/internal/arrivals"
	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/harness"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/server"
	"mccp/internal/sim"
)

// onReference runs fn with every engine created inside forced onto the
// cycle-by-cycle reference path.
func onReference(fn func()) {
	sim.CompatDefault = true
	defer func() { sim.CompatDefault = false }()
	fn()
}

func TestFastPathTableIIIdentical(t *testing.T) {
	cells := []struct {
		name string
		fam  cryptocore.Family
		m    harness.Mapping
		kb   int
	}{
		{"GCM/1core/128", cryptocore.FamilyGCM, harness.GCM1, 16},
		{"GCM/4x1/128", cryptocore.FamilyGCM, harness.GCM4x1, 16},
		{"GCM/1core/256", cryptocore.FamilyGCM, harness.GCM1, 32},
		{"CCM/1core/128", cryptocore.FamilyCCM, harness.CCM1, 16},
		{"CCM/2core/128", cryptocore.FamilyCCM, harness.CCM2, 16},
		{"CCM/2x2/128", cryptocore.FamilyCCM, harness.CCM2x2, 16},
	}
	for _, c := range cells {
		total := 4 * c.m.Streams
		fast1 := harness.MeasureThroughput(c.fam, c.m, c.kb, harness.PacketBytes, total)
		fast2 := harness.MeasureThroughput(c.fam, c.m, c.kb, harness.PacketBytes, total)
		if fast1 != fast2 {
			t.Errorf("%s: fast path not deterministic: %v vs %v", c.name, fast1, fast2)
		}
		var ref float64
		onReference(func() {
			ref = harness.MeasureThroughput(c.fam, c.m, c.kb, harness.PacketBytes, total)
		})
		if fast1 != ref {
			t.Errorf("%s: fast path %v Mbps != reference %v Mbps", c.name, fast1, ref)
		}
	}
}

func TestFastPathLoopTimesIdentical(t *testing.T) {
	fast := harness.MeasureLoopTimes()
	var ref []harness.LoopTimeRow
	onReference(func() { ref = harness.MeasureLoopTimes() })
	if len(fast) != len(ref) {
		t.Fatalf("row count %d != %d", len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			t.Errorf("%s: fast %v cycles != reference %v cycles",
				fast[i].Name, fast[i].MeasuredCycles, ref[i].MeasuredCycles)
		}
	}
}

func clusterRun(t *testing.T) cluster.WorkloadResult {
	t.Helper()
	res, err := cluster.RunWorkload(cluster.WorkloadConfig{
		Shards:        4,
		Router:        cluster.RouterLeastLoaded,
		QueueRequests: true,
		Packets:       64,
		Sessions:      16,
		Seed:          1,
		BatchWindow:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFastPathClusterIdentical(t *testing.T) {
	fast1 := clusterRun(t)
	fast2 := clusterRun(t)
	var ref cluster.WorkloadResult
	onReference(func() { ref = clusterRun(t) })

	check := func(label string, other cluster.WorkloadResult) {
		if fast1.Metrics.ClusterCycles != other.Metrics.ClusterCycles {
			t.Errorf("%s: cluster cycles %d != %d", label,
				fast1.Metrics.ClusterCycles, other.Metrics.ClusterCycles)
		}
		if fast1.Metrics.Packets != other.Metrics.Packets || fast1.Metrics.Bytes != other.Metrics.Bytes {
			t.Errorf("%s: packets/bytes %d/%d != %d/%d", label,
				fast1.Metrics.Packets, fast1.Metrics.Bytes, other.Metrics.Packets, other.Metrics.Bytes)
		}
		for i := range fast1.ShardDigests {
			if fast1.ShardDigests[i] != other.ShardDigests[i] {
				t.Errorf("%s: shard %d digest %#x != %#x", label, i,
					fast1.ShardDigests[i], other.ShardDigests[i])
			}
		}
		for i := range fast1.Metrics.Shards {
			a, b := fast1.Metrics.Shards[i], other.Metrics.Shards[i]
			if a.Cycles != b.Cycles || a.CrossbarBusy != b.CrossbarBusy || a.Queued != b.Queued {
				t.Errorf("%s: shard %d (cycles %d, xbar %d, queued %d) != (cycles %d, xbar %d, queued %d)",
					label, i, a.Cycles, a.CrossbarBusy, a.Queued, b.Cycles, b.CrossbarBusy, b.Queued)
			}
		}
	}
	check("fast run-to-run", fast2)
	check("fast vs reference", ref)
}

func TestFastPathQoSIdentical(t *testing.T) {
	fast := harness.QoSTable(8)
	var ref harness.QoSResult
	onReference(func() { ref = harness.QoSTable(8) })
	if fast.VoiceUncontendedMbps != ref.VoiceUncontendedMbps {
		t.Errorf("uncontended voice %v != %v", fast.VoiceUncontendedMbps, ref.VoiceUncontendedMbps)
	}
	if len(fast.Scenarios) != len(ref.Scenarios) {
		t.Fatalf("scenario count %d != %d", len(fast.Scenarios), len(ref.Scenarios))
	}
	for i := range fast.Scenarios {
		fs, rs := fast.Scenarios[i], ref.Scenarios[i]
		for _, cl := range []qos.Class{qos.Voice, qos.Background} {
			fc, rc := fs.Cell(cl), rs.Cell(cl)
			if fc.Mbps != rc.Mbps || fc.P50 != rc.P50 || fc.P99 != rc.P99 ||
				fc.DeadlineMisses != rc.DeadlineMisses {
				t.Errorf("%s/%v: fast cell %+v != reference %+v", fs.Policy, cl, fc, rc)
			}
		}
	}

	fastDrains := harness.QoSDrainComparison(8)
	var refDrains []harness.QoSDrainRow
	onReference(func() { refDrains = harness.QoSDrainComparison(8) })
	if len(fastDrains) != len(refDrains) {
		t.Fatalf("drain row count %d != %d", len(fastDrains), len(refDrains))
	}
	for i := range fastDrains {
		if fastDrains[i] != refDrains[i] {
			t.Errorf("drain %s: fast %+v != reference %+v",
				fastDrains[i].Drain, fastDrains[i], refDrains[i])
		}
	}
}

// TestFastPathArrivalsIdentical: the open-loop workload engine (E13) is a
// pure function of its seed — arrival times (witnessed by the digest),
// verdict counts and latency percentiles are bit-identical across two
// fast-kernel runs and against the cycle-by-cycle reference path.
func TestFastPathArrivalsIdentical(t *testing.T) {
	cfg := harness.LoadCurveConfig{BackgroundPackets: 100}
	point := func() harness.LoadPoint {
		return harness.LoadPointRun("qos-priority", 1.25, 1400, cfg)
	}
	fast1, fast2 := point(), point()
	if !reflect.DeepEqual(fast1, fast2) {
		t.Fatalf("open-loop point not deterministic run-to-run:\n%+v\n%+v", fast1, fast2)
	}
	var ref harness.LoadPoint
	onReference(func() { ref = point() })
	if fast1.ArrivalDigest != ref.ArrivalDigest {
		t.Errorf("arrival digest %#x != reference %#x", fast1.ArrivalDigest, ref.ArrivalDigest)
	}
	if !reflect.DeepEqual(fast1, ref) {
		t.Errorf("fast open-loop point != reference:\n%+v\n%+v", fast1, ref)
	}
}

// TestTraceDeterministic: the E18 traced measurement — the open-loop
// point with the lifecycle tracer at sample rate 1, reduced to per-class
// stage decompositions and a span-stream digest — is bit-identical
// across two fast-kernel runs and against the cycle-by-cycle reference
// path, and attaching the tracer leaves the untraced E13 point
// untouched: the tracer only reads the clock, it never schedules.
func TestTraceDeterministic(t *testing.T) {
	cfg := harness.LoadCurveConfig{BackgroundPackets: 100}
	point := func() harness.StagePoint {
		return harness.StagePointRun("qos-priority", 1.25, 1400, cfg)
	}
	fast1, fast2 := point(), point()
	if fast1.TraceDigest != fast2.TraceDigest {
		t.Errorf("span digest %#x != %#x run-to-run", fast1.TraceDigest, fast2.TraceDigest)
	}
	if !reflect.DeepEqual(fast1, fast2) {
		t.Fatalf("traced point not deterministic run-to-run:\n%+v\n%+v", fast1, fast2)
	}
	var ref harness.StagePoint
	onReference(func() { ref = point() })
	if fast1.TraceDigest != ref.TraceDigest {
		t.Errorf("span digest %#x != reference %#x", fast1.TraceDigest, ref.TraceDigest)
	}
	if !reflect.DeepEqual(fast1, ref) {
		t.Errorf("fast traced point != reference:\n%+v\n%+v", fast1, ref)
	}

	// Reconciliation with E13: tracing must be invisible in the
	// measurement, and the span-derived percentiles equal the
	// shaper-derived ones exactly.
	untraced := harness.LoadPointRun("qos-priority", 1.25, 1400, cfg)
	if !reflect.DeepEqual(fast1.LoadPoint, untraced) {
		t.Errorf("traced LoadPoint != untraced:\n%+v\n%+v", fast1.LoadPoint, untraced)
	}
	if fast1.Spans == 0 || len(fast1.Cells) == 0 {
		t.Fatalf("no spans decomposed: %+v", fast1)
	}
	for _, sc := range fast1.Cells {
		cell := fast1.Cell(sc.Class)
		if sc.TotalP50 != cell.P50 || sc.TotalP99 != cell.P99 {
			t.Errorf("%v: traced percentiles (%d, %d) != E13 cell (%d, %d)",
				sc.Class, sc.TotalP50, sc.TotalP99, cell.P50, cell.P99)
		}
		var sum sim.Time
		for _, d := range sc.SumStages {
			sum += d
		}
		if sum != sc.SumTotal {
			t.Errorf("%v: stage sums %d do not tile total %d", sc.Class, sum, sc.SumTotal)
		}
	}
}

// wireGuardSessions is the session mix for the batch-boundary guard:
// CCM voice and GCM background alternating, no deadlines, so every
// packet succeeds and the output bytes are pure crypto results.
var wireGuardSessions = []struct {
	family  cryptocore.Family
	tagLen  int
	class   qos.Class
	payload int
}{
	{cryptocore.FamilyCCM, 8, qos.Voice, 256},
	{cryptocore.FamilyGCM, 16, qos.Background, 512},
	{cryptocore.FamilyGCM, 16, qos.Background, 2048},
	{cryptocore.FamilyCCM, 8, qos.Voice, 256},
	{cryptocore.FamilyGCM, 16, qos.Data, 1024},
	{cryptocore.FamilyGCM, 12, qos.Video, 512},
}

const wireGuardPackets = 60

// wireGuardCluster is the backend both sides of the guard run on. The
// server overlays its own BatchWindow, which is the point: batch
// chunking must be invisible in the output bytes.
func wireGuardCluster() cluster.Config {
	return cluster.Config{
		Shards:        2,
		Router:        cluster.RouterLeastLoaded,
		QueueRequests: true,
		Seed:          7,
	}
}

// wireGuardPacket returns packet seq's session index, stamped nonce and
// payload — shared by the in-process and wire replays.
func wireGuardPacket(seq int) (sess int, nonce, payload []byte) {
	sess = seq % len(wireGuardSessions)
	s := wireGuardSessions[sess]
	n := 12
	if s.family == cryptocore.FamilyCCM {
		n = 13
	}
	base := make([]byte, n)
	base[0] = byte(sess)
	payload = make([]byte, s.payload)
	for j := range payload {
		payload[j] = byte(sess*31 + j)
	}
	return sess, arrivals.StampNonce(base, seq), payload
}

// wireGuardInProcess replays the guard workload straight into a cluster
// with the library API and folds per-shard digests exactly the way the
// server's RETRIEVE_DATA report does: FNV-64a over output bytes in
// delivery (= enqueue) order.
func wireGuardInProcess(t *testing.T) []uint64 {
	t.Helper()
	cfg := wireGuardCluster()
	cfg.BatchWindow = 16
	cl, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	digests := make([]uint64, cl.Shards())
	for i := range digests {
		digests[i] = 0xcbf29ce484222325
	}
	sessions := make([]*cluster.Session, len(wireGuardSessions))
	for i, s := range wireGuardSessions {
		ses, err := cl.Open(cluster.OpenSpec{
			Suite:  core.Suite{Family: s.family, TagLen: s.tagLen, Priority: s.class.Priority()},
			KeyLen: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = ses
	}
	for seq := 0; seq < wireGuardPackets; seq++ {
		si, nonce, payload := wireGuardPacket(seq)
		ses := sessions[si]
		shard := ses.Shard()
		ses.EncryptWireAsync(nonce, nil, payload, 0, func(out []byte, _ sim.Time, err error) {
			if err != nil {
				t.Errorf("in-process packet %d: %v", seq, err)
				return
			}
			d := digests[shard]
			for _, by := range out {
				d = (d ^ uint64(by)) * 0x100000001b3
			}
			digests[shard] = d
		})
	}
	cl.Flush()
	return digests
}

// wireGuardServer replays the same workload through a loopback
// mccpserver — single connection, single-threaded client, the given
// batch size trigger and client FLUSH cadence — and returns the server's
// per-shard digests.
func wireGuardServer(t *testing.T, batchOps, flushEvery int) []uint64 {
	t.Helper()
	srv, err := server.New(server.Config{
		Cluster:  wireGuardCluster(),
		BatchOps: batchOps,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lb := server.NewLoopback()
	srv.Serve(lb)
	nc, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := server.NewClient(nc)
	defer c.Close()

	specs := make([]server.OpenRequest, len(wireGuardSessions))
	for i, s := range wireGuardSessions {
		specs[i] = server.OpenRequest{
			Family: s.family, KeyLen: 16, TagLen: s.tagLen, Class: s.class,
		}
	}
	ids, err := c.OpenMany(specs)
	if err != nil {
		t.Fatal(err)
	}
	expect := 0
	for seq := 0; seq < wireGuardPackets; seq++ {
		si, nonce, payload := wireGuardPacket(seq)
		if _, err := c.SendEncrypt(ids[si], nonce, nil, payload); err != nil {
			t.Fatal(err)
		}
		expect++
		if (seq+1)%flushEvery == 0 {
			if _, err := c.SendFlush(); err != nil {
				t.Fatal(err)
			}
			expect++
		}
	}
	if _, err := c.SendFlush(); err != nil {
		t.Fatal(err)
	}
	expect++
	for i := 0; i < expect; i++ {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != server.StatusOK {
			t.Fatalf("response %d: status %s", i, r.Status)
		}
	}
	stats, err := c.Retrieve()
	if err != nil {
		t.Fatal(err)
	}
	return stats.Digests
}

// TestWireBatchBoundariesInvisible: the server's request batcher may
// chunk the stream at any size or FLUSH cadence — the per-shard output
// digests must stay bit-identical to the in-process cluster program
// replaying the same packets. This is the guard that the service
// boundary adds wiring, not behaviour.
func TestWireBatchBoundariesInvisible(t *testing.T) {
	want := wireGuardInProcess(t)
	cadences := []struct{ batchOps, flushEvery int }{
		{3, 7},   // size trigger dominates
		{64, 5},  // client FLUSH dominates
		{64, 17}, // sparse barriers
		{1, 1},   // fully serialized
	}
	for _, cad := range cadences {
		got := wireGuardServer(t, cad.batchOps, cad.flushEvery)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batchOps=%d flushEvery=%d: server digests %x != in-process %x",
				cad.batchOps, cad.flushEvery, got, want)
		}
	}
}

// TestRollingReconfigDeterministic: the E15 measurement — fleet
// drain/swap/readmit legs interleaved with open-loop serving windows —
// is a pure function of its configuration. Arrival digests, per-class
// verdict counters and latency percentiles are bit-identical across two
// fast-kernel runs and against the cycle-by-cycle reference path.
func TestRollingReconfigDeterministic(t *testing.T) {
	run := func() harness.ReconfigLoadResult {
		return harness.ReconfigUnderLoad(harness.ReconfigLoadConfig{
			Policies:  []string{"qos-priority"},
			Sources:   []reconfig.Source{reconfig.StagingRAM},
			Shards:    2,
			TimeScale: 256,
		})
	}
	fast1, fast2 := run(), run()
	if !reflect.DeepEqual(fast1, fast2) {
		t.Fatalf("rolling reconfig not deterministic run-to-run:\n%+v\n%+v", fast1, fast2)
	}
	var ref harness.ReconfigLoadResult
	onReference(func() { ref = run() })
	if fast1.Runs[0].Digest != ref.Runs[0].Digest {
		t.Errorf("arrival digest %#x != reference %#x", fast1.Runs[0].Digest, ref.Runs[0].Digest)
	}
	if !reflect.DeepEqual(fast1, ref) {
		t.Errorf("fast rolling reconfig != reference:\n%+v\n%+v", fast1, ref)
	}
	r := fast1.Runs[0]
	if r.Digest == 0 || r.Legs != 2 {
		t.Errorf("implausible run: digest %#x, %d legs", r.Digest, r.Legs)
	}
	if v := r.Cell(qos.Voice); v.Submitted == 0 || v.LossFrac > 0.01 {
		t.Errorf("voice cell implausible during swaps: %+v", v)
	}
}

// TestFastPathClusterOpenLoopIdentical: the cluster-level open-loop run —
// per-shard shapers, arrival sources on every shard's own engine — is
// equally bit-identical across runs and against the reference kernel.
func TestFastPathClusterOpenLoopIdentical(t *testing.T) {
	run := func() cluster.OpenLoopResult {
		res, err := cluster.RunOpenLoop(cluster.OpenLoopConfig{
			Shards: 2, Policy: "qos-priority", Offered: 1.0,
			SatMbpsPerShard: 1400, Horizon: 400000, Seed: 13,
			Profiles: harness.LoadMix,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast1, fast2 := run(), run()
	if !reflect.DeepEqual(fast1, fast2) {
		t.Fatalf("cluster open-loop not deterministic run-to-run:\n%+v\n%+v", fast1, fast2)
	}
	var ref cluster.OpenLoopResult
	onReference(func() { ref = run() })
	if !reflect.DeepEqual(fast1.ArrivalDigests, ref.ArrivalDigests) {
		t.Errorf("arrival digests %x != reference %x", fast1.ArrivalDigests, ref.ArrivalDigests)
	}
	if !reflect.DeepEqual(fast1, ref) {
		t.Errorf("fast cluster open-loop != reference:\n%+v\n%+v", fast1, ref)
	}
}
