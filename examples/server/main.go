// Server walkthrough: the MCCP cluster as a network service. An
// mccpserver is started on an in-process loopback transport, a client
// speaks the §III.C control protocol to it — OPEN a voice and a
// background session, ENCRYPT packets, corrupt a tag to see AUTH_FAIL,
// RETRIEVE_DATA for the wire statistics — and everything tears down
// cleanly. Swap the loopback for net.Listen/net.Dial and the same bytes
// flow over TCP (see cmd/mccpserver and cmd/mccploadgen).
package main

import (
	"fmt"
	"log"

	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/server"
)

func main() {
	// A 2-shard cluster behind the wire front end. The batcher coalesces
	// concurrent requests into per-shard ring submissions; FLUSH (sent
	// automatically by the lock-step client helpers) bounds the wait.
	srv, err := server.New(server.Config{
		Cluster: cluster.Config{
			Shards:        2,
			Router:        cluster.RouterQoSAware,
			Policy:        "qos-priority",
			QueueRequests: true,
			Seed:          1,
		},
		BatchOps: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	lb := server.NewLoopback()
	srv.Serve(lb)
	nc, err := lb.Dial()
	if err != nil {
		log.Fatal(err)
	}
	c := server.NewClient(nc)
	defer c.Close()

	// OPEN binds a wire session id to a cluster session: algorithm
	// family, key length, QoS class and a per-packet deadline budget.
	voice, err := c.Open(server.OpenRequest{
		Family: cryptocore.FamilyCCM, KeyLen: 16, TagLen: 8,
		Class: qos.Voice, Deadline: 16000,
	})
	if err != nil {
		log.Fatal(err)
	}
	bulk, err := c.Open(server.OpenRequest{
		Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16,
		Class: qos.Background,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened voice session %d (CCM) and background session %d (GCM)\n", voice, bulk)

	// ENCRYPT round trips: the response carries ct||tag plus the timing
	// triple (shard service cycles, host-side queue and service time).
	nonce := make([]byte, 13)
	payload := []byte("packet on the wire: the cluster is a server now")
	r, err := c.Encrypt(voice, nonce, nil, payload)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voice encrypt: %d bytes in, %d bytes out, %d shard cycles\n",
		len(payload), len(r.Out), r.Timing.WireCycles)

	// Round-trip the ciphertext back through DECRYPT.
	ct, tag := r.Out[:len(payload)], r.Out[len(payload):]
	r, err = c.Decrypt(voice, nonce, nil, ct, tag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voice decrypt: status %s, plaintext matches: %v\n",
		r.Status, string(r.Out) == string(payload))

	// A corrupted tag comes back AUTH_FAIL — a protocol status, not a
	// dropped connection.
	badTag := append([]byte(nil), tag...)
	badTag[0] ^= 1
	r, err = c.Decrypt(voice, nonce, nil, ct, badTag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted tag: status %s\n", r.Status)

	// RETRIEVE_DATA reports the server's wire statistics: verdict counts,
	// per-class latency percentiles, per-shard output digests.
	stats, err := c.Retrieve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d sessions open, %d OK, %d auth failures, %d bytes out\n",
		stats.SessionsOpen, stats.Verdicts[server.StatusOK],
		stats.Verdicts[server.StatusAuthFail], stats.BytesOut)

	if _, err := c.CloseSession(voice); err != nil {
		log.Fatal(err)
	}
	if _, err := c.CloseSession(bulk); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sessions closed; server drains on Close")
}
