// Quickstart: open a GCM channel on the simulated MCCP, protect a packet,
// verify it, and show the tamper-rejection path.
package main

import (
	"fmt"
	"log"

	"mccp"
)

func main() {
	// A four-core MCCP at a modeled 190 MHz, with the paper's first-idle
	// task scheduler.
	p := mccp.New(mccp.Config{})

	// The main controller provisions a session key into the Key Memory;
	// key bytes never cross the MCCP data port.
	key, err := p.NewKey(16) // AES-128
	if err != nil {
		log.Fatal(err)
	}

	// OPEN a channel: AES-GCM with a 16-byte tag.
	ch, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		log.Fatal(err)
	}
	defer ch.Close()

	nonce := []byte("012345678901") // 96-bit GCM IV
	aad := []byte("frame-header")
	payload := []byte("hello from the software-defined radio")

	sealed, err := ch.Encrypt(nonce, aad, payload)
	if err != nil {
		log.Fatal(err)
	}
	ct, tag := sealed[:len(payload)], sealed[len(payload):]
	fmt.Printf("ciphertext: %x\n", ct)
	fmt.Printf("tag:        %x\n", tag)

	plain, err := ch.Decrypt(nonce, aad, ct, tag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted:  %q\n", plain)

	// Corrupt one ciphertext byte: the core firmware recomputes the tag,
	// flushes its output FIFO and reports AUTH_FAIL.
	ct[0] ^= 0x01
	if _, err := ch.Decrypt(nonce, aad, ct, tag); err == mccp.ErrAuth {
		fmt.Println("tampered packet rejected (output FIFO flushed)")
	} else {
		log.Fatalf("tamper not detected: %v", err)
	}

	st := p.Stats()
	fmt.Printf("\n%d packets in %.1f µs of simulated time (%d cycles at 190 MHz)\n",
		st.Packets, p.Elapsed()*1e6, p.Cycles())
}
