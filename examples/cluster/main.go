// Cluster walkthrough: run four independent MCCP shards behind one front
// end — route sessions, batch packet dispatch, reconfigure a shard for
// Whirlpool, watch sessions re-home, and read the aggregated metrics.
package main

import (
	"fmt"
	"log"

	"mccp"
)

func main() {
	// Four shards, each a full four-core MCCP with its own simulation
	// engine and goroutine. family-affinity routing keeps block-cipher
	// traffic away from shards with reconfigured (Whirlpool) cores.
	cl, err := mccp.NewCluster(mccp.ClusterConfig{
		Shards:        4,
		Router:        mccp.RouterFamilyAffinity,
		QueueRequests: true,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Open eight GCM sessions; the router spreads them across shards.
	// Each session gets a deterministic key, provisioned on its shard.
	var sessions []*mccp.ClusterSession
	for i := 0; i < 8; i++ {
		ses, err := cl.Open(mccp.ClusterOpenSpec{
			Suite:  mccp.Suite{Family: mccp.GCM, TagLen: 16},
			KeyLen: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, ses)
		fmt.Printf("session %d -> shard %d\n", ses.ID(), ses.Shard())
	}

	// Submit a burst asynchronously: the dispatcher coalesces packets per
	// shard and each shard drains its engine once per batch. Callbacks
	// fire in submission order during Flush.
	nonce := make([]byte, 12)
	completed := 0
	for p := 0; p < 32; p++ {
		payload := make([]byte, 512+32*p)
		sessions[p%len(sessions)].EncryptAsync(nonce, nil, payload, func(out []byte, err error) {
			if err != nil {
				log.Fatal(err)
			}
			completed++
		})
	}
	cl.Flush()
	fmt.Printf("\nburst of 32 packets completed: %d\n", completed)

	// Reconfigure one core of shard 3 to Whirlpool (partial bitstream
	// from staging RAM, as in the paper's Table IV). family-affinity now
	// prefers other shards for AES work, so GCM sessions homed on shard 3
	// are transparently re-opened elsewhere.
	took, moved, err := cl.Reconfigure(3, 0, mccp.EngineWhirlpool, mccp.FromRAM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshard 3 core 0 -> Whirlpool in %d cycles (~%.0f ms); %d sessions re-homed\n",
		took, float64(took)/190e6*1e3, moved)
	for _, ses := range sessions {
		fmt.Printf("session %d now on shard %d\n", ses.ID(), ses.Shard())
	}

	// Hash traffic is steered to the reconfigured shard.
	hash, err := cl.Open(mccp.ClusterOpenSpec{Suite: mccp.Suite{Family: mccp.Hash}})
	if err != nil {
		log.Fatal(err)
	}
	digest, err := hash.Sum([]byte("hashing service on shard 3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhash session -> shard %d, digest %x...\n", hash.Shard(), digest[:8])

	// Aggregated metrics: per-shard and total packets, simulated Mbps at
	// virtual time, and the host-side wall-clock figure.
	fmt.Println()
	fmt.Print(cl.Metrics().Format())
}
