// Dualcore: the paper's two-core CCM mapping. One CCM packet is split
// across a core pair — CBC-MAC on one core, CTR on the other, the MAC
// crossing the inter-core shift register — and compared with the one-core
// mapping for throughput and latency (Table II's 2-cores vs 1-core columns).
package main

import (
	"fmt"
	"log"

	"mccp"
)

func run(split bool, packets int) (mbps float64, meanLatency float64) {
	p := mccp.New(mccp.Config{QueueRequests: true})
	key, err := p.NewKey(16)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := p.Open(mccp.Suite{Family: mccp.CCM, TagLen: 8, SplitCCM: split}, key)
	if err != nil {
		log.Fatal(err)
	}
	nonce := make([]byte, 13)
	payload := make([]byte, 2048)

	// Warm-up (key expansion).
	if _, err := ch.Encrypt(nonce, nil, payload[:64]); err != nil {
		log.Fatal(err)
	}

	start := p.Cycles()
	var latSum uint64
	for i := 0; i < packets; i++ {
		nonce[12] = byte(i)
		t0 := p.Cycles()
		if _, err := ch.Encrypt(nonce, nil, payload); err != nil {
			log.Fatal(err)
		}
		latSum += uint64(p.Cycles() - t0)
	}
	cycles := p.Cycles() - start
	mbps = float64(packets*2048*8) / float64(cycles) * 190
	meanLatency = float64(latSum) / float64(packets)
	return
}

func main() {
	const packets = 10
	oneMbps, oneLat := run(false, packets)
	twoMbps, twoLat := run(true, packets)

	fmt.Println("AES-CCM, 2 KB packets, 128-bit key, 190 MHz")
	fmt.Printf("  1 core : %6.0f Mbps, %6.0f cycles/packet  (paper 2KB: 214 Mbps)\n", oneMbps, oneLat)
	fmt.Printf("  2 cores: %6.0f Mbps, %6.0f cycles/packet  (paper 2KB: 393 Mbps)\n", twoMbps, twoLat)
	fmt.Printf("\nsplitting one packet across a core pair: %.2fx throughput, %.2fx latency\n",
		twoMbps/oneMbps, twoLat/oneLat)
	fmt.Println("(the paper's §VII.A trade-off: 4x1 beats 2x2 on throughput,")
	fmt.Println(" but the two-core split halves per-packet latency)")
}
