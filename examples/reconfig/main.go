// Reconfig: the paper's §VII.B scenario — swap one core's reconfigurable
// region from AES to Whirlpool at runtime (partial reconfiguration), hash a
// firmware image on it while the other cores keep encrypting, then swap
// back.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mccp"
	"mccp/internal/whirlpool"
)

func main() {
	p := mccp.New(mccp.Config{QueueRequests: true})

	key, err := p.NewKey(16)
	if err != nil {
		log.Fatal(err)
	}
	gcm, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16}, key)
	if err != nil {
		log.Fatal(err)
	}

	// Swap core 3 to the Whirlpool engine. Table IV: the 97 kB partial
	// bitstream takes ~69 ms from staging RAM (~416 ms from CompactFlash).
	took, err := p.Reconfigure(3, mccp.EngineWhirlpool, mccp.FromRAM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core 3 reconfigured to Whirlpool in %.1f ms (%d cycles)\n",
		float64(took)/190e3, took)

	// Hash channel on the reconfigured core; AES channels keep cores 0-2.
	hash, err := p.Open(mccp.Suite{Family: mccp.Hash}, 0)
	if err != nil {
		log.Fatal(err)
	}

	image := bytes.Repeat([]byte("radio-waveform-update-v2 "), 64)
	digest, err := hash.Sum(image)
	if err != nil {
		log.Fatal(err)
	}
	want := whirlpool.Sum(image)
	fmt.Printf("whirlpool digest (device): %x...\n", digest[:16])
	fmt.Printf("whirlpool digest (oracle): %x...\n", want[:16])
	if !bytes.Equal(digest, want[:]) {
		log.Fatal("digest mismatch")
	}

	// Encryption continues to work alongside hashing.
	nonce := []byte("012345678901")
	sealed, err := gcm.Encrypt(nonce, nil, []byte("traffic during the hash job"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GCM still flowing on cores 0-2: tag %x\n", sealed[len(sealed)-16:])

	// Swap back: the key-exchange-then-data-cipher pattern of §VII.B.
	if _, err := p.Reconfigure(3, mccp.EngineAES, mccp.FromRAM); err != nil {
		log.Fatal(err)
	}
	fmt.Println("core 3 restored to AES; all four cores encrypt again")
}
