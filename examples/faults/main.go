// Faults walkthrough: crash a shard under a seeded fault schedule, watch
// the heartbeat freeze betray it, fail over its sessions voice-first
// onto the survivors, and brown out the low classes while capacity is
// down. Every step is deterministic virtual time — run it twice and the
// crash fires at the same cycle.
package main

import (
	"errors"
	"fmt"
	"log"

	"mccp"
)

func main() {
	// A shaped 4-shard cluster: per-shard QoS shapers are what give the
	// fault plane its kill switch (a crashed shard fails everything with
	// mccp.ErrShardDown) and its brownout mask.
	cl, err := mccp.NewCluster(mccp.ClusterConfig{
		Shards:        4,
		Router:        mccp.RouterQoSAware,
		Policy:        "qos-priority",
		QueueRequests: true,
		Seed:          11,
		Shape:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Two sessions per class, spread by the QoS-aware router.
	classes := []mccp.QoSClass{mccp.QoSVoice, mccp.QoSVideo, mccp.QoSData, mccp.QoSBackground}
	var sessions []*mccp.ClusterSession
	for i := 0; i < 8; i++ {
		ses, err := cl.Open(mccp.ClusterOpenSpec{
			Suite:  mccp.Suite{Family: mccp.GCM, TagLen: 16, Priority: classes[i%4].Priority()},
			KeyLen: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, ses)
		fmt.Printf("session %d (%s) -> shard %d\n", ses.ID(), classes[i%4], ses.Shard())
	}

	// A seeded schedule: one crash, drawn deterministically. The same
	// seed always crashes the same shard at the same in-window offset.
	sched, err := mccp.PlanFaults(mccp.FaultPlanConfig{
		Seed: 7, Shards: 4, Windows: 4, Crashes: 1, FaultWindow: 1, WindowCycles: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule: %s\n", sched)
	crash := sched.Events[0]

	// Arm the crash to fire in the victim's very next batch, a virtual
	// offset into it. The arm is lock-free; the fault fires as a
	// discrete event on the shard's own clock.
	if err := cl.ArmShardCrash(crash.Shard, cl.NextHeartbeat(crash.Shard), crash.Offset); err != nil {
		log.Fatal(err)
	}

	// Drive traffic. Packets bound for the corpse fail with ErrShardDown;
	// everything else keeps flowing.
	nonce := make([]byte, 12)
	down := 0
	for round := 0; round < 4; round++ {
		for _, ses := range sessions {
			if _, err := ses.Encrypt(nonce, nil, []byte("traffic during the fault")); err != nil {
				if !errors.Is(err, mccp.ErrShardDown) {
					log.Fatal(err)
				}
				down++
			}
		}
	}
	fmt.Printf("%d packets failed with ErrShardDown while shard %d was dying\n", down, crash.Shard)

	// Detection: the dead shard's heartbeat counter froze in Snapshot.
	snap := cl.Snapshot()
	for _, sh := range snap.Shards {
		fmt.Printf("shard %d: heartbeat %d crashed=%v\n", sh.Shard, sh.Heartbeat, sh.Crashed)
	}

	// Fail over: quarantine the corpse and re-home its sessions onto the
	// survivors, voice first. Nothing is lost unless no survivor can
	// serve it.
	rep, err := cl.FailOver(crash.Shard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfail-over: re-homed %d sessions (voice first), lost %d, in %d cycles\n",
		rep.Moved, rep.Lost, rep.Took)
	for _, ses := range sessions {
		if !ses.Closed() {
			fmt.Printf("session %d now on shard %d\n", ses.ID(), ses.Shard())
		}
	}

	// Brownout: with a quarter of the capacity gone, shed the lowest
	// classes first. Voice is never denied.
	share := [mccp.QoSNumClasses]float64{}
	share[mccp.QoSVoice], share[mccp.QoSVideo] = 0.2, 0.2
	share[mccp.QoSData], share[mccp.QoSBackground] = 0.2, 0.4
	deny := mccp.BrownoutDeny(4000, 3000, share)
	if err := cl.ApplyDeny(deny); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbrownout mask (offered 4000 Mbps on 3000 Mbps of survivors):\n")
	for _, class := range classes {
		fmt.Printf("  %-11s denied=%v\n", class, deny[class])
	}
	for _, ses := range sessions {
		if ses.Closed() {
			continue
		}
		_, err := ses.Encrypt(nonce, nil, []byte("post-brownout"))
		switch {
		case err == nil:
		case errors.Is(err, mccp.ErrShed):
			fmt.Printf("session %d shed by the brownout\n", ses.ID())
		default:
			log.Fatal(err)
		}
	}
}
