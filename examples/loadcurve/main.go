// Example loadcurve runs the E13 open-loop workload engine: arrival
// processes scheduled in virtual time feed packets at a configured
// offered rate — regardless of device backpressure — through a bounded
// QoS shaper, so loss and latency finally read as functions of offered
// load. The sweep walks from deep underload through the saturation knee
// under the paper's first-idle policy and the §VIII qos-priority
// extension; past the knee the background class sheds a growing fraction
// while qos-priority holds voice at ~0% loss and a flat p99.
package main

import (
	"fmt"

	"mccp/internal/cluster"
	"mccp/internal/harness"
)

func main() {
	// The single-device sweep: three points per policy keep this example
	// fast; benchtables -table loadcurve prints the full curve.
	res := harness.LoadCurve(harness.LoadCurveConfig{
		Offered:           []float64{0.5, 1.0, 2.0},
		BackgroundPackets: 150,
	})
	fmt.Print(harness.FormatLoadCurve(res))

	// The same engine scales out: open-loop sources run on every shard's
	// own virtual clock, feeding per-shard shapers, so per-class loss and
	// latency stay attributable per shard.
	fmt.Println("\ncluster open-loop (2 shards, qos-priority, 1.25x offered):")
	cres, err := cluster.RunOpenLoop(cluster.OpenLoopConfig{
		Shards:          2,
		Policy:          "qos-priority",
		Offered:         1.25,
		SatMbpsPerShard: res.SaturationMbps,
		Horizon:         500000,
		Seed:            7,
		Profiles:        harness.LoadMix,
	})
	if err != nil {
		panic(err)
	}
	for _, c := range cres.Classes {
		fmt.Printf("  %-11s offered %5.0f Mbps, delivered %5.0f Mbps, loss %5.2f%%, p99 %d cyc\n",
			c.Class, c.OfferedMbps, c.DeliveredMbps, 100*c.LossFrac, c.P99)
	}
	for s, stats := range cres.PerShard {
		voice := stats[0]
		fmt.Printf("  shard %d: voice %d/%d delivered\n", s, voice.Completed, voice.Submitted)
	}
	fmt.Printf("  voice p99 across shards (merged samples): %d cycles\n", cres.Classes[0].P99)
}
