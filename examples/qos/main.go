// Example qos walks through the §VIII quality-of-service subsystem: a
// platform running the qos-priority dispatch policy, channels tagged with
// priority classes, and the shaper front end providing bounded per-class
// queues, weighted-fair draining, admission control and per-class latency
// percentiles — all in deterministic virtual time.
package main

import (
	"fmt"
	"log"

	"mccp"
)

func main() {
	// A 4-core device with the qos-priority policy: one core stays
	// reserved for video/voice-class traffic, and saturating requests
	// queue (priority-ordered) instead of drawing the error flag.
	p, err := mccp.NewChecked(mccp.Config{
		Policy:        mccp.PolicyQoSPriority,
		QueueRequests: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One channel per class; the Suite.Priority tag is the class value,
	// so the device scheduler and the crossbar grant logic see it too.
	voiceKey, _ := p.NewKey(16)
	bulkKey, _ := p.NewKey(16)
	voice, err := p.Open(mccp.Suite{Family: mccp.CCM, TagLen: 8,
		Priority: mccp.QoSVoice.Priority()}, voiceKey)
	if err != nil {
		log.Fatal(err)
	}
	bulk, err := p.Open(mccp.Suite{Family: mccp.GCM, TagLen: 16,
		Priority: mccp.QoSBackground.Priority()}, bulkKey)
	if err != nil {
		log.Fatal(err)
	}

	// The shaper sits between the traffic source and the device: at most
	// 4 packets in flight, an 8-deep queue per class, weighted-fair
	// drain (voice 8 : video 4 : data 2 : background 1).
	shaper := p.NewShaper(mccp.ShaperConfig{
		Capacity:   4,
		QueueDepth: 8,
		Drain:      mccp.QoSDrainWeightedFair,
	})

	// Offer a burst: 14 bulk transfers at once (overflowing the bounded
	// background queue), then a steady voice stream with deadline tags.
	bulkNonce := make([]byte, 12)
	shedded := 0
	for i := 0; i < 14; i++ {
		shaper.Encrypt(mccp.QoSBackground, bulk.ID(), bulkNonce, nil, make([]byte, 2048),
			func(_ []byte, err error) {
				if err == mccp.ErrShed {
					shedded++ // admission control: explicit verdict, no silent loss
				} else if err != nil {
					log.Fatal(err)
				}
			})
	}
	voiceNonce := make([]byte, 13)
	sent := 0
	var sendVoice func()
	sendVoice = func() {
		if sent == 16 {
			return
		}
		sent++
		// Deadline: 8000 cycles (~42 µs at 190 MHz) from submission.
		shaper.EncryptDeadline(mccp.QoSVoice, voice.ID(), voiceNonce, nil,
			make([]byte, 256), p.Cycles()+8000, func(_ []byte, err error) {
				if err != nil {
					log.Fatal(err)
				}
				sendVoice()
			})
	}
	sendVoice()
	p.Run() // drain the virtual timeline

	fmt.Printf("virtual time: %d cycles (%.1f µs at 190 MHz)\n\n", p.Cycles(), p.Elapsed()*1e6)
	fmt.Printf("%-12s %10s %8s %6s %10s %10s %8s\n",
		"class", "completed", "shed", "miss", "p50 cyc", "p99 cyc", "Mbps")
	for _, st := range shaper.AllStats() {
		if st.Submitted == 0 {
			continue
		}
		fmt.Printf("%-12v %10d %8d %6d %10d %10d %8.0f\n",
			st.Class, st.Completed, st.Shed, st.DeadlineMisses,
			shaper.LatencyPercentile(st.Class, 50),
			shaper.LatencyPercentile(st.Class, 99),
			st.Mbps(190e6))
	}
	stats := p.Stats()
	fmt.Printf("\ndevice: %d packets, %d queued, %d rejected, %d shed (device queue)\n",
		stats.Packets, stats.Queued, stats.Rejected, stats.Shed)
	fmt.Printf("shaper shed %d of 14 bulk packets at the bounded class queue\n", shedded)
}
