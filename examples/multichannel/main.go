// Multichannel: the workload the paper's title is about — several
// communication standards with different cipher suites protected
// concurrently on the four cores, with the QoS queueing extension and the
// key-affinity dispatch policy.
package main

import (
	"fmt"
	"log"

	"mccp"
	"mccp/internal/trafficgen"
)

func main() {
	p := mccp.New(mccp.Config{
		QueueRequests: true,
		Policy:        mccp.PolicyKeyAffinity,
		Seed:          7,
	})

	// Three standards, as in the paper's introduction: a CCM voice link,
	// a CCM WiFi-style data link and a GCM wideband link.
	standards := []trafficgen.Standard{
		trafficgen.VoiceUMTS,
		trafficgen.WiFiCCMP,
		trafficgen.WiMaxGCM,
	}
	gen := trafficgen.NewGenerator(7, standards)

	type link struct {
		name string
		ch   *mccp.Channel
		std  int
	}
	var links []link
	for i, s := range standards {
		key, err := p.NewKey(s.KeyLen)
		if err != nil {
			log.Fatal(err)
		}
		ch, err := p.Open(mccp.Suite{
			Family:   s.Family,
			TagLen:   s.TagLen,
			SplitCCM: s.Split,
			Priority: s.Priority,
		}, key)
		if err != nil {
			log.Fatal(err)
		}
		links = append(links, link{name: s.Name, ch: ch, std: i})
	}

	// Push 10 packets per channel, all in flight together: the Task
	// Scheduler interleaves them across the four cores.
	const perChannel = 10
	bytesByLink := make([]int, len(links))
	done := 0
	start := p.Cycles()
	for round := 0; round < perChannel; round++ {
		for i, l := range links {
			pkt := gen.Next(l.std, l.ch.ID())
			bytesByLink[i] += len(pkt.Payload)
			name := l.name
			l.ch.EncryptAsync(pkt.Nonce, pkt.AAD, pkt.Payload, func(sealed []byte, err error) {
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				done++
			})
		}
	}
	p.Run()
	cycles := p.Cycles() - start

	total := 0
	for i, l := range links {
		fmt.Printf("%-12s %2d packets, %6d bytes\n", l.name, perChannel, bytesByLink[i])
		total += bytesByLink[i]
	}
	mbps := float64(total*8) / float64(cycles) * 190
	fmt.Printf("\n%d packets (%d bytes) in %d cycles -> %.0f Mbps aggregate at 190 MHz\n",
		done, total, cycles, mbps)

	st := p.Stats()
	fmt.Printf("key expansions: %d (key-affinity keeps channels on their cores)\n", st.KeyExpansions)
	fmt.Printf("queued under overload: %d, rejected: %d\n", st.Queued, st.Rejected)
}
