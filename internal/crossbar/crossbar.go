// Package crossbar models the MCCP Cross Bar (paper §III.A): the single
// shared 32-bit path between the communication controller and the core
// packet FIFOs. The Task Scheduler grants it to one core at a time for
// I/O access, so transfers to different cores serialize.
//
// The grant order is the Task Scheduler's decision, which makes it the
// third leg of the §VIII QoS extension: waiting jobs are granted in
// priority order (FIFO within a priority), so a voice frame's transfer
// never queues behind a backlog of bulk uploads. A grant is never
// preempted mid-word-burst, but long transfers are issued as a chain of
// SegmentWords-word grants (re-arbitrating between segments), bounding
// the residual a high-priority job can wait behind to one segment. With
// every job at the same priority the grant order is exactly the paper's
// FIFO and segmentation only interleaves concurrent streams without
// changing any stream's own word order or the total occupancy.
//
// Transfers against a core FIFO (WriteFIFO/ReadFIFO) take a burst fast
// path: when the whole segment can move without blocking, it is handed to
// the FIFO in one event with the per-word ready/cooling schedule a
// word-per-cycle transfer would have produced, and the grant completes at
// the arithmetically computed cycle. Segment boundaries — the QoS
// preemption points — are preserved exactly, and the word-paced reference
// path remains both as the fallback when a segment would block and as the
// Engine.Compat oracle the differential determinism tests compare against.
//
// FIFO transfers run on pooled transfer-state objects with prebuilt
// callbacks, so the steady-state packet path schedules its grant,
// last-word and release events without allocating; read accumulators come
// from internal/bufpool and are handed to the completion callback (return
// them with bufpool.PutWords when done, or let the GC have them).
package crossbar

import (
	"mccp/internal/bufpool"
	"mccp/internal/sim"
)

// WordCycle is the transfer rate: one 32-bit word per clock cycle.
const WordCycle = 1

// SegmentWords is the arbitration granularity: the longest word burst one
// grant covers before the Cross Bar re-arbitrates (a 256-byte slice of
// the 512x32-bit packet FIFOs).
const SegmentWords = 64

// job is one queued grant: either a pooled FIFO transfer (xf) or a
// generic callback transfer (fn), never both.
type job struct {
	xf   *xfer
	fn   func(done func())
	prio int
}

// Crossbar serializes I/O jobs. A generic job is a callback that performs
// its transfer (with its own pacing and backpressure handling) and must
// call the provided completion function exactly once; FIFO jobs carry
// their state in a pooled xfer instead.
type Crossbar struct {
	eng   *sim.Engine
	busy  bool
	queue []job
	qhead int

	// releaseFn is the prebuilt completion handed to generic jobs; free
	// heads the xfer pool.
	releaseFn func()
	free      *xfer

	// Grants counts completed jobs; BusyCycles accumulates occupancy for
	// the utilization metrics.
	Grants     uint64
	BusyCycles sim.Time
	start      sim.Time
}

// New returns an idle crossbar.
func New(eng *sim.Engine) *Crossbar {
	x := &Crossbar{eng: eng}
	x.releaseFn = x.release
	return x
}

// Busy reports whether a job holds the crossbar.
func (x *Crossbar) Busy() bool { return x.busy }

// QueueLen reports the number of waiting jobs.
func (x *Crossbar) QueueLen() int { return len(x.queue) - x.qhead }

// Submit enqueues a priority-0 job (the paper's FIFO behaviour).
func (x *Crossbar) Submit(fn func(done func())) { x.SubmitPrio(fn, 0) }

// SubmitPrio enqueues a job at a QoS priority. Waiting jobs are granted
// highest priority first, FIFO within a priority; the running transfer is
// never preempted.
func (x *Crossbar) SubmitPrio(fn func(done func()), prio int) {
	x.submitJob(job{fn: fn, prio: prio})
}

func (x *Crossbar) submitJob(j job) {
	if x.busy {
		x.insert(j)
		return
	}
	x.runJob(j)
}

// insert places j behind every queued job of its priority or higher.
func (x *Crossbar) insert(j job) {
	q := x.queue
	at := len(q)
	for i := x.qhead; i < len(q); i++ {
		if j.prio > q[i].prio {
			at = i
			break
		}
	}
	q = append(q, job{})
	copy(q[at+1:], q[at:])
	q[at] = j
	x.queue = q
}

func (x *Crossbar) runJob(j job) {
	x.busy = true
	x.start = x.eng.Now()
	if j.xf != nil {
		x.eng.After(0, j.xf.beginFn)
		return
	}
	fn := j.fn
	x.eng.After(0, func() { fn(x.releaseFn) })
}

// release retires the running grant and starts the next queued one.
func (x *Crossbar) release() {
	x.Grants++
	x.BusyCycles += x.eng.Now() - x.start
	if x.qhead < len(x.queue) {
		j := x.queue[x.qhead]
		x.queue[x.qhead] = job{}
		x.qhead++
		if x.qhead == len(x.queue) {
			x.queue = x.queue[:0]
			x.qhead = 0
		}
		x.runJob(j)
		return
	}
	x.busy = false
}

// xfer is the state of one FIFO transfer (write or read) across its
// segment chain. Instances are pooled per crossbar and carry prebuilt
// callbacks, so a steady-state transfer allocates nothing.
type xfer struct {
	x     *Crossbar
	f     *sim.WordFIFO
	write bool
	prio  int

	// write side: words is the source, off the consumed prefix.
	words []uint32
	off   int
	done  func()

	// read side: n is the target count, acc the pooled accumulator.
	n        int
	acc      []uint32
	doneRead func([]uint32)

	beginFn   func() // runs the next segment under the current grant
	lastHopFn func() // fires at the segment's last word cycle
	segDoneFn func() // releases the grant and chains / completes

	next *xfer // pool link
}

func (x *Crossbar) getXfer() *xfer {
	xf := x.free
	if xf == nil {
		xf = &xfer{x: x}
		xf.beginFn = xf.begin
		xf.segDoneFn = xf.segDone
		xf.lastHopFn = func() { xf.x.eng.After(WordCycle, xf.segDoneFn) }
		return xf
	}
	x.free = xf.next
	xf.next = nil
	return xf
}

func (x *Crossbar) putXfer(xf *xfer) {
	xf.f = nil
	xf.words = nil
	xf.acc = nil
	xf.done = nil
	xf.doneRead = nil
	xf.next = x.free
	x.free = xf
}

// WriteFIFO streams words into a core input FIFO at priority 0.
func (x *Crossbar) WriteFIFO(f *sim.WordFIFO, words []uint32, done func()) {
	x.WriteFIFOPrio(f, words, 0, done)
}

// WriteFIFOPrio streams words into a core input FIFO, one SegmentWords-
// bounded grant per segment at a QoS priority. A segment the FIFO can
// absorb whole moves as a single burst: the words are handed over in one
// event carrying the word-per-cycle ready schedule, and the grant releases
// at the arithmetically computed completion cycle. A segment that would
// block (FIFO backpressure) falls back to the word-paced reference
// transfer, which is also forced by Engine.Compat. words is only read
// until done fires.
func (x *Crossbar) WriteFIFOPrio(f *sim.WordFIFO, words []uint32, prio int, done func()) {
	xf := x.getXfer()
	xf.f, xf.write, xf.prio = f, true, prio
	xf.words, xf.off, xf.done = words, 0, done
	x.submitJob(job{xf: xf, prio: prio})
}

// ReadFIFO drains n words from a core output FIFO at priority 0.
func (x *Crossbar) ReadFIFO(f *sim.WordFIFO, n int, done func([]uint32)) {
	x.ReadFIFOPrio(f, n, 0, done)
}

// ReadFIFOPrio drains n words from a core output FIFO, one SegmentWords-
// bounded grant per segment at a QoS priority. A segment whose words are
// all deliverable on the word-per-cycle schedule is drained as a single
// burst (the freed slots cool down on the reference schedule); otherwise
// the word-paced reference transfer runs, as it always does under
// Engine.Compat. The result slice comes from bufpool; the consumer may
// recycle it with bufpool.PutWords once done with it.
func (x *Crossbar) ReadFIFOPrio(f *sim.WordFIFO, n, prio int, done func([]uint32)) {
	xf := x.getXfer()
	xf.f, xf.write, xf.prio = f, false, prio
	xf.n, xf.acc, xf.doneRead = n, bufpool.Words(n), done
	x.submitJob(job{xf: xf, prio: prio})
}

// begin runs one segment of the transfer under the grant just received.
func (xf *xfer) begin() {
	if xf.write {
		xf.beginWrite()
	} else {
		xf.beginRead()
	}
}

func (xf *xfer) beginWrite() {
	x := xf.x
	seg := xf.words[xf.off:]
	if len(seg) > SegmentWords {
		seg = seg[:SegmentWords]
	}
	if len(seg) == 0 {
		// Empty transfer: completes within its grant event, exactly like
		// the word-paced loop below.
		xf.segDone()
		return
	}
	start := x.eng.Now()
	if !x.eng.Compat && xf.f.CanPush(len(seg)) {
		xf.f.BulkPush(seg, start, WordCycle)
		xf.off += len(seg)
		x.eng.At(start+sim.Time(len(seg)-1)*WordCycle, xf.lastHopFn)
		return
	}
	// Word-paced reference fallback (Compat, or FIFO backpressure).
	end := xf.off + len(seg)
	var step, hop func()
	hop = func() { x.eng.After(WordCycle, step) }
	step = func() {
		if xf.off == end {
			xf.segDone()
			return
		}
		w := xf.words[xf.off]
		xf.off++
		xf.f.PushWord(w, hop)
	}
	step()
}

func (xf *xfer) beginRead() {
	x := xf.x
	seg := xf.n - len(xf.acc)
	if seg > SegmentWords {
		seg = SegmentWords
	}
	if seg == 0 {
		xf.segDone()
		return
	}
	start := x.eng.Now()
	if !x.eng.Compat && xf.f.CanPopSchedule(seg, start, WordCycle) {
		xf.acc = xf.f.BulkPop(xf.acc, seg, start, WordCycle)
		x.eng.At(start+sim.Time(seg-1)*WordCycle, xf.lastHopFn)
		return
	}
	end := len(xf.acc) + seg
	var step func()
	popped := func(w uint32) {
		xf.acc = append(xf.acc, w)
		x.eng.After(WordCycle, step)
	}
	step = func() {
		if len(xf.acc) == end {
			xf.segDone()
			return
		}
		xf.f.PopWord(popped)
	}
	step()
}

// segDone releases the grant (letting a queued job in), then either
// re-submits the next segment — the QoS preemption point — or completes
// the transfer and recycles its state.
func (xf *xfer) segDone() {
	x := xf.x
	x.release()
	if xf.write {
		if xf.off < len(xf.words) {
			x.submitJob(job{xf: xf, prio: xf.prio})
			return
		}
		done := xf.done
		x.putXfer(xf)
		done()
		return
	}
	if len(xf.acc) < xf.n {
		x.submitJob(job{xf: xf, prio: xf.prio})
		return
	}
	done, acc := xf.doneRead, xf.acc
	x.putXfer(xf)
	done(acc)
}

// WriteWords streams words into push (a core input FIFO adapter) at one
// word per cycle, as a single crossbar job. push must deliver the word and
// invoke its continuation, honouring FIFO backpressure.
func (x *Crossbar) WriteWords(words []uint32, push func(w uint32, then func()), done func()) {
	x.WriteWordsPrio(words, push, 0, done)
}

// WriteWordsPrio is WriteWords granted at a QoS priority, one
// SegmentWords-bounded grant per segment. It is the word-paced generic
// path; transfers against a WordFIFO should use WriteFIFOPrio, which adds
// the burst fast path.
func (x *Crossbar) WriteWordsPrio(words []uint32, push func(w uint32, then func()), prio int, done func()) {
	seg := words
	if len(seg) > SegmentWords {
		seg = words[:SegmentWords]
	}
	rest := words[len(seg):]
	x.SubmitPrio(func(release func()) {
		var step func(i int)
		step = func(i int) {
			if i == len(seg) {
				release()
				if len(rest) > 0 {
					x.WriteWordsPrio(rest, push, prio, done)
					return
				}
				done()
				return
			}
			push(seg[i], func() {
				x.eng.After(WordCycle, func() { step(i + 1) })
			})
		}
		step(0)
	}, prio)
}

// ReadWords drains n words from pop (a core output FIFO adapter) at one
// word per cycle, delivering the result to done.
func (x *Crossbar) ReadWords(n int, pop func(then func(uint32)), done func([]uint32)) {
	x.ReadWordsPrio(n, pop, 0, done)
}

// ReadWordsPrio is ReadWords granted at a QoS priority, one
// SegmentWords-bounded grant per segment. It is the word-paced generic
// path; transfers against a WordFIFO should use ReadFIFOPrio, which adds
// the burst fast path.
func (x *Crossbar) ReadWordsPrio(n int, pop func(then func(uint32)), prio int, done func([]uint32)) {
	x.readSegmented(nil, n, pop, prio, done)
}

func (x *Crossbar) readSegmented(acc []uint32, n int, pop func(then func(uint32)), prio int, done func([]uint32)) {
	seg := n - len(acc)
	if seg > SegmentWords {
		seg = SegmentWords
	}
	x.SubmitPrio(func(release func()) {
		got := 0
		var step func()
		step = func() {
			if got == seg {
				release()
				if len(acc) < n {
					x.readSegmented(acc, n, pop, prio, done)
					return
				}
				done(acc)
				return
			}
			pop(func(w uint32) {
				acc = append(acc, w)
				got++
				x.eng.After(WordCycle, step)
			})
		}
		step()
	}, prio)
}
