// Package crossbar models the MCCP Cross Bar (paper §III.A): the single
// shared 32-bit path between the communication controller and the core
// packet FIFOs. The Task Scheduler grants it to one core at a time for
// I/O access, so transfers to different cores serialize.
package crossbar

import "mccp/internal/sim"

// WordCycle is the transfer rate: one 32-bit word per clock cycle.
const WordCycle = 1

// Crossbar serializes I/O jobs. A job is a callback that performs its
// transfer (with its own pacing and backpressure handling) and must call
// the provided completion function exactly once.
type Crossbar struct {
	eng   *sim.Engine
	busy  bool
	queue []func(done func())

	// Grants counts completed jobs; BusyCycles accumulates occupancy for
	// the utilization metrics.
	Grants     uint64
	BusyCycles sim.Time
	start      sim.Time
}

// New returns an idle crossbar.
func New(eng *sim.Engine) *Crossbar { return &Crossbar{eng: eng} }

// Busy reports whether a job holds the crossbar.
func (x *Crossbar) Busy() bool { return x.busy }

// QueueLen reports the number of waiting jobs.
func (x *Crossbar) QueueLen() int { return len(x.queue) }

// Submit enqueues a job. Jobs run in submission order, one at a time.
func (x *Crossbar) Submit(job func(done func())) {
	if x.busy {
		x.queue = append(x.queue, job)
		return
	}
	x.run(job)
}

func (x *Crossbar) run(job func(done func())) {
	x.busy = true
	x.start = x.eng.Now()
	x.eng.After(0, func() {
		job(func() {
			x.Grants++
			x.BusyCycles += x.eng.Now() - x.start
			if len(x.queue) > 0 {
				next := x.queue[0]
				x.queue = x.queue[1:]
				x.run(next)
				return
			}
			x.busy = false
		})
	})
}

// WriteWords streams words into push (a core input FIFO adapter) at one
// word per cycle, as a single crossbar job. push must deliver the word and
// invoke its continuation, honouring FIFO backpressure.
func (x *Crossbar) WriteWords(words []uint32, push func(w uint32, then func()), done func()) {
	x.Submit(func(release func()) {
		var step func(i int)
		step = func(i int) {
			if i == len(words) {
				release()
				done()
				return
			}
			push(words[i], func() {
				x.eng.After(WordCycle, func() { step(i + 1) })
			})
		}
		step(0)
	})
}

// ReadWords drains n words from pop (a core output FIFO adapter) at one
// word per cycle, delivering the result to done.
func (x *Crossbar) ReadWords(n int, pop func(then func(uint32)), done func([]uint32)) {
	x.Submit(func(release func()) {
		out := make([]uint32, 0, n)
		var step func()
		step = func() {
			if len(out) == n {
				release()
				done(out)
				return
			}
			pop(func(w uint32) {
				out = append(out, w)
				x.eng.After(WordCycle, step)
			})
		}
		step()
	})
}
