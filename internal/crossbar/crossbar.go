// Package crossbar models the MCCP Cross Bar (paper §III.A): the single
// shared 32-bit path between the communication controller and the core
// packet FIFOs. The Task Scheduler grants it to one core at a time for
// I/O access, so transfers to different cores serialize.
//
// The grant order is the Task Scheduler's decision, which makes it the
// third leg of the §VIII QoS extension: waiting jobs are granted in
// priority order (FIFO within a priority), so a voice frame's transfer
// never queues behind a backlog of bulk uploads. A grant is never
// preempted mid-word-burst, but long transfers are issued as a chain of
// SegmentWords-word grants (re-arbitrating between segments), bounding
// the residual a high-priority job can wait behind to one segment. With
// every job at the same priority the grant order is exactly the paper's
// FIFO and segmentation only interleaves concurrent streams without
// changing any stream's own word order or the total occupancy.
//
// Transfers against a core FIFO (WriteFIFO/ReadFIFO) take a burst fast
// path: when the whole segment can move without blocking, it is handed to
// the FIFO in one event with the per-word ready/cooling schedule a
// word-per-cycle transfer would have produced, and the grant completes at
// the arithmetically computed cycle. Segment boundaries — the QoS
// preemption points — are preserved exactly, and the word-paced reference
// path remains both as the fallback when a segment would block and as the
// Engine.Compat oracle the differential determinism tests compare against.
package crossbar

import "mccp/internal/sim"

// WordCycle is the transfer rate: one 32-bit word per clock cycle.
const WordCycle = 1

// SegmentWords is the arbitration granularity: the longest word burst one
// grant covers before the Cross Bar re-arbitrates (a 256-byte slice of
// the 512x32-bit packet FIFOs).
const SegmentWords = 64

// job is one queued transfer.
type job struct {
	fn   func(done func())
	prio int
}

// Crossbar serializes I/O jobs. A job is a callback that performs its
// transfer (with its own pacing and backpressure handling) and must call
// the provided completion function exactly once.
type Crossbar struct {
	eng   *sim.Engine
	busy  bool
	queue []job

	// Grants counts completed jobs; BusyCycles accumulates occupancy for
	// the utilization metrics.
	Grants     uint64
	BusyCycles sim.Time
	start      sim.Time
}

// New returns an idle crossbar.
func New(eng *sim.Engine) *Crossbar { return &Crossbar{eng: eng} }

// Busy reports whether a job holds the crossbar.
func (x *Crossbar) Busy() bool { return x.busy }

// QueueLen reports the number of waiting jobs.
func (x *Crossbar) QueueLen() int { return len(x.queue) }

// Submit enqueues a priority-0 job (the paper's FIFO behaviour).
func (x *Crossbar) Submit(fn func(done func())) { x.SubmitPrio(fn, 0) }

// SubmitPrio enqueues a job at a QoS priority. Waiting jobs are granted
// highest priority first, FIFO within a priority; the running transfer is
// never preempted.
func (x *Crossbar) SubmitPrio(fn func(done func()), prio int) {
	if x.busy {
		j := job{fn: fn, prio: prio}
		at := len(x.queue)
		for i, q := range x.queue {
			if prio > q.prio {
				at = i
				break
			}
		}
		x.queue = append(x.queue, job{})
		copy(x.queue[at+1:], x.queue[at:])
		x.queue[at] = j
		return
	}
	x.run(fn)
}

func (x *Crossbar) run(fn func(done func())) {
	x.busy = true
	x.start = x.eng.Now()
	x.eng.After(0, func() {
		fn(func() {
			x.Grants++
			x.BusyCycles += x.eng.Now() - x.start
			if len(x.queue) > 0 {
				next := x.queue[0]
				x.queue = x.queue[1:]
				x.run(next.fn)
				return
			}
			x.busy = false
		})
	})
}

// WriteWords streams words into push (a core input FIFO adapter) at one
// word per cycle, as a single crossbar job. push must deliver the word and
// invoke its continuation, honouring FIFO backpressure.
func (x *Crossbar) WriteWords(words []uint32, push func(w uint32, then func()), done func()) {
	x.WriteWordsPrio(words, push, 0, done)
}

// WriteWordsPrio is WriteWords granted at a QoS priority, one
// SegmentWords-bounded grant per segment. It is the word-paced generic
// path; transfers against a WordFIFO should use WriteFIFOPrio, which adds
// the burst fast path.
func (x *Crossbar) WriteWordsPrio(words []uint32, push func(w uint32, then func()), prio int, done func()) {
	seg := words
	if len(seg) > SegmentWords {
		seg = words[:SegmentWords]
	}
	rest := words[len(seg):]
	x.SubmitPrio(func(release func()) {
		var step func(i int)
		step = func(i int) {
			if i == len(seg) {
				release()
				if len(rest) > 0 {
					x.WriteWordsPrio(rest, push, prio, done)
					return
				}
				done()
				return
			}
			push(seg[i], func() {
				x.eng.After(WordCycle, func() { step(i + 1) })
			})
		}
		step(0)
	}, prio)
}

// ReadWords drains n words from pop (a core output FIFO adapter) at one
// word per cycle, delivering the result to done.
func (x *Crossbar) ReadWords(n int, pop func(then func(uint32)), done func([]uint32)) {
	x.ReadWordsPrio(n, pop, 0, done)
}

// ReadWordsPrio is ReadWords granted at a QoS priority, one
// SegmentWords-bounded grant per segment. It is the word-paced generic
// path; transfers against a WordFIFO should use ReadFIFOPrio, which adds
// the burst fast path.
func (x *Crossbar) ReadWordsPrio(n int, pop func(then func(uint32)), prio int, done func([]uint32)) {
	x.readSegmented(nil, n, pop, prio, done)
}

func (x *Crossbar) readSegmented(acc []uint32, n int, pop func(then func(uint32)), prio int, done func([]uint32)) {
	seg := n - len(acc)
	if seg > SegmentWords {
		seg = SegmentWords
	}
	x.SubmitPrio(func(release func()) {
		got := 0
		var step func()
		step = func() {
			if got == seg {
				release()
				if len(acc) < n {
					x.readSegmented(acc, n, pop, prio, done)
					return
				}
				done(acc)
				return
			}
			pop(func(w uint32) {
				acc = append(acc, w)
				got++
				x.eng.After(WordCycle, step)
			})
		}
		step()
	}, prio)
}

// WriteFIFO streams words into a core input FIFO at priority 0.
func (x *Crossbar) WriteFIFO(f *sim.WordFIFO, words []uint32, done func()) {
	x.WriteFIFOPrio(f, words, 0, done)
}

// WriteFIFOPrio streams words into a core input FIFO, one SegmentWords-
// bounded grant per segment at a QoS priority. A segment the FIFO can
// absorb whole moves as a single burst: the words are handed over in one
// event carrying the word-per-cycle ready schedule, and the grant releases
// at the arithmetically computed completion cycle. A segment that would
// block (FIFO backpressure) falls back to the word-paced reference
// transfer, which is also forced by Engine.Compat.
func (x *Crossbar) WriteFIFOPrio(f *sim.WordFIFO, words []uint32, prio int, done func()) {
	seg := words
	if len(seg) > SegmentWords {
		seg = words[:SegmentWords]
	}
	rest := words[len(seg):]
	x.SubmitPrio(func(release func()) {
		finish := func() {
			release()
			if len(rest) > 0 {
				x.WriteFIFOPrio(f, rest, prio, done)
				return
			}
			done()
		}
		if len(seg) == 0 {
			// Empty transfer: completes within its grant event, exactly
			// like the word-paced loop below.
			finish()
			return
		}
		start := x.eng.Now()
		if !x.eng.Compat && f.CanPush(len(seg)) {
			f.BulkPush(seg, start, WordCycle)
			x.finishAt(start, len(seg), finish)
			return
		}
		var step func(i int)
		step = func(i int) {
			if i == len(seg) {
				finish()
				return
			}
			f.PushWord(seg[i], func() {
				x.eng.After(WordCycle, func() { step(i + 1) })
			})
		}
		step(0)
	}, prio)
}

// ReadFIFO drains n words from a core output FIFO at priority 0.
func (x *Crossbar) ReadFIFO(f *sim.WordFIFO, n int, done func([]uint32)) {
	x.ReadFIFOPrio(f, n, 0, done)
}

// ReadFIFOPrio drains n words from a core output FIFO, one SegmentWords-
// bounded grant per segment at a QoS priority. A segment whose words are
// all deliverable on the word-per-cycle schedule is drained as a single
// burst (the freed slots cool down on the reference schedule); otherwise
// the word-paced reference transfer runs, as it always does under
// Engine.Compat.
func (x *Crossbar) ReadFIFOPrio(f *sim.WordFIFO, n, prio int, done func([]uint32)) {
	x.readFIFOSegmented(f, make([]uint32, 0, n), n, prio, done)
}

func (x *Crossbar) readFIFOSegmented(f *sim.WordFIFO, acc []uint32, n, prio int, done func([]uint32)) {
	seg := n - len(acc)
	if seg > SegmentWords {
		seg = SegmentWords
	}
	x.SubmitPrio(func(release func()) {
		finish := func() {
			release()
			if len(acc) < n {
				x.readFIFOSegmented(f, acc, n, prio, done)
				return
			}
			done(acc)
		}
		if seg == 0 {
			// Empty transfer: completes within its grant event, exactly
			// like the word-paced loop below.
			finish()
			return
		}
		start := x.eng.Now()
		if !x.eng.Compat && f.CanPopSchedule(seg, start, WordCycle) {
			acc = f.BulkPop(acc, seg, start, WordCycle)
			x.finishAt(start, seg, finish)
			return
		}
		got := 0
		var step func()
		step = func() {
			if got == seg {
				finish()
				return
			}
			f.PopWord(func(w uint32) {
				acc = append(acc, w)
				got++
				x.eng.After(WordCycle, step)
			})
		}
		step()
	}, prio)
}

// finishAt schedules a burst segment's completion. The release is issued
// in two hops — the last word's cycle, then one WordCycle — so its event
// is created at the same virtual instant as the word-paced reference
// path's release, keeping same-cycle arbitration order identical.
func (x *Crossbar) finishAt(start sim.Time, seg int, finish func()) {
	last := start + sim.Time(seg-1)*WordCycle
	x.eng.At(last, func() { x.eng.After(WordCycle, finish) })
}
