// Package crossbar models the MCCP Cross Bar (paper §III.A): the single
// shared 32-bit path between the communication controller and the core
// packet FIFOs. The Task Scheduler grants it to one core at a time for
// I/O access, so transfers to different cores serialize.
//
// The grant order is the Task Scheduler's decision, which makes it the
// third leg of the §VIII QoS extension: waiting jobs are granted in
// priority order (FIFO within a priority), so a voice frame's transfer
// never queues behind a backlog of bulk uploads. A grant is never
// preempted mid-word-burst, but long transfers are issued as a chain of
// SegmentWords-word grants (re-arbitrating between segments), bounding
// the residual a high-priority job can wait behind to one segment. With
// every job at the same priority the grant order is exactly the paper's
// FIFO and segmentation only interleaves concurrent streams without
// changing any stream's own word order or the total occupancy.
package crossbar

import "mccp/internal/sim"

// WordCycle is the transfer rate: one 32-bit word per clock cycle.
const WordCycle = 1

// SegmentWords is the arbitration granularity: the longest word burst one
// grant covers before the Cross Bar re-arbitrates (a 256-byte slice of
// the 512x32-bit packet FIFOs).
const SegmentWords = 64

// job is one queued transfer.
type job struct {
	fn   func(done func())
	prio int
}

// Crossbar serializes I/O jobs. A job is a callback that performs its
// transfer (with its own pacing and backpressure handling) and must call
// the provided completion function exactly once.
type Crossbar struct {
	eng   *sim.Engine
	busy  bool
	queue []job

	// Grants counts completed jobs; BusyCycles accumulates occupancy for
	// the utilization metrics.
	Grants     uint64
	BusyCycles sim.Time
	start      sim.Time
}

// New returns an idle crossbar.
func New(eng *sim.Engine) *Crossbar { return &Crossbar{eng: eng} }

// Busy reports whether a job holds the crossbar.
func (x *Crossbar) Busy() bool { return x.busy }

// QueueLen reports the number of waiting jobs.
func (x *Crossbar) QueueLen() int { return len(x.queue) }

// Submit enqueues a priority-0 job (the paper's FIFO behaviour).
func (x *Crossbar) Submit(fn func(done func())) { x.SubmitPrio(fn, 0) }

// SubmitPrio enqueues a job at a QoS priority. Waiting jobs are granted
// highest priority first, FIFO within a priority; the running transfer is
// never preempted.
func (x *Crossbar) SubmitPrio(fn func(done func()), prio int) {
	if x.busy {
		j := job{fn: fn, prio: prio}
		at := len(x.queue)
		for i, q := range x.queue {
			if prio > q.prio {
				at = i
				break
			}
		}
		x.queue = append(x.queue, job{})
		copy(x.queue[at+1:], x.queue[at:])
		x.queue[at] = j
		return
	}
	x.run(fn)
}

func (x *Crossbar) run(fn func(done func())) {
	x.busy = true
	x.start = x.eng.Now()
	x.eng.After(0, func() {
		fn(func() {
			x.Grants++
			x.BusyCycles += x.eng.Now() - x.start
			if len(x.queue) > 0 {
				next := x.queue[0]
				x.queue = x.queue[1:]
				x.run(next.fn)
				return
			}
			x.busy = false
		})
	})
}

// WriteWords streams words into push (a core input FIFO adapter) at one
// word per cycle, as a single crossbar job. push must deliver the word and
// invoke its continuation, honouring FIFO backpressure.
func (x *Crossbar) WriteWords(words []uint32, push func(w uint32, then func()), done func()) {
	x.WriteWordsPrio(words, push, 0, done)
}

// WriteWordsPrio is WriteWords granted at a QoS priority, one
// SegmentWords-bounded grant per segment.
func (x *Crossbar) WriteWordsPrio(words []uint32, push func(w uint32, then func()), prio int, done func()) {
	seg := words
	if len(seg) > SegmentWords {
		seg = words[:SegmentWords]
	}
	rest := words[len(seg):]
	x.SubmitPrio(func(release func()) {
		var step func(i int)
		step = func(i int) {
			if i == len(seg) {
				release()
				if len(rest) > 0 {
					x.WriteWordsPrio(rest, push, prio, done)
					return
				}
				done()
				return
			}
			push(seg[i], func() {
				x.eng.After(WordCycle, func() { step(i + 1) })
			})
		}
		step(0)
	}, prio)
}

// ReadWords drains n words from pop (a core output FIFO adapter) at one
// word per cycle, delivering the result to done.
func (x *Crossbar) ReadWords(n int, pop func(then func(uint32)), done func([]uint32)) {
	x.ReadWordsPrio(n, pop, 0, done)
}

// ReadWordsPrio is ReadWords granted at a QoS priority, one
// SegmentWords-bounded grant per segment.
func (x *Crossbar) ReadWordsPrio(n int, pop func(then func(uint32)), prio int, done func([]uint32)) {
	x.readSegmented(nil, n, pop, prio, done)
}

func (x *Crossbar) readSegmented(acc []uint32, n int, pop func(then func(uint32)), prio int, done func([]uint32)) {
	seg := n - len(acc)
	if seg > SegmentWords {
		seg = SegmentWords
	}
	x.SubmitPrio(func(release func()) {
		got := 0
		var step func()
		step = func() {
			if got == seg {
				release()
				if len(acc) < n {
					x.readSegmented(acc, n, pop, prio, done)
					return
				}
				done(acc)
				return
			}
			pop(func(w uint32) {
				acc = append(acc, w)
				got++
				x.eng.After(WordCycle, step)
			})
		}
		step()
	}, prio)
}
