package crossbar

import (
	"testing"

	"mccp/internal/sim"
)

func TestJobsSerialize(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	var order []int
	// Job 0 holds the bar for 100 cycles; jobs 1 and 2 queue.
	x.Submit(func(done func()) {
		eng.After(100, func() { order = append(order, 0); done() })
	})
	x.Submit(func(done func()) { order = append(order, 1); done() })
	x.Submit(func(done func()) { order = append(order, 2); done() })
	if !x.Busy() || x.QueueLen() != 2 {
		t.Fatalf("busy=%v queue=%d", x.Busy(), x.QueueLen())
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if x.Busy() || x.Grants != 3 {
		t.Errorf("busy=%v grants=%d", x.Busy(), x.Grants)
	}
	if x.BusyCycles < 100 {
		t.Errorf("busy cycles = %d", x.BusyCycles)
	}
}

func TestWriteWordsPacing(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	fifo := sim.NewWordFIFO(eng, 16)
	words := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	var finished sim.Time
	x.WriteWords(words, func(w uint32, then func()) {
		if !fifo.TryPush(w) {
			t.Fatal("push failed")
		}
		then()
	}, func() { finished = eng.Now() })
	eng.Run()
	if fifo.Len() != 8 {
		t.Fatalf("fifo len = %d", fifo.Len())
	}
	// One word per cycle: 8 words finish at ~8 cycles.
	if finished != 8 {
		t.Errorf("finished at %d, want 8", finished)
	}
}

func TestWriteBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	fifo := sim.NewWordFIFO(eng, 2)
	words := []uint32{1, 2, 3, 4}
	pushed := 0
	push := func(w uint32, then func()) {
		var try func()
		try = func() {
			if fifo.TryPush(w) {
				pushed++
				then()
				return
			}
			fifo.WhenPushable(1, try)
		}
		try()
	}
	doneAt := sim.Time(0)
	x.WriteWords(words, push, func() { doneAt = eng.Now() })
	// Drain one word at t=50 and the rest at t=90.
	eng.At(50, func() { fifo.TryPop() })
	eng.At(90, func() { fifo.TryPop(); fifo.TryPop() })
	eng.Run()
	if pushed != 4 {
		t.Fatalf("pushed = %d", pushed)
	}
	if doneAt < 90 {
		t.Errorf("write completed at %d despite backpressure", doneAt)
	}
}

func TestReadWords(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	fifo := sim.NewWordFIFO(eng, 16)
	for i := uint32(0); i < 6; i++ {
		fifo.TryPush(i * 11)
	}
	var got []uint32
	x.ReadWords(6, func(then func(uint32)) {
		w, ok := fifo.TryPop()
		if !ok {
			t.Fatal("pop failed")
		}
		then(w)
	}, func(ws []uint32) { got = ws })
	eng.Run()
	if len(got) != 6 {
		t.Fatalf("got %d words", len(got))
	}
	for i, w := range got {
		if w != uint32(i)*11 {
			t.Fatalf("word %d = %d", i, w)
		}
	}
}

func TestInterleavedReadWriteStayOrdered(t *testing.T) {
	// A read submitted while a write holds the bar must wait: models the
	// Task Scheduler granting one core's FIFO at a time.
	eng := sim.NewEngine()
	x := New(eng)
	src := sim.NewWordFIFO(eng, 8)
	dst := sim.NewWordFIFO(eng, 8)
	for i := uint32(0); i < 4; i++ {
		src.TryPush(i)
	}
	var writeDone, readDone sim.Time
	x.WriteWords([]uint32{9, 9, 9, 9}, func(w uint32, then func()) {
		dst.TryPush(w)
		then()
	}, func() { writeDone = eng.Now() })
	x.ReadWords(4, func(then func(uint32)) {
		w, _ := src.TryPop()
		then(w)
	}, func([]uint32) { readDone = eng.Now() })
	eng.Run()
	if readDone <= writeDone {
		t.Errorf("read finished at %d before write at %d", readDone, writeDone)
	}
}
