package crossbar

import (
	"testing"

	"mccp/internal/sim"
)

func TestJobsSerialize(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	var order []int
	// Job 0 holds the bar for 100 cycles; jobs 1 and 2 queue.
	x.Submit(func(done func()) {
		eng.After(100, func() { order = append(order, 0); done() })
	})
	x.Submit(func(done func()) { order = append(order, 1); done() })
	x.Submit(func(done func()) { order = append(order, 2); done() })
	if !x.Busy() || x.QueueLen() != 2 {
		t.Fatalf("busy=%v queue=%d", x.Busy(), x.QueueLen())
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if x.Busy() || x.Grants != 3 {
		t.Errorf("busy=%v grants=%d", x.Busy(), x.Grants)
	}
	if x.BusyCycles < 100 {
		t.Errorf("busy cycles = %d", x.BusyCycles)
	}
}

func TestWriteWordsPacing(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	fifo := sim.NewWordFIFO(eng, 16)
	words := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	var finished sim.Time
	x.WriteWords(words, func(w uint32, then func()) {
		if !fifo.TryPush(w) {
			t.Fatal("push failed")
		}
		then()
	}, func() { finished = eng.Now() })
	eng.Run()
	if fifo.Len() != 8 {
		t.Fatalf("fifo len = %d", fifo.Len())
	}
	// One word per cycle: 8 words finish at ~8 cycles.
	if finished != 8 {
		t.Errorf("finished at %d, want 8", finished)
	}
}

func TestWriteBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	fifo := sim.NewWordFIFO(eng, 2)
	words := []uint32{1, 2, 3, 4}
	pushed := 0
	push := func(w uint32, then func()) {
		var try func()
		try = func() {
			if fifo.TryPush(w) {
				pushed++
				then()
				return
			}
			fifo.WhenPushable(1, try)
		}
		try()
	}
	doneAt := sim.Time(0)
	x.WriteWords(words, push, func() { doneAt = eng.Now() })
	// Drain one word at t=50 and the rest at t=90.
	eng.At(50, func() { fifo.TryPop() })
	eng.At(90, func() { fifo.TryPop(); fifo.TryPop() })
	eng.Run()
	if pushed != 4 {
		t.Fatalf("pushed = %d", pushed)
	}
	if doneAt < 90 {
		t.Errorf("write completed at %d despite backpressure", doneAt)
	}
}

func TestReadWords(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng)
	fifo := sim.NewWordFIFO(eng, 16)
	for i := uint32(0); i < 6; i++ {
		fifo.TryPush(i * 11)
	}
	var got []uint32
	x.ReadWords(6, func(then func(uint32)) {
		w, ok := fifo.TryPop()
		if !ok {
			t.Fatal("pop failed")
		}
		then(w)
	}, func(ws []uint32) { got = ws })
	eng.Run()
	if len(got) != 6 {
		t.Fatalf("got %d words", len(got))
	}
	for i, w := range got {
		if w != uint32(i)*11 {
			t.Fatalf("word %d = %d", i, w)
		}
	}
}

func TestInterleavedReadWriteStayOrdered(t *testing.T) {
	// A read submitted while a write holds the bar must wait: models the
	// Task Scheduler granting one core's FIFO at a time.
	eng := sim.NewEngine()
	x := New(eng)
	src := sim.NewWordFIFO(eng, 8)
	dst := sim.NewWordFIFO(eng, 8)
	for i := uint32(0); i < 4; i++ {
		src.TryPush(i)
	}
	var writeDone, readDone sim.Time
	x.WriteWords([]uint32{9, 9, 9, 9}, func(w uint32, then func()) {
		dst.TryPush(w)
		then()
	}, func() { writeDone = eng.Now() })
	x.ReadWords(4, func(then func(uint32)) {
		w, _ := src.TryPop()
		then(w)
	}, func([]uint32) { readDone = eng.Now() })
	eng.Run()
	if readDone <= writeDone {
		t.Errorf("read finished at %d before write at %d", readDone, writeDone)
	}
}

func TestFIFOEmptyTransfers(t *testing.T) {
	// Zero-length transfers through the burst-capable FIFO paths must
	// complete (regression: the burst completion underflowed on an empty
	// segment). They still consume a grant, like the word-paced path.
	eng := sim.NewEngine()
	x := New(eng)
	f := sim.NewWordFIFO(eng, 8)
	eng.After(5, func() {}) // move the clock off zero first
	eng.Run()
	wrote, read := false, false
	x.WriteFIFO(f, nil, func() { wrote = true })
	x.ReadFIFO(f, 0, func(ws []uint32) { read = len(ws) == 0 })
	eng.Run()
	if !wrote || !read {
		t.Fatalf("empty transfers did not complete: wrote=%v read=%v", wrote, read)
	}
	if x.Grants != 2 {
		t.Errorf("grants = %d, want 2", x.Grants)
	}
}

func TestFIFOBurstMatchesWordPaced(t *testing.T) {
	// The burst fast path and the word-paced reference must complete a
	// segment chain at the same cycle.
	run := func(compat bool) (sim.Time, []uint32) {
		eng := sim.NewEngine()
		eng.Compat = compat
		x := New(eng)
		in := sim.NewWordFIFO(eng, 256)
		words := make([]uint32, 130) // 3 segments: 64+64+2
		for i := range words {
			words[i] = uint32(i)
		}
		var doneAt sim.Time
		x.WriteFIFO(in, words, func() { doneAt = eng.Now() })
		eng.Run()
		var got []uint32
		for {
			w, ok := in.TryPop()
			if !ok {
				break
			}
			got = append(got, w)
		}
		return doneAt, got
	}
	fastAt, fastWords := run(false)
	refAt, refWords := run(true)
	if fastAt != refAt {
		t.Errorf("burst completion at %d, reference at %d", fastAt, refAt)
	}
	if len(fastWords) != len(refWords) || len(fastWords) != 130 {
		t.Fatalf("word counts: fast %d ref %d", len(fastWords), len(refWords))
	}
	for i := range fastWords {
		if fastWords[i] != refWords[i] {
			t.Fatalf("word %d: fast %d ref %d", i, fastWords[i], refWords[i])
		}
	}
}
