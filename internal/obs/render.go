package obs

import "io"

// TextSnapshot is anything that renders itself as the cluster's text
// report (cluster.Metrics satisfies it). The interface lives here so the
// renderer can sit below cluster in the import graph.
type TextSnapshot interface{ Format() string }

// WriteReport writes the one text report both CLI front ends
// (mccpcluster, mccpserver) print at exit: the snapshot's own format,
// followed by the registry's metrics in exposition format when one is
// attached.
func WriteReport(w io.Writer, snap TextSnapshot, reg *Registry) error {
	if snap != nil {
		if _, err := io.WriteString(w, snap.Format()); err != nil {
			return err
		}
	}
	if reg != nil {
		if _, err := io.WriteString(w, "\n# metrics\n"); err != nil {
			return err
		}
		return reg.WriteProm(w)
	}
	return nil
}
