package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo reports the binary's module version and VCS revision from
// the embedded build information ("(devel)"/"unknown" when absent, as
// in a plain `go test` binary).
func BuildInfo() (version, revision string) {
	version, revision = "(devel)", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return version, revision
}

// VersionLine renders the one-line -version output every cmd/* binary
// prints.
func VersionLine(binary string) string {
	version, revision := BuildInfo()
	return fmt.Sprintf("%s %s (rev %s, %s)", binary, version, revision, runtime.Version())
}

// RegisterBuildInfo exposes the build information as the conventional
// constant-1 info gauge.
func RegisterBuildInfo(r *Registry, binary string) {
	version, revision := BuildInfo()
	labels := fmt.Sprintf("binary=%q,version=%q,revision=%q,goversion=%q",
		binary, version, revision, runtime.Version())
	r.GaugeLabeled("mccp_build_info", labels).Set(1)
}
