package obs

import (
	"fmt"
	"strings"
	"sync"

	"mccp/internal/sim"
)

// This file is the flight recorder: a bounded per-shard ring of recent
// spans and lifecycle events that keeps overwriting itself while the
// shard is healthy, and is frozen into an immutable Dump the moment
// something goes wrong — a crash fires, the front end quarantines the
// shard, a brownout denies admission. The E16/E17 drills then stop being
// pass/fail curves and become inspectable postmortems: what the shard
// was doing in the cycles before it died is right there in the dump.

// EventKind classifies a recorder entry.
type EventKind uint8

const (
	// EvSpan is a completed packet span (recorded via the tracer's OnEnd
	// hook when tracing is enabled).
	EvSpan EventKind = iota
	// EvCrash: an armed ShardCrash fault fired on the shard's engine.
	EvCrash
	// EvStall: an armed ShardStall froze the shaper's pump.
	EvStall
	// EvQuarantine: the front end declared the shard dead and withdrew
	// it from routing.
	EvQuarantine
	// EvBrownoutOn / EvBrownoutOff: a brownout admission mask was
	// installed / lifted on the shard's shaper.
	EvBrownoutOn
	EvBrownoutOff
	// EvRestart: the shard was rebuilt from quarantine.
	EvRestart

	numEventKinds = int(EvRestart) + 1
)

var eventNames = [numEventKinds]string{
	"span", "crash", "stall", "quarantine", "brownout-on", "brownout-off", "restart",
}

func (k EventKind) String() string {
	if int(k) >= numEventKinds {
		return "invalid"
	}
	return eventNames[k]
}

// Record is one flight-recorder entry: a lifecycle event or a completed
// span, stamped with the shard's virtual time.
type Record struct {
	At   sim.Time
	Kind EventKind
	Note string
	// Span is valid when Kind == EvSpan.
	Span Span
}

// Dump is a frozen ring: the recorder's contents, oldest first, at the
// moment Freeze was called.
type Dump struct {
	Shard   int
	Reason  string
	At      sim.Time
	Records []Record
}

// Format renders the dump as the postmortem text report.
func (d Dump) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "postmortem: shard %d, reason %s, at cycle %d (%d records)\n",
		d.Shard, d.Reason, d.At, len(d.Records))
	for _, r := range d.Records {
		if r.Kind == EvSpan {
			st := r.Span.Stages()
			fmt.Fprintf(&b, "  %12d  span id=%d class=%d bytes=%d outcome=%s total=%d (queue=%d sched=%d xbar_up=%d core=%d drain=%d)\n",
				r.At, r.Span.ID, r.Span.Class, r.Span.Bytes, r.Span.Outcome,
				r.Span.Total(), st[0], st[1], st[2], st[3], st[4])
			continue
		}
		fmt.Fprintf(&b, "  %12d  %s", r.At, r.Kind)
		if r.Note != "" {
			fmt.Fprintf(&b, ": %s", r.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultRingDepth is the recorder depth when the configuration leaves
// it zero.
const DefaultRingDepth = 128

// maxDumps bounds the frozen dumps a recorder retains (repeated
// brownout oscillation must not grow memory without bound).
const maxDumps = 8

// Recorder is one shard's flight recorder. Entries are appended by the
// shard goroutine; Freeze may also be called by the front end (a
// quarantine decision is made there), so the ring is mutex-protected —
// the lock is uncontended in steady state and the recorder is far off
// the per-packet fast path unless tracing is enabled. A nil *Recorder
// is valid and inert.
type Recorder struct {
	mu    sync.Mutex
	shard int
	ring  []Record
	next  int
	n     int
	dumps []Dump
}

// NewRecorder builds a recorder for a shard with the given ring depth
// (0 = DefaultRingDepth).
func NewRecorder(shard, depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	return &Recorder{shard: shard, ring: make([]Record, depth)}
}

func (r *Recorder) push(rec Record) {
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
}

// Event records a lifecycle event at a virtual time.
func (r *Recorder) Event(at sim.Time, k EventKind, note string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.push(Record{At: at, Kind: k, Note: note})
	r.mu.Unlock()
}

// RecordSpan records a completed span (shaped as a Tracer OnEnd hook).
func (r *Recorder) RecordSpan(sp *Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.push(Record{At: sp.End, Kind: EvSpan, Span: *sp})
	r.mu.Unlock()
}

// Freeze snapshots the ring, oldest record first, into a retained Dump.
// The ring keeps recording afterwards; only the snapshot is immutable.
func (r *Recorder) Freeze(reason string, at sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dumps) >= maxDumps {
		return
	}
	recs := make([]Record, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		recs = append(recs, r.ring[(start+i)%len(r.ring)])
	}
	r.dumps = append(r.dumps, Dump{Shard: r.shard, Reason: reason, At: at, Records: recs})
}

// Dumps returns a copy of the frozen dumps, oldest first.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Dump(nil), r.dumps...)
}
