package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics registry: typed counters/gauges/histograms
// with lock-free hot-path updates, plus pull collectors that bridge the
// stack's existing counter structs (cluster snapshots, shaper stats,
// server wire totals) into the same read path. Everything that renders
// metrics — the Prometheus text endpoint, the STATS wire op, the CLI
// report — goes through Gather, so there is exactly one exposition
// format and one naming scheme.

// Counter is a monotonically increasing metric with atomic updates.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable metric (float64, stored as bits for atomicity).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; rare path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Load reads the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: upper bounds are set at
// registration, updates are a linear probe plus atomic increments — no
// allocation, no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reads the total observation count.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sample is one gathered metric point. Labels, when non-empty, is the
// pre-rendered Prometheus label body (`key="value",...` without braces).
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Registry holds metric collectors. Native instruments (Counter, Gauge,
// Histogram) register an emitting closure at creation; existing counter
// structs elsewhere in the stack join via RegisterFunc without changing
// their hot paths.
type Registry struct {
	mu         sync.Mutex
	collectors []func(emit func(Sample))
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterFunc adds a pull collector: fn is called at every Gather and
// emits whatever samples it wants. Collectors must be safe to call from
// any goroutine (read atomics or published snapshots, not live
// single-caller state).
func (r *Registry) RegisterFunc(fn func(emit func(Sample))) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.RegisterFunc(func(emit func(Sample)) {
		emit(Sample{Name: name, Value: float64(c.Load())})
	})
	return c
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.RegisterFunc(func(emit func(Sample)) {
		emit(Sample{Name: name, Value: g.Load()})
	})
	return g
}

// GaugeLabeled creates and registers a gauge carrying a fixed label body.
func (r *Registry) GaugeLabeled(name, labels string) *Gauge {
	g := &Gauge{}
	r.RegisterFunc(func(emit func(Sample)) {
		emit(Sample{Name: name, Labels: labels, Value: g.Load()})
	})
	return g
}

// Histogram creates and registers a fixed-bucket histogram; bounds are
// the bucket upper bounds in ascending order (a +Inf bucket is implied).
// It exposes name_bucket{le=...} cumulative counts plus name_sum and
// name_count, the Prometheus histogram convention.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	r.RegisterFunc(func(emit func(Sample)) {
		cum := uint64(0)
		for i := range h.bounds {
			cum += h.counts[i].Load()
			emit(Sample{Name: name + "_bucket", Labels: fmt.Sprintf(`le="%g"`, h.bounds[i]), Value: float64(cum)})
		}
		cum += h.counts[len(h.bounds)].Load()
		emit(Sample{Name: name + "_bucket", Labels: `le="+Inf"`, Value: float64(cum)})
		emit(Sample{Name: name + "_sum", Value: math.Float64frombits(h.sum.Load())})
		emit(Sample{Name: name + "_count", Value: float64(h.total.Load())})
	})
	return h
}

// Gather runs every collector and returns the samples sorted by name
// then labels — a stable order, so two gathers over the same state
// render identical text.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	collectors := make([]func(emit func(Sample)), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	var out []Sample
	emit := func(s Sample) { out = append(out, s) }
	for _, fn := range collectors {
		fn(emit)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WriteProm renders the gathered samples in the Prometheus text
// exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, s := range r.Gather() {
		var err error
		if s.Labels == "" {
			_, err = fmt.Fprintf(w, "%s %g\n", s.Name, s.Value)
		} else {
			_, err = fmt.Fprintf(w, "%s{%s} %g\n", s.Name, s.Labels, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
