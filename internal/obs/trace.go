// Package obs is the observability plane: a metrics registry every layer
// exposes counters through (one read path for the Prometheus text
// endpoint, the STATS wire op and the CLI report), deterministic
// virtual-time span tracing of the packet lifecycle, and a per-shard
// flight recorder that freezes a ring of recent spans and events into a
// postmortem dump when a crash, quarantine or brownout fires.
//
// The package sits below qos/radio/cluster in the import graph: the
// instrumented layers call into obs, never the other way around, and
// every tracer/recorder method is safe on a nil receiver so an
// uninstrumented path pays nothing but a branch.
package obs

import (
	"fmt"
	"io"
	"time"

	"mccp/internal/sim"
)

// Stage is one segment of a packet's lifecycle. The five stages tile the
// span exactly: their durations always sum to End-Start, so per-stage
// attribution reconciles with the end-to-end latency the shaper reports.
type Stage uint8

const (
	// StageQueue: shaper admission to drain-policy dispatch (class-queue
	// wait).
	StageQueue Stage = iota
	// StageSched: dispatch to the device's core assignment (scheduler +
	// device request queue).
	StageSched
	// StageXbarUp: assignment to the last upload word written (crossbar
	// input streaming).
	StageXbarUp
	// StageCore: upload complete to result retrieval (crypto core
	// service, including the output-ready interrupt wait).
	StageCore
	// StageDrain: retrieval to completion delivery (output crossbar read,
	// reassembly, transfer-done handshake).
	StageDrain

	// NumStages is the stage count.
	NumStages = int(StageDrain) + 1
)

var stageNames = [NumStages]string{"queue", "sched", "xbar_up", "core", "drain"}

func (s Stage) String() string {
	if int(s) >= NumStages {
		return "invalid"
	}
	return stageNames[s]
}

// Mark is an intermediate lifecycle timestamp (the boundary between two
// adjacent stages; Start and End bound the outer edges).
type Mark uint8

const (
	// MarkDispatch: the drain policy popped the packet from its class
	// queue toward the device.
	MarkDispatch Mark = iota
	// MarkAssign: the device granted a core assignment.
	MarkAssign
	// MarkUpload: the last input stream finished crossing the crossbar.
	MarkUpload
	// MarkRetrieve: the result was retrieved from the device.
	MarkRetrieve

	numMarks = int(MarkRetrieve) + 1
)

// Outcome classifies how a span ended. The numeric values mirror
// internal/verdict's order (OK..Failed) so layers above qos can classify
// with a single cast; obs cannot import verdict itself (verdict sits
// above qos in the import graph).
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeRejected
	OutcomeShed
	OutcomeExpired
	OutcomeAged
	OutcomeAuthFail
	OutcomeFailed

	NumOutcomes = int(OutcomeFailed) + 1
)

var outcomeNames = [NumOutcomes]string{"ok", "rejected", "shed", "expired", "aged", "auth-fail", "failed"}

func (o Outcome) String() string {
	if int(o) >= NumOutcomes {
		return "invalid"
	}
	return outcomeNames[o]
}

// Span is one packet's lifecycle record. All times are virtual (the
// owning shard's cycles), so a traced run replays bit-identically;
// HostNs is the wall clock at span start and is the one nondeterministic
// field — Digest excludes it and determinism comparisons must zero it.
type Span struct {
	// ID is the span's sequence number on its tracer (every arrival
	// consumes one, sampled or not, so IDs are stable across sampling
	// rates).
	ID uint64
	// Tag identifies the tracer's owner (the shard ID in a cluster; 0
	// standalone).
	Tag int32
	// Class is the packet's QoS class; Bytes its payload size.
	Class uint8
	Bytes int
	// Start is shaper admission; Marks the intermediate boundaries
	// (valid where the Reached bit is set — 0 is a legal cycle count);
	// End the completion or verdict delivery.
	Start   sim.Time
	Marks   [numMarks]sim.Time
	Reached uint8
	End     sim.Time
	Outcome Outcome
	// HostNs is the host wall clock (UnixNano) at span start.
	HostNs int64
}

// ReachedMark reports whether the span passed the given boundary.
func (sp *Span) ReachedMark(m Mark) bool { return sp.Reached&(1<<m) != 0 }

// Total is the span's end-to-end virtual duration.
func (sp *Span) Total() sim.Time { return sp.End - sp.Start }

// Stages decomposes the span into per-stage durations. Boundaries the
// packet never reached collapse onto End (a packet shed at admission
// spends its whole life in StageQueue), so the stage durations always
// sum to Total exactly.
func (sp *Span) Stages() [NumStages]sim.Time {
	var b [NumStages + 1]sim.Time
	b[0] = sp.Start
	b[NumStages] = sp.End
	for i := numMarks; i >= 1; i-- {
		if sp.ReachedMark(Mark(i - 1)) {
			b[i] = sp.Marks[i-1]
		} else {
			b[i] = b[i+1]
		}
	}
	var out [NumStages]sim.Time
	for i := 0; i < NumStages; i++ {
		out[i] = b[i+1] - b[i]
	}
	return out
}

// SpanRef addresses a live span inside its tracer. The zero value is a
// valid reference — always initialize span fields from Start, which
// returns NoSpan when tracing is off or the packet is not sampled.
type SpanRef int32

// NoSpan is the absent-span reference; every tracer method ignores it.
const NoSpan SpanRef = -1

// TraceConfig configures a Tracer.
type TraceConfig struct {
	// Enabled turns tracing on. Disabled (the default), every tracer
	// method is a branch and the packet path allocates nothing.
	Enabled bool
	// Sample is the traced fraction of packets (0 or >= 1 traces all),
	// decided per arrival by a seeded splitmix64 stream so the choice is
	// deterministic and independent of payload contents.
	Sample float64
	// Seed seeds the sampling stream.
	Seed uint64
	// Tag stamps every span (the shard ID in a cluster).
	Tag int32
	// Classify maps a completion error to an Outcome. Layers that know
	// the whole verdict taxonomy install a wrapper around verdict.For;
	// nil falls back to OK/Failed.
	Classify func(error) Outcome
	// OnEnd, when set, observes every span at End (the flight recorder's
	// hook). The span is owned by the tracer; implementations must copy
	// if they retain it past the call.
	OnEnd func(*Span)
}

// Tracer records packet lifecycle spans against one discrete-event
// engine's virtual clock. It is single-threaded like the simulation it
// observes, never schedules events, and only reads the clock — attaching
// a tracer cannot perturb virtual time, which is what makes a traced
// run's metrics bit-identical to an untraced one. A nil *Tracer is a
// valid, disabled tracer.
type Tracer struct {
	eng       *sim.Engine
	cfg       TraceConfig
	sampleAll bool
	threshold uint64
	rng       uint64
	nextID    uint64
	spans     []Span
	pending   SpanRef
}

// NewTracer builds a tracer over an engine's clock.
func NewTracer(eng *sim.Engine, cfg TraceConfig) *Tracer {
	t := &Tracer{eng: eng, cfg: cfg, pending: NoSpan, rng: cfg.Seed}
	t.sampleAll = cfg.Sample <= 0 || cfg.Sample >= 1
	if !t.sampleAll {
		t.threshold = uint64(cfg.Sample * float64(1<<63) * 2)
	}
	return t
}

// splitmix64 advances the sampling stream (the same generator
// arrivals.Rand splits from, so sampling is as reproducible as the
// traffic itself).
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.cfg.Enabled }

// Start opens a span for one packet at the current virtual time and
// returns its reference — NoSpan when tracing is off or the sampler
// skipped the packet (both make every later call on the ref a no-op).
func (t *Tracer) Start(class uint8, bytes int) SpanRef {
	if t == nil || !t.cfg.Enabled {
		return NoSpan
	}
	id := t.nextID
	t.nextID++
	if !t.sampleAll && splitmix64(&t.rng) >= t.threshold {
		return NoSpan
	}
	t.spans = append(t.spans, Span{
		ID: id, Tag: t.cfg.Tag, Class: class, Bytes: bytes,
		Start: t.eng.Now(), HostNs: time.Now().UnixNano(),
	})
	return SpanRef(len(t.spans) - 1)
}

// MarkNow stamps a lifecycle boundary at the current virtual time.
func (t *Tracer) MarkNow(ref SpanRef, m Mark) {
	if t == nil || ref < 0 {
		return
	}
	sp := &t.spans[ref]
	sp.Marks[m] = t.eng.Now()
	sp.Reached |= 1 << m
}

// End closes a span with an outcome at the current virtual time and
// delivers it to the OnEnd hook.
func (t *Tracer) End(ref SpanRef, o Outcome) {
	if t == nil || ref < 0 {
		return
	}
	sp := &t.spans[ref]
	sp.End = t.eng.Now()
	sp.Outcome = o
	if t.cfg.OnEnd != nil {
		t.cfg.OnEnd(sp)
	}
}

// EndErr closes a span with the outcome classified from a completion
// error (TraceConfig.Classify, defaulting to OK/Failed).
func (t *Tracer) EndErr(ref SpanRef, err error) {
	if t == nil || ref < 0 {
		return
	}
	o := OutcomeOK
	switch {
	case t.cfg.Classify != nil:
		o = t.cfg.Classify(err)
	case err != nil:
		o = OutcomeFailed
	}
	t.End(ref, o)
}

// SetPending parks a span reference for the device layer to claim: the
// shaper sets it immediately before invoking the device submission it
// wraps, and the device controller takes it at the top of its submit
// path. The handoff is synchronous (the whole simulation is
// single-threaded), so one slot suffices and no allocation crosses the
// layer boundary.
func (t *Tracer) SetPending(ref SpanRef) {
	if t != nil {
		t.pending = ref
	}
}

// TakePending claims and clears the parked span reference.
func (t *Tracer) TakePending() SpanRef {
	if t == nil {
		return NoSpan
	}
	ref := t.pending
	t.pending = NoSpan
	return ref
}

// Spans returns the recorded spans in start order. The slice is owned by
// the tracer; callers must not mutate it while tracing continues.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Digest folds every deterministic span field into an FNV-64a
// fingerprint — HostNs, the one wall-clock field, is excluded, so two
// runs of the same seeded workload digest identically.
func (t *Tracer) Digest() uint64 {
	if t == nil {
		return 0
	}
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for i := range t.spans {
		sp := &t.spans[i]
		mix(sp.ID)
		mix(uint64(uint32(sp.Tag)))
		mix(uint64(sp.Class))
		mix(uint64(sp.Bytes))
		mix(uint64(sp.Start))
		for _, m := range sp.Marks {
			mix(uint64(m))
		}
		mix(uint64(sp.Reached))
		mix(uint64(sp.End))
		mix(uint64(sp.Outcome))
	}
	return h
}

// SpanCSVHeader names the columns WriteSpansCSV emits.
const SpanCSVHeader = "id,tag,class,bytes,start_cycle,end_cycle,outcome,queue,sched,xbar_up,core,drain,host_ns\n"

// WriteSpansCSV writes spans as CSV rows under SpanCSVHeader, stage
// durations pre-derived.
func WriteSpansCSV(w io.Writer, spans []Span) error {
	if _, err := io.WriteString(w, SpanCSVHeader); err != nil {
		return err
	}
	for i := range spans {
		sp := &spans[i]
		st := sp.Stages()
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d\n",
			sp.ID, sp.Tag, sp.Class, sp.Bytes, sp.Start, sp.End, sp.Outcome,
			st[0], st[1], st[2], st[3], st[4], sp.HostNs); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpansJSONL writes spans as JSON Lines, one object per span, with
// the same pre-derived stage durations as the CSV form.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	for i := range spans {
		sp := &spans[i]
		st := sp.Stages()
		if _, err := fmt.Fprintf(w,
			`{"id":%d,"tag":%d,"class":%d,"bytes":%d,"start_cycle":%d,"end_cycle":%d,"outcome":%q,"stages":{"queue":%d,"sched":%d,"xbar_up":%d,"core":%d,"drain":%d},"host_ns":%d}`+"\n",
			sp.ID, sp.Tag, sp.Class, sp.Bytes, sp.Start, sp.End, sp.Outcome.String(),
			st[0], st[1], st[2], st[3], st[4], sp.HostNs); err != nil {
			return err
		}
	}
	return nil
}
