package obs

import (
	"strings"
	"testing"

	"mccp/internal/sim"
)

func TestRegistryGatherSortedAndPromText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mccp_test_packets_total")
	g := r.Gauge("mccp_test_depth")
	gl := r.GaugeLabeled("mccp_test_class", `class="voice"`)
	c.Add(3)
	c.Inc()
	g.Set(2.5)
	gl.Set(7)

	samples := r.Gather()
	if len(samples) != 3 {
		t.Fatalf("gathered %d samples, want 3", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if prev.Name > cur.Name || (prev.Name == cur.Name && prev.Labels > cur.Labels) {
			t.Errorf("gather not sorted: %v before %v", prev, cur)
		}
	}

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := "mccp_test_class{class=\"voice\"} 7\nmccp_test_depth 2.5\nmccp_test_packets_total 4\n"
	if b.String() != want {
		t.Errorf("prom text:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mccp_test_latency", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}
	got := map[string]float64{}
	for _, s := range r.Gather() {
		got[s.Name+"{"+s.Labels+"}"] = s.Value
	}
	checks := map[string]float64{
		`mccp_test_latency_bucket{le="10"}`:   2, // 5 and the boundary value 10
		`mccp_test_latency_bucket{le="100"}`:  3,
		`mccp_test_latency_bucket{le="1000"}`: 3,
		`mccp_test_latency_bucket{le="+Inf"}`: 4,
		`mccp_test_latency_count{}`:           4,
		`mccp_test_latency_sum{}`:             5065,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("%s = %g, want %g", k, got[k], want)
		}
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	run := func() []uint64 {
		eng := sim.NewEngine()
		tr := NewTracer(eng, TraceConfig{Enabled: true, Sample: 0.5, Seed: 99})
		for i := 0; i < 256; i++ {
			ref := tr.Start(uint8(i%4), 64)
			tr.End(ref, OutcomeOK)
		}
		ids := make([]uint64, 0, len(tr.Spans()))
		for _, sp := range tr.Spans() {
			ids = append(ids, sp.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sampled %d vs %d spans", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d: id %d vs %d", i, a[i], b[i])
		}
	}
	// A 0.5 sample over 256 arrivals lands well inside (0, 256); span IDs
	// must still count every arrival, so the last ID exceeds the count.
	if len(a) == 0 || len(a) == 256 {
		t.Errorf("sample rate 0.5 traced %d of 256", len(a))
	}
	if a[len(a)-1] < uint64(len(a)-1) {
		t.Errorf("span IDs not arrival-numbered: last %d over %d spans", a[len(a)-1], len(a))
	}
}

func TestTracerDisabledAndNilAreInert(t *testing.T) {
	eng := sim.NewEngine()
	disabled := NewTracer(eng, TraceConfig{})
	var nilTracer *Tracer
	for _, tr := range []*Tracer{disabled, nilTracer} {
		if tr.Enabled() {
			t.Error("tracer reports enabled")
		}
		ref := tr.Start(0, 16)
		if ref != NoSpan {
			t.Errorf("Start = %d, want NoSpan", ref)
		}
		tr.MarkNow(ref, MarkDispatch)
		tr.End(ref, OutcomeOK)
		tr.SetPending(ref)
		if got := tr.TakePending(); got != NoSpan {
			t.Errorf("TakePending = %d, want NoSpan", got)
		}
		if len(tr.Spans()) != 0 {
			t.Errorf("%d spans recorded while off", len(tr.Spans()))
		}
	}
	if nilTracer.Digest() != 0 {
		t.Error("nil tracer digest nonzero")
	}
}

func TestSpanStageTiling(t *testing.T) {
	full := Span{Start: 100, End: 1000}
	full.Marks = [4]sim.Time{200, 350, 600, 900}
	full.Reached = 0b1111
	st := full.Stages()
	want := [NumStages]sim.Time{100, 150, 250, 300, 100}
	if st != want {
		t.Errorf("full span stages %v, want %v", st, want)
	}

	// A packet shed at admission reaches no mark: its whole life is queue
	// time, the other stages collapse to zero.
	shed := Span{Start: 50, End: 80}
	st = shed.Stages()
	if st[StageQueue] != 30 {
		t.Errorf("shed span queue stage %d, want 30", st[StageQueue])
	}
	var sum sim.Time
	for _, d := range st {
		sum += d
	}
	if sum != shed.Total() {
		t.Errorf("shed span stages sum %d != total %d", sum, shed.Total())
	}

	// Partial progress (dispatched, assigned, then the core died): the
	// unreached boundaries collapse onto End and the tiling still holds,
	// even with marks at cycle 0.
	part := Span{Start: 0, End: 500}
	part.Marks[MarkDispatch] = 0
	part.Marks[MarkAssign] = 120
	part.Reached = 0b0011
	st = part.Stages()
	sum = 0
	for _, d := range st {
		sum += d
	}
	if sum != part.Total() {
		t.Errorf("partial span stages sum %d != total %d", sum, part.Total())
	}
	if st[StageQueue] != 0 || st[StageSched] != 120 || st[StageXbarUp] != 380 {
		t.Errorf("partial span stages %v", st)
	}
}

func TestRecorderRingWrapAndFreeze(t *testing.T) {
	r := NewRecorder(3, 4)
	for i := 0; i < 6; i++ {
		r.Event(sim.Time(i), EvStall, "")
	}
	r.Freeze("crash", 6)
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("%d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Shard != 3 || d.Reason != "crash" || d.At != 6 {
		t.Errorf("dump header %+v", d)
	}
	if len(d.Records) != 4 {
		t.Fatalf("%d records, want ring depth 4", len(d.Records))
	}
	for i, rec := range d.Records {
		if rec.At != sim.Time(i+2) {
			t.Errorf("record %d at cycle %d, want %d (oldest-first after wrap)", i, rec.At, i+2)
		}
	}

	// The ring keeps recording after a freeze, and dumps are bounded.
	for i := 0; i < 20; i++ {
		r.Freeze("flood", sim.Time(100+i))
	}
	if n := len(r.Dumps()); n > 9 {
		t.Errorf("%d dumps retained, want bounded", n)
	}

	var nilRec *Recorder
	nilRec.Event(0, EvCrash, "")
	nilRec.RecordSpan(&Span{})
	nilRec.Freeze("x", 0)
	if nilRec.Dumps() != nil {
		t.Error("nil recorder returned dumps")
	}
}

func TestRecorderSpanHookAndFormat(t *testing.T) {
	eng := sim.NewEngine()
	rec := NewRecorder(0, 0)
	tr := NewTracer(eng, TraceConfig{Enabled: true, OnEnd: rec.RecordSpan})
	ref := tr.Start(1, 256)
	tr.MarkNow(ref, MarkDispatch)
	tr.End(ref, OutcomeOK)
	rec.Freeze("quarantine", eng.Now())
	dumps := rec.Dumps()
	if len(dumps) != 1 || len(dumps[0].Records) != 1 {
		t.Fatalf("dumps %+v", dumps)
	}
	if dumps[0].Records[0].Kind != EvSpan {
		t.Fatalf("record kind %v, want span", dumps[0].Records[0].Kind)
	}
	text := dumps[0].Format()
	for _, needle := range []string{"postmortem: shard 0", "reason quarantine", "span id=0", "outcome=ok"} {
		if !strings.Contains(text, needle) {
			t.Errorf("dump format missing %q:\n%s", needle, text)
		}
	}
}

func TestSpanExports(t *testing.T) {
	sp := Span{ID: 7, Tag: 2, Class: 1, Bytes: 512, Start: 10, End: 110, Outcome: OutcomeOK, HostNs: 42}
	sp.Marks = [4]sim.Time{20, 30, 60, 100}
	sp.Reached = 0b1111

	var csv strings.Builder
	if err := WriteSpansCSV(&csv, []Span{sp}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), SpanCSVHeader) {
		t.Errorf("CSV missing header:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "7,2,1,512,10,110,ok,10,10,30,40,10,42") {
		t.Errorf("CSV row wrong:\n%s", csv.String())
	}

	var jsonl strings.Builder
	if err := WriteSpansJSONL(&jsonl, []Span{sp}); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"id":7`, `"outcome":"ok"`, `"queue":10`, `"core":40`} {
		if !strings.Contains(jsonl.String(), needle) {
			t.Errorf("JSONL missing %q:\n%s", needle, jsonl.String())
		}
	}
}

func TestBuildInfoRegistered(t *testing.T) {
	if VersionLine("mccptest") == "" {
		t.Error("empty version line")
	}
	r := NewRegistry()
	RegisterBuildInfo(r, "mccptest")
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `mccp_build_info{binary="mccptest"`) {
		t.Errorf("build info gauge missing:\n%s", b.String())
	}
}
