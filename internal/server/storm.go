package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mccp/internal/cryptocore"
	"mccp/internal/qos"
)

// StormConfig parameterizes RunStorm, the open/close connection-churn
// storm generator: waves of short-lived connections that each open a
// handful of sessions, push a little traffic, and leave — half of them
// gracefully (CLOSE per session), half abruptly (the connection just
// dies), so every teardown path the server has gets exercised under
// concurrency. The zero value is a small storm.
type StormConfig struct {
	// Conns is the number of concurrent connections per wave (default 8);
	// Waves the number of sequential waves (default 4).
	Conns int
	Waves int
	// SessionsPerConn (default 4) and OpsPerSession (default 2) size the
	// per-connection work; PayloadBytes (default 256) sizes each ENCRYPT.
	SessionsPerConn int
	OpsPerSession   int
	PayloadBytes    int
	// IOTimeout and Retry configure each storm client like any other
	// Client; a zero IOTimeout waits forever.
	IOTimeout time.Duration
	Retry     RetryPolicy
	// TolerateShed makes the storm ride out OPEN-admission shedding
	// (Config.OpenBurst / OpenWindowCap): a non-voice OPEN answered
	// StatusShed is counted in ShedOpens instead of failing the run. A
	// shed voice OPEN still fails — the front door guarantees voice is
	// never shed by admission.
	TolerateShed bool
}

func (c *StormConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Waves <= 0 {
		c.Waves = 4
	}
	if c.SessionsPerConn <= 0 {
		c.SessionsPerConn = 4
	}
	if c.OpsPerSession <= 0 {
		c.OpsPerSession = 2
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 256
	}
}

// StormResult tallies a storm's work. Counts are exact for a given
// config (the storm is closed-loop), whatever the goroutine interleaving.
type StormResult struct {
	Dialed    int
	Opened    uint64
	ShedOpens uint64 // non-voice OPENs shed by admission (TolerateShed)
	Packets   uint64
	Closed    uint64 // sessions closed gracefully via CLOSE
	Abandons  int    // connections dropped with sessions still open
}

// stormClasses cycles the storm's sessions through every QoS class.
var stormClasses = [...]qos.Class{qos.Voice, qos.Video, qos.Data, qos.Background}

// RunStorm runs the churn storm against a dialer (Loopback.Dial or a TCP
// dial closure). Even-indexed connections tear down gracefully; odd ones
// abandon their sessions to the server's connection-cleanup path. The
// first error aborts the storm.
func RunStorm(dial func() (net.Conn, error), cfg StormConfig) (StormResult, error) {
	cfg.fill()
	var res StormResult
	var opened, shedOpens, packets, closed atomic.Uint64
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	payload := make([]byte, cfg.PayloadBytes)
	nonce := make([]byte, 12)
	for wave := 0; wave < cfg.Waves; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < cfg.Conns; i++ {
			nc, err := dial()
			if err != nil {
				fail(err)
				break
			}
			res.Dialed++
			graceful := i%2 == 0
			if !graceful {
				res.Abandons++
			}
			wg.Add(1)
			go func(nc net.Conn, idx int, graceful bool) {
				defer wg.Done()
				cl := NewClient(nc)
				defer cl.Close()
				cl.SetIOTimeout(cfg.IOTimeout)
				cl.SetRetryPolicy(cfg.Retry)
				ids := make([]uint64, 0, cfg.SessionsPerConn)
				for s := 0; s < cfg.SessionsPerConn; s++ {
					class := stormClasses[(idx+s)%len(stormClasses)]
					spec := OpenRequest{
						Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16,
						Class: class,
					}
					if cfg.TolerateShed {
						// Read the raw verdict so an admission shed is a
						// countable outcome, not an error.
						reqID, err := cl.SendOpen(spec)
						if err != nil {
							fail(fmt.Errorf("storm open: %w", err))
							return
						}
						r, err := cl.ReadResponse()
						if err != nil {
							fail(fmt.Errorf("storm open: %w", err))
							return
						}
						if r.ReqID != reqID {
							fail(fmt.Errorf("storm open: response for request %d, want %d", r.ReqID, reqID))
							return
						}
						switch r.Status {
						case StatusOK:
							opened.Add(1)
							ids = append(ids, r.Session)
						case StatusShed:
							if class == qos.Voice {
								fail(fmt.Errorf("storm open: voice OPEN shed by admission — the front door broke its guarantee"))
								return
							}
							shedOpens.Add(1)
						default:
							fail(fmt.Errorf("storm open status %v", r.Status))
							return
						}
						continue
					}
					id, err := cl.Open(spec)
					if err != nil {
						fail(fmt.Errorf("storm open: %w", err))
						return
					}
					opened.Add(1)
					ids = append(ids, id)
				}
				for op := 0; op < cfg.OpsPerSession; op++ {
					for _, id := range ids {
						r, err := cl.Encrypt(id, nonce, nil, payload)
						if err != nil {
							fail(fmt.Errorf("storm encrypt: %w", err))
							return
						}
						if r.Status != StatusOK {
							fail(fmt.Errorf("storm encrypt status %v", r.Status))
							return
						}
						packets.Add(1)
					}
				}
				if !graceful {
					return // abandon: the server reclaims the sessions
				}
				for _, id := range ids {
					status, err := cl.CloseSession(id)
					if err != nil || status != StatusOK {
						fail(fmt.Errorf("storm close: %v %v", status, err))
						return
					}
					closed.Add(1)
				}
			}(nc, i, graceful)
		}
		wg.Wait()
		if firstErr != nil {
			break
		}
	}
	res.Opened = opened.Load()
	res.ShedOpens = shedOpens.Load()
	res.Packets = packets.Load()
	res.Closed = closed.Load()
	return res, firstErr
}
