package server

import (
	"testing"
	"time"

	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
)

// openStatus round-trips one OPEN and returns the raw verdict (an
// admission shed is an outcome here, not an error).
func openStatus(t *testing.T, cl *Client, class qos.Class) Status {
	t.Helper()
	reqID, err := cl.SendOpen(OpenRequest{
		Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: class,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if r.ReqID != reqID {
		t.Fatalf("response for request %d, want %d", r.ReqID, reqID)
	}
	return r.Status
}

// TestOpenAdmissionBucket pins the front door's token-bucket arithmetic
// on one connection: OpenBurst non-voice OPENs are admitted per window,
// the overflow is StatusShed without touching the cluster, a FLUSH
// boundary refills the bucket, and voice OPENs pass the whole time —
// they are never admission-shed.
func TestOpenAdmissionBucket(t *testing.T) {
	srv, lb := startLoopback(t, Config{
		Cluster:   cluster.Config{Seed: 7},
		OpenBurst: 2,
	})
	defer srv.Close()
	cl := dialClient(t, lb)
	defer cl.Close()

	admitted, shed := 0, 0
	for i := 0; i < 6; i++ {
		if st := openStatus(t, cl, qos.Voice); st != StatusOK {
			t.Fatalf("voice OPEN %d: %v — admission shed voice", i, st)
		}
		switch st := openStatus(t, cl, qos.Background); st {
		case StatusOK:
			admitted++
		case StatusShed:
			shed++
		default:
			t.Fatalf("background OPEN %d: %v", i, st)
		}
	}
	if admitted != 2 || shed != 4 {
		t.Fatalf("burst 2: admitted %d shed %d non-voice OPENs, want 2 and 4", admitted, shed)
	}
	// A window boundary refills the bucket (OpenRefill 0 = full burst).
	if err := cl.Barrier(); err != nil {
		t.Fatal(err)
	}
	admitted, shed = 0, 0
	for i := 0; i < 4; i++ {
		switch st := openStatus(t, cl, qos.Background); st {
		case StatusOK:
			admitted++
		case StatusShed:
			shed++
		default:
			t.Fatalf("post-refill background OPEN %d: %v", i, st)
		}
	}
	if admitted != 2 || shed != 2 {
		t.Fatalf("post-refill: admitted %d shed %d, want 2 and 2", admitted, shed)
	}
}

// TestOpenAdmissionWindowCap pins the global valve: across connections,
// at most OpenWindowCap non-voice OPENs are admitted per window while
// voice stays exempt.
func TestOpenAdmissionWindowCap(t *testing.T) {
	srv, lb := startLoopback(t, Config{
		Cluster:       cluster.Config{Seed: 11},
		OpenWindowCap: 3,
	})
	defer srv.Close()
	a := dialClient(t, lb)
	defer a.Close()
	b := dialClient(t, lb)
	defer b.Close()

	admitted, shed := 0, 0
	for i := 0; i < 4; i++ {
		for _, cl := range []*Client{a, b} {
			if st := openStatus(t, cl, qos.Voice); st != StatusOK {
				t.Fatalf("voice OPEN: %v — the cap must not shed voice", st)
			}
			switch st := openStatus(t, cl, qos.Data); st {
			case StatusOK:
				admitted++
			case StatusShed:
				shed++
			default:
				t.Fatalf("data OPEN: %v", st)
			}
		}
	}
	if admitted != 3 || shed != 5 {
		t.Fatalf("window cap 3: admitted %d shed %d non-voice OPENs, want 3 and 5", admitted, shed)
	}
}

// TestOpenStormVoiceNeverShed runs the concurrent OPEN storm against a
// front door with both valves tight: the storm itself fails if any voice
// OPEN is shed, and the tight caps guarantee the non-voice shed path is
// actually exercised. Under -race this doubles as the admission plane's
// concurrency soak.
func TestOpenStormVoiceNeverShed(t *testing.T) {
	srv, lb := startLoopback(t, Config{
		Cluster:       cluster.Config{Shards: 2, Seed: 13},
		OpenBurst:     1,
		OpenWindowCap: 4,
	})
	defer srv.Close()
	res, err := RunStorm(lb.Dial, StormConfig{
		Conns:        6,
		Waves:        3,
		TolerateShed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedOpens == 0 {
		t.Fatalf("tight admission caps shed no OPENs: %+v", res)
	}
	if res.Opened == 0 {
		t.Fatalf("storm admitted nothing: %+v", res)
	}
}

// TestRetryJitterDeterministic pins the seeded retry jitter: the sleep
// for a given (seed, request id, attempt) is a pure function, distinct
// tuples decorrelate, and the jittered sleep stays inside
// (backoff*(1-Jitter), backoff].
func TestRetryJitterDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Jitter: 0.5, Seed: 99}
	p.fill()
	base := 8 * time.Millisecond
	d1 := p.jittered(base, 42, 1)
	if d2 := p.jittered(base, 42, 1); d2 != d1 {
		t.Fatalf("same tuple, different sleep: %v vs %v", d1, d2)
	}
	if d1 <= base/2 || d1 > base {
		t.Fatalf("jittered sleep %v outside (%v, %v]", d1, base/2, base)
	}
	if p.jittered(base, 43, 1) == d1 && p.jittered(base, 42, 2) == d1 {
		t.Fatalf("jitter stream constant across ids and attempts")
	}
	off := RetryPolicy{Attempts: 3, Jitter: -1}
	off.fill()
	if off.Jitter != 0 {
		t.Fatalf("negative Jitter not disabled: %v", off.Jitter)
	}
	if d := off.jittered(base, 42, 1); d != base {
		t.Fatalf("disabled jitter altered the sleep: %v", d)
	}
	def := RetryPolicy{Attempts: 2}
	def.fill()
	if def.Jitter != 0.5 {
		t.Fatalf("default Jitter = %v, want 0.5", def.Jitter)
	}
}

// TestShutdownDrains: Shutdown stops the listener, waits for live
// connections to finish, and tears down cleanly once they do.
func TestShutdownDrains(t *testing.T) {
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 17}})
	cl := dialClient(t, lb)
	if _, err := cl.Open(OpenRequest{
		Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Voice,
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(2 * time.Second) }()
	// The live connection keeps Shutdown draining; closing it releases it.
	time.Sleep(20 * time.Millisecond)
	cl.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the last connection closed")
	}
}
