package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"mccp/internal/obs"
)

// This file is the server's observability surface: the metrics registry
// wiring (cluster collector + wire-level collector), the STATS frame
// handler, and the HTTP endpoint (Prometheus text exposition, flight
// recorder postmortems, net/http/pprof). All read paths go through the
// one registry — the wire op and the HTTP scrape serve the same bytes.

// pubStats is the batcher's published wire-counter snapshot: a copy of
// the batcher-owned serverStats plus the window clock, stored through an
// atomic pointer at every flush so registry collectors on the HTTP
// goroutine read a consistent view without locking the batcher.
type pubStats struct {
	stats   serverStats
	windows int
}

// publishWire refreshes the published snapshot (batcher goroutine only).
func (s *Server) publishWire() {
	s.pub.Store(&pubStats{stats: s.stats, windows: s.windows})
}

// initObs builds the registry: the cluster's collector (shard, class and
// verdict counters from Snapshot) plus the server's wire-level collector
// over the published snapshot.
func (s *Server) initObs() {
	s.publishWire()
	s.reg = obs.NewRegistry()
	s.cl.RegisterMetrics(s.reg)
	s.reg.RegisterFunc(func(emit func(obs.Sample)) {
		p := s.pub.Load()
		emit(obs.Sample{Name: "mccp_server_sessions_open", Value: float64(p.stats.sessionsOpen)})
		emit(obs.Sample{Name: "mccp_server_sessions_opened_total", Value: float64(p.stats.sessionsOpened)})
		emit(obs.Sample{Name: "mccp_server_bytes_in_total", Value: float64(p.stats.bytesIn)})
		emit(obs.Sample{Name: "mccp_server_bytes_out_total", Value: float64(p.stats.bytesOut)})
		emit(obs.Sample{Name: "mccp_server_windows_total", Value: float64(p.windows)})
		for st := StatusOK; st <= StatusShuttingDown; st++ {
			emit(obs.Sample{
				Name:   "mccp_server_responses_total",
				Labels: fmt.Sprintf("status=%q", st.String()),
				Value:  float64(p.stats.verdicts[st]),
			})
		}
	})
}

// Metrics exposes the server's registry so embedding callers (CLIs,
// tests) can add their own instruments — the build-info gauge registers
// here — or render a report without going through the wire.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// handleStats answers a STATS frame: flush (so the exposition reflects
// every request received before it), then the registry rendered as
// Prometheus text.
func (s *Server) handleStats(req *request) {
	s.flush()
	var buf bytes.Buffer
	s.reg.WriteProm(&buf)
	s.respond(req.conn, encodeTextResp(req.reqID, StatusOK, buf.Bytes()))
}

// Handler returns the server's HTTP observability endpoint:
//
//	/metrics      Prometheus text exposition of the registry
//	/postmortems  every frozen flight-recorder dump, formatted
//	/debug/pprof  the standard net/http/pprof handlers
//
// Serve it on a side listener (the frame protocol owns the main one);
// all routes are safe while the server runs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteProm(w)
	})
	mux.HandleFunc("/postmortems", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		dumps := s.cl.Postmortems()
		fmt.Fprintf(w, "%d postmortem dump(s)\n", len(dumps))
		for _, d := range dumps {
			io.WriteString(w, "\n")
			io.WriteString(w, d.Format())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
