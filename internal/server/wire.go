// Package server puts a network service boundary in front of
// internal/cluster: the paper's control protocol (§III.C — OPEN, CLOSE,
// ENCRYPT, DECRYPT, RETRIEVE_DATA) carried as length-prefixed binary
// frames over any net.Conn, so the sharded MCCP simulation becomes a
// server that concurrent remote callers share.
//
// The architecture mirrors the MerkleBatcher coalescing shape: every
// connection's reader decodes frames onto one bounded request channel; a
// single batcher goroutine — the only caller of the cluster front end,
// honoring its single-caller contract — owns session state and coalesces
// requests into per-shard ring submissions, flushing on a size trigger,
// an explicit FLUSH frame, or an optional wall-clock deadline. Each
// ENCRYPT/DECRYPT response carries a per-request timing struct: the
// shard-side service latency in virtual cycles plus the wall-clock
// enqueue→flush and flush→complete intervals.
//
// Admission maps the cluster's existing verdicts onto protocol status
// codes (Rejected/Shed/Expired/Aged/AuthFail...), so overload behavior on
// the wire is exactly the QoS story the in-process experiments specify.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/sim"
	"mccp/internal/verdict"
)

// Frame layout: a uint32 big-endian body length, then the body. Request
// bodies are op(u8) reqID(u64) payload; response bodies are op(u8)
// reqID(u64) status(u8) payload. MaxFrame bounds a body so a corrupt
// length prefix cannot allocate unboundedly.
const MaxFrame = 1 << 24

// Op is a protocol opcode (the paper's §III.C control commands;
// RETRIEVE_DATA returns the server's statistics report).
type Op uint8

const (
	OpOpen     Op = 1
	OpClose    Op = 2
	OpEncrypt  Op = 3
	OpDecrypt  Op = 4
	OpRetrieve Op = 5
	// OpFlush is a service extension: it forces the batcher to flush and
	// its acknowledgement doubles as a sync barrier — when the reply
	// arrives, every earlier request on the connection has been answered.
	OpFlush Op = 6
	// OpStats is a service extension: it returns the server's metrics
	// registry rendered in Prometheus text exposition format — the same
	// bytes the HTTP /metrics endpoint serves, readable by clients that
	// only speak the frame protocol. (RETRIEVE_DATA stays the binary
	// statistics report; STATS is the human/scraper view.)
	OpStats Op = 7

	// opConnClosed is internal: the reader injects it when a connection
	// dies so the batcher reclaims the connection's sessions in request
	// order.
	opConnClosed Op = 255
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "OPEN"
	case OpClose:
		return "CLOSE"
	case OpEncrypt:
		return "ENCRYPT"
	case OpDecrypt:
		return "DECRYPT"
	case OpRetrieve:
		return "RETRIEVE_DATA"
	case OpFlush:
		return "FLUSH"
	case OpStats:
		return "STATS"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is a protocol response code. The low codes are the shared
// verdict.Verdict values verbatim (Status(v) is the whole mapping — see
// statusFor); the codes past StatusFailed are wire-only conditions with
// no in-process counterpart.
type Status uint8

const (
	StatusOK                  = Status(verdict.OK)       // 0
	StatusRejected            = Status(verdict.Rejected) // 1: paper's error flag: no idle core / queue full with queueing off
	StatusShed                = Status(verdict.Shed)     // 2: QoS bounded class queue overflow
	StatusExpired             = Status(verdict.Expired)  // 3: deadline passed while queued
	StatusAged                = Status(verdict.Aged)     // 4: in-queue sojourn exceeded the age limit
	StatusAuthFail            = Status(verdict.AuthFail) // 5: DECRYPT tag verification failed
	StatusFailed              = Status(verdict.Failed)   // 6: any other device error
	StatusBadRequest   Status = 7                        // malformed frame or unsupported parameters
	StatusUnknownSess  Status = 8                        // session id never opened on this connection
	StatusSessClosed   Status = 9                        // session already closed (double CLOSE, use after CLOSE)
	StatusShuttingDown Status = 10
)

func (s Status) String() string {
	if int(s) < verdict.Num {
		return verdict.Verdict(s).String()
	}
	switch s {
	case StatusBadRequest:
		return "bad-request"
	case StatusUnknownSess:
		return "unknown-session"
	case StatusSessClosed:
		return "session-closed"
	case StatusShuttingDown:
		return "shutting-down"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// statusFor maps a cluster operation error to its protocol status: the
// shared verdict value IS the status code, so the mapping is a cast of
// the one classifier in internal/verdict (no second switch to keep in
// sync with the cluster's counters).
func statusFor(err error) Status { return Status(verdict.For(err)) }

// Timing is the per-request timing struct an ENCRYPT/DECRYPT response
// carries back to its caller.
type Timing struct {
	// WireCycles is the shard-side service latency in virtual cycles:
	// from the start of the batch that carried the request to the
	// request's completion (or verdict) on the shard's timeline. It is
	// deterministic — a pure function of the request sequence.
	WireCycles sim.Time
	// QueueNs and ServiceNs split the host wall-clock path:
	// enqueue→flush (batching wait) and flush→complete. Both are
	// wall-clock measurements and therefore nondeterministic.
	QueueNs   uint64
	ServiceNs uint64
}

// Stats is the RETRIEVE_DATA report: the server's wire-level view plus
// the cluster snapshot underneath it.
type Stats struct {
	SessionsOpen   uint64
	SessionsOpened uint64
	// Verdicts counts every answered ENCRYPT/DECRYPT by response status
	// (index = Status value, StatusOK..StatusShuttingDown).
	Verdicts [11]uint64
	BytesIn  uint64
	BytesOut uint64
	// ClusterCycles is the slowest shard's virtual time.
	ClusterCycles sim.Time
	// Per-class wire service latency (shard-side cycles), highest
	// priority first: count of samples, p50 and p99.
	Classes [qos.NumClasses]ClassWire
	// Digests are the per-shard FNV-64a folds of every delivered output
	// byte in delivery order — the batch-boundary-independent fingerprint
	// the determinism guard compares against an in-process run.
	Digests []uint64
}

// ClassWire is one class's wire service-latency summary.
type ClassWire struct {
	Count    uint64
	P50, P99 sim.Time
}

// appendFrame appends a length-prefixed frame holding body to dst.
func appendFrame(dst, body []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(body)))
	dst = append(dst, l[:]...)
	return append(dst, body...)
}

// readFrame reads one length-prefixed frame body, reusing buf when large
// enough.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(l[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds MaxFrame", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// cursor is a sticky-error reader over a frame body.
type cursor struct {
	b   []byte
	bad bool
}

func (c *cursor) u8() uint8 {
	if c.bad || len(c.b) < 1 {
		c.bad = true
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16() uint16 {
	if c.bad || len(c.b) < 2 {
		c.bad = true
		return 0
	}
	v := binary.BigEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.bad || len(c.b) < 4 {
		c.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.bad || len(c.b) < 8 {
		c.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.bad || n < 0 || len(c.b) < n {
		c.bad = true
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func putU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func putU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func putU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// request is one decoded frame plus delivery bookkeeping, owned by the
// batcher once pushed onto the request channel.
type request struct {
	op    Op
	reqID uint64
	conn  *conn

	// OPEN fields.
	family   uint8
	keyLen   uint8
	tagLen   uint8
	class    qos.Class
	weight   uint16
	deadline sim.Time

	// Packet fields (ENCRYPT/DECRYPT). Buffers are copies owned by the
	// request (the reader's frame buffer is reused).
	sess  uint64
	nonce []byte
	aad   []byte
	data  []byte
	tag   []byte

	// Timing (wall clock): set at decode and at the flush that dispatched
	// the request's batch.
	enq     int64 // UnixNano at decode
	flushAt int64 // UnixNano at dispatch

	// malformed marks an undecodable body; the batcher answers
	// BadRequest with whatever op/reqID prefix parsed.
	malformed bool
}

// encodeOpen builds an OPEN request body.
func encodeOpen(dst []byte, reqID uint64, spec OpenRequest) []byte {
	dst = append(dst, byte(OpOpen))
	dst = putU64(dst, reqID)
	dst = append(dst, byte(spec.Family), byte(spec.KeyLen), byte(spec.TagLen), byte(spec.Class))
	dst = putU16(dst, uint16(spec.Weight))
	dst = putU64(dst, uint64(spec.Deadline))
	return dst
}

// encodePacket builds an ENCRYPT or DECRYPT request body (tag only for
// DECRYPT).
func encodePacket(dst []byte, op Op, reqID, sess uint64, nonce, aad, data, tag []byte) []byte {
	dst = append(dst, byte(op))
	dst = putU64(dst, reqID)
	dst = putU64(dst, sess)
	dst = append(dst, byte(len(nonce)))
	dst = append(dst, nonce...)
	dst = putU16(dst, uint16(len(aad)))
	dst = append(dst, aad...)
	dst = putU32(dst, uint32(len(data)))
	dst = append(dst, data...)
	if op == OpDecrypt {
		dst = append(dst, byte(len(tag)))
		dst = append(dst, tag...)
	}
	return dst
}

// decodeRequest parses a request frame body into req. It returns false
// (leaving req.op/reqID set when parseable) on a malformed body.
func decodeRequest(body []byte, req *request) bool {
	c := cursor{b: body}
	req.op = Op(c.u8())
	req.reqID = c.u64()
	switch req.op {
	case OpOpen:
		req.family = c.u8()
		req.keyLen = c.u8()
		req.tagLen = c.u8()
		req.class = qos.Class(c.u8())
		req.weight = c.u16()
		req.deadline = sim.Time(c.u64())
	case OpClose:
		req.sess = c.u64()
	case OpEncrypt, OpDecrypt:
		req.sess = c.u64()
		req.nonce = append([]byte(nil), c.bytes(int(c.u8()))...)
		req.aad = append([]byte(nil), c.bytes(int(c.u16()))...)
		req.data = append([]byte(nil), c.bytes(int(c.u32()))...)
		if req.op == OpDecrypt {
			req.tag = append([]byte(nil), c.bytes(int(c.u8()))...)
		}
	case OpRetrieve, OpFlush, OpStats:
	default:
		return false
	}
	return !c.bad && len(c.b) == 0
}

// Response is one decoded response frame.
type Response struct {
	Op     Op
	ReqID  uint64
	Status Status
	// OPEN: the wire session id. ENCRYPT/DECRYPT: the timing struct and
	// (on OK) the output bytes. FLUSH: Flushed, the operations dispatched
	// by the barrier. RETRIEVE_DATA: Stats. Errors carry Msg when the
	// server attached one.
	Session uint64
	Timing  Timing
	Out     []byte
	Flushed uint32
	Stats   *Stats
	Msg     string
}

// Err converts a non-OK response into an error (nil when Status is OK).
func (r *Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	if r.Msg != "" {
		return fmt.Errorf("server: %s: %s (%s)", r.Op, r.Status, r.Msg)
	}
	return fmt.Errorf("server: %s: %s", r.Op, r.Status)
}

func respHeader(dst []byte, op Op, reqID uint64, st Status) []byte {
	dst = append(dst, byte(op))
	dst = putU64(dst, reqID)
	dst = append(dst, byte(st))
	return dst
}

// encodeMsgResp builds an OPEN/CLOSE-shaped response: header, session id
// (OPEN only carries a meaningful one), then a u16-length message.
func encodeMsgResp(op Op, reqID uint64, st Status, sess uint64, msg string) []byte {
	dst := respHeader(nil, op, reqID, st)
	dst = putU64(dst, sess)
	dst = putU16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return dst
}

// encodePacketResp builds an ENCRYPT/DECRYPT response: header, timing,
// output.
func encodePacketResp(op Op, reqID uint64, st Status, t Timing, out []byte) []byte {
	dst := respHeader(make([]byte, 0, 9+24+4+len(out)), op, reqID, st)
	dst = putU64(dst, uint64(t.WireCycles))
	dst = putU64(dst, t.QueueNs)
	dst = putU64(dst, t.ServiceNs)
	dst = putU32(dst, uint32(len(out)))
	dst = append(dst, out...)
	return dst
}

func encodeFlushResp(reqID uint64, st Status, flushed uint32) []byte {
	dst := respHeader(nil, OpFlush, reqID, st)
	return putU32(dst, flushed)
}

// encodeTextResp builds a STATS response: header then a u32-length text
// payload (metrics expositions outgrow the u16 message field).
func encodeTextResp(reqID uint64, st Status, text []byte) []byte {
	dst := respHeader(make([]byte, 0, 9+4+len(text)), OpStats, reqID, st)
	dst = putU32(dst, uint32(len(text)))
	return append(dst, text...)
}

func encodeStatsResp(reqID uint64, st *Stats) []byte {
	dst := respHeader(nil, OpRetrieve, reqID, StatusOK)
	dst = putU64(dst, st.SessionsOpen)
	dst = putU64(dst, st.SessionsOpened)
	for _, v := range st.Verdicts {
		dst = putU64(dst, v)
	}
	dst = putU64(dst, st.BytesIn)
	dst = putU64(dst, st.BytesOut)
	dst = putU64(dst, uint64(st.ClusterCycles))
	for _, cw := range st.Classes {
		dst = putU64(dst, cw.Count)
		dst = putU64(dst, uint64(cw.P50))
		dst = putU64(dst, uint64(cw.P99))
	}
	dst = append(dst, byte(len(st.Digests)))
	for _, d := range st.Digests {
		dst = putU64(dst, d)
	}
	return dst
}

// DecodeResponse parses a response frame body.
func DecodeResponse(body []byte) (Response, error) {
	c := cursor{b: body}
	r := Response{Op: Op(c.u8()), ReqID: c.u64(), Status: Status(c.u8())}
	switch r.Op {
	case OpOpen, OpClose:
		r.Session = c.u64()
		r.Msg = string(c.bytes(int(c.u16())))
	case OpEncrypt, OpDecrypt:
		r.Timing.WireCycles = sim.Time(c.u64())
		r.Timing.QueueNs = c.u64()
		r.Timing.ServiceNs = c.u64()
		out := c.bytes(int(c.u32()))
		if len(out) > 0 {
			r.Out = append([]byte(nil), out...)
		}
	case OpFlush:
		r.Flushed = c.u32()
	case OpStats:
		out := c.bytes(int(c.u32()))
		if len(out) > 0 {
			r.Out = append([]byte(nil), out...)
		}
	case OpRetrieve:
		st := &Stats{}
		st.SessionsOpen = c.u64()
		st.SessionsOpened = c.u64()
		for i := range st.Verdicts {
			st.Verdicts[i] = c.u64()
		}
		st.BytesIn = c.u64()
		st.BytesOut = c.u64()
		st.ClusterCycles = sim.Time(c.u64())
		for i := range st.Classes {
			st.Classes[i].Count = c.u64()
			st.Classes[i].P50 = sim.Time(c.u64())
			st.Classes[i].P99 = sim.Time(c.u64())
		}
		st.Digests = make([]uint64, c.u8())
		for i := range st.Digests {
			st.Digests[i] = c.u64()
		}
		r.Stats = st
	default:
		return r, fmt.Errorf("server: response with unknown opcode %d", uint8(r.Op))
	}
	if c.bad || len(c.b) != 0 {
		return r, fmt.Errorf("server: truncated %s response", r.Op)
	}
	return r, nil
}

// OpenRequest parameterizes a wire OPEN: algorithm family and key/tag
// sizes (the cluster validates key length), the QoS class, the routing
// weight (default 1) and a relative virtual-time deadline budget applied
// to every ENCRYPT on the session (0 = none).
type OpenRequest struct {
	Family   cryptocore.Family
	KeyLen   int
	TagLen   int
	Class    qos.Class
	Weight   int
	Deadline sim.Time
}
