package server

import (
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/faults"
	"mccp/internal/qos"
)

// TestClientTimeoutOnStalledPeer: a wedged peer — alive, silent — used
// to hang the lock-step helpers forever. With an I/O deadline set the
// client fails the read with a typed ErrTimeout instead.
func TestClientTimeoutOnStalledPeer(t *testing.T) {
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 11}})
	defer srv.Close()
	// Every read after the first stalls: the OPEN round-trips, then the
	// wire goes silent.
	lb.WrapClient = func(c net.Conn) net.Conn {
		return faults.Wrap(c, faults.ConnPlan{StallAfterReads: 1})
	}
	cl := dialClient(t, lb)
	defer cl.Close()
	cl.SetIOTimeout(30 * time.Millisecond)

	if _, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16}); err != nil {
		t.Fatalf("open before the stall: %v", err)
	}
	start := time.Now()
	err := cl.Barrier()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("barrier on a stalled peer: got %v, want ErrTimeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timeout took %v — deadline not effective", waited)
	}
}

// stallFirstRead delays the first Read past the connection's read
// deadline and then lets everything through: the transport hiccup that
// makes a client time out and retry a request the server DID receive.
type stallFirstRead struct {
	net.Conn
	mu       sync.Mutex
	deadline time.Time
	done     bool
}

func (c *stallFirstRead) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *stallFirstRead) Read(b []byte) (int, error) {
	c.mu.Lock()
	first := !c.done
	c.done = true
	d := c.deadline
	c.mu.Unlock()
	if first {
		if d.IsZero() {
			d = time.Now().Add(100 * time.Millisecond)
		}
		time.Sleep(time.Until(d) + 20*time.Millisecond)
		return 0, os.ErrDeadlineExceeded
	}
	return c.Conn.Read(b)
}

// TestRetriedOpenNeverDoubleOpens is the exactly-once guarantee: a
// timed-out OPEN retried under the same request id reaches the server
// twice, opens one session, and the client still gets its id — the
// server's per-connection dedupe replays the first response frame.
func TestRetriedOpenNeverDoubleOpens(t *testing.T) {
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 13}})
	defer srv.Close()
	lb.WrapClient = func(c net.Conn) net.Conn { return &stallFirstRead{Conn: c} }
	cl := dialClient(t, lb)
	defer cl.Close()
	cl.SetIOTimeout(30 * time.Millisecond)
	cl.SetRetryPolicy(RetryPolicy{Attempts: 3, Backoff: time.Millisecond})

	sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Voice})
	if err != nil {
		t.Fatalf("retried open failed: %v", err)
	}
	// The session works, and the late duplicate response the retry left
	// in flight is skipped, not misattributed.
	r, err := cl.Encrypt(sess, make([]byte, 12), nil, []byte("retry exactly once"))
	if err != nil || r.Status != StatusOK {
		t.Fatalf("encrypt on retried session: %v %v", r.Status, err)
	}
	st, err := cl.Retrieve()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsOpened != 1 || st.SessionsOpen != 1 {
		t.Fatalf("retried OPEN double-opened: opened %d, open %d", st.SessionsOpened, st.SessionsOpen)
	}

	// CLOSE rides the same dedupe: a retried close reports OK once, and
	// the session count drops exactly once.
	if status, err := cl.CloseSession(sess); err != nil || status != StatusOK {
		t.Fatalf("close: %v %v", status, err)
	}
	if st, err = cl.Retrieve(); err != nil || st.SessionsOpen != 0 {
		t.Fatalf("after close: open %d, err %v", st.SessionsOpen, err)
	}
}

// TestWireFaultsDoNotWedgeServer: dropped and truncated client writes
// kill their own connection with a prompt error, and the server stays
// healthy for the next client.
func TestWireFaultsDoNotWedgeServer(t *testing.T) {
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 17}})
	defer srv.Close()

	for _, tc := range []struct {
		name string
		plan faults.ConnPlan
	}{
		{"drop", faults.ConnPlan{DropAfterWrites: 1}},
		{"truncate", faults.ConnPlan{TruncWrite: 2}},
	} {
		lb.WrapClient = func(c net.Conn) net.Conn { return faults.Wrap(c, tc.plan) }
		cl := dialClient(t, lb)
		cl.SetIOTimeout(time.Second)
		sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16})
		if err != nil {
			t.Fatalf("%s: open before the fault: %v", tc.name, err)
		}
		if _, err := cl.Encrypt(sess, make([]byte, 12), nil, []byte("doomed")); err == nil {
			t.Fatalf("%s: write fault produced no error", tc.name)
		}
		cl.Close()
	}

	// A clean client after both faults sees a healthy server.
	lb.WrapClient = nil
	cl := dialClient(t, lb)
	defer cl.Close()
	sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := cl.Encrypt(sess, make([]byte, 12), nil, []byte("alive")); err != nil || r.Status != StatusOK {
		t.Fatalf("post-fault server unhealthy: %v %v", r.Status, err)
	}
}

// TestStormChurn: the open/close connection-churn storm — concurrent
// dial/open/traffic/teardown waves, half the connections abandoning
// their sessions — leaves the server with zero open sessions and exact
// open/packet accounting.
func TestStormChurn(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Shards: 2, Seed: 19}})
	cfg := StormConfig{Conns: 6, Waves: 3, SessionsPerConn: 3, OpsPerSession: 2}
	res, err := RunStorm(lb.Dial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOpen := uint64(cfg.Conns * cfg.Waves * cfg.SessionsPerConn)
	if res.Opened != wantOpen || res.Packets != wantOpen*uint64(cfg.OpsPerSession) {
		t.Fatalf("storm accounting: %+v, want %d opens, %d packets",
			res, wantOpen, wantOpen*uint64(cfg.OpsPerSession))
	}
	if res.Abandons == 0 || res.Closed == 0 {
		t.Fatalf("storm exercised only one teardown path: %+v", res)
	}

	// The abandoned sessions are reclaimed by connection cleanup: an
	// observer sees everything closed and every packet answered OK.
	obs := dialClient(t, lb)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := obs.Retrieve()
		if err != nil {
			t.Fatal(err)
		}
		if st.SessionsOpen == 0 {
			if st.SessionsOpened != wantOpen {
				t.Fatalf("server counted %d opens, want %d", st.SessionsOpened, wantOpen)
			}
			if st.Verdicts[StatusOK] != res.Packets {
				t.Fatalf("server answered %d OK packets, want %d", st.Verdicts[StatusOK], res.Packets)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reclaimed abandoned sessions: %d still open", st.SessionsOpen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	obs.Close()
	srv.Close()
	waitGoroutines(t, base)
}
