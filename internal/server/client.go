package server

import (
	"bufio"
	"fmt"
	"net"
)

// Client speaks the wire protocol over one connection. It is not safe
// for concurrent use — the open-loop load generator runs one Client per
// connection goroutine. Requests may be pipelined: the Send* methods
// buffer frames without reading anything back; Flush pushes them to the
// wire and ReadResponse collects answers in order.
type Client struct {
	nc             net.Conn
	br             *bufio.Reader
	bw             *bufio.Writer
	nextID         uint64
	scratch, frame []byte
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Dial connects to a TCP server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// Close closes the connection (open sessions are reclaimed server-side).
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) send(body []byte) (uint64, error) {
	id := c.nextID
	c.frame = appendFrame(c.frame[:0], body)
	_, err := c.bw.Write(c.frame)
	return id, err
}

// SendOpen pipelines an OPEN.
func (c *Client) SendOpen(spec OpenRequest) (uint64, error) {
	c.nextID++
	c.scratch = encodeOpen(c.scratch[:0], c.nextID, spec)
	return c.send(c.scratch)
}

// SendClose pipelines a CLOSE.
func (c *Client) SendClose(sess uint64) (uint64, error) {
	c.nextID++
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, byte(OpClose))
	c.scratch = putU64(c.scratch, c.nextID)
	c.scratch = putU64(c.scratch, sess)
	return c.send(c.scratch)
}

// SendEncrypt pipelines an ENCRYPT.
func (c *Client) SendEncrypt(sess uint64, nonce, aad, payload []byte) (uint64, error) {
	c.nextID++
	c.scratch = encodePacket(c.scratch[:0], OpEncrypt, c.nextID, sess, nonce, aad, payload, nil)
	return c.send(c.scratch)
}

// SendDecrypt pipelines a DECRYPT.
func (c *Client) SendDecrypt(sess uint64, nonce, aad, ct, tag []byte) (uint64, error) {
	c.nextID++
	c.scratch = encodePacket(c.scratch[:0], OpDecrypt, c.nextID, sess, nonce, aad, ct, tag)
	return c.send(c.scratch)
}

// SendFlush pipelines a FLUSH barrier marker.
func (c *Client) SendFlush() (uint64, error) {
	c.nextID++
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, byte(OpFlush))
	c.scratch = putU64(c.scratch, c.nextID)
	return c.send(c.scratch)
}

// SendRetrieve pipelines a RETRIEVE_DATA.
func (c *Client) SendRetrieve() (uint64, error) {
	c.nextID++
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, byte(OpRetrieve))
	c.scratch = putU64(c.scratch, c.nextID)
	return c.send(c.scratch)
}

// Flush pushes buffered request frames onto the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// ReadResponse reads the next response frame (flushing buffered requests
// first, so a lock-step caller cannot deadlock on its own buffer).
func (c *Client) ReadResponse() (Response, error) {
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	body, err := readFrame(c.br, c.frame)
	if err != nil {
		return Response{}, err
	}
	c.frame = body
	return DecodeResponse(body)
}

// roundTrip sends one buffered request and reads its response lock-step.
func (c *Client) roundTrip(id uint64) (Response, error) {
	r, err := c.ReadResponse()
	if err != nil {
		return r, err
	}
	if r.ReqID != id {
		return r, fmt.Errorf("server: response for request %d while waiting for %d (pipelined requests outstanding?)", r.ReqID, id)
	}
	return r, nil
}

// Open opens a session lock-step, returning its wire id.
func (c *Client) Open(spec OpenRequest) (uint64, error) {
	id, err := c.SendOpen(spec)
	if err != nil {
		return 0, err
	}
	r, err := c.roundTrip(id)
	if err != nil {
		return 0, err
	}
	return r.Session, r.Err()
}

// openChunk bounds pipelined OPENs in flight so the server's per-conn
// write buffer can never fill before the client starts reading.
const openChunk = 512

// OpenMany opens len(specs) sessions, pipelined in bounded chunks, and
// returns their wire ids in order.
func (c *Client) OpenMany(specs []OpenRequest) ([]uint64, error) {
	ids := make([]uint64, 0, len(specs))
	for lo := 0; lo < len(specs); lo += openChunk {
		hi := lo + openChunk
		if hi > len(specs) {
			hi = len(specs)
		}
		first := uint64(0)
		for i := lo; i < hi; i++ {
			id, err := c.SendOpen(specs[i])
			if err != nil {
				return ids, err
			}
			if i == lo {
				first = id
			}
		}
		for i := lo; i < hi; i++ {
			r, err := c.ReadResponse()
			if err != nil {
				return ids, err
			}
			if r.ReqID != first+uint64(i-lo) {
				return ids, fmt.Errorf("server: OPEN responses out of order (%d)", r.ReqID)
			}
			if err := r.Err(); err != nil {
				return ids, err
			}
			ids = append(ids, r.Session)
		}
	}
	return ids, nil
}

// CloseSession closes a session lock-step, returning the protocol
// status.
func (c *Client) CloseSession(sess uint64) (Status, error) {
	id, err := c.SendClose(sess)
	if err != nil {
		return 0, err
	}
	r, err := c.roundTrip(id)
	return r.Status, err
}

// packetRoundTrip follows a pipelined packet with a FLUSH (a lone packet
// would otherwise sit in the batcher until the size or deadline trigger),
// then reads the packet response and the FLUSH ack.
func (c *Client) packetRoundTrip(id uint64) (Response, error) {
	fid, err := c.SendFlush()
	if err != nil {
		return Response{}, err
	}
	r, err := c.roundTrip(id)
	if err != nil {
		return r, err
	}
	if _, err := c.roundTrip(fid); err != nil {
		return r, err
	}
	return r, nil
}

// Encrypt round-trips one ENCRYPT lock-step (with a piggybacked FLUSH).
func (c *Client) Encrypt(sess uint64, nonce, aad, payload []byte) (Response, error) {
	id, err := c.SendEncrypt(sess, nonce, aad, payload)
	if err != nil {
		return Response{}, err
	}
	return c.packetRoundTrip(id)
}

// Decrypt round-trips one DECRYPT lock-step (with a piggybacked FLUSH).
func (c *Client) Decrypt(sess uint64, nonce, aad, ct, tag []byte) (Response, error) {
	id, err := c.SendDecrypt(sess, nonce, aad, ct, tag)
	if err != nil {
		return Response{}, err
	}
	return c.packetRoundTrip(id)
}

// Barrier round-trips a FLUSH: when it returns, every earlier request on
// this connection has been answered.
func (c *Client) Barrier() error {
	id, err := c.SendFlush()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(id)
	return err
}

// Retrieve round-trips a RETRIEVE_DATA and returns the server's report.
func (c *Client) Retrieve() (*Stats, error) {
	id, err := c.SendRetrieve()
	if err != nil {
		return nil, err
	}
	r, err := c.roundTrip(id)
	if err != nil {
		return nil, err
	}
	return r.Stats, nil
}
