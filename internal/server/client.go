package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrTimeout marks a client read that exceeded the configured I/O
// deadline: the peer is alive-but-silent (stalled, wedged, or gone
// without a FIN). Callers test for it with errors.Is; the lock-step
// helpers treat it as the retryable failure.
var ErrTimeout = errors.New("server: client i/o timeout")

// RetryPolicy bounds the lock-step helpers' retries after an I/O
// timeout. A retried request is resent with the SAME request id, so a
// server that deduplicates control requests (this one does) executes it
// at most once — the retry is safe for idempotent operations
// (OPEN/CLOSE/FLUSH), which is exactly the set the lock-step helpers
// cover. The pipelined Send*/ReadResponse path never retries.
type RetryPolicy struct {
	// Attempts is the total number of tries (first send included).
	// 0 or 1 means no retry.
	Attempts int
	// Backoff is the sleep before the first retry; it doubles each
	// retry, capped at BackoffCap (defaults 1ms / 100ms when Attempts
	// requests retries but the durations are zero).
	Backoff    time.Duration
	BackoffCap time.Duration
	// Jitter subtracts up to this fraction of each backoff sleep
	// (full-jitter toward zero), so connections that timed out together —
	// a shared server stall — do not retry in one synchronized storm.
	// Defaults to 0.5 when retries are on; negative disables jitter;
	// values above 1 clamp to 1. The jitter stream is seeded (Seed, the
	// request id and the attempt number), never shared wall-clock
	// randomness, so wire tests stay reproducible.
	Jitter float64
	// Seed derives the deterministic jitter stream (0 = an unseeded but
	// still deterministic stream; load generators seed one per
	// connection).
	Seed uint64
}

func (p *RetryPolicy) fill() {
	if p.Attempts > 1 {
		if p.Backoff <= 0 {
			p.Backoff = time.Millisecond
		}
		if p.BackoffCap <= 0 {
			p.BackoffCap = 100 * time.Millisecond
		}
		if p.Jitter == 0 {
			p.Jitter = 0.5
		}
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
}

// splitmix64 is the SplitMix64 mixer — one multiply-xor-shift chain per
// call, enough to decorrelate the (seed, id, attempt) tuples the jitter
// stream is keyed by.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// jittered shrinks a backoff sleep by a deterministic fraction in
// [0, Jitter), keyed by the retrying request's id and attempt number.
func (p RetryPolicy) jittered(backoff time.Duration, id uint64, attempt int) time.Duration {
	if p.Jitter <= 0 || backoff <= 0 {
		return backoff
	}
	u := splitmix64(p.Seed ^ id*0x9E3779B97F4A7C15 ^ uint64(attempt)<<40)
	frac := float64(u>>11) / (1 << 53) // uniform in [0,1)
	return backoff - time.Duration(p.Jitter*frac*float64(backoff))
}

// Client speaks the wire protocol over one connection. It is not safe
// for concurrent use — the open-loop load generator runs one Client per
// connection goroutine. Requests may be pipelined: the Send* methods
// buffer frames without reading anything back; Flush pushes them to the
// wire and ReadResponse collects answers in order.
type Client struct {
	nc             net.Conn
	br             *bufio.Reader
	bw             *bufio.Writer
	nextID         uint64
	scratch, frame []byte

	// ioTimeout bounds every response-frame read (0 = wait forever);
	// retry governs the lock-step helpers. stale tracks request ids a
	// timed-out attempt may still produce late duplicate responses for,
	// so readUntil can skip them instead of failing on "out of order".
	ioTimeout time.Duration
	retry     RetryPolicy
	stale     map[uint64]int
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Dial connects to a TCP server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// SetIOTimeout bounds every subsequent response read: a read that
// exceeds d fails with an error wrapping ErrTimeout instead of hanging
// forever on a dead or wedged peer. 0 restores the wait-forever
// default. A timeout that fires mid-frame leaves the stream position
// inside the frame — retries are only safe when the peer was silent,
// which is the failure the deadline exists to catch.
func (c *Client) SetIOTimeout(d time.Duration) { c.ioTimeout = d }

// SetRetryPolicy configures bounded exponential-backoff retries for the
// lock-step idempotent helpers (Open, CloseSession, Barrier): on
// ErrTimeout the request is resent with the same request id and the
// backoff doubles up to the cap.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	p.fill()
	c.retry = p
}

// Close closes the connection (open sessions are reclaimed server-side).
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) send(body []byte) (uint64, error) {
	id := c.nextID
	c.frame = appendFrame(c.frame[:0], body)
	_, err := c.bw.Write(c.frame)
	return id, err
}

// SendOpen pipelines an OPEN.
func (c *Client) SendOpen(spec OpenRequest) (uint64, error) {
	c.nextID++
	c.scratch = encodeOpen(c.scratch[:0], c.nextID, spec)
	return c.send(c.scratch)
}

// SendClose pipelines a CLOSE.
func (c *Client) SendClose(sess uint64) (uint64, error) {
	c.nextID++
	return c.send(encodeCloseReq(c.scratch[:0], c.nextID, sess))
}

func encodeCloseReq(dst []byte, reqID, sess uint64) []byte {
	dst = append(dst, byte(OpClose))
	dst = putU64(dst, reqID)
	return putU64(dst, sess)
}

// SendEncrypt pipelines an ENCRYPT.
func (c *Client) SendEncrypt(sess uint64, nonce, aad, payload []byte) (uint64, error) {
	c.nextID++
	c.scratch = encodePacket(c.scratch[:0], OpEncrypt, c.nextID, sess, nonce, aad, payload, nil)
	return c.send(c.scratch)
}

// SendDecrypt pipelines a DECRYPT.
func (c *Client) SendDecrypt(sess uint64, nonce, aad, ct, tag []byte) (uint64, error) {
	c.nextID++
	c.scratch = encodePacket(c.scratch[:0], OpDecrypt, c.nextID, sess, nonce, aad, ct, tag)
	return c.send(c.scratch)
}

// SendFlush pipelines a FLUSH barrier marker.
func (c *Client) SendFlush() (uint64, error) {
	c.nextID++
	return c.send(encodeFlushReq(c.scratch[:0], c.nextID))
}

func encodeFlushReq(dst []byte, reqID uint64) []byte {
	dst = append(dst, byte(OpFlush))
	return putU64(dst, reqID)
}

// SendRetrieve pipelines a RETRIEVE_DATA.
func (c *Client) SendRetrieve() (uint64, error) {
	c.nextID++
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, byte(OpRetrieve))
	c.scratch = putU64(c.scratch, c.nextID)
	return c.send(c.scratch)
}

// SendStats pipelines a STATS.
func (c *Client) SendStats() (uint64, error) {
	c.nextID++
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, byte(OpStats))
	c.scratch = putU64(c.scratch, c.nextID)
	return c.send(c.scratch)
}

// MetricsText round-trips a STATS and returns the server's metrics
// registry in Prometheus text exposition format — the same bytes the
// HTTP /metrics endpoint serves.
func (c *Client) MetricsText() (string, error) {
	id, err := c.SendStats()
	if err != nil {
		return "", err
	}
	r, err := c.roundTrip(id)
	if err != nil {
		return "", err
	}
	return string(r.Out), r.Err()
}

// Flush pushes buffered request frames onto the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// ReadResponse reads the next response frame (flushing buffered requests
// first, so a lock-step caller cannot deadlock on its own buffer). With
// an I/O timeout set, a read exceeding it fails with an error wrapping
// ErrTimeout.
func (c *Client) ReadResponse() (Response, error) {
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	if c.ioTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return Response{}, err
		}
	}
	body, err := readFrame(c.br, c.frame)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return Response{}, fmt.Errorf("server: no response within %v: %w", c.ioTimeout, ErrTimeout)
		}
		return Response{}, err
	}
	c.frame = body
	return DecodeResponse(body)
}

// roundTrip sends one buffered request and reads its response lock-step.
func (c *Client) roundTrip(id uint64) (Response, error) {
	return c.readUntil(id)
}

// readUntil reads responses until the one answering id, skipping late
// duplicates earlier timed-out attempts left in flight (the server
// answers every received frame, so a retried request that did reach it
// yields two responses with the same id).
func (c *Client) readUntil(id uint64) (Response, error) {
	for {
		r, err := c.ReadResponse()
		if err != nil {
			return r, err
		}
		if r.ReqID == id {
			return r, nil
		}
		if n := c.stale[r.ReqID]; n > 0 {
			if n == 1 {
				delete(c.stale, r.ReqID)
			} else {
				c.stale[r.ReqID] = n - 1
			}
			continue
		}
		return r, fmt.Errorf("server: response for request %d while waiting for %d (pipelined requests outstanding?)", r.ReqID, id)
	}
}

// lockStep round-trips one request, retrying on ErrTimeout per the
// retry policy. encode must rebuild the request body for the SAME
// request id on every attempt, so the server-side dedupe recognizes the
// resend.
func (c *Client) lockStep(encode func(dst []byte, id uint64) []byte) (Response, error) {
	c.nextID++
	id := c.nextID
	attempts := c.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.retry.Backoff
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(c.retry.jittered(backoff, id, a))
			if backoff *= 2; backoff > c.retry.BackoffCap {
				backoff = c.retry.BackoffCap
			}
			// The timed-out attempt may still be answered later; one more
			// response with this id may precede the retry's own answer, and
			// readUntil consumes duplicates with matching ids in order, so
			// only a FAILED send needs no bookkeeping.
		}
		c.scratch = encode(c.scratch[:0], id)
		if _, err := c.send(c.scratch); err != nil {
			return Response{}, err
		}
		r, err := c.readUntil(id)
		if err == nil {
			return r, nil
		}
		if !errors.Is(err, ErrTimeout) {
			return r, err
		}
		lastErr = err
		// Any response the lost attempt still produces for this id would
		// arrive before later requests' answers; remember to skip it.
		if c.stale == nil {
			c.stale = make(map[uint64]int)
		}
		c.stale[id]++
	}
	return Response{}, fmt.Errorf("server: request failed after %d attempts: %w", attempts, lastErr)
}

// Open opens a session lock-step, returning its wire id. With a retry
// policy set, a timed-out OPEN is resent under the same request id —
// the server's per-connection dedupe guarantees at most one session.
func (c *Client) Open(spec OpenRequest) (uint64, error) {
	r, err := c.lockStep(func(dst []byte, id uint64) []byte {
		return encodeOpen(dst, id, spec)
	})
	if err != nil {
		return 0, err
	}
	return r.Session, r.Err()
}

// openChunk bounds pipelined OPENs in flight so the server's per-conn
// write buffer can never fill before the client starts reading.
const openChunk = 512

// OpenMany opens len(specs) sessions, pipelined in bounded chunks, and
// returns their wire ids in order.
func (c *Client) OpenMany(specs []OpenRequest) ([]uint64, error) {
	ids := make([]uint64, 0, len(specs))
	for lo := 0; lo < len(specs); lo += openChunk {
		hi := lo + openChunk
		if hi > len(specs) {
			hi = len(specs)
		}
		first := uint64(0)
		for i := lo; i < hi; i++ {
			id, err := c.SendOpen(specs[i])
			if err != nil {
				return ids, err
			}
			if i == lo {
				first = id
			}
		}
		for i := lo; i < hi; i++ {
			r, err := c.ReadResponse()
			if err != nil {
				return ids, err
			}
			if r.ReqID != first+uint64(i-lo) {
				return ids, fmt.Errorf("server: OPEN responses out of order (%d)", r.ReqID)
			}
			if err := r.Err(); err != nil {
				return ids, err
			}
			ids = append(ids, r.Session)
		}
	}
	return ids, nil
}

// CloseSession closes a session lock-step, returning the protocol
// status. Retries (when configured) resend under the same request id;
// the server's dedupe replays the first outcome instead of reporting
// the tombstone's session-closed error.
func (c *Client) CloseSession(sess uint64) (Status, error) {
	r, err := c.lockStep(func(dst []byte, id uint64) []byte {
		return encodeCloseReq(dst, id, sess)
	})
	return r.Status, err
}

// packetRoundTrip follows a pipelined packet with a FLUSH (a lone packet
// would otherwise sit in the batcher until the size or deadline trigger),
// then reads the packet response and the FLUSH ack.
func (c *Client) packetRoundTrip(id uint64) (Response, error) {
	fid, err := c.SendFlush()
	if err != nil {
		return Response{}, err
	}
	r, err := c.roundTrip(id)
	if err != nil {
		return r, err
	}
	if _, err := c.roundTrip(fid); err != nil {
		return r, err
	}
	return r, nil
}

// Encrypt round-trips one ENCRYPT lock-step (with a piggybacked FLUSH).
func (c *Client) Encrypt(sess uint64, nonce, aad, payload []byte) (Response, error) {
	id, err := c.SendEncrypt(sess, nonce, aad, payload)
	if err != nil {
		return Response{}, err
	}
	return c.packetRoundTrip(id)
}

// Decrypt round-trips one DECRYPT lock-step (with a piggybacked FLUSH).
func (c *Client) Decrypt(sess uint64, nonce, aad, ct, tag []byte) (Response, error) {
	id, err := c.SendDecrypt(sess, nonce, aad, ct, tag)
	if err != nil {
		return Response{}, err
	}
	return c.packetRoundTrip(id)
}

// Barrier round-trips a FLUSH: when it returns, every earlier request on
// this connection has been answered. FLUSH is naturally idempotent, so
// a timed-out barrier retries under the retry policy like the other
// lock-step helpers.
func (c *Client) Barrier() error {
	_, err := c.lockStep(encodeFlushReq)
	return err
}

// Retrieve round-trips a RETRIEVE_DATA and returns the server's report.
func (c *Client) Retrieve() (*Stats, error) {
	id, err := c.SendRetrieve()
	if err != nil {
		return nil, err
	}
	r, err := c.roundTrip(id)
	if err != nil {
		return nil, err
	}
	return r.Stats, nil
}
