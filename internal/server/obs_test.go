package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
)

// TestStatsWireOp: the STATS frame returns the server's Prometheus text
// over the wire, reflecting traffic that already flowed, and the HTTP
// endpoint renders the same registry.
func TestStatsWireOp(t *testing.T) {
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 7}})
	defer srv.Close()
	cl := dialClient(t, lb)
	defer cl.Close()

	ids, err := cl.OpenMany([]OpenRequest{{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Voice}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Encrypt(ids[0], make([]byte, 12), nil, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}

	text, err := cl.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"mccp_cluster_packets_total 1",
		"mccp_server_sessions_open 1",
		`mccp_server_responses_total{status="ok"} 1`,
		"mccp_server_bytes_in_total",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("STATS text missing %q:\n%s", needle, text)
		}
	}

	// The HTTP endpoint reads the same registry.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "mccp_cluster_packets_total") {
		t.Errorf("/metrics missing cluster counters:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/postmortems", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "postmortem") {
		t.Errorf("/postmortems status %d body %q", rec.Code, rec.Body.String())
	}
}

// TestStatsOpString: the new op renders in protocol logs.
func TestStatsOpString(t *testing.T) {
	if OpStats.String() != "STATS" {
		t.Errorf("OpStats renders as %q", OpStats.String())
	}
}
