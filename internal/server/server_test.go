package server

import (
	"bytes"
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mccp/internal/arrivals"
	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
)

// waitGoroutines retries until the goroutine count returns to base (the
// runtime retires exited goroutines asynchronously).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func startLoopback(t *testing.T, cfg Config) (*Server, *Loopback) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	srv.Serve(lb)
	return srv, lb
}

func dialClient(t *testing.T, lb *Loopback) *Client {
	t.Helper()
	nc, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(nc)
}

func TestOpenEncryptDecryptRoundTrip(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 7}})
	cl := dialClient(t, lb)

	sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Voice})
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	payload := []byte("the quick brown fox jumps over the lazy dog over and over again!")
	r, err := cl.Encrypt(sess, nonce, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusOK {
		t.Fatalf("encrypt status %v", r.Status)
	}
	if len(r.Out) != len(payload)+16 {
		t.Fatalf("ciphertext %d bytes, want %d", len(r.Out), len(payload)+16)
	}
	if r.Timing.WireCycles == 0 {
		t.Fatal("encrypt reported zero wire cycles")
	}
	ct, tag := r.Out[:len(payload)], r.Out[len(payload):]
	d, err := cl.Decrypt(sess, nonce, nil, ct, tag)
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != StatusOK || !bytes.Equal(d.Out, payload) {
		t.Fatalf("decrypt status %v, plaintext mismatch", d.Status)
	}

	// Corrupt tag -> AuthFail status on the wire.
	tag[0] ^= 0xFF
	d, err = cl.Decrypt(sess, nonce, nil, ct, tag)
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != StatusAuthFail {
		t.Fatalf("corrupted tag status %v, want auth-fail", d.Status)
	}

	st, err := cl.Retrieve()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsOpen != 1 || st.Verdicts[StatusOK] != 2 || st.Verdicts[StatusAuthFail] != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 || st.ClusterCycles == 0 {
		t.Fatalf("stats missing traffic: %+v", st)
	}

	if status, err := cl.CloseSession(sess); err != nil || status != StatusOK {
		t.Fatalf("close: %v %v", status, err)
	}
	cl.Close()
	srv.Close()
	waitGoroutines(t, base)
}

func TestLifecycleEdges(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, lb := startLoopback(t, Config{Cluster: cluster.Config{Seed: 3}})
	cl := dialClient(t, lb)

	// OPEN with an unknown algorithm family.
	if _, err := cl.Open(OpenRequest{Family: cryptocore.Family(9), KeyLen: 16, Class: qos.Data}); err == nil {
		t.Fatal("OPEN with unknown family succeeded")
	}
	// OPEN with a bad key length (cluster-side validation).
	if _, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 17, Class: qos.Data}); err == nil {
		t.Fatal("OPEN with bad key length succeeded")
	}
	// Hash sessions are not a wire family.
	if _, err := cl.Open(OpenRequest{Family: cryptocore.FamilyHash, Class: qos.Data}); err == nil {
		t.Fatal("OPEN hash family succeeded")
	}

	sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyCCM, KeyLen: 16, TagLen: 8, Class: qos.Voice})
	if err != nil {
		t.Fatal(err)
	}
	// Request on a never-opened session id.
	r, err := cl.Encrypt(sess+100, make([]byte, 13), nil, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusUnknownSess {
		t.Fatalf("unknown session status %v", r.Status)
	}
	// Double CLOSE.
	if status, _ := cl.CloseSession(sess); status != StatusOK {
		t.Fatalf("first close %v", status)
	}
	if status, _ := cl.CloseSession(sess); status != StatusSessClosed {
		t.Fatalf("double close %v, want session-closed", status)
	}
	// Request on a closed session.
	r, err = cl.Encrypt(sess, make([]byte, 13), nil, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusSessClosed {
		t.Fatalf("closed session status %v", r.Status)
	}

	// Malformed frame: a truncated body.
	cl.bw.Write([]byte{0, 0, 0, 3, byte(OpOpen), 1, 2})
	resp, err := cl.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBadRequest {
		t.Fatalf("malformed frame status %v", resp.Status)
	}

	// Session limit admission.
	srv2, lb2 := startLoopback(t, Config{Cluster: cluster.Config{Seed: 4}, MaxSessions: 1})
	cl2 := dialClient(t, lb2)
	if _, err := cl2.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Data}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Data}); err == nil {
		t.Fatal("OPEN past MaxSessions succeeded")
	}
	cl2.Close()
	srv2.Close()

	cl.Close()
	srv.Close()
	waitGoroutines(t, base)
}

// TestIdleReaperMidFlight proves a reaped connection's sessions and
// in-flight (batched but unflushed) operations are reclaimed without
// hanging the server or leaking goroutines.
func TestIdleReaperMidFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, lb := startLoopback(t, Config{
		Cluster:     cluster.Config{Seed: 11},
		BatchOps:    1024, // large: the encrypt below stays pending
		IdleTimeout: 50 * time.Millisecond,
	})
	cl := dialClient(t, lb)
	sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Video})
	if err != nil {
		t.Fatal(err)
	}
	// Leave an encrypt in the batcher's pending window, then go idle.
	if _, err := cl.SendEncrypt(sess, make([]byte, 12), nil, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// The reaper must close the idle connection; the client observes it
	// as a dead pipe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl.nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := cl.ReadResponse(); err != nil {
			if ne, ok := err.(interface{ Timeout() bool }); !ok || !ne.Timeout() {
				break // connection killed by the reaper
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper never closed the idle connection")
		}
	}
	// A fresh connection sees the session count back at zero.
	cl2 := dialClient(t, lb)
	var open uint64 = 99
	for tries := 0; tries < 100; tries++ {
		st, err := cl2.Retrieve()
		if err != nil {
			t.Fatal(err)
		}
		if open = st.SessionsOpen; open == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if open != 0 {
		t.Fatalf("reaped connection left %d sessions open", open)
	}
	cl2.Close()
	cl.Close()
	srv.Close()
	waitGoroutines(t, base)
}

// TestShutdownWithInFlightBatches closes the server while a client has
// pending batched operations; the shutdown must answer or discard them
// without hanging and return every goroutine.
func TestShutdownWithInFlightBatches(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, lb := startLoopback(t, Config{
		Cluster:  cluster.Config{Seed: 13},
		BatchOps: 4096, // nothing flushes on its own
	})
	cl := dialClient(t, lb)
	sess, err := cl.Open(OpenRequest{Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Class: qos.Voice})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := cl.SendEncrypt(sess, make([]byte, 12), nil, make([]byte, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drain responses concurrently until the connection dies: shutdown
	// must not depend on the client reading everything.
	drained := make(chan int, 1)
	go func() {
		n := 0
		for {
			if _, err := cl.ReadResponse(); err != nil {
				drained <- n
				return
			}
			n++
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the batcher ingest the requests
	srv.Close()
	<-drained
	cl.Close()
	waitGoroutines(t, base)
}

// TestSessionScale opens 10^5 concurrent wire sessions over one
// loopback connection (derated under the race detector), runs traffic on
// a sample of them, and verifies shutdown returns the goroutine count to
// baseline — the "millions of users" claim's memory/liveness floor.
func TestSessionScale(t *testing.T) {
	sessions := 100_000
	if raceEnabled {
		sessions = 20_000
	}
	if testing.Short() {
		sessions = 5_000
	}
	base := runtime.NumGoroutine()
	srv, lb := startLoopback(t, Config{
		Cluster: cluster.Config{Shards: 4, Seed: 17, Router: "least-loaded"},
	})
	cl := dialClient(t, lb)
	specs := make([]OpenRequest, sessions)
	for i := range specs {
		specs[i] = OpenRequest{
			Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16,
			Class: qos.Class(i % qos.NumClasses),
		}
	}
	ids, err := cl.OpenMany(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != sessions {
		t.Fatalf("opened %d sessions, want %d", len(ids), sessions)
	}
	// Traffic on a spread of sessions.
	nonce := make([]byte, 12)
	payload := make([]byte, 128)
	step := sessions / 256
	sent := 0
	for i := 0; i < sessions; i += step {
		if _, err := cl.SendEncrypt(ids[i], nonce, nil, payload); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if _, err := cl.SendFlush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sent+1; i++ {
		if _, err := cl.ReadResponse(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Retrieve()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsOpen != uint64(sessions) {
		t.Fatalf("server reports %d open sessions, want %d", st.SessionsOpen, sessions)
	}
	if st.Verdicts[StatusOK] == 0 {
		t.Fatal("no traffic completed")
	}
	cl.Close()
	srv.Close()
	waitGoroutines(t, base)
}

// TestLoadRunDeterministic runs the open-loop wire workload twice on a
// single connection and expects bit-identical virtual-time results.
func TestLoadRunDeterministic(t *testing.T) {
	run := func() LoadResult {
		srv, lb := startLoopback(t, Config{
			Cluster: cluster.Config{
				Shards: 2, Seed: 23, Router: "qos-aware", Policy: "qos-priority",
				QueueRequests: true, Shape: true,
				Shaper: qos.Config{Capacity: 8, QueueDepth: 32},
			},
			BatchOps: 64,
		})
		defer srv.Close()
		res, err := RunLoad(func() (nc net.Conn, err error) { return lb.Dial() }, LoadConfig{
			Sessions: 16,
			Mix: []arrivals.ClassProfile{
				{Class: qos.Voice, Share: 0.25, Bytes: 256, Family: cryptocore.FamilyCCM, KeyLen: 16, TagLen: 8, Deadline: 16000},
				{Class: qos.Background, Share: 0.75, Bytes: 1024, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
			},
			BitsPerCycle: 4.0,
			WindowCycles: 4096,
			Windows:      12,
			Seed:         99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ArrivalDigest != b.ArrivalDigest {
		t.Fatalf("arrival digests differ: %x vs %x", a.ArrivalDigest, b.ArrivalDigest)
	}
	if !reflect.DeepEqual(a.Classes, b.Classes) {
		t.Fatalf("class tallies differ:\n%+v\n%+v", a.Classes, b.Classes)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("server stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Classes[qos.Voice].OK == 0 || a.Classes[qos.Background].OK == 0 {
		t.Fatalf("no completions: %+v", a.Classes)
	}
}
