package server

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"mccp/internal/arrivals"
	"mccp/internal/qos"
	"mccp/internal/sim"
)

// LoadConfig drives RunLoad, the open-loop wire workload shared by
// cmd/mccploadgen and the harness's E14 table.
//
// Arrival times live on a client-side "wire clock" in virtual cycles:
// each session draws interarrival gaps from its own split PRNG stream,
// the merged stream is partitioned into fixed windows of WindowCycles,
// and each window's packets are sent pipelined and closed with a FLUSH
// barrier. A packet's wire latency is its batching wait (window end
// minus arrival) plus the shard-side service cycles the response
// reports — so with one connection the whole measurement is a pure
// function of (config, seed) and reproduces bit-identically.
type LoadConfig struct {
	// Sessions is the total concurrent session count (default 64),
	// dealt round-robin over the Mix profiles and split evenly across
	// Conns.
	Sessions int
	// Mix is the class mix (required). Shares weight the offered bits.
	Mix []arrivals.ClassProfile
	// Process names the arrival process per session (arrivals.ByName;
	// default poisson).
	Process string
	// BitsPerCycle is the total offered load on the wire clock.
	BitsPerCycle float64
	// WindowCycles is the client batching window (default 8192): the
	// deadline by which every arrival in a window is on the wire.
	WindowCycles sim.Time
	// Windows is the measurement length in windows (default 48).
	Windows int
	// Seed roots the splittable PRNG tree.
	Seed uint64
	// Conns is the connection count (default 1). Each connection runs
	// its own goroutine, client and PRNG stream split from the root in
	// connection order; with more than one connection the interleaving
	// at the server is scheduling-dependent, so virtual-time results are
	// no longer bit-reproducible.
	Conns int
	// Pipeline bounds outstanding unanswered sends per connection
	// (default 512; must stay below the server's WriteBuffer).
	Pipeline int
	// Trace, when set, receives one line per packet: CSV by default,
	// JSONL (one object per line, same fields) with TraceJSON.
	Trace     io.Writer
	TraceJSON bool

	// ChurnSessions, per connection, closes and re-opens that many
	// sessions (round-robin over the connection's slots) at each window
	// boundary from window ChurnFrom on — the deterministic open/close
	// storm. The churned sessions' arrival streams are unchanged; only
	// their wire ids and cluster placement re-key. ChurnFrom <= 0 means
	// every boundary.
	ChurnSessions int
	ChurnFrom     int
	// WindowTallies records per-window per-class verdict tallies in
	// LoadResult.Windows — the probe the fault curves derive recovery
	// time from.
	WindowTallies bool
	// IOTimeout bounds each connection's response reads (Client.
	// SetIOTimeout); Retry configures the lock-step retry policy used by
	// the churn's OPEN/CLOSE round trips. Both zero by default.
	IOTimeout time.Duration
	Retry     RetryPolicy
}

func (c *LoadConfig) fill() error {
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("server: RunLoad needs a class mix")
	}
	if c.WindowCycles == 0 {
		c.WindowCycles = 8192
	}
	if c.Windows <= 0 {
		c.Windows = 48
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 512
	}
	if c.BitsPerCycle <= 0 {
		return fmt.Errorf("server: RunLoad needs a positive offered load")
	}
	return nil
}

// ClassLoad is one class's client-side tally.
type ClassLoad struct {
	Class     qos.Class
	Submitted uint64
	// Verdict counts by response status.
	OK, Rejected, Shed, Expired, Aged, AuthFail, Failed uint64
	// DeliveredBytes counts OK responses' plaintext/ciphertext payload
	// bytes (the request size — the wire-throughput numerator).
	DeliveredBytes uint64
	// WireSamples are completed packets' end-to-end wire latencies in
	// cycles: batching wait plus shard service.
	WireSamples []sim.Time
}

func (cl *ClassLoad) count(st Status) {
	switch st {
	case StatusOK:
		cl.OK++
	case StatusRejected:
		cl.Rejected++
	case StatusShed:
		cl.Shed++
	case StatusExpired:
		cl.Expired++
	case StatusAged:
		cl.Aged++
	case StatusAuthFail:
		cl.AuthFail++
	default:
		cl.Failed++
	}
}

// ClassWindow is one class's tally inside one measurement window.
type ClassWindow struct {
	Submitted uint64
	OK        uint64
	// Lost counts every non-OK response (rejected, shed, expired, aged,
	// failed — anything that did not deliver).
	Lost uint64
}

// WindowLoad is one window's per-class outcome (LoadConfig.WindowTallies).
type WindowLoad struct {
	Classes [qos.NumClasses]ClassWindow
}

// DeliveredFrac returns a class's in-window delivered fraction (1 when
// the class submitted nothing — an empty window is not an outage).
func (w WindowLoad) DeliveredFrac(c qos.Class) float64 {
	cw := w.Classes[c]
	if cw.Submitted == 0 {
		return 1
	}
	return float64(cw.OK) / float64(cw.Submitted)
}

// LoadResult is RunLoad's merged outcome.
type LoadResult struct {
	// Classes is indexed by qos.Class.
	Classes [qos.NumClasses]ClassLoad
	// ArrivalDigest folds every generated arrival (XOR-merged across
	// connections).
	ArrivalDigest uint64
	// HorizonCycles is the wire-clock measurement span.
	HorizonCycles sim.Time
	// Stats is the server's RETRIEVE_DATA report after the run.
	Stats *Stats
	// Windows is the per-window tally series (only with
	// LoadConfig.WindowTallies; merged element-wise across connections).
	Windows []WindowLoad
	// Churned counts sessions closed and re-opened by the churn storm.
	Churned uint64
}

// lockedWriter serializes trace lines across connection goroutines.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// wireArrival is one generated packet-to-be.
type wireArrival struct {
	at   sim.Time
	sess int // local session index on this connection
	seq  int
	prof *arrivals.ClassProfile
}

// sentMeta tracks one in-flight request for response matching (FIFO —
// responses arrive in request order on a connection).
type sentMeta struct {
	flush  bool
	arr    wireArrival
	window sim.Time // wire-clock window end = the dispatch instant
}

// RunLoad opens Sessions sessions over Conns connections and replays the
// open-loop mix against a server, lock-stepping each window. dial is
// called once per connection.
func RunLoad(dial func() (net.Conn, error), cfg LoadConfig) (LoadResult, error) {
	if err := cfg.fill(); err != nil {
		return LoadResult{}, err
	}
	if cfg.Trace != nil && cfg.Conns > 1 {
		cfg.Trace = &lockedWriter{w: cfg.Trace}
	}

	root := arrivals.NewRand(cfg.Seed ^ 0xE14A77)
	connRands := make([]*arrivals.Rand, cfg.Conns)
	for i := range connRands {
		connRands[i] = root.Split()
	}

	// Deal sessions: global index -> (conn, profile). Class rates divide
	// by the class's global session count, so the superposed offered
	// load matches BitsPerCycle regardless of the split.
	per := cfg.Sessions / cfg.Conns
	extra := cfg.Sessions % cfg.Conns
	classSessions := make([]int, len(cfg.Mix))
	for g := 0; g < cfg.Sessions; g++ {
		classSessions[g%len(cfg.Mix)]++
	}

	var (
		mu      sync.Mutex
		res     LoadResult
		firstCl *Client
		runErr  error
	)
	res.HorizonCycles = sim.Time(cfg.Windows) * cfg.WindowCycles

	var wg sync.WaitGroup
	base := 0
	for ci := 0; ci < cfg.Conns; ci++ {
		n := per
		if ci < extra {
			n++
		}
		wg.Add(1)
		go func(ci, base, n int, rng *arrivals.Rand) {
			defer wg.Done()
			cl, cr, err := runConn(dial, cfg, ci, base, n, classSessions, rng)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && runErr == nil {
				runErr = err
			}
			if cl != nil {
				if ci == 0 {
					firstCl = cl
				} else {
					cl.Close()
				}
			}
			if cr != nil {
				for c := range res.Classes {
					agg := &res.Classes[c]
					add := &cr.Classes[c]
					agg.Class = qos.Class(c)
					agg.Submitted += add.Submitted
					agg.OK += add.OK
					agg.Rejected += add.Rejected
					agg.Shed += add.Shed
					agg.Expired += add.Expired
					agg.Aged += add.Aged
					agg.AuthFail += add.AuthFail
					agg.Failed += add.Failed
					agg.DeliveredBytes += add.DeliveredBytes
					agg.WireSamples = append(agg.WireSamples, add.WireSamples...)
				}
				res.ArrivalDigest ^= cr.ArrivalDigest
				res.Churned += cr.Churned
				if len(cr.Windows) > len(res.Windows) {
					res.Windows = append(res.Windows, make([]WindowLoad, len(cr.Windows)-len(res.Windows))...)
				}
				for wi := range cr.Windows {
					for c := range cr.Windows[wi].Classes {
						dst := &res.Windows[wi].Classes[c]
						add := cr.Windows[wi].Classes[c]
						dst.Submitted += add.Submitted
						dst.OK += add.OK
						dst.Lost += add.Lost
					}
				}
			}
		}(ci, base, n, connRands[ci])
		base += n
	}
	wg.Wait()
	if runErr != nil {
		if firstCl != nil {
			firstCl.Close()
		}
		return res, runErr
	}
	if firstCl != nil {
		st, err := firstCl.Retrieve()
		firstCl.Close()
		if err != nil {
			return res, err
		}
		res.Stats = st
	}
	return res, nil
}

// runConn drives one connection's share of the load and returns its
// client (left open for the final RETRIEVE) and tallies.
func runConn(dial func() (net.Conn, error), cfg LoadConfig, ci, base, n int,
	classSessions []int, rng *arrivals.Rand) (*Client, *LoadResult, error) {
	nc, err := dial()
	if err != nil {
		return nil, nil, err
	}
	cl := NewClient(nc)
	if cfg.IOTimeout > 0 {
		cl.SetIOTimeout(cfg.IOTimeout)
	}
	if cfg.Retry.Attempts > 1 {
		if cfg.Retry.Seed == 0 {
			// Give each connection its own jitter stream off the run seed,
			// so retry storms decorrelate but reruns reproduce exactly.
			cfg.Retry.Seed = splitmix64(cfg.Seed ^ uint64(ci)*0xA24BAED4963EE407)
		}
		cl.SetRetryPolicy(cfg.Retry)
	}

	// Open this connection's sessions in global order.
	specs := make([]OpenRequest, n)
	profs := make([]*arrivals.ClassProfile, n)
	for i := 0; i < n; i++ {
		p := &cfg.Mix[(base+i)%len(cfg.Mix)]
		profs[i] = p
		specs[i] = OpenRequest{
			Family:   p.Family,
			KeyLen:   p.KeyLen,
			TagLen:   p.TagLen,
			Class:    p.Class,
			Deadline: p.Deadline,
		}
	}
	ids, err := cl.OpenMany(specs)
	if err != nil {
		cl.Close()
		return nil, nil, err
	}

	// Generate every session's arrivals on the wire clock, folding the
	// digest in session-major order, then merge-sort by (time, session,
	// seq).
	horizon := sim.Time(cfg.Windows) * cfg.WindowCycles
	cr := &LoadResult{}
	cr.ArrivalDigest = arrivals.DigestInit
	var all []wireArrival
	nonces := make([][]byte, n)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		p := profs[i]
		gap := p.MeanGap(cfg.BitsPerCycle) * float64(classSessions[(base+i)%len(cfg.Mix)])
		mk, err := arrivals.ByName(cfg.Process, gap)
		if err != nil {
			cl.Close()
			return nil, nil, err
		}
		proc := mk()
		srng := rng.Split()
		at := sim.Time(0)
		seq := 0
		for {
			at += proc.Gap(srng)
			if at >= horizon {
				break
			}
			cr.ArrivalDigest = arrivals.FoldArrival(cr.ArrivalDigest, uint64(base+i), uint64(seq), at)
			all = append(all, wireArrival{at: at, sess: i, seq: seq, prof: p})
			seq++
		}
		nonces[i] = make([]byte, p.NonceLen())
		nonces[i][0] = byte(base + i)
		payloads[i] = make([]byte, p.Bytes)
		for j := range payloads[i] {
			payloads[i][j] = byte((base+i)*31 + j)
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].at != all[b].at {
			return all[a].at < all[b].at
		}
		if all[a].sess != all[b].sess {
			return all[a].sess < all[b].sess
		}
		return all[a].seq < all[b].seq
	})

	// Replay window by window, lock-stepping at each FLUSH barrier (and
	// at the pipeline bound within a window).
	inflight := make([]sentMeta, 0, cfg.Pipeline+1)
	head := 0
	pop := func() (*sentMeta, error) {
		r, err := cl.ReadResponse()
		if err != nil {
			return nil, err
		}
		m := &inflight[head]
		head++
		if m.flush {
			if r.Op != OpFlush {
				return nil, fmt.Errorf("server: expected FLUSH ack, got %s", r.Op)
			}
			return m, nil
		}
		if r.Op != OpEncrypt {
			return nil, fmt.Errorf("server: expected ENCRYPT response, got %s", r.Op)
		}
		wait := m.window - m.arr.at
		total := wait + r.Timing.WireCycles
		tally := &cr.Classes[m.arr.prof.Class]
		tally.count(r.Status)
		if r.Status == StatusOK {
			tally.DeliveredBytes += uint64(m.arr.prof.Bytes)
			tally.WireSamples = append(tally.WireSamples, total)
		}
		if cfg.WindowTallies {
			wi := int(m.window/cfg.WindowCycles) - 1
			for wi >= len(cr.Windows) {
				cr.Windows = append(cr.Windows, WindowLoad{})
			}
			cw := &cr.Windows[wi].Classes[m.arr.prof.Class]
			cw.Submitted++
			if r.Status == StatusOK {
				cw.OK++
			} else {
				cw.Lost++
			}
		}
		if cfg.Trace != nil {
			if cfg.TraceJSON {
				fmt.Fprintf(cfg.Trace, `{"conn":%d,"session":%d,"class":%q,"seq":%d,"arrival_cycle":%d,"bytes":%d,"status":%q,"service_cycles":%d,"total_cycles":%d,"queue_ns":%d,"service_ns":%d}`+"\n",
					ci, base+m.arr.sess, m.arr.prof.Class.String(), m.arr.seq, m.arr.at,
					m.arr.prof.Bytes, r.Status.String(), r.Timing.WireCycles, total,
					r.Timing.QueueNs, r.Timing.ServiceNs)
			} else {
				fmt.Fprintf(cfg.Trace, "%d,%d,%s,%d,%d,%d,%s,%d,%d,%d,%d\n",
					ci, base+m.arr.sess, m.arr.prof.Class, m.arr.seq, m.arr.at,
					m.arr.prof.Bytes, r.Status, r.Timing.WireCycles, total,
					r.Timing.QueueNs, r.Timing.ServiceNs)
			}
		}
		return m, nil
	}
	barrier := func() error {
		if _, err := cl.SendFlush(); err != nil {
			return err
		}
		inflight = append(inflight, sentMeta{flush: true})
		if err := cl.Flush(); err != nil {
			return err
		}
		for head < len(inflight) {
			if _, err := pop(); err != nil {
				return err
			}
		}
		inflight = inflight[:0]
		head = 0
		return nil
	}

	churnFrom := cfg.ChurnFrom
	if churnFrom <= 0 {
		churnFrom = 1
	}
	churnCursor := 0
	next := 0
	for w := 0; w < cfg.Windows; w++ {
		winEnd := sim.Time(w+1) * cfg.WindowCycles
		for next < len(all) && all[next].at < winEnd {
			a := all[next]
			next++
			nonce := arrivals.StampNonce(nonces[a.sess], a.seq)
			if _, err := cl.SendEncrypt(ids[a.sess], nonce, nil, payloads[a.sess]); err != nil {
				cl.Close()
				return nil, cr, err
			}
			cr.Classes[a.prof.Class].Submitted++
			inflight = append(inflight, sentMeta{arr: a, window: winEnd})
			if len(inflight)-head >= cfg.Pipeline {
				if err := barrier(); err != nil {
					cl.Close()
					return nil, cr, err
				}
			}
		}
		if err := barrier(); err != nil {
			cl.Close()
			return nil, cr, err
		}
		// The churn storm: entering window w+1, close and re-open the
		// next ChurnSessions slots lock-step. The re-opened session keeps
		// its arrival stream but re-keys and re-routes like a fresh one.
		if cfg.ChurnSessions > 0 && w+1 >= churnFrom && w+1 < cfg.Windows {
			for k := 0; k < cfg.ChurnSessions; k++ {
				slot := churnCursor % n
				churnCursor++
				if _, err := cl.CloseSession(ids[slot]); err != nil {
					cl.Close()
					return nil, cr, err
				}
				p := profs[slot]
				nid, err := cl.Open(OpenRequest{
					Family:   p.Family,
					KeyLen:   p.KeyLen,
					TagLen:   p.TagLen,
					Class:    p.Class,
					Deadline: p.Deadline,
				})
				if err != nil {
					cl.Close()
					return nil, cr, err
				}
				ids[slot] = nid
				cr.Churned++
			}
		}
	}
	return cl, cr, nil
}
