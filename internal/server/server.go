package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/sim"
)

// Config sizes a Server.
type Config struct {
	// Cluster configures the sharded MCCP backend. When
	// Cluster.BatchWindow is 0 the server raises it to 2xBatchOps so the
	// server's own flush triggers are the only batch-boundary driver —
	// batch partitioning then depends only on the request sequence.
	Cluster cluster.Config
	// BatchOps is the size trigger: queued packet operations that force a
	// flush (default 64).
	BatchOps int
	// FlushInterval is the wall-clock deadline trigger: a periodic flush
	// bounding how long a lone request waits for batch-mates. 0 disables
	// it — flushes then happen only on the size trigger and FLUSH frames,
	// keeping batch boundaries (and so every virtual-time figure) a pure
	// function of the request sequence. Deterministic runs use 0.
	FlushInterval time.Duration
	// IdleTimeout reaps connections with no inbound frame for this long
	// (0 = never). Reaping closes the connection; its sessions are
	// drained and released in request order.
	IdleTimeout time.Duration
	// MaxSessions bounds concurrently open wire sessions across all
	// connections (0 = unbounded); OPEN past the bound is Rejected —
	// admission control at the session level, upstream of the per-packet
	// QoS verdicts.
	MaxSessions int
	// QueueDepth is the shared inbound request channel's capacity
	// (default 4096): how far connection readers may run ahead of the
	// batcher before backpressure reaches the sockets.
	QueueDepth int
	// WriteBuffer is each connection's outbound response-frame buffer
	// (default 1024). A client must read responses; a connection whose
	// peer stops reading stalls the batcher once its buffer fills (until
	// the idle reaper claims it).
	WriteBuffer int
}

func (c *Config) fill() {
	if c.BatchOps <= 0 {
		c.BatchOps = 64
	}
	if c.Cluster.BatchWindow <= 0 {
		c.Cluster.BatchWindow = 2 * c.BatchOps
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.WriteBuffer <= 0 {
		c.WriteBuffer = 1024
	}
}

// maxWireSamples caps the per-class service-latency sample buffers
// feeding RETRIEVE_DATA percentiles; later samples are dropped (the cap
// is far above any CI run, and dropping is deterministic).
const maxWireSamples = 1 << 20

// conn is one accepted connection. The reader goroutine decodes frames
// onto the server's request channel; the writer drains the bounded out
// channel to the socket. sessions and cleaned are batcher-owned.
type conn struct {
	s          *Server
	nc         net.Conn
	out        chan []byte
	done       chan struct{} // closed by the batcher when the conn is cleaned
	lastActive atomic.Int64  // UnixNano of the last inbound frame

	sessions map[uint64]struct{}
	cleaned  bool
}

// wireSession binds a wire session id to a cluster session (batcher
// state).
type wireSession struct {
	id       uint64
	ses      *cluster.Session
	conn     *conn
	class    qos.Class
	deadline sim.Time
	shard    int
	closed   bool
}

// serverStats is the batcher's wire-level accounting behind
// RETRIEVE_DATA.
type serverStats struct {
	sessionsOpen   uint64
	sessionsOpened uint64
	verdicts       [11]uint64
	bytesIn        uint64
	bytesOut       uint64
}

// Server is the MCCP network front end.
type Server struct {
	cfg Config
	cl  *cluster.Cluster

	reqCh chan *request

	ln      net.Listener
	serving bool
	closing atomic.Bool

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wgAccept  sync.WaitGroup
	wgReaders sync.WaitGroup
	wgWriters sync.WaitGroup

	batcherDone chan struct{}
	reaperStop  chan struct{}
	reaperDone  chan struct{}

	closeOnce sync.Once
	closeErr  error

	// Batcher-owned state.
	sessions    map[uint64]*wireSession
	nextSess    uint64
	pending     []*request
	pendingOps  int
	stats       serverStats
	digests     []uint64
	wireSamples [qos.NumClasses][]sim.Time
}

// New builds the backend cluster and starts the batcher (and, with
// Config.IdleTimeout set, the reaper). The server accepts no connections
// until Serve.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		cl:          cl,
		reqCh:       make(chan *request, cfg.QueueDepth),
		conns:       make(map[*conn]struct{}),
		batcherDone: make(chan struct{}),
		reaperStop:  make(chan struct{}),
		reaperDone:  make(chan struct{}),
		sessions:    make(map[uint64]*wireSession),
		nextSess:    1,
		digests:     make([]uint64, cl.Shards()),
	}
	for i := range s.digests {
		s.digests[i] = digestInit
	}
	go s.batcher()
	if cfg.IdleTimeout > 0 {
		go s.reaper()
	} else {
		close(s.reaperDone)
	}
	return s, nil
}

// digestInit is the FNV-64a offset basis, the same fold the in-process
// workload digests use — the determinism guard compares the two directly.
const digestInit = 0xcbf29ce484222325

// Cluster exposes the backend for in-process observability (Snapshot is
// safe concurrently; everything else is not while the server runs).
func (s *Server) Cluster() *cluster.Cluster { return s.cl }

// Serve starts accepting connections on ln (non-blocking). It may be
// called once; Close closes ln.
func (s *Server) Serve(ln net.Listener) {
	if s.serving {
		panic("server: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.wgAccept.Add(1)
	go func() {
		defer s.wgAccept.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.addConn(nc)
		}
	}()
}

func (s *Server) addConn(nc net.Conn) {
	c := &conn{
		s:        s,
		nc:       nc,
		out:      make(chan []byte, s.cfg.WriteBuffer),
		done:     make(chan struct{}),
		sessions: make(map[uint64]struct{}),
	}
	c.lastActive.Store(time.Now().UnixNano())
	s.connMu.Lock()
	if s.closing.Load() {
		s.connMu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
	s.wgReaders.Add(1)
	s.wgWriters.Add(1)
	go c.readLoop()
	go c.writeLoop()
}

// readLoop decodes inbound frames onto the request channel until the
// connection dies, then injects the cleanup marker — after every request
// the connection sent, preserving order.
func (c *conn) readLoop() {
	defer c.s.wgReaders.Done()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	for {
		body, err := readFrame(br, buf)
		if err != nil {
			break
		}
		buf = body
		c.lastActive.Store(time.Now().UnixNano())
		req := &request{conn: c, enq: time.Now().UnixNano()}
		if !decodeRequest(body, req) {
			req.malformed = true
		}
		c.s.reqCh <- req
	}
	c.nc.Close()
	c.s.reqCh <- &request{op: opConnClosed, conn: c}
}

// writeLoop drains the out channel to the socket, buffering writes and
// flushing when the channel is momentarily empty. After a write error it
// keeps draining (discarding) so the batcher never blocks on a dead
// connection's buffer.
func (c *conn) writeLoop() {
	defer c.s.wgWriters.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var hdr [4]byte
	failed := false
	for body := range c.out {
		if failed {
			continue
		}
		putU32(hdr[:0], uint32(len(body)))
		if _, err := bw.Write(hdr[:]); err != nil {
			failed = true
			continue
		}
		if _, err := bw.Write(body); err != nil {
			failed = true
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				failed = true
			}
		}
	}
}

// respond hands a response frame to the connection's writer; a cleaned
// connection drops it.
func (s *Server) respond(c *conn, frame []byte) {
	select {
	case c.out <- frame:
	case <-c.done:
	}
}

// reaper closes connections idle past IdleTimeout; the read error path
// then drains and releases their sessions in order.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	tick := s.cfg.IdleTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case <-t.C:
			cut := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			s.connMu.Lock()
			var idle []*conn
			for c := range s.conns {
				if c.lastActive.Load() < cut {
					idle = append(idle, c)
				}
			}
			s.connMu.Unlock()
			for _, c := range idle {
				c.nc.Close()
			}
		}
	}
}

// Close shuts the server down in order: stop accepting, sever every
// connection, drain the readers, let the batcher finish in-flight
// batches and answer or drop what remains, release all sessions, stop
// the cluster. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		s.wgAccept.Wait()
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.connMu.Unlock()
		s.wgReaders.Wait()
		close(s.reqCh)
		<-s.batcherDone
		s.wgWriters.Wait()
		close(s.reaperStop)
		<-s.reaperDone
	})
	return s.closeErr
}

// batcher is the server's heart: the single goroutine that owns the
// cluster front end and all session state. Requests are processed in
// channel order; packet operations batch until a trigger flushes them.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	var timerC <-chan time.Time
	var timer *time.Ticker
	if s.cfg.FlushInterval > 0 {
		timer = time.NewTicker(s.cfg.FlushInterval)
		timerC = timer.C
		defer timer.Stop()
	}
	for {
		select {
		case req, ok := <-s.reqCh:
			if !ok {
				s.finalize()
				return
			}
			s.handleReq(req)
		case <-timerC:
			s.flush()
		}
	}
}

// finalize runs after the request channel closes: every remaining
// connection is cleaned (draining its in-flight operations and
// answering them before the socket teardown discards the frames), then
// the cluster stops.
func (s *Server) finalize() {
	s.connMu.Lock()
	remaining := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		remaining = append(remaining, c)
	}
	s.connMu.Unlock()
	for _, c := range remaining {
		s.cleanupConn(c)
	}
	s.flush()
	s.cl.Close()
}

// cleanupConn releases a dead connection's sessions (draining in-flight
// work first so their responses are delivered or discarded cleanly) and
// retires its writer.
func (s *Server) cleanupConn(c *conn) {
	if c.cleaned {
		return
	}
	c.cleaned = true
	s.flush()
	for id := range c.sessions {
		ws := s.sessions[id]
		if ws != nil && !ws.closed {
			ws.closed = true
			ws.ses.Close()
			s.stats.sessionsOpen--
		}
		delete(s.sessions, id)
	}
	close(c.done)
	close(c.out)
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// flush stamps every pending packet request's dispatch time and runs the
// cluster flush, delivering completions (and so responses) in enqueue
// order.
func (s *Server) flush() {
	if s.pendingOps > 0 {
		now := time.Now().UnixNano()
		for _, r := range s.pending {
			r.flushAt = now
		}
		s.pending = s.pending[:0]
		s.pendingOps = 0
	}
	s.cl.Flush()
}

func (s *Server) handleReq(req *request) {
	switch {
	case req.op == opConnClosed:
		s.cleanupConn(req.conn)
		return
	case req.malformed:
		s.respondErr(req, StatusBadRequest, "malformed request frame")
		return
	}
	switch req.op {
	case OpOpen:
		s.handleOpen(req)
	case OpClose:
		s.handleClose(req)
	case OpEncrypt, OpDecrypt:
		s.handlePacket(req)
	case OpFlush:
		n := uint32(s.pendingOps)
		s.flush()
		s.respond(req.conn, encodeFlushResp(req.reqID, StatusOK, n))
	case OpRetrieve:
		s.handleRetrieve(req)
	}
}

// respondErr answers a request with an error status in the response
// layout its opcode requires.
func (s *Server) respondErr(req *request, st Status, msg string) {
	switch req.op {
	case OpEncrypt, OpDecrypt:
		s.stats.verdicts[st]++
		now := time.Now().UnixNano()
		t := Timing{QueueNs: uint64(now - req.enq)}
		s.respond(req.conn, encodePacketResp(req.op, req.reqID, st, t, nil))
	case OpFlush:
		s.respond(req.conn, encodeFlushResp(req.reqID, st, 0))
	default:
		s.respond(req.conn, encodeMsgResp(req.op, req.reqID, st, 0, msg))
	}
}

func (s *Server) handleOpen(req *request) {
	if s.closing.Load() {
		s.respondErr(req, StatusShuttingDown, "server shutting down")
		return
	}
	switch cryptocore.Family(req.family) {
	case cryptocore.FamilyGCM, cryptocore.FamilyCCM, cryptocore.FamilyCTR, cryptocore.FamilyCBCMAC:
	default:
		s.respondErr(req, StatusBadRequest,
			fmt.Sprintf("unknown algorithm family %d", req.family))
		return
	}
	if req.class < 0 || int(req.class) >= qos.NumClasses {
		s.respondErr(req, StatusBadRequest, fmt.Sprintf("unknown class %d", req.class))
		return
	}
	if s.cfg.MaxSessions > 0 && int(s.stats.sessionsOpen) >= s.cfg.MaxSessions {
		s.respondErr(req, StatusRejected, "session limit reached")
		return
	}
	s.flush()
	ses, err := s.cl.Open(cluster.OpenSpec{
		Suite: core.Suite{
			Family:   cryptocore.Family(req.family),
			TagLen:   int(req.tagLen),
			Priority: req.class.Priority(),
		},
		KeyLen: int(req.keyLen),
		Weight: int(req.weight),
	})
	if err != nil {
		s.respondErr(req, StatusBadRequest, err.Error())
		return
	}
	id := s.nextSess
	s.nextSess++
	s.sessions[id] = &wireSession{
		id:       id,
		ses:      ses,
		conn:     req.conn,
		class:    req.class,
		deadline: req.deadline,
		shard:    ses.Shard(),
	}
	req.conn.sessions[id] = struct{}{}
	s.stats.sessionsOpen++
	s.stats.sessionsOpened++
	s.respond(req.conn, encodeMsgResp(OpOpen, req.reqID, StatusOK, id, ""))
}

// lookup resolves a packet/close request's wire session, answering the
// protocol error itself when the id is unknown, closed, or owned by
// another connection.
func (s *Server) lookup(req *request) *wireSession {
	ws, ok := s.sessions[req.sess]
	if !ok || ws.conn != req.conn {
		s.respondErr(req, StatusUnknownSess, fmt.Sprintf("session %d not open on this connection", req.sess))
		return nil
	}
	if ws.closed {
		s.respondErr(req, StatusSessClosed, fmt.Sprintf("session %d already closed", req.sess))
		return nil
	}
	return ws
}

func (s *Server) handleClose(req *request) {
	ws := s.lookup(req)
	if ws == nil {
		return
	}
	s.flush()
	ws.closed = true
	err := ws.ses.Close()
	s.stats.sessionsOpen--
	// Keep the tombstone so a second CLOSE (or use after CLOSE) is
	// distinguishable from a never-opened id; it is reclaimed with the
	// connection.
	st, msg := StatusOK, ""
	if err != nil {
		st, msg = StatusFailed, err.Error()
	}
	s.respond(req.conn, encodeMsgResp(OpClose, req.reqID, st, req.sess, msg))
}

func (s *Server) handlePacket(req *request) {
	ws := s.lookup(req)
	if ws == nil {
		return
	}
	if s.closing.Load() {
		s.respondErr(req, StatusShuttingDown, "")
		return
	}
	s.stats.bytesIn += uint64(len(req.data))
	s.pending = append(s.pending, req)
	s.pendingOps++
	shard := ws.shard
	class := ws.class
	done := func(out []byte, took sim.Time, err error) {
		st := statusFor(err)
		s.stats.verdicts[st]++
		if err == nil {
			s.stats.bytesOut += uint64(len(out))
			d := s.digests[shard]
			for _, by := range out {
				d = (d ^ uint64(by)) * 0x100000001b3
			}
			s.digests[shard] = d
			if len(s.wireSamples[class]) < maxWireSamples {
				s.wireSamples[class] = append(s.wireSamples[class], took)
			}
		}
		now := time.Now().UnixNano()
		t := Timing{WireCycles: took,
			QueueNs:   uint64(req.flushAt - req.enq),
			ServiceNs: uint64(now - req.flushAt)}
		s.respond(req.conn, encodePacketResp(req.op, req.reqID, st, t, out))
	}
	if req.op == OpEncrypt {
		ws.ses.EncryptWireAsync(req.nonce, req.aad, req.data, ws.deadline, done)
	} else {
		ws.ses.DecryptWireAsync(req.nonce, req.aad, req.data, req.tag, done)
	}
	if s.pendingOps >= s.cfg.BatchOps {
		s.flush()
	}
}

func (s *Server) handleRetrieve(req *request) {
	s.flush()
	snap := s.cl.Snapshot()
	st := &Stats{
		SessionsOpen:   s.stats.sessionsOpen,
		SessionsOpened: s.stats.sessionsOpened,
		Verdicts:       s.stats.verdicts,
		BytesIn:        s.stats.bytesIn,
		BytesOut:       s.stats.bytesOut,
		ClusterCycles:  snap.ClusterCycles,
		Digests:        append([]uint64(nil), s.digests...),
	}
	for i, class := range qos.Classes() {
		samples := s.wireSamples[class]
		st.Classes[i] = ClassWire{
			Count: uint64(len(samples)),
			P50:   qos.PercentileOf(samples, 50),
			P99:   qos.PercentileOf(samples, 99),
		}
	}
	s.respond(req.conn, encodeStatsResp(req.reqID, st))
}
