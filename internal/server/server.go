package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/faults"
	"mccp/internal/fleet"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
)

// Config sizes a Server.
type Config struct {
	// Cluster configures the sharded MCCP backend. When
	// Cluster.BatchWindow is 0 the server raises it to 2xBatchOps so the
	// server's own flush triggers are the only batch-boundary driver —
	// batch partitioning then depends only on the request sequence.
	Cluster cluster.Config
	// BatchOps is the size trigger: queued packet operations that force a
	// flush (default 64).
	BatchOps int
	// FlushInterval is the wall-clock deadline trigger: a periodic flush
	// bounding how long a lone request waits for batch-mates. 0 disables
	// it — flushes then happen only on the size trigger and FLUSH frames,
	// keeping batch boundaries (and so every virtual-time figure) a pure
	// function of the request sequence. Deterministic runs use 0.
	FlushInterval time.Duration
	// IdleTimeout reaps connections with no inbound frame for this long
	// (0 = never). Reaping closes the connection; its sessions are
	// drained and released in request order.
	IdleTimeout time.Duration
	// MaxSessions bounds concurrently open wire sessions across all
	// connections (0 = unbounded); OPEN past the bound is Rejected —
	// admission control at the session level, upstream of the per-packet
	// QoS verdicts.
	MaxSessions int
	// QueueDepth is the shared inbound request channel's capacity
	// (default 4096): how far connection readers may run ahead of the
	// batcher before backpressure reaches the sockets.
	QueueDepth int
	// WriteBuffer is each connection's outbound response-frame buffer
	// (default 1024). A client must read responses; a connection whose
	// peer stops reading stalls the batcher once its buffer fills (until
	// the idle reaper claims it).
	WriteBuffer int
	// OpenBurst, with OpenRefill, is the per-connection OPEN-admission
	// token bucket guarding the front door against open/close storms: a
	// connection holds at most OpenBurst tokens, each admitted non-voice
	// OPEN spends one, and OpenRefill tokens return at every FLUSH-window
	// boundary (OpenRefill 0 refills to the full burst). A non-voice OPEN
	// arriving with the bucket empty is answered StatusShed — the
	// existing load-shedding verdict — without touching the cluster.
	// Voice OPENs are never shed by admission. 0 disables the bucket.
	OpenBurst  int
	OpenRefill int
	// OpenWindowCap bounds the non-voice OPENs admitted server-wide in
	// one FLUSH window — the global storm valve behind the per-connection
	// buckets. Overflow is StatusShed; voice is exempt. 0 = unbounded.
	OpenWindowCap int
	// Faults configures the deterministic fault-injection plane: a
	// seeded shard-fault schedule keyed to FLUSH-frame boundaries plus
	// the failure detector and brownout controller. nil = no faults, no
	// detector — the zero-overhead default every existing experiment
	// runs with.
	Faults *FaultPolicy
}

// FaultPolicy wires internal/faults into the server. Shard events in
// Schedule arm at FLUSH-counted window boundaries: the k-th FLUSH frame
// the server sees ends window k-1, so events scheduled for window k arm
// right then and fire mid-window on the victim shard's own virtual
// timeline. (SessionChurn events are client-side; the server ignores
// them.)
type FaultPolicy struct {
	Schedule faults.Schedule
	// Detect enables the flush-boundary failure detector: a shard whose
	// heartbeat froze across a window while its offered bytes kept
	// growing is declared dead, quarantined, and its sessions re-homed
	// voice-first onto the survivors.
	Detect bool
	// Brownout inputs, used when Detect fires: the offered load, the
	// per-healthy-shard serving capacity (same unit), and each class's
	// share of the offered bits. After a fail-over the controller sheds
	// whole classes (background first, never voice) until the remaining
	// capacity covers the admitted load. SatMbpsPerShard 0 disables
	// brownout.
	OfferedMbps     float64
	SatMbpsPerShard float64
	Shares          [qos.NumClasses]float64
	// Restart closes the loop: a shard the detector quarantines is
	// scheduled for a rebuild — the base bitstream streamed back in from
	// RestartSource (zero value: staging RAM) — and rejoined once enough
	// windows have passed to cover cluster.RestartCycles at that source
	// speed. After the rejoin the brownout mask is lifted class-by-class
	// (highest priority first) as the measured offered load fits back
	// under the restored capacity.
	Restart       bool
	RestartSource reconfig.Source
	// WindowCycles is one FLUSH window's virtual length, used to convert
	// the restart duration into a rejoin window and to turn per-window
	// offered-byte deltas into the measured Mbps the brownout lift and
	// the live autoscaler observe. 0 schedules restarts one window out
	// and feeds the autoscaler nothing.
	WindowCycles sim.Time
	// Autoscale, when non-nil, drives a fleet autoscaler live inside the
	// serving loop: every window boundary it observes the measured
	// offered load (from the cluster's offered-byte deltas over
	// WindowCycles) and the server applies the returned target with
	// Fleet.Scale. nil = no autoscaler.
	Autoscale *fleet.AutoscalerConfig
}

// RehomeEvent records one detector-driven fail-over.
type RehomeEvent struct {
	// Window is the FLUSH-counted window at whose boundary the detector
	// fired; Shard the quarantined victim.
	Window int
	Shard  int
	// Moved/Lost split the victim's sessions; Took is the re-home's
	// virtual-time cost on the survivors (max over shards).
	Moved int
	Lost  int
	Took  sim.Time
	// Deny is the brownout mask applied after this fail-over (all-false
	// when capacity still covers the offered load).
	Deny [qos.NumClasses]bool
}

// HealEvent records one recovery action taken at a window boundary — the
// other half of the fault log RehomeEvent starts.
type HealEvent struct {
	// Window is the FLUSH-counted window at whose boundary the action
	// ran; Shard the shard restarted or unquarantined (-1 for a pure
	// brownout lift or autoscale step).
	Window int
	Shard  int
	// Restarted marks a bitstream-reload rebuild; RestartCycles is the
	// rebuilt shard's reload duration on its fresh virtual timeline.
	// Unfroze marks a stall un-freeze: the quarantine was lifted without
	// a rebuild because the heartbeat resumed.
	Restarted     bool
	RestartCycles sim.Time
	Unfroze       bool
	// Rebalanced counts sessions shifted onto the rejoined shard.
	Rebalanced int
	// Deny is the brownout mask in force after this event.
	Deny [qos.NumClasses]bool
	// Scale is the autoscaler target applied at this boundary (0 when
	// the fleet size did not change).
	Scale int
}

// restartJob is one scheduled shard rebuild: the restart runs at the
// first window boundary >= ready, modeling the bitstream reload occupying
// the windows in between at the configured source speed.
type restartJob struct {
	shard int
	ready int
}

func (c *Config) fill() {
	if c.BatchOps <= 0 {
		c.BatchOps = 64
	}
	if c.Cluster.BatchWindow <= 0 {
		c.Cluster.BatchWindow = 2 * c.BatchOps
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.WriteBuffer <= 0 {
		c.WriteBuffer = 1024
	}
}

// maxWireSamples caps the per-class service-latency sample buffers
// feeding RETRIEVE_DATA percentiles; later samples are dropped (the cap
// is far above any CI run, and dropping is deterministic).
const maxWireSamples = 1 << 20

// conn is one accepted connection. The reader goroutine decodes frames
// onto the server's request channel; the writer drains the bounded out
// channel to the socket. sessions and cleaned are batcher-owned.
type conn struct {
	s          *Server
	nc         net.Conn
	out        chan []byte
	done       chan struct{} // closed by the batcher when the conn is cleaned
	lastActive atomic.Int64  // UnixNano of the last inbound frame

	sessions map[uint64]struct{}
	cleaned  bool

	// opened/closed cache OPEN and CLOSE response frames by request id
	// (batcher-owned): a client retrying a timed-out control request
	// resends it under the same id, and the replayed frame makes the
	// retry exactly-once — a retried OPEN never opens twice.
	opened map[uint64][]byte
	closed map[uint64][]byte

	// openTokens is the connection's OPEN-admission bucket (batcher-owned,
	// Config.OpenBurst/OpenRefill); non-voice OPENs spend from it.
	openTokens int
}

// wireSession binds a wire session id to a cluster session (batcher
// state).
type wireSession struct {
	id       uint64
	ses      *cluster.Session
	conn     *conn
	class    qos.Class
	deadline sim.Time
	shard    int
	closed   bool
}

// serverStats is the batcher's wire-level accounting behind
// RETRIEVE_DATA.
type serverStats struct {
	sessionsOpen   uint64
	sessionsOpened uint64
	verdicts       [11]uint64
	bytesIn        uint64
	bytesOut       uint64
}

// Server is the MCCP network front end.
type Server struct {
	cfg Config
	cl  *cluster.Cluster

	reqCh chan *request

	ln      net.Listener
	serving bool
	closing atomic.Bool

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wgAccept  sync.WaitGroup
	wgReaders sync.WaitGroup
	wgWriters sync.WaitGroup

	batcherDone chan struct{}
	reaperStop  chan struct{}
	reaperDone  chan struct{}

	closeOnce sync.Once
	closeErr  error

	// Batcher-owned state.
	sessions    map[uint64]*wireSession
	nextSess    uint64
	pending     []*request
	pendingOps  int
	stats       serverStats
	digests     []uint64
	wireSamples [qos.NumClasses][]sim.Time

	// Fault plane (batcher-owned except where noted): windows counts
	// FLUSH frames; lastHB/lastOffered are the detector's previous
	// snapshot per shard. rehomes is read by FaultReport from any
	// goroutine under faultMu.
	windows     int
	lastHB      []uint64
	lastOffered []uint64
	faultMu     sync.Mutex
	rehomes     []RehomeEvent

	// Recovery plane (batcher-owned; heals shares faultMu with rehomes):
	// restarts are the scheduled shard rebuilds, denyMask the brownout
	// mask currently applied, opensWindow the non-voice OPENs admitted in
	// the current FLUSH window. flt/scaler drive live autoscaling when
	// FaultPolicy.Autoscale is set.
	restarts    []restartJob
	denyMask    [qos.NumClasses]bool
	opensWindow int
	flt         *fleet.Fleet
	scaler      *fleet.Autoscaler
	heals       []HealEvent

	// Observability plane: reg is the metrics registry every exposition
	// path (STATS frames, the HTTP endpoint, CLI reports) reads; pub is
	// the batcher's published wire-counter snapshot, refreshed at every
	// flush so registry collectors on other goroutines never touch the
	// batcher-owned serverStats.
	reg *obs.Registry
	pub atomic.Pointer[pubStats]
}

// New builds the backend cluster and starts the batcher (and, with
// Config.IdleTimeout set, the reaper). The server accepts no connections
// until Serve.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		cl:          cl,
		reqCh:       make(chan *request, cfg.QueueDepth),
		conns:       make(map[*conn]struct{}),
		batcherDone: make(chan struct{}),
		reaperStop:  make(chan struct{}),
		reaperDone:  make(chan struct{}),
		sessions:    make(map[uint64]*wireSession),
		nextSess:    1,
		digests:     make([]uint64, cl.Shards()),
		lastHB:      make([]uint64, cl.Shards()),
		lastOffered: make([]uint64, cl.Shards()),
	}
	for i := range s.digests {
		s.digests[i] = digestInit
	}
	if p := cfg.Faults; p != nil {
		if p.Restart && p.RestartSource.BytesPerSec <= 0 {
			s.cfg.Faults = &FaultPolicy{}
			*s.cfg.Faults = *p
			s.cfg.Faults.RestartSource = reconfig.StagingRAM
		}
		if p.Autoscale != nil {
			s.flt = fleet.New(cl)
			s.scaler, err = fleet.NewAutoscaler(*p.Autoscale, cl.ActiveShards())
			if err != nil {
				cl.Close()
				return nil, err
			}
		}
	}
	s.initObs()
	go s.batcher()
	if cfg.IdleTimeout > 0 {
		go s.reaper()
	} else {
		close(s.reaperDone)
	}
	return s, nil
}

// digestInit is the FNV-64a offset basis, the same fold the in-process
// workload digests use — the determinism guard compares the two directly.
const digestInit = 0xcbf29ce484222325

// Cluster exposes the backend for in-process observability (Snapshot is
// safe concurrently; everything else is not while the server runs).
func (s *Server) Cluster() *cluster.Cluster { return s.cl }

// Serve starts accepting connections on ln (non-blocking). It may be
// called once; Close closes ln.
func (s *Server) Serve(ln net.Listener) {
	if s.serving {
		panic("server: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.wgAccept.Add(1)
	go func() {
		defer s.wgAccept.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.addConn(nc)
		}
	}()
}

func (s *Server) addConn(nc net.Conn) {
	c := &conn{
		s:        s,
		nc:       nc,
		out:      make(chan []byte, s.cfg.WriteBuffer),
		done:     make(chan struct{}),
		sessions: make(map[uint64]struct{}),
		opened:   make(map[uint64][]byte),
		closed:   make(map[uint64][]byte),

		openTokens: s.cfg.OpenBurst,
	}
	c.lastActive.Store(time.Now().UnixNano())
	s.connMu.Lock()
	if s.closing.Load() {
		s.connMu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
	s.wgReaders.Add(1)
	s.wgWriters.Add(1)
	go c.readLoop()
	go c.writeLoop()
}

// readLoop decodes inbound frames onto the request channel until the
// connection dies, then injects the cleanup marker — after every request
// the connection sent, preserving order.
func (c *conn) readLoop() {
	defer c.s.wgReaders.Done()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	for {
		body, err := readFrame(br, buf)
		if err != nil {
			break
		}
		buf = body
		c.lastActive.Store(time.Now().UnixNano())
		req := &request{conn: c, enq: time.Now().UnixNano()}
		if !decodeRequest(body, req) {
			req.malformed = true
		}
		c.s.reqCh <- req
	}
	c.nc.Close()
	c.s.reqCh <- &request{op: opConnClosed, conn: c}
}

// writeLoop drains the out channel to the socket, buffering writes and
// flushing when the channel is momentarily empty. After a write error it
// keeps draining (discarding) so the batcher never blocks on a dead
// connection's buffer.
func (c *conn) writeLoop() {
	defer c.s.wgWriters.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var hdr [4]byte
	failed := false
	for body := range c.out {
		if failed {
			continue
		}
		putU32(hdr[:0], uint32(len(body)))
		if _, err := bw.Write(hdr[:]); err != nil {
			failed = true
			continue
		}
		if _, err := bw.Write(body); err != nil {
			failed = true
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				failed = true
			}
		}
	}
}

// respond hands a response frame to the connection's writer; a cleaned
// connection drops it.
func (s *Server) respond(c *conn, frame []byte) {
	select {
	case c.out <- frame:
	case <-c.done:
	}
}

// reaper closes connections idle past IdleTimeout; the read error path
// then drains and releases their sessions in order.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	tick := s.cfg.IdleTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case <-t.C:
			cut := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			s.connMu.Lock()
			var idle []*conn
			for c := range s.conns {
				if c.lastActive.Load() < cut {
					idle = append(idle, c)
				}
			}
			s.connMu.Unlock()
			for _, c := range idle {
				c.nc.Close()
			}
		}
	}
}

// Shutdown drains the server gracefully before Close: the listener stops
// accepting, new OPENs and packets answer StatusShuttingDown while
// already-batched work still completes and ships, and the server waits up
// to timeout for every client to finish and disconnect on its own. Then
// Close runs the hard teardown. This is what a SIGTERM handler should
// call: clients see an orderly refusal, not a severed socket.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.closing.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s.connMu.Lock()
		n := len(s.conns)
		s.connMu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return s.Close()
}

// Close shuts the server down in order: stop accepting, sever every
// connection, drain the readers, let the batcher finish in-flight
// batches and answer or drop what remains, release all sessions, stop
// the cluster. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		s.wgAccept.Wait()
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.connMu.Unlock()
		s.wgReaders.Wait()
		close(s.reqCh)
		<-s.batcherDone
		s.wgWriters.Wait()
		close(s.reaperStop)
		<-s.reaperDone
	})
	return s.closeErr
}

// batcher is the server's heart: the single goroutine that owns the
// cluster front end and all session state. Requests are processed in
// channel order; packet operations batch until a trigger flushes them.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	var timerC <-chan time.Time
	var timer *time.Ticker
	if s.cfg.FlushInterval > 0 {
		timer = time.NewTicker(s.cfg.FlushInterval)
		timerC = timer.C
		defer timer.Stop()
	}
	for {
		select {
		case req, ok := <-s.reqCh:
			if !ok {
				s.finalize()
				return
			}
			s.handleReq(req)
		case <-timerC:
			s.flush()
		}
	}
}

// finalize runs after the request channel closes: every remaining
// connection is cleaned (draining its in-flight operations and
// answering them before the socket teardown discards the frames), then
// the cluster stops.
func (s *Server) finalize() {
	s.connMu.Lock()
	remaining := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		remaining = append(remaining, c)
	}
	s.connMu.Unlock()
	for _, c := range remaining {
		s.cleanupConn(c)
	}
	s.flush()
	s.cl.Close()
}

// cleanupConn releases a dead connection's sessions (draining in-flight
// work first so their responses are delivered or discarded cleanly) and
// retires its writer.
func (s *Server) cleanupConn(c *conn) {
	if c.cleaned {
		return
	}
	c.cleaned = true
	s.flush()
	for id := range c.sessions {
		ws := s.sessions[id]
		if ws != nil && !ws.closed {
			ws.closed = true
			ws.ses.Close()
			s.stats.sessionsOpen--
		}
		delete(s.sessions, id)
	}
	close(c.done)
	close(c.out)
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// flush stamps every pending packet request's dispatch time and runs the
// cluster flush, delivering completions (and so responses) in enqueue
// order.
func (s *Server) flush() {
	if s.pendingOps > 0 {
		now := time.Now().UnixNano()
		for _, r := range s.pending {
			r.flushAt = now
		}
		s.pending = s.pending[:0]
		s.pendingOps = 0
	}
	s.cl.Flush()
	s.publishWire()
}

func (s *Server) handleReq(req *request) {
	switch {
	case req.op == opConnClosed:
		s.cleanupConn(req.conn)
		return
	case req.malformed:
		s.respondErr(req, StatusBadRequest, "malformed request frame")
		return
	}
	switch req.op {
	case OpOpen:
		s.handleOpen(req)
	case OpClose:
		s.handleClose(req)
	case OpEncrypt, OpDecrypt:
		s.handlePacket(req)
	case OpFlush:
		n := uint32(s.pendingOps)
		s.flush()
		s.windowBoundary()
		s.respond(req.conn, encodeFlushResp(req.reqID, StatusOK, n))
	case OpRetrieve:
		s.handleRetrieve(req)
	case OpStats:
		s.handleStats(req)
	}
}

// windowBoundary runs after every FLUSH barrier: it advances the
// window clock, refills the OPEN-admission buckets, runs the failure
// detector over the window that just ended, runs the recovery plane
// (scheduled restarts, brownout lift, live autoscaling), and arms the
// schedule's shard faults for the window now starting (so they fire
// mid-window on the victim's own virtual timeline).
func (s *Server) windowBoundary() {
	s.windows++
	s.refillOpenTokens()
	p := s.cfg.Faults
	if p == nil {
		return
	}
	// Measure the window that just ended — the sum of per-shard
	// offered-byte deltas over WindowCycles — before detect overwrites
	// the baselines. This is the live load signal the brownout lift and
	// the autoscaler act on.
	measured := 0.0
	if p.Detect || p.Autoscale != nil {
		snap := s.cl.Snapshot()
		var delta uint64
		for i := range snap.Shards {
			if ob := snap.Shards[i].OfferedBytes; ob >= s.lastOffered[i] {
				delta += ob - s.lastOffered[i]
			}
		}
		if p.WindowCycles > 0 {
			measured = float64(delta*8) / float64(p.WindowCycles) * sim.DefaultFreqHz / 1e6
		}
		if p.Detect {
			s.detect(&snap)
		} else {
			for i := range snap.Shards {
				s.lastHB[i], s.lastOffered[i] = snap.Shards[i].Heartbeat, snap.Shards[i].OfferedBytes
			}
		}
	}
	s.heal(measured)
	for _, e := range p.Schedule.ForWindow(s.windows) {
		switch e.Kind {
		case faults.ShardCrash:
			// Arming can only fail on a shard index the planner already
			// validated or a shapeless cluster New() accepted anyway.
			_ = s.cl.ArmShardCrash(e.Shard, s.cl.NextHeartbeat(e.Shard), e.Offset)
		case faults.ShardStall:
			_ = s.cl.ArmShardStall(e.Shard, s.cl.NextHeartbeat(e.Shard), e.Offset, e.Dur)
		}
	}
}

// refillOpenTokens resets the per-window OPEN counter and tops up every
// connection's admission bucket. A no-op (beyond the counter reset) when
// the bucket is disabled.
func (s *Server) refillOpenTokens() {
	s.opensWindow = 0
	if s.cfg.OpenBurst <= 0 {
		return
	}
	refill := s.cfg.OpenRefill
	if refill <= 0 {
		refill = s.cfg.OpenBurst
	}
	s.connMu.Lock()
	for c := range s.conns {
		if c.openTokens += refill; c.openTokens > s.cfg.OpenBurst {
			c.openTokens = s.cfg.OpenBurst
		}
	}
	s.connMu.Unlock()
}

// detect is the flush-boundary failure detector: a shard whose
// heartbeat did not advance across the window while its offered bytes
// kept growing is dead (an idle shard's offered bytes are flat; a
// stalled shard's heartbeat still advances). Each detection quarantines
// the corpse, re-homes its sessions voice-first, refreshes the wire
// session bindings, re-plans the brownout mask for the capacity that
// remains, and — with FaultPolicy.Restart — schedules the rebuild that
// will bring the shard back. It also runs the stall un-freeze path: a
// quarantined shard whose heartbeat resumed never actually died, so the
// quarantine is lifted in place.
func (s *Server) detect(snap *cluster.Metrics) {
	for i := range snap.Shards {
		sm := &snap.Shards[i]
		frozen := sm.Heartbeat == s.lastHB[i] && sm.OfferedBytes > s.lastOffered[i]
		resumed := sm.Quarantined && !sm.Crashed && sm.Heartbeat != s.lastHB[i]
		s.lastHB[i], s.lastOffered[i] = sm.Heartbeat, sm.OfferedBytes
		if resumed {
			s.unfreeze(i)
			continue
		}
		if !frozen || sm.Quarantined {
			continue
		}
		rep, err := s.cl.FailOver(i)
		if err != nil {
			continue // last shard standing: nothing left to re-home onto
		}
		ev := RehomeEvent{Window: s.windows, Shard: i,
			Moved: rep.Moved, Lost: rep.Lost, Took: rep.Took}
		for _, ws := range s.sessions {
			if ws.closed {
				continue
			}
			if ws.ses.Closed() {
				// A crash casualty no survivor could take: tombstone it so
				// its later packets answer session-closed, not a corpse.
				ws.closed = true
				s.stats.sessionsOpen--
				continue
			}
			ws.shard = ws.ses.Shard()
		}
		p := s.cfg.Faults
		if p.SatMbpsPerShard > 0 {
			healthy := 0
			for _, hm := range s.cl.Snapshot().Shards {
				if !hm.Quarantined && !hm.Crashed {
					healthy++
				}
			}
			ev.Deny = faults.BrownoutDeny(p.OfferedMbps, float64(healthy)*p.SatMbpsPerShard, p.Shares)
			_ = s.cl.ApplyDeny(ev.Deny)
			s.denyMask = ev.Deny
		}
		if p.Restart {
			wait := 1
			if p.WindowCycles > 0 {
				need := cluster.RestartCycles(s.cl.CoresPerShard(), p.RestartSource)
				wait = int((need + p.WindowCycles - 1) / p.WindowCycles)
				if wait < 1 {
					wait = 1
				}
			}
			s.restarts = append(s.restarts, restartJob{shard: i, ready: s.windows + wait})
		}
		s.faultMu.Lock()
		s.rehomes = append(s.rehomes, ev)
		s.faultMu.Unlock()
	}
}

// unfreeze lifts a premature quarantine: the shard's heartbeat resumed,
// so it stalled rather than crashed. The shard rejoins routing, load
// shifts back voice-first, and any rebuild scheduled for it is
// cancelled.
func (s *Server) unfreeze(shard int) {
	if err := s.cl.Unquarantine(shard); err != nil {
		return
	}
	moved, _ := s.cl.RebalanceInto(shard)
	s.refreshBindings()
	kept := s.restarts[:0]
	for _, job := range s.restarts {
		if job.shard != shard {
			kept = append(kept, job)
		}
	}
	s.restarts = kept
	s.pushHeal(HealEvent{Window: s.windows, Shard: shard, Unfroze: true,
		Rebalanced: moved, Deny: s.denyMask})
}

// heal runs the recovery plane at a window boundary: due restarts
// rebuild and rejoin their shard, the brownout mask lifts one class per
// boundary as the measured load fits back under the healthy capacity,
// and the live autoscaler observes the window's measured offered load.
// With nothing pending this is a strict no-op on the cluster, so runs
// without faults keep their virtual timelines bit-identical.
func (s *Server) heal(measured float64) {
	p := s.cfg.Faults
	if len(s.restarts) > 0 {
		kept := s.restarts[:0]
		for _, job := range s.restarts {
			if s.windows < job.ready {
				kept = append(kept, job)
				continue
			}
			rep, err := s.cl.Restart(job.shard, p.RestartSource)
			if err != nil {
				continue // dropped; a still-dead shard is re-detected
			}
			moved, _ := s.cl.RebalanceInto(job.shard)
			s.refreshBindings()
			// The rebuilt shard's heartbeat restarts from zero: re-base
			// the detector so the fresh incarnation is watched (and a
			// second crash of the same slot stays detectable).
			hs := s.cl.Snapshot()
			s.lastHB[job.shard] = hs.Shards[job.shard].Heartbeat
			s.lastOffered[job.shard] = hs.Shards[job.shard].OfferedBytes
			s.pushHeal(HealEvent{Window: s.windows, Shard: job.shard,
				Restarted: true, RestartCycles: rep.Took, Rebalanced: moved,
				Deny: s.denyMask})
		}
		s.restarts = kept
	}
	if p.SatMbpsPerShard > 0 && s.denyAny() {
		healthy := s.healthyShards()
		capacity := float64(healthy) * p.SatMbpsPerShard
		want := faults.BrownoutDeny(p.OfferedMbps, capacity, p.Shares)
		lift := -1
		for class := qos.NumClasses - 1; class >= 0; class-- {
			if s.denyMask[class] && !want[class] {
				lift = class
				break
			}
		}
		if lift >= 0 && measured <= capacity {
			s.denyMask[lift] = false
			_ = s.cl.ApplyDeny(s.denyMask)
			s.pushHeal(HealEvent{Window: s.windows, Shard: -1, Deny: s.denyMask})
		}
	}
	if s.scaler != nil && measured > 0 {
		target := s.scaler.Observe(measured)
		if healthy := s.healthyShards(); target > healthy {
			target = healthy
		}
		if target >= 1 && target != s.cl.ActiveShards() {
			if _, err := s.flt.Scale(target); err == nil {
				s.refreshBindings()
				s.pushHeal(HealEvent{Window: s.windows, Shard: -1,
					Deny: s.denyMask, Scale: target})
			}
		}
	}
}

// refreshBindings re-reads every live wire session's shard after a
// rebalance moved cluster sessions around.
func (s *Server) refreshBindings() {
	for _, ws := range s.sessions {
		if ws.closed || ws.ses.Closed() {
			continue
		}
		ws.shard = ws.ses.Shard()
	}
}

// denyAny reports whether any class is currently browned out.
func (s *Server) denyAny() bool {
	for _, d := range s.denyMask {
		if d {
			return true
		}
	}
	return false
}

// healthyShards counts shards that are neither quarantined nor crashed.
func (s *Server) healthyShards() int {
	n := 0
	for _, sm := range s.cl.Snapshot().Shards {
		if !sm.Quarantined && !sm.Crashed {
			n++
		}
	}
	return n
}

// pushHeal appends to the heal log under faultMu.
func (s *Server) pushHeal(ev HealEvent) {
	s.faultMu.Lock()
	s.heals = append(s.heals, ev)
	s.faultMu.Unlock()
}

// FaultReport returns the detector's fail-over log so far. Safe from
// any goroutine.
func (s *Server) FaultReport() []RehomeEvent {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return append([]RehomeEvent(nil), s.rehomes...)
}

// HealReport returns the recovery plane's action log so far (restarts,
// un-freezes, brownout lifts, autoscale steps). Safe from any goroutine.
func (s *Server) HealReport() []HealEvent {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return append([]HealEvent(nil), s.heals...)
}

// respondErr answers a request with an error status in the response
// layout its opcode requires.
func (s *Server) respondErr(req *request, st Status, msg string) {
	switch req.op {
	case OpEncrypt, OpDecrypt:
		s.stats.verdicts[st]++
		now := time.Now().UnixNano()
		t := Timing{QueueNs: uint64(now - req.enq)}
		s.respond(req.conn, encodePacketResp(req.op, req.reqID, st, t, nil))
	case OpFlush:
		s.respond(req.conn, encodeFlushResp(req.reqID, st, 0))
	default:
		s.respond(req.conn, encodeMsgResp(req.op, req.reqID, st, 0, msg))
	}
}

// handleOpen answers an OPEN. Responses are cached per (connection,
// request id): a retried OPEN — same id, resent after a client-side
// timeout — replays the original outcome instead of opening a second
// session.
func (s *Server) handleOpen(req *request) {
	if frame, ok := req.conn.opened[req.reqID]; ok {
		s.respond(req.conn, frame)
		return
	}
	st, sess, msg := s.doOpen(req)
	frame := encodeMsgResp(OpOpen, req.reqID, st, sess, msg)
	req.conn.opened[req.reqID] = frame
	s.respond(req.conn, frame)
}

func (s *Server) doOpen(req *request) (Status, uint64, string) {
	if s.closing.Load() {
		return StatusShuttingDown, 0, "server shutting down"
	}
	switch cryptocore.Family(req.family) {
	case cryptocore.FamilyGCM, cryptocore.FamilyCCM, cryptocore.FamilyCTR, cryptocore.FamilyCBCMAC:
	default:
		return StatusBadRequest, 0, fmt.Sprintf("unknown algorithm family %d", req.family)
	}
	if req.class < 0 || int(req.class) >= qos.NumClasses {
		return StatusBadRequest, 0, fmt.Sprintf("unknown class %d", req.class)
	}
	// Storm admission: non-voice OPENs pass the global window cap and the
	// connection's token bucket before touching the cluster. Voice OPENs
	// are never shed here — the front door's one hard guarantee.
	if req.class != qos.Voice {
		if s.cfg.OpenWindowCap > 0 && s.opensWindow >= s.cfg.OpenWindowCap {
			return StatusShed, 0, "open admission: window cap reached"
		}
		if s.cfg.OpenBurst > 0 && req.conn.openTokens <= 0 {
			return StatusShed, 0, "open admission: connection bucket empty"
		}
		if s.cfg.OpenWindowCap > 0 {
			s.opensWindow++
		}
		if s.cfg.OpenBurst > 0 {
			req.conn.openTokens--
		}
	}
	if s.cfg.MaxSessions > 0 && int(s.stats.sessionsOpen) >= s.cfg.MaxSessions {
		return StatusRejected, 0, "session limit reached"
	}
	s.flush()
	ses, err := s.cl.Open(cluster.OpenSpec{
		Suite: core.Suite{
			Family:   cryptocore.Family(req.family),
			TagLen:   int(req.tagLen),
			Priority: req.class.Priority(),
		},
		KeyLen: int(req.keyLen),
		Weight: int(req.weight),
	})
	if err != nil {
		return StatusBadRequest, 0, err.Error()
	}
	id := s.nextSess
	s.nextSess++
	s.sessions[id] = &wireSession{
		id:       id,
		ses:      ses,
		conn:     req.conn,
		class:    req.class,
		deadline: req.deadline,
		shard:    ses.Shard(),
	}
	req.conn.sessions[id] = struct{}{}
	s.stats.sessionsOpen++
	s.stats.sessionsOpened++
	return StatusOK, id, ""
}

// lookup resolves a packet/close request's wire session, answering the
// protocol error itself when the id is unknown, closed, or owned by
// another connection.
func (s *Server) lookup(req *request) *wireSession {
	ws, ok := s.sessions[req.sess]
	if !ok || ws.conn != req.conn {
		s.respondErr(req, StatusUnknownSess, fmt.Sprintf("session %d not open on this connection", req.sess))
		return nil
	}
	if ws.closed {
		s.respondErr(req, StatusSessClosed, fmt.Sprintf("session %d already closed", req.sess))
		return nil
	}
	return ws
}

// handleClose answers a CLOSE, with the same per-request-id response
// cache as OPEN: a retried CLOSE replays the first outcome instead of
// tripping over its own tombstone with session-closed.
func (s *Server) handleClose(req *request) {
	if frame, ok := req.conn.closed[req.reqID]; ok {
		s.respond(req.conn, frame)
		return
	}
	st, msg := s.doClose(req)
	frame := encodeMsgResp(OpClose, req.reqID, st, req.sess, msg)
	req.conn.closed[req.reqID] = frame
	s.respond(req.conn, frame)
}

func (s *Server) doClose(req *request) (Status, string) {
	ws, ok := s.sessions[req.sess]
	if !ok || ws.conn != req.conn {
		return StatusUnknownSess, fmt.Sprintf("session %d not open on this connection", req.sess)
	}
	if ws.closed {
		return StatusSessClosed, fmt.Sprintf("session %d already closed", req.sess)
	}
	s.flush()
	ws.closed = true
	err := ws.ses.Close()
	s.stats.sessionsOpen--
	// Keep the tombstone so a second CLOSE (or use after CLOSE) is
	// distinguishable from a never-opened id; it is reclaimed with the
	// connection.
	if err != nil {
		return StatusFailed, err.Error()
	}
	return StatusOK, ""
}

func (s *Server) handlePacket(req *request) {
	ws := s.lookup(req)
	if ws == nil {
		return
	}
	if s.closing.Load() {
		s.respondErr(req, StatusShuttingDown, "")
		return
	}
	s.stats.bytesIn += uint64(len(req.data))
	s.pending = append(s.pending, req)
	s.pendingOps++
	shard := ws.shard
	class := ws.class
	done := func(out []byte, took sim.Time, err error) {
		st := statusFor(err)
		s.stats.verdicts[st]++
		if err == nil {
			s.stats.bytesOut += uint64(len(out))
			d := s.digests[shard]
			for _, by := range out {
				d = (d ^ uint64(by)) * 0x100000001b3
			}
			s.digests[shard] = d
			if len(s.wireSamples[class]) < maxWireSamples {
				s.wireSamples[class] = append(s.wireSamples[class], took)
			}
		}
		now := time.Now().UnixNano()
		t := Timing{WireCycles: took,
			QueueNs:   uint64(req.flushAt - req.enq),
			ServiceNs: uint64(now - req.flushAt)}
		s.respond(req.conn, encodePacketResp(req.op, req.reqID, st, t, out))
	}
	if req.op == OpEncrypt {
		ws.ses.EncryptWireAsync(req.nonce, req.aad, req.data, ws.deadline, done)
	} else {
		ws.ses.DecryptWireAsync(req.nonce, req.aad, req.data, req.tag, done)
	}
	if s.pendingOps >= s.cfg.BatchOps {
		s.flush()
	}
}

func (s *Server) handleRetrieve(req *request) {
	s.flush()
	snap := s.cl.Snapshot()
	st := &Stats{
		SessionsOpen:   s.stats.sessionsOpen,
		SessionsOpened: s.stats.sessionsOpened,
		Verdicts:       s.stats.verdicts,
		BytesIn:        s.stats.bytesIn,
		BytesOut:       s.stats.bytesOut,
		ClusterCycles:  snap.ClusterCycles,
		Digests:        append([]uint64(nil), s.digests...),
	}
	for i, class := range qos.Classes() {
		samples := s.wireSamples[class]
		st.Classes[i] = ClassWire{
			Count: uint64(len(samples)),
			P50:   qos.PercentileOf(samples, 50),
			P99:   qos.PercentileOf(samples, 99),
		}
	}
	s.respond(req.conn, encodeStatsResp(req.reqID, st))
}
