//go:build !race

package server

// raceEnabled lets tests derate scale targets under the race detector.
const raceEnabled = false
