package server

import (
	"net"
	"sync"
)

// Loopback is an in-process net.Listener whose Dial side hands the
// server synchronous net.Pipe connections: no sockets, no kernel
// buffering, no scheduling jitter from the network stack — the transport
// the deterministic E14 table and CI run on.
type Loopback struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once

	// WrapClient, when set before the first Dial, decorates each dialed
	// connection's client side — the fault injector's hook (see
	// faults.Wrap for the deterministic drop/truncate/stall plans).
	WrapClient func(net.Conn) net.Conn
}

// NewLoopback builds a loopback listener ready to Serve and Dial.
func NewLoopback() *Loopback {
	return &Loopback{
		conns:  make(chan net.Conn),
		closed: make(chan struct{}),
	}
}

// Dial opens a new connection to the listener's accept side.
func (l *Loopback) Dial() (net.Conn, error) {
	server, client := net.Pipe()
	var cc net.Conn = client
	if l.WrapClient != nil {
		cc = l.WrapClient(client)
	}
	select {
	case l.conns <- server:
		return cc, nil
	case <-l.closed:
		server.Close()
		client.Close()
		return nil, net.ErrClosed
	}
}

// Accept implements net.Listener.
func (l *Loopback) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *Loopback) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type loopbackAddr struct{}

func (loopbackAddr) Network() string { return "loopback" }
func (loopbackAddr) String() string  { return "loopback" }

// Addr implements net.Listener.
func (l *Loopback) Addr() net.Addr { return loopbackAddr{} }
