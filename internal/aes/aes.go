// Package aes implements the AES block cipher (FIPS-197) from scratch,
// together with a timing model of the compact iterative 32-bit-datapath
// encryption core the MCCP paper instantiates (P. Chodowiec and K. Gaj,
// "Very compact FPGA implementation of the AES algorithm", CHES 2003).
//
// The structural implementation (S-box lookup + explicit MixColumns)
// mirrors the hardware the paper describes ("the SubBytes transformation
// uses look up tables", iterative round architecture) and is easy to audit
// against FIPS-197; it remains as EncryptRef, the oracle for the FIPS
// vectors and the differential tests. The hot Encrypt path used by the
// simulator runs the same rounds through T-tables derived at init from the
// (itself derived) S-box — bit-identical output, an order of magnitude
// less host work per simulated block.
package aes

import (
	"fmt"

	"mccp/internal/bits"
)

// KeySize identifies the AES key length.
type KeySize int

// Supported key sizes.
const (
	Key128 KeySize = 16
	Key192 KeySize = 24
	Key256 KeySize = 32
)

// Rounds returns the number of AES rounds for the key size (Nr).
func (k KeySize) Rounds() int {
	switch k {
	case Key128:
		return 10
	case Key192:
		return 12
	case Key256:
		return 14
	}
	panic(fmt.Sprintf("aes: invalid key size %d", int(k)))
}

// CoreCycles returns the per-block latency, in clock cycles, of the paper's
// iterative 32-bit datapath core: 44, 52 or 60 cycles for 128-, 192- or
// 256-bit keys ("Computation of one 128-bit block takes 44, 52 or 60
// cycles"). The pattern is 4 cycles per round plus a 4-cycle input stage.
func (k KeySize) CoreCycles() uint64 { return uint64(4 * (k.Rounds() + 1)) }

// String implements fmt.Stringer.
func (k KeySize) String() string { return fmt.Sprintf("AES-%d", int(k)*8) }

// sbox and invSbox are computed at package init from the GF(2^8) inverse and
// the FIPS-197 affine transform, so the tables themselves are derived, not
// transcribed.
var sbox, invSbox [256]byte

// xtime multiplies by x in GF(2^8) modulo x^8+x^4+x^3+x+1 (0x11B).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1B
	}
	return b << 1
}

// gmul multiplies a and b in GF(2^8) mod 0x11B.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func init() {
	// Multiplicative inverses via brute force (the table is built once).
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := inv[i]
		// Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
		var y byte
		for bit := 0; bit < 8; bit++ {
			v := (x >> uint(bit)) & 1
			v ^= (x >> uint((bit+4)%8)) & 1
			v ^= (x >> uint((bit+5)%8)) & 1
			v ^= (x >> uint((bit+6)%8)) & 1
			v ^= (x >> uint((bit+7)%8)) & 1
			v ^= (0x63 >> uint(bit)) & 1
			y |= v << uint(bit)
		}
		sbox[i] = y
		invSbox[y] = byte(i)
	}
	// T-tables: te[0][x] packs one MixColumns column of sbox[x]
	// (02·a, 01·a, 01·a, 03·a) most-significant row first; te[1..3] are the
	// byte rotations used by the other state rows.
	for i := 0; i < 256; i++ {
		a := sbox[i]
		w := uint32(xtime(a))<<24 | uint32(a)<<16 | uint32(a)<<8 | uint32(xtime(a)^a)
		te[0][i] = w
		te[1][i] = w>>8 | w<<24
		te[2][i] = w>>16 | w<<16
		te[3][i] = w>>24 | w<<8
	}
}

// te holds the encryption T-tables (built in init from the derived S-box).
var te [4][256]uint32

// SBox returns the forward S-box value (exported for the resource model and
// for tests that audit the derived tables).
func SBox(b byte) byte { return sbox[b] }

// Cipher is an expanded-key AES instance.
type Cipher struct {
	size KeySize
	// enc holds the round keys as 4-word blocks: enc[0] is the initial
	// AddRoundKey, enc[Nr] the final round key. This layout matches the
	// paper's Key Cache, which stores pre-computed round keys per channel.
	enc []bits.Block
}

// New expands key and returns a Cipher. The key length selects AES-128/192/256.
func New(key []byte) (*Cipher, error) {
	switch len(key) {
	case int(Key128), int(Key192), int(Key256):
	default:
		return nil, fmt.Errorf("aes: invalid key length %d", len(key))
	}
	ks := KeySize(len(key))
	return &Cipher{size: ks, enc: ExpandKey(key)}, nil
}

// MustNew is New for known-good keys; it panics on error.
func MustNew(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the cipher's key size.
func (c *Cipher) Size() KeySize { return c.size }

// RoundKeys exposes the expanded key schedule (the Key Cache contents).
func (c *Cipher) RoundKeys() []bits.Block { return c.enc }

// ExpandKey runs the FIPS-197 key expansion and returns Nr+1 round-key
// blocks. In the MCCP this work is performed by the Key Scheduler, which
// fills a core's Key Cache before the core may process a channel's packets.
func ExpandKey(key []byte) []bits.Block {
	nk := len(key) / 4
	nr := KeySize(len(key)).Rounds()
	w := make([]uint32, 4*(nr+1))
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := nk; i < len(w); i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ rcon
			rcon = uint32(xtime(byte(rcon>>24))) << 24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	out := make([]bits.Block, nr+1)
	for r := range out {
		out[r] = bits.BlockFromWords([4]uint32{w[4*r], w[4*r+1], w[4*r+2], w[4*r+3]})
	}
	return out
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[byte(w>>24)])<<24 | uint32(sbox[byte(w>>16)])<<16 |
		uint32(sbox[byte(w>>8)])<<8 | uint32(sbox[byte(w)])
}

// Encrypt enciphers one block. Only encryption exists in the paper's
// hardware ("Because AES-CCM and AES-GCM modes only use encryption mode, AES
// decryption algorithm was not implemented"); Decrypt below is provided for
// the software reference implementations and tests. This is the simulator's
// hot path, so it runs the rounds through the derived T-tables; EncryptRef
// is the structural reference it must match.
func (c *Cipher) Encrypt(in bits.Block) bits.Block {
	nr := c.size.Rounds()
	k := c.enc[0]
	s0 := in.Word(0) ^ k.Word(0)
	s1 := in.Word(1) ^ k.Word(1)
	s2 := in.Word(2) ^ k.Word(2)
	s3 := in.Word(3) ^ k.Word(3)
	for r := 1; r < nr; r++ {
		k = c.enc[r]
		t0 := te[0][s0>>24] ^ te[1][s1>>16&0xFF] ^ te[2][s2>>8&0xFF] ^ te[3][s3&0xFF] ^ k.Word(0)
		t1 := te[0][s1>>24] ^ te[1][s2>>16&0xFF] ^ te[2][s3>>8&0xFF] ^ te[3][s0&0xFF] ^ k.Word(1)
		t2 := te[0][s2>>24] ^ te[1][s3>>16&0xFF] ^ te[2][s0>>8&0xFF] ^ te[3][s1&0xFF] ^ k.Word(2)
		t3 := te[0][s3>>24] ^ te[1][s0>>16&0xFF] ^ te[2][s1>>8&0xFF] ^ te[3][s2&0xFF] ^ k.Word(3)
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	k = c.enc[nr]
	o0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xFF])<<16 | uint32(sbox[s2>>8&0xFF])<<8 | uint32(sbox[s3&0xFF])
	o1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xFF])<<16 | uint32(sbox[s3>>8&0xFF])<<8 | uint32(sbox[s0&0xFF])
	o2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xFF])<<16 | uint32(sbox[s0>>8&0xFF])<<8 | uint32(sbox[s1&0xFF])
	o3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xFF])<<16 | uint32(sbox[s1>>8&0xFF])<<8 | uint32(sbox[s2&0xFF])
	return bits.BlockFromWords([4]uint32{o0 ^ k.Word(0), o1 ^ k.Word(1), o2 ^ k.Word(2), o3 ^ k.Word(3)})
}

// EncryptRef is the structural FIPS-197 round sequence (SubBytes, ShiftRows,
// MixColumns as separate audited transforms). Encrypt's T-table path is
// checked against it differentially.
func (c *Cipher) EncryptRef(in bits.Block) bits.Block {
	s := in.XOR(c.enc[0])
	nr := c.size.Rounds()
	for r := 1; r < nr; r++ {
		s = subBytes(s)
		s = shiftRows(s)
		s = mixColumns(s)
		s = s.XOR(c.enc[r])
	}
	s = subBytes(s)
	s = shiftRows(s)
	return s.XOR(c.enc[nr])
}

// Decrypt deciphers one block (inverse cipher, equivalent-order form).
func (c *Cipher) Decrypt(in bits.Block) bits.Block {
	nr := c.size.Rounds()
	s := in.XOR(c.enc[nr])
	for r := nr - 1; r > 0; r-- {
		s = invShiftRows(s)
		s = invSubBytes(s)
		s = s.XOR(c.enc[r])
		s = invMixColumns(s)
	}
	s = invShiftRows(s)
	s = invSubBytes(s)
	return s.XOR(c.enc[0])
}

// The state is held column-major in the block per FIPS-197: byte i of the
// block is state row i%4, column i/4.

func subBytes(b bits.Block) bits.Block {
	for i := range b {
		b[i] = sbox[b[i]]
	}
	return b
}

func invSubBytes(b bits.Block) bits.Block {
	for i := range b {
		b[i] = invSbox[b[i]]
	}
	return b
}

func shiftRows(b bits.Block) bits.Block {
	var r bits.Block
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			r[4*col+row] = b[4*((col+row)%4)+row]
		}
	}
	return r
}

func invShiftRows(b bits.Block) bits.Block {
	var r bits.Block
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			r[4*((col+row)%4)+row] = b[4*col+row]
		}
	}
	return r
}

func mixColumns(b bits.Block) bits.Block {
	var r bits.Block
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := b[4*c], b[4*c+1], b[4*c+2], b[4*c+3]
		r[4*c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		r[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		r[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		r[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
	return r
}

func invMixColumns(b bits.Block) bits.Block {
	var r bits.Block
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := b[4*c], b[4*c+1], b[4*c+2], b[4*c+3]
		r[4*c] = gmul(a0, 0x0E) ^ gmul(a1, 0x0B) ^ gmul(a2, 0x0D) ^ gmul(a3, 0x09)
		r[4*c+1] = gmul(a0, 0x09) ^ gmul(a1, 0x0E) ^ gmul(a2, 0x0B) ^ gmul(a3, 0x0D)
		r[4*c+2] = gmul(a0, 0x0D) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0E) ^ gmul(a3, 0x0B)
		r[4*c+3] = gmul(a0, 0x0B) ^ gmul(a1, 0x0D) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0E)
	}
	return r
}
