package aes

import "mccp/internal/bits"

// Core32 models the compact iterative AES encryption core embedded in each
// Cryptographic Unit: a 32-bit datapath that consumes a 128-bit block as
// four 32-bit words and produces the ciphertext CoreCycles() clock cycles
// after the start strobe (44/52/60 cycles for 128/192/256-bit keys).
//
// The core reads pre-computed round keys from the Key Cache; it performs no
// key expansion of its own (that is the Key Scheduler's job). Like the
// paper's core it implements encryption only.
type Core32 struct {
	size KeySize
	keys []bits.Block
	// busyUntil is the absolute cycle at which the current computation
	// finishes; the Cryptographic Unit uses it to model SAES/FAES overlap.
	busyUntil uint64
	out       bits.Block
	started   bool
}

// NewCore32 returns an idle core with no key loaded.
func NewCore32() *Core32 { return &Core32{} }

// LoadKeys installs pre-expanded round keys (from the Key Cache) and the
// corresponding key size. It is an error to reload while a computation is
// conceptually in flight; callers sequence this through firmware.
func (c *Core32) LoadKeys(size KeySize, keys []bits.Block) {
	if len(keys) != size.Rounds()+1 {
		panic("aes: round key count does not match key size")
	}
	c.size = size
	c.keys = keys
}

// KeyLoaded reports whether round keys are installed.
func (c *Core32) KeyLoaded() bool { return c.keys != nil }

// Size returns the loaded key size.
func (c *Core32) Size() KeySize { return c.size }

// Start begins encrypting in at absolute cycle now and returns the absolute
// cycle at which the result is ready. The functional result is computed
// eagerly (the simulator is not a netlist), but it may only be observed via
// Collect, which models the FAES finalization.
func (c *Core32) Start(now uint64, in bits.Block) uint64 {
	if c.keys == nil {
		panic("aes: Start with no key loaded")
	}
	c.out = (&Cipher{size: c.size, enc: c.keys}).Encrypt(in)
	c.busyUntil = now + c.size.CoreCycles()
	c.started = true
	return c.busyUntil
}

// Busy reports whether a started computation has not yet been collected.
func (c *Core32) Busy() bool { return c.started }

// ReadyAt returns the completion cycle of the computation in flight.
func (c *Core32) ReadyAt() uint64 { return c.busyUntil }

// Collect returns the ciphertext of the last started block and marks the
// core idle. The caller is responsible for honouring ReadyAt (the
// Cryptographic Unit's FAES instruction waits for the done line).
func (c *Core32) Collect() bits.Block {
	if !c.started {
		panic("aes: Collect with no computation in flight")
	}
	c.started = false
	return c.out
}
