package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"

	"mccp/internal/bits"
)

// FIPS-197 Appendix C known-answer vectors.
var fipsVectors = []struct {
	key, pt, ct string
}{
	{
		"000102030405060708090a0b0c0d0e0f",
		"00112233445566778899aabbccddeeff",
		"69c4e0d86a7b0430d8cdb78070b4c55a",
	},
	{
		"000102030405060708090a0b0c0d0e0f1011121314151617",
		"00112233445566778899aabbccddeeff",
		"dda97ca4864cdfe06eaf70a0ec0d7191",
	},
	{
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
		"00112233445566778899aabbccddeeff",
		"8ea2b7ca516745bfeafc49904b496089",
	},
}

func keyFromHex(t *testing.T, s string) []byte {
	t.Helper()
	b := make([]byte, len(s)/2)
	for i := range b {
		var v byte
		for j := 0; j < 2; j++ {
			c := s[2*i+j]
			switch {
			case c >= '0' && c <= '9':
				v = v<<4 | (c - '0')
			case c >= 'a' && c <= 'f':
				v = v<<4 | (c - 'a' + 10)
			default:
				t.Fatalf("bad hex %q", s)
			}
		}
		b[i] = v
	}
	return b
}

func TestFIPS197Vectors(t *testing.T) {
	for _, v := range fipsVectors {
		c := MustNew(keyFromHex(t, v.key))
		got := c.Encrypt(bits.BlockFromHex(v.pt))
		if got.Hex() != v.ct {
			t.Errorf("%v encrypt = %s, want %s", c.Size(), got.Hex(), v.ct)
		}
		back := c.Decrypt(got)
		if back.Hex() != v.pt {
			t.Errorf("%v decrypt = %s, want %s", c.Size(), back.Hex(), v.pt)
		}
	}
}

// TestAppendixBVector checks the worked example in FIPS-197 Appendix B.
func TestAppendixBVector(t *testing.T) {
	c := MustNew(keyFromHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	got := c.Encrypt(bits.BlockFromHex("3243f6a8885a308d313198a2e0370734"))
	want := "3925841d02dc09fbdc118597196a0b32"
	if got.Hex() != want {
		t.Errorf("encrypt = %s, want %s", got.Hex(), want)
	}
}

func TestDifferentialVsStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kl := range []int{16, 24, 32} {
		for i := 0; i < 200; i++ {
			key := make([]byte, kl)
			rng.Read(key)
			var pt bits.Block
			rng.Read(pt[:])

			ours := MustNew(key)
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			var want bits.Block
			ref.Encrypt(want[:], pt[:])
			if got := ours.Encrypt(pt); got != want {
				t.Fatalf("key %x pt %s: got %s want %s", key, pt.Hex(), got.Hex(), want.Hex())
			}
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key [32]byte, pt bits.Block, sel uint8) bool {
		sizes := []int{16, 24, 32}
		c := MustNew(key[:sizes[int(sel)%3]])
		return c.Decrypt(c.Encrypt(pt)) == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSBoxProperties(t *testing.T) {
	// The derived S-box must be a permutation with no fixed points and must
	// match the FIPS-197 anchors.
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		s := SBox(byte(i))
		if seen[s] {
			t.Fatalf("S-box not a permutation: duplicate value %#x", s)
		}
		seen[s] = true
		if s == byte(i) {
			t.Errorf("S-box fixed point at %#x", i)
		}
		if invSbox[s] != byte(i) {
			t.Errorf("invSbox(sbox(%#x)) = %#x", i, invSbox[s])
		}
	}
	anchors := map[byte]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16}
	for in, want := range anchors {
		if got := SBox(in); got != want {
			t.Errorf("SBox(%#x) = %#x, want %#x", in, got, want)
		}
	}
}

func TestExpandKeyFirstLast(t *testing.T) {
	// The first round key must equal the cipher key (AES-128), and
	// FIPS-197 A.1's final round key is d014f9a8c9ee2589e13f0cc8b6630ca6.
	key := keyFromHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	rk := ExpandKey(key)
	if !bytes.Equal(rk[0][:], key) {
		t.Errorf("round key 0 = %s, want cipher key", rk[0].Hex())
	}
	if want := "d014f9a8c9ee2589e13f0cc8b6630ca6"; rk[10].Hex() != want {
		t.Errorf("round key 10 = %s, want %s", rk[10].Hex(), want)
	}
}

func TestCoreCycles(t *testing.T) {
	// The paper: 44, 52 or 60 cycles for 128-, 192- or 256-bit keys.
	want := map[KeySize]uint64{Key128: 44, Key192: 52, Key256: 60}
	for ks, w := range want {
		if got := ks.CoreCycles(); got != w {
			t.Errorf("%v CoreCycles = %d, want %d", ks, got, w)
		}
	}
}

func TestCore32Timing(t *testing.T) {
	key := keyFromHex(t, "000102030405060708090a0b0c0d0e0f")
	core := NewCore32()
	core.LoadKeys(Key128, ExpandKey(key))
	pt := bits.BlockFromHex("00112233445566778899aabbccddeeff")
	ready := core.Start(1000, pt)
	if ready != 1044 {
		t.Errorf("ReadyAt = %d, want 1044", ready)
	}
	if !core.Busy() {
		t.Error("core should be busy after Start")
	}
	ct := core.Collect()
	if ct.Hex() != "69c4e0d86a7b0430d8cdb78070b4c55a" {
		t.Errorf("ciphertext = %s", ct.Hex())
	}
	if core.Busy() {
		t.Error("core should be idle after Collect")
	}
}

func TestInvalidKeyLength(t *testing.T) {
	if _, err := New(make([]byte, 15)); err == nil {
		t.Error("expected error for 15-byte key")
	}
	if _, err := New(nil); err == nil {
		t.Error("expected error for nil key")
	}
}

func BenchmarkEncryptFunctional(b *testing.B) {
	c := MustNew(make([]byte, 16))
	var pt bits.Block
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		pt = c.Encrypt(pt)
	}
}

// TestEncryptMatchesRef pins the T-table hot path to the structural
// FIPS-197 reference for random keys and blocks of every key size.
func TestEncryptMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{16, 24, 32} {
		for i := 0; i < 100; i++ {
			key := make([]byte, n)
			rng.Read(key)
			c := MustNew(key)
			var in bits.Block
			rng.Read(in[:])
			if got, want := c.Encrypt(in), c.EncryptRef(in); got != want {
				t.Fatalf("AES-%d: T-table %s != reference %s", n*8, got.Hex(), want.Hex())
			}
		}
	}
}
