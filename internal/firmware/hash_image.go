package firmware

// hashImageSource drives a Whirlpool hashing unit after partial
// reconfiguration of the Cryptographic Unit (the paper's Table IV swaps the
// AES engine for a Whirlpool engine inside the 1280-slice reconfigurable
// region). The message is pre-padded by the communication controller to the
// Whirlpool block format (512-bit blocks = four 128-bit FIFO words), so the
// controller program is a pure absorb loop followed by a four-chunk digest
// readout.
//
// In:  [message chunk]*data (data = 4 x number of 512-bit blocks)
// Out: [digest chunk]*4 (the 512-bit Whirlpool digest)
const hashImageSource = `
init:
    INPUT   s0, statusp
    AND     s0, 04
    JUMP    NZ, dispatch
    HALT
    JUMP    init

dispatch:
    INPUT   s0, p_mode
    INPUT   s1, p_hdr
    INPUT   s2, p_data
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    COMPARE s0, 0B            ; ModeHash
    JUMP    Z, whash
    LOAD    sF, 02
    OUTPUT  sF, resultp
    JUMP    init

whash:
    COMPARE s2, 00
    JUMP    Z, wh_read        ; empty message: digest of padding only is
                              ; never produced here; the controller always
                              ; sends at least one padded block
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_2      ; absorb chunk (engine compresses every 4th)
wh_loop:
    OUTPUT  s4, cu
    OUTPUT  s5, cu
    SUB     s2, 01
    JUMP    NZ, wh_loop
wh_read:
    LOAD    sE, i_faes_0      ; digest chunk readout via the finalize path
    OUTPUT  sE, cu
    LOAD    sE, i_store_0
    OUTPUT  sE, cu
    LOAD    sE, i_faes_0
    OUTPUT  sE, cu
    LOAD    sE, i_store_0
    OUTPUT  sE, cu
    LOAD    sE, i_faes_0
    OUTPUT  sE, cu
    LOAD    sE, i_store_0
    OUTPUT  sE, cu
    LOAD    sE, i_faes_0
    OUTPUT  sE, cu
    LOAD    sE, i_store_0
    OUTPUT  sE, cu
    HALT
    LOAD    sF, 00
    OUTPUT  sF, resultp
    JUMP    init
`
