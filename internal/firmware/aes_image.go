package firmware

// aesImageSource is the block-cipher-mode program. Structure and idioms
// follow the paper's Listing 1: Cryptographic Unit instruction bytes are
// pre-fetched into controller registers before each main loop so every loop
// iteration is a run of OUTPUT strobes plus the loop bookkeeping, and start
// (SAES/SGFM) instructions are placed so the AES and GHASH cores compute in
// the background while data movement proceeds.
//
// Register conventions inside routines:
//
//	s0 scratch / mode        s1 header-block count    s2 payload-block count
//	s3 status scratch        s4..sA,sC,sD pre-fetched unit instructions
//	sB loop counter          sE ad-hoc instruction / mask scratch
//	sF result code
//
// Bank-register conventions (Cryptographic Unit):
//
//	R0 counter block         R1 keystream / working value
//	R2 data block            R3 accumulator (CBC-MAC state or E_K(J0))
//
// The input/output FIFO framing contract (what the communication controller
// sends and expects) is documented per routine below; the radio package
// implements the matching formatter.
const aesImageSource = `
; ---------------------------------------------------------------- dispatcher
init:
    INPUT   s0, statusp
    AND     s0, 04            ; start pending?
    JUMP    NZ, dispatch
    HALT
    JUMP    init

dispatch:
    INPUT   s0, p_mode        ; read clears start-pending
    INPUT   s1, p_hdr
    INPUT   s2, p_data
    LOAD    sE, FF            ; full byte mask by default
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    COMPARE s0, 01
    JUMP    Z, gcm_enc
    COMPARE s0, 02
    JUMP    Z, gcm_dec
    COMPARE s0, 03
    JUMP    Z, ccm_enc
    COMPARE s0, 04
    JUMP    Z, ccm_dec
    COMPARE s0, 05
    JUMP    Z, ctr_mode
    COMPARE s0, 06
    JUMP    Z, cbcmac_mode
    COMPARE s0, 07
    JUMP    Z, c2me
    COMPARE s0, 08
    JUMP    Z, c2ce
    COMPARE s0, 09
    JUMP    Z, c2md
    COMPARE s0, 0A
    JUMP    Z, c2cd
    LOAD    sF, 02            ; unknown mode
    OUTPUT  sF, resultp
    JUMP    init

; shared authentication-failure epilogue: flush the output FIFO so no
; unauthenticated plaintext can be read, then report AUTH_FAIL.
authfail:
    OUTPUT  sF, flushp
    LOAD    sF, 01
    OUTPUT  sF, resultp
    JUMP    init

ok_result:
    LOAD    sF, 00
    OUTPUT  sF, resultp
    JUMP    init

; ------------------------------------------------------------------ GCM enc
; In:  [J0] [AAD blocks]*hdr [PT blocks]*data [LEN block]
; Out: [CT blocks]*data [TAG block]
gcm_enc:
    LOAD    sE, i_xor_11      ; R1 = 0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_1      ; start E(0)
    OUTPUT  sE, cu
    LOAD    sE, i_faes_1      ; R1 = H
    OUTPUT  sE, cu
    LOAD    sE, i_loadh_1     ; H -> GHASH core, clear accumulator
    OUTPUT  sE, cu
    LOAD    sE, i_load_0      ; R0 = J0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_0      ; start E(J0)
    OUTPUT  sE, cu
    LOAD    sE, i_inc_0       ; R0 = J0+1 (first data counter)
    OUTPUT  sE, cu
    LOAD    sE, i_faes_3      ; R3 = E(J0) for the tag
    OUTPUT  sE, cu
    COMPARE s1, 00
    JUMP    Z, gcme_aad_done
    LOAD    s4, i_load_2
    LOAD    s9, i_sgfm_2
gcme_aad:
    OUTPUT  s4, cu            ; R2 = AAD block
    OUTPUT  s9, cu            ; absorb
    SUB     s1, 01
    JUMP    NZ, gcme_aad
gcme_aad_done:
    COMPARE s2, 00
    JUMP    Z, gcme_fin
    LOAD    s4, i_load_2      ; pre-fetch the loop instructions (Listing 1)
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_faes_1
    LOAD    s8, i_xor_21
    LOAD    s9, i_sgfm_1
    LOAD    sA, i_store_1
    OUTPUT  s4, cu            ; R2 = PT1
    OUTPUT  s5, cu            ; start E(ctr1)
    OUTPUT  s6, cu            ; ctr2
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, gcme_last
gcme_loop:
    OUTPUT  s7, cu            ; R1 = keystream i
    OUTPUT  s5, cu            ; start E(ctr i+1) in the background
    OUTPUT  s8, cu            ; R1 = CT i = PT ^ KS
    OUTPUT  s9, cu            ; absorb CT i
    OUTPUT  sA, cu            ; emit CT i
    OUTPUT  s6, cu            ; ctr i+2
    OUTPUT  s4, cu            ; R2 = PT i+1
    SUB     sB, 01
    JUMP    NZ, gcme_loop
gcme_last:
    OUTPUT  s7, cu            ; R1 = keystream n
    INPUT   sC, p_lmask_lo    ; partial-block byte mask
    OUTPUT  sC, masklo
    INPUT   sC, p_lmask_hi
    OUTPUT  sC, maskhi
    OUTPUT  s8, cu            ; R1 = masked CT n
    OUTPUT  s9, cu            ; absorb masked CT n
    OUTPUT  sA, cu            ; emit CT n
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
gcme_fin:
    LOAD    sE, i_load_2      ; R2 = lengths block
    OUTPUT  sE, cu
    LOAD    sE, i_sgfm_2
    OUTPUT  sE, cu
    LOAD    sE, i_fgfm_1      ; R1 = GHASH
    OUTPUT  sE, cu
    LOAD    sE, i_xor_31      ; R1 = GHASH ^ E(J0) = TAG
    OUTPUT  sE, cu
    LOAD    sE, i_store_1     ; emit TAG
    OUTPUT  sE, cu
    HALT                      ; let the STORE land before signalling done
    JUMP    ok_result

; ------------------------------------------------------------------ GCM dec
; In:  [J0] [AAD]*hdr [CT]*data [LEN] [TAG]
; Out: [PT blocks]*data (flushed when authentication fails)
gcm_dec:
    LOAD    sE, i_xor_11
    OUTPUT  sE, cu
    LOAD    sE, i_saes_1
    OUTPUT  sE, cu
    LOAD    sE, i_faes_1
    OUTPUT  sE, cu
    LOAD    sE, i_loadh_1
    OUTPUT  sE, cu
    LOAD    sE, i_load_0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_0
    OUTPUT  sE, cu
    LOAD    sE, i_inc_0
    OUTPUT  sE, cu
    LOAD    sE, i_faes_3
    OUTPUT  sE, cu
    COMPARE s1, 00
    JUMP    Z, gcmd_aad_done
    LOAD    s4, i_load_2
    LOAD    s9, i_sgfm_2
gcmd_aad:
    OUTPUT  s4, cu
    OUTPUT  s9, cu
    SUB     s1, 01
    JUMP    NZ, gcmd_aad
gcmd_aad_done:
    COMPARE s2, 00
    JUMP    Z, gcmd_fin
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_faes_1
    LOAD    s8, i_xor_21
    LOAD    s9, i_sgfm_2      ; decrypt absorbs the ciphertext
    LOAD    sA, i_store_1
    OUTPUT  s4, cu            ; R2 = CT1
    OUTPUT  s5, cu
    OUTPUT  s6, cu
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, gcmd_last
gcmd_loop:
    OUTPUT  s7, cu            ; R1 = keystream i
    OUTPUT  s5, cu            ; start E(ctr i+1)
    OUTPUT  s9, cu            ; absorb CT i (before R2 is reloaded)
    OUTPUT  s8, cu            ; R1 = PT i
    OUTPUT  sA, cu            ; emit PT i
    OUTPUT  s6, cu
    OUTPUT  s4, cu            ; R2 = CT i+1
    SUB     sB, 01
    JUMP    NZ, gcmd_loop
gcmd_last:
    OUTPUT  s7, cu
    OUTPUT  s9, cu            ; absorb zero-padded CT n (GHASH padding rule)
    OUTPUT  s8, cu            ; PT n (tail garbage; controller truncates)
    OUTPUT  sA, cu
gcmd_fin:
    LOAD    sE, i_load_2      ; lengths block
    OUTPUT  sE, cu
    LOAD    sE, i_sgfm_2
    OUTPUT  sE, cu
    LOAD    sE, i_fgfm_1
    OUTPUT  sE, cu
    LOAD    sE, i_xor_31      ; R1 = computed TAG
    OUTPUT  sE, cu
    LOAD    sE, i_load_2      ; R2 = received TAG (zero-padded)
    OUTPUT  sE, cu
    INPUT   sC, p_tmask_lo    ; compare only the tag-length bytes
    OUTPUT  sC, masklo
    INPUT   sC, p_tmask_hi
    OUTPUT  sC, maskhi
    LOAD    sE, i_equ_12
    OUTPUT  sE, cu
    HALT                      ; wait for the comparator
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    INPUT   s3, statusp
    AND     s3, 02            ; equ flag
    JUMP    Z, authfail
    JUMP    ok_result

; ------------------------------------------------------------------ CCM enc
; One-core CCM interleaves CTR and CBC-MAC on the same unit (T = 104/block).
; In:  [A0] [B0] [AAD-enc blocks]*hdr [PT]*data [A0]
; Out: [CT]*data [TAG block]
ccm_enc:
    LOAD    sE, i_load_0      ; R0 = A0
    OUTPUT  sE, cu
    LOAD    sE, i_inc_0       ; R0 = A1
    OUTPUT  sE, cu
    LOAD    sE, i_load_3      ; R3 = B0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_3
    OUTPUT  sE, cu
    LOAD    sE, i_faes_3      ; MAC accumulator = E(B0)
    OUTPUT  sE, cu
    COMPARE s1, 00
    JUMP    Z, ccme_hdr_done
    LOAD    s4, i_load_2
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
ccme_hdr:
    OUTPUT  s4, cu            ; R2 = AAD block
    OUTPUT  s7, cu            ; R3 = acc ^ AAD
    OUTPUT  sC, cu
    OUTPUT  sD, cu            ; R3 = E(acc ^ AAD)
    SUB     s1, 01
    JUMP    NZ, ccme_hdr
ccme_hdr_done:
    COMPARE s2, 00
    JUMP    Z, ccme_fin
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_xor_23
    LOAD    s8, i_faes_1
    LOAD    s9, i_xor_21
    LOAD    sA, i_store_1
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
    OUTPUT  s4, cu            ; R2 = PT1
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, ccme_last
ccme_loop:
    OUTPUT  s5, cu            ; start E(A_i)
    OUTPUT  s6, cu            ; A_{i+1}
    OUTPUT  s7, cu            ; R3 = acc ^ PT i (in the CTR shadow)
    OUTPUT  s8, cu            ; R1 = keystream i
    OUTPUT  s9, cu            ; R1 = CT i
    OUTPUT  sA, cu            ; emit CT i
    OUTPUT  sC, cu            ; start E(acc ^ PT)
    OUTPUT  s4, cu            ; R2 = PT i+1 (in the MAC shadow)
    OUTPUT  sD, cu            ; R3 = new accumulator
    SUB     sB, 01
    JUMP    NZ, ccme_loop
ccme_last:
    OUTPUT  s5, cu            ; start E(A_n)
    OUTPUT  s7, cu            ; MAC absorbs the zero-padded PT (CCM rule)
    OUTPUT  s8, cu            ; R1 = keystream n
    INPUT   sE, p_lmask_lo
    OUTPUT  sE, masklo
    INPUT   sE, p_lmask_hi
    OUTPUT  sE, maskhi
    OUTPUT  s9, cu            ; R1 = masked CT n
    OUTPUT  sA, cu            ; emit CT n
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    OUTPUT  sC, cu
    OUTPUT  sD, cu            ; final accumulator
ccme_fin:
    LOAD    sE, i_load_2      ; R2 = A0 (duplicated at stream end)
    OUTPUT  sE, cu
    LOAD    sE, i_saes_2
    OUTPUT  sE, cu
    LOAD    sE, i_faes_1      ; R1 = S0 = E(A0)
    OUTPUT  sE, cu
    LOAD    sE, i_xor_31      ; R1 = MAC ^ S0 = TAG
    OUTPUT  sE, cu
    LOAD    sE, i_store_1
    OUTPUT  sE, cu
    HALT
    JUMP    ok_result

; ------------------------------------------------------------------ CCM dec
; In:  [A0] [B0] [AAD-enc]*hdr [CT]*data [A0] [TAG]
; Out: [PT]*data (flushed on auth failure)
ccm_dec:
    LOAD    sE, i_load_0
    OUTPUT  sE, cu
    LOAD    sE, i_inc_0
    OUTPUT  sE, cu
    LOAD    sE, i_load_3
    OUTPUT  sE, cu
    LOAD    sE, i_saes_3
    OUTPUT  sE, cu
    LOAD    sE, i_faes_3
    OUTPUT  sE, cu
    COMPARE s1, 00
    JUMP    Z, ccmd_hdr_done
    LOAD    s4, i_load_2
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
ccmd_hdr:
    OUTPUT  s4, cu
    OUTPUT  s7, cu
    OUTPUT  sC, cu
    OUTPUT  sD, cu
    SUB     s1, 01
    JUMP    NZ, ccmd_hdr
ccmd_hdr_done:
    COMPARE s2, 00
    JUMP    Z, ccmd_fin
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_xor_13      ; R3 = acc ^ PT (plaintext sits in R1)
    LOAD    s8, i_faes_1
    LOAD    s9, i_xor_21
    LOAD    sA, i_store_1
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
    OUTPUT  s4, cu            ; R2 = CT1
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, ccmd_last
ccmd_loop:
    OUTPUT  s5, cu            ; start E(A_i)
    OUTPUT  s6, cu
    OUTPUT  s8, cu            ; R1 = keystream i
    OUTPUT  s9, cu            ; R1 = PT i
    OUTPUT  sA, cu            ; emit PT i
    OUTPUT  s7, cu            ; R3 = acc ^ PT i
    OUTPUT  sC, cu            ; start E(acc ^ PT)
    OUTPUT  s4, cu            ; R2 = CT i+1
    OUTPUT  sD, cu            ; new accumulator
    SUB     sB, 01
    JUMP    NZ, ccmd_loop
ccmd_last:
    OUTPUT  s5, cu
    OUTPUT  s8, cu            ; keystream n
    INPUT   sE, p_lmask_lo
    OUTPUT  sE, masklo
    INPUT   sE, p_lmask_hi
    OUTPUT  sE, maskhi
    OUTPUT  s9, cu            ; R1 = masked PT n (zero tail = CCM padding)
    OUTPUT  sA, cu            ; emit PT n
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    OUTPUT  s7, cu            ; absorb padded PT n
    OUTPUT  sC, cu
    OUTPUT  sD, cu
ccmd_fin:
    LOAD    sE, i_load_2      ; R2 = A0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_2
    OUTPUT  sE, cu
    LOAD    sE, i_faes_1      ; R1 = S0
    OUTPUT  sE, cu
    LOAD    sE, i_xor_31      ; R1 = acc ^ S0 = expected TAG
    OUTPUT  sE, cu
    LOAD    sE, i_load_2      ; R2 = received TAG
    OUTPUT  sE, cu
    INPUT   sC, p_tmask_lo
    OUTPUT  sC, masklo
    INPUT   sC, p_tmask_hi
    OUTPUT  sC, maskhi
    LOAD    sE, i_equ_12
    OUTPUT  sE, cu
    HALT
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    INPUT   s3, statusp
    AND     s3, 02
    JUMP    Z, authfail
    JUMP    ok_result

; ---------------------------------------------------------------------- CTR
; In:  [ICB] [DATA]*data          Out: [DATA ^ keystream]*data
ctr_mode:
    LOAD    sE, i_load_0
    OUTPUT  sE, cu
    COMPARE s2, 00
    JUMP    Z, ctr_fin
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_faes_1
    LOAD    s9, i_xor_21
    LOAD    sA, i_store_1
    OUTPUT  s4, cu
    OUTPUT  s5, cu
    OUTPUT  s6, cu
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, ctr_last
ctr_loop:
    OUTPUT  s7, cu
    OUTPUT  s5, cu
    OUTPUT  s9, cu
    OUTPUT  sA, cu
    OUTPUT  s6, cu
    OUTPUT  s4, cu
    SUB     sB, 01
    JUMP    NZ, ctr_loop
ctr_last:
    OUTPUT  s7, cu
    INPUT   sE, p_lmask_lo
    OUTPUT  sE, masklo
    INPUT   sE, p_lmask_hi
    OUTPUT  sE, maskhi
    OUTPUT  s9, cu
    OUTPUT  sA, cu
    HALT                      ; wait for the final STORE before restoring
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
ctr_fin:
    JUMP    ok_result

; ------------------------------------------------------------------ CBC-MAC
; In:  [DATA]*data (pre-formatted/padded)   Out: [MAC block]
cbcmac_mode:
    LOAD    sE, i_xor_33      ; R3 = 0 (FIPS-113 zero IV)
    OUTPUT  sE, cu
    COMPARE s2, 00
    JUMP    Z, cbc_fin
    LOAD    s4, i_load_2
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
cbc_loop:
    OUTPUT  s4, cu
    OUTPUT  s7, cu
    OUTPUT  sC, cu
    OUTPUT  sD, cu
    SUB     s2, 01
    JUMP    NZ, cbc_loop
cbc_fin:
    LOAD    sE, i_store_3
    OUTPUT  sE, cu
    HALT
    JUMP    ok_result

; ------------------------------------- two-core CCM, CBC-MAC half (encrypt)
; In:  [B0] [AAD-enc]*hdr [PT]*data     Out: none (MAC via shift register)
c2me:
    LOAD    sE, i_load_3
    OUTPUT  sE, cu
    LOAD    sE, i_saes_3
    OUTPUT  sE, cu
    LOAD    sE, i_faes_3
    OUTPUT  sE, cu
    COMPARE s1, 00
    JUMP    Z, c2me_h_done
    LOAD    s4, i_load_2
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
c2me_hdr:
    OUTPUT  s4, cu
    OUTPUT  s7, cu
    OUTPUT  sC, cu
    OUTPUT  sD, cu
    SUB     s1, 01
    JUMP    NZ, c2me_hdr
c2me_h_done:
    COMPARE s2, 00
    JUMP    Z, c2me_fin
    LOAD    s4, i_load_2
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
c2me_loop:
    OUTPUT  s4, cu
    OUTPUT  s7, cu
    OUTPUT  sC, cu
    OUTPUT  sD, cu
    SUB     s2, 01
    JUMP    NZ, c2me_loop
c2me_fin:
    LOAD    sE, i_shout_3     ; forward the MAC to the CTR core
    OUTPUT  sE, cu
    JUMP    ok_result

; ----------------------------------------- two-core CCM, CTR half (encrypt)
; In:  [A0] [PT]*data [A0]              Out: [CT]*data [TAG]
c2ce:
    LOAD    sE, i_load_0
    OUTPUT  sE, cu
    LOAD    sE, i_inc_0       ; A1
    OUTPUT  sE, cu
    COMPARE s2, 00
    JUMP    Z, c2ce_fin
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_faes_1
    LOAD    s9, i_xor_21
    LOAD    sA, i_store_1
    OUTPUT  s4, cu
    OUTPUT  s5, cu
    OUTPUT  s6, cu
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, c2ce_last
c2ce_loop:
    OUTPUT  s7, cu
    OUTPUT  s5, cu
    OUTPUT  s9, cu
    OUTPUT  sA, cu
    OUTPUT  s6, cu
    OUTPUT  s4, cu
    SUB     sB, 01
    JUMP    NZ, c2ce_loop
c2ce_last:
    OUTPUT  s7, cu
    INPUT   sE, p_lmask_lo
    OUTPUT  sE, masklo
    INPUT   sE, p_lmask_hi
    OUTPUT  sE, maskhi
    OUTPUT  s9, cu
    OUTPUT  sA, cu
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
c2ce_fin:
    LOAD    sE, i_load_2      ; R2 = A0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_2
    OUTPUT  sE, cu
    LOAD    sE, i_faes_1      ; R1 = S0
    OUTPUT  sE, cu
    LOAD    sE, i_shin_2      ; R2 = MAC from the CBC-MAC core
    OUTPUT  sE, cu
    LOAD    sE, i_xor_21      ; R1 = MAC ^ S0 = TAG
    OUTPUT  sE, cu
    LOAD    sE, i_store_1
    OUTPUT  sE, cu
    HALT
    JUMP    ok_result

; ------------------------------------- two-core CCM, CBC-MAC half (decrypt)
; In:  [B0] [AAD-enc]*hdr; plaintext arrives over the shift register
c2md:
    LOAD    sE, i_load_3
    OUTPUT  sE, cu
    LOAD    sE, i_saes_3
    OUTPUT  sE, cu
    LOAD    sE, i_faes_3
    OUTPUT  sE, cu
    COMPARE s1, 00
    JUMP    Z, c2md_h_done
    LOAD    s4, i_load_2
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
c2md_hdr:
    OUTPUT  s4, cu
    OUTPUT  s7, cu
    OUTPUT  sC, cu
    OUTPUT  sD, cu
    SUB     s1, 01
    JUMP    NZ, c2md_hdr
c2md_h_done:
    COMPARE s2, 00
    JUMP    Z, c2md_fin
    LOAD    s4, i_shin_2      ; R2 = PT block from the CTR core
    LOAD    s7, i_xor_23
    LOAD    sC, i_saes_3
    LOAD    sD, i_faes_3
c2md_loop:
    OUTPUT  s4, cu
    OUTPUT  s7, cu
    OUTPUT  sC, cu
    OUTPUT  sD, cu
    SUB     s2, 01
    JUMP    NZ, c2md_loop
c2md_fin:
    LOAD    sE, i_shout_3
    OUTPUT  sE, cu
    JUMP    ok_result

; ----------------------------------------- two-core CCM, CTR half (decrypt)
; In:  [A0] [CT]*data [A0] [TAG]        Out: [PT]*data (flushed on failure)
c2cd:
    LOAD    sE, i_load_0
    OUTPUT  sE, cu
    LOAD    sE, i_inc_0
    OUTPUT  sE, cu
    COMPARE s2, 00
    JUMP    Z, c2cd_fin
    LOAD    s4, i_load_2
    LOAD    s5, i_saes_0
    LOAD    s6, i_inc_0
    LOAD    s7, i_faes_1
    LOAD    s9, i_xor_21
    LOAD    sA, i_store_1
    LOAD    sC, i_shout_1     ; forward each PT block to the MAC core
    OUTPUT  s4, cu
    OUTPUT  s5, cu
    OUTPUT  s6, cu
    LOAD    sB, s2
    SUB     sB, 01
    JUMP    Z, c2cd_last
c2cd_loop:
    OUTPUT  s7, cu            ; R1 = keystream i
    OUTPUT  s5, cu            ; start E(A_{i+1})
    OUTPUT  s9, cu            ; R1 = PT i
    OUTPUT  sA, cu            ; emit PT i
    OUTPUT  sC, cu            ; PT i -> MAC core (rendezvous paces us)
    OUTPUT  s6, cu
    OUTPUT  s4, cu            ; R2 = CT i+1
    SUB     sB, 01
    JUMP    NZ, c2cd_loop
c2cd_last:
    OUTPUT  s7, cu
    INPUT   sE, p_lmask_lo
    OUTPUT  sE, masklo
    INPUT   sE, p_lmask_hi
    OUTPUT  sE, maskhi
    OUTPUT  s9, cu            ; masked PT n (zero tail, the MAC padding)
    OUTPUT  sA, cu
    OUTPUT  sC, cu            ; padded PT n -> MAC core
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
c2cd_fin:
    LOAD    sE, i_load_2      ; R2 = A0
    OUTPUT  sE, cu
    LOAD    sE, i_saes_2
    OUTPUT  sE, cu
    LOAD    sE, i_faes_1      ; R1 = S0
    OUTPUT  sE, cu
    LOAD    sE, i_shin_2      ; R2 = MAC
    OUTPUT  sE, cu
    LOAD    sE, i_xor_21      ; R1 = expected TAG
    OUTPUT  sE, cu
    LOAD    sE, i_load_2      ; R2 = received TAG
    OUTPUT  sE, cu
    INPUT   sC, p_tmask_lo
    OUTPUT  sC, masklo
    INPUT   sC, p_tmask_hi
    OUTPUT  sC, maskhi
    LOAD    sE, i_equ_12
    OUTPUT  sE, cu
    HALT
    LOAD    sE, FF
    OUTPUT  sE, masklo
    OUTPUT  sE, maskhi
    INPUT   s3, statusp
    AND     s3, 02
    JUMP    Z, authfail
    JUMP    ok_result
`
