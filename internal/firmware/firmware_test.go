package firmware

import (
	"strings"
	"testing"

	"mccp/internal/picoblaze"
)

func TestImagesAssembleAndFit(t *testing.T) {
	if n := ImageAESWords(); n == 0 || n > picoblaze.IMemWords {
		t.Errorf("AES image: %d words", n)
	}
	if n := ImageHashWords(); n == 0 || n > picoblaze.IMemWords {
		t.Errorf("hash image: %d words", n)
	}
	t.Logf("AES image: %d words; hash image: %d words (of %d)",
		ImageAESWords(), ImageHashWords(), picoblaze.IMemWords)
}

func TestConstantsBlockIsDeterministic(t *testing.T) {
	if constants() != constants() {
		t.Error("constants preamble must be deterministic for reproducible images")
	}
}

func TestModeStrings(t *testing.T) {
	for m := ModeGCMEnc; m <= ModeHash; m++ {
		if strings.HasPrefix(m.String(), "Mode(") {
			t.Errorf("mode %d has no name", m)
		}
	}
	if !strings.HasPrefix(Mode(99).String(), "Mode(") {
		t.Error("unknown mode should print numerically")
	}
}

// TestDispatcherCoversEveryAESMode disassembles the AES image and checks
// each mode constant appears in a COMPARE (dispatch completeness).
func TestDispatcherCoversEveryAESMode(t *testing.T) {
	var listing strings.Builder
	for _, w := range ImageAES {
		listing.WriteString(picoblaze.Disassemble(w))
		listing.WriteByte('\n')
	}
	for m := ModeGCMEnc; m <= ModeCCM2CtrDec; m++ {
		needle := "COMPARE s0, 0" + string("0123456789ABCDEF"[m])
		if !strings.Contains(listing.String(), needle) {
			t.Errorf("dispatcher missing %v (no %q)", m, needle)
		}
	}
}

// TestHaltPlacementRule audits the images for the wake-race rule: a HALT
// must not immediately follow an OUTPUT to the unit instruction port whose
// operation completes in under 5 cycles (SAES/SGFM/SHOUT starts). The
// firmware convention is to HALT only after FAES/FGFM/EQU/LOAD/STORE-class
// instructions; this test catches regressions mechanically by checking the
// instruction byte most recently output before each HALT.
func TestHaltPlacementRule(t *testing.T) {
	for _, img := range []struct {
		name  string
		words []picoblaze.Word
	}{{"aes", ImageAES}, {"hash", ImageHash}} {
		lastCUByte := -1
		track := map[uint8]int{} // register -> last LOADed constant
		for addr, w := range img.words {
			d := picoblaze.Disassemble(w)
			var reg uint8
			var val int
			if n, _ := parseLoad(d, &reg, &val); n {
				track[reg] = val
			}
			if r, ok := parseOutputToCU(d); ok {
				if v, seen := track[r]; seen {
					lastCUByte = v
				} else {
					lastCUByte = -1 // pre-fetched loop register: not checked
				}
			}
			if d == "HALT" && lastCUByte >= 0 {
				op := uint8(lastCUByte) >> 4
				// 0x4 SGFM, 0x6 SAES, 0xC SHOUT complete too fast.
				if op == 0x4 || op == 0x6 || op == 0xC {
					t.Errorf("%s image: HALT at %03X after fast-start op %#x (wake race)",
						img.name, addr, op)
				}
			}
		}
	}
}

func parseLoad(d string, reg *uint8, val *int) (bool, error) {
	if !strings.HasPrefix(d, "LOAD s") || strings.Contains(d, ", s") {
		return false, nil
	}
	var r uint8
	var v int
	n, err := sscanf(d, &r, &v)
	if n != 2 || err != nil {
		return false, nil
	}
	*reg, *val = r, v
	return true, nil
}

func sscanf(d string, r *uint8, v *int) (int, error) {
	// d is "LOAD sX, KK" with X and KK hex.
	rest := strings.TrimPrefix(d, "LOAD s")
	parts := strings.Split(rest, ", ")
	if len(parts) != 2 {
		return 0, nil
	}
	x := hexVal(parts[0])
	k := hexVal(parts[1])
	if x < 0 || k < 0 {
		return 0, nil
	}
	*r, *v = uint8(x), k
	return 2, nil
}

func parseOutputToCU(d string) (uint8, bool) {
	// "OUTPUT sX, 00" targets the unit instruction port.
	if !strings.HasPrefix(d, "OUTPUT s") || !strings.HasSuffix(d, ", 00") {
		return 0, false
	}
	x := hexVal(strings.TrimSuffix(strings.TrimPrefix(d, "OUTPUT s"), ", 00"))
	if x < 0 {
		return 0, false
	}
	return uint8(x), true
}

func hexVal(s string) int {
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v*16 + int(c-'0')
		case c >= 'A' && c <= 'F':
			v = v*16 + int(c-'A'+10)
		case c >= 'a' && c <= 'f':
			v = v*16 + int(c-'a'+10)
		default:
			return -1
		}
	}
	if len(s) == 0 {
		return -1
	}
	return v
}
