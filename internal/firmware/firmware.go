// Package firmware contains the 8-bit controller programs executed by each
// Cryptographic Core, written in the PicoBlaze assembly dialect of the
// paper's Listing 1 and assembled at package init.
//
// One program image ("the AES image") carries every block-cipher mode the
// MCCP supports — GCM and CCM encrypt/decrypt, bare CTR and CBC-MAC, and the
// two-core CCM split (a CBC-MAC half and a CTR half cooperating over the
// inter-core shift register). A second image drives a Whirlpool hashing
// unit after partial reconfiguration. The Task Scheduler selects the
// routine by writing a mode code to the core's parameter registers and
// strobing start.
//
// # Port map (controller <-> core glue)
//
// Output ports: the Cryptographic Unit instruction port, the two halves of
// the 16-bit XOR/EQU byte mask, the result register (writing it signals
// task completion to the Task Scheduler) and the output-FIFO flush strobe
// used when authentication fails.
//
// Input ports: a status register (unit busy, equ flag, start pending) and
// the task parameters written by the Task Scheduler: mode, header (AAD)
// block count, payload block count, the byte mask of the final partial
// payload block and the byte mask of the authentication tag.
package firmware

import (
	"fmt"
	"strings"

	"mccp/internal/cuisa"
	"mccp/internal/picoblaze"
)

// Controller output ports.
const (
	PortCU     = 0x00 // Cryptographic Unit instruction strobe
	PortMaskLo = 0x01 // XOR/EQU byte mask bits 7..0
	PortMaskHi = 0x02 // XOR/EQU byte mask bits 15..8
	PortResult = 0x03 // result code; write signals task completion
	PortFlush  = 0x04 // output-FIFO re-initialization (auth failure)
)

// Controller input ports.
const (
	InStatus     = 0x00
	InMode       = 0x01 // reading also clears the start-pending flag
	InHdrBlks    = 0x02
	InDataBlks   = 0x03
	InLastMaskLo = 0x04
	InLastMaskHi = 0x05
	InTagMaskLo  = 0x06
	InTagMaskHi  = 0x07
)

// Status register bits.
const (
	StatusBusy  = 0x01
	StatusEqu   = 0x02
	StatusStart = 0x04
)

// Mode selects the firmware routine for a task.
type Mode uint8

// Task modes. The CCM2 modes are the two halves of the paper's
// "any single CCM packet can be processed with two Cryptographic Cores".
const (
	ModeInvalid    Mode = 0
	ModeGCMEnc     Mode = 1
	ModeGCMDec     Mode = 2
	ModeCCMEnc     Mode = 3
	ModeCCMDec     Mode = 4
	ModeCTR        Mode = 5 // encrypt == decrypt
	ModeCBCMAC     Mode = 6
	ModeCCM2MacEnc Mode = 7
	ModeCCM2CtrEnc Mode = 8
	ModeCCM2MacDec Mode = 9
	ModeCCM2CtrDec Mode = 10
	ModeHash       Mode = 11 // Whirlpool image only
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	names := map[Mode]string{
		ModeGCMEnc: "GCM-ENC", ModeGCMDec: "GCM-DEC",
		ModeCCMEnc: "CCM-ENC", ModeCCMDec: "CCM-DEC",
		ModeCTR: "CTR", ModeCBCMAC: "CBC-MAC",
		ModeCCM2MacEnc: "CCM2-MAC-ENC", ModeCCM2CtrEnc: "CCM2-CTR-ENC",
		ModeCCM2MacDec: "CCM2-MAC-DEC", ModeCCM2CtrDec: "CCM2-CTR-DEC",
		ModeHash: "HASH",
	}
	if s, ok := names[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Result codes written to PortResult.
const (
	ResultOK       = 0x00
	ResultAuthFail = 0x01
	ResultBadMode  = 0x02
)

// constants emits the CONSTANT preamble shared by the images: port numbers,
// status bits and every Cryptographic Unit instruction byte the firmware
// uses. Encoding the unit instructions here (rather than as magic hex in
// the assembly) keeps firmware and ISA in lock step.
func constants() string {
	var b strings.Builder
	emit := func(name string, v uint8) { fmt.Fprintf(&b, "CONSTANT %s, %02X\n", name, v) }

	emit("cu", PortCU)
	emit("masklo", PortMaskLo)
	emit("maskhi", PortMaskHi)
	emit("resultp", PortResult)
	emit("flushp", PortFlush)
	emit("statusp", InStatus)
	emit("p_mode", InMode)
	emit("p_hdr", InHdrBlks)
	emit("p_data", InDataBlks)
	emit("p_lmask_lo", InLastMaskLo)
	emit("p_lmask_hi", InLastMaskHi)
	emit("p_tmask_lo", InTagMaskLo)
	emit("p_tmask_hi", InTagMaskHi)

	ins := map[string]cuisa.Instr{
		"i_load_0":  cuisa.Load(0),
		"i_load_2":  cuisa.Load(2),
		"i_load_3":  cuisa.Load(3),
		"i_store_1": cuisa.Store(1),
		"i_store_3": cuisa.Store(3),
		"i_store_0": cuisa.Store(0),
		"i_store_2": cuisa.Store(2),
		"i_loadh_1": cuisa.LoadH(1),
		"i_sgfm_1":  cuisa.SGFM(1),
		"i_sgfm_2":  cuisa.SGFM(2),
		"i_fgfm_1":  cuisa.FGFM(1),
		"i_saes_0":  cuisa.SAES(0),
		"i_saes_1":  cuisa.SAES(1),
		"i_saes_2":  cuisa.SAES(2),
		"i_saes_3":  cuisa.SAES(3),
		"i_faes_0":  cuisa.FAES(0),
		"i_faes_1":  cuisa.FAES(1),
		"i_faes_2":  cuisa.FAES(2),
		"i_faes_3":  cuisa.FAES(3),
		"i_inc_0":   cuisa.Inc(0, 1),
		"i_xor_11":  cuisa.Xor(1, 1),
		"i_xor_33":  cuisa.Xor(3, 3),
		"i_xor_21":  cuisa.Xor(2, 1),
		"i_xor_23":  cuisa.Xor(2, 3),
		"i_xor_13":  cuisa.Xor(1, 3),
		"i_xor_31":  cuisa.Xor(3, 1),
		"i_equ_12":  cuisa.Equ(1, 2),
		"i_shin_2":  cuisa.ShIn(2),
		"i_shout_1": cuisa.ShOut(1),
		"i_shout_3": cuisa.ShOut(3),
	}
	// Deterministic order for reproducible images.
	names := make([]string, 0, len(ins))
	for n := range ins {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		emit(n, uint8(ins[n]))
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ImageAES is the assembled block-cipher-mode image (GCM/CCM/CTR/CBC-MAC
// and the two-core CCM halves).
var ImageAES = picoblaze.MustAssemble(constants() + aesImageSource)

// ImageHash is the assembled Whirlpool hashing image used after partial
// reconfiguration of the Cryptographic Unit.
var ImageHash = picoblaze.MustAssemble(constants() + hashImageSource)

// ImageAESWords and ImageHashWords report the image sizes for the resource
// model and the reconfiguration-time accounting.
func ImageAESWords() int  { return len(ImageAES) }
func ImageHashWords() int { return len(ImageHash) }

// ImageWordsLoadCycles is the cost of rewriting a controller's 1024-word
// instruction memory through its loader port when a core is reprogrammed
// (one word per cycle).
const ImageWordsLoadCycles = 1024
