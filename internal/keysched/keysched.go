// Package keysched models the MCCP's key infrastructure (paper §III.A):
// the Key Memory, written only by the platform's main controller and never
// readable through the MCCP data port, and the Key Scheduler, which expands
// session keys into round keys and fills the per-core Key Caches.
package keysched

import (
	"fmt"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/sim"
)

// Latency model of the key path, in clock cycles. Expansion produces one
// 128-bit round key per ExpandPerBlock cycles on the Key Scheduler's
// datapath, and the transfer into a core's Key Cache moves four 32-bit
// words per round key across the key bus.
const (
	ExpandSetup      = 24 // fetch session key, configure the expander
	ExpandPerBlock   = 8  // one round-key block
	TransferPerBlock = 4  // four 32-bit words into the key cache
)

// ExpandCycles returns the Key Scheduler latency for one session key.
func ExpandCycles(size aes.KeySize) sim.Time {
	n := sim.Time(size.Rounds() + 1)
	return ExpandSetup + n*(ExpandPerBlock+TransferPerBlock)
}

// KeyMemory is the session-key store. Security property (paper §III.A):
// "the Key Memory cannot be accessed in write mode by the MCCP" and "there
// is no way to get the secret session key directly from the MCCP data
// port" — accordingly the only read path is the Key Scheduler's expansion,
// which never exposes raw key bytes to callers.
type KeyMemory struct {
	keys map[int][]byte
}

// NewKeyMemory returns an empty key memory.
func NewKeyMemory() *KeyMemory { return &KeyMemory{keys: make(map[int][]byte)} }

// Store writes a session key (main-controller write port). The key length
// must be a valid AES key length.
func (m *KeyMemory) Store(id int, key []byte) error {
	switch len(key) {
	case 16, 24, 32:
	default:
		return fmt.Errorf("keysched: invalid key length %d", len(key))
	}
	m.keys[id] = append([]byte(nil), key...)
	return nil
}

// Has reports whether a key ID is provisioned (control-plane metadata; not
// a data-port read).
func (m *KeyMemory) Has(id int) bool { _, ok := m.keys[id]; return ok }

// Scheduler is the Key Scheduler: a single shared unit that serializes key
// expansions for all cores.
type Scheduler struct {
	eng   *sim.Engine
	mem   *KeyMemory
	busy  bool
	queue []func()

	// Expansions counts completed expansions (cache-miss metric).
	Expansions uint64
}

// NewScheduler binds a scheduler to the key memory.
func NewScheduler(eng *sim.Engine, mem *KeyMemory) *Scheduler {
	return &Scheduler{eng: eng, mem: mem}
}

// Prepare expands key keyID and delivers the round keys through install
// after the modeled latency, then calls done. Requests are serialized: the
// paper has one Key Scheduler shared by all cores. install receives the
// key size and the expanded schedule; it must stage them into the target
// core's Key Cache.
func (s *Scheduler) Prepare(keyID int, install func(aes.KeySize, []bits.Block), done func(error)) {
	job := func() {
		key, ok := s.mem.keys[keyID]
		if !ok {
			s.finish(func() { done(fmt.Errorf("keysched: unknown key ID %d", keyID)) })
			return
		}
		size := aes.KeySize(len(key))
		rk := aes.ExpandKey(key)
		s.eng.After(ExpandCycles(size), func() {
			s.Expansions++
			install(size, rk)
			s.finish(func() { done(nil) })
		})
	}
	if s.busy {
		s.queue = append(s.queue, job)
		return
	}
	s.busy = true
	s.eng.After(0, job)
}

func (s *Scheduler) finish(cb func()) {
	cb()
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.eng.After(0, next)
		return
	}
	s.busy = false
}

// CacheSlots is each core's Key Cache capacity in key contexts. One block
// RAM comfortably holds four expanded schedules (4 x 15 x 128 bits).
const CacheSlots = 4

// cacheEntry is one cached schedule.
type cacheEntry struct {
	keyID int
	size  aes.KeySize
	rk    []bits.Block
	used  uint64
}

// Cache is one core's Key Cache of pre-computed round keys (paper §IV.A:
// "cipher round keys are pre-computed and stored in the Key Cache").
type Cache struct {
	entries []cacheEntry
	clock   uint64

	Hits, Misses uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Get looks up a key ID, returning its schedule on a hit.
func (c *Cache) Get(keyID int) (aes.KeySize, []bits.Block, bool) {
	for i := range c.entries {
		if c.entries[i].keyID == keyID {
			c.clock++
			c.entries[i].used = c.clock
			c.Hits++
			return c.entries[i].size, c.entries[i].rk, true
		}
	}
	c.Misses++
	return 0, nil, false
}

// Contains reports whether keyID is cached without touching LRU state or
// hit counters (the dispatch policies use it to score cores).
func (c *Cache) Contains(keyID int) bool {
	for i := range c.entries {
		if c.entries[i].keyID == keyID {
			return true
		}
	}
	return false
}

// Put inserts a schedule, evicting the least recently used entry when full.
func (c *Cache) Put(keyID int, size aes.KeySize, rk []bits.Block) {
	c.clock++
	for i := range c.entries {
		if c.entries[i].keyID == keyID {
			c.entries[i] = cacheEntry{keyID: keyID, size: size, rk: rk, used: c.clock}
			return
		}
	}
	if len(c.entries) < CacheSlots {
		c.entries = append(c.entries, cacheEntry{keyID: keyID, size: size, rk: rk, used: c.clock})
		return
	}
	victim := 0
	for i := range c.entries {
		if c.entries[i].used < c.entries[victim].used {
			victim = i
		}
	}
	c.entries[victim] = cacheEntry{keyID: keyID, size: size, rk: rk, used: c.clock}
}

// Len reports the number of cached key contexts.
func (c *Cache) Len() int { return len(c.entries) }

// Invalidate drops a key (channel close / rekey).
func (c *Cache) Invalidate(keyID int) {
	for i := range c.entries {
		if c.entries[i].keyID == keyID {
			c.entries[i] = c.entries[len(c.entries)-1]
			c.entries = c.entries[:len(c.entries)-1]
			return
		}
	}
}
