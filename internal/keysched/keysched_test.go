package keysched

import (
	"testing"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/sim"
)

func TestExpandCycles(t *testing.T) {
	// 128-bit: 24 + 11*(8+4) = 156; 192: 24 + 13*12 = 180; 256: 24+15*12=204.
	want := map[aes.KeySize]sim.Time{aes.Key128: 156, aes.Key192: 180, aes.Key256: 204}
	for ks, w := range want {
		if got := ExpandCycles(ks); got != w {
			t.Errorf("%v: %d cycles, want %d", ks, got, w)
		}
	}
}

func TestKeyMemoryValidation(t *testing.T) {
	m := NewKeyMemory()
	if err := m.Store(1, make([]byte, 15)); err == nil {
		t.Error("15-byte key accepted")
	}
	if err := m.Store(1, make([]byte, 16)); err != nil {
		t.Error(err)
	}
	if !m.Has(1) || m.Has(2) {
		t.Error("Has() wrong")
	}
}

func TestSchedulerLatencyAndSerialization(t *testing.T) {
	eng := sim.NewEngine()
	mem := NewKeyMemory()
	mem.Store(1, make([]byte, 16))
	mem.Store(2, make([]byte, 32))
	s := NewScheduler(eng, mem)

	var done1, done2 sim.Time
	var rk1 []bits.Block
	s.Prepare(1, func(size aes.KeySize, rk []bits.Block) {
		if size != aes.Key128 || len(rk) != 11 {
			t.Errorf("install 1: size=%v len=%d", size, len(rk))
		}
		rk1 = rk
	}, func(err error) {
		if err != nil {
			t.Error(err)
		}
		done1 = eng.Now()
	})
	// Second request queues behind the first (one shared Key Scheduler).
	s.Prepare(2, func(size aes.KeySize, rk []bits.Block) {
		if size != aes.Key256 || len(rk) != 15 {
			t.Errorf("install 2: size=%v len=%d", size, len(rk))
		}
	}, func(err error) {
		if err != nil {
			t.Error(err)
		}
		done2 = eng.Now()
	})
	eng.Run()
	if done1 != ExpandCycles(aes.Key128) {
		t.Errorf("first expansion at %d, want %d", done1, ExpandCycles(aes.Key128))
	}
	if done2 != done1+ExpandCycles(aes.Key256) {
		t.Errorf("second expansion at %d, want %d (serialized)", done2, done1+ExpandCycles(aes.Key256))
	}
	if s.Expansions != 2 {
		t.Errorf("expansions = %d", s.Expansions)
	}
	// The expansion output matches the reference key schedule.
	want := aes.ExpandKey(make([]byte, 16))
	for i := range want {
		if rk1[i] != want[i] {
			t.Fatalf("round key %d mismatch", i)
		}
	}
}

func TestSchedulerUnknownKey(t *testing.T) {
	eng := sim.NewEngine()
	s := NewScheduler(eng, NewKeyMemory())
	gotErr := false
	s.Prepare(42, func(aes.KeySize, []bits.Block) {
		t.Error("install called for unknown key")
	}, func(err error) { gotErr = err != nil })
	eng.Run()
	if !gotErr {
		t.Error("no error for unknown key ID")
	}
	// The scheduler must not wedge after an error.
	mem := NewKeyMemory()
	_ = mem
}

func TestCacheLRU(t *testing.T) {
	c := NewCache()
	rk := aes.ExpandKey(make([]byte, 16))
	for id := 1; id <= CacheSlots; id++ {
		c.Put(id, aes.Key128, rk)
	}
	if c.Len() != CacheSlots {
		t.Fatalf("len = %d", c.Len())
	}
	// Touch key 1 so key 2 becomes LRU, then insert a 5th key.
	if _, _, ok := c.Get(1); !ok {
		t.Fatal("key 1 missing")
	}
	c.Put(5, aes.Key128, rk)
	if c.Contains(2) {
		t.Error("key 2 should have been evicted (LRU)")
	}
	if !c.Contains(1) || !c.Contains(5) {
		t.Error("keys 1 and 5 should be cached")
	}
	// Re-putting an existing key must not evict.
	c.Put(5, aes.Key128, rk)
	if c.Len() != CacheSlots {
		t.Errorf("len after re-put = %d", c.Len())
	}
	// Hit/miss accounting.
	if _, _, ok := c.Get(99); ok {
		t.Error("phantom hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	c.Invalidate(5)
	if c.Contains(5) || c.Len() != CacheSlots-1 {
		t.Error("invalidate failed")
	}
	c.Invalidate(999) // no-op
}
