// Package baseline provides the comparison points of the paper's Table III:
// cycle models of the two architectural families the MCCP is weighed
// against (unrolled pipelined accelerators and programmable
// crypto-processors) plus the published figures of the specific systems the
// paper cites. The models make explicit where each Mbps/MHz number comes
// from; the published rows carry the exact values the paper tabulates.
package baseline

// Row is one Table III line.
type Row struct {
	Implementation string
	Platform       string
	Programmable   bool
	Algorithm      string
	MbpsPerMHz     float64
	FreqMHz        float64
	Slices         int
	BRAMs          int
	// Simulated marks rows computed from a model in this package rather
	// than transcribed from the cited paper.
	Simulated bool
}

// PipelinedGCM models a fully unrolled AES-GCM pipeline (Lemsitzer et al.,
// CHES 2007): once filled, the pipeline retires DatapathBits per cycle.
// Flexibility is the price — the unrolled datapath is fixed-function, and
// data-dependent modes (CBC-MAC, hence CCM) cannot use it at all (§II.B).
type PipelinedGCM struct {
	DatapathBits int // bits retired per cycle once the pipeline is full
	FillCycles   int // pipeline depth
}

// LemsitzerGCM is the paper's cited configuration: a 32-bit/cycle core
// (32 Mbps/MHz at 140 MHz on a Virtex-4 FX100).
var LemsitzerGCM = PipelinedGCM{DatapathBits: 32, FillCycles: 60}

// MbpsPerMHz returns steady-state throughput per MHz for packets of n bytes
// (the fill bubble amortizes over the packet).
func (p PipelinedGCM) MbpsPerMHz(packetBytes int) float64 {
	bits := float64(packetBytes) * 8
	cycles := bits/float64(p.DatapathBits) + float64(p.FillCycles)
	return bits / cycles
}

// IterativeCCM models the tightly coupled dual-AES CCM accelerators the
// paper cites (Aziz & Ikram): two iterative cores, one on CBC-MAC and one
// on CTR, retiring one block per AES latency.
type IterativeCCM struct {
	AESCycles int // iterative core latency per block
	Overhead  int // per-block control overhead
}

// AzizCCM approximates the cited 802.11i core (2.78 Mbps/MHz at 247 MHz).
var AzizCCM = IterativeCCM{AESCycles: 44, Overhead: 2}

// MbpsPerMHz returns throughput per MHz: both AES operations run in
// parallel on the two sub-cores, so one block retires per AES latency.
func (c IterativeCCM) MbpsPerMHz() float64 {
	return 128.0 / float64(c.AESCycles+c.Overhead)
}

// ProgrammableProcessor models a software-programmable crypto-processor by
// its per-block instruction budget: flexibility costs cycles.
type ProgrammableProcessor struct {
	Name           string
	CyclesPerBlock float64 // 128-bit block, headline algorithm
}

// Cycle budgets reverse-engineered from the cited papers' headline numbers
// (cycles = 128 bits / (Mbps/MHz)); the models exist so sweeps can ask
// "what if the MCCP firmware cost this much per block".
var (
	// Cryptonite: 2.25 Gbps AES-ECB at 400 MHz (VLIW, ASIC) -> ~22.8
	// cycles/block.
	Cryptonite = ProgrammableProcessor{Name: "Cryptonite", CyclesPerBlock: 128 / 5.62}
	// Celator: 46 Mbps AES-CBC at 190 MHz (PE matrix) -> ~533 cycles/block.
	Celator = ProgrammableProcessor{Name: "Celator", CyclesPerBlock: 128 / 0.24}
	// CryptoManiac: 512 Mbps AES at 360 MHz (4-wide VLIW) -> ~90
	// cycles/block.
	CryptoManiac = ProgrammableProcessor{Name: "CryptoManiac", CyclesPerBlock: 128 / 1.42}
)

// MbpsPerMHz returns throughput per MHz.
func (p ProgrammableProcessor) MbpsPerMHz() float64 { return 128 / p.CyclesPerBlock }

// PublishedRows returns the literature rows exactly as Table III prints
// them.
func PublishedRows() []Row {
	return []Row{
		{Implementation: "Cryptonite [4]", Platform: "ASIC", Programmable: true, Algorithm: "ECB",
			MbpsPerMHz: 5.62, FreqMHz: 400},
		{Implementation: "Celator [15]", Platform: "ASIC", Programmable: true, Algorithm: "CBC",
			MbpsPerMHz: 0.24, FreqMHz: 190},
		{Implementation: "CryptoManiac [16]", Platform: "ASIC", Programmable: true, Algorithm: "ECB",
			MbpsPerMHz: 1.42, FreqMHz: 360},
		{Implementation: "A. Aziz et al. [3]", Platform: "x3s200-5", Programmable: false, Algorithm: "CCM",
			MbpsPerMHz: 2.78, FreqMHz: 247, Slices: 487, BRAMs: 4},
		{Implementation: "S. Lemsitzer et al. [1]", Platform: "v4-FX100", Programmable: false, Algorithm: "GCM",
			MbpsPerMHz: 32.00, FreqMHz: 140, Slices: 6000, BRAMs: 30},
	}
}
