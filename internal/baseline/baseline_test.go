package baseline

import "testing"

func TestPublishedRowsMatchTableIII(t *testing.T) {
	rows := PublishedRows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]float64{
		"Cryptonite [4]":          5.62,
		"Celator [15]":            0.24,
		"CryptoManiac [16]":       1.42,
		"A. Aziz et al. [3]":      2.78,
		"S. Lemsitzer et al. [1]": 32.00,
	}
	for _, r := range rows {
		if w, ok := want[r.Implementation]; !ok || r.MbpsPerMHz != w {
			t.Errorf("%s: %.2f Mbps/MHz, want %.2f", r.Implementation, r.MbpsPerMHz, w)
		}
	}
}

func TestModelsReproducePublishedNumbers(t *testing.T) {
	// The cycle models must land on the published per-MHz figures they
	// were derived from, within rounding.
	if got := LemsitzerGCM.MbpsPerMHz(1 << 20); got < 31 || got > 32 {
		t.Errorf("pipelined GCM asymptote = %.2f, want ~32", got)
	}
	if got := AzizCCM.MbpsPerMHz(); got < 2.5 || got > 3.0 {
		t.Errorf("iterative CCM = %.2f, want ~2.78", got)
	}
	for _, p := range []ProgrammableProcessor{Cryptonite, Celator, CryptoManiac} {
		pub := map[string]float64{"Cryptonite": 5.62, "Celator": 0.24, "CryptoManiac": 1.42}[p.Name]
		if got := p.MbpsPerMHz(); got < pub*0.99 || got > pub*1.01 {
			t.Errorf("%s = %.3f Mbps/MHz, want %.2f", p.Name, got, pub)
		}
	}
}

func TestPipelineFillAmortizes(t *testing.T) {
	// Small packets pay the fill bubble; the paper's point that pipelined
	// cores suit bulk mono-standard traffic.
	small := LemsitzerGCM.MbpsPerMHz(64)
	big := LemsitzerGCM.MbpsPerMHz(2048)
	if small >= big {
		t.Errorf("fill bubble should penalize small packets: %.1f vs %.1f", small, big)
	}
	// 2 KB packets still carry ~10% fill bubble (512 payload cycles + 60
	// fill); the asymptote is only reached by very long packets.
	if big < 28 {
		t.Errorf("2KB packets should be within ~12%% of the asymptote, got %.1f", big)
	}
}

// TestTableIIIOrdering pins the comparison's qualitative shape: the MCCP
// (≈8-10 Mbps/MHz) beats every programmable design and loses to the
// unrolled pipeline — using the paper's own published numbers.
func TestTableIIIOrdering(t *testing.T) {
	const oursGCM = 9.91 // paper's printed figure; the harness remeasures
	for _, p := range []ProgrammableProcessor{Cryptonite, Celator, CryptoManiac} {
		if p.MbpsPerMHz() >= oursGCM {
			t.Errorf("%s (%.2f) should trail the MCCP (%.2f)", p.Name, p.MbpsPerMHz(), oursGCM)
		}
	}
	if LemsitzerGCM.MbpsPerMHz(2048) <= oursGCM {
		t.Error("the fixed-function pipeline should lead the MCCP per MHz")
	}
}
