package ghash

import (
	stdaes "crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"

	"mccp/internal/bits"
)

// TestMulKnownVector checks GHASH against SP 800-38D test case 2
// (Key = 0, P = 0^128): H = AES_0(0^128), GHASH_H(C) with
// C = AES_0(J0+1 block) feeding into the known tag path. Rather than
// transcribing intermediate values, we verify against crypto/cipher's GCM in
// TestGHASHMatchesStdGCM; here we pin the simplest algebraic anchors.
func TestMulAlgebra(t *testing.T) {
	one := bits.Block{0x80} // the polynomial "1" in GCM bit order
	x := bits.BlockFromHex("66e94bd4ef8a2c3b884cfa59ca342b2e")
	if got := Mul(x, one); got != x {
		t.Errorf("x*1 = %s, want %s", got.Hex(), x.Hex())
	}
	if got := Mul(one, x); got != x {
		t.Errorf("1*x = %s, want %s", got.Hex(), x.Hex())
	}
	var zero bits.Block
	if got := Mul(x, zero); got != zero {
		t.Errorf("x*0 = %s, want 0", got.Hex())
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a, b bits.Block) bool {
		return Mul(a, b) == Mul(b, a)
	}, cfg); err != nil {
		t.Error("commutativity:", err)
	}
	if err := quick.Check(func(a, b, c bits.Block) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, cfg); err != nil {
		t.Error("associativity:", err)
	}
	if err := quick.Check(func(a, b, c bits.Block) bool {
		return Mul(a, b.XOR(c)) == Mul(a, b).XOR(Mul(a, c))
	}, cfg); err != nil {
		t.Error("distributivity:", err)
	}
}

func TestDigitSerialMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3, 4, 8, 16, 32, 128} {
		for i := 0; i < 50; i++ {
			var a, b bits.Block
			rng.Read(a[:])
			rng.Read(b[:])
			if MulDigitSerial(a, b, d) != Mul(a, b) {
				t.Fatalf("digit width %d mismatch for %s * %s", d, a.Hex(), b.Hex())
			}
		}
	}
}

func TestDigitSerialCycles(t *testing.T) {
	// Paper: 3-bit digits, 43 cycles.
	if got := DigitSerialCycles(3); got != 43 {
		t.Errorf("3-bit digit cycles = %d, want 43", got)
	}
	if got := DigitSerialCycles(1); got != 128 {
		t.Errorf("1-bit digit cycles = %d, want 128", got)
	}
	if got := DigitSerialCycles(128); got != 1 {
		t.Errorf("128-bit digit cycles = %d, want 1", got)
	}
}

// TestGHASHMatchesStdGCM recomputes a GCM tag from first principles using
// our GHASH and AES-CTR from the stdlib cipher, and compares with
// crypto/cipher.NewGCM output. This pins the bit conventions exactly.
func TestGHASHMatchesStdGCM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		key := make([]byte, 16)
		nonce := make([]byte, 12)
		rng.Read(key)
		rng.Read(nonce)
		pt := make([]byte, rng.Intn(80))
		aad := make([]byte, rng.Intn(40))
		rng.Read(pt)
		rng.Read(aad)

		blk, _ := stdaes.NewCipher(key)
		gcm, _ := cipher.NewGCM(blk)
		sealed := gcm.Seal(nil, nonce, pt, aad)
		ct, wantTag := sealed[:len(pt)], sealed[len(pt):]

		// H = E_K(0); J0 = nonce || 0^31 || 1.
		var h bits.Block
		blk.Encrypt(h[:], h[:])
		var j0 bits.Block
		copy(j0[:12], nonce)
		j0[15] = 1

		// GHASH over padded AAD, padded CT, then the lengths block.
		var blocks []bits.Block
		blocks = append(blocks, bits.PadBlocks(aad)...)
		blocks = append(blocks, bits.PadBlocks(ct)...)
		var lens bits.Block
		putLen := func(off int, n int) {
			v := uint64(n) * 8
			for k := 0; k < 8; k++ {
				lens[off+k] = byte(v >> uint(56-8*k))
			}
		}
		putLen(0, len(aad))
		putLen(8, len(ct))
		blocks = append(blocks, lens)

		s := GHASH(h, blocks)
		var ekj0 bits.Block
		blk.Encrypt(ekj0[:], j0[:])
		tag := s.XOR(ekj0)
		if string(tag[:]) != string(wantTag) {
			t.Fatalf("tag mismatch: got %s want %x", tag.Hex(), wantTag)
		}
	}
}

func TestCoreTiming(t *testing.T) {
	c := NewCore()
	h := bits.BlockFromHex("66e94bd4ef8a2c3b884cfa59ca342b2e")
	c.LoadH(h)
	x := bits.BlockFromHex("0388dace60b6a392f328c2b971b2fe78")
	ready := c.Start(100, x)
	if ready != 143 {
		t.Errorf("ReadyAt = %d, want 143 (100 + 43)", ready)
	}
	if !c.Busy() {
		t.Error("core should be busy")
	}
	got := c.Collect()
	want := Mul(x, h)
	if got != want {
		t.Errorf("acc = %s, want %s", got.Hex(), want.Hex())
	}
	// Accumulation continues across Collect.
	c.Start(200, x)
	got2 := c.Collect()
	want2 := Mul(want.XOR(x), h)
	if got2 != want2 {
		t.Errorf("second acc = %s, want %s", got2.Hex(), want2.Hex())
	}
	// LoadH resets the accumulator.
	c.LoadH(h)
	if acc := c.Collect(); !acc.IsZero() {
		t.Errorf("acc after LoadH = %s, want 0", acc.Hex())
	}
}

func BenchmarkMulBitSerial(b *testing.B) {
	x := bits.BlockFromHex("66e94bd4ef8a2c3b884cfa59ca342b2e")
	y := bits.BlockFromHex("0388dace60b6a392f328c2b971b2fe78")
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
}
