// Package ghash implements the GHASH universal hash over GF(2^128) used by
// GCM (NIST SP 800-38D), together with a timing model of the digit-serial
// multiplier the paper instantiates (Lemsitzer et al., CHES 2007: 3-bit
// digits, one 128-bit multiplication in 43 clock cycles).
//
// GF(2^128) elements use GCM's reflected convention: bit 0 of byte 0 of a
// block is the coefficient of x^0, and the field polynomial is
// x^128 + x^7 + x^2 + x + 1.
package ghash

import "mccp/internal/bits"

// Mul returns x*y in GF(2^128) under the GCM bit convention. This is the
// bit-serial reference used for correctness; MulDigitSerial below models the
// hardware datapath and must agree with it (a property test checks this).
func Mul(x, y bits.Block) bits.Block {
	var z bits.Block
	v := y
	for i := 0; i < 128; i++ {
		// Bit i of x, in GCM order: byte i/8, MSB first within the byte.
		if x[i/8]&(0x80>>uint(i%8)) != 0 {
			z = z.XOR(v)
		}
		v = shiftRight1(v)
	}
	return z
}

// shiftRight1 multiplies v by x: a right shift in the reflected
// representation, with reduction by the field polynomial (XOR of 0xE1 into
// the top byte) when the bit shifted out of position 127 is set.
func shiftRight1(v bits.Block) bits.Block {
	lsb := v[15] & 1
	var r bits.Block
	var carry byte
	for i := 0; i < 16; i++ {
		b := v[i]
		r[i] = b>>1 | carry
		carry = b << 7
	}
	if lsb != 0 {
		r[0] ^= 0xE1
	}
	return r
}

// GHASH computes GHASH_H over the given blocks: Y_0 = 0,
// Y_i = (Y_{i-1} XOR X_i) * H.
func GHASH(h bits.Block, blocks []bits.Block) bits.Block {
	var y bits.Block
	for _, x := range blocks {
		y = Mul(y.XOR(x), h)
	}
	return y
}

// DefaultDigitBits is the digit width of the paper's multiplier ("digit-
// serial multiplication is made using 3-bit digits and it is computed in 43
// clock cycles").
const DefaultDigitBits = 3

// DigitSerialCycles returns the cycle count of one 128-bit multiplication
// with the given digit width: ceil(128/d) digits plus a one-cycle load stage.
// For d=3 this is ceil(128/3)+0 = 43, matching the paper.
func DigitSerialCycles(digitBits int) uint64 {
	if digitBits <= 0 || digitBits > 128 {
		panic("ghash: digit width out of range")
	}
	return uint64((128 + digitBits - 1) / digitBits)
}

// MulDigitSerial is the digit-serial multiplier's functional model. The
// digit width only affects the cycle count (DigitSerialCycles); the product
// is the plain GF(2^128) product for every width, so the value is computed
// by the fast windowed multiply and is bit-identical to Mul (a property
// test checks this across widths).
func MulDigitSerial(x, y bits.Block, digitBits int) bits.Block {
	if digitBits <= 0 || digitBits > 128 {
		panic("ghash: digit width out of range")
	}
	var t mulTable
	t.init(y)
	return t.mul(x)
}

// fieldEl is a GF(2^128) element split into two big-endian uint64 halves,
// still in GCM's reflected bit convention.
type fieldEl struct{ low, high uint64 }

func blockToEl(b bits.Block) fieldEl {
	return fieldEl{
		low: uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]),
		high: uint64(b[8])<<56 | uint64(b[9])<<48 | uint64(b[10])<<40 | uint64(b[11])<<32 |
			uint64(b[12])<<24 | uint64(b[13])<<16 | uint64(b[14])<<8 | uint64(b[15]),
	}
}

func elToBlock(e fieldEl) bits.Block {
	var b bits.Block
	for i := 0; i < 8; i++ {
		b[i] = byte(e.low >> uint(56-8*i))
		b[8+i] = byte(e.high >> uint(56-8*i))
	}
	return b
}

// elDouble multiplies by x (a right shift in the reflected representation,
// reducing by the field polynomial when a bit falls off position 127).
func elDouble(e fieldEl) fieldEl {
	msbSet := e.high&1 == 1
	var d fieldEl
	d.high = e.high>>1 | e.low<<63
	d.low = e.low >> 1
	if msbSet {
		d.low ^= 0xe100000000000000
	}
	return d
}

// reductionTable folds the four bits shifted out of a windowed step back
// into the top of the element (the standard 4-bit GHASH reduction).
var reductionTable = [16]uint16{
	0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
	0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
}

// reverse4 reverses a 4-bit value (table indices are bit-reversed so the
// multiply loop can consume plain 4-bit digits).
func reverse4(i int) int {
	return i&8>>3 | i&4>>1 | i&2<<1 | i&1<<3
}

// mulTable holds the 16 small multiples of a fixed multiplicand for the
// 4-bit windowed multiply. The GHASH core caches one per LoadH, so the
// per-block cost is 32 table steps instead of 128 shift-and-adds.
type mulTable [16]fieldEl

func (t *mulTable) init(y bits.Block) {
	x := blockToEl(y)
	t[reverse4(1)] = x
	for i := 2; i < 16; i += 2 {
		d := elDouble(t[reverse4(i/2)])
		t[reverse4(i)] = d
		t[reverse4(i+1)] = fieldEl{low: d.low ^ x.low, high: d.high ^ x.high}
	}
}

func (t *mulTable) mul(x bits.Block) bits.Block {
	e := blockToEl(x)
	var z fieldEl
	for i := 0; i < 2; i++ {
		word := e.high
		if i == 1 {
			word = e.low
		}
		for j := 0; j < 64; j += 4 {
			msw := z.high & 0xf
			z.high = z.high>>4 | z.low<<60
			z.low = z.low>>4 ^ uint64(reductionTable[msw])<<48
			m := t[word&0xf]
			z.low ^= m.low
			z.high ^= m.high
			word >>= 4
		}
	}
	return elToBlock(z)
}

// Core models the GHASH core inside each Cryptographic Unit: it holds the
// hash subkey H (loaded by the LOADH instruction) and an accumulator that
// SGFM updates in the background while FGFM reads it out. One SGFM costs
// DigitSerialCycles(DigitBits) cycles.
type Core struct {
	// DigitBits selects the multiplier digit width; zero means DefaultDigitBits.
	DigitBits int

	h         bits.Block
	htable    mulTable // windowed multiples of h, rebuilt by LoadH
	acc       bits.Block
	busyUntil uint64
	busy      bool
}

// NewCore returns a core with the paper's 3-bit-digit multiplier.
func NewCore() *Core { return &Core{DigitBits: DefaultDigitBits} }

// LoadH installs the hash subkey and clears the accumulator; this is the
// LOADH instruction ("loads the computed H constant into the GHASH core").
func (c *Core) LoadH(h bits.Block) {
	c.h = h
	c.htable.init(h)
	c.acc = bits.Block{}
	c.busy = false
}

// Cycles returns the latency of one GHASH iteration.
func (c *Core) Cycles() uint64 {
	d := c.DigitBits
	if d == 0 {
		d = DefaultDigitBits
	}
	return DigitSerialCycles(d)
}

// Start begins one iteration acc = (acc XOR x) * H at absolute cycle now and
// returns the completion cycle (the SGFM instruction).
func (c *Core) Start(now uint64, x bits.Block) uint64 {
	// The digit width sets the latency only; the product itself comes from
	// the cached windowed table for H (bit-identical, see MulDigitSerial).
	c.acc = c.htable.mul(c.acc.XOR(x))
	c.busyUntil = now + c.Cycles()
	c.busy = true
	return c.busyUntil
}

// Busy reports whether an iteration is in flight.
func (c *Core) Busy() bool { return c.busy }

// ReadyAt returns the completion cycle of the iteration in flight.
func (c *Core) ReadyAt() uint64 { return c.busyUntil }

// Collect returns the accumulator (the FGFM instruction) and marks the core
// idle. The accumulator is preserved so hashing can continue afterwards
// (GCM reads the running MAC only once, after the lengths block).
func (c *Core) Collect() bits.Block {
	c.busy = false
	return c.acc
}
