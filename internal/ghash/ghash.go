// Package ghash implements the GHASH universal hash over GF(2^128) used by
// GCM (NIST SP 800-38D), together with a timing model of the digit-serial
// multiplier the paper instantiates (Lemsitzer et al., CHES 2007: 3-bit
// digits, one 128-bit multiplication in 43 clock cycles).
//
// GF(2^128) elements use GCM's reflected convention: bit 0 of byte 0 of a
// block is the coefficient of x^0, and the field polynomial is
// x^128 + x^7 + x^2 + x + 1.
package ghash

import "mccp/internal/bits"

// Mul returns x*y in GF(2^128) under the GCM bit convention. This is the
// bit-serial reference used for correctness; MulDigitSerial below models the
// hardware datapath and must agree with it (a property test checks this).
func Mul(x, y bits.Block) bits.Block {
	var z bits.Block
	v := y
	for i := 0; i < 128; i++ {
		// Bit i of x, in GCM order: byte i/8, MSB first within the byte.
		if x[i/8]&(0x80>>uint(i%8)) != 0 {
			z = z.XOR(v)
		}
		v = shiftRight1(v)
	}
	return z
}

// shiftRight1 multiplies v by x: a right shift in the reflected
// representation, with reduction by the field polynomial (XOR of 0xE1 into
// the top byte) when the bit shifted out of position 127 is set.
func shiftRight1(v bits.Block) bits.Block {
	lsb := v[15] & 1
	var r bits.Block
	var carry byte
	for i := 0; i < 16; i++ {
		b := v[i]
		r[i] = b>>1 | carry
		carry = b << 7
	}
	if lsb != 0 {
		r[0] ^= 0xE1
	}
	return r
}

// GHASH computes GHASH_H over the given blocks: Y_0 = 0,
// Y_i = (Y_{i-1} XOR X_i) * H.
func GHASH(h bits.Block, blocks []bits.Block) bits.Block {
	var y bits.Block
	for _, x := range blocks {
		y = Mul(y.XOR(x), h)
	}
	return y
}

// DefaultDigitBits is the digit width of the paper's multiplier ("digit-
// serial multiplication is made using 3-bit digits and it is computed in 43
// clock cycles").
const DefaultDigitBits = 3

// DigitSerialCycles returns the cycle count of one 128-bit multiplication
// with the given digit width: ceil(128/d) digits plus a one-cycle load stage.
// For d=3 this is ceil(128/3)+0 = 43, matching the paper.
func DigitSerialCycles(digitBits int) uint64 {
	if digitBits <= 0 || digitBits > 128 {
		panic("ghash: digit width out of range")
	}
	return uint64((128 + digitBits - 1) / digitBits)
}

// MulDigitSerial multiplies processing digitBits coefficient bits of x per
// iteration, mirroring the hardware schedule: each cycle the partial product
// accumulates digitBits shifted copies of the multiplicand. The result is
// bit-identical to Mul for every digit width.
func MulDigitSerial(x, y bits.Block, digitBits int) bits.Block {
	var z bits.Block
	v := y
	bit := 0
	for bit < 128 {
		for d := 0; d < digitBits && bit < 128; d++ {
			if x[bit/8]&(0x80>>uint(bit%8)) != 0 {
				z = z.XOR(v)
			}
			v = shiftRight1(v)
			bit++
		}
	}
	return z
}

// Core models the GHASH core inside each Cryptographic Unit: it holds the
// hash subkey H (loaded by the LOADH instruction) and an accumulator that
// SGFM updates in the background while FGFM reads it out. One SGFM costs
// DigitSerialCycles(DigitBits) cycles.
type Core struct {
	// DigitBits selects the multiplier digit width; zero means DefaultDigitBits.
	DigitBits int

	h         bits.Block
	acc       bits.Block
	busyUntil uint64
	busy      bool
}

// NewCore returns a core with the paper's 3-bit-digit multiplier.
func NewCore() *Core { return &Core{DigitBits: DefaultDigitBits} }

// LoadH installs the hash subkey and clears the accumulator; this is the
// LOADH instruction ("loads the computed H constant into the GHASH core").
func (c *Core) LoadH(h bits.Block) {
	c.h = h
	c.acc = bits.Block{}
	c.busy = false
}

// Cycles returns the latency of one GHASH iteration.
func (c *Core) Cycles() uint64 {
	d := c.DigitBits
	if d == 0 {
		d = DefaultDigitBits
	}
	return DigitSerialCycles(d)
}

// Start begins one iteration acc = (acc XOR x) * H at absolute cycle now and
// returns the completion cycle (the SGFM instruction).
func (c *Core) Start(now uint64, x bits.Block) uint64 {
	d := c.DigitBits
	if d == 0 {
		d = DefaultDigitBits
	}
	c.acc = MulDigitSerial(c.acc.XOR(x), c.h, d)
	c.busyUntil = now + c.Cycles()
	c.busy = true
	return c.busyUntil
}

// Busy reports whether an iteration is in flight.
func (c *Core) Busy() bool { return c.busy }

// ReadyAt returns the completion cycle of the iteration in flight.
func (c *Core) ReadyAt() uint64 { return c.busyUntil }

// Collect returns the accumulator (the FGFM instruction) and marks the core
// idle. The accumulator is preserved so hashing can continue afterwards
// (GCM reads the running MAC only once, after the lengths block).
func (c *Core) Collect() bits.Block {
	c.busy = false
	return c.acc
}
