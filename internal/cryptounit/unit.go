// Package cryptounit models the MCCP's reconfigurable Cryptographic Unit
// (paper §V): a 32-bit-datapath execution unit with a 4x128-bit bank
// register, a pluggable 128-bit cipher engine (AES in the paper's main
// build; Whirlpool or Twofish after partial reconfiguration), a GHASH core,
// a masked Xor/Comparator, a 16-bit incrementer and FIFO / inter-core I/O.
//
// Timing is calibrated to the paper's published figures:
//
//   - simple operations (XOR, INC, EQU, LOADH, MOV, NOP, LOAD, STORE) signal
//     done 6 cycles after acceptance — the paper quotes "seven clock cycles
//     from start rising edge to done falling edge" and its loop formula
//     T_CCM2core - T_GCM = T_XOR fixes the controller-visible cost at 6;
//   - SAES/SGFM are start instructions: they occupy the unit for 2 cycles
//     and launch the engine in the background (44/52/60 cycles for AES,
//     43 for a GHASH iteration);
//   - FAES/FGFM are finalize instructions: they complete 5 cycles after the
//     background engine finishes, so a serialized SAES;FAES pair costs
//     44+5 = 49 cycles with a 128-bit key, reproducing T_GCMloop = 49.
package cryptounit

import (
	"fmt"

	"mccp/internal/bits"
	"mccp/internal/cuisa"
	"mccp/internal/ghash"
	"mccp/internal/sim"
)

// Latency constants (clock cycles). See the package comment for their
// derivation from the paper's loop formulas.
const (
	SimpleLatency   = 6 // XOR, INC, EQU, LOADH, MOV, NOP, LOAD, STORE
	StartLatency    = 2 // SAES, SGFM foreground occupancy
	FinalizeLatency = 5 // FAES, FGFM after engine completion
	ShiftOutLatency = 2 // SHOUT once the mailbox is free
	ShiftInLatency  = 6 // SHIN once data is present (4x32-bit transfer)
)

// CipherEngine is the contract of the reconfigurable region: a background
// block-processing engine driven by the SAES/FAES instruction pair.
// aes.Core32, whirlpool.Engine and twofish.Engine implement it.
//
// Engines whose result is wider than one block (hash engines) additionally
// implement ChunkReader: FAES issued while the engine is idle reads the next
// 128-bit result chunk instead of collecting a block computation.
type CipherEngine interface {
	// Busy reports whether a started computation has not been collected.
	Busy() bool
	// ReadyAt returns the completion cycle of the computation in flight.
	ReadyAt() uint64
	// Start begins processing in at cycle now, returning the ready cycle.
	Start(now uint64, in bits.Block) uint64
	// Collect returns the result and idles the engine.
	Collect() bits.Block
}

// ChunkReader is the wide-result extension of CipherEngine (see above).
type ChunkReader interface {
	// ReadChunk returns the next 128-bit chunk of the engine's result
	// (e.g. one quarter of a 512-bit Whirlpool digest).
	ReadChunk() bits.Block
}

// Unit is one Cryptographic Unit instance.
type Unit struct {
	eng *sim.Engine

	// In and Out are the core's packet FIFOs (512 x 32 bits each in the
	// paper). LOAD pops four words, STORE pushes four.
	In, Out *sim.WordFIFO
	// MboxIn and MboxOut are the inter-core shift-register ports. They may
	// be nil on cores whose firmware never uses SHIN/SHOUT.
	MboxIn, MboxOut *sim.Mailbox128

	// Cipher occupies the reconfigurable region. Swapping it at runtime is
	// the partial-reconfiguration path (internal/reconfig).
	Cipher CipherEngine
	// GHash is the digit-serial GHASH core (static region).
	GHash *ghash.Core

	bank    [4]bits.Block
	mask    uint16
	maskBlk bits.Block // cached bits.ByteMask(mask)
	equ     bool

	busy        bool
	idleWaiters *sim.Waiters

	// Single-slot stalled issue. The controller blocks on the start/ack
	// handshake, so at most one instruction is ever waiting to be latched;
	// holding it in fields with a prebuilt retry callback keeps the
	// (extremely hot) stall path allocation-free. A second concurrent
	// issue — only possible from tests driving the port directly — falls
	// back to a closure.
	stalled     bool
	stallIn     cuisa.Instr
	stallAccept func()
	stallRetry  func()

	// Completion plumbing. One foreground instruction executes at a time,
	// so a single pending-effect slot suffices: tick fires the completion
	// event, applying pendingFn (a prebuilt per-opcode callback bound to
	// effA/effB) and idling the unit. Keeping the callbacks prebuilt makes
	// the per-instruction hot path allocation-free.
	tick       *sim.Ticker
	pendingFn  func()
	effA, effB int
	effLoadH   func()
	effFGFM    func()
	effFAES    func()
	effChunk   func()
	effINC     func()
	effXOR     func()
	effEQU     func()
	effMOV     func()
	effSTORE   func()

	// Trace, when non-nil, receives every accepted instruction with its
	// acceptance cycle (used by the disassembling tracer and tests).
	Trace func(now sim.Time, in cuisa.Instr)
	// OnDone, when non-nil, fires at every instruction completion: it is
	// the done line the paper routes to the controller's wake input.
	OnDone func()

	// IssueCount tallies accepted instructions per opcode for utilization
	// metrics and the ablation benches.
	IssueCount [16]uint64
}

// New returns a Unit bound to the simulation engine with the given FIFOs.
// The cipher engine and mailboxes are wired by the enclosing Cryptographic
// Core.
func New(eng *sim.Engine, in, out *sim.WordFIFO) *Unit {
	u := &Unit{
		eng:         eng,
		In:          in,
		Out:         out,
		GHash:       ghash.NewCore(),
		mask:        0xFFFF,
		maskBlk:     bits.ByteMask(0xFFFF),
		idleWaiters: sim.NewWaiters(eng),
	}
	u.tick = eng.NewTicker(func() {
		if fn := u.pendingFn; fn != nil {
			u.pendingFn = nil
			fn()
		}
		u.complete()
	})
	u.effLoadH = func() { u.GHash.LoadH(u.bank[u.effA]) }
	u.effFGFM = func() { u.bank[u.effA] = u.GHash.Collect() }
	u.effFAES = func() { u.bank[u.effA] = u.Cipher.Collect() }
	u.effChunk = func() { u.bank[u.effA] = u.Cipher.(ChunkReader).ReadChunk() }
	u.effINC = func() { u.bank[u.effA] = u.bank[u.effA].Inc16(uint16(u.effB) + 1) }
	u.effXOR = func() { u.bank[u.effB] = u.bank[u.effA].XOR(u.bank[u.effB]).AND(u.maskBlk) }
	u.effEQU = func() { u.equ = u.bank[u.effA].XOR(u.bank[u.effB]).AND(u.maskBlk).IsZero() }
	u.effMOV = func() { u.bank[u.effB] = u.bank[u.effA] }
	u.effSTORE = func() {
		v := u.bank[u.effA]
		for i := 0; i < 4; i++ {
			if !u.Out.TryPush(v.Word(i)) {
				panic("cryptounit: FIFO overflow after CanPush")
			}
		}
	}
	u.stallRetry = func() {
		in, acc := u.stallIn, u.stallAccept
		u.stalled, u.stallAccept = false, nil
		u.Issue(in, acc)
	}
	return u
}

// SetMask writes the 16-bit byte mask used by XOR and EQU. The controller
// writes it through its port map; each 8-bit half costs a controller OUTPUT
// instruction, which the controller model accounts for.
func (u *Unit) SetMask(m uint16) {
	u.mask = m
	u.maskBlk = bits.ByteMask(m)
}

// Mask returns the current byte mask.
func (u *Unit) Mask() uint16 { return u.mask }

// Equ returns the comparator flag set by the last EQU instruction.
func (u *Unit) Equ() bool { return u.equ }

// Bank returns bank register r (tests and the tracer use it; firmware can
// only move data through instructions).
func (u *Unit) Bank(r int) bits.Block { return u.bank[r] }

// SetBank overwrites bank register r. Only tests use this; hardware has no
// such path.
func (u *Unit) SetBank(r int, v bits.Block) { u.bank[r] = v }

// Busy reports whether a foreground instruction is executing.
func (u *Unit) Busy() bool { return u.busy }

// Reset clears architectural state between channels (bank, flags, mask).
// Background engines must be idle.
func (u *Unit) Reset() {
	if u.busy || (u.Cipher != nil && u.Cipher.Busy()) {
		panic("cryptounit: Reset while busy")
	}
	u.bank = [4]bits.Block{}
	u.equ = false
	u.mask = 0xFFFF
	u.maskBlk = bits.ByteMask(0xFFFF)
}

// WhenIdle parks fn until no foreground instruction is executing. The
// controller's HALT instruction and the issue path both use it.
func (u *Unit) WhenIdle(fn func()) {
	if !u.busy {
		u.eng.After(0, fn)
		return
	}
	u.idleWaiters.Park(fn)
}

// Issue presents an instruction on the instruction port. If the unit is
// still executing, the issue stalls (the start/ack handshake of §V.B);
// onAccept runs at the cycle the unit latches the instruction.
func (u *Unit) Issue(in cuisa.Instr, onAccept func()) {
	if u.busy {
		if !u.stalled {
			u.stalled = true
			u.stallIn, u.stallAccept = in, onAccept
			u.idleWaiters.Park(u.stallRetry)
		} else {
			u.idleWaiters.Park(func() { u.Issue(in, onAccept) })
		}
		return
	}
	u.busy = true
	now := u.eng.Now()
	u.IssueCount[in.Op()&0xF]++
	if u.Trace != nil {
		u.Trace(now, in)
	}
	if onAccept != nil {
		u.eng.After(0, onAccept)
	}
	u.execute(in)
}

// complete idles the unit and wakes HALTed controllers / stalled issues.
func (u *Unit) complete() {
	u.busy = false
	u.idleWaiters.Release()
	if u.OnDone != nil {
		u.OnDone()
	}
}

// doneAfter schedules the instruction's completion d cycles out; fn (nil,
// or one of the prebuilt effect callbacks) applies the architectural effect
// at the done edge. Only one instruction is in flight, so the single
// pending slot cannot be overwritten.
func (u *Unit) doneAfter(d sim.Time, fn func()) {
	u.pendingFn = fn
	u.tick.After(d)
}

func (u *Unit) execute(in cuisa.Instr) {
	a, b := int(in.A()), int(in.B())
	now := uint64(u.eng.Now())
	switch in.Op() {
	case cuisa.OpNOP, cuisa.OpRSV1, cuisa.OpRSV2:
		u.doneAfter(SimpleLatency, nil)

	case cuisa.OpLOAD:
		u.loadWhenReady(a)

	case cuisa.OpSTORE:
		u.storeWhenReady(a)

	case cuisa.OpLOADH:
		u.effA = a
		u.doneAfter(SimpleLatency, u.effLoadH)

	case cuisa.OpSGFM:
		start := now
		if u.GHash.Busy() && u.GHash.ReadyAt() > now {
			start = u.GHash.ReadyAt() // stall until the running iteration ends
		}
		u.GHash.Start(start, u.bank[a])
		u.doneAfter(sim.Time(start-now)+StartLatency, nil)

	case cuisa.OpFGFM:
		ready := now
		if u.GHash.Busy() && u.GHash.ReadyAt() > now {
			ready = u.GHash.ReadyAt()
		}
		u.effA = a
		u.doneAfter(sim.Time(ready-now)+FinalizeLatency, u.effFGFM)

	case cuisa.OpSAES:
		if u.Cipher == nil {
			panic("cryptounit: SAES with no cipher engine configured")
		}
		if u.Cipher.Busy() {
			panic(fmt.Sprintf("cryptounit: SAES at cycle %d while engine busy (firmware must FAES first)", now))
		}
		u.Cipher.Start(now, u.bank[a])
		u.doneAfter(StartLatency, nil)

	case cuisa.OpFAES:
		if u.Cipher == nil {
			panic("cryptounit: FAES with no cipher engine configured")
		}
		if !u.Cipher.Busy() {
			// Hash engines expose their wide result through the finalize
			// path: FAES on an idle ChunkReader reads the next digest chunk.
			if _, ok := u.Cipher.(ChunkReader); !ok {
				panic("cryptounit: FAES with no computation in flight")
			}
			ready := now
			if ra := u.Cipher.ReadyAt(); ra > now {
				ready = ra
			}
			u.effA = a
			u.doneAfter(sim.Time(ready-now)+FinalizeLatency, u.effChunk)
			return
		}
		ready := u.Cipher.ReadyAt()
		if ready < now {
			ready = now
		}
		u.effA = a
		u.doneAfter(sim.Time(ready-now)+FinalizeLatency, u.effFAES)

	case cuisa.OpINC:
		u.effA, u.effB = a, int(in.B())
		u.doneAfter(SimpleLatency, u.effINC)

	case cuisa.OpXOR:
		u.effA, u.effB = a, b
		u.doneAfter(SimpleLatency, u.effXOR)

	case cuisa.OpEQU:
		u.effA, u.effB = a, b
		u.doneAfter(SimpleLatency, u.effEQU)

	case cuisa.OpSHIN:
		u.shiftInWhenReady(a)

	case cuisa.OpSHOUT:
		u.shiftOutWhenReady(a)

	case cuisa.OpMOV:
		u.effA, u.effB = a, b
		u.doneAfter(SimpleLatency, u.effMOV)

	default:
		panic(fmt.Sprintf("cryptounit: invalid instruction %#02x", uint8(in)))
	}
}

// loadWhenReady waits for four words in the input FIFO, pops them and
// signals done SimpleLatency cycles later.
func (u *Unit) loadWhenReady(a int) {
	if !u.In.CanPop(4) {
		u.In.WhenPoppable(4, func() { u.loadWhenReady(a) })
		return
	}
	var w [4]uint32
	for i := range w {
		v, ok := u.In.TryPop()
		if !ok {
			panic("cryptounit: FIFO underflow after CanPop")
		}
		w[i] = v
	}
	u.bank[a] = bits.BlockFromWords(w)
	u.doneAfter(SimpleLatency, nil)
}

// storeWhenReady waits for space, then pushes the register at completion so
// downstream consumers observe the data when the instruction retires. (The
// bank cannot change in between — the unit stays busy — so the prebuilt
// effect reads it at the done edge.)
func (u *Unit) storeWhenReady(a int) {
	if !u.Out.CanPush(4) {
		u.Out.WhenPushable(4, func() { u.storeWhenReady(a) })
		return
	}
	u.effA = a
	u.doneAfter(SimpleLatency, u.effSTORE)
}

func (u *Unit) shiftInWhenReady(a int) {
	if u.MboxIn == nil {
		panic("cryptounit: SHIN with no inter-core input port")
	}
	w, ok := u.MboxIn.TryTake()
	if !ok {
		u.MboxIn.WhenTakeable(func() { u.shiftInWhenReady(a) })
		return
	}
	u.bank[a] = bits.BlockFromWords(w)
	u.doneAfter(ShiftInLatency, nil)
}

func (u *Unit) shiftOutWhenReady(a int) {
	if u.MboxOut == nil {
		panic("cryptounit: SHOUT with no inter-core output port")
	}
	if !u.MboxOut.TryPut(u.bank[a].Words()) {
		u.MboxOut.WhenPuttable(func() { u.shiftOutWhenReady(a) })
		return
	}
	u.doneAfter(ShiftOutLatency, nil)
}
