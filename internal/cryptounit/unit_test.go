package cryptounit

import (
	"testing"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/cuisa"
	"mccp/internal/sim"
)

// seq issues instructions back-to-back: each is issued as soon as the unit
// accepts it (modeling a controller with zero fetch overhead), and done is
// awaited before the next issue. It returns the total cycle count.
func seq(t *testing.T, eng *sim.Engine, u *Unit, ins ...cuisa.Instr) sim.Time {
	t.Helper()
	start := eng.Now()
	var step func(i int)
	step = func(i int) {
		if i == len(ins) {
			return
		}
		u.Issue(ins[i], nil)
		u.WhenIdle(func() { step(i + 1) })
	}
	step(0)
	eng.Run()
	return eng.Now() - start
}

func newUnit() (*sim.Engine, *Unit) {
	eng := sim.NewEngine()
	in := sim.NewWordFIFO(eng, 520)
	out := sim.NewWordFIFO(eng, 520)
	u := New(eng, in, out)
	core := aes.NewCore32()
	core.LoadKeys(aes.Key128, aes.ExpandKey(make([]byte, 16)))
	u.Cipher = core
	return eng, u
}

func pushBlock(f *sim.WordFIFO, b bits.Block) {
	for i := 0; i < 4; i++ {
		if !f.TryPush(b.Word(i)) {
			panic("test FIFO full")
		}
	}
}

func popBlock(f *sim.WordFIFO) bits.Block {
	var w [4]uint32
	for i := range w {
		v, ok := f.TryPop()
		if !ok {
			panic("test FIFO empty")
		}
		w[i] = v
	}
	return bits.BlockFromWords(w)
}

func TestLoadStoreMoveData(t *testing.T) {
	eng, u := newUnit()
	want := bits.BlockFromHex("00112233445566778899aabbccddeeff")
	pushBlock(u.In, want)
	cycles := seq(t, eng, u, cuisa.Load(2), cuisa.Store(2))
	if got := popBlock(u.Out); got != want {
		t.Errorf("store = %s, want %s", got.Hex(), want.Hex())
	}
	if cycles != 2*SimpleLatency {
		t.Errorf("LOAD+STORE = %d cycles, want %d", cycles, 2*SimpleLatency)
	}
}

func TestLoadBlocksUntilDataArrives(t *testing.T) {
	eng, u := newUnit()
	want := bits.BlockFromHex("000102030405060708090a0b0c0d0e0f")
	done := sim.Time(0)
	u.Issue(cuisa.Load(0), nil)
	u.WhenIdle(func() { done = eng.Now() })
	// Words trickle in one per 10 cycles starting at t=5.
	for i := 0; i < 4; i++ {
		w := want.Word(i)
		eng.At(sim.Time(5+10*i), func() { u.In.TryPush(w) })
	}
	eng.Run()
	if u.Bank(0) != want {
		t.Errorf("bank = %s", u.Bank(0).Hex())
	}
	if done != 35+SimpleLatency {
		t.Errorf("done at %d, want %d (last word at 35 + latency)", done, 35+SimpleLatency)
	}
}

func TestXORMaskEquInc(t *testing.T) {
	eng, u := newUnit()
	a := bits.BlockFromHex("ffffffffffffffffffffffffffffffff")
	b := bits.BlockFromHex("0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f")
	u.SetBank(0, a)
	u.SetBank(1, b)
	u.SetMask(0xFF00) // keep first 8 bytes only
	seq(t, eng, u, cuisa.Xor(0, 1))
	if got := u.Bank(1).Hex(); got != "f0f0f0f0f0f0f0f00000000000000000" {
		t.Errorf("XOR = %s", got)
	}
	// EQU under a mask compares only unmasked bytes (truncated tags).
	u.SetBank(2, bits.BlockFromHex("f0f0f0f0f0f0f0f0deadbeefdeadbeef"))
	seq(t, eng, u, cuisa.Equ(1, 2))
	if !u.Equ() {
		t.Error("masked EQU should ignore the last 8 bytes")
	}
	u.SetMask(0xFFFF)
	seq(t, eng, u, cuisa.Equ(1, 2))
	if u.Equ() {
		t.Error("full EQU should see the difference")
	}
	// INC steps the low 16 bits by 1..4.
	u.SetBank(3, bits.Block{})
	seq(t, eng, u, cuisa.Inc(3, 1), cuisa.Inc(3, 4))
	if u.Bank(3)[15] != 5 {
		t.Errorf("INC total = %d, want 5", u.Bank(3)[15])
	}
}

func TestMovAndXorSelfZero(t *testing.T) {
	eng, u := newUnit()
	v := bits.BlockFromHex("00112233445566778899aabbccddeeff")
	u.SetBank(0, v)
	seq(t, eng, u, cuisa.Mov(0, 3))
	if u.Bank(3) != v {
		t.Error("MOV failed")
	}
	// XOR @A,@A always zeroes @A regardless of mask — firmware's way of
	// materializing the zero block for H = E_K(0).
	u.SetMask(0x00FF)
	seq(t, eng, u, cuisa.Xor(3, 3))
	if !u.Bank(3).IsZero() {
		t.Error("XOR self should zero the register")
	}
}

func TestSAESFAESSerializedTiming(t *testing.T) {
	eng, u := newUnit()
	pt := bits.BlockFromHex("00112233445566778899aabbccddeeff")
	u.SetBank(0, pt)
	cycles := seq(t, eng, u, cuisa.SAES(0), cuisa.FAES(1))
	// T_SAES + T_FAES = 49 for a 128-bit key: the paper's GCM loop bound.
	if cycles != 49 {
		t.Errorf("SAES;FAES = %d cycles, want 49", cycles)
	}
	want := aes.MustNew(make([]byte, 16)).Encrypt(pt)
	if u.Bank(1) != want {
		t.Errorf("FAES result = %s, want %s", u.Bank(1).Hex(), want.Hex())
	}
}

func TestSAESFAESKeySizeScaling(t *testing.T) {
	// 192/256-bit keys add 8/16 cycles to the pair (52+5, 60+5).
	for _, tc := range []struct {
		size aes.KeySize
		want sim.Time
	}{{aes.Key128, 49}, {aes.Key192, 57}, {aes.Key256, 65}} {
		eng := sim.NewEngine()
		u := New(eng, sim.NewWordFIFO(eng, 8), sim.NewWordFIFO(eng, 8))
		core := aes.NewCore32()
		core.LoadKeys(tc.size, aes.ExpandKey(make([]byte, int(tc.size))))
		u.Cipher = core
		got := seq(t, eng, u, cuisa.SAES(0), cuisa.FAES(1))
		if got != tc.want {
			t.Errorf("%v SAES;FAES = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestBackgroundOverlapHidesForegroundWork(t *testing.T) {
	// SAES; 5 simple ops; FAES must still take 49 total: the simple ops
	// execute in the AES shadow. This is the mechanism behind Listing 1.
	eng, u := newUnit()
	cycles := seq(t, eng, u,
		cuisa.SAES(0),
		cuisa.Inc(1, 1), cuisa.Inc(1, 1), cuisa.Inc(1, 1), cuisa.Inc(1, 1), cuisa.Inc(1, 1),
		cuisa.FAES(2),
	)
	if cycles != 49 {
		t.Errorf("overlapped sequence = %d cycles, want 49", cycles)
	}
}

func TestSGFMFGFMTiming(t *testing.T) {
	eng, u := newUnit()
	h := bits.BlockFromHex("66e94bd4ef8a2c3b884cfa59ca342b2e")
	x := bits.BlockFromHex("0388dace60b6a392f328c2b971b2fe78")
	u.SetBank(0, h)
	u.SetBank(1, x)
	cycles := seq(t, eng, u, cuisa.LoadH(0), cuisa.SGFM(1), cuisa.FGFM(2))
	// LOADH(6) + SGFM start(2) + stall to 43 + finalize(5) = 6 + 43 + 5.
	if cycles != 6+43+5 {
		t.Errorf("LOADH;SGFM;FGFM = %d cycles, want %d", cycles, 6+43+5)
	}
	want := mulRef(x, h)
	if u.Bank(2) != want {
		t.Errorf("GHASH = %s, want %s", u.Bank(2).Hex(), want.Hex())
	}
}

// mulRef avoids importing ghash's internals twice; GHASH of a single block
// X with zeroed accumulator is X*H.
func mulRef(x, h bits.Block) bits.Block {
	var z bits.Block
	v := h
	for i := 0; i < 128; i++ {
		if x[i/8]&(0x80>>uint(i%8)) != 0 {
			z = z.XOR(v)
		}
		lsb := v[15] & 1
		var r bits.Block
		var carry byte
		for j := 0; j < 16; j++ {
			b := v[j]
			r[j] = b>>1 | carry
			carry = b << 7
		}
		if lsb != 0 {
			r[0] ^= 0xE1
		}
		v = r
	}
	return z
}

func TestSAESWhileBusyPanics(t *testing.T) {
	eng, u := newUnit()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on SAES while engine busy")
		}
	}()
	u.Issue(cuisa.SAES(0), nil)
	u.WhenIdle(func() { u.Issue(cuisa.SAES(1), nil) })
	eng.Run()
}

func TestIssueStallsWhileBusy(t *testing.T) {
	eng, u := newUnit()
	var accepted sim.Time
	u.Issue(cuisa.Inc(0, 1), nil)                             // busy until t=6
	u.Issue(cuisa.Inc(0, 1), func() { accepted = eng.Now() }) // must stall
	eng.Run()
	if accepted != SimpleLatency {
		t.Errorf("second issue accepted at %d, want %d", accepted, SimpleLatency)
	}
	if u.Bank(0)[15] != 2 {
		t.Error("both INCs must execute")
	}
}

func TestInterCoreShiftRegister(t *testing.T) {
	eng := sim.NewEngine()
	mb := sim.NewMailbox128(eng)
	// Sender core.
	us := New(eng, sim.NewWordFIFO(eng, 8), sim.NewWordFIFO(eng, 8))
	us.MboxOut = mb
	// Receiver core.
	ur := New(eng, sim.NewWordFIFO(eng, 8), sim.NewWordFIFO(eng, 8))
	ur.MboxIn = mb

	mac := bits.BlockFromHex("deadbeefdeadbeefdeadbeefdeadbeef")
	us.SetBank(0, mac)
	// Receiver blocks on SHIN first; sender SHOUTs 20 cycles later.
	var got bits.Block
	ur.Issue(cuisa.ShIn(1), nil)
	ur.WhenIdle(func() { got = ur.Bank(1) })
	eng.At(20, func() { us.Issue(cuisa.ShOut(0), nil) })
	eng.Run()
	if got != mac {
		t.Errorf("SHIN = %s, want %s", got.Hex(), mac.Hex())
	}
	if eng.Now() != 20+ShiftInLatency {
		t.Errorf("rendezvous completed at %d, want %d", eng.Now(), 20+ShiftInLatency)
	}
}

func TestStoreBlocksOnFullOutput(t *testing.T) {
	eng := sim.NewEngine()
	u := New(eng, sim.NewWordFIFO(eng, 8), sim.NewWordFIFO(eng, 4))
	core := aes.NewCore32()
	core.LoadKeys(aes.Key128, aes.ExpandKey(make([]byte, 16)))
	u.Cipher = core
	// Fill the 4-word output FIFO so STORE must wait.
	for i := 0; i < 4; i++ {
		u.Out.TryPush(uint32(i))
	}
	var done sim.Time
	u.Issue(cuisa.Store(0), nil)
	u.WhenIdle(func() { done = eng.Now() })
	// Drain one word at t=30: still not enough. Drain the rest at t=50.
	eng.At(30, func() { u.Out.TryPop() })
	eng.At(50, func() {
		for u.Out.Len() > 0 {
			u.Out.TryPop()
		}
	})
	eng.Run()
	if done != 50+SimpleLatency {
		t.Errorf("STORE done at %d, want %d", done, 50+SimpleLatency)
	}
	if u.Out.Len() != 4 {
		t.Errorf("output FIFO has %d words, want 4", u.Out.Len())
	}
}

func TestIssueCountAndTrace(t *testing.T) {
	eng, u := newUnit()
	var traced []cuisa.Instr
	u.Trace = func(_ sim.Time, in cuisa.Instr) { traced = append(traced, in) }
	seq(t, eng, u, cuisa.Inc(0, 1), cuisa.Xor(0, 1), cuisa.Inc(0, 1))
	if u.IssueCount[cuisa.OpINC] != 2 || u.IssueCount[cuisa.OpXOR] != 1 {
		t.Errorf("issue counts = %v", u.IssueCount)
	}
	if len(traced) != 3 {
		t.Errorf("traced %d instructions, want 3", len(traced))
	}
}
