package picoblaze

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates PicoBlaze (KCPSM3-style) assembly source into an
// instruction image. Supported syntax:
//
//	; comment                         anywhere
//	CONSTANT name, 1F                 named 8-bit constant (hex, or 12'd)
//	label:                            code label (own line or before an op)
//	LOAD sX, sY | LOAD sX, kk
//	AND/OR/XOR/ADD/ADDCY/SUB/SUBCY/COMPARE sX, sY|kk
//	INPUT sX, pp | INPUT sX, (sY)     OUTPUT likewise
//	SR0/SR1/SRX/SRA/RR sX             SL0/SL1/SLX/SLA/RL sX
//	JUMP [Z|NZ|C|NC,] label           CALL likewise
//	RETURN [Z|NZ|C|NC]
//	HALT                              custom sleep-until-done
//	ENABLE INTERRUPT | DISABLE INTERRUPT
//	RETURNI ENABLE | RETURNI DISABLE
//	NOP                               pseudo (LOAD s0, s0)
//
// Numeric literals are hexadecimal by KCPSM3 convention; a 'd suffix
// (e.g. 25'd) selects decimal.
func Assemble(src string) ([]Word, error) {
	type fixup struct {
		word int
		name string
		line int
	}
	var (
		out    []Word
		labels = map[string]uint16{}
		consts = map[string]uint8{}
		fixups []fixup
	)

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several, though one is typical).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !validName(name) {
				return nil, fmt.Errorf("line %d: bad label %q", ln+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = uint16(len(out))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mn, rest := splitMnemonic(line)
		mn = strings.ToUpper(mn)
		args := splitArgs(rest)

		regOrErr := func(s string) (int, error) {
			r, ok := parseReg(s)
			if !ok {
				return 0, fmt.Errorf("line %d: expected register, got %q", ln+1, s)
			}
			return r, nil
		}
		immOrErr := func(s string) (uint8, error) {
			if v, ok := consts[s]; ok {
				return v, nil
			}
			v, ok := parseImm(s)
			if !ok {
				return 0, fmt.Errorf("line %d: bad constant %q", ln+1, s)
			}
			return v, nil
		}

		emit := func(w Word) { out = append(out, w) }

		switch mn {
		case "CONSTANT":
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: CONSTANT name, value", ln+1)
			}
			if !validName(args[0]) {
				return nil, fmt.Errorf("line %d: bad constant name %q", ln+1, args[0])
			}
			v, err := immOrErr(args[1])
			if err != nil {
				return nil, err
			}
			consts[args[0]] = v

		case "LOAD", "AND", "OR", "XOR", "ADD", "ADDCY", "SUB", "SUBCY", "COMPARE":
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: %s sX, sY|kk", ln+1, mn)
			}
			x, err := regOrErr(args[0])
			if err != nil {
				return nil, err
			}
			ops := map[string][2]uint32{
				"LOAD": {opLOADk, opLOADr}, "AND": {opANDk, opANDr},
				"OR": {opORk, opORr}, "XOR": {opXORk, opXORr},
				"ADD": {opADDk, opADDr}, "ADDCY": {opADDCYk, opADDCYr},
				"SUB": {opSUBk, opSUBr}, "SUBCY": {opSUBCYk, opSUBCYr},
				"COMPARE": {opCOMPAREk, opCOMPAREr},
			}[mn]
			if y, ok := parseReg(args[1]); ok {
				emit(enc(ops[1], uint32(x), uint32(y), 0))
			} else {
				k, err := immOrErr(args[1])
				if err != nil {
					return nil, err
				}
				emit(enc(ops[0], uint32(x), 0, uint32(k)))
			}

		case "INPUT", "OUTPUT":
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: %s sX, pp|(sY)", ln+1, mn)
			}
			x, err := regOrErr(args[0])
			if err != nil {
				return nil, err
			}
			pOp, rOp := opINPUTp, opINPUTr
			if mn == "OUTPUT" {
				pOp, rOp = opOUTPUTp, opOUTPUTr
			}
			a := args[1]
			if strings.HasPrefix(a, "(") && strings.HasSuffix(a, ")") {
				y, err := regOrErr(strings.TrimSpace(a[1 : len(a)-1]))
				if err != nil {
					return nil, err
				}
				emit(enc(rOp, uint32(x), uint32(y), 0))
			} else {
				p, err := immOrErr(a)
				if err != nil {
					return nil, err
				}
				emit(enc(pOp, uint32(x), 0, uint32(p)))
			}

		case "SR0", "SR1", "SRX", "SRA", "RR", "SL0", "SL1", "SLX", "SLA", "RL":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: %s sX", ln+1, mn)
			}
			x, err := regOrErr(args[0])
			if err != nil {
				return nil, err
			}
			sub := map[string]uint32{
				"SR0": sh0, "SR1": sh1, "SRX": shX, "SRA": shA, "RR": shRot,
				"SL0": sh0, "SL1": sh1, "SLX": shX, "SLA": shA, "RL": shRot,
			}[mn]
			op := opSHIFTR
			if mn[1] == 'L' {
				op = opSHIFTL
			}
			emit(enc(uint32(op), uint32(x), 0, sub))

		case "JUMP", "CALL":
			base := opJUMP
			if mn == "CALL" {
				base = opCALL
			}
			target := ""
			off := uint32(0)
			switch len(args) {
			case 1:
				target = args[0]
			case 2:
				c, ok := condIndex(args[0])
				if !ok {
					return nil, fmt.Errorf("line %d: bad condition %q", ln+1, args[0])
				}
				off = c
				target = args[1]
			default:
				return nil, fmt.Errorf("line %d: %s [cond,] label", ln+1, mn)
			}
			fixups = append(fixups, fixup{word: len(out), name: target, line: ln + 1})
			emit(encAddr(base+off, 0))

		case "RETURN":
			off := uint32(0)
			if len(args) == 1 {
				c, ok := condIndex(args[0])
				if !ok {
					return nil, fmt.Errorf("line %d: bad condition %q", ln+1, args[0])
				}
				off = c
			} else if len(args) != 0 {
				return nil, fmt.Errorf("line %d: RETURN [cond]", ln+1)
			}
			emit(encAddr(opRETURN+off, 0))

		case "RETURNI":
			en := uint32(0)
			if len(args) == 1 && strings.EqualFold(args[0], "ENABLE") {
				en = 1
			} else if len(args) == 1 && strings.EqualFold(args[0], "DISABLE") {
				en = 0
			} else {
				return nil, fmt.Errorf("line %d: RETURNI ENABLE|DISABLE", ln+1)
			}
			emit(enc(opRETI, 0, 0, en))

		case "HALT":
			// The paper writes "HALT DISABLE"; the operand selects the
			// interrupt-enable state during sleep and is accepted but not
			// otherwise modeled.
			emit(enc(opHALT, 0, 0, 0))

		case "ENABLE", "DISABLE":
			if len(args) != 1 || !strings.EqualFold(args[0], "INTERRUPT") {
				return nil, fmt.Errorf("line %d: %s INTERRUPT", ln+1, mn)
			}
			if mn == "ENABLE" {
				emit(enc(opEINT, 0, 0, 0))
			} else {
				emit(enc(opDINT, 0, 0, 0))
			}

		case "NOP":
			emit(enc(opLOADr, 0, 0, 0)) // LOAD s0, s0

		default:
			return nil, fmt.Errorf("line %d: unknown mnemonic %q", ln+1, mn)
		}
	}

	for _, f := range fixups {
		addr, ok := labels[f.name]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.name)
		}
		out[f.word] = Word(uint32(out[f.word]) | uint32(addr)&0x3FF)
	}
	if len(out) > IMemWords {
		return nil, fmt.Errorf("program needs %d words; instruction memory holds %d", len(out), IMemWords)
	}
	return out, nil
}

// MustAssemble is Assemble for trusted embedded firmware; it panics on error.
func MustAssemble(src string) []Word {
	w, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return w
}

func splitMnemonic(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i+1:])
}

func splitArgs(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	args := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			args = append(args, p)
		}
	}
	return args
}

func parseReg(s string) (int, bool) {
	if len(s) != 2 || (s[0] != 's' && s[0] != 'S') {
		return 0, false
	}
	v, err := strconv.ParseUint(s[1:], 16, 4)
	if err != nil {
		return 0, false
	}
	return int(v), true
}

func parseImm(s string) (uint8, bool) {
	if strings.HasSuffix(s, "'d") { // decimal, KCPSM convention
		v, err := strconv.ParseUint(s[:len(s)-2], 10, 8)
		return uint8(v), err == nil
	}
	v, err := strconv.ParseUint(s, 16, 8)
	return uint8(v), err == nil
}

func condIndex(s string) (uint32, bool) {
	switch strings.ToUpper(s) {
	case "Z":
		return 1, true
	case "NZ":
		return 2, true
	case "C":
		return 3, true
	case "NC":
		return 4, true
	}
	return 0, false
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Avoid names that shadow registers.
	if _, isReg := parseReg(s); isReg {
		return false
	}
	return true
}
