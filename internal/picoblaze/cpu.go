package picoblaze

import (
	"fmt"

	"mccp/internal/sim"
)

// Bus is the controller's I/O space. The Cryptographic Core wires INPUT
// ports to its status/parameter registers and OUTPUT ports to the
// Cryptographic Unit instruction port, the mask register and the
// result/flush strobes.
type Bus interface {
	// In services an INPUT instruction.
	In(port uint8) uint8
	// Out services an OUTPUT instruction. done must be invoked exactly once
	// when the write completes; a bus may delay it to model a stalled
	// handshake (the Cryptographic Unit holds the controller until it
	// accepts the instruction strobe).
	Out(port uint8, val uint8, done func())
}

// CPU is one PicoBlaze-style controller instance.
//
// The controller retires one instruction every CyclesPerInstr cycles. The
// reference model schedules one engine event per instruction; this
// implementation instead batches straight-line runs inside a single event,
// advancing the clock arithmetically via Engine.TryAdvance. The batch
// yields back to the event queue exactly when the reference model's
// interleaving could differ: when a pending engine event would fire at or
// before the next retire cycle, at an OUTPUT whose handshake defers the
// done strobe, at HALT, at Stop, and at the RunUntil horizon. Cross-
// component state only changes through engine events, so between yields
// the batch is invisible — every instruction still executes at its exact
// retire cycle (Engine.Now advances through the batch) and virtual-time
// results are bit-identical to the reference model, which remains
// available via Engine.Compat and is pinned by the differential
// determinism tests.
type CPU struct {
	eng *sim.Engine
	bus Bus

	imem  []Word
	pc    uint16
	regs  [16]uint8
	zero  bool
	carry bool
	stack []uint16
	// intEnabled mirrors ENABLE/DISABLE INTERRUPT; the MCCP firmware uses
	// the Data Available interrupt path at the Task Scheduler level, so the
	// flag is tracked but no asynchronous delivery is modeled.
	intEnabled bool

	running bool // an instruction step is scheduled
	halted  bool // parked by HALT, waiting for Wake
	stopped bool // Stop was called (core shut down / reprogrammed)

	// tick reschedules step without allocating a closure per event;
	// outDone is the reusable OUTPUT completion continuation.
	tick    *sim.Ticker
	outDone func()

	// Executed counts retired instructions (including stalled OUTPUT as one).
	Executed uint64
	// Trace, if non-nil, sees every retired instruction.
	Trace func(now sim.Time, pc uint16, w Word)
}

// New builds a CPU around the program image. Programs shorter than
// IMemWords are zero-padded (word 0 disassembles as LOAD s0,00 — harmless,
// but firmware never falls through thanks to explicit jumps).
func New(eng *sim.Engine, bus Bus, program []Word) *CPU {
	if len(program) > IMemWords {
		panic(fmt.Sprintf("picoblaze: program of %d words exceeds %d-word instruction memory", len(program), IMemWords))
	}
	imem := make([]Word, IMemWords)
	copy(imem, program)
	c := &CPU{eng: eng, bus: bus, imem: imem, stack: make([]uint16, 0, StackDepth)}
	c.tick = eng.NewTicker(c.step)
	c.outDone = func() { c.next(true) }
	return c
}

// LoadProgram replaces the instruction memory (program swap on channel
// reconfiguration). The CPU must be stopped or halted.
func (c *CPU) LoadProgram(program []Word) {
	if len(program) > IMemWords {
		panic("picoblaze: program too large")
	}
	for i := range c.imem {
		if i < len(program) {
			c.imem[i] = program[i]
		} else {
			c.imem[i] = 0
		}
	}
}

// Reset rewinds the program counter and architectural state.
func (c *CPU) Reset() {
	c.pc = 0
	c.regs = [16]uint8{}
	c.zero, c.carry = false, false
	c.stack = c.stack[:0]
	c.halted = false
	c.stopped = false
}

// Start begins (or resumes) execution at the current program counter.
func (c *CPU) Start() {
	c.stopped = false
	if c.running || c.halted {
		return
	}
	c.running = true
	// Each instruction retires at the end of its two-cycle fetch/execute,
	// so the first instruction's effects land at cycle +2.
	c.tick.After(CyclesPerInstr)
}

// Stop freezes the CPU after the current instruction; Start resumes it.
func (c *CPU) Stop() { c.stopped = true }

// Halted reports whether the CPU is parked on a HALT instruction.
func (c *CPU) Halted() bool { return c.halted }

// Wake releases a HALTed CPU; the paper's custom HALT wakes on the
// Cryptographic Unit done signal, and the Task Scheduler start strobe uses
// the same line. Waking a non-halted CPU is a no-op (the level is re-checked
// by firmware via its status port).
func (c *CPU) Wake() {
	if !c.halted || c.stopped {
		return
	}
	c.halted = false
	if !c.running {
		c.running = true
		// The HALT instruction's own two-cycle cost is charged here, on the
		// wake edge.
		c.tick.After(CyclesPerInstr)
	}
}

// Reg returns register sX (tests and the tracer use it).
func (c *CPU) Reg(x int) uint8 { return c.regs[x] }

// PC returns the current program counter.
func (c *CPU) PC() uint16 { return c.pc }

// Flags returns (zero, carry).
func (c *CPU) Flags() (bool, bool) { return c.zero, c.carry }

// next resumes execution after an OUTPUT handshake completes: inline when
// no pending event would interleave before the next retire cycle, through
// the event queue otherwise (exactly the reference model's behaviour).
func (c *CPU) next(advance bool) {
	if advance {
		c.pc = (c.pc + 1) & (IMemWords - 1)
	}
	if c.stopped {
		c.running = false
		return
	}
	retire := c.eng.Now() + CyclesPerInstr
	if c.eng.Compat || !c.eng.TryAdvance(retire) {
		c.tick.At(retire)
		return
	}
	c.step()
}

// step retires instructions. The two-cycle cost is charged after execution
// (fetch+execute), matching the controller's fixed rate: the loop entry
// time is the retire cycle of the instruction about to execute. Straight-
// line runs stay inside the loop (see the CPU type comment for the exact
// yield conditions).
func (c *CPU) step() {
	for {
		if c.stopped || c.halted {
			c.running = false
			return
		}
		w := c.imem[c.pc]
		c.Executed++
		if c.Trace != nil {
			c.Trace(c.eng.Now(), c.pc, w)
		}
		op := w.op()
		x, y, kk := w.x(), w.y(), w.kk()
		advance := true

		switch op {
		case opLOADk:
			c.regs[x] = kk
		case opLOADr:
			c.regs[x] = c.regs[y]
		case opANDk, opANDr:
			v := kk
			if op == opANDr {
				v = c.regs[y]
			}
			c.regs[x] &= v
			c.zero, c.carry = c.regs[x] == 0, false
		case opORk, opORr:
			v := kk
			if op == opORr {
				v = c.regs[y]
			}
			c.regs[x] |= v
			c.zero, c.carry = c.regs[x] == 0, false
		case opXORk, opXORr:
			v := kk
			if op == opXORr {
				v = c.regs[y]
			}
			c.regs[x] ^= v
			c.zero, c.carry = c.regs[x] == 0, false
		case opADDk, opADDr:
			v := kk
			if op == opADDr {
				v = c.regs[y]
			}
			s := uint16(c.regs[x]) + uint16(v)
			c.regs[x] = uint8(s)
			c.zero, c.carry = c.regs[x] == 0, s > 0xFF
		case opADDCYk, opADDCYr:
			v := kk
			if op == opADDCYr {
				v = c.regs[y]
			}
			s := uint16(c.regs[x]) + uint16(v)
			if c.carry {
				s++
			}
			c.regs[x] = uint8(s)
			c.zero, c.carry = c.regs[x] == 0, s > 0xFF
		case opSUBk, opSUBr:
			v := kk
			if op == opSUBr {
				v = c.regs[y]
			}
			d := uint16(c.regs[x]) - uint16(v)
			c.regs[x] = uint8(d)
			c.zero, c.carry = c.regs[x] == 0, d > 0xFF // borrow
		case opSUBCYk, opSUBCYr:
			v := kk
			if op == opSUBCYr {
				v = c.regs[y]
			}
			d := uint16(c.regs[x]) - uint16(v)
			if c.carry {
				d--
			}
			c.regs[x] = uint8(d)
			c.zero, c.carry = c.regs[x] == 0, d > 0xFF
		case opCOMPAREk, opCOMPAREr:
			v := kk
			if op == opCOMPAREr {
				v = c.regs[y]
			}
			c.zero = c.regs[x] == v
			c.carry = c.regs[x] < v
		case opINPUTp:
			c.regs[x] = c.bus.In(kk)
		case opINPUTr:
			c.regs[x] = c.bus.In(c.regs[y])
		case opOUTPUTp, opOUTPUTr:
			port := kk
			if op == opOUTPUTr {
				port = c.regs[y]
			}
			// The write may stall (Cryptographic Unit handshake); execution
			// resumes CyclesPerInstr after the bus accepts it.
			c.bus.Out(port, c.regs[x], c.outDone)
			return
		case opSHIFTR:
			v := c.regs[x]
			var in uint8
			switch kk & 7 {
			case sh0:
				in = 0
			case sh1:
				in = 1
			case shX:
				in = v & 1
			case shA:
				if c.carry {
					in = 1
				}
			case shRot:
				in = v & 1
			}
			c.carry = v&1 != 0
			c.regs[x] = v>>1 | in<<7
			c.zero = c.regs[x] == 0
		case opSHIFTL:
			v := c.regs[x]
			var in uint8
			switch kk & 7 {
			case sh0:
				in = 0
			case sh1:
				in = 1
			case shX:
				in = v & 1 // duplicate LSB
			case shA:
				if c.carry {
					in = 1
				}
			case shRot:
				in = v >> 7
			}
			c.carry = v&0x80 != 0
			c.regs[x] = v<<1 | in
			c.zero = c.regs[x] == 0
		case opJUMP, opJUMPZ, opJUMPNZ, opJUMPC, opJUMPNC:
			if c.cond(op - opJUMP) {
				c.pc = w.addr()
				advance = false
			}
		case opCALL, opCALLZ, opCALLNZ, opCALLC, opCALLNC:
			if c.cond(op - opCALL) {
				if len(c.stack) == StackDepth {
					panic("picoblaze: CALL stack overflow")
				}
				c.stack = append(c.stack, c.pc)
				c.pc = w.addr()
				advance = false
			}
		case opRETURN, opRETURNZ, opRETURNNZ, opRETURNC, opRETURNNC:
			if c.cond(op - opRETURN) {
				if len(c.stack) == 0 {
					panic("picoblaze: RETURN with empty stack")
				}
				c.pc = c.stack[len(c.stack)-1] + 1
				c.stack = c.stack[:len(c.stack)-1]
				advance = false
			}
		case opHALT:
			// Park immediately; Wake charges the instruction's two cycles on
			// resume. Parking synchronously (rather than after a delay) keeps a
			// wake strobe arriving in the next cycle from being lost.
			c.pc = (c.pc + 1) & (IMemWords - 1)
			c.halted = true
			c.running = false
			return
		case opEINT:
			c.intEnabled = true
		case opDINT:
			c.intEnabled = false
		case opRETI:
			// Interrupt delivery is not modeled (see intEnabled); treat as
			// RETURN so shared subroutines remain usable.
			if len(c.stack) == 0 {
				panic("picoblaze: RETURNI with empty stack")
			}
			c.pc = c.stack[len(c.stack)-1] + 1
			c.stack = c.stack[:len(c.stack)-1]
			c.intEnabled = kk&1 != 0
			advance = false
		default:
			panic(fmt.Sprintf("picoblaze: illegal opcode %#x at pc %#x", op, c.pc))
		}

		if advance {
			c.pc = (c.pc + 1) & (IMemWords - 1)
		}
		if c.stopped {
			c.running = false
			return
		}
		retire := c.eng.Now() + CyclesPerInstr
		if c.eng.Compat || !c.eng.TryAdvance(retire) {
			c.tick.At(retire)
			return
		}
	}
}

// cond evaluates a 0..4 condition index: always, Z, NZ, C, NC.
func (c *CPU) cond(idx uint32) bool {
	switch idx {
	case 0:
		return true
	case 1:
		return c.zero
	case 2:
		return !c.zero
	case 3:
		return c.carry
	case 4:
		return !c.carry
	}
	panic("picoblaze: bad condition")
}
