// Package picoblaze models the modified 8-bit Xilinx PicoBlaze (KCPSM3)
// controller the paper embeds in every Cryptographic Core and assembles the
// firmware written for it.
//
// The model matches the paper's description: sixteen 8-bit registers, a
// 1024 x 18-bit instruction memory (one FPGA block RAM), two clock cycles
// per instruction, CALL/RETURN with a hardware stack, and a custom HALT
// instruction that puts the controller to sleep until the Cryptographic
// Unit raises its done signal (or the Task Scheduler starts a new task).
//
// The 18-bit instruction encoding here is structured like KCPSM3's
// (opcode / sX / sY / immediate fields) but uses its own opcode map; the
// assembler accepts standard KCPSM3 assembly syntax for the supported
// subset, so the firmware listings read like the paper's Listing 1.
package picoblaze

import "fmt"

// Word is one 18-bit instruction memory word (stored in the low 18 bits).
type Word uint32

// IMemWords is the instruction memory size: 1024 words, one block RAM.
const IMemWords = 1024

// CyclesPerInstr is the PicoBlaze execution rate: every instruction takes
// two clock cycles.
const CyclesPerInstr = 2

// StackDepth is the CALL/RETURN hardware stack depth (KCPSM3 has 31).
const StackDepth = 31

// Opcode values (bits 17..12 of the instruction word).
const (
	opLOADk uint32 = iota
	opLOADr
	opANDk
	opANDr
	opORk
	opORr
	opXORk
	opXORr
	opADDk
	opADDr
	opADDCYk
	opADDCYr
	opSUBk
	opSUBr
	opSUBCYk
	opSUBCYr
	opCOMPAREk
	opCOMPAREr
	opINPUTp
	opINPUTr
	opOUTPUTp
	opOUTPUTr
	opSHIFTR // sub-op in low bits: SR0 SR1 SRX SRA RR
	opSHIFTL // sub-op in low bits: SL0 SL1 SLX SLA RL
	opJUMP
	opJUMPZ
	opJUMPNZ
	opJUMPC
	opJUMPNC
	opCALL
	opCALLZ
	opCALLNZ
	opCALLC
	opCALLNC
	opRETURN
	opRETURNZ
	opRETURNNZ
	opRETURNC
	opRETURNNC
	opHALT
	opEINT
	opDINT
	opRETI // bit0: re-enable flag
	opNumOps
)

// Shift sub-operation codes (low 4 bits of a SHIFT instruction).
const (
	sh0   = iota // shift in 0
	sh1          // shift in 1
	shX          // shift in duplicated data bit (SRX/SLX)
	shA          // shift in carry (SRA/SLA)
	shRot        // rotate (RR/RL)
)

func enc(op uint32, x, y uint32, kk uint32) Word {
	return Word(op<<12 | (x&0xF)<<8 | (y&0xF)<<4 | kk&0xFF)
}

func encAddr(op uint32, addr uint32) Word {
	return Word(op<<12 | addr&0x3FF)
}

func (w Word) op() uint32   { return uint32(w) >> 12 }
func (w Word) x() int       { return int(uint32(w)>>8) & 0xF }
func (w Word) y() int       { return int(uint32(w)>>4) & 0xF }
func (w Word) kk() uint8    { return uint8(w) }
func (w Word) addr() uint16 { return uint16(w) & 0x3FF }

var opNames = map[uint32]string{
	opLOADk: "LOAD", opLOADr: "LOAD", opANDk: "AND", opANDr: "AND",
	opORk: "OR", opORr: "OR", opXORk: "XOR", opXORr: "XOR",
	opADDk: "ADD", opADDr: "ADD", opADDCYk: "ADDCY", opADDCYr: "ADDCY",
	opSUBk: "SUB", opSUBr: "SUB", opSUBCYk: "SUBCY", opSUBCYr: "SUBCY",
	opCOMPAREk: "COMPARE", opCOMPAREr: "COMPARE",
	opINPUTp: "INPUT", opINPUTr: "INPUT", opOUTPUTp: "OUTPUT", opOUTPUTr: "OUTPUT",
	opJUMP: "JUMP", opJUMPZ: "JUMP Z,", opJUMPNZ: "JUMP NZ,", opJUMPC: "JUMP C,", opJUMPNC: "JUMP NC,",
	opCALL: "CALL", opCALLZ: "CALL Z,", opCALLNZ: "CALL NZ,", opCALLC: "CALL C,", opCALLNC: "CALL NC,",
	opRETURN: "RETURN", opRETURNZ: "RETURN Z", opRETURNNZ: "RETURN NZ",
	opRETURNC: "RETURN C", opRETURNNC: "RETURN NC",
	opHALT: "HALT", opEINT: "ENABLE INTERRUPT", opDINT: "DISABLE INTERRUPT", opRETI: "RETURNI",
}

// Disassemble renders w for traces and debugging.
func Disassemble(w Word) string {
	op := w.op()
	name, ok := opNames[op]
	if !ok && op != opSHIFTR && op != opSHIFTL {
		return fmt.Sprintf(".word %#05x", uint32(w))
	}
	switch op {
	case opLOADk, opANDk, opORk, opXORk, opADDk, opADDCYk, opSUBk, opSUBCYk, opCOMPAREk:
		return fmt.Sprintf("%s s%X, %02X", name, w.x(), w.kk())
	case opLOADr, opANDr, opORr, opXORr, opADDr, opADDCYr, opSUBr, opSUBCYr, opCOMPAREr:
		return fmt.Sprintf("%s s%X, s%X", name, w.x(), w.y())
	case opINPUTp, opOUTPUTp:
		return fmt.Sprintf("%s s%X, %02X", name, w.x(), w.kk())
	case opINPUTr, opOUTPUTr:
		return fmt.Sprintf("%s s%X, (s%X)", name, w.x(), w.y())
	case opSHIFTR:
		return fmt.Sprintf("%s s%X", [...]string{"SR0", "SR1", "SRX", "SRA", "RR"}[w.kk()&7], w.x())
	case opSHIFTL:
		return fmt.Sprintf("%s s%X", [...]string{"SL0", "SL1", "SLX", "SLA", "RL"}[w.kk()&7], w.x())
	case opJUMP, opJUMPZ, opJUMPNZ, opJUMPC, opJUMPNC,
		opCALL, opCALLZ, opCALLNZ, opCALLC, opCALLNC:
		return fmt.Sprintf("%s %03X", name, w.addr())
	default:
		return name
	}
}
