package picoblaze

import (
	"strings"
	"testing"

	"mccp/internal/sim"
)

// testBus records OUTPUTs and serves INPUTs from a map; port 0xFE delays
// acceptance by 10 cycles to exercise the stall path.
type testBus struct {
	eng    *sim.Engine
	inputs map[uint8]uint8
	outs   []struct {
		port, val uint8
		at        sim.Time
	}
}

func (b *testBus) In(port uint8) uint8 { return b.inputs[port] }

func (b *testBus) Out(port uint8, val uint8, done func()) {
	b.outs = append(b.outs, struct {
		port, val uint8
		at        sim.Time
	}{port, val, b.eng.Now()})
	if port == 0xFE {
		b.eng.After(10, done)
		return
	}
	done()
}

func run(t *testing.T, src string, inputs map[uint8]uint8) (*CPU, *testBus, *sim.Engine) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	eng := sim.NewEngine()
	bus := &testBus{eng: eng, inputs: inputs}
	cpu := New(eng, bus, prog)
	cpu.Start()
	eng.Run()
	return cpu, bus, eng
}

func TestArithmeticAndFlags(t *testing.T) {
	cpu, _, _ := run(t, `
		LOAD s0, F0
		ADD  s0, 11      ; s0 = 0x01, carry set
		ADDCY s1, 00     ; s1 = 1 (carry in)
		LOAD s2, 05
		SUB  s2, 06      ; s2 = 0xFF, borrow set
		SUBCY s3, 00     ; s3 = 0xFF (borrow in)
		HALT
	`, nil)
	if !cpu.Halted() {
		t.Fatal("CPU should halt")
	}
	if cpu.Reg(0) != 0x01 || cpu.Reg(1) != 1 || cpu.Reg(2) != 0xFF || cpu.Reg(3) != 0xFF {
		t.Errorf("regs = %#x %#x %#x %#x", cpu.Reg(0), cpu.Reg(1), cpu.Reg(2), cpu.Reg(3))
	}
}

func TestLogicAndCompare(t *testing.T) {
	cpu, _, _ := run(t, `
		LOAD s0, AA
		AND  s0, 0F     ; 0x0A
		OR   s0, 30     ; 0x3A
		XOR  s0, 3A     ; 0x00, zero set
		JUMP NZ, bad
		LOAD s1, 07
		COMPARE s1, 08  ; carry (less-than)
		JUMP NC, bad
		COMPARE s1, 07  ; zero
		JUMP NZ, bad
		LOAD s2, 01
		JUMP done
	bad: LOAD s2, FF
	done: HALT
	`, nil)
	if cpu.Reg(2) != 1 {
		t.Errorf("flag path failed, s2 = %#x", cpu.Reg(2))
	}
}

func TestShiftsAndRotates(t *testing.T) {
	cpu, _, _ := run(t, `
		LOAD s0, 81
		SR0  s0         ; 0x40, carry=1
		SRA  s1         ; s1 = 0x80 (carry shifted in)
		LOAD s2, 81
		RL   s2         ; 0x03
		LOAD s3, 81
		RR   s3         ; 0xC0
		LOAD s4, 01
		SL0  s4         ; 0x02
		HALT
	`, nil)
	want := map[int]uint8{0: 0x40, 1: 0x80, 2: 0x03, 3: 0xC0, 4: 0x02}
	for r, v := range want {
		if cpu.Reg(r) != v {
			t.Errorf("s%d = %#02x, want %#02x", r, cpu.Reg(r), v)
		}
	}
}

func TestCallReturnNested(t *testing.T) {
	cpu, _, _ := run(t, `
		LOAD s0, 00
		CALL f1
		HALT
	f1: ADD s0, 01
		CALL f2
		ADD s0, 04
		RETURN
	f2: ADD s0, 02
		RETURN
	`, nil)
	if cpu.Reg(0) != 7 {
		t.Errorf("s0 = %d, want 7", cpu.Reg(0))
	}
}

func TestLoopTiming(t *testing.T) {
	// 10-iteration countdown: LOAD(1) + 10*(SUB+JUMP)(2 each) + HALT wake
	// charge is not incurred (no wake). Every instruction is 2 cycles.
	cpu, _, eng := run(t, `
		LOAD s0, 0A
	loop: SUB s0, 01
		JUMP NZ, loop
		HALT
	`, nil)
	if cpu.Reg(0) != 0 {
		t.Fatalf("s0 = %d", cpu.Reg(0))
	}
	// Instructions retired at cycles 2,4,...: LOAD, then 10x(SUB, JUMP),
	// then HALT parks at cycle 44 (its own charge is paid on wake).
	if got := cpu.Executed; got != 22 {
		t.Errorf("executed = %d, want 22 (incl. HALT)", got)
	}
	if eng.Now() != 44 {
		t.Errorf("halted at %d, want 44", eng.Now())
	}
}

func TestInputOutputPorts(t *testing.T) {
	cpu, bus, _ := run(t, `
		INPUT s0, 07
		ADD   s0, 01
		OUTPUT s0, 10
		LOAD  s1, 11
		OUTPUT s0, (s1)
		HALT
	`, map[uint8]uint8{0x07: 0x41})
	if cpu.Reg(0) != 0x42 {
		t.Fatalf("s0 = %#x", cpu.Reg(0))
	}
	if len(bus.outs) != 2 || bus.outs[0].port != 0x10 || bus.outs[0].val != 0x42 ||
		bus.outs[1].port != 0x11 {
		t.Errorf("outs = %+v", bus.outs)
	}
}

func TestOutputStall(t *testing.T) {
	// Port 0xFE delays acceptance by 10 cycles; the next instruction must
	// not retire until the stall resolves.
	cpu, bus, eng := run(t, `
		LOAD s0, 01
		OUTPUT s0, FE
		OUTPUT s0, 20
		HALT
	`, nil)
	_ = cpu
	if len(bus.outs) != 2 {
		t.Fatalf("outs = %d", len(bus.outs))
	}
	// t=2 LOAD retires; t=4 OUTPUT issues to 0xFE (stalls until 14);
	// second OUTPUT then needs 2 more cycles.
	if bus.outs[0].at != 4 || bus.outs[1].at != 16 {
		t.Errorf("out times = %d, %d; want 4, 16", bus.outs[0].at, bus.outs[1].at)
	}
	if eng.Now() != 18 {
		t.Errorf("end = %d, want 18", eng.Now())
	}
}

func TestHaltWake(t *testing.T) {
	prog := MustAssemble(`
		LOAD s0, 01
		HALT
		ADD s0, 01
		HALT
		ADD s0, 10
		HALT
	`)
	eng := sim.NewEngine()
	bus := &testBus{eng: eng}
	cpu := New(eng, bus, prog)
	cpu.Start()
	eng.Run()
	if !cpu.Halted() || cpu.Reg(0) != 1 {
		t.Fatalf("first halt: halted=%v s0=%#x", cpu.Halted(), cpu.Reg(0))
	}
	cpu.Wake()
	eng.Run()
	if cpu.Reg(0) != 2 {
		t.Fatalf("after first wake s0 = %#x", cpu.Reg(0))
	}
	// Wake on a running CPU is a no-op; wake again once halted.
	cpu.Wake()
	eng.Run()
	if cpu.Reg(0) != 0x12 {
		t.Fatalf("after second wake s0 = %#x", cpu.Reg(0))
	}
}

func TestConstantsAndDecimal(t *testing.T) {
	cpu, _, _ := run(t, `
		CONSTANT magic, 2A
		CONSTANT ten, 10'd
		LOAD s0, magic
		LOAD s1, ten
		HALT
	`, nil)
	if cpu.Reg(0) != 42 || cpu.Reg(1) != 10 {
		t.Errorf("s0=%d s1=%d", cpu.Reg(0), cpu.Reg(1))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FROB s0, 01",        // unknown mnemonic
		"LOAD s0",            // missing operand
		"JUMP nowhere",       // undefined label
		"LOAD sG, 01",        // bad register
		"LOAD s0, GG",        // bad constant
		"x: x: LOAD s0, 01",  // duplicate label... (same line)
		"JUMP Q, x\nx: HALT", // bad condition
		"CONSTANT s0, 01",    // constant shadows register
		"RETURNI MAYBE",      // bad RETURNI operand
		"ENABLE FOO",         // bad ENABLE
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestProgramTooLarge(t *testing.T) {
	src := strings.Repeat("LOAD s0, 01\n", IMemWords+1)
	if _, err := Assemble(src); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestDisassembleRoundtrip(t *testing.T) {
	src := `
	start: LOAD s0, 1F
		ADD s0, s1
		INPUT s2, 03
		OUTPUT s2, (s3)
		SR0 s4
		RL s5
		JUMP NZ, start
		CALL C, start
		RETURN
		HALT
	`
	prog := MustAssemble(src)
	wants := []string{
		"LOAD s0, 1F", "ADD s0, s1", "INPUT s2, 03", "OUTPUT s2, (s3)",
		"SR0 s4", "RL s5", "JUMP NZ, 000", "CALL C, 000", "RETURN", "HALT",
	}
	for i, want := range wants {
		if got := Disassemble(prog[i]); got != want {
			t.Errorf("disasm[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestStackOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected stack overflow panic")
		}
	}()
	run(t, "boom: CALL boom", nil)
}
