package cuisa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, a, b uint8) bool {
		in := New(Op(op&0xF), a&3, b&3)
		return in.Op() == Op(op&0xF) && in.A() == a&3 && in.B() == b&3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldPacking(t *testing.T) {
	in := New(OpXOR, 2, 1)
	if uint8(in) != 0x99 {
		t.Errorf("XOR R2,R1 = %#02x, want 0x99 (op 9, a=2, b=1)", uint8(in))
	}
	if in.String() != "XOR R2, R1" {
		t.Errorf("disasm = %q", in.String())
	}
}

func TestConstructors(t *testing.T) {
	cases := []struct {
		in   Instr
		op   Op
		a, b uint8
		str  string
	}{
		{Load(2), OpLOAD, 2, 0, "LOAD R2"},
		{Store(1), OpSTORE, 1, 0, "STORE R1"},
		{LoadH(1), OpLOADH, 1, 0, "LOADH R1"},
		{SGFM(3), OpSGFM, 3, 0, "SGFM R3"},
		{FGFM(0), OpFGFM, 0, 0, "FGFM R0"},
		{SAES(0), OpSAES, 0, 0, "SAES R0"},
		{FAES(1), OpFAES, 1, 0, "FAES R1"},
		{Inc(0, 1), OpINC, 0, 0, "INC R0, 1"},
		{Inc(0, 4), OpINC, 0, 3, "INC R0, 4"},
		{Xor(2, 3), OpXOR, 2, 3, "XOR R2, R3"},
		{Equ(1, 2), OpEQU, 1, 2, "EQU R1, R2"},
		{ShIn(2), OpSHIN, 2, 0, "SHIN R2"},
		{ShOut(3), OpSHOUT, 3, 0, "SHOUT R3"},
		{Mov(0, 3), OpMOV, 0, 3, "MOV R0, R3"},
	}
	for _, c := range cases {
		if c.in.Op() != c.op || c.in.A() != c.a || c.in.B() != c.b {
			t.Errorf("%s: fields op=%v a=%d b=%d", c.str, c.in.Op(), c.in.A(), c.in.B())
		}
		if got := c.in.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("register address 4 accepted")
		}
	}()
	New(OpLOAD, 4, 0)
}

func TestIncDeltaValidation(t *testing.T) {
	for _, bad := range []uint8{0, 5} {
		func() {
			defer func() { recover() }()
			Inc(0, bad)
			t.Errorf("Inc delta %d accepted", bad)
		}()
	}
}

func TestOpValid(t *testing.T) {
	if !OpMOV.Valid() || OpRSV1.Valid() || OpRSV2.Valid() {
		t.Error("Valid() misclassifies reserved opcodes")
	}
}
