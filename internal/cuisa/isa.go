// Package cuisa defines the Cryptographic Unit Instruction Set Architecture
// of the MCCP (Table I of the paper): 8-bit instructions composed of a 4-bit
// operation code and two 2-bit bank-register addresses.
//
// The paper enumerates LOAD, LOADH, SGFM, FGFM, SAES, FAES, INC, XOR and EQU
// and uses STORE and LOAD_PT in its firmware listing; the remaining encoding
// space carries the inter-core shift-register transfers (SHIN/SHOUT) that
// §IV.A describes ("Inter-Cryptographic Core ports are used to convey
// temporary data from a core to another") and a register move.
package cuisa

import "fmt"

// Op is a 4-bit Cryptographic Unit opcode.
type Op uint8

// Opcode assignments. SAES/FAES drive whatever cipher engine currently
// occupies the reconfigurable region (AES in the paper's main build,
// Whirlpool or Twofish after partial reconfiguration), so firmware is
// engine-agnostic exactly as §IX claims.
const (
	OpNOP   Op = 0x0 // no operation (fixed latency)
	OpLOAD  Op = 0x1 // pop one 128-bit word from the input FIFO into @A
	OpSTORE Op = 0x2 // push @A into the output FIFO
	OpLOADH Op = 0x3 // load @A into the GHASH core as H; clears the accumulator
	OpSGFM  Op = 0x4 // start one GHASH iteration absorbing @A (background)
	OpFGFM  Op = 0x5 // wait for GHASH, store accumulator into @A
	OpSAES  Op = 0x6 // start the cipher engine on @A (background)
	OpFAES  Op = 0x7 // wait for the cipher engine, store result into @A
	OpINC   Op = 0x8 // @A = @A + (imm2+1) on the 16 LSBs
	OpXOR   Op = 0x9 // @B = (@A ^ @B) & mask
	OpEQU   Op = 0xA // equ flag = ((@A ^ @B) & mask) == 0
	OpSHIN  Op = 0xB // read the inter-core shift register into @A (blocking)
	OpSHOUT Op = 0xC // write @A to the inter-core shift register (blocking)
	OpMOV   Op = 0xD // @B = @A
	OpRSV1  Op = 0xE // reserved
	OpRSV2  Op = 0xF // reserved
)

var opNames = [16]string{
	"NOP", "LOAD", "STORE", "LOADH", "SGFM", "FGFM", "SAES", "FAES",
	"INC", "XOR", "EQU", "SHIN", "SHOUT", "MOV", "RSV1", "RSV2",
}

// String returns the mnemonic.
func (o Op) String() string { return opNames[o&0xF] }

// Valid reports whether the opcode is an implemented instruction.
func (o Op) Valid() bool { return o <= OpMOV }

// Instr is one encoded 8-bit Cryptographic Unit instruction:
// bits 7..4 opcode, bits 3..2 address A, bits 1..0 address B (or the 2-bit
// immediate of INC).
type Instr uint8

// New builds an instruction from fields. a and b must fit in 2 bits.
func New(op Op, a, b uint8) Instr {
	if a > 3 || b > 3 {
		panic(fmt.Sprintf("cuisa: register address out of range: %d, %d", a, b))
	}
	return Instr(uint8(op)<<4 | a<<2 | b)
}

// Op extracts the opcode.
func (i Instr) Op() Op { return Op(i >> 4) }

// A extracts bank-register address A.
func (i Instr) A() uint8 { return uint8(i>>2) & 3 }

// B extracts bank-register address B (the immediate field for INC).
func (i Instr) B() uint8 { return uint8(i) & 3 }

// String disassembles the instruction.
func (i Instr) String() string {
	op := i.Op()
	switch op {
	case OpNOP, OpRSV1, OpRSV2:
		return op.String()
	case OpXOR, OpEQU, OpMOV:
		return fmt.Sprintf("%s R%d, R%d", op, i.A(), i.B())
	case OpINC:
		return fmt.Sprintf("%s R%d, %d", op, i.A(), i.B()+1)
	default:
		return fmt.Sprintf("%s R%d", op, i.A())
	}
}

// Convenience constructors used throughout firmware and tests.

// Load returns LOAD @a.
func Load(a uint8) Instr { return New(OpLOAD, a, 0) }

// Store returns STORE @a.
func Store(a uint8) Instr { return New(OpSTORE, a, 0) }

// LoadH returns LOADH @a.
func LoadH(a uint8) Instr { return New(OpLOADH, a, 0) }

// SGFM returns SGFM @a.
func SGFM(a uint8) Instr { return New(OpSGFM, a, 0) }

// FGFM returns FGFM @a.
func FGFM(a uint8) Instr { return New(OpFGFM, a, 0) }

// SAES returns SAES @a.
func SAES(a uint8) Instr { return New(OpSAES, a, 0) }

// FAES returns FAES @a.
func FAES(a uint8) Instr { return New(OpFAES, a, 0) }

// Inc returns INC @a, delta for delta in 1..4.
func Inc(a uint8, delta uint8) Instr {
	if delta < 1 || delta > 4 {
		panic("cuisa: INC delta must be 1..4")
	}
	return New(OpINC, a, delta-1)
}

// Xor returns XOR @a, @b (result into @b).
func Xor(a, b uint8) Instr { return New(OpXOR, a, b) }

// Equ returns EQU @a, @b.
func Equ(a, b uint8) Instr { return New(OpEQU, a, b) }

// ShIn returns SHIN @a.
func ShIn(a uint8) Instr { return New(OpSHIN, a, 0) }

// ShOut returns SHOUT @a.
func ShOut(a uint8) Instr { return New(OpSHOUT, a, 0) }

// Mov returns MOV @a, @b (copy @a into @b).
func Mov(a, b uint8) Instr { return New(OpMOV, a, b) }
