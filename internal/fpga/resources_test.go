package fpga

import "testing"

// TestMCCPMatchesPaperTotals pins the calibration: a four-core MCCP must
// reproduce the paper's reported 4084 slices and 26 block RAMs (§VII.A).
func TestMCCPMatchesPaperTotals(t *testing.T) {
	d := MCCPDesign(4)
	if got := d.Slices(); got != PaperSlices {
		t.Errorf("4-core slices = %d, want %d", got, PaperSlices)
	}
	if got := d.BRAMs(); got != PaperBRAMs {
		t.Errorf("4-core BRAMs = %d, want %d", got, PaperBRAMs)
	}
	if f := d.FmaxMHz(); f < PaperFrequencyMHz {
		t.Errorf("Fmax %.0f MHz below the paper's %.0f MHz clock", f, PaperFrequencyMHz)
	}
}

func TestScalingMonotonic(t *testing.T) {
	prev := 0
	for n := 1; n <= 8; n++ {
		s := MCCPDesign(n).Slices()
		if s <= prev {
			t.Fatalf("slices not increasing at %d cores", n)
		}
		prev = s
	}
	// The scheduler/crossbar overhead amortizes: per-core cost shrinks.
	c2 := float64(MCCPDesign(2).Slices()) / 2
	c8 := float64(MCCPDesign(8).Slices()) / 8
	if c8 >= c2 {
		t.Errorf("per-core slice cost should shrink with scale: %f vs %f", c8, c2)
	}
}

func TestReconfigRegionFitsBothEngines(t *testing.T) {
	for _, c := range []Component{AESCore, WhirlpoolCore} {
		if c.Slices > DemoRegion.Slices || c.BRAMs > DemoRegion.BRAMs {
			t.Errorf("%s (%d slices, %d BRAM) does not fit the %d-slice/%d-BRAM region",
				c.Name, c.Slices, c.BRAMs, DemoRegion.Slices, DemoRegion.BRAMs)
		}
	}
}
