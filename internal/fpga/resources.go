// Package fpga models the Virtex-4 SX35-11 resource budget of the paper's
// implementation: per-component slice/BRAM estimates calibrated to the
// published totals (4084 slices and 26 BRAMs at 190 MHz for the four-core
// MCCP, §VII.A) and to the reconfigurable-region figures of Table IV.
//
// This is an accounting model, not a synthesis tool: its purpose is to
// regenerate the area columns of Tables III and IV and to let scaling
// studies (core-count sweeps) report area alongside throughput.
package fpga

// Component is one RTL block's resource estimate.
type Component struct {
	Name    string
	Slices  int
	BRAMs   int
	FmaxMHz float64 // post-PAR achievable clock for this block
}

// Per-component estimates. AES and Whirlpool match Table IV exactly; the
// remaining blocks are calibrated so that a four-core MCCP reproduces the
// paper's 4084 slices / 26 BRAMs.
var (
	// AESCore is the Chodowiec-Gaj-style iterative AES encryption core with
	// its key-schedule support (Table IV row "AES Encryption (with KS)":
	// 351 slices, 4 BRAMs).
	AESCore = Component{Name: "aes-core", Slices: 351, BRAMs: 4, FmaxMHz: 222}
	// WhirlpoolCore is the Table IV Whirlpool hashing core.
	WhirlpoolCore = Component{Name: "whirlpool-core", Slices: 1153, BRAMs: 4, FmaxMHz: 205}
	// GHashCore is the 3-bit digit-serial GF(2^128) multiplier. It is the
	// critical path of the model (the paper's system clock is 190 MHz).
	GHashCore = Component{Name: "ghash-core", Slices: 280, BRAMs: 0, FmaxMHz: 193}
	// UnitLogic covers the bank register, decoder, XOR/comparator, Inc and
	// I/O cores of one Cryptographic Unit.
	UnitLogic = Component{Name: "unit-logic", Slices: 115, BRAMs: 0, FmaxMHz: 240}
	// Controller is one PicoBlaze-class 8-bit controller; its instruction
	// memory block RAM is shared between neighbouring cores and accounted
	// separately.
	Controller = Component{Name: "controller", Slices: 96, BRAMs: 0, FmaxMHz: 235}
	// CoreFIFOs are the two 512x32 packet FIFOs, folded into one dual-port
	// block RAM.
	CoreFIFOs = Component{Name: "core-fifos", Slices: 36, BRAMs: 1, FmaxMHz: 260}
	// KeyCache is the per-core round-key store (distributed RAM).
	KeyCache = Component{Name: "key-cache", Slices: 22, BRAMs: 0, FmaxMHz: 260}
	// TaskScheduler is the 8-bit scheduler controller plus its program
	// store and the instruction/return registers.
	TaskScheduler = Component{Name: "task-scheduler", Slices: 180, BRAMs: 2, FmaxMHz: 230}
	// KeyScheduler is the shared AES key-expansion unit with the Key Memory
	// block.
	KeyScheduler = Component{Name: "key-scheduler", Slices: 160, BRAMs: 2, FmaxMHz: 225}
	// CrossBar is the 32-bit I/O crossbar.
	CrossBar = Component{Name: "crossbar", Slices: 128, BRAMs: 0, FmaxMHz: 250}
)

// Design is a set of instantiated components.
type Design struct {
	Name       string
	Components []Component
	Counts     []int
}

// Add appends count instances of c.
func (d *Design) Add(c Component, count int) {
	d.Components = append(d.Components, c)
	d.Counts = append(d.Counts, count)
}

// Slices totals slice usage.
func (d *Design) Slices() int {
	t := 0
	for i, c := range d.Components {
		t += c.Slices * d.Counts[i]
	}
	return t
}

// BRAMs totals block-RAM usage. Fractional sharing (the pairwise shared
// instruction memories) is handled by the MCCP constructor below.
func (d *Design) BRAMs() int {
	t := 0
	for i, c := range d.Components {
		t += c.BRAMs * d.Counts[i]
	}
	return t
}

// FmaxMHz is the design's clock ceiling: the slowest component bounds it.
func (d *Design) FmaxMHz() float64 {
	f := 1e9
	for i, c := range d.Components {
		if d.Counts[i] > 0 && c.FmaxMHz < f {
			f = c.FmaxMHz
		}
	}
	return f
}

// MCCPDesign builds the resource model of an n-core MCCP with AES units.
func MCCPDesign(n int) *Design {
	d := &Design{Name: "mccp"}
	d.Add(AESCore, n)
	d.Add(GHashCore, n)
	d.Add(UnitLogic, n)
	d.Add(Controller, n)
	d.Add(CoreFIFOs, n)
	d.Add(KeyCache, n)
	// Shared instruction memories: one BRAM per core pair.
	d.Add(Component{Name: "shared-imem", Slices: 8, BRAMs: 1, FmaxMHz: 260}, (n+1)/2)
	d.Add(TaskScheduler, 1)
	d.Add(KeyScheduler, 1)
	d.Add(CrossBar, 1)
	return d
}

// ReconfigRegion is the partial-reconfiguration area reserved in each
// Cryptographic Unit (paper §VII.B: 1280 slices and 16 BRAMs for the
// demonstrator region).
type ReconfigRegion struct {
	Slices int
	BRAMs  int
}

// DemoRegion is the paper's measured region.
var DemoRegion = ReconfigRegion{Slices: 1280, BRAMs: 16}

// PaperFrequencyMHz is the reported MCCP operating frequency.
const PaperFrequencyMHz = 190.0

// PaperSlices and PaperBRAMs are the reported four-core totals.
const (
	PaperSlices = 4084
	PaperBRAMs  = 26
)
