package whirlpool

import (
	"encoding/hex"
	"testing"
	"testing/quick"
)

// ISO test vectors (the "final" Whirlpool, as shipped in the reference
// implementation's iso-test-vectors.txt).
var vectors = []struct {
	in  string
	out string
}{
	{"", "19fa61d75522a4669b44e39c1d2e1726c530232130d407f89afee0964997f7a73e83be698b288febcf88e3e03c4f0757ea8964e59b63d93708b138cc42a66eb3"},
	{"a", "8aca2602792aec6f11a67206531fb7d7f0dff59413145e6973c45001d0087b42d11bc645413aeff63a42391a39145a591a92200d560195e53b478584fdae231a"},
	{"abc", "4e2448a4c6f486bb16b6562c73b4020bf3043e3a731bce721ae1b303d97e6d4c7181eebdb6c57e277d0e34957114cbd6c797fc9d95d8b582d225292076d4eef5"},
	{"message digest", "378c84a4126e2dc6e56dcc7458377aac838d00032230f53ce1f5700c0ffb4d3b8421557659ef55c106b4b52ac5a4aaa692ed920052838f3362e86dbd37a8903e"},
	{"abcdefghijklmnopqrstuvwxyz", "f1d754662636ffe92c82ebb9212a484a8d38631ead4238f5442ee13b8054e41b08bf2a9251c30b6a0b8aae86177ab4a6f68f673e7207865d5d9819a3dba4eb3b"},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", "dc37e008cf9ee69bf11f00ed9aba26901dd7c28cdec066cc6af42e40f82f3a1e08eba26629129d8fb7cb57211b9281a65517cc879d7b962142c65f5a7af01467"},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", "466ef18babb0154d25b9d38a6414f5c08784372bccb204d6549c4afadb6014294d5bd8df2a6c44e538cd047b2681a51a2c60481e88c5a20b2c2a80cf3a9a083b"},
	{"abcdbcdecdefdefgefghfghighijhijk", "2a987ea40f917061f5d6f0a0e4644f488a7a5a52deee656207c562f988e95c6916bdc8031bc5be1b7b947639fe050b56939baaa0adff9ae6745b7b181c3be3fd"},
}

func TestISOVectors(t *testing.T) {
	for _, v := range vectors {
		got := Sum([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Whirlpool(%q) =\n %x\nwant\n %s", v.in, got, v.out)
		}
	}
}

func TestSBoxAnchors(t *testing.T) {
	// Known S-box values from the specification's table.
	if SBox(0x00) != 0x18 {
		t.Errorf("S[0x00] = %#x, want 0x18", SBox(0x00))
	}
	if SBox(0x01) != 0x23 {
		t.Errorf("S[0x01] = %#x, want 0x23", SBox(0x01))
	}
	// Permutation check.
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		v := SBox(byte(i))
		if seen[v] {
			t.Fatalf("S-box not a permutation at %#x", i)
		}
		seen[v] = true
	}
}

func TestPadMessage(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 100} {
		p := PadMessage(make([]byte, n))
		if len(p)%BlockBytes != 0 {
			t.Errorf("pad(%d) = %d bytes, not a block multiple", n, len(p))
		}
		if p[n] != 0x80 {
			t.Errorf("pad(%d): missing 0x80 marker", n)
		}
	}
	// 32 bytes of message leaves no room for 0x80 + length in one block.
	if len(PadMessage(make([]byte, 32))) != 2*BlockBytes {
		t.Error("32-byte message must pad to two blocks")
	}
}

func TestAvalanche(t *testing.T) {
	f := func(msg []byte, pos uint16, bit uint8) bool {
		if len(msg) == 0 {
			return true
		}
		mut := append([]byte(nil), msg...)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		a, b := Sum(msg), Sum(mut)
		diff := 0
		for i := range a {
			for k := 0; k < 8; k++ {
				if (a[i]^b[i])>>uint(k)&1 != 0 {
					diff++
				}
			}
		}
		// A single-bit flip should change roughly half the 512 output bits.
		return diff > 150 && diff < 362
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum2KB(b *testing.B) {
	msg := make([]byte, 2048)
	b.SetBytes(2048)
	for i := 0; i < b.N; i++ {
		Sum(msg)
	}
}
