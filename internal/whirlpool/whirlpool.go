// Package whirlpool implements the Whirlpool hash function (ISO/IEC
// 10118-3, the final 2003 revision) from scratch. The paper loads a
// Whirlpool core into the Cryptographic Unit's reconfigurable region as its
// partial-reconfiguration demonstrator (Table IV: 1153 slices, 4 BRAMs,
// 97 kB bitstream).
//
// Whirlpool is a Miyaguchi-Preneel construction over the 512-bit block
// cipher W: ten rounds of an AES-like SPN on an 8x8 byte state, with the
// S-box built from 4-bit mini-boxes and diffusion by a circulant MDS matrix
// over GF(2^8) mod x^8+x^4+x^3+x^2+1 (0x11D).
package whirlpool

// Rounds is the number of W rounds.
const Rounds = 10

// BlockBytes is the 512-bit block size in bytes.
const BlockBytes = 64

// DigestBytes is the 512-bit digest size in bytes.
const DigestBytes = 64

var (
	sbox [256]byte
	// cir is the circulant MDS row (1, 1, 4, 1, 8, 5, 2, 9).
	cir = [8]byte{1, 1, 4, 1, 8, 5, 2, 9}
	// rc holds the round-constant matrices' first rows (other rows zero).
	rc [Rounds + 1][8]byte
	// mulTab caches GF(2^8) multiplication by the MDS coefficients.
	mulTab [16][256]byte
)

// gmul multiplies in GF(2^8) modulo 0x11D (Whirlpool's polynomial differs
// from AES's 0x11B).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1D
		}
		b >>= 1
	}
	return p
}

func init() {
	// The S-box is generated from the spec's mini-box construction:
	// E (an exponential 4-bit box), its inverse, and the involution R.
	E := [16]byte{0x1, 0xB, 0x9, 0xC, 0xD, 0x6, 0xF, 0x3, 0xE, 0x8, 0x7, 0x4, 0xA, 0x2, 0x5, 0x0}
	R := [16]byte{0x7, 0xC, 0xB, 0xD, 0xE, 0x4, 0x9, 0xF, 0x6, 0x3, 0x8, 0xA, 0x2, 0x5, 0x1, 0x0}
	var Einv [16]byte
	for i, v := range E {
		Einv[v] = byte(i)
	}
	for x := 0; x < 256; x++ {
		a := E[x>>4]
		b := Einv[x&0xF]
		r := R[a^b]
		sbox[x] = E[a^r]<<4 | Einv[b^r]
	}
	for r := 1; r <= Rounds; r++ {
		for j := 0; j < 8; j++ {
			rc[r][j] = sbox[8*(r-1)+j]
		}
	}
	for _, c := range cir {
		if mulTab[c][1] != 0 {
			continue
		}
		for x := 0; x < 256; x++ {
			mulTab[c][x] = gmul(byte(x), c)
		}
	}
}

// state is the 8x8 byte matrix; s[r][c] with the input byte k mapped to
// row k/8, column k%8 (the μ mapping).
type state [8][8]byte

func toState(b []byte) state {
	var s state
	for i := 0; i < 64; i++ {
		s[i/8][i%8] = b[i]
	}
	return s
}

func (s state) bytes() []byte {
	out := make([]byte, 64)
	for i := 0; i < 64; i++ {
		out[i] = s[i/8][i%8]
	}
	return out
}

func (s state) xor(o state) state {
	var r state
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			r[i][j] = s[i][j] ^ o[i][j]
		}
	}
	return r
}

// round applies one W round: SubBytes (γ), ShiftColumns (π), MixRows (θ),
// AddRoundKey (σ).
func round(s, k state) state {
	var t state
	// γ: byte substitution.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			t[i][j] = sbox[s[i][j]]
		}
	}
	// π: column j is cyclically shifted downwards by j positions.
	var p state
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			p[(i+j)%8][j] = t[i][j]
		}
	}
	// θ: rows multiplied by the circulant matrix cir(1,1,4,1,8,5,2,9).
	var m state
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var acc byte
			for k2 := 0; k2 < 8; k2++ {
				acc ^= mulTab[cir[(j+8-k2)%8]][p[i][k2]]
			}
			m[i][j] = acc
		}
	}
	return m.xor(k)
}

// rcState builds the round-constant matrix for round r.
func rcState(r int) state {
	var s state
	copy(s[0][:], rc[r][:])
	return s
}

// wEncrypt runs the W block cipher: the key schedule applies the round
// function with round constants to the key, and the data path uses the
// evolving key states.
func wEncrypt(key, pt state) state {
	k := key
	s := pt.xor(k)
	for r := 1; r <= Rounds; r++ {
		k = round(k, rcState(r))
		s = round(s, k)
	}
	return s
}

// Sum computes the Whirlpool digest of msg.
func Sum(msg []byte) [DigestBytes]byte {
	// Padding: append 0x80, zero-fill, and end with the 256-bit big-endian
	// bit length in the final 32 bytes.
	bitLen := uint64(len(msg)) * 8
	padded := append(append([]byte(nil), msg...), 0x80)
	for len(padded)%BlockBytes != 32 {
		padded = append(padded, 0)
	}
	lenField := make([]byte, 32)
	for i := 0; i < 8; i++ {
		lenField[31-i] = byte(bitLen >> (8 * uint(i)))
	}
	padded = append(padded, lenField...)

	var h state // H_0 = 0
	for off := 0; off < len(padded); off += BlockBytes {
		m := toState(padded[off : off+BlockBytes])
		// Miyaguchi-Preneel: H_i = W_{H_{i-1}}(m) ^ m ^ H_{i-1}.
		h = wEncrypt(h, m).xor(m).xor(h)
	}
	var out [DigestBytes]byte
	copy(out[:], h.bytes())
	return out
}

// PadMessage returns msg with Whirlpool padding applied — the formatting
// the communication controller performs before streaming a hash job into a
// reconfigured core.
func PadMessage(msg []byte) []byte {
	bitLen := uint64(len(msg)) * 8
	padded := append(append([]byte(nil), msg...), 0x80)
	for len(padded)%BlockBytes != 32 {
		padded = append(padded, 0)
	}
	lenField := make([]byte, 32)
	for i := 0; i < 8; i++ {
		lenField[31-i] = byte(bitLen >> (8 * uint(i)))
	}
	return append(padded, lenField...)
}

// SBox exposes the derived S-box for table audits.
func SBox(x byte) byte { return sbox[x] }
