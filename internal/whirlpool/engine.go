package whirlpool

import "mccp/internal/bits"

// Timing model of the compact Whirlpool core occupying the reconfigurable
// region (Table IV: 1153 slices, 4 BRAMs). A 64-bit datapath absorbs one
// 128-bit chunk per ChunkCycles and runs the ten W rounds (data path and
// key schedule interleaved on the shared round logic) in BlockCycles once a
// full 512-bit block is assembled.
const (
	ChunkCycles = 2
	BlockCycles = 112 // ~10 rounds x (8 row ops + key step) + load/unload
)

// Engine adapts Whirlpool to the Cryptographic Unit's engine slot: SAES
// absorbs one 128-bit chunk, and once the message (pre-padded by the
// communication controller) is fully absorbed, FAES reads the 512-bit
// digest back as four chunks via the ChunkReader path.
type Engine struct {
	buf     []byte
	h       state
	readyAt uint64
	// digest readout
	out     [DigestBytes]byte
	outIdx  int
	settled bool
}

// NewEngine returns a fresh engine (H_0 = 0, empty buffer).
func NewEngine() *Engine { return &Engine{} }

// Reset clears all hashing state for a new message.
func (e *Engine) Reset() { *e = Engine{} }

// Busy implements cryptounit.CipherEngine. Absorption is self-completing
// (no Collect needed), so the engine never reports busy; back-to-back
// starts serialize through ReadyAt.
func (e *Engine) Busy() bool { return false }

// ReadyAt implements cryptounit.CipherEngine.
func (e *Engine) ReadyAt() uint64 { return e.readyAt }

// Start absorbs one 128-bit chunk at cycle now and returns the completion
// cycle (longer when the chunk completes a 512-bit block and triggers a
// compression).
func (e *Engine) Start(now uint64, in bits.Block) uint64 {
	if now < e.readyAt {
		now = e.readyAt // hardware back-pressures the start strobe
	}
	e.buf = append(e.buf, in[:]...)
	e.settled = false
	cost := uint64(ChunkCycles)
	if len(e.buf) == BlockBytes {
		m := toState(e.buf)
		e.h = wEncrypt(e.h, m).xor(m).xor(e.h)
		e.buf = e.buf[:0]
		cost = BlockCycles
	}
	e.readyAt = now + cost
	return e.readyAt
}

// Collect implements cryptounit.CipherEngine. It is never reached for a
// hash engine (Busy is always false, so FAES takes the ChunkReader path),
// but the interface requires it.
func (e *Engine) Collect() bits.Block { return bits.Block{} }

// ReadChunk implements cryptounit.ChunkReader: successive 128-bit slices of
// the digest. The digest snapshot is taken at the first read after the
// final absorbed block.
func (e *Engine) ReadChunk() bits.Block {
	if !e.settled {
		copy(e.out[:], e.h.bytes())
		e.outIdx = 0
		e.settled = true
	}
	var b bits.Block
	copy(b[:], e.out[16*e.outIdx:16*e.outIdx+16])
	e.outIdx = (e.outIdx + 1) % 4
	return b
}
