package qos

import "fmt"

// Drain policy names.
const (
	DrainStrict       = "strict-priority"
	DrainWeightedFair = "weighted-fair"
)

// DrainNames lists the selectable drain policies.
func DrainNames() []string { return []string{DrainStrict, DrainWeightedFair} }

// DrainPolicy picks which class queue to pop next when a dispatch slot
// frees. depth reports each class's current queue depth; Next returns
// false when every queue is empty. Policies may keep state (weighted-fair
// credits), so every Shaper gets a fresh instance.
type DrainPolicy interface {
	Name() string
	Next(depth func(Class) int) (Class, bool)
}

// DrainByName returns a fresh drain policy; the empty string selects
// strict priority.
func DrainByName(name string) (DrainPolicy, error) {
	switch name {
	case "", DrainStrict:
		return StrictDrain{}, nil
	case DrainWeightedFair:
		return NewWeightedFair(DefaultWeights), nil
	}
	return nil, fmt.Errorf("qos: unknown drain policy %q (have %s, %s)",
		name, DrainStrict, DrainWeightedFair)
}

// StrictDrain always serves the highest-priority non-empty class. Voice
// latency is minimal, but sustained high-priority load starves background
// completely — the documented trade-off the weighted-fair policy exists
// to fix.
type StrictDrain struct{}

// Name implements DrainPolicy.
func (StrictDrain) Name() string { return DrainStrict }

// Next implements DrainPolicy.
func (StrictDrain) Next(depth func(Class) int) (Class, bool) {
	for c := Class(NumClasses - 1); c >= 0; c-- {
		if depth(c) > 0 {
			return c, true
		}
	}
	return 0, false
}

// DefaultWeights is the weighted-fair service ratio, voice-heavy but
// never zero: background gets one dispatch for every eight voice
// dispatches under full load, which bounds its wait instead of starving
// it.
var DefaultWeights = [NumClasses]int{Background: 1, Data: 2, Video: 4, Voice: 8}

// WeightedFair is a smooth weighted round-robin over the non-empty
// classes: each call credits every backlogged class with its weight and
// serves the largest accumulated credit, then charges the served class
// the round's total. Service converges to the weight ratio, is
// deterministic, and never starves a backlogged class.
type WeightedFair struct {
	weights [NumClasses]int
	credit  [NumClasses]int
}

// NewWeightedFair builds a weighted-fair drain; non-positive weights are
// lifted to 1 so no class can be configured into starvation.
func NewWeightedFair(weights [NumClasses]int) *WeightedFair {
	w := &WeightedFair{weights: weights}
	for i := range w.weights {
		if w.weights[i] <= 0 {
			w.weights[i] = 1
		}
	}
	return w
}

// Name implements DrainPolicy.
func (*WeightedFair) Name() string { return DrainWeightedFair }

// Next implements DrainPolicy.
func (w *WeightedFair) Next(depth func(Class) int) (Class, bool) {
	total := 0
	best, bestCredit := Class(-1), 0
	// Highest priority first, so equal credits break toward voice.
	for _, c := range Classes() {
		if depth(c) == 0 {
			continue
		}
		w.credit[c] += w.weights[c]
		total += w.weights[c]
		if best < 0 || w.credit[c] > bestCredit {
			best, bestCredit = c, w.credit[c]
		}
	}
	if best < 0 {
		return 0, false
	}
	w.credit[best] -= total
	return best, true
}
