package qos

import "fmt"

// Drain policy names.
const (
	DrainStrict       = "strict-priority"
	DrainWeightedFair = "weighted-fair"
	DrainDRRBytes     = "drr-bytes"
)

// DrainNames lists the selectable drain policies.
func DrainNames() []string { return []string{DrainStrict, DrainWeightedFair, DrainDRRBytes} }

// Weights is a per-class service ratio for the weighted drains, indexed
// by Class (Background first, Voice last — the Class numbering).
type Weights [NumClasses]int

// QueueView is the drain policy's read-only view of the class queues:
// occupancy for every policy, head-packet size for byte-based ones.
type QueueView interface {
	// Depth reports a class queue's occupancy.
	Depth(c Class) int
	// HeadBytes reports the payload size of the packet at the front of a
	// class queue (0 when empty).
	HeadBytes(c Class) int
}

// DrainPolicy picks which class queue to pop next when a dispatch slot
// frees. Next returns false when every queue is empty. Policies may keep
// state (weighted-fair credits, DRR deficits), so every Shaper gets a
// fresh instance.
type DrainPolicy interface {
	Name() string
	Next(q QueueView) (Class, bool)
}

// DrainByName returns a fresh drain policy; the empty string selects
// strict priority.
func DrainByName(name string) (DrainPolicy, error) {
	switch name {
	case "", DrainStrict:
		return StrictDrain{}, nil
	case DrainWeightedFair:
		return NewWeightedFair(DefaultWeights), nil
	case DrainDRRBytes:
		return NewDRRBytes(DefaultWeights), nil
	}
	return nil, fmt.Errorf("qos: unknown drain policy %q (have %s, %s, %s)",
		name, DrainStrict, DrainWeightedFair, DrainDRRBytes)
}

// StrictDrain always serves the highest-priority non-empty class. Voice
// latency is minimal, but sustained high-priority load starves background
// completely — the documented trade-off the weighted policies exist to
// fix.
type StrictDrain struct{}

// Name implements DrainPolicy.
func (StrictDrain) Name() string { return DrainStrict }

// Next implements DrainPolicy.
func (StrictDrain) Next(q QueueView) (Class, bool) {
	for c := Class(NumClasses - 1); c >= 0; c-- {
		if q.Depth(c) > 0 {
			return c, true
		}
	}
	return 0, false
}

// DefaultWeights is the default service ratio, voice-heavy but never
// zero: background gets one dispatch for every eight voice dispatches
// under full load, which bounds its wait instead of starving it.
var DefaultWeights = Weights{Background: 1, Data: 2, Video: 4, Voice: 8}

// WeightedFair is a smooth weighted round-robin over the non-empty
// classes: each call credits every backlogged class with its weight and
// serves the largest accumulated credit, then charges the served class
// the round's total. Service converges to the weight ratio in packets,
// is deterministic, and never starves a backlogged class.
type WeightedFair struct {
	weights Weights
	credit  [NumClasses]int
}

// NewWeightedFair builds a weighted-fair drain; non-positive weights are
// lifted to 1 so no class can be configured into starvation.
func NewWeightedFair(weights Weights) *WeightedFair {
	w := &WeightedFair{weights: weights.sanitized()}
	return w
}

// sanitized lifts non-positive weights to 1.
func (w Weights) sanitized() Weights {
	for i := range w {
		if w[i] <= 0 {
			w[i] = 1
		}
	}
	return w
}

// Name implements DrainPolicy.
func (*WeightedFair) Name() string { return DrainWeightedFair }

// Next implements DrainPolicy.
func (w *WeightedFair) Next(q QueueView) (Class, bool) {
	total := 0
	best, bestCredit := Class(-1), 0
	// Highest priority first, so equal credits break toward voice.
	for _, c := range Classes() {
		if q.Depth(c) == 0 {
			continue
		}
		w.credit[c] += w.weights[c]
		total += w.weights[c]
		if best < 0 || w.credit[c] > bestCredit {
			best, bestCredit = c, w.credit[c]
		}
	}
	if best < 0 {
		return 0, false
	}
	w.credit[best] -= total
	return best, true
}

// DRRQuantumBytes is the deficit-round-robin base quantum: a class with
// weight w earns w*512 bytes of credit per visit. 512 sits between the
// voice frame (256 B) and the bulk packet (2048 B), so small-packet
// classes do not need multiple visits per dispatch while large-packet
// classes cannot overdraw more than a few visits ahead.
const DRRQuantumBytes = 512

// DRRBytes is deficit round robin by payload bytes: classes are visited
// in priority order, each visit earns the class its weight's worth of
// byte credit, and a class dispatches only while its accumulated credit
// covers its head packet. Unlike the packet-count WeightedFair, service
// converges to the weight ratio in *bytes*, which is what a mixed
// packet-size workload (256 B voice frames vs 2 KB bulk) needs for the
// configured ratio to mean anything on the wire.
type DRRBytes struct {
	weights Weights
	deficit [NumClasses]int
	cur     int  // index into Classes() order (voice first)
	fresh   bool // quantum not yet granted for the current visit
}

// NewDRRBytes builds a DRR-by-bytes drain; non-positive weights are
// lifted to 1.
func NewDRRBytes(weights Weights) *DRRBytes {
	return &DRRBytes{weights: weights.sanitized(), fresh: true}
}

// Name implements DrainPolicy.
func (*DRRBytes) Name() string { return DrainDRRBytes }

// Next implements DrainPolicy.
func (d *DRRBytes) Next(q QueueView) (Class, bool) {
	order := Classes()
	backlog := 0
	for _, c := range order {
		backlog += q.Depth(c)
	}
	if backlog == 0 {
		// Idle resets all credit: a class must not bank deficit across
		// idle periods and burst later (classic DRR empties its quantum
		// when the queue empties).
		d.deficit = [NumClasses]int{}
		d.cur, d.fresh = 0, true
		return 0, false
	}
	for {
		c := order[d.cur]
		if q.Depth(c) == 0 {
			d.deficit[c] = 0
			d.advance()
			continue
		}
		if d.fresh {
			d.deficit[c] += d.weights[c] * DRRQuantumBytes
			d.fresh = false
		}
		if hb := q.HeadBytes(c); d.deficit[c] >= hb {
			d.deficit[c] -= hb
			return c, true
		}
		d.advance()
	}
}

func (d *DRRBytes) advance() {
	d.cur = (d.cur + 1) % NumClasses
	d.fresh = true
}
