package qos

import (
	"testing"

	"mccp/internal/obs"
	"mccp/internal/sim"
)

// shaperAllocs measures allocations for one submit-and-drain round trip
// through the shaper with the given tracer attached (nil = no tracer).
func shaperAllocs(attach bool) float64 {
	eng, ft := newFake(4)
	s := NewShaper(eng, ft, Config{Capacity: 8})
	if attach {
		s.SetTracer(obs.NewTracer(eng, obs.TraceConfig{}))
	}
	payload := make([]byte, 64)
	cb := func(_ []byte, err error) {}
	// Warm the item pool and the event queue so steady state is measured.
	for i := 0; i < 8; i++ {
		s.Encrypt(Voice, 1, nil, nil, payload, cb)
	}
	eng.Run()
	return testing.AllocsPerRun(200, func() {
		s.Encrypt(Voice, 1, nil, nil, payload, cb)
		eng.Run()
	})
}

// TestTracerDisabledAddsNoAllocations: with a tracer attached but
// disabled, the per-packet path must allocate exactly as much as with no
// tracer at all — the observability plane costs a branch, nothing more.
func TestTracerDisabledAddsNoAllocations(t *testing.T) {
	without := shaperAllocs(false)
	with := shaperAllocs(true)
	if with > without {
		t.Errorf("disabled tracer adds allocations: %.1f with vs %.1f without (per packet)",
			with, without)
	}
	t.Logf("allocs/packet: %.1f without tracer, %.1f with disabled tracer", without, with)
}

// TestTracerSpansMatchShaperVerdicts: with tracing on, every admission
// opens a span and every span's end-to-end duration equals the latency
// sample the shaper records for it — the identity the E18 harness
// reconciliation rests on.
func TestTracerSpansMatchShaperVerdicts(t *testing.T) {
	eng, ft := newFake(2)
	s := NewShaper(eng, ft, Config{Capacity: 4})
	tr := obs.NewTracer(eng, obs.TraceConfig{Enabled: true})
	s.SetTracer(tr)
	payload := make([]byte, 128)
	const packets = 12
	for i := 0; i < packets; i++ {
		s.Encrypt(Class(i%NumClasses), 1, nil, nil, payload, func(_ []byte, err error) {})
	}
	eng.Run()

	spans := tr.Spans()
	if len(spans) != packets {
		t.Fatalf("%d spans, want %d", len(spans), packets)
	}
	var latencies []sim.Time
	for c := Class(0); int(c) < NumClasses; c++ {
		latencies = s.AppendLatencySamples(c, latencies)
	}
	counts := map[sim.Time]int{}
	for _, l := range latencies {
		counts[l]++
	}
	for i := range spans {
		sp := &spans[i]
		if sp.Outcome != obs.OutcomeOK {
			t.Errorf("span %d outcome %v, want ok", sp.ID, sp.Outcome)
			continue
		}
		if counts[sp.Total()] == 0 {
			t.Errorf("span %d total %d has no matching shaper latency sample", sp.ID, sp.Total())
			continue
		}
		counts[sp.Total()]--
	}
}
