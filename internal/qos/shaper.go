package qos

import (
	"fmt"
	"sort"

	"mccp/internal/core"
	"mccp/internal/obs"
	"mccp/internal/sim"
)

// ErrShed is returned to a packet dropped by the admission controller:
// its class queue was full, so instead of the paper's bare error flag the
// caller gets an explicit load-shedding verdict (and the per-class Shed
// counter ticks).
var ErrShed = fmt.Errorf("qos: class queue full (load shed)")

// ErrExpired is returned to a packet whose deadline passed while it was
// still queued: the shaper drops it at dispatch time instead of wasting
// device capacity on work nobody can use. Expired drops count under the
// class's Shed total (they are load shedding, decided by age instead of
// queue depth) and separately under Expired.
var ErrExpired = fmt.Errorf("qos: deadline expired before dispatch (dropped)")

// ErrAged is returned to a packet that sat in its class queue longer than
// the shaper's AgeLimit: the CoDel-style in-queue aging drops stale
// packets (typically bulk traffic with no explicit deadline) before they
// reach the device, instead of serving data nobody is waiting for
// anymore. Aged drops count under Shed plus the dedicated Aged counter.
var ErrAged = fmt.Errorf("qos: queue age limit exceeded (dropped stale packet)")

// Target is the device-facing surface the shaper drives — in practice
// radio.CommController, but any packet engine with the same asynchronous
// contract works (cores are a detail below this interface).
type Target interface {
	Encrypt(ch int, nonce, aad, payload []byte, cb func([]byte, error))
	Decrypt(ch int, nonce, aad, ct, tag []byte, cb func([]byte, error))
}

// Config sizes a Shaper.
type Config struct {
	// Capacity bounds the operations handed to the device concurrently.
	// 0 means pass-through: the shaper only tags, counts and measures,
	// and the device's own request queue absorbs bursts. A positive
	// capacity activates the class queues and the drain policy.
	Capacity int
	// QueueDepth bounds each class queue (default 64). A packet arriving
	// at a full queue is shed with ErrShed.
	QueueDepth int
	// Drain selects the drain policy by name (default strict-priority).
	Drain string
	// Weights overrides the weighted drains' service ratio (zero value
	// picks DefaultWeights; ignored by strict priority). Weighted-fair
	// converges to the ratio in packets, drr-bytes in payload bytes.
	Weights Weights
	// AgeLimit enables CoDel-style in-queue aging (0 = off): a packet
	// still queued AgeLimit cycles after arrival is dropped with ErrAged
	// — at dispatch time, and also on admission when its queue is full,
	// so a stale backlog makes room for fresh traffic instead of shedding
	// it.
	AgeLimit sim.Time
}

func (c *Config) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	var zero Weights
	if c.Weights == zero {
		c.Weights = DefaultWeights
	}
}

// ClassStats is one class's counter snapshot.
type ClassStats struct {
	Class Class
	// Submitted counts arrivals; Completed successful round trips; Shed
	// load-shedding drops (admission at a full queue, or expiry at
	// dispatch); Rejected device error-flag returns; Failed every other
	// device error (auth failures included).
	Submitted, Completed, Shed, Rejected, Failed uint64
	// Expired counts the subset of Shed dropped at dispatch time because
	// their deadline had already passed in the queue.
	Expired uint64
	// Aged counts the subset of Shed dropped by in-queue aging: queued
	// longer than the shaper's AgeLimit (distinct from Expired, which is
	// a per-packet deadline verdict).
	Aged uint64
	// Bytes is the payload volume of completed operations.
	Bytes uint64
	// QueuedPeak is the deepest the class queue ever got; QueuedNow its
	// current depth.
	QueuedPeak, QueuedNow int
	// DeadlineMisses counts completions after their deadline tag.
	DeadlineMisses uint64
	// FirstDispatch and LastCompletion bound the class's active interval
	// in virtual time (for per-class throughput over the class's own
	// window).
	FirstDispatch, LastCompletion sim.Time
}

// Accumulate adds another snapshot's counters into s — the one merge
// definition every cross-shaper aggregate uses. Counter fields sum
// (QueuedPeak takes the max); the virtual-time interval fields
// (FirstDispatch, LastCompletion) are left untouched, because they are
// only meaningful on a single timeline.
func (s *ClassStats) Accumulate(o ClassStats) {
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.Shed += o.Shed
	s.Rejected += o.Rejected
	s.Failed += o.Failed
	s.Expired += o.Expired
	s.Aged += o.Aged
	s.Bytes += o.Bytes
	s.DeadlineMisses += o.DeadlineMisses
	s.QueuedNow += o.QueuedNow
	if o.QueuedPeak > s.QueuedPeak {
		s.QueuedPeak = o.QueuedPeak
	}
}

// Mbps returns the class's delivered throughput at the modeled clock over
// its own active interval.
func (s ClassStats) Mbps(freqHz float64) float64 {
	if s.LastCompletion <= s.FirstDispatch {
		return 0
	}
	cycles := s.LastCompletion - s.FirstDispatch
	return float64(s.Bytes*8) / float64(cycles) * freqHz / 1e6
}

// item is one queued operation.
type item struct {
	run      func(done func([]byte, error))
	cb       func([]byte, error)
	bytes    int
	enqueued sim.Time
	deadline sim.Time // 0 = none
	// span is the packet's trace span (obs.NoSpan when tracing is off or
	// the packet was not sampled).
	span obs.SpanRef
}

// Shaper is the QoS front end: it admits packets into per-class bounded
// queues, drains them toward the device under the configured policy and
// capacity, and accounts latency per class. Like the rest of the
// simulation it is single-threaded: one caller submits and the engine
// delivers completions.
type Shaper struct {
	eng    *sim.Engine
	target Target
	cfg    Config
	drain  DrainPolicy

	queues   [NumClasses][]item
	inFlight int

	stats      [NumClasses]ClassStats
	dispatched [NumClasses]bool // FirstDispatch recorded (0 is a valid time)
	latency    [NumClasses][]sim.Time

	// Fault-injection state (internal/faults): killed makes every
	// submission fail immediately with that error; pausedUntil freezes the
	// pump (queued packets age and expire in place); deny is the brownout
	// admission mask — a denied class is shed at admission with ErrShed.
	killed      error
	pausedUntil sim.Time
	deny        [NumClasses]bool

	// tr traces packet lifecycle spans (nil = untraced; every obs call is
	// nil-safe, so the packet path pays only branches).
	tr *obs.Tracer
}

// SetTracer attaches a lifecycle tracer: every submission opens a span
// at admission, the pump marks dispatch, the device layer (sharing the
// same tracer) marks assignment/upload/retrieval, and completion or any
// admission verdict ends it. The tracer only reads the engine clock, so
// attaching one never perturbs virtual time.
func (s *Shaper) SetTracer(t *obs.Tracer) { s.tr = t }

// NewShaper builds a shaper over a target. It panics on an unknown drain
// policy name (callers validating user input should check DrainByName
// first, as the CLIs do).
func NewShaper(eng *sim.Engine, target Target, cfg Config) *Shaper {
	cfg.fill()
	drain, err := DrainByName(cfg.Drain)
	if err != nil {
		panic(err)
	}
	switch dr := drain.(type) {
	case *WeightedFair:
		*dr = *NewWeightedFair(cfg.Weights)
	case *DRRBytes:
		*dr = *NewDRRBytes(cfg.Weights)
	}
	s := &Shaper{eng: eng, target: target, cfg: cfg, drain: drain}
	for c := 0; c < NumClasses; c++ {
		s.stats[c].Class = Class(c)
	}
	return s
}

// DrainName returns the active drain policy's name.
func (s *Shaper) DrainName() string { return s.drain.Name() }

// Encrypt submits one packet for protection under a class, without a
// deadline.
func (s *Shaper) Encrypt(c Class, ch int, nonce, aad, payload []byte, cb func([]byte, error)) {
	s.EncryptDeadline(c, ch, nonce, aad, payload, 0, cb)
}

// EncryptDeadline submits one packet with an absolute virtual-time
// deadline tag. A packet still queued when its deadline passes is dropped
// at dispatch time with ErrExpired (counted under Shed/Expired); a packet
// dispatched in time but completing late still completes and ticks the
// class's DeadlineMisses counter.
func (s *Shaper) EncryptDeadline(c Class, ch int, nonce, aad, payload []byte, deadline sim.Time, cb func([]byte, error)) {
	s.submit(c, len(payload), deadline, cb, func(done func([]byte, error)) {
		s.target.Encrypt(ch, nonce, aad, payload, done)
	})
}

// Decrypt submits one packet for verification and recovery under a class.
func (s *Shaper) Decrypt(c Class, ch int, nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	s.submit(c, len(ct), 0, cb, func(done func([]byte, error)) {
		s.target.Decrypt(ch, nonce, aad, ct, tag, done)
	})
}

func (s *Shaper) submit(c Class, nbytes int, deadline sim.Time, cb func([]byte, error), run func(done func([]byte, error))) {
	c = ClassForPriority(int(c))
	st := &s.stats[c]
	st.Submitted++
	span := s.tr.Start(uint8(c), nbytes)
	if s.killed != nil {
		st.Failed++
		s.tr.EndErr(span, s.killed)
		if cb != nil {
			cb(nil, s.killed)
		}
		return
	}
	if s.deny[c] {
		st.Shed++
		s.tr.EndErr(span, ErrShed)
		if cb != nil {
			cb(nil, ErrShed)
		}
		return
	}
	if len(s.queues[c]) >= s.cfg.QueueDepth {
		// Before shedding the arrival, drop any dead backlog at the front
		// of the queue (over-age or already past its deadline): a full
		// queue of packets nobody wants is the exact situation in-queue
		// aging exists for.
		s.evictStale(c)
	}
	if len(s.queues[c]) >= s.cfg.QueueDepth {
		st.Shed++
		s.tr.EndErr(span, ErrShed)
		if cb != nil {
			cb(nil, ErrShed)
		}
		return
	}
	s.queues[c] = append(s.queues[c], item{
		run: run, cb: cb, bytes: nbytes, enqueued: s.eng.Now(), deadline: deadline, span: span,
	})
	if d := len(s.queues[c]); d > st.QueuedPeak {
		st.QueuedPeak = d
	}
	s.pump()
}

// Depth reports a class queue's occupancy (the drain policies' QueueView).
func (s *Shaper) Depth(c Class) int { return len(s.queues[c]) }

// HeadBytes reports the payload size at the front of a class queue (the
// byte-based drain policies' QueueView; 0 when empty).
func (s *Shaper) HeadBytes(c Class) int {
	if len(s.queues[c]) == 0 {
		return 0
	}
	return s.queues[c][0].bytes
}

// aged reports whether an item has outlived the shaper's age limit.
func (s *Shaper) aged(it item) bool {
	return s.cfg.AgeLimit != 0 && s.eng.Now()-it.enqueued > s.cfg.AgeLimit
}

// evictStale drops dead items from the front of a class queue — older
// than the AgeLimit (Shed/Aged, ErrAged) or past their deadline
// (Shed/Expired, ErrExpired). CoDel style: the oldest packets go first.
// Eviction runs before the drain policy ever sees the queue, so
// weighted-fair credit and DRR byte-deficit are only ever charged for
// packets that actually dispatch.
func (s *Shaper) evictStale(c Class) {
	for len(s.queues[c]) > 0 {
		it := s.queues[c][0]
		st := &s.stats[c]
		var verdict error
		switch {
		case s.aged(it):
			st.Shed++
			st.Aged++
			verdict = ErrAged
		case it.deadline != 0 && s.eng.Now() > it.deadline:
			st.Shed++
			st.Expired++
			verdict = ErrExpired
		default:
			return
		}
		s.queues[c] = s.queues[c][1:]
		s.tr.EndErr(it.span, verdict)
		if it.cb != nil {
			it.cb(nil, verdict)
		}
	}
}

// pump dispatches queued items while capacity allows, in drain-policy
// order. Deadline-expired and over-age items are dropped first — at
// dispatch time, before they consume device capacity or drain-policy
// credit — with their verdict counted under Shed/Expired or Shed/Aged.
func (s *Shaper) pump() {
	if s.eng.Now() < s.pausedUntil {
		return // frozen: the resume event scheduled by PauseUntil re-pumps
	}
	for s.cfg.Capacity == 0 || s.inFlight < s.cfg.Capacity {
		for c := Class(0); int(c) < NumClasses; c++ {
			s.evictStale(c)
		}
		c, ok := s.drain.Next(s)
		if !ok {
			return
		}
		it := s.queues[c][0]
		s.queues[c] = s.queues[c][1:]
		s.inFlight++
		if !s.dispatched[c] {
			s.dispatched[c] = true
			s.stats[c].FirstDispatch = s.eng.Now()
		}
		// Park the span for the device layer to claim: it.run invokes the
		// device submission synchronously, so the handoff needs no
		// allocation and cannot be interleaved.
		s.tr.MarkNow(it.span, obs.MarkDispatch)
		s.tr.SetPending(it.span)
		it.run(func(out []byte, err error) {
			s.inFlight--
			s.complete(c, it, out, err)
			s.pump()
		})
	}
}

// complete accounts one finished operation and delivers its callback.
func (s *Shaper) complete(c Class, it item, out []byte, err error) {
	st := &s.stats[c]
	now := s.eng.Now()
	switch {
	case err == nil:
		st.Completed++
		st.Bytes += uint64(it.bytes)
		st.LastCompletion = now
		s.latency[c] = append(s.latency[c], now-it.enqueued)
		if it.deadline != 0 && now > it.deadline {
			st.DeadlineMisses++
		}
	case err == core.ErrNoResources || err == core.ErrQueueFull:
		st.Rejected++
	default:
		st.Failed++
	}
	s.tr.EndErr(it.span, err)
	if it.cb != nil {
		it.cb(out, err)
	}
}

// Kill makes the shaper behave like dead hardware: every queued packet
// fails immediately with err (counted under Failed), and so does every
// later submission. In-flight operations already on the device complete
// normally — they had left the queue. Kill is the ShardCrash injector's
// service-side effect; it is permanent for the shaper's lifetime.
func (s *Shaper) Kill(err error) {
	s.killed = err
	for c := range s.queues {
		for _, it := range s.queues[c] {
			s.stats[c].Failed++
			s.tr.EndErr(it.span, err)
			if it.cb != nil {
				it.cb(nil, err)
			}
		}
		s.queues[c] = nil
	}
}

// Killed reports whether Kill has been called (and with what error).
func (s *Shaper) Killed() error { return s.killed }

// PauseUntil freezes the pump until absolute virtual time t: nothing
// dispatches, queued packets age and expire in place under the existing
// AgeLimit/deadline machinery, and at t a scheduled resume event drains
// the survivors. This is the ShardStall injector's service-side effect.
func (s *Shaper) PauseUntil(t sim.Time) {
	if t <= s.eng.Now() || t <= s.pausedUntil {
		return
	}
	s.pausedUntil = t
	s.eng.At(t, func() { s.pump() })
}

// SetDeny installs the brownout admission mask: a denied class is shed
// at admission with ErrShed (the existing load-shedding verdict — nothing
// new crosses the wire). Already-queued packets still drain. The zero
// mask restores full admission.
func (s *Shaper) SetDeny(deny [NumClasses]bool) { s.deny = deny }

// Deny returns the current brownout admission mask.
func (s *Shaper) Deny() [NumClasses]bool { return s.deny }

// Stats snapshots one class's counters.
func (s *Shaper) Stats(c Class) ClassStats {
	st := s.stats[c]
	st.QueuedNow = len(s.queues[c])
	return st
}

// AllStats snapshots every class, highest priority first.
func (s *Shaper) AllStats() []ClassStats {
	out := make([]ClassStats, 0, NumClasses)
	for _, c := range Classes() {
		out = append(out, s.Stats(c))
	}
	return out
}

// LatencyPercentile returns the p-th percentile (0 < p <= 100) of a
// class's enqueue-to-completion latency in cycles, or 0 with no samples.
// Percentiles use the nearest-rank method on the recorded samples.
func (s *Shaper) LatencyPercentile(c Class, p float64) sim.Time {
	return PercentileOf(append([]sim.Time(nil), s.latency[c]...), p)
}

// AppendLatencySamples appends a class's recorded enqueue-to-completion
// latency samples to dst and returns it. The cluster layer uses it to
// merge per-shard samples into cluster-wide per-class percentiles.
func (s *Shaper) AppendLatencySamples(c Class, dst []sim.Time) []sim.Time {
	return append(dst, s.latency[c]...)
}

// PercentileOf returns the p-th nearest-rank percentile of samples (which
// it sorts in place), or 0 with no samples.
func PercentileOf(samples []sim.Time, p float64) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := int(p/100*float64(len(samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(samples) {
		rank = len(samples) - 1
	}
	return samples[rank]
}
