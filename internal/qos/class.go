// Package qos implements the §VIII "stream priorities and quality of
// service" outlook as a subsystem layered between traffic sources and the
// MCCP task scheduler: per-class bounded FIFO queues with pluggable drain
// policies (strict priority, weighted fair), an admission controller that
// replaces the paper's bare error flag with explicit load-shedding
// counters, and deadline tags so experiments can report per-class latency
// percentiles at virtual time.
//
// The package is deliberately device-agnostic: a Shaper drives any Target
// (in practice radio.CommController) on a simulation engine and touches
// the device layer only through its error contract — the device-side half
// of the QoS story (the qos-priority core-reservation policy) lives in
// internal/scheduler.
package qos

import "fmt"

// Class is a traffic priority class. Higher values drain first under the
// strict-priority policy; the numeric value doubles as the device-level
// Suite.Priority tag, so the two halves of the QoS extension (shaper
// queues above the device, core reservation inside it) agree on ordering.
type Class int

// The four service classes, lowest priority first.
const (
	Background Class = iota // bulk transfer, no latency expectation
	Data                    // interactive data
	Video                   // streaming video
	Voice                   // latency-critical voice frames
	NumClasses int   = iota
)

var classNames = [NumClasses]string{"background", "data", "video", "voice"}

// String returns the class name ("voice", "video", "data", "background").
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Priority returns the device-level priority tag for the class (the value
// carried in core.Suite.Priority and scheduler.Request.Priority).
func (c Class) Priority() int { return int(c) }

// HighPriority reports whether the class belongs to the latency-critical
// tier (video and voice) that the qos-priority dispatch policy reserves
// cores for and the qos-aware cluster router spreads across shards.
func (c Class) HighPriority() bool { return c >= Video }

// ClassForPriority maps a device priority tag back to a class, clamping
// out-of-range tags to the nearest class (legacy suites may carry larger
// priorities).
func ClassForPriority(p int) Class {
	switch {
	case p <= int(Background):
		return Background
	case p >= int(Voice):
		return Voice
	default:
		return Class(p)
	}
}

// ClassNames lists the class names, highest priority first (display
// order).
func ClassNames() []string {
	return []string{"voice", "video", "data", "background"}
}

// ClassByName resolves a class name.
func ClassByName(name string) (Class, error) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if classNames[c] == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("qos: unknown class %q (have voice, video, data, background)", name)
}

// Classes iterates highest-priority first, the order every report prints.
func Classes() []Class { return []Class{Voice, Video, Data, Background} }
