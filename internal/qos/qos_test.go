package qos

import (
	"fmt"
	"reflect"
	"testing"

	"mccp/internal/core"
	"mccp/internal/sim"
)

// fakeTarget completes each operation after a fixed virtual cost, with a
// bounded number of concurrently running operations — a stand-in device
// that makes drain-order tests exact without the full MCCP.
type fakeTarget struct {
	eng     *sim.Engine
	cost    sim.Time
	slots   int
	running int
	backlog []func()
}

func (f *fakeTarget) start(cb func([]byte, error)) {
	run := func() {
		f.running++
		f.eng.After(f.cost, func() {
			f.running--
			cb([]byte("ok"), nil)
			if len(f.backlog) > 0 && f.running < f.slots {
				next := f.backlog[0]
				f.backlog = f.backlog[1:]
				next()
			}
		})
	}
	if f.running < f.slots {
		run()
		return
	}
	f.backlog = append(f.backlog, run)
}

func (f *fakeTarget) Encrypt(ch int, nonce, aad, payload []byte, cb func([]byte, error)) {
	f.start(cb)
}

func (f *fakeTarget) Decrypt(ch int, nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	f.start(cb)
}

func newFake(slots int) (*sim.Engine, *fakeTarget) {
	eng := sim.NewEngine()
	return eng, &fakeTarget{eng: eng, cost: 100, slots: slots}
}

func TestClassNamesAndPriorities(t *testing.T) {
	if Voice.Priority() != 3 || Background.Priority() != 0 {
		t.Fatal("class priorities shifted")
	}
	if !Voice.HighPriority() || !Video.HighPriority() || Data.HighPriority() || Background.HighPriority() {
		t.Fatal("high-priority tier wrong")
	}
	for _, name := range ClassNames() {
		c, err := ClassByName(name)
		if err != nil || c.String() != name {
			t.Fatalf("round trip %q: %v", name, err)
		}
	}
	if _, err := ClassByName("bulk"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if ClassForPriority(99) != Voice || ClassForPriority(-1) != Background {
		t.Fatal("priority clamping wrong")
	}
}

// TestStrictDrainServesVoiceFirst: with one device slot and a backlog of
// mixed classes, strict priority completes every voice packet before any
// background packet — the documented starvation behaviour.
func TestStrictDrainServesVoiceFirst(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1, Drain: DrainStrict})

	var order []Class
	submit := func(c Class, n int) {
		for i := 0; i < n; i++ {
			s.Encrypt(c, 1, nil, nil, make([]byte, 64), func(_ []byte, err error) {
				if err != nil {
					t.Errorf("%v: %v", c, err)
				}
				order = append(order, c)
			})
		}
	}
	// One packet is in flight immediately; the rest queue.
	submit(Background, 3)
	submit(Voice, 3)
	submit(Data, 2)
	eng.Run()

	want := []Class{Background, Voice, Voice, Voice, Data, Data, Background, Background}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("completion order = %v, want %v", order, want)
	}
}

// TestWeightedFairBoundsBackgroundWait: under sustained voice load, the
// weighted-fair drain still serves background at the configured ratio —
// bounded wait instead of starvation.
func TestWeightedFairBoundsBackgroundWait(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1, Drain: DrainWeightedFair})

	var order []Class
	record := func(c Class) func([]byte, error) {
		return func(_ []byte, err error) {
			if err != nil {
				t.Errorf("%v: %v", c, err)
			}
			order = append(order, c)
		}
	}
	// Sustained voice: every completion immediately submits another, 24
	// in total; 2 background packets sit in the queue the whole time.
	voiceLeft := 24
	var launchVoice func()
	launchVoice = func() {
		if voiceLeft == 0 {
			return
		}
		voiceLeft--
		s.Encrypt(Voice, 1, nil, nil, make([]byte, 64), func(out []byte, err error) {
			record(Voice)(out, err)
			launchVoice()
		})
	}
	launchVoice()
	s.Encrypt(Background, 1, nil, nil, make([]byte, 64), record(Background))
	s.Encrypt(Background, 1, nil, nil, make([]byte, 64), record(Background))
	// Keep the voice queue non-empty so the ratio (8:1) is observable.
	for i := 0; i < 4; i++ {
		launchVoice()
	}
	eng.Run()

	if len(order) != 26 {
		t.Fatalf("completed %d/26", len(order))
	}
	firstBG := -1
	for i, c := range order {
		if c == Background {
			firstBG = i
			break
		}
	}
	// 8:1 weights: the first background packet must complete within the
	// first ~dozen dispatches, not after the full voice run.
	if firstBG < 0 || firstBG > 12 {
		t.Fatalf("first background completion at index %d, want <= 12 (order %v)", firstBG, order)
	}
	// Strict priority over the same schedule starves background to the
	// very end — run it as the contrast.
	eng2, ft2 := newFake(1)
	s2 := NewShaper(eng2, ft2, Config{Capacity: 1, Drain: DrainStrict})
	var order2 []Class
	left := 24
	var lv func()
	lv = func() {
		if left == 0 {
			return
		}
		left--
		s2.Encrypt(Voice, 1, nil, nil, make([]byte, 64), func(_ []byte, _ error) {
			order2 = append(order2, Voice)
			lv()
		})
	}
	lv()
	s2.Encrypt(Background, 1, nil, nil, make([]byte, 64), func(_ []byte, _ error) {
		order2 = append(order2, Background)
	})
	for i := 0; i < 4; i++ {
		lv()
	}
	eng2.Run()
	if order2[len(order2)-1] != Background {
		t.Fatalf("strict drain should starve background until the end: %v", order2)
	}
}

// TestAdmissionShedsAtBound: a full class queue sheds with ErrShed and
// the per-class counters stay consistent.
func TestAdmissionShedsAtBound(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1, QueueDepth: 2})

	sheds := 0
	for i := 0; i < 6; i++ {
		s.Encrypt(Background, 1, nil, nil, make([]byte, 64), func(_ []byte, err error) {
			if err == ErrShed {
				sheds++
			}
		})
	}
	eng.Run()
	st := s.Stats(Background)
	// Submission 1 dispatches, 2-3 queue; 4 arrives at depth 2 and sheds.
	// Each completion frees a slot and pumps, so later arrivals re-admit.
	if st.Submitted != 6 || st.Shed == 0 || st.Completed+st.Shed != st.Submitted {
		t.Fatalf("inconsistent counters: %+v", st)
	}
	if uint64(sheds) != st.Shed {
		t.Fatalf("shed callbacks %d != counter %d", sheds, st.Shed)
	}
	if st.QueuedPeak != 2 {
		t.Fatalf("queued peak %d, want 2", st.QueuedPeak)
	}
	// Other classes were never touched.
	if v := s.Stats(Voice); v.Submitted != 0 {
		t.Fatalf("voice counters ticked: %+v", v)
	}
}

// TestDeadlineTags: completions after the deadline tick DeadlineMisses;
// on-time completions do not.
func TestDeadlineTags(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1})

	// First packet completes at cycle 100: deadline 150 is met.
	s.EncryptDeadline(Voice, 1, nil, nil, make([]byte, 64), 150, nil)
	// Second completes at 200: deadline 150 is missed.
	s.EncryptDeadline(Voice, 1, nil, nil, make([]byte, 64), 150, nil)
	eng.Run()
	st := s.Stats(Voice)
	if st.DeadlineMisses != 1 {
		t.Fatalf("deadline misses = %d, want 1 (%+v)", st.DeadlineMisses, st)
	}
}

// TestDropOnExpiry: a deadline-tagged packet still queued when its
// deadline passes is dropped at dispatch time with ErrExpired, counted
// under Shed and Expired, and never reaches the device.
func TestDropOnExpiry(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1})

	// Packet 1 occupies the single slot until cycle 100. Packet 2's
	// deadline (50) expires while it waits, so the completion pump at 100
	// must drop it instead of dispatching; packet 3 (deadline 500) then
	// dispatches and completes at 200.
	var verdicts []error
	record := func(_ []byte, err error) { verdicts = append(verdicts, err) }
	s.EncryptDeadline(Voice, 1, nil, nil, make([]byte, 64), 400, record)
	s.EncryptDeadline(Voice, 1, nil, nil, make([]byte, 64), 50, record)
	s.EncryptDeadline(Voice, 1, nil, nil, make([]byte, 64), 500, record)
	eng.Run()

	st := s.Stats(Voice)
	if st.Completed != 2 || st.Shed != 1 || st.Expired != 1 {
		t.Fatalf("counters: %+v (want 2 completed, 1 shed, 1 expired)", st)
	}
	if st.DeadlineMisses != 0 {
		t.Fatalf("an expired drop must not also count as a miss: %+v", st)
	}
	want := []error{nil, ErrExpired, nil}
	if !reflect.DeepEqual(verdicts, want) {
		t.Fatalf("verdicts %v, want %v", verdicts, want)
	}
	// The dropped packet never consumed a device slot: two operations of
	// 100 cycles back-to-back end at cycle 200.
	if eng.Now() != 200 {
		t.Fatalf("virtual end time %d, want 200 (drop must not occupy the device)", eng.Now())
	}
}

// TestLatencyPercentiles: nearest-rank percentiles over a known latency
// population (queueing behind a single slot gives 100, 200, ..., cycles).
func TestLatencyPercentiles(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1})
	for i := 0; i < 10; i++ {
		s.Encrypt(Data, 1, nil, nil, make([]byte, 64), nil)
	}
	eng.Run()
	// All 10 submitted at cycle 0; completions at 100..1000.
	if p50 := s.LatencyPercentile(Data, 50); p50 != 500 {
		t.Fatalf("p50 = %d, want 500", p50)
	}
	if p99 := s.LatencyPercentile(Data, 99); p99 != 1000 {
		t.Fatalf("p99 = %d, want 1000", p99)
	}
	if s.LatencyPercentile(Voice, 99) != 0 {
		t.Fatal("percentile of empty class should be 0")
	}
}

// TestPassThroughCapacity: Capacity 0 never queues in the shaper — the
// device's own queue absorbs bursts — but latency and counters still
// record.
func TestPassThroughCapacity(t *testing.T) {
	eng, ft := newFake(4)
	s := NewShaper(eng, ft, Config{})
	for i := 0; i < 8; i++ {
		s.Encrypt(Video, 1, nil, nil, make([]byte, 64), nil)
	}
	if s.Stats(Video).QueuedPeak > 1 {
		t.Fatalf("pass-through queued: %+v", s.Stats(Video))
	}
	eng.Run()
	if st := s.Stats(Video); st.Completed != 8 || st.Bytes != 8*64 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestShaperDeterminism: the same submission schedule gives identical
// completion order and latency percentiles across runs.
func TestShaperDeterminism(t *testing.T) {
	run := func() (string, sim.Time) {
		eng, ft := newFake(2)
		s := NewShaper(eng, ft, Config{Capacity: 2, Drain: DrainWeightedFair})
		var order string
		for i := 0; i < 12; i++ {
			c := Class(i % NumClasses)
			s.Encrypt(c, 1, nil, nil, make([]byte, 64), func(_ []byte, _ error) {
				order += fmt.Sprintf("%d", int(c))
			})
		}
		eng.Run()
		return order, s.LatencyPercentile(Background, 95)
	}
	o1, p1 := run()
	o2, p2 := run()
	if o1 != o2 || p1 != p2 {
		t.Fatalf("nondeterministic: %q/%d vs %q/%d", o1, p1, o2, p2)
	}
}

// TestRejectedCounterSeparatesFromFailed: device error-flag returns land
// in Rejected, not Failed.
func TestRejectedCounterSeparatesFromFailed(t *testing.T) {
	eng := sim.NewEngine()
	s := NewShaper(eng, rejectTarget{}, Config{})
	s.Encrypt(Data, 1, nil, nil, make([]byte, 64), nil)
	if st := s.Stats(Data); st.Rejected != 1 || st.Failed != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

type rejectTarget struct{}

func (rejectTarget) Encrypt(ch int, nonce, aad, payload []byte, cb func([]byte, error)) {
	cb(nil, core.ErrNoResources)
}

func (rejectTarget) Decrypt(ch int, nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	cb(nil, core.ErrNoResources)
}

func TestDrainByName(t *testing.T) {
	if d, err := DrainByName(""); err != nil || d.Name() != DrainStrict {
		t.Fatalf("default drain: %v", err)
	}
	if d, err := DrainByName(DrainWeightedFair); err != nil || d.Name() != DrainWeightedFair {
		t.Fatalf("weighted-fair: %v", err)
	}
	if d, err := DrainByName(DrainDRRBytes); err != nil || d.Name() != DrainDRRBytes {
		t.Fatalf("drr-bytes: %v", err)
	}
	if _, err := DrainByName("fifo"); err == nil {
		t.Fatal("unknown drain accepted")
	}
}

// TestInQueueAging: with an AgeLimit, a stale packet is dropped before it
// reaches the device — at dispatch time with an ErrAged verdict, counted
// under Shed and Aged (distinct from Expired) — while fresh packets are
// unaffected.
func TestInQueueAging(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1, AgeLimit: 150})

	var verdicts []error
	record := func(_ []byte, err error) { verdicts = append(verdicts, err) }
	// Packet 1 holds the single slot until cycle 100; packets 2-4 queue at
	// cycle 0. When the slot frees at 100, packet 2 (age 100 <= 150)
	// dispatches and completes at 200; packets 3-4 are then 200 cycles old
	// and age out without touching the device.
	for i := 0; i < 4; i++ {
		s.Encrypt(Background, 1, nil, nil, make([]byte, 64), record)
	}
	eng.Run()

	st := s.Stats(Background)
	if st.Completed != 2 || st.Shed != 2 || st.Aged != 2 || st.Expired != 0 {
		t.Fatalf("counters: %+v (want 2 completed, 2 shed, 2 aged, 0 expired)", st)
	}
	want := []error{nil, nil, ErrAged, ErrAged}
	if !reflect.DeepEqual(verdicts, want) {
		t.Fatalf("verdicts %v, want %v", verdicts, want)
	}
	// The aged packets never consumed device time: two 100-cycle ops.
	if eng.Now() != 200 {
		t.Fatalf("virtual end time %d, want 200", eng.Now())
	}
}

// TestAgingMakesRoomAtAdmission: a full queue of stale packets is aged
// out on admission so the fresh arrival is admitted instead of shed.
func TestAgingMakesRoomAtAdmission(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1, QueueDepth: 2, AgeLimit: 50})

	var fresh error = fmt.Errorf("sentinel: callback never ran")
	// Packet 1 dispatches and holds the slot until cycle 100; 2-3 fill the
	// 2-deep queue at cycle 0.
	for i := 0; i < 3; i++ {
		s.Encrypt(Background, 1, nil, nil, make([]byte, 64), nil)
	}
	// At cycle 60 the queued pair is stale (age 60 > 50): the new arrival
	// must evict them and be admitted, not shed.
	eng.RunUntil(60)
	s.Encrypt(Background, 1, nil, nil, make([]byte, 64), func(_ []byte, err error) { fresh = err })
	eng.Run()

	st := s.Stats(Background)
	if fresh != nil {
		t.Fatalf("fresh arrival verdict %v, want admission and completion", fresh)
	}
	if st.Aged != 2 || st.Shed != 2 || st.Completed != 2 {
		t.Fatalf("counters: %+v (want 2 aged/shed, 2 completed)", st)
	}
}

// drainHarness runs a synthetic backlog through a drain policy and
// reports per-class served packet and byte counts.
type drainQueues struct {
	depth [NumClasses]int
	bytes [NumClasses]int
}

func (q *drainQueues) Depth(c Class) int     { return q.depth[c] }
func (q *drainQueues) HeadBytes(c Class) int { return q.bytes[c] }

// TestDRRBytesConvergesToByteRatio: with 256 B voice frames against
// 2048 B bulk packets and equal weights, DRR-by-bytes serves ~8 voice
// packets per bulk packet (equal bytes), where the packet-count
// weighted-fair at equal weights would alternate packets (8:1 in bytes
// toward bulk).
func TestDRRBytesConvergesToByteRatio(t *testing.T) {
	q := &drainQueues{}
	q.depth[Voice], q.bytes[Voice] = 1<<30, 256
	q.depth[Background], q.bytes[Background] = 1<<30, 2048
	equal := Weights{Background: 1, Data: 1, Video: 1, Voice: 1}

	serve := func(d DrainPolicy, n int) (bytes [NumClasses]int) {
		for i := 0; i < n; i++ {
			c, ok := d.Next(q)
			if !ok {
				t.Fatal("drain stalled on a backlogged queue")
			}
			bytes[c] += q.bytes[c]
		}
		return bytes
	}

	drr := serve(NewDRRBytes(equal), 900)
	ratio := float64(drr[Voice]) / float64(drr[Background])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("drr-bytes byte ratio voice/background = %.2f, want ~1 at equal weights", ratio)
	}
	wf := serve(NewWeightedFair(equal), 900)
	wfRatio := float64(wf[Voice]) / float64(wf[Background])
	if wfRatio > 0.2 {
		t.Fatalf("weighted-fair byte ratio %.2f should be far below 1 (it balances packets, not bytes)", wfRatio)
	}

	// Weighted DRR: voice weight 4 should buy ~4x the bytes.
	weighted := serve(NewDRRBytes(Weights{Background: 1, Data: 1, Video: 1, Voice: 4}), 1200)
	wr := float64(weighted[Voice]) / float64(weighted[Background])
	if wr < 3.5 || wr > 4.5 {
		t.Fatalf("drr-bytes weighted byte ratio %.2f, want ~4", wr)
	}
}

// TestDRRBytesNeverStarves: a backlogged bulk queue keeps receiving
// service under sustained voice load through the shaper (equal weights:
// equal bytes, so one 2 KB bulk packet per eight 256 B voice frames).
func TestDRRBytesNeverStarves(t *testing.T) {
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{
		Capacity: 1,
		Drain:    DrainDRRBytes,
		Weights:  Weights{Background: 1, Data: 1, Video: 1, Voice: 1},
	})
	var order []Class
	left := 24
	var launch func()
	launch = func() {
		if left == 0 {
			return
		}
		left--
		s.Encrypt(Voice, 1, nil, nil, make([]byte, 256), func(_ []byte, _ error) {
			order = append(order, Voice)
			launch()
		})
	}
	launch()
	for i := 0; i < 2; i++ {
		s.Encrypt(Background, 1, nil, nil, make([]byte, 2048), func(_ []byte, _ error) {
			order = append(order, Background)
		})
	}
	for i := 0; i < 4; i++ {
		launch()
	}
	eng.Run()
	firstBG := -1
	for i, c := range order {
		if c == Background {
			firstBG = i
			break
		}
	}
	if firstBG < 0 || firstBG > 20 {
		t.Fatalf("first background completion at index %d (order %v): starved", firstBG, order)
	}
}

// TestConfigWeightsReachWeightedDrains: Config.Weights parameterizes both
// weighted drains.
func TestConfigWeightsReachWeightedDrains(t *testing.T) {
	heavy := Weights{Background: 16, Data: 1, Video: 1, Voice: 1}

	// Weighted-fair, behaviorally: a background-heavy ratio inverts the
	// usual drain order.
	eng, ft := newFake(1)
	s := NewShaper(eng, ft, Config{Capacity: 1, Drain: DrainWeightedFair, Weights: heavy})
	var order []Class
	rec := func(c Class) func([]byte, error) {
		return func(_ []byte, _ error) { order = append(order, c) }
	}
	for i := 0; i < 6; i++ {
		s.Encrypt(Voice, 1, nil, nil, make([]byte, 64), rec(Voice))
		s.Encrypt(Background, 1, nil, nil, make([]byte, 64), rec(Background))
	}
	eng.Run()
	bgFirst := 0
	for _, c := range order[1:7] {
		if c == Background {
			bgFirst++
		}
	}
	if bgFirst < 4 {
		t.Fatalf("weighted-fair: weights %v ignored: only %d of the first 6 drains were background (%v)",
			heavy, bgFirst, order)
	}

	// DRR-by-bytes: the shaper-configured weights must drive the byte
	// ratio (measured over a sustained synthetic backlog, where quantum
	// granularity averages out).
	eng2, ft2 := newFake(1)
	s2 := NewShaper(eng2, ft2, Config{Capacity: 1, Drain: DrainDRRBytes, Weights: heavy})
	drr, ok := s2.drain.(*DRRBytes)
	if !ok {
		t.Fatalf("drr-bytes shaper built %T", s2.drain)
	}
	q := &drainQueues{}
	q.depth[Voice], q.bytes[Voice] = 1<<30, 256
	q.depth[Background], q.bytes[Background] = 1<<30, 2048
	var served [NumClasses]int
	for i := 0; i < 2000; i++ {
		c, ok := drr.Next(q)
		if !ok {
			t.Fatal("drain stalled on a backlogged queue")
		}
		served[c] += q.bytes[c]
	}
	ratio := float64(served[Background]) / float64(served[Voice])
	if ratio < 14 || ratio > 18 {
		t.Fatalf("drr-bytes: byte ratio background/voice = %.1f, want ~16 from Config.Weights", ratio)
	}
}
