package cryptocore_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/ghash"
	"mccp/internal/modes"
	"mccp/internal/radio"
	"mccp/internal/sim"
)

func newTestCore(key []byte) (*sim.Engine, *cryptocore.Core) {
	eng := sim.NewEngine()
	c := cryptocore.New(eng, 0)
	c.InstallAESKeys(aes.KeySize(len(key)), aes.ExpandKey(key))
	eng.Run() // reach the idle HALT
	return eng, c
}

func pushFrame(c *cryptocore.Core, f radio.Frame) {
	for _, b := range f.In {
		for i := 0; i < 4; i++ {
			if !c.In.TryPush(b.Word(i)) {
				panic("test: input FIFO overflow")
			}
		}
	}
}

func drain(c *cryptocore.Core) []byte {
	var out []byte
	for c.Out.Len() > 0 {
		w, _ := c.Out.TryPop()
		out = append(out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return out
}

// runFrame executes one task on a single core and returns the raw output
// FIFO contents, the result code and the task duration in cycles.
func runFrame(t *testing.T, eng *sim.Engine, c *cryptocore.Core, f radio.Frame) ([]byte, uint8, sim.Time) {
	t.Helper()
	pushFrame(c, f)
	var res cryptocore.Result
	done := false
	c.Start(f.Task, func(r cryptocore.Result) { res = r; done = true })
	eng.Run()
	if !done {
		t.Fatalf("task %v did not complete (simulation deadlock, pc=%#x)", f.Task.Mode, c.CPU.PC())
	}
	return drain(c), res.Code, res.Cycles
}

func TestGCMEncryptMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kl := range []int{16, 24, 32} {
		for _, n := range []int{0, 1, 15, 16, 17, 100, 256, 2048} {
			for _, aadLen := range []int{0, 8, 16, 40} {
				key := make([]byte, kl)
				nonce := make([]byte, 12)
				payload := make([]byte, n)
				aadBuf := make([]byte, aadLen)
				rng.Read(key)
				rng.Read(nonce)
				rng.Read(payload)
				rng.Read(aadBuf)

				eng, c := newTestCore(key)
				f, err := radio.FrameGCMEnc(nonce, aadBuf, payload)
				if err != nil {
					t.Fatal(err)
				}
				out, code, _ := runFrame(t, eng, c, f)
				if code != firmware.ResultOK {
					t.Fatalf("result code %d", code)
				}
				ref := (&modes.GCM{C: aes.MustNew(key), Mul: mulRef}).Seal(nonce, aadBuf, payload)
				ct, tag := ref[:n], ref[n:]

				nb := (n + 15) / 16
				gotCT := out[:16*nb]
				gotTag := out[16*nb : 16*nb+16]
				// Firmware masks the partial final block, so the padded
				// ciphertext is the zero-padded reference ciphertext.
				wantCT := bits.Flatten(bits.PadBlocks(ct))
				if !bytes.Equal(gotCT, wantCT) {
					t.Fatalf("kl=%d n=%d aad=%d: CT mismatch\n got %x\nwant %x", kl, n, aadLen, gotCT, wantCT)
				}
				if !bytes.Equal(gotTag, tag) {
					t.Fatalf("kl=%d n=%d aad=%d: TAG mismatch\n got %x\nwant %x", kl, n, aadLen, gotTag, tag)
				}
			}
		}
	}
}

// mulRef lets the reference GCM reuse the production GHASH multiplier.
func mulRef(x, y bits.Block) bits.Block {
	return ghash.Mul(x, y)
}

func TestGCMDecryptMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 16, 33, 500, 2048} {
		key := make([]byte, 16)
		nonce := make([]byte, 12)
		payload := make([]byte, n)
		aadBuf := make([]byte, 24)
		rng.Read(key)
		rng.Read(nonce)
		rng.Read(payload)
		rng.Read(aadBuf)

		sealed := (&modes.GCM{C: aes.MustNew(key), Mul: mulRef}).Seal(nonce, aadBuf, payload)
		ct, tag := sealed[:n], sealed[n:]

		eng, c := newTestCore(key)
		f, err := radio.FrameGCMDec(nonce, aadBuf, ct, tag)
		if err != nil {
			t.Fatal(err)
		}
		out, code, _ := runFrame(t, eng, c, f)
		if code != firmware.ResultOK {
			t.Fatalf("n=%d: auth failed on valid packet", n)
		}
		if !bytes.Equal(out[:n], payload) {
			t.Fatalf("n=%d: plaintext mismatch", n)
		}
	}
}

func TestGCMDecryptRejectsTamper(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 12)
	payload := []byte("attack at dawn -- multi-channel radio packet")
	sealed := (&modes.GCM{C: aes.MustNew(key), Mul: mulRef}).Seal(nonce, nil, payload)
	ct, tag := sealed[:len(payload)], sealed[len(payload):]

	// Corrupt one ciphertext byte.
	badCT := append([]byte(nil), ct...)
	badCT[3] ^= 1
	eng, c := newTestCore(key)
	f, _ := radio.FrameGCMDec(nonce, nil, badCT, tag)
	out, code, _ := runFrame(t, eng, c, f)
	if code != firmware.ResultAuthFail {
		t.Fatalf("result = %d, want AUTH_FAIL", code)
	}
	// The paper: "output FIFO is re-initialized if plaintext does not match
	// the authentication tag" — no unauthenticated plaintext may leak.
	if len(out) != 0 {
		t.Fatalf("output FIFO leaked %d bytes after auth failure", len(out))
	}

	// Corrupt the tag.
	badTag := append([]byte(nil), tag...)
	badTag[0] ^= 0x80
	eng2, c2 := newTestCore(key)
	f2, _ := radio.FrameGCMDec(nonce, nil, ct, badTag)
	out2, code2, _ := runFrame(t, eng2, c2, f2)
	if code2 != firmware.ResultAuthFail || len(out2) != 0 {
		t.Fatalf("tag tamper: code=%d leaked=%d", code2, len(out2))
	}
}

func TestCCMEncryptMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, kl := range []int{16, 24, 32} {
		for _, n := range []int{0, 1, 16, 31, 200, 2048} {
			for _, aadLen := range []int{0, 11, 30} {
				key := make([]byte, kl)
				nonce := make([]byte, 13)
				payload := make([]byte, n)
				aadBuf := make([]byte, aadLen)
				rng.Read(key)
				rng.Read(nonce)
				rng.Read(payload)
				rng.Read(aadBuf)
				const tagLen = 8

				eng, c := newTestCore(key)
				f, err := radio.FrameCCMEnc(nonce, aadBuf, payload, tagLen)
				if err != nil {
					t.Fatal(err)
				}
				out, code, _ := runFrame(t, eng, c, f)
				if code != firmware.ResultOK {
					t.Fatalf("result code %d", code)
				}
				ref, err := modes.CCMSeal(aes.MustNew(key), nonce, aadBuf, payload, tagLen)
				if err != nil {
					t.Fatal(err)
				}
				ct, tag := ref[:n], ref[n:]
				nb := (n + 15) / 16
				if !bytes.Equal(out[:16*nb], bits.Flatten(bits.PadBlocks(ct))) {
					t.Fatalf("kl=%d n=%d aad=%d: CT mismatch", kl, n, aadLen)
				}
				if !bytes.Equal(out[16*nb:16*nb+tagLen], tag) {
					t.Fatalf("kl=%d n=%d aad=%d: TAG mismatch\n got %x\nwant %x",
						kl, n, aadLen, out[16*nb:16*nb+16], tag)
				}
			}
		}
	}
}

func TestCCMDecryptMatchesReferenceAndRejectsTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{1, 16, 77, 1024} {
		key := make([]byte, 16)
		nonce := make([]byte, 13)
		payload := make([]byte, n)
		aadBuf := make([]byte, 19)
		rng.Read(key)
		rng.Read(nonce)
		rng.Read(payload)
		rng.Read(aadBuf)
		const tagLen = 12

		sealed, err := modes.CCMSeal(aes.MustNew(key), nonce, aadBuf, payload, tagLen)
		if err != nil {
			t.Fatal(err)
		}
		ct, tag := sealed[:n], sealed[n:]

		eng, c := newTestCore(key)
		f, err := radio.FrameCCMDec(nonce, aadBuf, ct, tag, tagLen)
		if err != nil {
			t.Fatal(err)
		}
		out, code, _ := runFrame(t, eng, c, f)
		if code != firmware.ResultOK {
			t.Fatalf("n=%d: auth failed on valid packet", n)
		}
		if !bytes.Equal(out[:n], payload) {
			t.Fatalf("n=%d: plaintext mismatch", n)
		}

		// Tampered ciphertext must flush and fail.
		badCT := append([]byte(nil), ct...)
		badCT[n/2] ^= 4
		eng2, c2 := newTestCore(key)
		f2, _ := radio.FrameCCMDec(nonce, aadBuf, badCT, tag, tagLen)
		out2, code2, _ := runFrame(t, eng2, c2, f2)
		if code2 != firmware.ResultAuthFail || len(out2) != 0 {
			t.Fatalf("n=%d tamper: code=%d leaked=%d", n, code2, len(out2))
		}
	}
}

func TestCTRMatchesReferenceAndInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	key := make([]byte, 16)
	rng.Read(key)
	var icb bits.Block
	rng.Read(icb[:])
	icb[14], icb[15] = 0, 0 // stay within the 16-bit incrementer's range
	data := make([]byte, 333)
	rng.Read(data)

	eng, c := newTestCore(key)
	f, err := radio.FrameCTR(icb, data)
	if err != nil {
		t.Fatal(err)
	}
	out, code, _ := runFrame(t, eng, c, f)
	if code != firmware.ResultOK {
		t.Fatalf("result code %d", code)
	}
	want := modes.CTR(aes.MustNew(key), icb, data)
	if !bytes.Equal(out[:len(data)], want) {
		t.Fatal("CTR output mismatch")
	}

	// Running the output back through CTR recovers the input.
	eng2, c2 := newTestCore(key)
	f2, _ := radio.FrameCTR(icb, out[:len(data)])
	out2, _, _ := runFrame(t, eng2, c2, f2)
	if !bytes.Equal(out2[:len(data)], data) {
		t.Fatal("CTR involution failed")
	}
}

func TestCBCMACMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	key := make([]byte, 16)
	rng.Read(key)
	blocks := make([]bits.Block, 9)
	for i := range blocks {
		rng.Read(blocks[i][:])
	}
	eng, c := newTestCore(key)
	f, err := radio.FrameCBCMAC(blocks)
	if err != nil {
		t.Fatal(err)
	}
	out, code, _ := runFrame(t, eng, c, f)
	if code != firmware.ResultOK {
		t.Fatalf("result code %d", code)
	}
	want := modes.CBCMAC(aes.MustNew(key), blocks)
	if !bytes.Equal(out[:16], want[:]) {
		t.Fatalf("MAC mismatch: got %x want %s", out[:16], want.Hex())
	}
}

// TestGCMLoopSteadyState measures the firmware's per-block cost and checks
// it sits between the paper's theoretical bound (49 cycles) and the
// 2 KB-packet figure implied by Table II (~56 cycles/block at 437 Mbps).
func TestGCMLoopSteadyState(t *testing.T) {
	key := make([]byte, 16)
	run := func(blocks int) sim.Time {
		eng, c := newTestCore(key)
		f, err := radio.FrameGCMEnc(make([]byte, 12), nil, make([]byte, 16*blocks))
		if err != nil {
			t.Fatal(err)
		}
		_, code, cyc := runFrame(t, eng, c, f)
		if code != firmware.ResultOK {
			t.Fatal("task failed")
		}
		return cyc
	}
	c64, c128 := run(64), run(128)
	perBlock := float64(c128-c64) / 64
	if perBlock < 49 || perBlock > 57 {
		t.Errorf("GCM steady-state = %.1f cycles/block, want within [49, 57]", perBlock)
	}
	t.Logf("GCM loop: %.2f cycles/block (paper theoretical 49, 2KB-implied ~55.7)", perBlock)
}

// TestCCMLoopSteadyState checks the one-core CCM bound (paper: 104).
func TestCCMLoopSteadyState(t *testing.T) {
	key := make([]byte, 16)
	run := func(blocks int) sim.Time {
		eng, c := newTestCore(key)
		f, err := radio.FrameCCMEnc(make([]byte, 13), nil, make([]byte, 16*blocks), 8)
		if err != nil {
			t.Fatal(err)
		}
		_, code, cyc := runFrame(t, eng, c, f)
		if code != firmware.ResultOK {
			t.Fatal("task failed")
		}
		return cyc
	}
	c64, c128 := run(64), run(128)
	perBlock := float64(c128-c64) / 64
	if perBlock < 104 || perBlock > 116 {
		t.Errorf("CCM steady-state = %.1f cycles/block, want within [104, 116]", perBlock)
	}
	t.Logf("CCM 1-core loop: %.2f cycles/block (paper theoretical 104, 2KB-implied ~113.7)", perBlock)
}
