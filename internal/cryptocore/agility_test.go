package cryptocore_test

import (
	"bytes"
	"testing"

	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/ghash"
	"mccp/internal/modes"
	"mccp/internal/radio"
	"mccp/internal/sim"
	"mccp/internal/twofish"
)

// TestCipherAgilityTwofishGCM substantiates the paper's conclusion ("AES
// core may be easily replaced by any other 128-bit block cipher (such as
// Twofish)"): the reconfigurable region gets a Twofish engine and the GCM
// firmware runs bit-for-bit unchanged, producing Twofish-GCM.
func TestCipherAgilityTwofishGCM(t *testing.T) {
	key := []byte("a sixteen-byte k")
	eng := sim.NewEngine()
	c := cryptocore.New(eng, 0)
	tf := twofish.NewEngine()
	if err := tf.LoadKey(key); err != nil {
		t.Fatal(err)
	}
	c.AES = nil
	c.Unit.Cipher = tf
	eng.Run()

	nonce := make([]byte, 12)
	aad := []byte("twofish header")
	payload := []byte("the same firmware, a different 128-bit block cipher underneath")

	f, err := radio.FrameGCMEnc(nonce, aad, payload)
	if err != nil {
		t.Fatal(err)
	}
	out, code, _ := runFrame(t, eng, c, f)
	if code != firmware.ResultOK {
		t.Fatalf("result code %d", code)
	}

	ref := (&modes.GCM{C: twofish.MustNew(key), Mul: ghash.Mul}).Seal(nonce, aad, payload)
	n := len(payload)
	if !bytes.Equal(out[:n], ref[:n]) {
		t.Fatal("Twofish-GCM ciphertext mismatch")
	}
	nb := (n + 15) / 16
	if !bytes.Equal(out[16*nb:16*nb+16], ref[n:]) {
		t.Fatalf("Twofish-GCM tag mismatch: got %x want %x", out[16*nb:16*nb+16], ref[n:])
	}
}

// TestCipherAgilityTwofishCCM runs the one-core CCM firmware on Twofish.
func TestCipherAgilityTwofishCCM(t *testing.T) {
	key := []byte("another 16-byte!")
	eng := sim.NewEngine()
	c := cryptocore.New(eng, 0)
	tf := twofish.NewEngine()
	if err := tf.LoadKey(key); err != nil {
		t.Fatal(err)
	}
	c.AES = nil
	c.Unit.Cipher = tf
	eng.Run()

	nonce := make([]byte, 13)
	payload := []byte("counter with cbc-mac over a feistel cipher")
	f, err := radio.FrameCCMEnc(nonce, nil, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, code, _ := runFrame(t, eng, c, f)
	if code != firmware.ResultOK {
		t.Fatalf("result code %d", code)
	}
	ref, err := modes.CCMSeal(twofish.MustNew(key), nonce, nil, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := len(payload)
	nb := (n + 15) / 16
	if !bytes.Equal(out[:n], ref[:n]) || !bytes.Equal(out[16*nb:16*nb+8], ref[n:]) {
		t.Fatal("Twofish-CCM mismatch")
	}
}
