package cryptocore

import (
	"fmt"

	"mccp/internal/bits"
	"mccp/internal/firmware"
)

// Family identifies a channel's block-cipher mode of operation. The Task
// Scheduler maps (family, direction, core assignment) to firmware modes.
type Family uint8

// Supported families (paper §IV.D: GCM, CCM, CTR, CBC-MAC).
const (
	FamilyGCM Family = iota
	FamilyCCM
	FamilyCTR
	FamilyCBCMAC
	FamilyHash // Whirlpool hashing after partial reconfiguration
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyGCM:
		return "GCM"
	case FamilyCCM:
		return "CCM"
	case FamilyCTR:
		return "CTR"
	case FamilyCBCMAC:
		return "CBC-MAC"
	case FamilyHash:
		return "HASH"
	}
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// PlanTasks computes the per-core task parameters for a packet: the block
// counts and byte masks the Task Scheduler writes into core parameter
// registers. It is the single source of truth shared by the scheduler and
// the communication controller's formatter, so the two sides of the FIFO
// framing contract cannot drift apart.
//
// For a split CCM request it returns two tasks: the CBC-MAC half first,
// then the CTR half. aadLen and dataLen are byte lengths (dataLen counts
// ciphertext bytes for decryption).
func PlanTasks(f Family, encrypt, split bool, aadLen, dataLen, tagLen int) ([]Task, error) {
	if dataLen < 0 || aadLen < 0 {
		return nil, fmt.Errorf("cryptocore: negative length")
	}
	dataBlocks, lastMask := blockParams(dataLen)
	if dataBlocks > 128 {
		return nil, fmt.Errorf("cryptocore: %d data blocks exceed the 2 KB packet FIFO", dataBlocks)
	}

	switch f {
	case FamilyGCM:
		hdr := (aadLen + 15) / 16
		t := Task{
			Mode:       firmware.ModeGCMEnc,
			HdrBlocks:  uint8(hdr),
			DataBlocks: uint8(dataBlocks),
			LastMask:   lastMask,
		}
		if !encrypt {
			t.Mode = firmware.ModeGCMDec
			t.TagMask = bits.MaskForLen(tagLen)
		}
		return []Task{t}, nil

	case FamilyCCM:
		hdr := ccmHdrBlocks(aadLen)
		if !split {
			t := Task{
				Mode:       firmware.ModeCCMEnc,
				HdrBlocks:  uint8(hdr),
				DataBlocks: uint8(dataBlocks),
				LastMask:   lastMask,
			}
			if !encrypt {
				t.Mode = firmware.ModeCCMDec
				t.TagMask = bits.MaskForLen(tagLen)
			}
			return []Task{t}, nil
		}
		mac := Task{
			Mode:       firmware.ModeCCM2MacEnc,
			HdrBlocks:  uint8(hdr),
			DataBlocks: uint8(dataBlocks),
			LastMask:   0xFFFF,
		}
		ctr := Task{
			Mode:       firmware.ModeCCM2CtrEnc,
			DataBlocks: uint8(dataBlocks),
			LastMask:   lastMask,
			TagMask:    bits.MaskForLen(tagLen),
		}
		if !encrypt {
			mac.Mode = firmware.ModeCCM2MacDec
			ctr.Mode = firmware.ModeCCM2CtrDec
		}
		return []Task{mac, ctr}, nil

	case FamilyCTR:
		return []Task{{
			Mode:       firmware.ModeCTR,
			DataBlocks: uint8(dataBlocks),
			LastMask:   lastMask,
		}}, nil

	case FamilyCBCMAC:
		if lastMask != 0xFFFF && dataLen > 0 {
			return nil, fmt.Errorf("cryptocore: CBC-MAC requires whole blocks (got %d bytes)", dataLen)
		}
		return []Task{{
			Mode:       firmware.ModeCBCMAC,
			DataBlocks: uint8(dataBlocks),
			LastMask:   0xFFFF,
		}}, nil

	case FamilyHash:
		if dataLen%16 != 0 || dataLen == 0 {
			return nil, fmt.Errorf("cryptocore: hash input must be pre-padded to 512-bit blocks")
		}
		return []Task{{
			Mode:       firmware.ModeHash,
			DataBlocks: uint8(dataBlocks),
			LastMask:   0xFFFF,
		}}, nil
	}
	return nil, fmt.Errorf("cryptocore: unknown family %v", f)
}

// blockParams returns ceil(n/16) and the byte mask of the final block.
func blockParams(n int) (int, uint16) {
	nb := (n + bits.BlockBytes - 1) / bits.BlockBytes
	tail := n % bits.BlockBytes
	if tail == 0 && n > 0 {
		tail = bits.BlockBytes
	}
	return nb, bits.MaskForLen(tail)
}

// ccmHdrBlocks returns the number of 16-byte blocks of CCM's encoded AAD
// (2-byte length prefix below 0xFF00, 6-byte prefix above).
func ccmHdrBlocks(aadLen int) int {
	if aadLen == 0 {
		return 0
	}
	enc := 2 + aadLen
	if aadLen >= 0xFF00 {
		enc = 6 + aadLen
	}
	return (enc + 15) / 16
}

// OutWords returns the number of 32-bit output words a task produces on
// success.
func OutWords(t Task) int {
	switch t.Mode {
	case firmware.ModeGCMEnc, firmware.ModeCCMEnc, firmware.ModeCCM2CtrEnc:
		return 4*int(t.DataBlocks) + 4
	case firmware.ModeGCMDec, firmware.ModeCCMDec, firmware.ModeCTR, firmware.ModeCCM2CtrDec:
		return 4 * int(t.DataBlocks)
	case firmware.ModeCBCMAC:
		return 4
	case firmware.ModeHash:
		return 16 // 512-bit digest
	case firmware.ModeCCM2MacEnc, firmware.ModeCCM2MacDec:
		return 0 // MAC travels over the shift register
	}
	return 0
}
