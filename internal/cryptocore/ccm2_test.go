package cryptocore_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mccp/internal/aes"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/modes"
	"mccp/internal/radio"
	"mccp/internal/sim"
)

// newCorePair builds two cores joined by inter-core mailboxes in both
// directions, as the paper's neighbouring-core arrangement provides.
func newCorePair(key []byte) (*sim.Engine, *cryptocore.Core, *cryptocore.Core) {
	eng := sim.NewEngine()
	macCore := cryptocore.New(eng, 0)
	ctrCore := cryptocore.New(eng, 1)
	m01 := sim.NewMailbox128(eng) // mac -> ctr
	m10 := sim.NewMailbox128(eng) // ctr -> mac
	macCore.ConnectNeighbors(m10, m01)
	ctrCore.ConnectNeighbors(m01, m10)
	ks := aes.KeySize(len(key))
	macCore.InstallAESKeys(ks, aes.ExpandKey(key))
	ctrCore.InstallAESKeys(ks, aes.ExpandKey(key))
	eng.Run()
	return eng, macCore, ctrCore
}

// runCCM2 executes a two-core CCM task and returns the CTR core's output,
// its result code and the wall-clock cycles from dispatch to the later of
// the two results.
func runCCM2(t *testing.T, encrypt bool, key, nonce, aad, payload, tag []byte, tagLen int) ([]byte, uint8, sim.Time) {
	t.Helper()
	eng, macCore, ctrCore := newCorePair(key)
	macF, ctrF, err := radio.FrameCCM2(encrypt, nonce, aad, payload, tag, tagLen)
	if err != nil {
		t.Fatal(err)
	}
	pushFrame(macCore, macF)
	pushFrame(ctrCore, ctrF)

	start := eng.Now()
	var macDone, ctrDone bool
	var ctrCode uint8
	var finish sim.Time
	macCore.Start(macF.Task, func(r cryptocore.Result) {
		macDone = true
		if eng.Now()-start > finish {
			finish = eng.Now() - start
		}
	})
	ctrCore.Start(ctrF.Task, func(r cryptocore.Result) {
		ctrDone = true
		ctrCode = r.Code
		if eng.Now()-start > finish {
			finish = eng.Now() - start
		}
	})
	eng.Run()
	if !macDone || !ctrDone {
		t.Fatalf("two-core CCM deadlock: mac=%v ctr=%v (pc mac=%#x ctr=%#x)",
			macDone, ctrDone, macCore.CPU.PC(), ctrCore.CPU.PC())
	}
	return drain(ctrCore), ctrCode, finish
}

func TestCCM2EncryptMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{0, 1, 16, 47, 300, 2048} {
		for _, aadLen := range []int{0, 13} {
			key := make([]byte, 16)
			nonce := make([]byte, 13)
			payload := make([]byte, n)
			aadBuf := make([]byte, aadLen)
			rng.Read(key)
			rng.Read(nonce)
			rng.Read(payload)
			rng.Read(aadBuf)
			const tagLen = 8

			out, code, _ := runCCM2(t, true, key, nonce, aadBuf, payload, nil, tagLen)
			if code != firmware.ResultOK {
				t.Fatalf("n=%d: result code %d", n, code)
			}
			ref, err := modes.CCMSeal(aes.MustNew(key), nonce, aadBuf, payload, tagLen)
			if err != nil {
				t.Fatal(err)
			}
			nb := (n + 15) / 16
			wantCT := ref[:n]
			wantTag := ref[n:]
			if !bytes.Equal(out[:n], wantCT) {
				t.Fatalf("n=%d aad=%d: two-core CT mismatch", n, aadLen)
			}
			if !bytes.Equal(out[16*nb:16*nb+tagLen], wantTag) {
				t.Fatalf("n=%d aad=%d: two-core TAG mismatch\n got %x\nwant %x",
					n, aadLen, out[16*nb:16*nb+tagLen], wantTag)
			}
		}
	}
}

func TestCCM2DecryptMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{1, 16, 47, 1024} {
		key := make([]byte, 16)
		nonce := make([]byte, 13)
		payload := make([]byte, n)
		aadBuf := make([]byte, 9)
		rng.Read(key)
		rng.Read(nonce)
		rng.Read(payload)
		rng.Read(aadBuf)
		const tagLen = 16

		sealed, err := modes.CCMSeal(aes.MustNew(key), nonce, aadBuf, payload, tagLen)
		if err != nil {
			t.Fatal(err)
		}
		ct, tag := sealed[:n], sealed[n:]

		out, code, _ := runCCM2(t, false, key, nonce, aadBuf, ct, tag, tagLen)
		if code != firmware.ResultOK {
			t.Fatalf("n=%d: auth failed on valid two-core packet", n)
		}
		if !bytes.Equal(out[:n], payload) {
			t.Fatalf("n=%d: two-core plaintext mismatch", n)
		}
	}
}

func TestCCM2DecryptRejectsTamper(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 13)
	payload := []byte("two cores, one packet: the inter-core shift register at work")
	sealed, err := modes.CCMSeal(aes.MustNew(key), nonce, nil, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), sealed[:len(payload)]...)
	tag := sealed[len(payload):]
	ct[7] ^= 0x20

	out, code, _ := runCCM2(t, false, key, nonce, nil, ct, tag, 8)
	if code != firmware.ResultAuthFail {
		t.Fatalf("result = %d, want AUTH_FAIL", code)
	}
	if len(out) != 0 {
		t.Fatalf("CTR core leaked %d bytes after auth failure", len(out))
	}
}

// TestCCM2SteadyState checks the two-core CCM per-block bound: the paper's
// T_CCMloop,2cores = 55 (CBC-MAC limited); with controller overhead the
// 2 KB column implies ~62 cycles/block.
func TestCCM2SteadyState(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 13)
	run := func(blocks int) sim.Time {
		_, _, cyc := runCCM2(t, true, key, nonce, nil, make([]byte, 16*blocks), nil, 8)
		return cyc
	}
	c64, c128 := run(64), run(128)
	perBlock := float64(c128-c64) / 64
	if perBlock < 55 || perBlock > 68 {
		t.Errorf("two-core CCM steady-state = %.1f cycles/block, want within [55, 68]", perBlock)
	}
	t.Logf("CCM 2-core loop: %.2f cycles/block (paper theoretical 55, 2KB-implied ~61.9)", perBlock)
}

// TestCCM2FasterThanOneCore verifies the headline claim: splitting one CCM
// packet across two cores beats one core by roughly the CTR-loop time.
func TestCCM2FasterThanOneCore(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, 13)
	payload := make([]byte, 2048)

	_, _, two := runCCM2(t, true, key, nonce, nil, payload, nil, 8)

	eng, c := newTestCore(key)
	f, err := radio.FrameCCMEnc(nonce, nil, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, _, one := runFrame(t, eng, c, f)

	speedup := float64(one) / float64(two)
	// Paper Table II: 442/233 ≈ 1.90 theoretical, 393/214 ≈ 1.84 at 2 KB.
	if speedup < 1.6 || speedup > 2.1 {
		t.Errorf("two-core speedup = %.2f, want ~1.8-1.9", speedup)
	}
	t.Logf("CCM 2KB packet: 1 core %d cycles, 2 cores %d cycles, speedup %.2f",
		one, two, speedup)
}
