// Package cryptocore assembles one Cryptographic Core of the MCCP
// (paper §IV): an 8-bit PicoBlaze-style controller, a Cryptographic Unit,
// two 512 x 32-bit packet FIFOs, the inter-core shift-register ports, a key
// cache of pre-computed round keys and the parameter/status glue between
// the controller and the Task Scheduler.
package cryptocore

import (
	"fmt"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/cryptounit"
	"mccp/internal/cuisa"
	"mccp/internal/firmware"
	"mccp/internal/picoblaze"
	"mccp/internal/sim"
)

// FIFOWords is the depth of each packet FIFO in 32-bit words. The paper
// uses 512 x 32 bits = one 2048-byte packet; the model adds headroom for
// the mode framing (IV/B0/A0/lengths/tag blocks) that travels in-band, so a
// full 2 KB payload plus its framing fits without deadlock.
const FIFOWords = 512 + 32

// Task is one cryptographic job dispatched by the Task Scheduler.
type Task struct {
	Mode firmware.Mode
	// HdrBlocks is the number of authenticated-only 16-byte blocks
	// (GCM AAD / CCM encoded-AAD), after formatting and padding.
	HdrBlocks uint8
	// DataBlocks is the number of payload 16-byte blocks including a final
	// partial block.
	DataBlocks uint8
	// LastMask is the byte mask of the final payload block
	// (bits.MaskForLen of the tail length; 0xFFFF when the block is full).
	LastMask uint16
	// TagMask is the byte mask of the authentication tag (decrypt modes).
	TagMask uint16
}

// Result is a completed task's outcome.
type Result struct {
	Code uint8 // firmware.ResultOK, ResultAuthFail, ResultBadMode
	// Cycles is the task's duration from start strobe to result strobe.
	Cycles sim.Time
}

// Core is one Cryptographic Core instance.
type Core struct {
	ID  int
	eng *sim.Engine

	In, Out *sim.WordFIFO
	Unit    *cryptounit.Unit
	CPU     *picoblaze.CPU

	// AES is the iterative AES engine occupying the reconfigurable region
	// by default. It is nil after reconfiguration to another engine.
	AES *aes.Core32

	// task state
	task         Task
	startPending bool
	busy         bool
	taskStart    sim.Time
	onResult     func(Result)

	// Stats accumulates per-core utilization counters.
	Stats Stats
}

// Stats counts core activity for the utilization and scheduling benches.
type Stats struct {
	Tasks      uint64
	AuthFails  uint64
	BusyCycles sim.Time
}

// New builds a core with the AES image loaded and an AES-128-capable unit.
// Inter-core mailboxes are wired by the enclosing MCCP via ConnectNeighbors.
func New(eng *sim.Engine, id int) *Core {
	c := &Core{
		ID:  id,
		eng: eng,
		In:  sim.NewWordFIFO(eng, FIFOWords),
		Out: sim.NewWordFIFO(eng, FIFOWords),
	}
	c.Unit = cryptounit.New(eng, c.In, c.Out)
	c.AES = aes.NewCore32()
	c.Unit.Cipher = c.AES
	c.CPU = picoblaze.New(eng, &coreBus{c}, firmware.ImageAES)
	// The unit's done line is the controller's wake input (custom HALT).
	c.Unit.OnDone = c.CPU.Wake
	c.CPU.Start()
	return c
}

// ConnectNeighbors wires this core's inter-core shift-register ports: out
// feeds the right neighbour, in receives from the left (a ring, matching
// the paper's shared-memory pairing of neighbouring cores).
func (c *Core) ConnectNeighbors(in, out *sim.Mailbox128) {
	c.Unit.MboxIn = in
	c.Unit.MboxOut = out
}

// Busy reports whether a task is in flight.
func (c *Core) Busy() bool { return c.busy }

// InstallAESKeys loads pre-expanded round keys (the Key Scheduler's output,
// normally staged through the core's KeyCache) into the AES engine. Panics
// if the reconfigurable region does not currently hold the AES engine.
func (c *Core) InstallAESKeys(size aes.KeySize, keys []bits.Block) {
	if c.AES == nil {
		panic(fmt.Sprintf("cryptocore %d: AES engine not present (reconfigured?)", c.ID))
	}
	c.AES.LoadKeys(size, keys)
}

// Start dispatches a task. The scheduler must have loaded the right round
// keys first. onResult fires when the firmware writes its result code.
func (c *Core) Start(t Task, onResult func(Result)) {
	if c.busy {
		panic(fmt.Sprintf("cryptocore %d: Start while busy", c.ID))
	}
	c.task = t
	c.busy = true
	c.startPending = true
	c.taskStart = c.eng.Now()
	c.onResult = onResult
	c.Stats.Tasks++
	c.CPU.Wake() // start strobe shares the controller's wake line
}

// coreBus adapts the Core to the controller's I/O bus. It is the "glue
// logic" between the PicoBlaze ports and the rest of the core.
type coreBus struct{ c *Core }

func (b *coreBus) In(port uint8) uint8 {
	c := b.c
	switch port {
	case firmware.InStatus:
		var v uint8
		if c.Unit.Busy() {
			v |= firmware.StatusBusy
		}
		if c.Unit.Equ() {
			v |= firmware.StatusEqu
		}
		if c.startPending {
			v |= firmware.StatusStart
		}
		return v
	case firmware.InMode:
		c.startPending = false // read-to-clear, acknowledges the start strobe
		return uint8(c.task.Mode)
	case firmware.InHdrBlks:
		return c.task.HdrBlocks
	case firmware.InDataBlks:
		return c.task.DataBlocks
	case firmware.InLastMaskLo:
		return uint8(c.task.LastMask)
	case firmware.InLastMaskHi:
		return uint8(c.task.LastMask >> 8)
	case firmware.InTagMaskLo:
		return uint8(c.task.TagMask)
	case firmware.InTagMaskHi:
		return uint8(c.task.TagMask >> 8)
	}
	return 0
}

func (b *coreBus) Out(port uint8, val uint8, done func()) {
	c := b.c
	switch port {
	case firmware.PortCU:
		// The unit's start/ack handshake: the controller's OUTPUT retires
		// when the unit latches the instruction.
		c.Unit.Issue(cuisa.Instr(val), done)
		return
	case firmware.PortMaskLo:
		c.Unit.SetMask(c.Unit.Mask()&0xFF00 | uint16(val))
	case firmware.PortMaskHi:
		c.Unit.SetMask(c.Unit.Mask()&0x00FF | uint16(val)<<8)
	case firmware.PortResult:
		c.finishTask(val)
	case firmware.PortFlush:
		c.Out.Reset()
	}
	done()
}

func (c *Core) finishTask(code uint8) {
	if !c.busy {
		// Result strobe with no task (e.g. unknown mode after a spurious
		// wake): ignore, the scheduler owns task lifecycle.
		return
	}
	c.busy = false
	dur := c.eng.Now() - c.taskStart
	c.Stats.BusyCycles += dur
	if code == firmware.ResultAuthFail {
		c.Stats.AuthFails++
	}
	if cb := c.onResult; cb != nil {
		c.onResult = nil
		cb(Result{Code: code, Cycles: dur})
	}
}

// PushWord writes one 32-bit word into the input FIFO, blocking the caller
// (callback-style) until space is available (the reference upload
// handshake, now hosted on sim.WordFIFO).
func (c *Core) PushWord(w uint32, then func()) { c.In.PushWord(w, then) }

// PopWord reads one word from the output FIFO, blocking until available.
func (c *Core) PopWord(then func(uint32)) { c.Out.PopWord(then) }
