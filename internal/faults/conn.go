package faults

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// ConnPlan is a deterministic wire-fault program for one connection.
// Counters are in whole calls, so the same plan perturbs the same frame
// boundaries on every run. The zero plan is a transparent pass-through.
type ConnPlan struct {
	// DropAfterWrites severs the connection (both directions) after that
	// many successful Write calls; the Nth+1 write fails. 0 = never.
	DropAfterWrites int
	// TruncWrite makes the Nth Write call (1-based) deliver only half
	// its bytes and then sever the connection — the classic partial
	// write a crash mid-send leaves behind. 0 = never.
	TruncWrite int
	// StallAfterReads makes every Read call after the Nth block until
	// the connection's read deadline (or until the peer closes) and then
	// fail with os.ErrDeadlineExceeded — a peer that is alive but
	// wedged. 0 = never.
	StallAfterReads int
}

// Wrap decorates a net.Conn with the plan's faults. The wrapper honors
// SetReadDeadline/SetDeadline during injected stalls, which is exactly
// what makes client-side I/O timeouts testable: a stalled read returns
// os.ErrDeadlineExceeded (a net.Error with Timeout() == true) when the
// deadline passes, or blocks forever if the caller never set one.
func Wrap(c net.Conn, plan ConnPlan) net.Conn {
	return &faultConn{Conn: c, plan: plan, closed: make(chan struct{})}
}

type faultConn struct {
	net.Conn
	plan ConnPlan

	mu       sync.Mutex
	writes   int
	reads    int
	dead     bool
	deadline time.Time // read deadline, mirrored for injected stalls
	closed   chan struct{}
}

var errConnDropped = fmt.Errorf("faults: connection dropped by injector")

func (f *faultConn) sever() {
	f.mu.Lock()
	if !f.dead {
		f.dead = true
		f.Conn.Close()
		close(f.closed)
	}
	f.mu.Unlock()
}

func (f *faultConn) Close() error {
	f.sever()
	return nil
}

func (f *faultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return 0, errConnDropped
	}
	f.writes++
	w := f.writes
	f.mu.Unlock()
	if f.plan.TruncWrite > 0 && w == f.plan.TruncWrite {
		n, _ := f.Conn.Write(b[:len(b)/2])
		f.sever()
		return n, errConnDropped
	}
	if f.plan.DropAfterWrites > 0 && w > f.plan.DropAfterWrites {
		f.sever()
		return 0, errConnDropped
	}
	return f.Conn.Write(b)
}

func (f *faultConn) Read(b []byte) (int, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return 0, errConnDropped
	}
	f.reads++
	r := f.reads
	deadline := f.deadline
	f.mu.Unlock()
	if f.plan.StallAfterReads > 0 && r > f.plan.StallAfterReads {
		// The peer is wedged: never deliver bytes, only a deadline (or
		// the connection dying) ends the wait.
		if deadline.IsZero() {
			<-f.closed
			return 0, errConnDropped
		}
		select {
		case <-time.After(time.Until(deadline)):
			return 0, os.ErrDeadlineExceeded
		case <-f.closed:
			return 0, errConnDropped
		}
	}
	return f.Conn.Read(b)
}

func (f *faultConn) SetDeadline(t time.Time) error {
	f.mu.Lock()
	f.deadline = t
	f.mu.Unlock()
	return f.Conn.SetDeadline(t)
}

func (f *faultConn) SetReadDeadline(t time.Time) error {
	f.mu.Lock()
	f.deadline = t
	f.mu.Unlock()
	return f.Conn.SetReadDeadline(t)
}
