package faults

import (
	"errors"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"mccp/internal/qos"
)

func TestPlanDeterministicAndSurvivable(t *testing.T) {
	cfg := PlanConfig{Seed: 7, Shards: 4, Windows: 24, Crashes: 3, ChurnPerWindow: 8, WindowCycles: 8192}
	a, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	victims := map[int]bool{}
	for _, e := range a.Events {
		if e.Kind != ShardCrash {
			continue
		}
		if victims[e.Shard] {
			t.Fatalf("shard %d crashed twice: %v", e.Shard, a)
		}
		victims[e.Shard] = true
		if e.Offset < 8192/4 || e.Offset > 8192*3/4 {
			t.Fatalf("crash offset %d outside the mid-window band", e.Offset)
		}
	}
	if len(victims) != 3 {
		t.Fatalf("want 3 distinct crash victims, got %d (%v)", len(victims), a)
	}
	if _, err := Plan(PlanConfig{Seed: 1, Shards: 4, Windows: 8, Crashes: 4}); err == nil {
		t.Fatal("plan crashing every shard should be refused")
	}
	c, err := Plan(PlanConfig{Seed: 8, Shards: 4, Windows: 24, Crashes: 3, WindowCycles: 8192})
	if err != nil {
		t.Fatal(err)
	}
	crashes := func(s Schedule) []Event {
		var out []Event
		for _, e := range s.Events {
			if e.Kind == ShardCrash {
				out = append(out, e)
			}
		}
		return out
	}
	if reflect.DeepEqual(crashes(a), crashes(c)) {
		t.Fatal("different seeds produced identical crash schedules")
	}
}

func TestBrownoutDenyOrdering(t *testing.T) {
	share := [qos.NumClasses]float64{}
	share[qos.Voice] = 0.10
	share[qos.Video] = 0.15
	share[qos.Data] = 0.15
	share[qos.Background] = 0.60

	if deny := BrownoutDeny(900, 1000, share); deny != ([qos.NumClasses]bool{}) {
		t.Fatalf("capacity above offered must deny nothing, got %v", deny)
	}
	// 900 offered onto 500: shedding background (540) suffices.
	deny := BrownoutDeny(900, 500, share)
	if !deny[qos.Background] || deny[qos.Data] || deny[qos.Video] || deny[qos.Voice] {
		t.Fatalf("want background-only shed, got %v", deny)
	}
	// 900 onto 250: background+data (675 shed, 225 admitted) suffices.
	deny = BrownoutDeny(900, 250, share)
	if !deny[qos.Background] || !deny[qos.Data] || deny[qos.Video] || deny[qos.Voice] {
		t.Fatalf("want background+data shed, got %v", deny)
	}
	// 900 onto 50: everything but voice sheds; voice always holds.
	deny = BrownoutDeny(900, 50, share)
	if !deny[qos.Background] || !deny[qos.Data] || !deny[qos.Video] || deny[qos.Voice] {
		t.Fatalf("want everything-but-voice shed, got %v", deny)
	}
}

func TestWrapStallHonorsDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Wrap(a, ConnPlan{StallAfterReads: 0, DropAfterWrites: 0})
	// With StallAfterReads unset the wrapper passes reads through.
	go b.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err != nil {
		t.Fatalf("pass-through read: %v", err)
	}

	sc := Wrap(b, ConnPlan{StallAfterReads: 1})
	go a.Write([]byte("y"))
	if _, err := sc.Read(buf); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	sc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := sc.Read(buf)
	var ne net.Error
	if !errors.Is(err, os.ErrDeadlineExceeded) && !(errors.As(err, &ne) && ne.Timeout()) {
		t.Fatalf("stalled read should time out, got %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatalf("stalled read returned before the deadline")
	}
}

func TestWrapTruncWriteSevers(t *testing.T) {
	a, b := net.Pipe()
	fc := Wrap(a, ConnPlan{TruncWrite: 1})
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- n
	}()
	n, err := fc.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("truncated write should report the severed connection")
	}
	if n != 5 {
		t.Fatalf("want 5 bytes delivered (half), got %d", n)
	}
	if delivered := <-got; delivered != 5 {
		t.Fatalf("peer saw %d bytes, want 5", delivered)
	}
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Fatal("write after severing should fail")
	}
}
