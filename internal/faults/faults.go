// Package faults is the deterministic fault-injection plane: seeded
// schedules of shard crashes, stalls and session churn, a brownout
// planner that decides which traffic classes to shed when serving
// capacity drops below offered load, and a wire-level injector that
// wraps net.Conn with connection drops, truncated writes and stalled
// reads.
//
// Everything here is a plan, not a mechanism: internal/cluster executes
// shard faults as events on the victim shard's own discrete-event engine
// (ArmShardCrash/ArmShardStall), internal/server executes churn and
// detection, and internal/qos executes the brownout mask. Schedules are
// drawn from the same splittable SplitMix64 PRNG discipline as
// internal/arrivals, so a schedule is a pure function of its seed — the
// E16 fault curves replay bit-identically.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"mccp/internal/arrivals"
	"mccp/internal/qos"
	"mccp/internal/sim"
)

// Kind classifies a scheduled fault event.
type Kind int

const (
	// ShardCrash kills a shard's service permanently at the scheduled
	// point: queued and future packets fail, the heartbeat freezes, and
	// recovery is quarantine + voice-first re-home on the survivors.
	ShardCrash Kind = iota
	// ShardStall freezes a shard's dispatch for Dur cycles; queued
	// packets age and expire in place, then service resumes. A stalled
	// shard is not dead and must not be quarantined.
	ShardStall
	// SessionChurn closes and re-opens Count sessions at a window
	// boundary (the open/close storm, load-generator side).
	SessionChurn
)

func (k Kind) String() string {
	switch k {
	case ShardCrash:
		return "crash"
	case ShardStall:
		return "stall"
	case SessionChurn:
		return "churn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// Window indexes the open-loop measurement window (load-generator
	// barrier sequence) in which the event fires; shard faults arm at the
	// window's start and fire Offset cycles into the victim's next batch.
	Window int
	// Shard is the victim (ShardCrash/ShardStall).
	Shard int
	// Offset is the virtual-time offset into the batch at which the
	// fault fires.
	Offset sim.Time
	// Dur is the stall length (ShardStall only).
	Dur sim.Time
	// Count is the sessions churned (SessionChurn only).
	Count int
}

func (e Event) String() string {
	switch e.Kind {
	case SessionChurn:
		return fmt.Sprintf("w%d %v x%d", e.Window, e.Kind, e.Count)
	case ShardStall:
		return fmt.Sprintf("w%d %v shard %d +%d for %d", e.Window, e.Kind, e.Shard, e.Offset, e.Dur)
	default:
		return fmt.Sprintf("w%d %v shard %d +%d", e.Window, e.Kind, e.Shard, e.Offset)
	}
}

// Schedule is a deterministic fault plan: events sorted by window.
type Schedule struct {
	Seed   uint64
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// ForWindow returns the events scheduled for one window.
func (s Schedule) ForWindow(w int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Window == w {
			out = append(out, e)
		}
	}
	return out
}

func (s Schedule) String() string {
	if s.Empty() {
		return "no faults"
	}
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, "; ")
}

// PlanConfig parameterizes Plan.
type PlanConfig struct {
	// Seed drives the schedule's splittable PRNG.
	Seed uint64
	// Shards is the cluster size; Windows the measurement length.
	Shards, Windows int
	// Crashes is the number of distinct shards to crash; FaultWindow the
	// window the first crash lands in (later crashes land in successive
	// windows). At least one shard always survives.
	Crashes     int
	FaultWindow int
	// Stalls schedules that many transient freezes of StallCycles each on
	// surviving shards, after the crashes.
	Stalls      int
	StallCycles sim.Time
	// ChurnPerWindow closes and re-opens that many sessions at every
	// window boundary from FaultWindow on.
	ChurnPerWindow int
	// WindowCycles bounds the in-window fault offsets: each shard fault
	// fires between 1/4 and 3/4 of a window in.
	WindowCycles sim.Time
}

// Plan draws a deterministic schedule from the config's seed. Crash
// victims are distinct shards chosen by the PRNG (never all of them),
// offsets land mid-window, and the event list is sorted by window then
// shard so the schedule prints and replays stably.
func Plan(cfg PlanConfig) (Schedule, error) {
	if cfg.Shards <= 0 || cfg.Windows <= 0 {
		return Schedule{}, fmt.Errorf("faults: plan needs positive shards and windows")
	}
	if cfg.Crashes >= cfg.Shards {
		return Schedule{}, fmt.Errorf("faults: %d crashes would kill all %d shards (at least one must survive)", cfg.Crashes, cfg.Shards)
	}
	if cfg.WindowCycles <= 0 {
		cfg.WindowCycles = 8192
	}
	if cfg.FaultWindow <= 0 {
		cfg.FaultWindow = cfg.Windows / 3
		if cfg.FaultWindow == 0 {
			cfg.FaultWindow = 1
		}
	}
	s := Schedule{Seed: cfg.Seed}
	rng := arrivals.NewRand(cfg.Seed ^ 0xFA17)
	crashRng := rng.Split()
	stallRng := rng.Split()
	offset := func(r *arrivals.Rand) sim.Time {
		span := uint64(cfg.WindowCycles) / 2
		return sim.Time(uint64(cfg.WindowCycles)/4 + r.Uint64()%span)
	}
	victims := map[int]bool{}
	for i := 0; i < cfg.Crashes; i++ {
		v := int(crashRng.Uint64() % uint64(cfg.Shards))
		for victims[v] {
			v = (v + 1) % cfg.Shards
		}
		victims[v] = true
		s.Events = append(s.Events, Event{
			Kind:   ShardCrash,
			Window: cfg.FaultWindow + i,
			Shard:  v,
			Offset: offset(crashRng),
		})
	}
	for i := 0; i < cfg.Stalls; i++ {
		v := int(stallRng.Uint64() % uint64(cfg.Shards))
		for victims[v] { // never stall a corpse
			v = (v + 1) % cfg.Shards
		}
		s.Events = append(s.Events, Event{
			Kind:   ShardStall,
			Window: cfg.FaultWindow + cfg.Crashes + i,
			Shard:  v,
			Offset: offset(stallRng),
			Dur:    cfg.StallCycles,
		})
	}
	if cfg.ChurnPerWindow > 0 {
		for w := cfg.FaultWindow; w < cfg.Windows; w++ {
			s.Events = append(s.Events, Event{Kind: SessionChurn, Window: w, Count: cfg.ChurnPerWindow})
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].Window != s.Events[j].Window {
			return s.Events[i].Window < s.Events[j].Window
		}
		return s.Events[i].Shard < s.Events[j].Shard
	})
	return s, nil
}

// BrownoutDeny plans graceful degradation: given the offered load, the
// remaining serving capacity and each class's share of the offered load
// (all in Mbps, or any one consistent unit), it sheds whole classes in
// strict reverse-priority order — background first, then data, then
// video — until the load the mask still admits fits the capacity. Voice
// is never shed: if capacity cannot even carry voice, the mask still
// admits it and the shaper's own queues arbitrate. The zero mask (admit
// everything) comes back whenever capacity covers the full offered load.
func BrownoutDeny(offered, capacity float64, share [qos.NumClasses]float64) [qos.NumClasses]bool {
	var deny [qos.NumClasses]bool
	if capacity >= offered || offered <= 0 {
		return deny
	}
	admitted := offered
	// Shed lowest class first: Background has the lowest class value.
	for _, c := range []qos.Class{qos.Background, qos.Data, qos.Video} {
		if admitted <= capacity {
			break
		}
		deny[c] = true
		admitted -= offered * share[c]
	}
	return deny
}
