package scheduler

import (
	"testing"

	"mccp/internal/cryptocore"
)

func views(busy ...bool) []CoreView {
	vs := make([]CoreView, len(busy))
	for i, b := range busy {
		vs[i] = CoreView{ID: i, Busy: b, Engine: EngineAES}
	}
	return vs
}

func TestFirstIdleSingle(t *testing.T) {
	p := FirstIdle{}
	got := p.Pick(Request{Family: cryptocore.FamilyGCM}, views(true, true, false, false))
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("pick = %v, want [2]", got)
	}
	if p.Pick(Request{Family: cryptocore.FamilyGCM}, views(true, true, true, true)) != nil {
		t.Error("pick on saturated cores should be nil (error flag)")
	}
}

func TestFirstIdleSplitPrefersPair(t *testing.T) {
	p := FirstIdle{}
	r := Request{Family: cryptocore.FamilyCCM, WantSplit: true}
	got := p.Pick(r, views(false, false, false, false))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("pick = %v, want pair [0 1]", got)
	}
	// Pair (0,1) broken: core 1 busy -> take pair (2,3).
	got = p.Pick(r, views(false, true, false, false))
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("pick = %v, want pair [2 3]", got)
	}
	// No full pair: fall back to one core (the paper's 1-core CCM).
	got = p.Pick(r, views(false, true, true, false))
	if len(got) != 1 {
		t.Errorf("pick = %v, want single-core fallback", got)
	}
	// Cores 1 and 2 idle are NOT a pair (no shared shift register).
	got = p.Pick(r, views(true, false, false, true))
	if len(got) != 1 {
		t.Errorf("pick = %v: (1,2) must not form a pair", got)
	}
}

func TestPaired(t *testing.T) {
	if !Paired(0, 1) || !Paired(2, 3) || Paired(1, 2) || Paired(0, 0) || Paired(0, 2) {
		t.Error("pairing relation wrong")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p := &RoundRobin{}
	r := Request{Family: cryptocore.FamilyGCM}
	all := views(false, false, false, false)
	var picks []int
	for i := 0; i < 6; i++ {
		got := p.Pick(r, all)
		picks = append(picks, got[0])
	}
	want := []int{0, 1, 2, 3, 0, 1}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v, want %v", picks, want)
		}
	}
}

func TestKeyAffinityPrefersHolder(t *testing.T) {
	vs := views(false, false, false, false)
	vs[2].HasKey = true
	got := KeyAffinity{}.Pick(Request{Family: cryptocore.FamilyGCM, KeyID: 9}, vs)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("pick = %v, want [2]", got)
	}
}

func TestKeyAffinitySpreadsFirstTouch(t *testing.T) {
	vs := views(false, false, false, false)
	vs[0].CachedKeys = 3
	vs[1].CachedKeys = 1
	vs[2].CachedKeys = 2
	vs[3].CachedKeys = 4
	got := KeyAffinity{}.Pick(Request{Family: cryptocore.FamilyGCM, KeyID: 9}, vs)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("pick = %v, want [1] (emptiest cache)", got)
	}
}

func TestKeyAffinitySplitPrefersKeyedPair(t *testing.T) {
	vs := views(false, false, false, false)
	vs[2].HasKey, vs[3].HasKey = true, true
	got := KeyAffinity{}.Pick(Request{Family: cryptocore.FamilyCCM, WantSplit: true, KeyID: 4}, vs)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("pick = %v, want keyed pair [2 3]", got)
	}
}

func TestEngineFiltering(t *testing.T) {
	vs := views(false, false)
	vs[0].Engine = EngineHash
	// AES request must skip the reconfigured core.
	got := FirstIdle{}.Pick(Request{Family: cryptocore.FamilyGCM}, vs)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("pick = %v, want [1]", got)
	}
	// Hash request must pick only the Whirlpool core.
	got = FirstIdle{}.Pick(Request{Family: cryptocore.FamilyHash}, vs)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("hash pick = %v, want [0]", got)
	}
	vs[0].Busy = true
	if (FirstIdle{}).Pick(Request{Family: cryptocore.FamilyHash}, vs) != nil {
		t.Error("hash pick with no hash core should be nil")
	}
}

func TestPolicyNames(t *testing.T) {
	if (FirstIdle{}).Name() != "first-idle" ||
		(&RoundRobin{}).Name() != "round-robin" ||
		(KeyAffinity{}).Name() != "key-affinity" ||
		(QoSPriority{}).Name() != "qos-priority" {
		t.Error("policy names changed")
	}
	for _, n := range Names() {
		if p, err := ByName(n); err != nil || p.Name() != n {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
}

func TestQoSPriorityReservesForHighPriority(t *testing.T) {
	p := QoSPriority{} // defaults: reserve 1 of 4, high = priority >= 2
	low := Request{Family: cryptocore.FamilyGCM, Priority: 0}
	high := Request{Family: cryptocore.FamilyGCM, Priority: 3}

	// Plenty idle: low priority dispatches normally.
	if got := p.Pick(low, views(true, false, false, false)); len(got) != 1 || got[0] != 1 {
		t.Errorf("low pick = %v, want [1]", got)
	}
	// One idle core left: it is reserved — low priority must wait...
	if got := p.Pick(low, views(true, true, true, false)); got != nil {
		t.Errorf("low pick on last core = %v, want nil (reserved)", got)
	}
	// ...but a voice-class request takes it instantly.
	if got := p.Pick(high, views(true, true, true, false)); len(got) != 1 || got[0] != 3 {
		t.Errorf("high pick = %v, want [3]", got)
	}
	// Video (priority 2) is in the high tier too.
	if got := p.Pick(Request{Family: cryptocore.FamilyGCM, Priority: 2},
		views(true, true, true, false)); len(got) != 1 {
		t.Errorf("video-priority pick = %v, want the reserved core", got)
	}
}

func TestQoSPrioritySplitRespectsReserve(t *testing.T) {
	p := QoSPriority{}
	low := Request{Family: cryptocore.FamilyCCM, WantSplit: true, Priority: 0}
	// Three idle: a low-priority split pair (0,1) still leaves one core.
	if got := p.Pick(low, views(false, false, false, true)); len(got) != 2 {
		t.Errorf("split pick = %v, want a pair", got)
	}
	// Two idle: taking the pair would empty the device — degrade to one
	// core, keeping the reserve.
	if got := p.Pick(low, views(false, false, true, true)); len(got) != 1 {
		t.Errorf("split pick = %v, want single-core fallback", got)
	}
}

func TestQoSPriorityNeverReservesWholeDevice(t *testing.T) {
	p := QoSPriority{}
	low := Request{Family: cryptocore.FamilyGCM, Priority: 0}
	// On a single-core device the reserve clamps to zero: background
	// traffic must still be servable.
	if got := p.Pick(low, views(false)); len(got) != 1 {
		t.Errorf("single-core low pick = %v, want [0]", got)
	}
	// Explicit over-reservation clamps the same way.
	p = QoSPriority{Reserve: 4}
	if got := p.Pick(low, views(false, false, false, false)); len(got) != 1 {
		t.Errorf("over-reserved pick = %v, want one core", got)
	}
}
