// Package scheduler provides the core-dispatch policies of the MCCP Task
// Scheduler. The paper ships the simplest one — "an incoming packet is
// forwarded to the first idle core found. If no core is available, it
// returns an error flag" (§III.C) — and calls for smarter mappings in §VIII
// (stream priorities, quality-of-service, key/program affinity); those are
// implemented here as alternative policies and evaluated by the scheduling
// benches.
package scheduler

import (
	"fmt"
	"strings"

	"mccp/internal/cryptocore"
)

// EngineAES and EngineHash identify what currently occupies a core's
// reconfigurable region.
const (
	EngineAES  = "AES"
	EngineHash = "WHIRLPOOL"
)

// Names lists the selectable policies, in documentation order.
func Names() []string {
	return []string{"first-idle", "round-robin", "key-affinity", "qos-priority"}
}

// ByName returns a fresh policy instance for a policy name. The empty
// string selects the paper's first-idle behaviour. Every caller gets its
// own instance, so stateful policies (round-robin) are never shared
// between devices.
func ByName(name string) (Policy, error) {
	switch name {
	case "", "first-idle":
		return FirstIdle{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "key-affinity":
		return KeyAffinity{}, nil
	case "qos-priority":
		return QoSPriority{}, nil
	}
	return nil, fmt.Errorf("scheduler: unknown policy %q (have %s)", name, strings.Join(Names(), ", "))
}

// CoreView is the scheduler's snapshot of one core.
type CoreView struct {
	ID     int
	Busy   bool
	HasKey bool   // requested key already in this core's Key Cache
	Engine string // EngineAES or EngineHash
	// CachedKeys is the core's Key Cache occupancy; placement policies use
	// it to spread first-touch keys instead of piling onto core 0.
	CachedKeys int
}

// Request describes a dispatch decision's inputs.
type Request struct {
	Family    cryptocore.Family
	WantSplit bool // two-core CCM preferred
	KeyID     int
	Priority  int // higher first (QoS extension)
}

// Policy picks the core (or adjacent core pair, for split CCM) to run a
// request. It returns nil when no suitable resources are idle.
type Policy interface {
	Name() string
	Pick(r Request, cores []CoreView) []int
}

func engineFor(f cryptocore.Family) string {
	if f == cryptocore.FamilyHash {
		return EngineHash
	}
	return EngineAES
}

func usable(c CoreView, want string) bool { return !c.Busy && c.Engine == want }

// Paired reports whether two core IDs share a shift register: cores are
// paired (0,1), (2,3), ... matching the paper's pairwise-shared resources.
func Paired(a, b int) bool { return a/2 == b/2 && a != b }

// pickPair returns the first idle shared-register pair (2k, 2k+1).
func pickPair(cores []CoreView, want string) []int {
	byID := make(map[int]CoreView, len(cores))
	for _, c := range cores {
		byID[c.ID] = c
	}
	for _, c := range cores {
		if c.ID%2 != 0 {
			continue
		}
		mate, ok := byID[c.ID+1]
		if ok && usable(c, want) && usable(mate, want) {
			return []int{c.ID, mate.ID}
		}
	}
	return nil
}

func pickFirst(cores []CoreView, want string) []int {
	for _, c := range cores {
		if usable(c, want) {
			return []int{c.ID}
		}
	}
	return nil
}

// FirstIdle is the paper's policy: the first idle core wins; a split CCM
// request takes the first adjacent idle pair and falls back to one core.
type FirstIdle struct{}

// Name implements Policy.
func (FirstIdle) Name() string { return "first-idle" }

// Pick implements Policy.
func (FirstIdle) Pick(r Request, cores []CoreView) []int {
	want := engineFor(r.Family)
	if r.Family == cryptocore.FamilyCCM && r.WantSplit {
		if p := pickPair(cores, want); p != nil {
			return p
		}
	}
	return pickFirst(cores, want)
}

// RoundRobin rotates the starting core between dispatches, spreading wear
// and key-cache pressure evenly.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(r Request, cores []CoreView) []int {
	n := len(cores)
	if n == 0 {
		return nil
	}
	want := engineFor(r.Family)
	rot := make([]CoreView, 0, n)
	for i := 0; i < n; i++ {
		rot = append(rot, cores[(p.next+i)%n])
	}
	var ids []int
	if r.Family == cryptocore.FamilyCCM && r.WantSplit {
		ids = pickPair(rot, want)
	}
	if ids == nil {
		ids = pickFirst(rot, want)
	}
	if ids != nil {
		p.next = (ids[len(ids)-1] + 1) % n
	}
	return ids
}

// HighPriorityMin is the default priority tag from which a request counts
// as high-priority for QoSPriority (the qos package's video and voice
// classes; data and background fall below it).
const HighPriorityMin = 2

// QoSPriority is the §VIII quality-of-service dispatch policy: it keeps
// Reserve cores free for high-priority traffic. A high-priority request
// (Priority >= MinPriority) dispatches first-idle over every core, so a
// voice frame arriving at a device saturated with bulk transfers still
// finds its reserved core instantly. A low-priority request may only
// dispatch if at least Reserve suitable cores would stay idle afterwards;
// otherwise it queues (or draws the error flag), trading a fraction of
// bulk capacity for bounded high-priority latency.
type QoSPriority struct {
	// Reserve is the number of cores kept free for high-priority requests
	// (default max(1, cores/4) — one of the paper's four cores).
	Reserve int
	// MinPriority is the priority tag from which a request counts as
	// high-priority (default HighPriorityMin).
	MinPriority int
}

// Name implements Policy.
func (QoSPriority) Name() string { return "qos-priority" }

// Pick implements Policy.
func (p QoSPriority) Pick(r Request, cores []CoreView) []int {
	minPrio := p.MinPriority
	if minPrio <= 0 {
		minPrio = HighPriorityMin
	}
	if r.Priority >= minPrio {
		// Key-affine placement keeps a voice stream on the core that
		// already holds its round keys, so the reserved capacity is not
		// spent re-expanding keys on whichever core happens to be free.
		return KeyAffinity{}.Pick(r, cores)
	}
	reserve := p.Reserve
	if reserve <= 0 {
		reserve = len(cores) / 4
		if reserve < 1 {
			reserve = 1
		}
	}
	// Never reserve the whole device: a single-core MCCP must still serve
	// background traffic.
	if reserve >= len(cores) {
		reserve = len(cores) - 1
	}
	want := engineFor(r.Family)
	idle := 0
	for _, c := range cores {
		if usable(c, want) {
			idle++
		}
	}
	if r.Family == cryptocore.FamilyCCM && r.WantSplit && idle-2 >= reserve {
		if pr := pickPair(cores, want); pr != nil {
			return pr
		}
	}
	if idle-1 >= reserve {
		return pickFirst(cores, want)
	}
	return nil
}

// KeyAffinity prefers an idle core that already holds the request's round
// keys in its Key Cache, avoiding the Key Scheduler's expansion latency;
// it degrades to first-idle otherwise. This is the §VIII observation that
// assignment must cover "loading of the correct Cryptographic Core program
// and Cryptographic Unit configuration".
type KeyAffinity struct{}

// Name implements Policy.
func (KeyAffinity) Name() string { return "key-affinity" }

// Pick implements Policy.
func (KeyAffinity) Pick(r Request, cores []CoreView) []int {
	want := engineFor(r.Family)
	if r.Family == cryptocore.FamilyCCM && r.WantSplit {
		// Prefer a pair that already holds the key on both halves.
		byID := make(map[int]CoreView, len(cores))
		for _, c := range cores {
			byID[c.ID] = c
		}
		for _, c := range cores {
			if c.ID%2 != 0 {
				continue
			}
			mate, ok := byID[c.ID+1]
			if ok && usable(c, want) && usable(mate, want) && c.HasKey && mate.HasKey {
				return []int{c.ID, mate.ID}
			}
		}
		if p := pickPair(cores, want); p != nil {
			return p
		}
	}
	for _, c := range cores {
		if usable(c, want) && c.HasKey {
			return []int{c.ID}
		}
	}
	// First touch (or the holding core is busy): place on the idle core
	// with the emptiest Key Cache, spreading keys so future packets find
	// their core idle more often. A first-idle fallback would pile every
	// key onto core 0 and defeat the affinity.
	best := -1
	bestLoad := 1 << 30
	for _, c := range cores {
		if usable(c, want) && c.CachedKeys < bestLoad {
			best, bestLoad = c.ID, c.CachedKeys
		}
	}
	if best < 0 {
		return nil
	}
	return []int{best}
}
