// Package scheduler provides the core-dispatch policies of the MCCP Task
// Scheduler. The paper ships the simplest one — "an incoming packet is
// forwarded to the first idle core found. If no core is available, it
// returns an error flag" (§III.C) — and calls for smarter mappings in §VIII
// (stream priorities, quality-of-service, key/program affinity); those are
// implemented here as alternative policies and evaluated by the scheduling
// benches.
package scheduler

import (
	"fmt"

	"mccp/internal/cryptocore"
)

// EngineAES and EngineHash identify what currently occupies a core's
// reconfigurable region.
const (
	EngineAES  = "AES"
	EngineHash = "WHIRLPOOL"
)

// Names lists the selectable policies, in documentation order.
func Names() []string { return []string{"first-idle", "round-robin", "key-affinity"} }

// ByName returns a fresh policy instance for a policy name. The empty
// string selects the paper's first-idle behaviour. Every caller gets its
// own instance, so stateful policies (round-robin) are never shared
// between devices.
func ByName(name string) (Policy, error) {
	switch name {
	case "", "first-idle":
		return FirstIdle{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "key-affinity":
		return KeyAffinity{}, nil
	}
	return nil, fmt.Errorf("scheduler: unknown policy %q (have first-idle, round-robin, key-affinity)", name)
}

// CoreView is the scheduler's snapshot of one core.
type CoreView struct {
	ID     int
	Busy   bool
	HasKey bool   // requested key already in this core's Key Cache
	Engine string // EngineAES or EngineHash
	// CachedKeys is the core's Key Cache occupancy; placement policies use
	// it to spread first-touch keys instead of piling onto core 0.
	CachedKeys int
}

// Request describes a dispatch decision's inputs.
type Request struct {
	Family    cryptocore.Family
	WantSplit bool // two-core CCM preferred
	KeyID     int
	Priority  int // higher first (QoS extension)
}

// Policy picks the core (or adjacent core pair, for split CCM) to run a
// request. It returns nil when no suitable resources are idle.
type Policy interface {
	Name() string
	Pick(r Request, cores []CoreView) []int
}

func engineFor(f cryptocore.Family) string {
	if f == cryptocore.FamilyHash {
		return EngineHash
	}
	return EngineAES
}

func usable(c CoreView, want string) bool { return !c.Busy && c.Engine == want }

// Paired reports whether two core IDs share a shift register: cores are
// paired (0,1), (2,3), ... matching the paper's pairwise-shared resources.
func Paired(a, b int) bool { return a/2 == b/2 && a != b }

// pickPair returns the first idle shared-register pair (2k, 2k+1).
func pickPair(cores []CoreView, want string) []int {
	byID := make(map[int]CoreView, len(cores))
	for _, c := range cores {
		byID[c.ID] = c
	}
	for _, c := range cores {
		if c.ID%2 != 0 {
			continue
		}
		mate, ok := byID[c.ID+1]
		if ok && usable(c, want) && usable(mate, want) {
			return []int{c.ID, mate.ID}
		}
	}
	return nil
}

func pickFirst(cores []CoreView, want string) []int {
	for _, c := range cores {
		if usable(c, want) {
			return []int{c.ID}
		}
	}
	return nil
}

// FirstIdle is the paper's policy: the first idle core wins; a split CCM
// request takes the first adjacent idle pair and falls back to one core.
type FirstIdle struct{}

// Name implements Policy.
func (FirstIdle) Name() string { return "first-idle" }

// Pick implements Policy.
func (FirstIdle) Pick(r Request, cores []CoreView) []int {
	want := engineFor(r.Family)
	if r.Family == cryptocore.FamilyCCM && r.WantSplit {
		if p := pickPair(cores, want); p != nil {
			return p
		}
	}
	return pickFirst(cores, want)
}

// RoundRobin rotates the starting core between dispatches, spreading wear
// and key-cache pressure evenly.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(r Request, cores []CoreView) []int {
	n := len(cores)
	if n == 0 {
		return nil
	}
	want := engineFor(r.Family)
	rot := make([]CoreView, 0, n)
	for i := 0; i < n; i++ {
		rot = append(rot, cores[(p.next+i)%n])
	}
	var ids []int
	if r.Family == cryptocore.FamilyCCM && r.WantSplit {
		ids = pickPair(rot, want)
	}
	if ids == nil {
		ids = pickFirst(rot, want)
	}
	if ids != nil {
		p.next = (ids[len(ids)-1] + 1) % n
	}
	return ids
}

// KeyAffinity prefers an idle core that already holds the request's round
// keys in its Key Cache, avoiding the Key Scheduler's expansion latency;
// it degrades to first-idle otherwise. This is the §VIII observation that
// assignment must cover "loading of the correct Cryptographic Core program
// and Cryptographic Unit configuration".
type KeyAffinity struct{}

// Name implements Policy.
func (KeyAffinity) Name() string { return "key-affinity" }

// Pick implements Policy.
func (KeyAffinity) Pick(r Request, cores []CoreView) []int {
	want := engineFor(r.Family)
	if r.Family == cryptocore.FamilyCCM && r.WantSplit {
		// Prefer a pair that already holds the key on both halves.
		byID := make(map[int]CoreView, len(cores))
		for _, c := range cores {
			byID[c.ID] = c
		}
		for _, c := range cores {
			if c.ID%2 != 0 {
				continue
			}
			mate, ok := byID[c.ID+1]
			if ok && usable(c, want) && usable(mate, want) && c.HasKey && mate.HasKey {
				return []int{c.ID, mate.ID}
			}
		}
		if p := pickPair(cores, want); p != nil {
			return p
		}
	}
	for _, c := range cores {
		if usable(c, want) && c.HasKey {
			return []int{c.ID}
		}
	}
	// First touch (or the holding core is busy): place on the idle core
	// with the emptiest Key Cache, spreading keys so future packets find
	// their core idle more often. A first-idle fallback would pile every
	// key onto core 0 and defeat the affinity.
	best := -1
	bestLoad := 1 << 30
	for _, c := range cores {
		if usable(c, want) && c.CachedKeys < bestLoad {
			best, bestLoad = c.ID, c.CachedKeys
		}
	}
	if best < 0 {
		return nil
	}
	return []int{best}
}
