// Package benchfmt parses `go test -bench` output into structured
// results, serializes them as the repository's benchmark-trajectory JSON
// (BENCH_ci.json artifacts, BENCH_baseline.json), and gates the current
// run against a committed baseline.
//
// Only the simulation's virtual-time metrics (the *_Mbps figures, cycle
// counts, retention ratios) are deterministic across machines; ns/op and
// host_Mbps measure the simulator itself and vary with hardware. The
// regression gate therefore compares only higher-is-better throughput
// metrics (suffix "_Mbps" plus "voice_retention"), never wall-clock ones.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// -GOMAXPROCS suffix stripped (e.g. "Table2_GCM_1core_128").
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Procs is the GOMAXPROCS suffix of the benchmark line (0 when the
	// line carried none). Host-parallelism gates use it: a cluster cannot
	// out-scale the CPUs the run was given.
	Procs int `json:"procs,omitempty"`
}

// File is the serialized trajectory point.
type File struct {
	// Bench is the `-bench` expression the run used (provenance only).
	Bench   string   `json:"bench,omitempty"`
	Results []Result `json:"results"`
}

var benchLine = regexp.MustCompile(`^Benchmark([^\s]+)\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output, collecting every benchmark line
// and ignoring everything else (goos/pkg headers, PASS/ok trailers).
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		procs := 0
		// Strip the -N GOMAXPROCS suffix go test appends, keeping its value.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				procs = n
			}
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q", sc.Text())
		}
		res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}, Procs: procs}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad metric value %q in %q", fields[i], sc.Text())
			}
			unit := fields[i+1]
			// Normalize "ns/op" -> "ns_op" so metric names are JSON-friendly.
			unit = strings.ReplaceAll(unit, "/", "_")
			res.Metrics[unit] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSON serializes results, sorted by name for stable diffs.
func WriteJSON(w io.Writer, bench string, results []Result) error {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{Bench: bench, Results: sorted})
}

// ReadJSON loads a serialized trajectory point.
func ReadJSON(r io.Reader) ([]Result, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return f.Results, nil
}

// hostMetric reports whether a metric describes the simulator's host-side
// cost rather than a virtual-time result: wall-clock figures (ns/op,
// host_Mbps, MB/s) and allocator counters (allocs/op, B/op).
func hostMetric(m string) bool {
	switch m {
	case "ns_op", "allocs_op", "B_op", "MB_s", "sim_Mcycles_per_s":
		return true
	}
	return strings.Contains(m, "host")
}

// HostOnly projects results onto their host-side metrics, dropping
// benchmarks that report none. cmd/benchjson uses it to record the
// host-speed trajectory (BENCH_host.json) separately from the gated
// virtual-time baseline.
func HostOnly(results []Result) []Result {
	var out []Result
	for _, r := range results {
		h := Result{Name: r.Name, Iterations: r.Iterations, Metrics: map[string]float64{}}
		for m, v := range r.Metrics {
			if hostMetric(m) {
				h.Metrics[m] = v
			}
		}
		if len(h.Metrics) > 0 {
			out = append(out, h)
		}
	}
	return out
}

// HostScale is the cluster host-scaling gate's verdict.
type HostScale struct {
	// Ratio is top's host_Mbps over base's; Want the effective minimum it
	// was held to (the requested ratio, derated to what the run's CPU
	// count makes possible).
	Ratio, Want float64
	// Skipped is non-empty when the gate cannot apply (single-CPU run,
	// missing metric) and explains why.
	Skipped string
}

// Pass reports whether the gate held (a skipped gate passes).
func (h HostScale) Pass() bool { return h.Skipped != "" || h.Ratio >= h.Want }

// CheckHostScale compares top's host_Mbps against base's. minRatio is the
// multi-core expectation; the effective bar is derated to 0.6 x the
// run's GOMAXPROCS (a K-CPU host cannot exceed K x, and the pipeline has
// serial residue — scheduler, GC, the single-caller front end), and the
// check is skipped outright on a single-CPU run, where host-parallel
// speedup is impossible by construction.
func CheckHostScale(results []Result, top, base string, minRatio float64) (HostScale, error) {
	find := func(name string) (Result, error) {
		for _, r := range results {
			if r.Name == name {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("benchfmt: host-scale benchmark %q missing from results", name)
	}
	t, err := find(top)
	if err != nil {
		return HostScale{}, err
	}
	b, err := find(base)
	if err != nil {
		return HostScale{}, err
	}
	tm, ok1 := t.Metrics["host_Mbps"]
	bm, ok2 := b.Metrics["host_Mbps"]
	if !ok1 || !ok2 || bm <= 0 {
		return HostScale{Skipped: "host_Mbps metric missing"}, nil
	}
	h := HostScale{Ratio: tm / bm, Want: minRatio}
	// go test appends the -N GOMAXPROCS suffix only when N != 1, so a
	// result without one (Procs 0) is also a single-CPU run.
	if t.Procs <= 1 {
		h.Skipped = "single-CPU run: host-parallel speedup impossible by construction"
		return h, nil
	}
	if ceiling := 0.6 * float64(t.Procs); ceiling < h.Want {
		h.Want = ceiling
	}
	return h, nil
}

// AllocsPerPacket returns a benchmark's allocs_op divided by its packets
// metric — the allocation cost of one packet through the whole stack.
func AllocsPerPacket(results []Result, name string) (float64, error) {
	for _, r := range results {
		if r.Name != name {
			continue
		}
		allocs, ok1 := r.Metrics["allocs_op"]
		packets, ok2 := r.Metrics["packets"]
		if !ok1 || !ok2 || packets <= 0 {
			return 0, fmt.Errorf("benchfmt: %s lacks allocs_op/packets metrics", name)
		}
		return allocs / packets, nil
	}
	return 0, fmt.Errorf("benchfmt: allocs benchmark %q missing from results", name)
}

// Regression is one gate violation.
type Regression struct {
	Benchmark string
	Metric    string
	Baseline  float64
	Current   float64
	// Ratio is Current/Baseline (1.0 = unchanged; below the tolerance
	// threshold fails). Missing benchmarks report Ratio 0.
	Ratio float64
}

func (r Regression) String() string {
	if r.Current == 0 && r.Ratio == 0 && r.Metric == "" {
		return fmt.Sprintf("%s: benchmark missing from current run", r.Benchmark)
	}
	return fmt.Sprintf("%s %s: %.1f -> %.1f (%.0f%% of baseline)",
		r.Benchmark, r.Metric, r.Baseline, r.Current, 100*r.Ratio)
}

// gated reports whether a metric participates in the regression gate:
// deterministic higher-is-better figures only — virtual-time throughput
// (*_Mbps), the E12 voice retention ratio, and the E13 delivered
// fractions (*_delivered_frac, a loss curve read as higher-is-better so
// the same below-baseline rule applies).
func gated(metric string) bool {
	if strings.Contains(metric, "host") {
		return false // wall-clock throughput of the simulator itself
	}
	return strings.HasSuffix(metric, "_Mbps") || metric == "voice_retention" ||
		strings.HasSuffix(metric, "_delivered_frac")
}

// gatedLower reports whether a metric participates in the gate as a
// lower-is-better figure: the E14 wire-level latency percentiles
// (*wire*_p99_cycles). Deterministic virtual-time cycle counts, so a rise
// past tolerance is a real service-path regression, not noise. Scoped to
// names containing "wire" on purpose — the E13 in-process p99 metrics
// (voice_p99_cycles etc.) ride in the baseline ungated, and a blanket
// suffix rule would silently start gating them.
func gatedLower(metric string) bool {
	return strings.Contains(metric, "wire") && strings.HasSuffix(metric, "_p99_cycles")
}

// DeliveredFracTolerance caps the gate tolerance applied to
// *_delivered_frac metrics. A delivered fraction near 1.0 is a loss
// figure in disguise: the throughput gate's default 25% headroom would
// let a recorded ~0%-loss point silently decay to ~25% loss, so these
// metrics gate at the tighter of the requested tolerance and 2%.
const DeliveredFracTolerance = 0.02

// metricTolerance returns the effective tolerance for one gated metric.
func metricTolerance(metric string, tolerance float64) float64 {
	if strings.HasSuffix(metric, "_delivered_frac") && tolerance > DeliveredFracTolerance {
		return DeliveredFracTolerance
	}
	return tolerance
}

// Gate compares current results against a baseline for every benchmark
// whose name matches match (a regexp; empty matches all) and returns the
// violations: any gated metric below (1-tolerance) x baseline, any
// lower-is-better wire latency metric above (1+tolerance) x baseline, and
// any matched baseline benchmark absent from the current run. Improvements
// and new benchmarks never fail the gate — the baseline is refreshed by
// committing a new BENCH_baseline.json.
func Gate(current, baseline []Result, match string, tolerance float64) ([]Regression, error) {
	re, err := regexp.Compile(match)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: bad match expression: %w", err)
	}
	cur := map[string]Result{}
	for _, r := range current {
		cur[r.Name] = r
	}
	var out []Regression
	for _, base := range baseline {
		if !re.MatchString(base.Name) {
			continue
		}
		now, ok := cur[base.Name]
		if !ok {
			out = append(out, Regression{Benchmark: base.Name})
			continue
		}
		// Deterministic metric order for reproducible reports.
		metrics := make([]string, 0, len(base.Metrics))
		for m := range base.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			want := base.Metrics[m]
			if want <= 0 {
				continue
			}
			lower := gatedLower(m)
			if !lower && !gated(m) {
				continue
			}
			got, ok := now.Metrics[m]
			ratio := got / want
			bad := !ok
			if !bad {
				if lower {
					bad = ratio > 1+metricTolerance(m, tolerance)
				} else {
					bad = ratio < 1-metricTolerance(m, tolerance)
				}
			}
			if bad {
				out = append(out, Regression{
					Benchmark: base.Name, Metric: m,
					Baseline: want, Current: got, Ratio: ratio,
				})
			}
		}
	}
	return out, nil
}
