package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mccp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2_GCM_1core_128-8    1    56789012 ns/op    437.0 system_Mbps    496.2 paper_methodology_Mbps
BenchmarkQoS_Overload/qos-priority-8    1    1843 ns/op    1105 background_Mbps    179.7 voice_Mbps    0.9710 voice_retention
BenchmarkCluster/shards=4-8    1    9000000 ns/op    3400 aggregate_Mbps    120 host_Mbps
BenchmarkLoadCurve/qos-priority/offered=2.0-8    1    2000 ns/op    1388 delivered_Mbps    1.000 voice_delivered_frac    7066 voice_p99_cycles
BenchmarkWireLatency/offered=0.5-8    1    1500 ns/op    1374 wire_Mbps    10198 voice_wire_p99_cycles
PASS
ok   mccp  0.222s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	r := results[0]
	if r.Name != "Table2_GCM_1core_128" || r.Iterations != 1 {
		t.Fatalf("result = %+v", r)
	}
	if r.Metrics["system_Mbps"] != 437 || r.Metrics["ns_op"] != 56789012 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if results[1].Name != "QoS_Overload/qos-priority" {
		t.Fatalf("subbenchmark name = %q", results[1].Name)
	}
	if results[1].Metrics["voice_retention"] != 0.971 {
		t.Fatalf("retention = %v", results[1].Metrics)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	results, _ := Parse(strings.NewReader(sample))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "Table2|Cluster|QoS", results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip lost results: %d vs %d", len(back), len(results))
	}
	// WriteJSON sorts by name.
	for i := 1; i < len(back); i++ {
		if back[i-1].Name > back[i].Name {
			t.Fatal("results not sorted")
		}
	}
}

func TestGateDetectsRegressions(t *testing.T) {
	baseline, _ := Parse(strings.NewReader(sample))
	current, _ := Parse(strings.NewReader(sample))
	// Unchanged run: no regressions.
	regs, err := Gate(current, baseline, "Table2", 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("clean gate: %v %v", regs, err)
	}
	// 30% throughput drop on a Table II cell: caught.
	current[0].Metrics["system_Mbps"] = 437 * 0.69
	regs, _ = Gate(current, baseline, "Table2", 0.25)
	if len(regs) != 1 || regs[0].Metric != "system_Mbps" {
		t.Fatalf("regression not caught: %v", regs)
	}
	// Same drop passes a looser gate.
	regs, _ = Gate(current, baseline, "Table2", 0.5)
	if len(regs) != 0 {
		t.Fatalf("tolerance ignored: %v", regs)
	}
	// ns/op explosions never gate (host-dependent).
	current[0].Metrics["system_Mbps"] = 437
	current[0].Metrics["ns_op"] = 1e12
	if regs, _ = Gate(current, baseline, "Table2", 0.25); len(regs) != 0 {
		t.Fatalf("ns/op gated: %v", regs)
	}
	// host_Mbps never gates either.
	current[2].Metrics["host_Mbps"] = 1
	if regs, _ = Gate(current, baseline, "", 0.25); len(regs) != 0 {
		t.Fatalf("host_Mbps gated: %v", regs)
	}
	// A matched baseline benchmark missing from the run fails the gate.
	regs, _ = Gate(current[1:], baseline, "Table2", 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("missing benchmark not caught: %v", regs)
	}
	// voice_retention is gated (deterministic ratio).
	current[1].Metrics["voice_retention"] = 0.5
	regs, _ = Gate(current, baseline, "QoS", 0.25)
	if len(regs) != 1 || regs[0].Metric != "voice_retention" {
		t.Fatalf("retention regression not caught: %v", regs)
	}
	current[1].Metrics["voice_retention"] = 0.9710
	// The E13 delivered fraction is gated (a loss-curve point read as
	// higher-is-better); its latency cycles are not (cycle counts are not
	// throughput figures).
	current[3].Metrics["voice_delivered_frac"] = 0.5
	current[3].Metrics["voice_p99_cycles"] = 1e9
	regs, _ = Gate(current, baseline, "LoadCurve", 0.25)
	if len(regs) != 1 || regs[0].Metric != "voice_delivered_frac" {
		t.Fatalf("delivered-fraction regression not caught: %v", regs)
	}
	// ...and at the tight per-metric tolerance: a 5% voice loss is far
	// inside the 25% throughput headroom but must still fail.
	current[3].Metrics["voice_delivered_frac"] = 0.95
	regs, _ = Gate(current, baseline, "LoadCurve", 0.25)
	if len(regs) != 1 || regs[0].Metric != "voice_delivered_frac" {
		t.Fatalf("5%% voice loss slipped through the delivered-frac tolerance: %v", regs)
	}
	current[3].Metrics["voice_delivered_frac"] = 0.99
	if regs, _ = Gate(current, baseline, "LoadCurve", 0.25); len(regs) != 0 {
		t.Fatalf("1%% drift should pass the 2%% delivered-frac tolerance: %v", regs)
	}
	// The E14 wire p99 gates lower-is-better: a blow-up past tolerance
	// fails, a drop (improvement) passes, and the rule is scoped to
	// metrics containing "wire" — the E13 voice_p99_cycles above stayed
	// ungated even at 1e9.
	current[4].Metrics["voice_wire_p99_cycles"] = 10198 * 1.5
	regs, _ = Gate(current, baseline, "Wire", 0.25)
	if len(regs) != 1 || regs[0].Metric != "voice_wire_p99_cycles" {
		t.Fatalf("wire p99 blow-up not caught: %v", regs)
	}
	current[4].Metrics["voice_wire_p99_cycles"] = 10198 * 0.5
	if regs, _ = Gate(current, baseline, "Wire", 0.25); len(regs) != 0 {
		t.Fatalf("wire p99 improvement gated: %v", regs)
	}
	current[4].Metrics["voice_wire_p99_cycles"] = 10198
	// wire_Mbps rides the ordinary higher-is-better throughput rule.
	current[4].Metrics["wire_Mbps"] = 1374 * 0.5
	regs, _ = Gate(current, baseline, "Wire", 0.25)
	if len(regs) != 1 || regs[0].Metric != "wire_Mbps" {
		t.Fatalf("wire throughput regression not caught: %v", regs)
	}
}

func TestHostOnly(t *testing.T) {
	results := []Result{
		{Name: "Table2_GCM_1core_128", Iterations: 1, Metrics: map[string]float64{
			"ns_op": 2.5e6, "host_Mbps": 53, "allocs_op": 11000, "B_op": 500000,
			"system_Mbps": 436, "paper_methodology_Mbps": 436,
		}},
		{Name: "Resources", Iterations: 4, Metrics: map[string]float64{
			"slices": 4084,
		}},
	}
	host := HostOnly(results)
	if len(host) != 1 {
		t.Fatalf("HostOnly kept %d results, want 1 (metric-less benchmarks dropped)", len(host))
	}
	h := host[0]
	if h.Name != "Table2_GCM_1core_128" || h.Iterations != 1 {
		t.Fatalf("wrong result kept: %+v", h)
	}
	for _, m := range []string{"ns_op", "host_Mbps", "allocs_op", "B_op"} {
		if _, ok := h.Metrics[m]; !ok {
			t.Errorf("host metric %s dropped", m)
		}
	}
	for _, m := range []string{"system_Mbps", "paper_methodology_Mbps"} {
		if _, ok := h.Metrics[m]; ok {
			t.Errorf("virtual-time metric %s leaked into host trajectory", m)
		}
	}
	// The projection must not alias the input's metric maps.
	h.Metrics["ns_op"] = 0
	if results[0].Metrics["ns_op"] != 2.5e6 {
		t.Error("HostOnly mutated its input")
	}
}

func scaleResults(procs int, topMbps, baseMbps float64) []Result {
	return []Result{
		{Name: "Cluster/shards=8", Iterations: 1, Procs: procs,
			Metrics: map[string]float64{"host_Mbps": topMbps, "allocs_op": 12800, "packets": 256}},
		{Name: "Cluster/shards=1", Iterations: 1, Procs: procs,
			Metrics: map[string]float64{"host_Mbps": baseMbps}},
	}
}

func TestCheckHostScale(t *testing.T) {
	// Multi-core run below the bar fails.
	h, err := CheckHostScale(scaleResults(8, 100, 90), "Cluster/shards=8", "Cluster/shards=1", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Pass() || h.Skipped != "" || h.Want != 1.5 {
		t.Fatalf("sub-scaling run passed: %+v", h)
	}
	// Multi-core run above the bar passes.
	h, err = CheckHostScale(scaleResults(8, 200, 100), "Cluster/shards=8", "Cluster/shards=1", 1.5)
	if err != nil || !h.Pass() {
		t.Fatalf("scaling run failed: %+v (%v)", h, err)
	}
	// Two CPUs derate the requested 3x to 1.2x.
	h, _ = CheckHostScale(scaleResults(2, 160, 100), "Cluster/shards=8", "Cluster/shards=1", 3)
	if h.Want != 1.2 || !h.Pass() {
		t.Fatalf("2-CPU derating wrong: %+v", h)
	}
	// A single-CPU run skips (host parallelism impossible by construction)
	// — including Procs 0, since go test omits the -N suffix at GOMAXPROCS 1.
	for _, procs := range []int{1, 0} {
		h, _ = CheckHostScale(scaleResults(procs, 100, 100), "Cluster/shards=8", "Cluster/shards=1", 1.5)
		if h.Skipped == "" || !h.Pass() {
			t.Fatalf("single-CPU run (procs=%d) not skipped: %+v", procs, h)
		}
	}
	// Missing benchmark is an error.
	if _, err := CheckHostScale(nil, "a", "b", 1.5); err == nil {
		t.Fatal("missing benchmarks accepted")
	}
}

func TestAllocsPerPacket(t *testing.T) {
	per, err := AllocsPerPacket(scaleResults(8, 1, 1), "Cluster/shards=8")
	if err != nil || per != 50 {
		t.Fatalf("allocs/packet = %v (%v), want 50", per, err)
	}
	if _, err := AllocsPerPacket(scaleResults(8, 1, 1), "Cluster/shards=1"); err == nil {
		t.Fatal("result without packets metric accepted")
	}
}

func TestParseKeepsProcs(t *testing.T) {
	in := "BenchmarkCluster/shards=8-4   1  1000 ns/op  62.8 host_Mbps\n"
	res, err := Parse(strings.NewReader(in))
	if err != nil || len(res) != 1 {
		t.Fatalf("parse: %v (%d results)", err, len(res))
	}
	if res[0].Name != "Cluster/shards=8" || res[0].Procs != 4 {
		t.Fatalf("name/procs = %q/%d, want Cluster/shards=8 / 4", res[0].Name, res[0].Procs)
	}
}
