package cluster

import (
	"fmt"
	"sync/atomic"

	"mccp/internal/core"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/radio"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// batchMsg is one dispatch quantum on a shard's submission ring: the ops
// of one batch plus the shard-local batch sequence number the shard
// publishes when the batch's simulation has run to completion.
type batchMsg struct {
	ops []*pendingOp
	seq uint64
}

// shardSnap is a shard's counter snapshot, rebuilt after every batch and
// published through an atomic pointer so the front end can read metrics
// without stopping the pipeline. Values are as of the shard's last
// completed batch — exactly the "between batches" view the barrier-based
// design exposed.
type shardSnap struct {
	completions   uint64
	authFails     uint64
	rejected      uint64
	queued        uint64
	shed          uint64
	keyExpansions uint64
	crossbarBusy  sim.Time
	cycles        sim.Time // virtual time consumed since settle
	// heartbeat counts batches served while healthy: it stops advancing
	// the moment a ShardCrash fault fires, which is how the front end's
	// failure detector tells a dead shard from an idle one. crashed
	// mirrors the shard's crash flag as of the snapshot.
	heartbeat uint64
	crashed   bool
	// classes carries the shard shaper's per-class counters (only filled
	// with Config.Shape), highest priority first.
	classes []qos.ClassStats
}

// shard is one independent MCCP platform: its own discrete-event engine,
// device, radio controllers and reconfiguration controller, driven by a
// dedicated goroutine. Shards never share simulation state, so each
// shard's virtual timeline is exactly as deterministic as a single
// Platform. The front end communicates through three channels — the
// bounded submission ring (sub), the recycled-batch-slice return path
// (freeOps) and the completion notifier — plus the atomic completed
// counter, which is the happens-before edge for reading a batch's result
// slots and the published snapshot.
type shard struct {
	id  int
	eng *sim.Engine
	dev *core.MCCP
	cc  *radio.CommController
	mc  *radio.MainController
	rc  *reconfig.Controller
	// shaper is the shard's QoS front end (nil without Config.Shape):
	// packet operations route through it, so per-class latency and
	// shed/expired/aged verdicts are attributable on this shard's own
	// virtual timeline.
	shaper *qos.Shaper
	// rec is the shard's flight recorder (always present): lifecycle
	// events land in it unconditionally, traced spans when tracing is on.
	// tr is the shard's lifecycle tracer (nil unless Shape and
	// Config.Trace.Enabled), shared by the shaper and the comm
	// controller.
	rec *obs.Recorder
	tr  *obs.Tracer

	// window bounds the packets kept in flight inside one batch, so a
	// batch larger than the device's capacity pipelines instead of
	// queueing unboundedly — and, with the QoS queue disabled, never
	// oversubscribes the cores (Config.fill caps the default at the core
	// count then, since a same-instant overflow would draw the error
	// flag rather than wait).
	window int
	// base is the virtual time after firmware settle; shard cycle counts
	// are measured from here.
	base sim.Time

	// sub is the bounded submission ring; freeOps returns drained batch
	// slices for reuse; notify wakes a barrier waiter after each batch.
	sub     chan batchMsg
	freeOps chan []*pendingOp
	notify  chan struct{}
	done    chan struct{}

	// completed is the sequence number of the last finished batch; snap
	// the counters published alongside it.
	completed atomic.Uint64
	snap      atomic.Pointer[shardSnap]

	// crashed is set on the shard goroutine when an armed ShardCrash
	// fault fires on this shard's engine (atomic so Snapshot callers on
	// other goroutines can read it); heartbeat is the shard-goroutine
	// batch counter that freezes once crashed. fault is the armed (not
	// yet fired) fault, written by the front end and consumed by loop.
	// drained and quarantinedA mirror the front end's routing mask so
	// Snapshot can report it without touching front-end state.
	crashed      atomic.Bool
	heartbeat    uint64
	fault        atomic.Pointer[shardFault]
	drained      atomic.Bool
	quarantinedA atomic.Bool

	// Batch pump state (shard goroutine only). doneFn is the prebuilt
	// per-operation completion shared by every op's finish callback.
	// batchStart is the shard's virtual time at the start of the running
	// batch; each op's finish records its completion offset from it (the
	// shard-side service latency wire callers report).
	ops        []*pendingOp
	next       int
	inFlight   int
	finished   int
	doneFn     func()
	batchStart sim.Time
}

// newShard builds and starts one shard. pol must be a fresh policy
// instance — stateful policies cannot be shared across engines.
func newShard(id int, cfg Config, pol scheduler.Policy) *shard {
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{
		Cores:         cfg.CoresPerShard,
		Policy:        pol,
		QueueRequests: cfg.QueueRequests,
		MaxQueue:      cfg.MaxQueue,
	})
	sh := &shard{
		id:      id,
		eng:     eng,
		dev:     dev,
		cc:      radio.NewCommController(dev),
		mc:      radio.NewMainController(dev, cfg.Seed^uint64(id)*0x9E3779B97F4A7C15^0xD1CE),
		rc:      reconfig.NewController(eng, dev),
		window:  cfg.ShardWindow,
		sub:     make(chan batchMsg, cfg.RingDepth),
		freeOps: make(chan []*pendingOp, cfg.RingDepth+1),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	sh.rec = obs.NewRecorder(id, cfg.FlightDepth)
	if cfg.Shape {
		sh.shaper = qos.NewShaper(eng, sh.cc, cfg.Shaper)
		if cfg.Trace.Enabled {
			tc := cfg.Trace
			tc.Tag = int32(id)
			tc.Seed = cfg.Trace.Seed ^ uint64(id+1)*0x9E3779B97F4A7C15
			tc.Classify = outcomeFor
			tc.OnEnd = sh.rec.RecordSpan
			sh.tr = obs.NewTracer(eng, tc)
			sh.shaper.SetTracer(sh.tr)
			sh.cc.SetTracer(sh.tr)
		}
	}
	sh.doneFn = sh.opDone
	eng.Run() // settle core firmware into its idle loop
	sh.base = eng.Now()
	sh.publishSnap()
	go sh.loop()
	return sh
}

// shardFault is an armed fault-injection event: in the first batch whose
// starting heartbeat is >= when, an engine event fires offset cycles in.
// stall == 0 is a permanent crash (the shard's service dies: its shaper
// fails everything, its heartbeat freezes); stall > 0 freezes the
// shaper's pump for that many cycles and then recovers.
type shardFault struct {
	when   uint64
	offset sim.Time
	stall  sim.Time
}

// loop services the submission ring until it closes. After each batch it
// publishes the counter snapshot, advances the completed sequence (the
// release edge for everything the batch wrote) and pokes the notifier.
func (sh *shard) loop() {
	defer close(sh.done)
	for b := range sh.sub {
		if f := sh.fault.Load(); f != nil && sh.heartbeat >= f.when {
			sh.fault.Store(nil)
			stall := f.stall
			sh.eng.At(sh.eng.Now()+f.offset, func() {
				if stall > 0 {
					sh.rec.Event(sh.eng.Now(), obs.EvStall, "pump frozen by injected stall")
					sh.shaper.PauseUntil(sh.eng.Now() + stall)
					return
				}
				// Record the crash, let Kill fail the queued packets (their
				// span ends land in the ring when tracing is on), then
				// freeze — the postmortem captures both the event and the
				// casualties.
				sh.rec.Event(sh.eng.Now(), obs.EvCrash, ErrShardDown.Error())
				sh.crashed.Store(true)
				sh.shaper.Kill(ErrShardDown)
				sh.rec.Freeze("crash", sh.eng.Now())
			})
		}
		sh.runBatch(b.ops)
		sh.publishSnap()
		sh.completed.Store(b.seq)
		select {
		case sh.notify <- struct{}{}:
		default:
		}
		for i := range b.ops {
			b.ops[i] = nil
		}
		select {
		case sh.freeOps <- b.ops[:0]:
		default:
		}
	}
}

// runBatch pipelines the batch through the device with a bounded in-flight
// window and drains the engine once. Launch order is the front end's
// enqueue order, so the shard's virtual timeline is a pure function of the
// batch sequence.
func (sh *shard) runBatch(ops []*pendingOp) {
	sh.ops, sh.next, sh.inFlight, sh.finished = ops, 0, 0, 0
	sh.batchStart = sh.eng.Now()
	sh.pump()
	sh.eng.Run()
	if sh.finished != len(ops) {
		panic(fmt.Sprintf("cluster: shard %d finished batch with %d/%d ops complete (simulation deadlock)",
			sh.id, sh.finished, len(ops)))
	}
	sh.ops = nil
}

func (sh *shard) pump() {
	for sh.inFlight < sh.window && sh.next < len(sh.ops) {
		op := sh.ops[sh.next]
		sh.next++
		sh.inFlight++
		sh.exec(op)
	}
}

// opDone retires one operation and refills the window (prebuilt as doneFn
// and referenced by every slot's finish callback).
func (sh *shard) opDone() {
	sh.inFlight--
	sh.finished++
	sh.pump()
}

// exec launches one operation on the shard's device — through the
// shard's shaper when the cluster is shaped, so the operation is classed,
// queued under the drain policy and latency-tracked. Relative deadline
// budgets become absolute shard times here.
func (sh *shard) exec(op *pendingOp) {
	switch op.kind {
	case opEncrypt:
		if sh.shaper != nil {
			deadline := sim.Time(0)
			if op.deadline != 0 {
				deadline = sh.eng.Now() + op.deadline
			}
			sh.shaper.EncryptDeadline(op.class, op.ch, op.nonce, op.aad, op.data, deadline, op.finish)
			return
		}
		sh.cc.Encrypt(op.ch, op.nonce, op.aad, op.data, op.finish)
	case opDecrypt:
		if sh.shaper != nil {
			sh.shaper.Decrypt(op.class, op.ch, op.nonce, op.aad, op.data, op.tag, op.finish)
			return
		}
		sh.cc.Decrypt(op.ch, op.nonce, op.aad, op.data, op.tag, op.finish)
	case opHash:
		sh.cc.Hash(op.ch, op.data, op.finish)
	default:
		op.run(sh, op, sh.doneFn)
	}
}

func (sh *shard) publishSnap() {
	if !sh.crashed.Load() {
		sh.heartbeat++
	}
	snap := &shardSnap{
		completions:   sh.cc.Completions,
		authFails:     sh.dev.Stats.AuthFails,
		rejected:      sh.dev.Stats.Rejected,
		queued:        sh.dev.Stats.Queued,
		shed:          sh.dev.Stats.Shed,
		keyExpansions: sh.dev.KeySched.Expansions,
		crossbarBusy:  sh.dev.XBar.BusyCycles,
		cycles:        sh.eng.Now() - sh.base,
		heartbeat:     sh.heartbeat,
		crashed:       sh.crashed.Load(),
	}
	if sh.shaper != nil {
		snap.classes = sh.shaper.AllStats()
	}
	sh.snap.Store(snap)
}

// hashCores counts cores whose reconfigurable region currently holds the
// Whirlpool engine. Only safe after a barrier (the shard must be idle).
func (sh *shard) hashCores() int {
	n := 0
	for _, e := range sh.dev.Engines {
		if e == scheduler.EngineHash {
			n++
		}
	}
	return n
}
