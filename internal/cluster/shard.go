package cluster

import (
	"fmt"
	"sync"

	"mccp/internal/core"
	"mccp/internal/radio"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// shardOp is one unit of work executed on a shard's goroutine. It must
// call done exactly once when the operation's simulation events have all
// been scheduled to completion; the shard uses the done count to window
// in-flight packets and to detect stuck operations.
type shardOp func(sh *shard, done func())

// batch is one dispatch quantum: the front end coalesces queued operations
// per shard and hands each shard its slice in a single send, so the shard
// drains its engine once per batch instead of once per packet.
type batch struct {
	ops []shardOp
	wg  *sync.WaitGroup
}

// shard is one independent MCCP platform: its own discrete-event engine,
// device, radio controllers and reconfiguration controller, driven by a
// dedicated goroutine. Shards never share simulation state, so each
// shard's virtual timeline is exactly as deterministic as a single
// Platform; the only cross-shard communication is the work channel and
// the batch WaitGroup, which give the front end a happens-before edge for
// reading shard state between batches.
type shard struct {
	id  int
	eng *sim.Engine
	dev *core.MCCP
	cc  *radio.CommController
	mc  *radio.MainController
	rc  *reconfig.Controller

	// window bounds the packets kept in flight inside one batch, so a
	// batch larger than the device's capacity pipelines instead of
	// queueing unboundedly — and, with the QoS queue disabled, never
	// oversubscribes the cores (Config.fill caps the default at the core
	// count then, since a same-instant overflow would draw the error
	// flag rather than wait).
	window int
	// base is the virtual time after firmware settle; shard cycle counts
	// are measured from here.
	base sim.Time

	work chan batch
	done chan struct{}
}

// newShard builds and starts one shard. pol must be a fresh policy
// instance — stateful policies cannot be shared across engines.
func newShard(id int, cfg Config, pol scheduler.Policy) *shard {
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{
		Cores:         cfg.CoresPerShard,
		Policy:        pol,
		QueueRequests: cfg.QueueRequests,
		MaxQueue:      cfg.MaxQueue,
	})
	sh := &shard{
		id:     id,
		eng:    eng,
		dev:    dev,
		cc:     radio.NewCommController(dev),
		mc:     radio.NewMainController(dev, cfg.Seed^uint64(id)*0x9E3779B97F4A7C15^0xD1CE),
		rc:     reconfig.NewController(eng, dev),
		window: cfg.ShardWindow,
		work:   make(chan batch),
		done:   make(chan struct{}),
	}
	eng.Run() // settle core firmware into its idle loop
	sh.base = eng.Now()
	go sh.loop()
	return sh
}

// loop services batches until the work channel closes.
func (sh *shard) loop() {
	defer close(sh.done)
	for b := range sh.work {
		sh.runBatch(b.ops)
		b.wg.Done()
	}
}

// runBatch pipelines the batch through the device with a bounded in-flight
// window and drains the engine once. Launch order is the front end's
// enqueue order, so the shard's virtual timeline is a pure function of the
// batch sequence.
func (sh *shard) runBatch(ops []shardOp) {
	next, inFlight, completed := 0, 0, 0
	var pump func()
	pump = func() {
		for inFlight < sh.window && next < len(ops) {
			op := ops[next]
			next++
			inFlight++
			op(sh, func() {
				inFlight--
				completed++
				pump()
			})
		}
	}
	pump()
	sh.eng.Run()
	if completed != len(ops) {
		panic(fmt.Sprintf("cluster: shard %d finished batch with %d/%d ops complete (simulation deadlock)",
			sh.id, completed, len(ops)))
	}
}

// cycles returns the virtual time this shard has consumed since settle.
// Only safe to call from the front end between batches.
func (sh *shard) cycles() sim.Time { return sh.eng.Now() - sh.base }

// hashCores counts cores whose reconfigurable region currently holds the
// Whirlpool engine. Only safe between batches.
func (sh *shard) hashCores() int {
	n := 0
	for _, e := range sh.dev.Engines {
		if e == scheduler.EngineHash {
			n++
		}
	}
	return n
}
