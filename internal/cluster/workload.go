package cluster

import (
	"fmt"

	"mccp/internal/arrivals"
	"mccp/internal/bufpool"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/sim"
	"mccp/internal/trafficgen"
)

// WorkloadConfig parameterizes RunWorkload, the cluster-level analogue of
// trafficgen.RunMixed: a deterministic multi-standard packet mix pushed
// through a sharded cluster with batched dispatch.
type WorkloadConfig struct {
	Shards        int
	CoresPerShard int
	Router        string // routing policy (default hash-by-key)
	Policy        string // per-shard dispatch policy (default first-idle)
	QueueRequests bool
	// MaxQueue bounds each shard's request queue (0 = unbounded); see
	// Config.MaxQueue.
	MaxQueue    int
	Packets     int // total packets (default 96)
	Sessions    int // sessions cycled over the mix (default 4 x Shards)
	Mix         []trafficgen.Standard
	Seed        int64
	BatchWindow int
	// ShardWindow overrides the per-shard in-flight window (see
	// Config.ShardWindow); with QueueRequests off, a window above the
	// core count deliberately drives the device into error-flag rejects.
	ShardWindow int
	// RingDepth sets each shard's submission-ring depth (see
	// Config.RingDepth); it changes wall-clock overlap only.
	RingDepth int
	// PrefetchDepth > 0 moves packet generation onto a producer goroutine
	// that runs that many packets ahead of submission. The generator, its
	// draw order and the submission order are unchanged, so every result
	// — virtual time, digests, metrics — is byte-identical to the
	// synchronous path; only host overlap differs.
	PrefetchDepth int
	// PerShardGen switches to the scale-out sweep generator: every
	// session gets its own deterministically-seeded generator and one
	// producer goroutine per shard generates its sessions' packets in
	// parallel. Contents differ from the shared-generator path (a
	// different but equally deterministic workload), which is what makes
	// generation embarrassingly parallel for million-packet sweeps.
	PerShardGen bool
	// Shape runs a qos.Shaper on every shard (see Config.Shape); Shaper
	// configures it. A pass-through shaper (zero Shaper) leaves every
	// virtual-time result identical and adds per-class attribution.
	Shape  bool
	Shaper qos.Config
}

// WorkloadResult is a run summary.
type WorkloadResult struct {
	Metrics Metrics
	// ShardDigests folds every completed packet's output bytes, per shard
	// in completion order, into an FNV-1a accumulator — byte-for-byte
	// determinism checks compare these across runs.
	ShardDigests []uint64
	// Errors counts failed packets (only possible with QueueRequests off,
	// where saturation draws the paper's error flag, or with a bounded
	// MaxQueue shedding overflow).
	Errors int
	// ClassPackets and ClassBytes break completed traffic down by QoS
	// class (indexed by qos.Class), for mixed-priority workload reports.
	ClassPackets [qos.NumClasses]uint64
	ClassBytes   [qos.NumClasses]uint64
}

// sessionWeight estimates a standard's relative cycle cost per packet from
// the paper's loop bounds (§VII.A): CCM on one core runs ~104 cycles per
// 16-byte block, GCM ~49. The router only needs relative magnitudes.
func sessionWeight(s trafficgen.Standard) int {
	avg := (s.MinBytes + s.MaxBytes) / 2
	perBlock := 49
	if s.Family == cryptocore.FamilyCCM {
		perBlock = 104
		if s.Split {
			perBlock = 55
		}
	}
	return avg / 16 * perBlock
}

// RunWorkload drives a mixed multi-standard workload through a cluster
// and reports aggregated metrics plus per-shard output digests.
func RunWorkload(cfg WorkloadConfig) (WorkloadResult, error) {
	if cfg.Packets <= 0 {
		cfg.Packets = 96
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = trafficgen.DefaultMix
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4 * max(cfg.Shards, 1)
	}
	cl, err := New(Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.CoresPerShard,
		Router:        cfg.Router,
		Policy:        cfg.Policy,
		QueueRequests: cfg.QueueRequests,
		MaxQueue:      cfg.MaxQueue,
		Seed:          uint64(cfg.Seed),
		BatchWindow:   cfg.BatchWindow,
		ShardWindow:   cfg.ShardWindow,
		RingDepth:     cfg.RingDepth,
		Shape:         cfg.Shape,
		Shaper:        cfg.Shaper,
	})
	if err != nil {
		return WorkloadResult{}, err
	}
	defer cl.Close()

	sessions := make([]*Session, cfg.Sessions)
	for i := range sessions {
		std := cfg.Mix[i%len(cfg.Mix)]
		suite := trafficgen.SuiteFor(std)
		sessions[i], err = cl.Open(OpenSpec{Suite: suite, KeyLen: std.KeyLen, Weight: sessionWeight(std)})
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("cluster: opening session %d (%s): %w", i, std.Name, err)
		}
	}

	res := WorkloadResult{ShardDigests: make([]uint64, cl.Shards())}
	for i := range res.ShardDigests {
		res.ShardDigests[i] = 0xcbf29ce484222325 // FNV-64a offset basis
	}
	// submit pushes packet p for its session and folds the result into the
	// per-shard digest, recycling the packet and result buffers once the
	// operation has delivered (allocation-free steady state).
	submit := func(p int, pkt trafficgen.Packet) {
		i := p % cfg.Sessions
		ses := sessions[i]
		class := cfg.Mix[i%len(cfg.Mix)].Class()
		shardID := ses.Shard()
		n := len(pkt.Payload)
		ses.EncryptAsync(pkt.Nonce, pkt.AAD, pkt.Payload, func(out []byte, err error) {
			trafficgen.ReleasePacket(pkt)
			if err != nil {
				res.Errors++
				return
			}
			res.ClassPackets[class]++
			res.ClassBytes[class] += uint64(n)
			d := res.ShardDigests[shardID]
			for _, by := range out {
				d = (d ^ uint64(by)) * 0x100000001b3
			}
			res.ShardDigests[shardID] = d
			bufpool.PutBytes(out)
		})
	}
	switch {
	case cfg.PerShardGen:
		runPerShardGen(cl, cfg, sessions, submit)
	case cfg.PrefetchDepth > 0:
		runPrefetched(cfg, sessions, submit)
	default:
		gen := trafficgen.NewGenerator(cfg.Seed, cfg.Mix)
		for p := 0; p < cfg.Packets; p++ {
			i := p % cfg.Sessions
			pkt := gen.Next(i%len(cfg.Mix), sessions[i].ID())
			submit(p, pkt)
		}
	}
	cl.Flush()
	res.Metrics = cl.Metrics()
	return res, nil
}

// runPrefetched generates the exact shared-generator packet stream on a
// producer goroutine, up to PrefetchDepth packets ahead of submission.
// Draw order, packet bytes and submission order are identical to the
// synchronous loop; the producer only overlaps generation with shard
// simulation in wall time.
func runPrefetched(cfg WorkloadConfig, sessions []*Session, submit func(int, trafficgen.Packet)) {
	ahead := make(chan trafficgen.Packet, cfg.PrefetchDepth)
	go func() {
		gen := trafficgen.NewGenerator(cfg.Seed, cfg.Mix)
		for p := 0; p < cfg.Packets; p++ {
			i := p % cfg.Sessions
			ahead <- gen.Next(i%len(cfg.Mix), sessions[i].ID())
		}
		close(ahead)
	}()
	p := 0
	for pkt := range ahead {
		submit(p, pkt)
		p++
	}
}

// runPerShardGen is the scale-out sweep generator: sessions carry
// independent deterministic generators (seeded from cfg.Seed and the
// session index), grouped by home shard, and one producer goroutine per
// shard generates its sessions' packets in parallel. The single caller
// still submits in global round-robin session order, so results stay a
// pure function of the configuration — two runs are byte-identical — but
// generation cost now scales with the shard count, which is what
// million-packet sweeps need.
func runPerShardGen(cl *Cluster, cfg WorkloadConfig, sessions []*Session, submit func(int, trafficgen.Packet)) {
	perSession := make([]chan trafficgen.Packet, cfg.Sessions)
	counts := make([]int, cfg.Sessions)
	for p := 0; p < cfg.Packets; p++ {
		counts[p%cfg.Sessions]++
	}
	byShard := make([][]int, cl.Shards())
	for i, ses := range sessions {
		perSession[i] = make(chan trafficgen.Packet, 64)
		byShard[ses.Shard()] = append(byShard[ses.Shard()], i)
	}
	for _, local := range byShard {
		if len(local) == 0 {
			continue
		}
		go func(local []int) {
			gens := make([]*trafficgen.Generator, len(local))
			for k, i := range local {
				// Per-session generator: seed split keeps streams distinct
				// and independent of the shard grouping.
				gens[k] = trafficgen.NewGenerator(cfg.Seed+0x9E37*int64(i+1), cfg.Mix)
			}
			// Round-robin over the shard's sessions, matching each
			// session's global submission cadence.
			for round := 0; ; round++ {
				produced := false
				for k, i := range local {
					if round < counts[i] {
						perSession[i] <- gens[k].Next(i%len(cfg.Mix), sessions[i].ID())
						produced = true
					}
				}
				if !produced {
					break
				}
			}
			for _, i := range local {
				close(perSession[i])
			}
		}(local)
	}
	for p := 0; p < cfg.Packets; p++ {
		submit(p, <-perSession[p%cfg.Sessions])
	}
}

// OpenLoopConfig parameterizes RunOpenLoop: the cluster-level open-loop
// arrivals experiment. Every shard gets one session per class profile and
// its own arrival sources, scheduled as events on the shard's engine, so
// offered load is an input per shard — not an outcome of backpressure —
// and per-class verdicts and latency are attributable per shard.
type OpenLoopConfig struct {
	Shards        int
	CoresPerShard int
	Router        string // default least-loaded (spreads one session per class per shard)
	Policy        string // per-shard dispatch policy (the E13 contrast axis)
	// Process selects the arrival process by name (default poisson).
	Process string
	// Drain, Weights, ShaperCapacity, ClassQueueDepth and AgeLimit
	// configure the per-shard shapers. ShaperCapacity defaults to
	// 2 x CoresPerShard; ClassQueueDepth to 32.
	Drain           string
	Weights         qos.Weights
	ShaperCapacity  int
	ClassQueueDepth int
	AgeLimit        sim.Time
	// Offered is the offered load per shard as a fraction of
	// SatMbpsPerShard (1.0 = the saturation knee).
	Offered float64
	// SatMbpsPerShard is the nominal per-shard capacity used to convert
	// Offered into arrival rates (the harness calibrates it).
	SatMbpsPerShard float64
	// Horizon is the measurement window in cycles on every shard's own
	// clock: sources emit arrivals until the window closes.
	Horizon sim.Time
	// Profiles is the class mix (default harness-style all-class mix is
	// supplied by callers; must be non-empty with positive shares).
	Profiles []arrivals.ClassProfile
	Seed     uint64
	// Trace configures per-shard lifecycle tracing for the run; when
	// enabled the result carries the recorded spans and their digest.
	Trace obs.TraceConfig
}

// OpenLoopClass is one class's aggregated open-loop measurement.
type OpenLoopClass struct {
	Class                                             qos.Class
	Submitted, Completed, Shed, Expired, Aged, Misses uint64
	// OfferedMbps and DeliveredMbps are at the modeled clock over the
	// measurement horizon, summed across shards.
	OfferedMbps, DeliveredMbps float64
	// LossFrac is (Submitted-Completed)/Submitted.
	LossFrac float64
	// P50 and P99 are enqueue-to-completion latency percentiles in
	// cycles, merged across every shard's samples.
	P50, P99 sim.Time
	// Samples holds the raw latency samples behind the percentiles
	// (RunWindow only), so callers can merge distributions across
	// windows instead of comparing per-window percentiles.
	Samples []sim.Time
}

// OpenLoopResult is the RunOpenLoop summary.
type OpenLoopResult struct {
	// Classes aggregates per class, highest priority first; PerShard
	// holds each shard's shaper counters in the same order.
	Classes  []OpenLoopClass
	PerShard [][]qos.ClassStats
	// ArrivalDigests fold every arrival's (session, sequence, virtual
	// time) per shard — the determinism witness: same seed, same digests.
	ArrivalDigests []uint64
	// ShardCycles is each shard's virtual time consumed by the run.
	ShardCycles []sim.Time
	// Errors counts verdicts other than success/shed/expired/aged.
	Errors int
	// Spans and TraceDigest carry the lifecycle trace when
	// OpenLoopConfig.Trace was enabled (nil/zero otherwise).
	Spans       []obs.Span
	TraceDigest uint64
}

// openLoopProgram is the per-shard arrival program state, driven entirely
// inside the shard goroutine (one generic operation per shard). The front
// end prepares it deterministically (session list, split RNG streams) and
// reads the results only after the flush barrier.
type openLoopProgram struct {
	sessions []*Session
	profiles []arrivals.ClassProfile
	rngs     []*arrivals.Rand
	// means, when set, pins each source's inter-arrival mean directly
	// (the OpenLoopRunner's fixed global rate split); when nil the mean
	// is derived from the per-shard bits-per-cycle rate.
	means  []float64
	slot   *pendingOp
	digest uint64
	cycles sim.Time
	errors int
}

// RunOpenLoop drives the open-loop class mix through a shaped cluster and
// reports per-class loss/latency, per shard and aggregated. Every random
// draw descends from cfg.Seed through splittable streams, so two runs are
// bit-identical.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if len(cfg.Profiles) == 0 {
		return OpenLoopResult{}, fmt.Errorf("cluster: open-loop run needs class profiles")
	}
	if cfg.Offered <= 0 || cfg.SatMbpsPerShard <= 0 || cfg.Horizon == 0 {
		return OpenLoopResult{}, fmt.Errorf("cluster: open-loop run needs positive Offered, SatMbpsPerShard and Horizon")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.ShaperCapacity <= 0 {
		cores := cfg.CoresPerShard
		if cores <= 0 {
			cores = 4
		}
		cfg.ShaperCapacity = 2 * cores
	}
	if cfg.ClassQueueDepth <= 0 {
		cfg.ClassQueueDepth = 32
	}
	procName := cfg.Process
	if procName == "" {
		procName = arrivals.ProcPoisson
	}
	// Validate user-supplied names here, where an error can be returned:
	// past this point a bad name would surface as a panic on a shard
	// goroutine (process) or inside qos.NewShaper (drain).
	if _, err := arrivals.ByName(procName, 1); err != nil {
		return OpenLoopResult{}, err
	}
	if _, err := qos.DrainByName(cfg.Drain); err != nil {
		return OpenLoopResult{}, err
	}
	router := cfg.Router
	if router == "" {
		router = RouterLeastLoaded
	}
	cl, err := New(Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.CoresPerShard,
		Router:        router,
		Policy:        cfg.Policy,
		QueueRequests: true,
		Seed:          cfg.Seed,
		Shape:         true,
		Shaper: qos.Config{
			Capacity:   cfg.ShaperCapacity,
			QueueDepth: cfg.ClassQueueDepth,
			Drain:      cfg.Drain,
			Weights:    cfg.Weights,
			AgeLimit:   cfg.AgeLimit,
		},
		Trace: cfg.Trace,
	})
	if err != nil {
		return OpenLoopResult{}, err
	}
	defer cl.Close()

	// One session per class per shard, opened class-major so the
	// least-loaded router spreads each wave evenly (weight 1 across the
	// board keeps the tie-breaks session-count based).
	bitsPerCycle := cfg.Offered * cfg.SatMbpsPerShard * 1e6 / sim.DefaultFreqHz
	programs := make([]*openLoopProgram, cl.Shards())
	for i := range programs {
		programs[i] = &openLoopProgram{digest: arrivals.DigestInit}
	}
	root := arrivals.NewRand(cfg.Seed ^ 0xA881F5)
	seen := map[qos.Class]bool{}
	for _, prof := range cfg.Profiles {
		if prof.Share <= 0 || prof.Bytes <= 0 {
			return OpenLoopResult{}, fmt.Errorf("cluster: profile %v needs positive share and size", prof.Class)
		}
		// One profile per class: the rate split and the per-class Mbps
		// aggregation both key on the class, so duplicates would silently
		// halve rates and misattribute byte counts.
		if seen[prof.Class] {
			return OpenLoopResult{}, fmt.Errorf("cluster: duplicate %v profile in open-loop mix", prof.Class)
		}
		seen[prof.Class] = true
		for s := 0; s < cl.Shards(); s++ {
			suite := core.Suite{Family: prof.Family, TagLen: prof.TagLen, Priority: prof.Class.Priority()}
			ses, err := cl.Open(OpenSpec{Suite: suite, KeyLen: prof.KeyLen})
			if err != nil {
				return OpenLoopResult{}, fmt.Errorf("cluster: opening %v session for shard wave %d: %w", prof.Class, s, err)
			}
			p := programs[ses.Shard()]
			p.sessions = append(p.sessions, ses)
			p.profiles = append(p.profiles, prof)
			p.rngs = append(p.rngs, root.Split())
		}
	}

	res := OpenLoopResult{
		PerShard:       make([][]qos.ClassStats, cl.Shards()),
		ArrivalDigests: make([]uint64, cl.Shards()),
		ShardCycles:    make([]sim.Time, cl.Shards()),
	}
	for shardID, p := range programs {
		if len(p.sessions) == 0 {
			continue
		}
		p := p
		slot := cl.getSlot()
		slot.kind = opGeneric
		slot.retain = true
		slot.shard = shardID
		slot.nbytes = 0
		slot.cb = nil
		slot.run = func(sh *shard, op *pendingOp, done func()) {
			runOpenLoopShard(sh, p, procName, bitsPerCycle, cfg.Horizon, done)
		}
		// The retained slot is released after the flush below.
		p.slot = slot
		cl.enqueue(slot, false)
	}
	cl.Flush()
	for shardID, p := range programs {
		if p.slot != nil {
			cl.putSlot(p.slot)
		}
		res.ArrivalDigests[shardID] = p.digest
		res.ShardCycles[shardID] = p.cycles
		res.Errors += p.errors
	}

	// Aggregate per-class counters and merged latency percentiles. Rates
	// are over the per-shard measurement window, summed across shards.
	byClass := map[qos.Class]arrivals.ClassProfile{}
	for _, prof := range cfg.Profiles {
		byClass[prof.Class] = prof
	}
	toMbps := func(bytes uint64) float64 {
		return float64(bytes*8) / float64(cfg.Horizon) * sim.DefaultFreqHz / 1e6
	}
	for _, class := range qos.Classes() {
		prof, have := byClass[class]
		acc := qos.ClassStats{Class: class}
		var samples []sim.Time
		for _, sh := range cl.shards {
			acc.Accumulate(sh.shaper.Stats(class))
			samples = sh.shaper.AppendLatencySamples(class, samples)
		}
		agg := OpenLoopClass{
			Class:     class,
			Submitted: acc.Submitted,
			Completed: acc.Completed,
			Shed:      acc.Shed,
			Expired:   acc.Expired,
			Aged:      acc.Aged,
			Misses:    acc.DeadlineMisses,
		}
		if !have && agg.Submitted == 0 {
			continue
		}
		agg.P50 = qos.PercentileOf(samples, 50)
		agg.P99 = qos.PercentileOf(samples, 99)
		if agg.Submitted > 0 {
			agg.LossFrac = float64(agg.Submitted-agg.Completed) / float64(agg.Submitted)
		}
		agg.OfferedMbps = toMbps(agg.Submitted * uint64(prof.Bytes))
		agg.DeliveredMbps = toMbps(agg.Completed * uint64(prof.Bytes))
		res.Classes = append(res.Classes, agg)
	}
	for s := range cl.shards {
		res.PerShard[s] = cl.shards[s].shaper.AllStats()
	}
	if cfg.Trace.Enabled {
		res.Spans = cl.TraceSpans()
		res.TraceDigest = cl.TraceDigest()
	}
	return res, nil
}

// runOpenLoopShard is the arrival program body, running on the shard
// goroutine: it creates one open-loop source per local session, lets them
// emit into the shard's shaper until the horizon closes, and calls done
// once every source has stopped and every submitted packet has a verdict.
func runOpenLoopShard(sh *shard, p *openLoopProgram, procName string, bitsPerCycle float64, horizon sim.Time, done func()) {
	start := sh.eng.Now()
	until := start + horizon
	outstanding := 0
	stopped := 0
	finished := false
	check := func() {
		if !finished && stopped == len(p.sessions) && outstanding == 0 {
			finished = true
			p.cycles = sh.eng.Now() - start
			done()
		}
	}
	// The class's per-shard rate splits evenly across its local sessions
	// (normally exactly one per class per shard under the least-loaded
	// router, but any router-driven grouping keeps the offered rate).
	var perClass [qos.NumClasses]int
	for _, prof := range p.profiles {
		perClass[prof.Class]++
	}
	for i := range p.sessions {
		ses := p.sessions[i]
		prof := p.profiles[i]
		var mean float64
		if p.means != nil {
			mean = p.means[i]
		} else {
			mean = prof.MeanGap(bitsPerCycle) * float64(perClass[prof.Class])
		}
		mk, err := arrivals.ByName(procName, mean)
		if err != nil {
			panic(err) // validated by RunOpenLoop before dispatch
		}
		em := arrivals.NewEmitter(sh.eng, prof, uint64(i), &p.digest,
			func(class qos.Class, nonce, payload []byte, deadline sim.Time) {
				outstanding++
				sh.shaper.EncryptDeadline(class, ses.chID, nonce, nil, payload, deadline,
					func(_ []byte, err error) {
						outstanding--
						if !arrivals.ExpectedVerdict(err) {
							p.errors++
						}
						check()
					})
			})
		src := arrivals.NewSource(sh.eng, mk(), p.rngs[i], em.Emit)
		src.Done = func() {
			stopped++
			check()
		}
		src.Start(-1, until)
	}
	check() // a shard with zero sessions (or all-stopped sources) still completes
}

// ScalingRow is one line of a shard-count sweep.
type ScalingRow struct {
	Shards           int
	AggregateSimMbps float64
	ClusterCycles    uint64
	HostMbps         float64
	// Speedup is AggregateSimMbps relative to the sweep's first row.
	Speedup float64
}

// RunScaling sweeps shard counts over the same total workload and reports
// the aggregate-throughput scaling (the sharding head-room measurement:
// same packets, same mix, same seed — only the shard count varies).
func RunScaling(shardCounts []int, cfg WorkloadConfig) ([]ScalingRow, error) {
	if cfg.Sessions <= 0 {
		// Pin the session count across the sweep — otherwise each row
		// would run a different workload and the speedup would be
		// meaningless.
		maxN := 1
		for _, n := range shardCounts {
			maxN = max(maxN, n)
		}
		cfg.Sessions = 4 * maxN
	}
	var rows []ScalingRow
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		res, err := RunWorkload(c)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{
			Shards:           n,
			AggregateSimMbps: res.Metrics.AggregateSimMbps,
			ClusterCycles:    uint64(res.Metrics.ClusterCycles),
			HostMbps:         res.Metrics.HostMbps,
			Speedup:          1,
		}
		if len(rows) > 0 && rows[0].AggregateSimMbps > 0 {
			row.Speedup = row.AggregateSimMbps / rows[0].AggregateSimMbps
		}
		rows = append(rows, row)
	}
	return rows, nil
}
