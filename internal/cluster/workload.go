package cluster

import (
	"fmt"

	"mccp/internal/bufpool"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/trafficgen"
)

// WorkloadConfig parameterizes RunWorkload, the cluster-level analogue of
// trafficgen.RunMixed: a deterministic multi-standard packet mix pushed
// through a sharded cluster with batched dispatch.
type WorkloadConfig struct {
	Shards        int
	CoresPerShard int
	Router        string // routing policy (default hash-by-key)
	Policy        string // per-shard dispatch policy (default first-idle)
	QueueRequests bool
	// MaxQueue bounds each shard's request queue (0 = unbounded); see
	// Config.MaxQueue.
	MaxQueue    int
	Packets     int // total packets (default 96)
	Sessions    int // sessions cycled over the mix (default 4 x Shards)
	Mix         []trafficgen.Standard
	Seed        int64
	BatchWindow int
	// ShardWindow overrides the per-shard in-flight window (see
	// Config.ShardWindow); with QueueRequests off, a window above the
	// core count deliberately drives the device into error-flag rejects.
	ShardWindow int
	// RingDepth sets each shard's submission-ring depth (see
	// Config.RingDepth); it changes wall-clock overlap only.
	RingDepth int
	// PrefetchDepth > 0 moves packet generation onto a producer goroutine
	// that runs that many packets ahead of submission. The generator, its
	// draw order and the submission order are unchanged, so every result
	// — virtual time, digests, metrics — is byte-identical to the
	// synchronous path; only host overlap differs.
	PrefetchDepth int
	// PerShardGen switches to the scale-out sweep generator: every
	// session gets its own deterministically-seeded generator and one
	// producer goroutine per shard generates its sessions' packets in
	// parallel. Contents differ from the shared-generator path (a
	// different but equally deterministic workload), which is what makes
	// generation embarrassingly parallel for million-packet sweeps.
	PerShardGen bool
}

// WorkloadResult is a run summary.
type WorkloadResult struct {
	Metrics Metrics
	// ShardDigests folds every completed packet's output bytes, per shard
	// in completion order, into an FNV-1a accumulator — byte-for-byte
	// determinism checks compare these across runs.
	ShardDigests []uint64
	// Errors counts failed packets (only possible with QueueRequests off,
	// where saturation draws the paper's error flag, or with a bounded
	// MaxQueue shedding overflow).
	Errors int
	// ClassPackets and ClassBytes break completed traffic down by QoS
	// class (indexed by qos.Class), for mixed-priority workload reports.
	ClassPackets [qos.NumClasses]uint64
	ClassBytes   [qos.NumClasses]uint64
}

// sessionWeight estimates a standard's relative cycle cost per packet from
// the paper's loop bounds (§VII.A): CCM on one core runs ~104 cycles per
// 16-byte block, GCM ~49. The router only needs relative magnitudes.
func sessionWeight(s trafficgen.Standard) int {
	avg := (s.MinBytes + s.MaxBytes) / 2
	perBlock := 49
	if s.Family == cryptocore.FamilyCCM {
		perBlock = 104
		if s.Split {
			perBlock = 55
		}
	}
	return avg / 16 * perBlock
}

// RunWorkload drives a mixed multi-standard workload through a cluster
// and reports aggregated metrics plus per-shard output digests.
func RunWorkload(cfg WorkloadConfig) (WorkloadResult, error) {
	if cfg.Packets <= 0 {
		cfg.Packets = 96
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = trafficgen.DefaultMix
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4 * max(cfg.Shards, 1)
	}
	cl, err := New(Config{
		Shards:        cfg.Shards,
		CoresPerShard: cfg.CoresPerShard,
		Router:        cfg.Router,
		Policy:        cfg.Policy,
		QueueRequests: cfg.QueueRequests,
		MaxQueue:      cfg.MaxQueue,
		Seed:          uint64(cfg.Seed),
		BatchWindow:   cfg.BatchWindow,
		ShardWindow:   cfg.ShardWindow,
		RingDepth:     cfg.RingDepth,
	})
	if err != nil {
		return WorkloadResult{}, err
	}
	defer cl.Close()

	sessions := make([]*Session, cfg.Sessions)
	for i := range sessions {
		std := cfg.Mix[i%len(cfg.Mix)]
		suite := trafficgen.SuiteFor(std)
		sessions[i], err = cl.Open(OpenSpec{Suite: suite, KeyLen: std.KeyLen, Weight: sessionWeight(std)})
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("cluster: opening session %d (%s): %w", i, std.Name, err)
		}
	}

	res := WorkloadResult{ShardDigests: make([]uint64, cl.Shards())}
	for i := range res.ShardDigests {
		res.ShardDigests[i] = 0xcbf29ce484222325 // FNV-64a offset basis
	}
	// submit pushes packet p for its session and folds the result into the
	// per-shard digest, recycling the packet and result buffers once the
	// operation has delivered (allocation-free steady state).
	submit := func(p int, pkt trafficgen.Packet) {
		i := p % cfg.Sessions
		ses := sessions[i]
		class := cfg.Mix[i%len(cfg.Mix)].Class()
		shardID := ses.Shard()
		n := len(pkt.Payload)
		ses.EncryptAsync(pkt.Nonce, pkt.AAD, pkt.Payload, func(out []byte, err error) {
			trafficgen.ReleasePacket(pkt)
			if err != nil {
				res.Errors++
				return
			}
			res.ClassPackets[class]++
			res.ClassBytes[class] += uint64(n)
			d := res.ShardDigests[shardID]
			for _, by := range out {
				d = (d ^ uint64(by)) * 0x100000001b3
			}
			res.ShardDigests[shardID] = d
			bufpool.PutBytes(out)
		})
	}
	switch {
	case cfg.PerShardGen:
		runPerShardGen(cl, cfg, sessions, submit)
	case cfg.PrefetchDepth > 0:
		runPrefetched(cfg, sessions, submit)
	default:
		gen := trafficgen.NewGenerator(cfg.Seed, cfg.Mix)
		for p := 0; p < cfg.Packets; p++ {
			i := p % cfg.Sessions
			pkt := gen.Next(i%len(cfg.Mix), sessions[i].ID())
			submit(p, pkt)
		}
	}
	cl.Flush()
	res.Metrics = cl.Metrics()
	return res, nil
}

// runPrefetched generates the exact shared-generator packet stream on a
// producer goroutine, up to PrefetchDepth packets ahead of submission.
// Draw order, packet bytes and submission order are identical to the
// synchronous loop; the producer only overlaps generation with shard
// simulation in wall time.
func runPrefetched(cfg WorkloadConfig, sessions []*Session, submit func(int, trafficgen.Packet)) {
	ahead := make(chan trafficgen.Packet, cfg.PrefetchDepth)
	go func() {
		gen := trafficgen.NewGenerator(cfg.Seed, cfg.Mix)
		for p := 0; p < cfg.Packets; p++ {
			i := p % cfg.Sessions
			ahead <- gen.Next(i%len(cfg.Mix), sessions[i].ID())
		}
		close(ahead)
	}()
	p := 0
	for pkt := range ahead {
		submit(p, pkt)
		p++
	}
}

// runPerShardGen is the scale-out sweep generator: sessions carry
// independent deterministic generators (seeded from cfg.Seed and the
// session index), grouped by home shard, and one producer goroutine per
// shard generates its sessions' packets in parallel. The single caller
// still submits in global round-robin session order, so results stay a
// pure function of the configuration — two runs are byte-identical — but
// generation cost now scales with the shard count, which is what
// million-packet sweeps need.
func runPerShardGen(cl *Cluster, cfg WorkloadConfig, sessions []*Session, submit func(int, trafficgen.Packet)) {
	perSession := make([]chan trafficgen.Packet, cfg.Sessions)
	counts := make([]int, cfg.Sessions)
	for p := 0; p < cfg.Packets; p++ {
		counts[p%cfg.Sessions]++
	}
	byShard := make([][]int, cl.Shards())
	for i, ses := range sessions {
		perSession[i] = make(chan trafficgen.Packet, 64)
		byShard[ses.Shard()] = append(byShard[ses.Shard()], i)
	}
	for _, local := range byShard {
		if len(local) == 0 {
			continue
		}
		go func(local []int) {
			gens := make([]*trafficgen.Generator, len(local))
			for k, i := range local {
				// Per-session generator: seed split keeps streams distinct
				// and independent of the shard grouping.
				gens[k] = trafficgen.NewGenerator(cfg.Seed+0x9E37*int64(i+1), cfg.Mix)
			}
			// Round-robin over the shard's sessions, matching each
			// session's global submission cadence.
			for round := 0; ; round++ {
				produced := false
				for k, i := range local {
					if round < counts[i] {
						perSession[i] <- gens[k].Next(i%len(cfg.Mix), sessions[i].ID())
						produced = true
					}
				}
				if !produced {
					break
				}
			}
			for _, i := range local {
				close(perSession[i])
			}
		}(local)
	}
	for p := 0; p < cfg.Packets; p++ {
		submit(p, <-perSession[p%cfg.Sessions])
	}
}

// ScalingRow is one line of a shard-count sweep.
type ScalingRow struct {
	Shards           int
	AggregateSimMbps float64
	ClusterCycles    uint64
	HostMbps         float64
	// Speedup is AggregateSimMbps relative to the sweep's first row.
	Speedup float64
}

// RunScaling sweeps shard counts over the same total workload and reports
// the aggregate-throughput scaling (the sharding head-room measurement:
// same packets, same mix, same seed — only the shard count varies).
func RunScaling(shardCounts []int, cfg WorkloadConfig) ([]ScalingRow, error) {
	if cfg.Sessions <= 0 {
		// Pin the session count across the sweep — otherwise each row
		// would run a different workload and the speedup would be
		// meaningless.
		maxN := 1
		for _, n := range shardCounts {
			maxN = max(maxN, n)
		}
		cfg.Sessions = 4 * maxN
	}
	var rows []ScalingRow
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		res, err := RunWorkload(c)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{
			Shards:           n,
			AggregateSimMbps: res.Metrics.AggregateSimMbps,
			ClusterCycles:    uint64(res.Metrics.ClusterCycles),
			HostMbps:         res.Metrics.HostMbps,
			Speedup:          1,
		}
		if len(rows) > 0 && rows[0].AggregateSimMbps > 0 {
			row.Speedup = row.AggregateSimMbps / rows[0].AggregateSimMbps
		}
		rows = append(rows, row)
	}
	return rows, nil
}
