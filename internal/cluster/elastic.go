package cluster

import (
	"fmt"

	"mccp/internal/arrivals"
	"mccp/internal/core"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
)

// This file is the cluster's elastic control surface: the active-shard
// mask the fleet controller drains and re-admits shards through, the
// split Begin/Wait reconfiguration API that lets a bitstream swap run
// concurrently (in virtual time) with a measurement window on the other
// shards, and the OpenLoopRunner — a persistent open-loop arrival driver
// that survives across windows so E15 can measure traffic *during* a
// rolling swap instead of around it.

// SetShardActive marks a shard eligible (active) or ineligible (drained)
// for session placement. An inactive shard is hidden from the routers —
// Open and Rebalance stop placing sessions there — but keeps serving the
// sessions it still holds, so deactivation is always safe: call
// Rebalance afterwards to migrate its sessions voice-first onto the
// remaining shards. The last active shard cannot be deactivated.
func (c *Cluster) SetShardActive(id int, active bool) error {
	if id < 0 || id >= c.cfg.Shards {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	if active && c.quarantined[id] {
		// A quarantined shard is a corpse until the recovery plane clears
		// the flag: Restart rebuilds a crashed shard (the flag drops after
		// the bitstream reload), Unquarantine lifts a premature quarantine
		// on a shard that merely stalled. Until one of those has run,
		// re-admitting it would route live sessions into a black hole. A
		// restarted shard is no longer quarantined and re-activates
		// normally — Fleet.Scale sees it back in the healthy pool.
		return fmt.Errorf("cluster: shard %d is quarantined: Restart a crashed shard or Unquarantine a recovered one before re-admitting it", id)
	}
	if !active {
		rest := 0
		for i, off := range c.inactive {
			if !off && i != id {
				rest++
			}
		}
		if rest == 0 {
			return fmt.Errorf("cluster: cannot deactivate shard %d: it is the last active shard", id)
		}
	}
	c.inactive[id] = !active
	// Mirror into the shard's atomic so Snapshot (any goroutine) can
	// report the serving set without reading front-end state.
	c.shards[id].drained.Store(!active)
	return nil
}

// ShardActive reports whether a shard is eligible for session placement.
func (c *Cluster) ShardActive(id int) bool {
	return id >= 0 && id < c.cfg.Shards && !c.inactive[id]
}

// ActiveShards counts the shards currently eligible for placement.
func (c *Cluster) ActiveShards() int {
	n := 0
	for _, off := range c.inactive {
		if !off {
			n++
		}
	}
	return n
}

// ReconfigOp is an in-flight partial reconfiguration started by
// BeginReconfigure. Wait blocks until the swap's outcome is known.
type ReconfigOp struct {
	c       *Cluster
	slot    *pendingOp
	shardID int
	done    bool
	took    sim.Time
	err     error
}

// BeginReconfigure starts rewriting one core's reconfigurable region on
// one shard (streaming the partial bitstream from src) without waiting
// for it to finish: the swap is enqueued on the shard's timeline and runs
// in the same batch as whatever traffic is dispatched next, so the
// reconfiguration window genuinely overlaps served load. Unlike
// Reconfigure it does not rebalance — the fleet controller owns the
// drain/re-admit sequencing around the swap. Call Wait to collect the
// swap's virtual duration.
func (c *Cluster) BeginReconfigure(shardID, coreID int, target reconfig.Engine, src reconfig.Source) (*ReconfigOp, error) {
	if shardID < 0 || shardID >= c.cfg.Shards {
		return nil, fmt.Errorf("cluster: no shard %d", shardID)
	}
	c.Flush()
	if err := c.checkReconfigLeavesHomes(shardID, coreID, target); err != nil {
		return nil, err
	}
	slot := c.getSlot()
	slot.kind = opGeneric
	slot.retain = true
	slot.shard = shardID
	slot.nbytes = 0
	slot.cb = nil
	slot.run = func(sh *shard, op *pendingOp, done func()) {
		sh.rc.Reconfigure(coreID, target, src, func(took sim.Time, err error) {
			op.took, op.err = took, err
			done()
		})
	}
	c.enqueue(slot, false)
	return &ReconfigOp{c: c, slot: slot, shardID: shardID}, nil
}

// Wait flushes until the swap has completed, releases its slot and
// returns the swap's virtual duration. On success the cluster's routing
// view of the shard's hash cores is refreshed (the caller still decides
// when to Rebalance). Wait is idempotent.
func (op *ReconfigOp) Wait() (sim.Time, error) {
	if !op.done {
		op.c.Flush()
		op.took, op.err = op.slot.took, op.slot.err
		op.c.putSlot(op.slot)
		op.slot = nil
		op.done = true
		if op.err == nil {
			op.c.hashCores[op.shardID] = op.c.shards[op.shardID].hashCores()
		}
	}
	return op.took, op.err
}

// OpenLoopRunnerConfig configures a persistent open-loop arrival driver.
type OpenLoopRunnerConfig struct {
	// Process is the arrival process name (arrivals.ByName); default
	// poisson.
	Process string
	// Profiles is the traffic mix (one profile per class).
	Profiles []arrivals.ClassProfile
	// OfferedMbps is the cluster-total offered load at the modeled clock.
	// Unlike RunOpenLoop's per-shard normalization, the runner splits a
	// fixed cluster-wide rate across its sources, so the total offered
	// load stays constant while sessions re-home between windows — the
	// point of the elastic experiments: fewer serving shards means more
	// offered load per shard, not less total load.
	OfferedMbps float64
	// SourcesPerClass is the number of independent arrival sources per
	// class (default: the cluster's shard count). Each source is one
	// session, placed by the cluster's router.
	SourcesPerClass int
	// Seed derives every source's splittable PRNG stream.
	Seed uint64
}

// runnerSource is one persistent arrival source: a session, its fixed
// share of the offered rate, and its private PRNG stream that advances
// across windows.
type runnerSource struct {
	ses  *Session
	prof arrivals.ClassProfile
	rng  *arrivals.Rand
	mean float64
}

// OpenLoopRunner drives an open-loop arrival stream against a shaped
// cluster in measurement windows. It differs from RunOpenLoop in three
// load-bearing ways: it runs against a caller-owned cluster (so the
// fleet controller can drain, swap and rebalance between windows), its
// sessions and PRNG streams persist across windows (so the arrival
// sequence is one deterministic stream, not a fresh workload per
// window), and each window reports per-class deltas rather than
// cumulative counters. All virtual-time results are deterministic for a
// given config and window sequence.
type OpenLoopRunner struct {
	cl          *Cluster
	procName    string
	offered     float64
	sources     []runnerSource
	byClass     map[qos.Class]arrivals.ClassProfile
	prevStats   [][qos.NumClasses]qos.ClassStats
	prevSamples [][qos.NumClasses]int
}

// OpenLoopWindow is one measurement window's delta report.
type OpenLoopWindow struct {
	// Horizon is the window length in cycles.
	Horizon sim.Time
	// Classes holds per-class counters for arrivals submitted in this
	// window (every one resolved — windows close with drained queues),
	// highest priority first.
	Classes []OpenLoopClass
	// ArrivalDigests is the per-shard FNV-64a fold of this window's
	// arrival stream; Digest folds them in shard order.
	ArrivalDigests []uint64
	Digest         uint64
	// Errors counts completions with unexpected verdicts.
	Errors int
}

// DeliveredMbps sums the window's delivered per-class throughput.
func (w OpenLoopWindow) DeliveredMbps() float64 {
	total := 0.0
	for _, c := range w.Classes {
		total += c.DeliveredMbps
	}
	return total
}

// NewOpenLoopRunner opens the runner's sessions (class-major, placed by
// the cluster's router) and prepares its per-source PRNG streams. The
// cluster must run per-shard shapers (Config.Shape) with request
// queueing; the caller keeps ownership and must not close the cluster
// while the runner is in use.
func NewOpenLoopRunner(cl *Cluster, cfg OpenLoopRunnerConfig) (*OpenLoopRunner, error) {
	if !cl.Shaped() {
		return nil, fmt.Errorf("cluster: open-loop runner needs a shaped cluster (Config.Shape)")
	}
	if cfg.OfferedMbps <= 0 {
		return nil, fmt.Errorf("cluster: open-loop runner needs a positive offered load")
	}
	procName := cfg.Process
	if procName == "" {
		procName = arrivals.ProcPoisson
	}
	if _, err := arrivals.ByName(procName, 1); err != nil {
		return nil, err
	}
	perClass := cfg.SourcesPerClass
	if perClass <= 0 {
		perClass = cl.Shards()
	}
	r := &OpenLoopRunner{
		cl:          cl,
		procName:    procName,
		offered:     cfg.OfferedMbps,
		byClass:     map[qos.Class]arrivals.ClassProfile{},
		prevStats:   make([][qos.NumClasses]qos.ClassStats, cl.Shards()),
		prevSamples: make([][qos.NumClasses]int, cl.Shards()),
	}
	bitsPerCycle := cfg.OfferedMbps * 1e6 / sim.DefaultFreqHz
	root := arrivals.NewRand(cfg.Seed ^ 0x0E15C3)
	for _, prof := range cfg.Profiles {
		if prof.Share <= 0 || prof.Bytes <= 0 {
			return nil, fmt.Errorf("cluster: profile %v needs positive share and size", prof.Class)
		}
		if _, dup := r.byClass[prof.Class]; dup {
			return nil, fmt.Errorf("cluster: duplicate %v profile in open-loop mix", prof.Class)
		}
		r.byClass[prof.Class] = prof
		for s := 0; s < perClass; s++ {
			suite := core.Suite{Family: prof.Family, TagLen: prof.TagLen, Priority: prof.Class.Priority()}
			ses, err := cl.Open(OpenSpec{Suite: suite, KeyLen: prof.KeyLen})
			if err != nil {
				return nil, fmt.Errorf("cluster: opening %v runner session %d: %w", prof.Class, s, err)
			}
			r.sources = append(r.sources, runnerSource{
				ses:  ses,
				prof: prof,
				rng:  root.Split(),
				// The class rate splits evenly across the class's sources
				// and stays fixed no matter where the router homes them.
				mean: prof.MeanGap(bitsPerCycle) * float64(perClass),
			})
		}
	}
	if len(r.sources) == 0 {
		return nil, fmt.Errorf("cluster: open-loop runner needs at least one profile")
	}
	r.snapshot()
	return r, nil
}

// snapshot records the current per-shard shaper counters and latency
// sample counts, the baseline the next window's deltas subtract.
func (r *OpenLoopRunner) snapshot() {
	for s, sh := range r.cl.shards {
		for _, class := range qos.Classes() {
			r.prevStats[s][class] = sh.shaper.Stats(class)
			r.prevSamples[s][class] = len(sh.shaper.AppendLatencySamples(class, nil))
		}
	}
}

// statsDelta subtracts the monotone counters of prev from cur. Queue
// gauges keep the current value; the per-shaper interval fields are
// zeroed (shard timelines are independent).
func statsDelta(cur, prev qos.ClassStats) qos.ClassStats {
	d := cur
	d.Submitted -= prev.Submitted
	d.Completed -= prev.Completed
	d.Shed -= prev.Shed
	d.Rejected -= prev.Rejected
	d.Failed -= prev.Failed
	d.Expired -= prev.Expired
	d.Aged -= prev.Aged
	d.Bytes -= prev.Bytes
	d.DeadlineMisses -= prev.DeadlineMisses
	d.FirstDispatch = 0
	d.LastCompletion = 0
	return d
}

// RunWindow drives every source for horizon cycles on its session's
// current shard and returns that window's per-class deltas. The window
// is closed: every arrival submitted inside it has a verdict before
// RunWindow returns, so counters never bleed across windows. Sessions
// keep their PRNG streams, so consecutive windows continue one
// deterministic arrival sequence.
func (r *OpenLoopRunner) RunWindow(horizon sim.Time) (OpenLoopWindow, error) {
	if horizon == 0 {
		return OpenLoopWindow{}, fmt.Errorf("cluster: open-loop window needs a positive horizon")
	}
	// Group sources by their session's current home. Source order is
	// fixed (class-major open order), so the grouping — and with it the
	// per-shard emitter indices and digests — is deterministic for a
	// given rebalance history.
	r.cl.Flush()
	programs := make([]*openLoopProgram, r.cl.Shards())
	for i := range programs {
		programs[i] = &openLoopProgram{digest: arrivals.DigestInit}
	}
	for _, src := range r.sources {
		p := programs[src.ses.Shard()]
		p.sessions = append(p.sessions, src.ses)
		p.profiles = append(p.profiles, src.prof)
		p.rngs = append(p.rngs, src.rng)
		p.means = append(p.means, src.mean)
	}
	for shardID, p := range programs {
		if len(p.sessions) == 0 {
			continue
		}
		p := p
		slot := r.cl.getSlot()
		slot.kind = opGeneric
		slot.retain = true
		slot.shard = shardID
		slot.nbytes = 0
		slot.cb = nil
		slot.run = func(sh *shard, op *pendingOp, done func()) {
			runOpenLoopShard(sh, p, r.procName, 0, horizon, done)
		}
		p.slot = slot
		r.cl.enqueue(slot, false)
	}
	r.cl.Flush()
	w := OpenLoopWindow{
		Horizon:        horizon,
		ArrivalDigests: make([]uint64, r.cl.Shards()),
		Digest:         arrivals.DigestInit,
	}
	for shardID, p := range programs {
		if p.slot != nil {
			r.cl.putSlot(p.slot)
		}
		w.ArrivalDigests[shardID] = p.digest
		w.Digest = (w.Digest ^ p.digest) * 0x100000001b3
		w.Errors += p.errors
	}

	toMbps := func(bytes uint64) float64 {
		return float64(bytes*8) / float64(horizon) * sim.DefaultFreqHz / 1e6
	}
	for _, class := range qos.Classes() {
		prof, have := r.byClass[class]
		acc := qos.ClassStats{Class: class}
		var samples []sim.Time
		for s, sh := range r.cl.shards {
			cur := sh.shaper.Stats(class)
			acc.Accumulate(statsDelta(cur, r.prevStats[s][class]))
			all := sh.shaper.AppendLatencySamples(class, nil)
			samples = append(samples, all[r.prevSamples[s][class]:]...)
		}
		agg := OpenLoopClass{
			Class:     class,
			Submitted: acc.Submitted,
			Completed: acc.Completed,
			Shed:      acc.Shed,
			Expired:   acc.Expired,
			Aged:      acc.Aged,
			Misses:    acc.DeadlineMisses,
			Samples:   samples,
		}
		if !have && agg.Submitted == 0 {
			continue
		}
		agg.P50 = qos.PercentileOf(samples, 50)
		agg.P99 = qos.PercentileOf(samples, 99)
		if agg.Submitted > 0 {
			agg.LossFrac = float64(agg.Submitted-agg.Completed) / float64(agg.Submitted)
		}
		agg.OfferedMbps = toMbps(agg.Submitted * uint64(prof.Bytes))
		agg.DeliveredMbps = toMbps(agg.Completed * uint64(prof.Bytes))
		w.Classes = append(w.Classes, agg)
	}
	r.snapshot()
	return w, nil
}

// Sources returns the number of persistent arrival sources.
func (r *OpenLoopRunner) Sources() int { return len(r.sources) }

// Resnapshot re-bases the runner's per-shard counter baselines on the
// current shaper state. Call it after Restart swaps a rebuilt shard into
// the cluster: the fresh shard's shaper counters start at zero, so the
// next window's deltas against the old incarnation's baseline would go
// negative.
func (r *OpenLoopRunner) Resnapshot() { r.snapshot() }

// Close closes the runner's sessions (the cluster stays usable).
func (r *OpenLoopRunner) Close() {
	for _, src := range r.sources {
		src.ses.Close()
	}
	r.sources = nil
}
