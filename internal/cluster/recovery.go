package cluster

import (
	"fmt"
	"sort"

	"mccp/internal/firmware"
	"mccp/internal/obs"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// This file is the cluster's recovery plane — the half of the fault loop
// faults.go leaves open. A crash ends in quarantine: the corpse is out of
// routing, its sessions re-homed, and the fleet serves degraded. Recovery
// closes the loop three ways:
//
//   - Restart rebuilds a quarantined shard from scratch — a fresh device,
//     engine and firmware — and streams the base bitstream back into every
//     reconfigurable region at one of the paper's Table IV source speeds,
//     then rejoins the shard to the healthy pool. This is the paper's
//     partial-reconfiguration story applied to fault recovery: a crypto
//     core is a bitstream, so a dead one can be reloaded.
//   - Unquarantine lifts a quarantine that turned out to be premature (a
//     stall the detector or an operator mistook for a crash): the shard
//     never died, its heartbeat resumed, and it only needs re-admitting.
//   - RebalanceInto shifts load back onto one just-rejoined shard,
//     voice-first, without disturbing placements that would not land there.

// RestartReport summarizes one shard restart.
type RestartReport struct {
	// Shard is the rebuilt shard; Took the virtual time its configuration
	// controller spent streaming the base bitstream into every core region
	// (plus the per-core 1024-word firmware image rewrite) at the chosen
	// source speed.
	Shard int
	Took  sim.Time
}

// RestartCycles returns the expected virtual duration of a shard restart
// from src: every core region is rewritten with the base AES bitstream
// through the single ICAP port, so the cost is cores sequential swaps.
// The server's fault policy uses it to schedule the rejoin window before
// the restart has run.
func RestartCycles(cores int, src reconfig.Source) sim.Time {
	per := src.Cycles(reconfig.BitstreamBytes(reconfig.EngineAES.Component()), sim.DefaultFreqHz) +
		firmware.ImageWordsLoadCycles
	return sim.Time(cores) * per
}

// Restart rebuilds a quarantined shard and rejoins it to the healthy
// pool. The corpse's goroutine is stopped, a fresh platform (engine,
// device, controllers, shaper) takes its slot, and the base bitstream is
// streamed back into every core's reconfigurable region from src —
// sequentially, one ICAP port — on the new shard's own virtual timeline.
// On success the quarantine is cleared and the shard re-admitted to
// routing (it boots the base all-AES image; re-apply Whirlpool swaps via
// the fleet afterwards if the shard carried any). The shard must hold no
// sessions: run FailOver first.
func (c *Cluster) Restart(id int, src reconfig.Source) (RestartReport, error) {
	rep := RestartReport{Shard: id}
	if id < 0 || id >= c.cfg.Shards {
		return rep, fmt.Errorf("cluster: no shard %d", id)
	}
	if !c.quarantined[id] {
		return rep, fmt.Errorf("cluster: shard %d is not quarantined; Restart only rebuilds corpses", id)
	}
	c.Flush()
	for _, ses := range c.sessions {
		if ses.shardID == id {
			return rep, fmt.Errorf("cluster: shard %d still homes session %d (run FailOver first)", id, ses.id)
		}
	}
	// Stop the corpse. Its ring drained at the flush barrier, so the
	// goroutine exits as soon as the channel closes.
	old := c.shards[id]
	close(old.sub)
	<-old.done
	// Rebuild the platform in its slot. The shard stays flagged drained +
	// quarantined until the bitstream reload below succeeds, so Snapshot
	// readers never see a half-recovered shard as serving. The corpse's
	// flight-recorder dumps are archived first — the crash postmortem must
	// survive the rebuild — and the slot swap happens under obsMu so
	// Postmortems never reads a half-replaced shards slice.
	pol, _ := scheduler.ByName(c.cfg.Policy) // validated at New
	sh := newShard(id, c.cfg, pol)
	sh.drained.Store(true)
	sh.quarantinedA.Store(true)
	sh.rec.Event(sh.base, obs.EvRestart, "rebuilt from quarantine (base bitstream reload)")
	c.obsMu.Lock()
	c.postmortems = append(c.postmortems, old.rec.Dumps()...)
	c.shards[id] = sh
	c.obsMu.Unlock()
	// The new shard's batch sequence restarts at zero; reset the front
	// end's pipeline bookkeeping to match. Offered/delivered byte counters
	// stay cumulative — they describe the slot, not the incarnation.
	c.subSeq[id] = 0
	c.perShard[id] = nil
	c.hpPending[id] = 0
	c.hashCores[id] = 0 // base image: every region boots AES
	slot := c.getSlot()
	slot.kind = opGeneric
	slot.retain = true
	slot.shard = id
	slot.nbytes = 0
	slot.cb = nil
	slot.run = func(sh *shard, op *pendingOp, done func()) {
		start := sh.eng.Now()
		var next func(coreID int)
		next = func(coreID int) {
			if coreID >= len(sh.dev.Cores) {
				op.took = sh.eng.Now() - start
				done()
				return
			}
			sh.rc.Reconfigure(coreID, reconfig.EngineAES, src, func(_ sim.Time, err error) {
				if err != nil {
					op.err = err
					done()
					return
				}
				next(coreID + 1)
			})
		}
		next(0)
	}
	c.enqueue(slot, false)
	c.Flush()
	took, err := slot.took, slot.err
	c.putSlot(slot)
	if err != nil {
		return rep, fmt.Errorf("cluster: shard %d restart bitstream load: %w", id, err)
	}
	rep.Took = took
	// Rejoin: the quarantine is over, so SetShardActive re-admits.
	c.quarantined[id] = false
	sh.quarantinedA.Store(false)
	if err := c.SetShardActive(id, true); err != nil {
		return rep, err
	}
	return rep, nil
}

// Unquarantine lifts a quarantine without a rebuild — the un-freeze path
// for a shard that stalled rather than died (its heartbeat resumed, so
// the crash never happened). A genuine corpse (crashed flag set) is
// refused: its shaper is dead and its channel state gone, so only
// Restart can bring it back. Sessions re-homed off the shard while it
// was quarantined stay where they landed; RebalanceInto shifts load back.
func (c *Cluster) Unquarantine(id int) error {
	if id < 0 || id >= c.cfg.Shards {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	if !c.quarantined[id] {
		return fmt.Errorf("cluster: shard %d is not quarantined", id)
	}
	if c.shards[id].crashed.Load() {
		return fmt.Errorf("cluster: shard %d crashed; a corpse needs Restart, not Unquarantine", id)
	}
	c.quarantined[id] = false
	c.shards[id].quarantinedA.Store(false)
	return c.SetShardActive(id, true)
}

// RebalanceInto re-routes sessions toward one just-rejoined shard,
// voice-first: every session is offered to the router under the current
// view, but only moves that land on the target shard are applied —
// placements the router would shuffle between other shards stay put, so
// rejoining one shard never triggers a cluster-wide migration storm. It
// returns the number of sessions moved onto the target.
func (c *Cluster) RebalanceInto(target int) (int, error) {
	if target < 0 || target >= c.cfg.Shards {
		return 0, fmt.Errorf("cluster: no shard %d", target)
	}
	if c.quarantined[target] || c.inactive[target] {
		return 0, fmt.Errorf("cluster: shard %d is not serving (rejoin it first)", target)
	}
	c.Flush()
	ids := make([]int, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := c.sessions[ids[i]], c.sessions[ids[j]]
		if a.class != b.class {
			return a.class > b.class
		}
		return a.id < b.id
	})
	c.lastMoves = c.lastMoves[:0]
	type move struct {
		ses  *Session
		open *pendingOp
	}
	var moves []move
	var closes []*pendingOp
	for _, id := range ids {
		ses := c.sessions[id]
		if ses.shardID == target {
			continue
		}
		// Withdraw the session's load while deciding, like Rebalance.
		c.shardSessions[ses.shardID].Add(-1)
		c.shardWeight[ses.shardID] -= ses.weight
		if ses.hp {
			c.shardHPWeight[ses.shardID] -= ses.weight
		}
		to := c.router.Route(ses.info(), c.views())
		if to != target {
			to = ses.shardID // anywhere but the target: stay put
		}
		c.shardSessions[to].Add(1)
		c.shardWeight[to] += ses.weight
		if ses.hp {
			c.shardHPWeight[to] += ses.weight
		}
		if to == ses.shardID {
			continue
		}
		c.lastMoves = append(c.lastMoves, ses.id)
		if !c.quarantined[ses.shardID] {
			closes = append(closes, c.closeOn(ses.shardID, ses.chID))
		}
		moves = append(moves, move{ses: ses, open: c.openOn(ses, target)})
	}
	c.Flush()
	for _, slot := range closes {
		c.putSlot(slot)
	}
	for _, m := range moves {
		if m.open.err != nil {
			panic(fmt.Sprintf("cluster: rebalance-into could not re-open session %d on shard %d: %v",
				m.ses.id, target, m.open.err))
		}
		m.ses.shardID = target
		m.ses.chID = m.open.chOut
		c.putSlot(m.open)
	}
	return len(moves), nil
}
