package cluster

import (
	"reflect"
	"testing"

	"mccp/internal/trafficgen"
)

// TestParallelDrainStress is the pipelined dispatcher's contract test,
// designed to run under -race: large concurrent EncryptAsync bursts
// across 8 shards with irregular flush points, asserting that (1) every
// callback is delivered on the caller's goroutine in exact enqueue order
// — the sequence-numbered merge of 8 concurrent completion streams — and
// (2) per-shard output digests are stable across runs. Burst sizes
// exceed BatchWindow x RingDepth so dispatch exercises ring backpressure,
// and the tiny ring depth forces maximum interleaving between the front
// end and the shard goroutines.
func TestParallelDrainStress(t *testing.T) {
	const (
		shards  = 8
		packets = 1200
	)
	run := func() ([]int, []uint64) {
		cl, err := New(Config{
			Shards:        shards,
			Router:        RouterLeastLoaded,
			QueueRequests: true,
			Seed:          7,
			BatchWindow:   24,
			RingDepth:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		var sessions []*Session
		for i, std := range []trafficgen.Standard{
			trafficgen.VoiceUMTS, trafficgen.WiFiCCMP, trafficgen.WiMaxGCM, trafficgen.VideoGCM256,
		} {
			for k := 0; k < 4; k++ { // 16 sessions over 8 shards
				ses, err := cl.Open(OpenSpec{Suite: trafficgen.SuiteFor(std), KeyLen: std.KeyLen})
				if err != nil {
					t.Fatalf("open %d/%d: %v", i, k, err)
				}
				sessions = append(sessions, ses)
			}
		}

		gen := trafficgen.NewGenerator(99, trafficgen.DefaultMix)
		order := make([]int, 0, packets)
		digests := make([]uint64, shards)
		for i := range digests {
			digests[i] = 0xcbf29ce484222325
		}
		for p := 0; p < packets; p++ {
			p := p
			si := p % len(sessions)
			ses := sessions[si]
			pkt := gen.Next(si/4, ses.ID()) // standard matching the session's suite
			shardID := ses.Shard()
			ses.EncryptAsync(pkt.Nonce, pkt.AAD, pkt.Payload, func(out []byte, err error) {
				if err != nil {
					t.Errorf("packet %d: %v", p, err)
				}
				order = append(order, p)
				d := digests[shardID]
				for _, by := range out {
					d = (d ^ uint64(by)) * 0x100000001b3
				}
				digests[shardID] = d
				trafficgen.ReleasePacket(pkt)
			})
			// Irregular explicit flush points on top of the automatic
			// BatchWindow dispatches.
			if p%317 == 316 {
				cl.Flush()
			}
		}
		cl.Flush()
		if len(order) != packets {
			t.Fatalf("delivered %d/%d callbacks", len(order), packets)
		}
		for i, p := range order {
			if p != i {
				t.Fatalf("callback order broken at %d: got packet %d", i, p)
			}
		}
		return order, digests
	}

	_, d1 := run()
	_, d2 := run()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("per-shard digests not stable across runs:\n%#x\n%#x", d1, d2)
	}
}

// TestPerShardGenDeterminism pins the scale-out sweep mode: per-shard
// parallel generation must be a pure function of the configuration —
// identical digests, cycles and class counters across runs — even though
// the packets are produced by concurrent goroutines.
func TestPerShardGenDeterminism(t *testing.T) {
	run := func() WorkloadResult {
		res, err := RunWorkload(WorkloadConfig{
			Shards: 4, Router: RouterLeastLoaded, QueueRequests: true,
			Packets: 192, Sessions: 12, Seed: 5, BatchWindow: 48,
			PerShardGen: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.ShardDigests, b.ShardDigests) {
		t.Fatalf("sweep digests differ:\n%#x\n%#x", a.ShardDigests, b.ShardDigests)
	}
	if a.Metrics.ClusterCycles != b.Metrics.ClusterCycles || a.Metrics.Packets != b.Metrics.Packets {
		t.Fatalf("sweep metrics differ: %d/%d vs %d/%d cycles/packets",
			a.Metrics.ClusterCycles, a.Metrics.Packets, b.Metrics.ClusterCycles, b.Metrics.Packets)
	}
	if a.ClassPackets != b.ClassPackets {
		t.Fatalf("sweep class counters differ: %v vs %v", a.ClassPackets, b.ClassPackets)
	}
}

// TestPrefetchMatchesSynchronous pins the prefetched generator to the
// synchronous path bit-for-bit: same digests, same cycles, same metrics —
// prefetching may only change wall-clock overlap.
func TestPrefetchMatchesSynchronous(t *testing.T) {
	base := WorkloadConfig{
		Shards: 4, Router: RouterLeastLoaded, QueueRequests: true,
		Packets: 128, Sessions: 16, Seed: 1, BatchWindow: 32,
	}
	sync, err := RunWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	pre := base
	pre.PrefetchDepth = 64
	fetched, err := RunWorkload(pre)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sync.ShardDigests, fetched.ShardDigests) {
		t.Fatalf("prefetch changed digests:\n%#x\n%#x", sync.ShardDigests, fetched.ShardDigests)
	}
	if sync.Metrics.ClusterCycles != fetched.Metrics.ClusterCycles ||
		sync.Metrics.Bytes != fetched.Metrics.Bytes {
		t.Fatalf("prefetch changed virtual metrics: %d/%d vs %d/%d",
			sync.Metrics.ClusterCycles, sync.Metrics.Bytes,
			fetched.Metrics.ClusterCycles, fetched.Metrics.Bytes)
	}
	// The per-shard virtual timelines must match exactly as well.
	for i := range sync.Metrics.Shards {
		sa, sb := sync.Metrics.Shards[i], fetched.Metrics.Shards[i]
		if sa.Cycles != sb.Cycles || sa.Packets != sb.Packets {
			t.Fatalf("shard %d: %d cycles/%d packets (sync) vs %d/%d (prefetch)",
				i, sa.Cycles, sa.Packets, sb.Cycles, sb.Packets)
		}
	}
}
