package cluster

import (
	"fmt"

	"mccp/internal/cryptocore"
	"mccp/internal/qos"
)

// Router policy names.
const (
	RouterHashByKey      = "hash-by-key"
	RouterLeastLoaded    = "least-loaded"
	RouterFamilyAffinity = "family-affinity"
	RouterQoSAware       = "qos-aware"
)

// RouterNames lists the selectable routing policies.
func RouterNames() []string {
	return []string{RouterHashByKey, RouterLeastLoaded, RouterFamilyAffinity, RouterQoSAware}
}

// ShardView is the router's snapshot of one shard. All fields are
// maintained by the front end, so routing decisions depend only on the
// deterministic submission history — never on wall-clock state.
type ShardView struct {
	ID int
	// Sessions is the number of sessions currently homed on the shard.
	Sessions int
	// SessionWeight is the sum of the open sessions' declared weights
	// (expected relative load; 1 unless the opener knows better).
	SessionWeight int
	// Bytes is the payload volume routed to the shard so far, including
	// operations still queued for the next batch.
	Bytes uint64
	// HashCores is the number of cores reconfigured to Whirlpool; Cores
	// is the shard's total core count.
	HashCores int
	Cores     int
	// HighPrioWeight is the summed weight of the shard's open
	// high-priority (video/voice class) sessions; PendingHighPrio counts
	// high-priority operations queued for the shard's next batch. The
	// qos-aware router uses both to keep latency-critical load spread
	// and bulk traffic away from it.
	HighPrioWeight  int
	PendingHighPrio int
}

// SessionInfo describes the session being routed.
type SessionInfo struct {
	ID int
	// KeyHash is a stable hash of the session key material (FNV-64a), so
	// hash-by-key placement survives rebalancing and restarts with the
	// same seed.
	KeyHash uint64
	Family  cryptocore.Family
	Weight  int
	// Priority is the session suite's QoS priority tag (qos.Class
	// numbering: voice 3 ... background 0).
	Priority int
}

// Router places a session on a shard. Route returns the shard ID, or -1
// when no shard can serve the session's family (e.g. a Whirlpool session
// with no reconfigured shard anywhere).
type Router interface {
	Name() string
	Route(s SessionInfo, views []ShardView) int
}

// RouterByName returns a fresh router for a policy name; the empty string
// selects hash-by-key.
func RouterByName(name string) (Router, error) {
	switch name {
	case "", RouterHashByKey:
		return hashByKey{}, nil
	case RouterLeastLoaded:
		return leastLoaded{}, nil
	case RouterFamilyAffinity:
		return familyAffinity{}, nil
	case RouterQoSAware:
		return qosAware{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q (have hash-by-key, least-loaded, family-affinity, qos-aware)", name)
}

// eligible filters views down to shards that can execute the session's
// family: Whirlpool sessions need a hash core, everything else an AES one.
func eligible(f cryptocore.Family, views []ShardView) []ShardView {
	var out []ShardView
	for _, v := range views {
		if f == cryptocore.FamilyHash {
			if v.HashCores > 0 {
				out = append(out, v)
			}
		} else if v.Cores-v.HashCores > 0 {
			out = append(out, v)
		}
	}
	return out
}

// minLoad picks the least-loaded view: smallest session weight, then
// fewest routed bytes, then fewest sessions, then lowest ID. Every
// tie-break is deterministic.
func minLoad(views []ShardView) int {
	best := -1
	for i, v := range views {
		if best < 0 {
			best = i
			continue
		}
		b := views[best]
		switch {
		case v.SessionWeight != b.SessionWeight:
			if v.SessionWeight < b.SessionWeight {
				best = i
			}
		case v.Bytes != b.Bytes:
			if v.Bytes < b.Bytes {
				best = i
			}
		case v.Sessions != b.Sessions:
			if v.Sessions < b.Sessions {
				best = i
			}
		case v.ID < b.ID:
			best = i
		}
	}
	if best < 0 {
		return -1
	}
	return views[best].ID
}

// minBy picks the view minimizing score, breaking score ties with the
// deterministic minLoad chain.
func minBy(views []ShardView, score func(ShardView) int) int {
	var best int
	var min []ShardView
	for i, v := range views {
		s := score(v)
		switch {
		case i == 0 || s < best:
			best, min = s, append(min[:0], v)
		case s == best:
			min = append(min, v)
		}
	}
	return minLoad(min)
}

// hashByKey pins a session to a shard by hashing its key material: the
// same key always lands on the same shard (maximizing key-cache hits and
// making placement reproducible from the key alone).
type hashByKey struct{}

func (hashByKey) Name() string { return RouterHashByKey }

func (hashByKey) Route(s SessionInfo, views []ShardView) int {
	el := eligible(s.Family, views)
	if len(el) == 0 {
		return -1
	}
	return el[s.KeyHash%uint64(len(el))].ID
}

// leastLoaded greedily places each session on the shard with the smallest
// accumulated load, using the session weights as the primary signal so a
// heavy standard does not pile onto the shard that merely has the fewest
// sessions.
type leastLoaded struct{}

func (leastLoaded) Name() string { return RouterLeastLoaded }

func (leastLoaded) Route(s SessionInfo, views []ShardView) int {
	return minLoad(eligible(s.Family, views))
}

// familyAffinity steers Whirlpool/hash traffic to shards with
// reconfigured cores and keeps block-cipher traffic away from them (a
// reconfigured shard has fewer AES cores, so it is the worst home for
// GCM/CCM work). Within the preferred set it falls back to least-loaded.
type familyAffinity struct{}

func (familyAffinity) Name() string { return RouterFamilyAffinity }

func (familyAffinity) Route(s SessionInfo, views []ShardView) int {
	el := eligible(s.Family, views)
	if len(el) == 0 {
		return -1
	}
	if s.Family == cryptocore.FamilyHash {
		return minLoad(el) // eligible already restricts to hash-capable shards
	}
	var pure []ShardView
	for _, v := range el {
		if v.HashCores == 0 {
			pure = append(pure, v)
		}
	}
	if len(pure) > 0 {
		return minLoad(pure)
	}
	return minLoad(el)
}

// qosAware is QoS-aware placement: high-priority (video/voice class)
// sessions spread across shards by accumulated high-priority weight, so
// no shard concentrates the latency-critical load; low-priority sessions
// go least-loaded but see each shard's high-priority pressure — open
// high-priority weight doubled, plus any high-priority operations already
// pending for the shard's next batch — steering bulk transfers away from
// the shards voice depends on.
type qosAware struct{}

func (qosAware) Name() string { return RouterQoSAware }

// pendingOpWeight is how much one queued high-priority operation counts
// against a shard in the low-priority placement score, calibrated to the
// sessionWeight scale (a small voice frame's per-packet cycle cost).
const pendingOpWeight = 64

func (qosAware) Route(s SessionInfo, views []ShardView) int {
	el := eligible(s.Family, views)
	if len(el) == 0 {
		return -1
	}
	if qos.ClassForPriority(s.Priority).HighPriority() {
		return minBy(el, func(v ShardView) int { return v.HighPrioWeight })
	}
	return minBy(el, func(v ShardView) int {
		return v.SessionWeight + 2*v.HighPrioWeight + pendingOpWeight*v.PendingHighPrio
	})
}
