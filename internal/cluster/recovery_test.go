package cluster

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"mccp/internal/qos"
	"mccp/internal/reconfig"
)

// runHealSoak cycles the full fault loop — crash, fail-over, restart,
// rebalance back — `cycles` times over a loaded cluster and returns every
// window result. It asserts the invariants each cycle: nothing lost, the
// session population constant, the rebuilt shard back in the healthy
// pool.
func runHealSoak(t *testing.T, seed uint64, cycles int) []OpenLoopWindow {
	t.Helper()
	const horizon = 150000
	cl, r := faultCluster(t, seed)
	var wins []OpenLoopWindow
	run := func() {
		w, err := r.RunWindow(horizon)
		if err != nil {
			t.Fatal(err)
		}
		wins = append(wins, w)
	}
	run()
	cl.Flush()
	population := len(cl.sessions)
	for c := 0; c < cycles; c++ {
		dead := c % cl.Shards()
		if err := cl.ArmShardCrash(dead, cl.NextHeartbeat(dead), horizon/2); err != nil {
			t.Fatal(err)
		}
		run()
		rep, err := cl.FailOver(dead)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost != 0 {
			t.Fatalf("cycle %d: fail-over lost %d sessions", c, rep.Lost)
		}
		rrep, err := cl.Restart(dead, reconfig.FastICAP)
		if err != nil {
			t.Fatal(err)
		}
		if rrep.Took == 0 {
			t.Fatalf("cycle %d: restart reported a free bitstream reload", c)
		}
		// The restart swapped the shard platform; re-base the runner's
		// per-window deltas before serving on it again.
		r.Resnapshot()
		if cl.QuarantinedShard(dead) {
			t.Fatalf("cycle %d: shard %d still quarantined after restart", c, dead)
		}
		if _, err := cl.RebalanceInto(dead); err != nil {
			t.Fatal(err)
		}
		run()
		if got := len(cl.sessions); got != population {
			t.Fatalf("cycle %d: session population drifted: %d, want %d", c, got, population)
		}
		if w := wins[len(wins)-1]; w.Errors != 0 {
			t.Fatalf("cycle %d: post-rejoin window failing: %d errors", c, w.Errors)
		}
	}
	return wins
}

// TestRestartRejoinSoak cycles crash -> fail-over -> restart -> rejoin
// across every shard slot under load: no session is ever lost, the
// population never drifts, and the post-rejoin windows serve cleanly.
// Run under -race this is also the recovery plane's concurrency soak —
// every cycle stops one shard goroutine and boots a fresh one while the
// other shards keep serving.
func TestRestartRejoinSoak(t *testing.T) {
	runHealSoak(t, 61, 5)
}

// TestRestartSoakDeterministic: two identical soaks produce bit-identical
// window series — arrival digests, verdict counts, delivered bytes — so
// a restart is as reproducible as the crash that forced it.
func TestRestartSoakDeterministic(t *testing.T) {
	a := runHealSoak(t, 67, 3)
	b := runHealSoak(t, 67, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("heal soak not reproducible:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRestartLeaksNoGoroutines: a crash/restart cycle swaps shard
// goroutines; after Close the process is back to its pre-cluster
// goroutine count (the corpse's goroutine did not linger).
func TestRestartLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	cl, err := New(Config{
		Shards:        4,
		CoresPerShard: 2,
		QueueRequests: true,
		Seed:          71,
		Shape:         true,
		Shaper:        qos.Config{Capacity: 4, QueueDepth: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewOpenLoopRunner(cl, OpenLoopRunnerConfig{
		Profiles:    openLoopProfiles(),
		OfferedMbps: 1000,
		Seed:        71,
	})
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	const dead, horizon = 0, 100000
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}
	if err := cl.ArmShardCrash(dead, cl.NextHeartbeat(dead), horizon/2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FailOver(dead); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Restart(dead, reconfig.FastICAP); err != nil {
		t.Fatal(err)
	}
	r.Resnapshot()
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}
	r.Close()
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("goroutines leaked across restart: %d live, %d at baseline", got, base)
	}
}

// TestRecoveryGuards pins the recovery plane's refusal matrix: Restart
// only rebuilds quarantined corpses, Unquarantine only lifts stalls (a
// corpse is refused toward Restart), and a quarantined shard cannot be
// re-admitted by SetShardActive without going through one of them.
func TestRecoveryGuards(t *testing.T) {
	const dead, horizon = 1, 150000
	cl, r := faultCluster(t, 73)
	if _, err := cl.Restart(0, reconfig.FastICAP); err == nil {
		t.Fatalf("Restart accepted a healthy shard")
	}
	if err := cl.Unquarantine(0); err == nil {
		t.Fatalf("Unquarantine accepted a healthy shard")
	}
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}
	if err := cl.ArmShardCrash(dead, cl.NextHeartbeat(dead), horizon/2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FailOver(dead); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unquarantine(dead); err == nil ||
		!strings.Contains(err.Error(), "Restart") {
		t.Fatalf("Unquarantine on a corpse: %v, want a pointer at Restart", err)
	}
	if err := cl.SetShardActive(dead, true); err == nil ||
		!strings.Contains(err.Error(), "Restart") {
		t.Fatalf("SetShardActive on a quarantined corpse: %v, want a pointer at Restart", err)
	}
	if _, err := cl.RebalanceInto(dead); err == nil {
		t.Fatalf("RebalanceInto accepted a quarantined target")
	}
	if _, err := cl.Restart(dead, reconfig.FastICAP); err != nil {
		t.Fatal(err)
	}
	r.Resnapshot()
	// Restarted: the quarantine is gone and Fleet.Scale-style re-admission
	// (SetShardActive) works again.
	if cl.QuarantinedShard(dead) {
		t.Fatalf("shard %d quarantined after successful restart", dead)
	}
	if err := cl.SetShardActive(dead, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetShardActive(dead, true); err != nil {
		t.Fatalf("restarted shard refused normal re-admission: %v", err)
	}
}
