package cluster

import (
	"fmt"
	"sort"
	"strings"

	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/sim"
)

// This file is the cluster's half of the deterministic fault-injection
// plane (internal/faults builds schedules; this is the mechanism). A
// fault is *armed* on a shard by the front end — a lock-free handoff the
// shard goroutine consumes at its next batch — and *fires* as a scheduled
// event on the shard's own discrete-event engine, so the failure point is
// a virtual time, reproducible bit-for-bit across runs. A crashed shard
// keeps its goroutine (batches still drain, so barriers never hang) but
// its service dies: the shaper fails everything with ErrShardDown, and
// its heartbeat counter — published in every Snapshot — freezes, which is
// how a failure detector tells a dead shard from an idle one. Recovery is
// the quarantine → voice-first re-home → (optional) brownout sequence.

// ErrShardDown is the verdict every packet lost to a crashed shard gets:
// queued work at the moment the crash fires and every later submission.
// It classifies as verdict.Failed, so nothing new crosses the wire.
var ErrShardDown = fmt.Errorf("cluster: shard down (injected crash)")

// NextHeartbeat returns the heartbeat value the shard's next batch will
// start with — the `when` to pass to ArmShardCrash/ArmShardStall to make
// the fault fire in the very next batch. Heartbeats advance once per
// served batch and freeze on crash; the value is read from the shard's
// published snapshot, so it is safe from any goroutine.
func (c *Cluster) NextHeartbeat(id int) uint64 {
	if id < 0 || id >= c.cfg.Shards {
		return 0
	}
	return c.shards[id].snap.Load().heartbeat
}

// ArmShardCrash arms a permanent crash on a shard: in the first batch
// whose starting heartbeat is >= when, an event scheduled offset cycles
// into the batch kills the shard's service — its shaper fails all queued
// and future packets with ErrShardDown and its heartbeat freezes. The
// shard goroutine itself keeps draining batches (so flush barriers never
// hang on a corpse); detection and re-homing are the caller's move (see
// FailOver). Arming is a lock-free atomic store, safe from any
// goroutine; the cluster must run per-shard shapers (Config.Shape).
func (c *Cluster) ArmShardCrash(id int, when uint64, offset sim.Time) error {
	return c.armFault(id, when, offset, 0)
}

// ArmShardStall arms a transient freeze: at the armed point the shard's
// shaper stops dispatching for stall cycles — queued packets age and
// expire in place under the normal AgeLimit/deadline machinery — then
// resumes and drains the survivors. The heartbeat keeps advancing, so a
// stalled shard is *not* reported dead; it recovers on its own.
func (c *Cluster) ArmShardStall(id int, when uint64, offset, stall sim.Time) error {
	if stall <= 0 {
		return fmt.Errorf("cluster: shard stall needs a positive duration")
	}
	return c.armFault(id, when, offset, stall)
}

func (c *Cluster) armFault(id int, when uint64, offset, stall sim.Time) error {
	if id < 0 || id >= c.cfg.Shards {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	if !c.cfg.Shape {
		return fmt.Errorf("cluster: fault injection needs per-shard shapers (Config.Shape)")
	}
	c.shards[id].fault.Store(&shardFault{when: when, offset: offset, stall: stall})
	return nil
}

// Quarantine withdraws a dead shard from routing, like SetShardActive,
// and additionally marks it quarantined: Rebalance and RehomeFrom treat
// its channel state as lost and never enqueue close operations there.
// The last active shard cannot be quarantined (the cluster would serve
// nothing); the error leaves the shard serving whatever still works.
func (c *Cluster) Quarantine(id int) error {
	if err := c.SetShardActive(id, false); err != nil {
		return err
	}
	c.quarantined[id] = true
	sh := c.shards[id]
	sh.quarantinedA.Store(true)
	// Freeze the shard's flight recorder: the quarantine decision is the
	// front end's, so the timestamp is the shard's last published virtual
	// time (the recorder itself is mutex-protected against the shard
	// goroutine's concurrent appends).
	at := sh.base + sh.snap.Load().cycles
	sh.rec.Event(at, obs.EvQuarantine, "withdrawn from routing by front end")
	sh.rec.Freeze("quarantine", at)
	return nil
}

// QuarantinedShard reports whether a shard has been quarantined.
func (c *Cluster) QuarantinedShard(id int) bool {
	return id >= 0 && id < c.cfg.Shards && c.quarantined[id]
}

// RehomeReport summarizes a crash fail-over.
type RehomeReport struct {
	// Shard is the failed shard; Moved the sessions re-opened on
	// survivors (voice first); Lost the sessions no surviving shard could
	// serve (closed and dropped — their next packet would have failed
	// anyway).
	Shard int
	Moved int
	Lost  int
	// Took is the largest virtual-time advance any surviving shard spent
	// on the re-home (key re-installs + channel opens), the re-home
	// latency the E16 table reports.
	Took sim.Time
}

// FailOver is the full crash response: quarantine the dead shard, then
// re-home every session it held onto the survivors, voice first. It is
// what a failure detector calls once a frozen heartbeat has betrayed a
// crash.
func (c *Cluster) FailOver(dead int) (RehomeReport, error) {
	if !c.quarantined[dead] {
		if err := c.Quarantine(dead); err != nil {
			return RehomeReport{Shard: dead}, err
		}
	}
	return c.RehomeFrom(dead)
}

// RehomeFrom migrates every session homed on a quarantined shard onto
// the active shards, in the same voice-first order as Rebalance (class
// descending, then session ID). Unlike Rebalance it never enqueues a
// close on the source shard — a crashed shard's channel state is gone —
// and a session the router cannot place anywhere is dropped as Lost
// rather than panicking: under a crash, losing a session beats wedging
// the control plane.
func (c *Cluster) RehomeFrom(dead int) (RehomeReport, error) {
	rep := RehomeReport{Shard: dead}
	if dead < 0 || dead >= c.cfg.Shards {
		return rep, fmt.Errorf("cluster: no shard %d", dead)
	}
	if !c.quarantined[dead] {
		return rep, fmt.Errorf("cluster: shard %d is not quarantined (call Quarantine or FailOver)", dead)
	}
	c.Flush()
	before := make([]sim.Time, c.cfg.Shards)
	for i, sh := range c.shards {
		before[i] = sh.eng.Now() // safe: the flush barrier idled every shard
	}
	ids := make([]int, 0, 8)
	for id, ses := range c.sessions {
		if ses.shardID == dead {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := c.sessions[ids[i]], c.sessions[ids[j]]
		if a.class != b.class {
			return a.class > b.class
		}
		return a.id < b.id
	})
	type move struct {
		ses  *Session
		to   int
		open *pendingOp
	}
	var moves []move
	for _, id := range ids {
		ses := c.sessions[id]
		c.shardSessions[dead].Add(-1)
		c.shardWeight[dead] -= ses.weight
		if ses.hp {
			c.shardHPWeight[dead] -= ses.weight
		}
		to := c.router.Route(ses.info(), c.views())
		if to < 0 {
			ses.closed = true
			delete(c.sessions, id)
			rep.Lost++
			continue
		}
		c.shardSessions[to].Add(1)
		c.shardWeight[to] += ses.weight
		if ses.hp {
			c.shardHPWeight[to] += ses.weight
		}
		moves = append(moves, move{ses: ses, to: to, open: c.openOn(ses, to)})
	}
	c.Flush()
	for _, m := range moves {
		if m.open.err != nil {
			// The survivor refused the channel (e.g. device channel
			// exhaustion): the session is lost, not the cluster.
			c.shardSessions[m.to].Add(-1)
			c.shardWeight[m.to] -= m.ses.weight
			if m.ses.hp {
				c.shardHPWeight[m.to] -= m.ses.weight
			}
			m.ses.closed = true
			delete(c.sessions, m.ses.id)
			rep.Lost++
			c.putSlot(m.open)
			continue
		}
		m.ses.shardID = m.to
		m.ses.chID = m.open.chOut
		c.putSlot(m.open)
		rep.Moved++
	}
	for i, sh := range c.shards {
		if i == dead {
			continue
		}
		if d := sh.eng.Now() - before[i]; d > rep.Took {
			rep.Took = d
		}
	}
	return rep, nil
}

// ApplyDeny installs a brownout admission mask on every live shard's
// shaper: a denied class is shed at admission with qos.ErrShed — the
// existing load-shedding verdict, so degradation is visible through the
// counters and wire statuses that already exist. The zero mask restores
// full admission. Requires per-shard shapers (Config.Shape).
func (c *Cluster) ApplyDeny(deny [qos.NumClasses]bool) error {
	if !c.cfg.Shape {
		return fmt.Errorf("cluster: brownout needs per-shard shapers (Config.Shape)")
	}
	c.Flush()
	// Render the mask once (deterministic note shared by every shard's
	// recorder entry); the zero mask is the brownout lift.
	var denied []string
	for class := qos.Class(0); int(class) < qos.NumClasses; class++ {
		if deny[class] {
			denied = append(denied, class.String())
		}
	}
	note := "admission restored"
	if len(denied) > 0 {
		note = "deny=" + strings.Join(denied, ",")
	}
	var slots []*pendingOp
	for i, sh := range c.shards {
		if sh.crashed.Load() || c.quarantined[i] {
			continue
		}
		slot := c.getSlot()
		slot.kind = opGeneric
		slot.retain = true
		slot.shard = i
		slot.nbytes = 0
		slot.cb = nil
		slot.run = func(sh *shard, op *pendingOp, done func()) {
			sh.shaper.SetDeny(deny)
			if len(denied) > 0 {
				sh.rec.Event(sh.eng.Now(), obs.EvBrownoutOn, note)
				sh.rec.Freeze("brownout", sh.eng.Now())
			} else {
				sh.rec.Event(sh.eng.Now(), obs.EvBrownoutOff, note)
			}
			done()
		}
		c.enqueue(slot, false)
		slots = append(slots, slot)
	}
	c.Flush()
	for _, slot := range slots {
		c.putSlot(slot)
	}
	return nil
}
