package cluster

import (
	"reflect"
	"testing"

	"mccp/internal/arrivals"
	"mccp/internal/qos"
	"mccp/internal/sim"
)

// faultCluster builds a shaped 4-shard cluster plus a persistent
// open-loop runner at a moderate offered load, the substrate every
// fault-plane test drives.
func faultCluster(t *testing.T, seed uint64) (*Cluster, *OpenLoopRunner) {
	t.Helper()
	cl, err := New(Config{
		Shards:        4,
		CoresPerShard: 4,
		Router:        RouterQoSAware,
		Policy:        "qos-priority",
		QueueRequests: true,
		Seed:          seed,
		Shape:         true,
		Shaper:        qos.Config{Capacity: 8, QueueDepth: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewOpenLoopRunner(cl, OpenLoopRunnerConfig{
		Profiles:    openLoopProfiles(),
		OfferedMbps: 3000,
		Seed:        seed,
	})
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(); cl.Close() })
	return cl, r
}

// TestCrashFailOverUnderLoad is the cluster-layer crash drill: a crash
// armed mid-window kills one shard's service, the heartbeat freeze
// betrays it at the next flush boundary, and FailOver re-homes every
// one of its sessions onto the survivors with nothing lost.
func TestCrashFailOverUnderLoad(t *testing.T) {
	const dead, horizon = 1, 200000
	cl, r := faultCluster(t, 41)
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}

	hb := cl.NextHeartbeat(dead)
	if err := cl.ArmShardCrash(dead, hb, horizon/2); err != nil {
		t.Fatal(err)
	}
	w, err := r.RunWindow(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if w.Errors == 0 {
		t.Fatalf("crash window recorded no ErrShardDown verdicts")
	}

	snap := cl.Snapshot()
	if !snap.Shards[dead].Crashed {
		t.Fatalf("shard %d not marked crashed: %+v", dead, snap.Shards[dead])
	}
	if got := snap.Shards[dead].Heartbeat; got != hb {
		t.Fatalf("crashed shard heartbeat advanced: armed at %d, now %d", hb, got)
	}

	// The sessions homed on the corpse before the fail-over.
	victims := 0
	for _, src := range r.sources {
		if src.ses.Shard() == dead {
			victims++
		}
	}
	if victims == 0 {
		t.Fatalf("no runner sessions homed on shard %d", dead)
	}

	rep, err := cl.FailOver(dead)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != victims || rep.Lost != 0 {
		t.Fatalf("fail-over moved %d lost %d, want moved %d lost 0", rep.Moved, rep.Lost, victims)
	}
	if rep.Took == 0 {
		t.Fatalf("fail-over reported zero re-home latency")
	}
	if !cl.QuarantinedShard(dead) {
		t.Fatalf("shard %d not quarantined after fail-over", dead)
	}
	for _, src := range r.sources {
		if src.ses.Shard() == dead {
			t.Fatalf("session %d still homed on the corpse", src.ses.ID())
		}
		if src.ses.Closed() {
			t.Fatalf("session %d closed by a lossless fail-over", src.ses.ID())
		}
	}

	// Post-fail-over windows serve from the survivors with no hard errors
	// (shedding under the concentrated load is fine; failures are not).
	after, err := r.RunWindow(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if after.Errors != 0 {
		t.Fatalf("post-fail-over window still failing: %d errors", after.Errors)
	}
	if after.ArrivalDigests[dead] != arrivals.DigestInit {
		t.Fatalf("quarantined shard still receives arrivals")
	}
}

// TestStallRecoversWithoutQuarantine: a stalled shard freezes its
// dispatch, not its heartbeat — the detector signal stays healthy, and
// the shard drains its survivors and serves the next window on its own.
func TestStallRecoversWithoutQuarantine(t *testing.T) {
	const target, horizon = 2, 200000
	cl, r := faultCluster(t, 43)
	if _, err := r.RunWindow(horizon); err != nil {
		t.Fatal(err)
	}
	hb := cl.NextHeartbeat(target)
	if err := cl.ArmShardStall(target, hb, horizon/4, horizon/2); err != nil {
		t.Fatal(err)
	}
	w, err := r.RunWindow(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if w.Errors != 0 {
		t.Fatalf("stall produced hard errors: %d (want aged/expired only)", w.Errors)
	}
	snap := cl.Snapshot()
	if snap.Shards[target].Crashed || snap.Shards[target].Quarantined {
		t.Fatalf("stalled shard misreported dead: %+v", snap.Shards[target])
	}
	if got := snap.Shards[target].Heartbeat; got <= hb {
		t.Fatalf("stalled shard heartbeat frozen at %d (armed at %d)", got, hb)
	}
	after, err := r.RunWindow(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if after.Errors != 0 {
		t.Fatalf("post-stall window failing: %d errors", after.Errors)
	}
	if after.ArrivalDigests[target] == arrivals.DigestInit {
		t.Fatalf("recovered shard received no arrivals")
	}
	if err := cl.ArmShardStall(target, cl.NextHeartbeat(target), 0, 0); err == nil {
		t.Fatalf("zero-duration stall accepted")
	}
}

// faultScenario runs the canonical crash drill end to end and returns
// everything observable: per-window results, the fail-over report and
// the crashed shard's final snapshot.
type faultScenarioResult struct {
	Windows []OpenLoopWindow
	Report  RehomeReport
	Shard   ShardMetrics
}

func runFaultScenario(t *testing.T, seed uint64) faultScenarioResult {
	t.Helper()
	const dead, horizon = 1, 200000
	cl, r := faultCluster(t, seed)
	var res faultScenarioResult
	run := func() {
		w, err := r.RunWindow(horizon)
		if err != nil {
			t.Fatal(err)
		}
		res.Windows = append(res.Windows, w)
	}
	run()
	if err := cl.ArmShardCrash(dead, cl.NextHeartbeat(dead), horizon/2); err != nil {
		t.Fatal(err)
	}
	run()
	rep, err := cl.FailOver(dead)
	if err != nil {
		t.Fatal(err)
	}
	res.Report = rep
	run()
	run()
	res.Shard = cl.Snapshot().Shards[dead]
	return res
}

// TestFaultScenarioDeterministic: the crash drill — arrival streams,
// the crash fire point, the re-home order and latency — is bit-identical
// across runs and against the reference simulation kernel.
func TestFaultScenarioDeterministic(t *testing.T) {
	a := runFaultScenario(t, 47)
	b := runFaultScenario(t, 47)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault scenario not reproducible:\n%+v\nvs\n%+v", a, b)
	}
	sim.CompatDefault = true
	defer func() { sim.CompatDefault = false }()
	ref := runFaultScenario(t, 47)
	if !reflect.DeepEqual(a, ref) {
		t.Fatalf("fault scenario diverges from the Compat kernel:\n%+v\nvs\n%+v", a, ref)
	}
}

// TestFaultPlaneIdleIsFree: a run that polls the fault-detection
// surfaces every window — Snapshot, NextHeartbeat, QuarantinedShard —
// without ever arming a fault is bit-identical to a run that never
// looks. Detection is read-only; the fault plane costs nothing until a
// fault fires.
func TestFaultPlaneIdleIsFree(t *testing.T) {
	const horizon = 150000
	run := func(poll bool) []OpenLoopWindow {
		cl, r := faultCluster(t, 53)
		var wins []OpenLoopWindow
		for i := 0; i < 3; i++ {
			if poll {
				snap := cl.Snapshot()
				for s := range snap.Shards {
					_ = cl.NextHeartbeat(s)
					_ = cl.QuarantinedShard(s)
				}
			}
			w, err := r.RunWindow(horizon)
			if err != nil {
				t.Fatal(err)
			}
			wins = append(wins, w)
		}
		return wins
	}
	if a, b := run(true), run(false); !reflect.DeepEqual(a, b) {
		t.Fatalf("polling the detector perturbed the run:\n%+v\nvs\n%+v", a, b)
	}
}
