package cluster

import (
	"fmt"
	"math"
	"strings"

	"mccp/internal/qos"
	"mccp/internal/sim"
	"mccp/internal/verdict"
)

// Verdict indices for the Cluster.verdicts counters: the shared
// verdict.Verdict values, so the cluster counters, the public mccp.Verdict
// and the server's wire statuses all derive from the one table in
// internal/verdict.
const (
	vOK         = int(verdict.OK)
	vRejected   = int(verdict.Rejected)
	vShed       = int(verdict.Shed)
	vExpired    = int(verdict.Expired)
	vAged       = int(verdict.Aged)
	vAuthFail   = int(verdict.AuthFail)
	vFailed     = int(verdict.Failed)
	numVerdicts = verdict.Num
)

// verdictIndex classifies a delivered operation's error into the wire
// verdict the server front end reports as a protocol status code.
func verdictIndex(err error) int { return int(verdict.For(err)) }

// VerdictCounts tallies delivered packet operations by wire verdict: OK
// for clean completions, Rejected for the paper's no-idle-core error
// flag, Shed/Expired/Aged for the QoS admission verdicts, AuthFail for
// failed tag verification, Failed for anything else. Control operations
// (open/close/reconfigure) are not counted.
type VerdictCounts struct {
	OK       uint64
	Rejected uint64
	Shed     uint64
	Expired  uint64
	Aged     uint64
	AuthFail uint64
	Failed   uint64
}

// Total sums every verdict bucket.
func (v VerdictCounts) Total() uint64 {
	return v.OK + v.Rejected + v.Shed + v.Expired + v.Aged + v.AuthFail + v.Failed
}

// ShardMetrics is one shard's counter snapshot.
type ShardMetrics struct {
	Shard    int
	Sessions int
	// Packets counts fully round-tripped packets. Bytes is the payload
	// volume actually delivered (successful operations only);
	// OfferedBytes additionally includes rejected/failed traffic.
	Packets      uint64
	Bytes        uint64
	OfferedBytes uint64
	// Device counters, same semantics as the single-device core.Stats:
	// Rejected is the paper's error flag, Queued a request that waited in
	// the QoS queue, Shed a request dropped at the bounded queue;
	// AuthFails counts AUTH_FAIL results and KeyExpansions the Key
	// Scheduler's expansions.
	AuthFails     uint64
	Rejected      uint64
	Queued        uint64
	Shed          uint64
	KeyExpansions uint64
	CrossbarBusy  sim.Time
	// Cycles is the shard's consumed virtual time; SimMbps the shard's
	// throughput at the modeled 190 MHz over that time.
	Cycles  sim.Time
	SimMbps float64
	// PendingOps counts operations queued for the next batch.
	PendingOps int
	// Heartbeat counts batches the shard has served while healthy; it
	// freezes the moment an injected crash fires, so a failure detector
	// comparing successive snapshots can tell a dead shard (frozen
	// heartbeat, offered bytes still growing) from an idle one. Crashed
	// mirrors the shard's crash flag; Active whether the shard is in the
	// routing set; Quarantined whether a fail-over declared it dead. All
	// four are atomically published, safe in Snapshot from any goroutine.
	Heartbeat   uint64
	Crashed     bool
	Active      bool
	Quarantined bool
	// Classes is the shard shaper's per-class counter snapshot, highest
	// priority first (nil unless the cluster runs per-shard shapers).
	Classes []qos.ClassStats
}

// Metrics is the aggregated cluster snapshot.
type Metrics struct {
	Shards []ShardMetrics

	// Totals across shards (Bytes = delivered; OfferedBytes includes
	// rejected traffic; Rejected/Queued/Shed keep the single-device
	// split of saturation outcomes).
	Packets      uint64
	Bytes        uint64
	OfferedBytes uint64
	AuthFails    uint64
	Rejected     uint64
	Queued       uint64
	Shed         uint64

	// Verdicts is the per-verdict split of every delivered packet
	// operation in wire-protocol terms (OK/Rejected/Shed/Expired/Aged/
	// AuthFail/Failed), counted at delivery on the front end.
	Verdicts VerdictCounts

	// Classes aggregates the per-shard shaper counters across the cluster,
	// highest priority first (nil unless the cluster runs per-shard
	// shapers). Interval fields stay zero — shard timelines are
	// independent; Cluster.ClassLatencyPercentile merges latency samples.
	Classes []qos.ClassStats

	// Batches counts per-shard batch dispatches; Flushes counts front-end
	// flush barriers.
	Batches uint64
	Flushes uint64

	// ClusterCycles is the slowest shard's virtual time — shards run
	// concurrently, so this is the cluster's virtual makespan — and
	// AggregateSimMbps the total traffic over it at 190 MHz.
	ClusterCycles    sim.Time
	AggregateSimMbps float64

	// WallSeconds is host time during which the pipeline had batches in
	// flight (dispatch to drained); HostMbps is the wall-clock throughput
	// of the simulation itself (nondeterministic, unlike every
	// virtual-time figure above).
	WallSeconds float64
	HostMbps    float64
}

// Metrics snapshots the cluster without stopping the pipeline: per-shard
// device counters come from the snapshot each shard publishes after every
// completed batch, and byte counters reflect delivered operations. After
// a Flush the snapshot is exact; mid-pipeline it trails by at most the
// batches still in flight. Metrics is front-end-only (it delivers ready
// completions first); any other goroutine must use Snapshot.
func (c *Cluster) Metrics() Metrics {
	c.deliverReady()
	return c.buildMetrics(true)
}

// Snapshot builds the same aggregated view as Metrics but is safe to call
// from any goroutine while the pipeline runs — the server front end polls
// it without stopping shards. It never touches front-end-only state:
// PendingOps is reported as 0 and delivered-byte/verdict counters reflect
// operations the front-end goroutine has delivered so far.
func (c *Cluster) Snapshot() Metrics {
	return c.buildMetrics(false)
}

func (c *Cluster) buildMetrics(frontEnd bool) Metrics {
	m := Metrics{
		Batches:     c.batches.Load(),
		Flushes:     c.flushes.Load(),
		WallSeconds: math.Float64frombits(c.wallSeconds.Load()),
		Verdicts: VerdictCounts{
			OK:       c.verdicts[vOK].Load(),
			Rejected: c.verdicts[vRejected].Load(),
			Shed:     c.verdicts[vShed].Load(),
			Expired:  c.verdicts[vExpired].Load(),
			Aged:     c.verdicts[vAged].Load(),
			AuthFail: c.verdicts[vAuthFail].Load(),
			Failed:   c.verdicts[vFailed].Load(),
		},
	}
	for i, sh := range c.shards {
		snap := sh.snap.Load()
		cyc := snap.cycles
		done := c.bytesDone[i].Load()
		pending := 0
		if frontEnd {
			pending = len(c.perShard[i])
		}
		sm := ShardMetrics{
			Shard:         i,
			Sessions:      int(c.shardSessions[i].Load()),
			Packets:       snap.completions,
			Bytes:         done,
			OfferedBytes:  c.bytesRouted[i].Load(),
			AuthFails:     snap.authFails,
			Rejected:      snap.rejected,
			Queued:        snap.queued,
			Shed:          snap.shed,
			KeyExpansions: snap.keyExpansions,
			CrossbarBusy:  snap.crossbarBusy,
			Cycles:        cyc,
			SimMbps:       mbpsAt190(done*8, cyc),
			PendingOps:    pending,
			Heartbeat:     snap.heartbeat,
			Crashed:       snap.crashed,
			Active:        !sh.drained.Load(),
			Quarantined:   sh.quarantinedA.Load(),
			Classes:       snap.classes,
		}
		m.Shards = append(m.Shards, sm)
		for k, cs := range snap.classes {
			if m.Classes == nil {
				m.Classes = make([]qos.ClassStats, len(snap.classes))
				for j := range m.Classes {
					m.Classes[j].Class = snap.classes[j].Class
				}
			}
			m.Classes[k].Accumulate(cs)
		}
		m.Packets += sm.Packets
		m.Bytes += sm.Bytes
		m.OfferedBytes += sm.OfferedBytes
		m.AuthFails += sm.AuthFails
		m.Rejected += sm.Rejected
		m.Queued += sm.Queued
		m.Shed += sm.Shed
		if cyc > m.ClusterCycles {
			m.ClusterCycles = cyc
		}
	}
	m.AggregateSimMbps = mbpsAt190(m.Bytes*8, m.ClusterCycles)
	if m.WallSeconds > 0 {
		m.HostMbps = float64(m.Bytes*8) / m.WallSeconds / 1e6
	}
	return m
}

func mbpsAt190(bits uint64, cycles sim.Time) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bits) / float64(cycles) * sim.DefaultFreqHz / 1e6
}

// Format renders the snapshot as a fixed-width report.
func (m Metrics) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s %9s %10s %10s %8s %8s %8s %8s %12s\n",
		"shard", "sessions", "packets", "bytes", "Mbps@190", "keyexp", "queued", "rejects", "shed", "cycles")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "%-6d %9d %9d %10d %10.0f %8d %8d %8d %8d %12d\n",
			s.Shard, s.Sessions, s.Packets, s.Bytes, s.SimMbps,
			s.KeyExpansions, s.Queued, s.Rejected, s.Shed, s.Cycles)
	}
	fmt.Fprintf(&b, "total: %d packets, %d bytes in %d cycles -> %.0f Mbps aggregate at 190 MHz\n",
		m.Packets, m.Bytes, m.ClusterCycles, m.AggregateSimMbps)
	fmt.Fprintf(&b, "host:  %d batches over %d flushes in %.1f ms -> %.0f Mbps wall-clock\n",
		m.Batches, m.Flushes, m.WallSeconds*1e3, m.HostMbps)
	if len(m.Classes) > 0 {
		fmt.Fprintf(&b, "%-12s %10s %10s %8s %8s %8s %8s %10s\n",
			"class", "submitted", "completed", "shed", "expired", "aged", "misses", "bytes")
		for _, cs := range m.Classes {
			fmt.Fprintf(&b, "%-12s %10d %10d %8d %8d %8d %8d %10d\n",
				cs.Class, cs.Submitted, cs.Completed, cs.Shed, cs.Expired, cs.Aged,
				cs.DeadlineMisses, cs.Bytes)
		}
	}
	return b.String()
}
