package cluster

import (
	"fmt"

	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/sim"
	"mccp/internal/verdict"
)

// This file is the cluster's face of the observability plane: the span
// outcome classifier (the one verdict table, cast), the postmortem
// reader over every shard's flight recorder, the traced-span export, and
// the metrics-registry collector that exposes the cluster snapshot
// through the same read path as every other metric.

// outcomeFor classifies a packet error as a span outcome. obs mirrors
// verdict's numeric order exactly so the whole mapping is a cast of the
// single classifier in internal/verdict (obs itself sits below qos and
// cannot import it).
func outcomeFor(err error) obs.Outcome { return obs.Outcome(verdict.For(err)) }

// Postmortems returns every frozen flight-recorder dump in the cluster:
// dumps archived from shard incarnations retired by Restart, then each
// live shard's dumps, shard order then freeze order. Safe from any
// goroutine — recorders are internally locked and the shard-slot swap a
// Restart performs is coordinated through the same mutex.
func (c *Cluster) Postmortems() []obs.Dump {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	out := append([]obs.Dump(nil), c.postmortems...)
	for _, sh := range c.shards {
		out = append(out, sh.rec.Dumps()...)
	}
	return out
}

// TraceSpans flushes the pipeline and returns every shard's recorded
// spans, shard order then start order (each span's Tag is its shard ID).
// Nil unless the cluster was built with Shape and Trace.Enabled.
// Front-end-only, like every flushing read.
func (c *Cluster) TraceSpans() []obs.Span {
	c.Flush()
	var out []obs.Span
	for _, sh := range c.shards {
		out = append(out, sh.tr.Spans()...)
	}
	return out
}

// TraceDigest flushes and folds every shard's span digest into one
// cluster fingerprint (FNV-64a over the per-shard digests in shard
// order). Deterministic: host timestamps are excluded at the shard
// level. Front-end-only.
func (c *Cluster) TraceDigest() uint64 {
	c.Flush()
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	for _, sh := range c.shards {
		d := sh.tr.Digest()
		for i := 0; i < 8; i++ {
			h ^= (d >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// RegisterMetrics exposes the cluster through a metrics registry: one
// pull collector that reads Snapshot (safe from any goroutine, never
// stops the pipeline) and emits the cluster's counters under the
// mccp_cluster_* namespace. This is the scattered-counters replacement:
// the text endpoint, the STATS wire op and the CLI report all read the
// same collector.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterFunc(func(emit func(s obs.Sample)) {
		m := c.Snapshot()
		emit(obs.Sample{Name: "mccp_cluster_packets_total", Value: float64(m.Packets)})
		emit(obs.Sample{Name: "mccp_cluster_delivered_bytes_total", Value: float64(m.Bytes)})
		emit(obs.Sample{Name: "mccp_cluster_offered_bytes_total", Value: float64(m.OfferedBytes)})
		emit(obs.Sample{Name: "mccp_cluster_auth_fails_total", Value: float64(m.AuthFails)})
		emit(obs.Sample{Name: "mccp_cluster_rejected_total", Value: float64(m.Rejected)})
		emit(obs.Sample{Name: "mccp_cluster_queued_total", Value: float64(m.Queued)})
		emit(obs.Sample{Name: "mccp_cluster_shed_total", Value: float64(m.Shed)})
		emit(obs.Sample{Name: "mccp_cluster_batches_total", Value: float64(m.Batches)})
		emit(obs.Sample{Name: "mccp_cluster_flushes_total", Value: float64(m.Flushes)})
		emit(obs.Sample{Name: "mccp_cluster_cycles", Value: float64(m.ClusterCycles)})
		emit(obs.Sample{Name: "mccp_cluster_sim_mbps", Value: m.AggregateSimMbps})
		emit(obs.Sample{Name: "mccp_cluster_host_mbps", Value: m.HostMbps})
		emit(obs.Sample{Name: "mccp_cluster_wall_seconds", Value: m.WallSeconds})
		for v := verdict.OK; int(v) < verdict.Num; v++ {
			var n uint64
			switch v {
			case verdict.OK:
				n = m.Verdicts.OK
			case verdict.Rejected:
				n = m.Verdicts.Rejected
			case verdict.Shed:
				n = m.Verdicts.Shed
			case verdict.Expired:
				n = m.Verdicts.Expired
			case verdict.Aged:
				n = m.Verdicts.Aged
			case verdict.AuthFail:
				n = m.Verdicts.AuthFail
			case verdict.Failed:
				n = m.Verdicts.Failed
			}
			emit(obs.Sample{
				Name:   "mccp_cluster_verdicts_total",
				Labels: fmt.Sprintf("verdict=%q", v.String()),
				Value:  float64(n),
			})
		}
		for _, sh := range m.Shards {
			l := fmt.Sprintf("shard=\"%d\"", sh.Shard)
			emit(obs.Sample{Name: "mccp_shard_packets_total", Labels: l, Value: float64(sh.Packets)})
			emit(obs.Sample{Name: "mccp_shard_delivered_bytes_total", Labels: l, Value: float64(sh.Bytes)})
			emit(obs.Sample{Name: "mccp_shard_sessions", Labels: l, Value: float64(sh.Sessions)})
			emit(obs.Sample{Name: "mccp_shard_cycles", Labels: l, Value: float64(sh.Cycles)})
			emit(obs.Sample{Name: "mccp_shard_heartbeat", Labels: l, Value: float64(sh.Heartbeat)})
			emit(obs.Sample{Name: "mccp_shard_crashed", Labels: l, Value: b2f(sh.Crashed)})
			emit(obs.Sample{Name: "mccp_shard_quarantined", Labels: l, Value: b2f(sh.Quarantined)})
			emit(obs.Sample{Name: "mccp_shard_crossbar_busy_cycles", Labels: l, Value: float64(sh.CrossbarBusy)})
			emit(obs.Sample{Name: "mccp_shard_key_expansions_total", Labels: l, Value: float64(sh.KeyExpansions)})
		}
		for _, cs := range m.Classes {
			l := fmt.Sprintf("class=%q", cs.Class.String())
			emit(obs.Sample{Name: "mccp_class_submitted_total", Labels: l, Value: float64(cs.Submitted)})
			emit(obs.Sample{Name: "mccp_class_completed_total", Labels: l, Value: float64(cs.Completed)})
			emit(obs.Sample{Name: "mccp_class_shed_total", Labels: l, Value: float64(cs.Shed)})
			emit(obs.Sample{Name: "mccp_class_expired_total", Labels: l, Value: float64(cs.Expired)})
			emit(obs.Sample{Name: "mccp_class_aged_total", Labels: l, Value: float64(cs.Aged)})
			emit(obs.Sample{Name: "mccp_class_deadline_misses_total", Labels: l, Value: float64(cs.DeadlineMisses)})
			emit(obs.Sample{Name: "mccp_class_delivered_bytes_total", Labels: l, Value: float64(cs.Bytes)})
		}
		emit(obs.Sample{Name: "mccp_postmortems", Value: float64(len(c.Postmortems()))})
	})
}

// b2f renders a bool as the conventional 0/1 gauge value.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// ClassLatencyHistogramBounds are the bucket upper bounds (in cycles)
// CLIs use when exposing per-class latency as a registry histogram.
var ClassLatencyHistogramBounds = []float64{
	1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1e6,
}

// ObserveClassLatencies feeds every shard's recorded per-class latency
// samples into per-class histograms from the registry (one call after a
// run; front-end-only, flushes first). It returns the sample counts per
// class, highest priority first.
func (c *Cluster) ObserveClassLatencies(reg *obs.Registry) []int {
	if !c.cfg.Shape {
		return nil
	}
	c.Flush()
	counts := make([]int, 0, qos.NumClasses)
	for _, class := range qos.Classes() {
		h := reg.Histogram(
			fmt.Sprintf("mccp_class_latency_cycles_%s", class.String()),
			ClassLatencyHistogramBounds)
		var samples []sim.Time
		for _, sh := range c.shards {
			samples = sh.shaper.AppendLatencySamples(class, samples)
		}
		for _, s := range samples {
			h.Observe(float64(s))
		}
		counts = append(counts, len(samples))
	}
	return counts
}
