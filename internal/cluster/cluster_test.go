package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"mccp/internal/arrivals"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/trafficgen"
	"mccp/internal/whirlpool"
)

func TestClusterRoundtrip(t *testing.T) {
	cl, err := New(Config{Shards: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	payload := []byte("sharded multi-MCCP service layer")
	sealed, err := ses.Encrypt(nonce, []byte("hdr"), payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(payload)+16 {
		t.Fatalf("sealed length %d", len(sealed))
	}
	plain, err := ses.Decrypt(nonce, []byte("hdr"), sealed[:len(payload)], sealed[len(payload):])
	if err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("roundtrip: %v", err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.Packets < 2 || m.ClusterCycles == 0 {
		t.Fatalf("metrics did not count: %+v", m)
	}
}

// TestClusterBatchDispatch verifies that async submissions coalesce into
// batches (far fewer engine drains than packets) and complete in enqueue
// order.
func TestClusterBatchDispatch(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterLeastLoaded, QueueRequests: true, BatchWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var sessions []*Session
	for i := 0; i < 4; i++ {
		ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, KeyLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, ses)
	}
	const packets = 48
	var got []int
	nonce := make([]byte, 12)
	for p := 0; p < packets; p++ {
		p := p
		sessions[p%len(sessions)].EncryptAsync(nonce, nil, make([]byte, 256), func(out []byte, err error) {
			if err != nil {
				t.Errorf("packet %d: %v", p, err)
			}
			got = append(got, p)
		})
	}
	cl.Flush()
	if len(got) != packets {
		t.Fatalf("completed %d/%d", len(got), packets)
	}
	for i, p := range got {
		if p != i {
			t.Fatalf("callback order broken at %d: got packet %d", i, p)
		}
	}
	m := cl.Metrics()
	// 48 packets over BatchWindow=16 on 2 shards: at most 3 auto-flush
	// rounds x 2 shards + the final explicit Flush (plus the per-open
	// flushes, each 1 batch) — far fewer batches than packets.
	if m.Batches >= packets {
		t.Fatalf("dispatch not batched: %d batches for %d packets", m.Batches, packets)
	}
	if m.Packets != packets+0 {
		t.Fatalf("metrics packets = %d", m.Packets)
	}
}

// TestRouterHashByKey pins sessions by key hash: the same cluster seed
// must give the same placement, and every shard-eligible family works.
func TestRouterHashByKey(t *testing.T) {
	place := func() []int {
		cl, err := New(Config{Shards: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var homes []int
		for i := 0; i < 8; i++ {
			ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, KeyLen: 16})
			if err != nil {
				t.Fatal(err)
			}
			homes = append(homes, ses.Shard())
		}
		return homes
	}
	a, b := place(), place()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("hash-by-key placement not reproducible: %v vs %v", a, b)
	}
}

// TestRouterLeastLoadedSpread checks weight-greedy balance: equal-weight
// sessions spread one per shard before any doubles up.
func TestRouterLeastLoadedSpread(t *testing.T) {
	cl, err := New(Config{Shards: 4, Router: RouterLeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	counts := make([]int, 4)
	for i := 0; i < 8; i++ {
		ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyCCM, TagLen: 8}, KeyLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		counts[ses.Shard()]++
	}
	for i, n := range counts {
		if n != 2 {
			t.Fatalf("shard %d has %d sessions, want 2 (%v)", i, n, counts)
		}
	}
}

// TestFamilyAffinityAndReconfigure exercises the full re-homing story:
// hash sessions are impossible before a reconfiguration, then steered to
// the reconfigured shard; AES sessions already homed there flee it; and
// the digests still verify after the moves.
func TestFamilyAffinityAndReconfigure(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterFamilyAffinity, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyHash}}); err == nil {
		t.Fatal("hash session opened with no Whirlpool shard")
	}

	// Fill both shards with AES sessions (least-loaded spread).
	var aes []*Session
	for i := 0; i < 4; i++ {
		ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, KeyLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		aes = append(aes, ses)
	}
	// Reconfigure both cores... no: swap two cores of shard 1 to Whirlpool.
	took, moved, err := cl.Reconfigure(1, 0, reconfig.EngineWhirlpool, reconfig.StagingRAM)
	if err != nil {
		t.Fatal(err)
	}
	if took == 0 {
		t.Fatal("reconfiguration took no virtual time")
	}
	// family-affinity now prefers shard 0 for AES traffic: the sessions
	// homed on shard 1 must have been transparently re-opened on shard 0.
	if moved == 0 {
		t.Fatal("no AES session fled the reconfigured shard")
	}
	for _, ses := range aes {
		if ses.Shard() != 0 {
			t.Fatalf("AES session %d still on reconfigured shard", ses.ID())
		}
	}

	// Hash traffic now routes to shard 1 and produces correct digests.
	hs, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyHash}})
	if err != nil {
		t.Fatal(err)
	}
	if hs.Shard() != 1 {
		t.Fatalf("hash session homed on shard %d, want 1", hs.Shard())
	}
	msg := []byte("steered to the reconfigured shard")
	digest, err := hs.Sum(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := whirlpool.Sum(msg)
	if !bytes.Equal(digest, want[:]) {
		t.Fatal("digest mismatch after routing")
	}

	// Moved AES sessions still encrypt/decrypt correctly (their key was
	// re-installed on the new shard).
	nonce := make([]byte, 12)
	payload := []byte("moved and still serving")
	sealed, err := aes[0].Encrypt(nonce, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := aes[0].Decrypt(nonce, nil, sealed[:len(payload)], sealed[len(payload):])
	if err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("post-move roundtrip: %v", err)
	}
}

// TestRouterQoSAware covers both halves of QoS-aware placement: voice
// sessions spread by high-priority weight, and bulk sessions steer away
// from the shards voice landed on.
func TestRouterQoSAware(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterQoSAware, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	open := func(prio, weight int) *Session {
		ses, err := cl.Open(OpenSpec{
			Suite:  core.Suite{Family: cryptocore.FamilyCCM, TagLen: 8, Priority: prio},
			KeyLen: 16,
			Weight: weight,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ses
	}
	voice := open(3, 4) // -> shard 0 (all empty, lowest ID)
	if voice.Shard() != 0 {
		t.Fatalf("voice homed on shard %d, want 0", voice.Shard())
	}
	// Background avoids the voice shard even though shard 1 will end up
	// with more sessions: the doubled high-priority weight dominates.
	bg1 := open(0, 1)
	bg2 := open(0, 1)
	if bg1.Shard() != 1 || bg2.Shard() != 1 {
		t.Fatalf("background homed on %d/%d, want both on 1 (away from voice)",
			bg1.Shard(), bg2.Shard())
	}
	// A second voice session balances high-priority weight, not total
	// weight: shard 1 carries 2 bulk sessions but zero voice, so it wins.
	voice2 := open(3, 4)
	if voice2.Shard() != 1 {
		t.Fatalf("second voice homed on shard %d, want 1 (hp-weight balance)", voice2.Shard())
	}
	// With voice now on both shards, the bulk pair concentrated on shard 1
	// is no longer optimal: Rebalance moves exactly one background session
	// next to the lighter voice shard, evening out the bulk load too.
	if moved := cl.Rebalance(); moved != 1 {
		t.Fatalf("rebalance moved %d sessions, want 1", moved)
	}
	if bg1.Shard() == bg2.Shard() {
		t.Fatal("rebalance left both background sessions on one shard")
	}
	if voice.Shard() != 0 || voice2.Shard() != 1 {
		t.Fatal("rebalance disturbed the voice spread")
	}
}

// TestClusterShedCounters: a bounded per-shard queue shows overflow as
// Shed (distinct from Rejected and Queued), and the workload error count
// matches the metric — the same three-way split the single device
// reports.
func TestClusterShedCounters(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{
		Shards: 1, Router: RouterLeastLoaded, QueueRequests: true, MaxQueue: 2,
		Packets: 48, Sessions: 6, Seed: 2, BatchWindow: 48, ShardWindow: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Shed == 0 {
		t.Fatalf("bounded queue never shed: %+v", m)
	}
	if m.Rejected != 0 {
		t.Fatalf("queueing on: rejects must be shed instead, got %d", m.Rejected)
	}
	if uint64(res.Errors) != m.Shed {
		t.Fatalf("workload errors %d != shed %d", res.Errors, m.Shed)
	}
	if m.Queued == 0 {
		t.Fatal("no request ever waited in the bounded queue")
	}
}

// TestWorkloadClassBreakdown: the mixed workload's per-class counters
// cover every class in the QoS mix and sum to the packet total.
func TestWorkloadClassBreakdown(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{
		Shards: 2, Router: RouterQoSAware, QueueRequests: true,
		Mix:     trafficgen.QoSMix,
		Packets: 32, Sessions: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for c, n := range res.ClassPackets {
		if n == 0 {
			t.Errorf("class %d completed no packets", c)
		}
		total += n
	}
	if total != 32 || res.Metrics.Packets != 32 {
		t.Fatalf("class packets sum %d, metrics %d, want 32", total, res.Metrics.Packets)
	}
}

// TestRebalanceMovesSessions creates a load skew by closing a heavy
// session and verifies an explicit Rebalance under least-loaded re-homes
// a session onto the emptied shard — and is a no-op when placement is
// already optimal.
func TestRebalanceMovesSessions(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterLeastLoaded, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	open := func(weight int) *Session {
		ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, KeyLen: 16, Weight: weight})
		if err != nil {
			t.Fatal(err)
		}
		return ses
	}
	heavy := open(10) // -> shard 0
	a := open(1)      // -> shard 1
	b := open(1)      // -> shard 1 (1 < 10)
	if heavy.Shard() != 0 || a.Shard() != 1 || b.Shard() != 1 {
		t.Fatalf("unexpected placement: %d/%d/%d", heavy.Shard(), a.Shard(), b.Shard())
	}
	if moved := cl.Rebalance(); moved != 0 {
		t.Fatalf("rebalance moved %d sessions from an optimal placement", moved)
	}
	if err := heavy.Close(); err != nil {
		t.Fatal(err)
	}
	// Shard 0 is now empty; exactly one of the light sessions must move.
	if moved := cl.Rebalance(); moved != 1 {
		t.Fatalf("rebalance moved %d sessions, want 1", moved)
	}
	if a.Shard() == b.Shard() {
		t.Fatal("rebalance left both sessions on one shard")
	}
	// The moved session still works on its new home.
	nonce := make([]byte, 12)
	payload := []byte("re-homed")
	sealed, err := a.Encrypt(nonce, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if plain, err := a.Decrypt(nonce, nil, sealed[:len(payload)], sealed[len(payload):]); err != nil || !bytes.Equal(plain, payload) {
		t.Fatalf("post-move roundtrip: %v", err)
	}
}

// TestWorkloadDeterminism is the acceptance gate: per-shard results must
// be byte-for-byte identical across runs — virtual cycles, packet counts
// and the FNV digest of every output byte, per shard.
func TestWorkloadDeterminism(t *testing.T) {
	run := func() WorkloadResult {
		res, err := RunWorkload(WorkloadConfig{
			Shards: 4, Router: RouterLeastLoaded, QueueRequests: true,
			Packets: 64, Sessions: 8, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.ShardDigests, b.ShardDigests) {
		t.Fatalf("per-shard output digests differ across runs:\n%v\n%v", a.ShardDigests, b.ShardDigests)
	}
	for i := range a.Metrics.Shards {
		sa, sb := a.Metrics.Shards[i], b.Metrics.Shards[i]
		if sa.Cycles != sb.Cycles || sa.Packets != sb.Packets || sa.Bytes != sb.Bytes {
			t.Fatalf("shard %d diverged: %+v vs %+v", i, sa, sb)
		}
	}
	if a.Errors != 0 || b.Errors != 0 {
		t.Fatalf("workload errors: %d/%d", a.Errors, b.Errors)
	}
}

// TestScalingOneToFour is the throughput acceptance criterion: aggregate
// simulated throughput on the mixed trafficgen workload must scale at
// least 3x from 1 shard to 4 shards.
func TestScalingOneToFour(t *testing.T) {
	rows, err := RunScaling([]int{1, 4}, WorkloadConfig{
		Router: RouterLeastLoaded, QueueRequests: true,
		Packets: 256, Sessions: 16, Seed: 1, BatchWindow: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	speedup := rows[1].AggregateSimMbps / rows[0].AggregateSimMbps
	t.Logf("1 shard: %.0f Mbps, 4 shards: %.0f Mbps (%.2fx)",
		rows[0].AggregateSimMbps, rows[1].AggregateSimMbps, speedup)
	if speedup < 3.0 {
		t.Fatalf("scaling 1->4 shards = %.2fx, want >= 3x", speedup)
	}
}

// TestWorkloadRejectsWithoutQueueing: with the QoS extension off and the
// in-flight window deliberately oversubscribing the cores, saturation
// draws the paper's error flag and the metrics count it. (The default
// window equals the core count when queueing is off, so rejects are
// opt-in — see TestWorkloadNoRejectsAtDefaultWindow.)
func TestWorkloadRejectsWithoutQueueing(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{
		Shards: 1, Router: RouterLeastLoaded, QueueRequests: false,
		Packets: 48, Sessions: 6, Seed: 2, BatchWindow: 48, ShardWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Metrics.Rejected == 0 {
		t.Fatalf("expected error-flag rejects at saturation: errors=%d rejected=%d",
			res.Errors, res.Metrics.Rejected)
	}
	if res.Metrics.Rejected != uint64(res.Errors) {
		t.Fatalf("rejects %d != errors %d", res.Metrics.Rejected, res.Errors)
	}
}

// TestWorkloadNoRejectsAtDefaultWindow: with queueing off, the default
// in-flight window (== core count) must pipeline a large batch without
// ever drawing the error flag — batching alone should not reject.
func TestWorkloadNoRejectsAtDefaultWindow(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{
		Shards: 1, Router: RouterLeastLoaded, QueueRequests: false,
		Packets: 48, Sessions: 6, Seed: 2, BatchWindow: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Metrics.Rejected != 0 {
		t.Fatalf("default window rejected packets: errors=%d rejected=%d",
			res.Errors, res.Metrics.Rejected)
	}
	if res.Metrics.Packets != 48 {
		t.Fatalf("completed %d/48", res.Metrics.Packets)
	}
}

// TestReconfigureRefusesToStrandSessions: converting the cluster's last
// Whirlpool core back to AES while a hash session is open must fail
// up-front, not deadlock the session's next packet.
func TestReconfigureRefusesToStrandSessions(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterFamilyAffinity, QueueRequests: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Reconfigure(1, 0, reconfig.EngineWhirlpool, reconfig.StagingRAM); err != nil {
		t.Fatal(err)
	}
	hs, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyHash}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Reconfigure(1, 0, reconfig.EngineAES, reconfig.StagingRAM); err == nil {
		t.Fatal("reconfiguration stranded an open hash session")
	}
	// The session is still serviceable after the refused swap.
	if _, err := hs.Sum([]byte("still homed")); err != nil {
		t.Fatal(err)
	}
	// After closing the hash session the swap back is allowed.
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Reconfigure(1, 0, reconfig.EngineAES, reconfig.StagingRAM); err != nil {
		t.Fatalf("swap back after close: %v", err)
	}
}

// TestSessionDoubleClose: the second Close errors without corrupting the
// per-shard session counters routing depends on.
func TestSessionDoubleClose(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterLeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ses, err := cl.Open(OpenSpec{Suite: core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err == nil {
		t.Fatal("second Close succeeded")
	}
	if got := cl.shardSessions[ses.Shard()].Load(); got != 0 {
		t.Fatalf("session counter corrupted: %d", got)
	}
}

// TestMetricsCountDeliveredBytes: rejected packets must not inflate the
// throughput figures (Bytes/SimMbps), only OfferedBytes.
func TestMetricsCountDeliveredBytes(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{
		Shards: 1, Router: RouterLeastLoaded, QueueRequests: false,
		Packets: 48, Sessions: 6, Seed: 2, BatchWindow: 48, ShardWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if res.Errors == 0 {
		t.Fatal("workload did not saturate")
	}
	if m.Bytes >= m.OfferedBytes {
		t.Fatalf("delivered bytes %d not below offered %d despite %d rejects",
			m.Bytes, m.OfferedBytes, res.Errors)
	}
	if m.Bytes == 0 {
		t.Fatal("no delivered bytes counted")
	}
}

// TestUnknownNames: constructor-level validation for router and policy.
func TestUnknownNames(t *testing.T) {
	if _, err := New(Config{Router: "bogus"}); err == nil {
		t.Fatal("unknown router accepted")
	}
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Fatal("unknown shard policy accepted")
	}
	if _, err := RouterByName("nope"); err == nil {
		t.Fatal("RouterByName accepted junk")
	}
}

// TestMixedStandardsLookup covers the trafficgen name helpers the CLI
// uses.
func TestMixedStandardsLookup(t *testing.T) {
	stds, err := trafficgen.StandardsByName([]string{"umts-voice", "wimax-gcm"})
	if err != nil || len(stds) != 2 {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := trafficgen.StandardsByName([]string{"lte-nope"}); err == nil {
		t.Fatal("unknown standard accepted")
	}
}

// TestRebalanceVoiceFirst: re-homing is class-prioritized — when a voice
// and a background session both need to move, the voice session is routed
// (and its migration traffic enqueued) first, so it claims the best
// placement.
func TestRebalanceVoiceFirst(t *testing.T) {
	cl, err := New(Config{Shards: 2, Router: RouterLeastLoaded, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	open := func(prio, weight int) *Session {
		suite := core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16, Priority: prio}
		ses, err := cl.Open(OpenSpec{Suite: suite, KeyLen: 16, Weight: weight})
		if err != nil {
			t.Fatal(err)
		}
		return ses
	}
	heavy := open(0, 8) // -> shard 0
	voice := open(3, 1) // -> shard 1
	bg := open(0, 1)    // -> shard 1
	bg2 := open(0, 1)   // -> shard 1
	if heavy.Shard() != 0 || voice.Shard() != 1 || bg.Shard() != 1 || bg2.Shard() != 1 {
		t.Fatalf("unexpected placement: %d/%d/%d/%d", heavy.Shard(), voice.Shard(), bg.Shard(), bg2.Shard())
	}
	if err := heavy.Close(); err != nil {
		t.Fatal(err)
	}
	// Shard 0 is empty: the voice session must be re-homed before any
	// background session gets to pick.
	moved := cl.Rebalance()
	if moved != 2 {
		t.Fatalf("rebalance moved %d sessions, want 2 (order %v)", moved, cl.LastMoves())
	}
	wantOrder := []int{voice.ID(), bg.ID()}
	if !reflect.DeepEqual(cl.LastMoves(), wantOrder) {
		t.Fatalf("move order %v, want voice first %v", cl.LastMoves(), wantOrder)
	}
	if voice.Shard() != 0 {
		t.Fatalf("voice session re-homed to shard %d, want the freed shard 0", voice.Shard())
	}
}

// TestShapedPassThroughIsInvisible: a pass-through per-shard shaper (zero
// qos.Config) must not change a single virtual-time result — it only adds
// per-class attribution.
func TestShapedPassThroughIsInvisible(t *testing.T) {
	base := WorkloadConfig{
		Shards: 4, Router: RouterLeastLoaded, QueueRequests: true,
		Packets: 96, Sessions: 8, Seed: 3, Mix: trafficgen.QoSMix,
	}
	plain, err := RunWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	shaped := base
	shaped.Shape = true
	got, err := RunWorkload(shaped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.ShardDigests, got.ShardDigests) {
		t.Fatalf("digests diverged under pass-through shaping:\n%v\n%v", plain.ShardDigests, got.ShardDigests)
	}
	for i := range plain.Metrics.Shards {
		a, b := plain.Metrics.Shards[i], got.Metrics.Shards[i]
		if a.Cycles != b.Cycles || a.Packets != b.Packets || a.Bytes != b.Bytes {
			t.Fatalf("shard %d virtual results diverged: %+v vs %+v", i, a, b)
		}
	}
	// ...and the shaped run attributes every class.
	if got.Metrics.Classes == nil {
		t.Fatal("shaped run reported no per-class metrics")
	}
	var submitted uint64
	for _, cs := range got.Metrics.Classes {
		submitted += cs.Submitted
	}
	if submitted != uint64(base.Packets) {
		t.Fatalf("class-attributed %d packets, want %d", submitted, base.Packets)
	}
}

// openLoopProfiles is a compact all-class mix for the open-loop tests.
func openLoopProfiles() []arrivals.ClassProfile {
	return []arrivals.ClassProfile{
		{Class: qos.Voice, Share: 0.10, Bytes: 256, Family: cryptocore.FamilyCCM, KeyLen: 16, TagLen: 8, Deadline: 16000},
		{Class: qos.Video, Share: 0.15, Bytes: 1024, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
		{Class: qos.Data, Share: 0.15, Bytes: 512, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
		{Class: qos.Background, Share: 0.60, Bytes: 2048, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
	}
}

// TestOpenLoopDeterminism: two open-loop runs with the same seed are
// bit-identical — arrival digests, verdict counts, percentiles, shard
// cycles, everything.
func TestOpenLoopDeterminism(t *testing.T) {
	run := func() OpenLoopResult {
		res, err := RunOpenLoop(OpenLoopConfig{
			Shards: 2, Policy: "qos-priority", Offered: 0.6,
			SatMbpsPerShard: 1500, Horizon: 600000, Seed: 21,
			Profiles: openLoopProfiles(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("open-loop run not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Errors != 0 {
		t.Fatalf("unexpected hard errors: %d", a.Errors)
	}
}

// TestOpenLoopAttribution: every shard attributes every class, the
// aggregate adds up, and cross-shard latency percentiles are readable.
func TestOpenLoopAttribution(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopConfig{
		Shards: 2, Policy: "qos-priority", Offered: 0.5,
		SatMbpsPerShard: 1500, Horizon: 600000, Seed: 4,
		Profiles: openLoopProfiles(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerShard) != 2 || len(res.Classes) != qos.NumClasses {
		t.Fatalf("shape: %d shards, %d classes", len(res.PerShard), len(res.Classes))
	}
	var total uint64
	for s, stats := range res.PerShard {
		for _, cs := range stats {
			if cs.Submitted == 0 {
				t.Errorf("shard %d class %v saw no arrivals", s, cs.Class)
			}
			total += cs.Submitted
		}
	}
	var agg uint64
	for _, c := range res.Classes {
		agg += c.Submitted
		if c.Submitted > 0 && c.Completed > 0 && c.P99 == 0 {
			t.Errorf("class %v: completions without latency percentiles", c.Class)
		}
		if c.OfferedMbps <= 0 {
			t.Errorf("class %v: no offered rate", c.Class)
		}
	}
	if agg != total {
		t.Fatalf("aggregate submitted %d != per-shard sum %d", agg, total)
	}
	for s, d := range res.ArrivalDigests {
		if d == 0 {
			t.Errorf("shard %d has no arrival digest", s)
		}
	}
}
