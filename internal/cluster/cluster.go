// Package cluster runs N independent MCCP platforms ("shards") behind a
// single front end, the first layer of the sharded service architecture
// the ROADMAP calls for. Each shard owns a full simulated device — its
// own discrete-event engine, four cryptographic cores, task/key
// schedulers, crossbar and radio controllers — and is driven by a
// dedicated goroutine, so shards execute concurrently in wall-clock time
// while every shard's virtual timeline stays byte-for-byte deterministic.
//
// The front end provides:
//
//   - pluggable routing policies (hash-by-key, least-loaded,
//     family-affinity, qos-aware) that decide which shard homes each
//     session;
//   - a pipelined batch dispatcher: queued operations coalesce per shard
//     and are pushed onto each shard's bounded submission ring, so
//     routing, shard simulation and completion draining overlap in wall
//     time — no shard waits for another, and the front end only blocks
//     when a ring is full or an explicit Flush needs results;
//   - session management that opens a device channel on the owning shard
//     and transparently re-opens it elsewhere when Rebalance or a shard's
//     reconfiguration makes another home preferable;
//   - an aggregated Metrics snapshot: per-shard and total packets,
//     simulated Mbps at virtual time, and the host-side wall-clock
//     throughput of the simulation itself.
//
// The Cluster front end is single-caller: one goroutine submits work and
// reads results (the shard goroutines are the concurrency). Completion
// callbacks always run on the caller's goroutine in global enqueue order
// — the drainer merges each shard's completion stream back into sequence
// — but they are delivered incrementally as batches finish, not only at
// Flush barriers. Operation input buffers (nonce/AAD/payload) must stay
// untouched until the operation's callback runs.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/radio"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// Config sizes a Cluster.
type Config struct {
	// Shards is the number of independent MCCP platforms (default 2).
	Shards int
	// CoresPerShard sizes each shard's device (default 4, the paper's
	// implementation).
	CoresPerShard int
	// Router selects the session-routing policy by name (default
	// hash-by-key).
	Router string
	// Policy selects each shard's device-level dispatch policy by name
	// (default first-idle).
	Policy string
	// QueueRequests enables the §VIII QoS extension on every shard.
	QueueRequests bool
	// MaxQueue bounds each shard's device request queue when
	// QueueRequests is on (0 = unbounded); overflow is shed with an
	// explicit verdict and counted per shard (see core.Config.MaxQueue).
	MaxQueue int
	// Seed drives deterministic key generation across the cluster.
	Seed uint64
	// BatchWindow is the number of queued operations that triggers an
	// automatic batch dispatch (default 32). Explicit Flush is always
	// allowed.
	BatchWindow int
	// ShardWindow bounds the packets a shard keeps in flight within one
	// batch, pipelining oversized batches instead of saturating the
	// device. Default: 2 x CoresPerShard with QueueRequests on;
	// CoresPerShard with it off, where any oversubscription draws the
	// paper's error flag the instant all cores are busy (a window above
	// the core count with queueing off is allowed, but rejects are then
	// expected behaviour — split-CCM suites halve the effective capacity
	// and should run with queueing on).
	ShardWindow int
	// RingDepth is each shard's submission-ring capacity in batches
	// (default 4): how far the front end may run ahead of a shard before
	// dispatch blocks. Depth only changes wall-clock overlap, never
	// virtual time — batch contents and order are identical at any depth.
	RingDepth int
	// Shape gives every shard its own qos.Shaper between the batch pump
	// and the device, so per-class virtual-time latency percentiles and
	// shed/expired/aged verdicts are attributable per shard and
	// aggregatable across the cluster. Off (the default), the packet path
	// is byte-identical to the unshaped cluster.
	Shape bool
	// Shaper configures the per-shard shapers when Shape is on (drain
	// policy, weights, capacity, class-queue depth, age limit). The zero
	// value is a pass-through shaper that only classes, counts and
	// measures.
	Shaper qos.Config
	// Trace configures per-shard lifecycle tracing (needs Shape — spans
	// open at shaper admission). Each shard derives its own sampling seed
	// and tags spans with its ID; Tag/Classify/OnEnd are overwritten per
	// shard. Disabled (the zero value), the packet path pays only
	// branches and allocates nothing extra.
	Trace obs.TraceConfig
	// FlightDepth sizes each shard's flight-recorder ring in records
	// (0 = obs.DefaultRingDepth). The recorder always runs: lifecycle
	// events (crash, stall, quarantine, brownout, restart) are recorded
	// regardless of tracing; spans join the ring only when Trace is
	// enabled.
	FlightDepth int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.CoresPerShard <= 0 {
		c.CoresPerShard = 4
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 32
	}
	if c.ShardWindow <= 0 {
		if c.QueueRequests {
			c.ShardWindow = 2 * c.CoresPerShard
		} else {
			c.ShardWindow = c.CoresPerShard
		}
	}
	if c.RingDepth <= 0 {
		c.RingDepth = 4
	}
}

// opKind selects a pendingOp's device operation.
type opKind uint8

const (
	opEncrypt opKind = iota
	opDecrypt
	opHash
	opGeneric
)

// pendingOp is one queued operation: its submission arguments, its result
// slot and its place in the delivery sequence. Slots are pooled on the
// front end; the finish callback is prebuilt once per slot so the packet
// path never allocates a closure. The shard goroutine fills the result
// fields while running the batch; the front end reads them only after
// observing the shard's completed-batch counter (the happens-before
// edge).
type pendingOp struct {
	// Submission (set by the front end before dispatch).
	kind  opKind
	ch    int
	nonce []byte
	aad   []byte
	data  []byte
	tag   []byte
	// class and deadline feed the per-shard shaper (Config.Shape):
	// deadline is a relative virtual-time budget, converted to an
	// absolute shard time at dispatch (the front end cannot know a
	// shard's clock).
	class    qos.Class
	deadline sim.Time
	// run is the opGeneric body (session open/close, reconfiguration).
	run func(sh *shard, op *pendingOp, done func())

	// Results (set by the shard goroutine).
	out   []byte
	chOut int
	took  sim.Time
	err   error

	// Delivery bookkeeping (front end). cb is the plain completion; cbt
	// the timing-aware variant (EncryptWireAsync/DecryptWireAsync) that
	// also receives the shard-side service latency — cycles from the
	// carrying batch's start to the operation's completion. At most one of
	// the two is set.
	cb     func([]byte, error)
	cbt    func([]byte, sim.Time, error)
	shard  int
	nbytes int
	batch  uint64 // shard-local batch sequence this op ships in
	sh     *shard
	// retain keeps the slot alive past delivery so a barrier caller can
	// read the result fields (Open/Close/Reconfigure); the caller then
	// releases it with putSlot.
	retain bool

	finish func([]byte, error) // prebuilt: store result, notify shard pump
	next   *pendingOp          // pool link
}

// Session is a cluster-level channel: a cipher suite bound to a session
// key, homed on one shard (and re-homed by Rebalance when profitable).
type Session struct {
	cl     *Cluster
	id     int
	suite  core.Suite
	keyLen int
	// key holds the session key inline (satellite of the zero-alloc
	// packet path: no per-open heap copy); key[:keyLen] is the material.
	key    [32]byte
	weight int

	// class is the session's QoS class (from the suite's priority tag);
	// hp marks the high-priority (video/voice) tier the qos-aware router
	// balances separately.
	class qos.Class
	hp    bool

	shardID int
	chID    int // device channel ID on the owning shard
	closed  bool
}

// Cluster is the sharded multi-MCCP front end.
type Cluster struct {
	cfg    Config
	router Router
	shards []*shard

	sessions    map[int]*Session
	nextSession int

	// Per-shard routing state, owned by the front end. bytesRouted is the
	// offered load (routing signal, counted at enqueue); bytesDone counts
	// only payload bytes whose operation completed without error and has
	// been delivered. shardSessions and the byte counters are atomics so
	// Snapshot can read them from any goroutine while the front end runs;
	// they are still written only by the front-end goroutine.
	shardSessions []atomic.Int64
	shardWeight   []int
	// shardHPWeight sums the weights of open high-priority sessions per
	// shard; hpPending counts high-priority operations queued for each
	// shard's next batch (cleared at dispatch). Both feed the qos-aware
	// router.
	shardHPWeight []int
	hpPending     []int
	bytesRouted   []atomic.Uint64
	bytesDone     []atomic.Uint64
	hashCores     []int
	// inactive marks shards withdrawn from routing (fleet drain, scale-in):
	// views() hides them, so Open and Rebalance place sessions only on
	// active shards. An inactive shard keeps running — sessions that cannot
	// re-home anywhere else stay where they are and stay served.
	inactive []bool
	// quarantined marks shards a fail-over has declared dead: inactive
	// for routing, and with channel state treated as lost (Rebalance and
	// RehomeFrom never enqueue closes there). See faults.go.
	quarantined []bool

	// Pipeline state: perShard accumulates the next batch per shard,
	// subSeq counts batches pushed onto each shard's ring, order is the
	// global delivery sequence (ordHead its delivered prefix), unpushed
	// the operations enqueued since the last dispatch.
	perShard   [][]*pendingOp
	subSeq     []uint64
	order      []*pendingOp
	ordHead    int
	unpushed   int
	freeSlots  *pendingOp
	delivering bool

	keys *radio.Keystream

	// lastMoves records the session IDs the most recent Rebalance moved,
	// in re-homing order (voice first) — observability for tests and the
	// migration report.
	lastMoves []int

	flushes atomic.Uint64
	batches atomic.Uint64
	// verdicts tallies the wire-protocol verdict of every delivered packet
	// operation (opGeneric control ops excluded), indexed by the vOK..vFailed
	// constants. Atomics so Snapshot reads them concurrently.
	verdicts [numVerdicts]atomic.Uint64
	// Wall-clock accounting: the pipeline is "active" from a dispatch
	// until every pushed batch has completed and been delivered;
	// wallSeconds accumulates those active intervals (generation overlaps
	// simulation, so this is the honest wall cost of the traffic phase).
	// Stored as float64 bits so Snapshot can read it concurrently.
	active      bool
	activeStart time.Time
	wallSeconds atomic.Uint64
	closed      bool

	// obsMu guards postmortems and the shards slice swap a Restart
	// performs, so Postmortems can read recorder dumps from any goroutine
	// (the server's HTTP endpoint does) while the front end replaces a
	// shard. postmortems archives the dumps of shard incarnations retired
	// by Restart — a rebuilt shard gets a fresh recorder, but its
	// predecessor's crash postmortem must survive the rebuild.
	obsMu       sync.Mutex
	postmortems []obs.Dump
}

// New builds and starts a Cluster; every shard's firmware is settled and
// its goroutine running when New returns.
func New(cfg Config) (*Cluster, error) {
	cfg.fill()
	router, err := RouterByName(cfg.Router)
	if err != nil {
		return nil, err
	}
	if _, err := scheduler.ByName(cfg.Policy); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:           cfg,
		router:        router,
		sessions:      make(map[int]*Session),
		nextSession:   1,
		shardSessions: make([]atomic.Int64, cfg.Shards),
		shardWeight:   make([]int, cfg.Shards),
		shardHPWeight: make([]int, cfg.Shards),
		hpPending:     make([]int, cfg.Shards),
		bytesRouted:   make([]atomic.Uint64, cfg.Shards),
		bytesDone:     make([]atomic.Uint64, cfg.Shards),
		hashCores:     make([]int, cfg.Shards),
		inactive:      make([]bool, cfg.Shards),
		quarantined:   make([]bool, cfg.Shards),
		perShard:      make([][]*pendingOp, cfg.Shards),
		subSeq:        make([]uint64, cfg.Shards),
		keys:          radio.NewKeystream(cfg.Seed ^ 0xC1A5731D),
	}
	for i := 0; i < cfg.Shards; i++ {
		pol, _ := scheduler.ByName(cfg.Policy) // fresh instance per shard
		c.shards = append(c.shards, newShard(i, cfg, pol))
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// CoresPerShard returns each shard's device size (after defaulting).
func (c *Cluster) CoresPerShard() int { return c.cfg.CoresPerShard }

// RouterName returns the active routing policy's name.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Close flushes outstanding work and stops every shard goroutine. The
// cluster must not be used afterwards.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.Flush()
	c.closed = true
	for _, sh := range c.shards {
		close(sh.sub)
		<-sh.done
	}
}

// genKey fills dst with deterministic session-key bytes from the
// cluster's keystream. The front end generates keys itself (rather than
// per-shard ProvisionKey) because the router hashes the key bytes before
// a shard is chosen, and a re-homed session must carry its key to the new
// shard.
func (c *Cluster) genKey(dst []byte) {
	for i := range dst {
		dst[i] = c.keys.Next()
	}
}

// views snapshots per-shard routing state for the router. Inactive
// shards (fleet drain / scale-in) are omitted so routers never place a
// session on them; ShardView.ID keeps the true shard index.
func (c *Cluster) views() []ShardView {
	vs := make([]ShardView, 0, c.cfg.Shards)
	for i := 0; i < c.cfg.Shards; i++ {
		if c.inactive[i] {
			continue
		}
		vs = append(vs, ShardView{
			ID:              i,
			Sessions:        int(c.shardSessions[i].Load()),
			SessionWeight:   c.shardWeight[i],
			Bytes:           c.bytesRouted[i].Load(),
			HashCores:       c.hashCores[i],
			Cores:           c.cfg.CoresPerShard,
			HighPrioWeight:  c.shardHPWeight[i],
			PendingHighPrio: c.hpPending[i],
		})
	}
	return vs
}

// getSlot takes a pooled operation slot (allocating, with its prebuilt
// finish callback, only on pool growth).
func (c *Cluster) getSlot() *pendingOp {
	op := c.freeSlots
	if op == nil {
		op = &pendingOp{}
		op.finish = func(out []byte, err error) {
			op.out, op.err = out, err
			op.took = op.sh.eng.Now() - op.sh.batchStart
			op.sh.opDone()
		}
		return op
	}
	c.freeSlots = op.next
	op.next = nil
	return op
}

// putSlot recycles a delivered slot.
func (c *Cluster) putSlot(op *pendingOp) {
	op.nonce, op.aad, op.data, op.tag = nil, nil, nil, nil
	op.run, op.cb, op.cbt = nil, nil, nil
	op.out, op.err = nil, nil
	op.sh = nil
	op.class, op.deadline, op.took = 0, 0, 0
	op.retain = false
	op.next = c.freeSlots
	c.freeSlots = op
}

// enqueue appends a filled slot to its shard's next batch and records it
// in the global delivery order. hp marks a high-priority (video/voice
// class) packet for the router's pending-depth signal.
func (c *Cluster) enqueue(slot *pendingOp, hp bool) *pendingOp {
	if c.closed {
		panic("cluster: operation submitted after Close")
	}
	shardID := slot.shard
	slot.sh = c.shards[shardID]
	slot.batch = c.subSeq[shardID] + 1
	c.perShard[shardID] = append(c.perShard[shardID], slot)
	c.order = append(c.order, slot)
	c.unpushed++
	c.bytesRouted[shardID].Add(uint64(slot.nbytes))
	if hp {
		c.hpPending[shardID]++
	}
	if c.unpushed >= c.cfg.BatchWindow {
		c.dispatch()
	}
	c.deliverReady()
	return slot
}

// dispatch pushes every non-empty per-shard queue onto its shard's
// submission ring as one batch. It only blocks when a ring is full
// (backpressure); it never waits for completion — that is Flush's job.
// Batch boundaries are a pure function of the enqueue sequence (every
// BatchWindow operations, plus explicit Flush points), so each shard sees
// exactly the batch partitioning the barrier-based dispatcher produced
// and its virtual timeline is unchanged.
func (c *Cluster) dispatch() {
	for i, sh := range c.shards {
		if len(c.perShard[i]) == 0 {
			continue
		}
		if !c.active {
			c.active = true
			c.activeStart = time.Now()
		}
		c.subSeq[i]++
		c.batches.Add(1)
		sh.sub <- batchMsg{ops: c.perShard[i], seq: c.subSeq[i]}
		c.perShard[i] = c.takeOps(sh)
		c.hpPending[i] = 0
	}
	c.unpushed = 0
}

// takeOps grabs a recycled batch slice from the shard, or grows a fresh
// one.
func (c *Cluster) takeOps(sh *shard) []*pendingOp {
	select {
	case ops := <-sh.freeOps:
		return ops
	default:
		return make([]*pendingOp, 0, c.cfg.BatchWindow)
	}
}

// deliverReady delivers every completed operation at the front of the
// global order (the sequence-numbered merge of the per-shard completion
// streams), on the caller's goroutine. Safe to call opportunistically;
// re-entry from inside a callback is a no-op (the outer loop finishes the
// job).
func (c *Cluster) deliverReady() {
	if c.delivering {
		return
	}
	c.delivering = true
	c.deliverLoop()
	c.delivering = false
}

// deliverLoop is deliverReady's body; barrier calls it directly so a
// nested Flush inside a callback (e.g. a synchronous Session.Encrypt)
// still delivers its own results. Each iteration re-reads the cursor, so
// nested delivery composes: a slot is popped exactly once.
func (c *Cluster) deliverLoop() {
	for c.ordHead < len(c.order) {
		slot := c.order[c.ordHead]
		if slot.sh.completed.Load() < slot.batch {
			break
		}
		c.order[c.ordHead] = nil
		c.ordHead++
		// Count delivered bytes before the callback, so a callback
		// reading Metrics sees its own packet accounted for.
		if slot.err == nil {
			c.bytesDone[slot.shard].Add(uint64(slot.nbytes))
		}
		if slot.kind != opGeneric {
			c.verdicts[verdictIndex(slot.err)].Add(1)
		}
		cb, cbt, out, took, err := slot.cb, slot.cbt, slot.out, slot.took, slot.err
		if !slot.retain {
			c.putSlot(slot)
		}
		if cb != nil {
			cb(out, err)
		} else if cbt != nil {
			cbt(out, took, err)
		}
	}
	if c.ordHead == len(c.order) {
		c.order = c.order[:0]
		c.ordHead = 0
		c.checkQuiescent()
	}
}

// checkQuiescent closes the current wall-clock accounting interval once
// every pushed batch has completed and been delivered.
func (c *Cluster) checkQuiescent() {
	if !c.active {
		return
	}
	for i, sh := range c.shards {
		if sh.completed.Load() < c.subSeq[i] {
			return
		}
	}
	c.active = false
	was := math.Float64frombits(c.wallSeconds.Load())
	c.wallSeconds.Store(math.Float64bits(was + time.Since(c.activeStart).Seconds()))
}

// Flush dispatches everything queued, waits for every shard to drain its
// ring, then delivers all remaining completion callbacks in enqueue order
// on the caller's goroutine.
func (c *Cluster) Flush() {
	if c.unpushed == 0 && c.ordHead == len(c.order) {
		return
	}
	c.dispatch()
	c.barrier()
}

// barrier waits until every shard has completed every batch pushed so
// far, then delivers the backlog.
func (c *Cluster) barrier() {
	for i, sh := range c.shards {
		target := c.subSeq[i]
		for sh.completed.Load() < target {
			<-sh.notify
		}
	}
	c.flushes.Add(1)
	c.deliverLoop()
}

// OpenSpec parameterizes Open.
type OpenSpec struct {
	Suite core.Suite
	// KeyLen is the session-key length in bytes (16, 24 or 32); 0 for
	// Whirlpool/hash sessions, which need no key material.
	KeyLen int
	// Weight is the session's expected relative load, used by the
	// least-loaded and family-affinity routers to balance placement
	// before any traffic has flowed (default 1).
	Weight int
}

// Open provisions a session key, routes the session to a shard and opens
// a device channel there. Open flushes any queued operations first.
func (c *Cluster) Open(spec OpenSpec) (*Session, error) {
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	isHash := spec.Suite.Family == cryptocore.FamilyHash
	if isHash {
		spec.KeyLen = 0
	} else {
		switch spec.KeyLen {
		case 16, 24, 32:
		default:
			return nil, fmt.Errorf("cluster: invalid key length %d (want 16, 24 or 32)", spec.KeyLen)
		}
	}
	c.Flush()
	class := qos.ClassForPriority(spec.Suite.Priority)
	ses := &Session{
		cl:     c,
		id:     c.nextSession,
		suite:  spec.Suite,
		keyLen: spec.KeyLen,
		weight: spec.Weight,
		class:  class,
		hp:     class.HighPriority(),
	}
	if !isHash {
		c.genKey(ses.key[:ses.keyLen])
	}
	shardID := c.router.Route(ses.info(), c.views())
	if shardID < 0 {
		if isHash {
			return nil, fmt.Errorf("cluster: no shard has a Whirlpool-reconfigured core (run Reconfigure first)")
		}
		return nil, fmt.Errorf("cluster: no shard can serve family %v", spec.Suite.Family)
	}
	slot := c.openOn(ses, shardID)
	c.Flush()
	err, ch := slot.err, slot.chOut
	c.putSlot(slot)
	if err != nil {
		return nil, err
	}
	c.nextSession++
	ses.shardID = shardID
	ses.chID = ch
	c.sessions[ses.id] = ses
	c.shardSessions[shardID].Add(1)
	c.shardWeight[shardID] += ses.weight
	if ses.hp {
		c.shardHPWeight[shardID] += ses.weight
	}
	return ses, nil
}

// openOn enqueues the install-key + OPEN composite on a shard. The
// returned slot is retained past delivery; the caller reads its result
// after a Flush and releases it.
func (c *Cluster) openOn(ses *Session, shardID int) *pendingOp {
	key := ses.key[:ses.keyLen]
	suite := ses.suite
	slot := c.getSlot()
	slot.kind = opGeneric
	slot.retain = true
	slot.shard = shardID
	slot.nbytes = 0
	slot.cb = nil
	slot.run = func(sh *shard, op *pendingOp, done func()) {
		keyID := 0
		if len(key) > 0 {
			id, err := sh.mc.InstallKey(key)
			if err != nil {
				op.err = err
				done()
				return
			}
			keyID = id
		}
		sh.cc.OpenChannel(suite, keyID, func(ch int, err error) {
			op.chOut, op.err = ch, err
			done()
		})
	}
	return c.enqueue(slot, false)
}

// info builds the router's view of the session.
func (s *Session) info() SessionInfo {
	h := fnv.New64a()
	if s.keyLen > 0 {
		h.Write(s.key[:s.keyLen])
	} else {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(s.id))
		h.Write(b[:])
	}
	return SessionInfo{ID: s.id, KeyHash: h.Sum64(), Family: s.suite.Family,
		Weight: s.weight, Priority: s.suite.Priority}
}

// ID returns the cluster-wide session ID.
func (s *Session) ID() int { return s.id }

// Shard returns the shard currently homing the session.
func (s *Session) Shard() int { return s.shardID }

// EncryptAsync queues one packet for the session's shard; cb runs on the
// caller's goroutine — in enqueue order, as soon as the batch that
// carries the packet has completed — receiving ciphertext||tag (GCM/CCM),
// the transformed data (CTR) or the MAC (CBC-MAC). nonce/aad/payload must
// stay untouched until cb runs; the result buffer is pooled and may be
// recycled by the callback with bufpool.PutBytes (retaining it is equally
// safe).
func (s *Session) EncryptAsync(nonce, aad, payload []byte, cb func([]byte, error)) {
	s.EncryptDeadlineAsync(nonce, aad, payload, 0, cb)
}

// EncryptDeadlineAsync is EncryptAsync with a relative virtual-time
// deadline budget (cycles from dispatch on the owning shard; 0 = none).
// Deadlines only act when the cluster runs per-shard shapers
// (Config.Shape): a packet still queued past its budget is dropped with
// qos.ErrExpired, a late completion ticks the class's DeadlineMisses.
func (s *Session) EncryptDeadlineAsync(nonce, aad, payload []byte, deadline sim.Time, cb func([]byte, error)) {
	c := s.cl
	slot := c.getSlot()
	slot.kind = opEncrypt
	slot.ch = s.chID
	slot.nonce, slot.aad, slot.data = nonce, aad, payload
	slot.class, slot.deadline = s.class, deadline
	slot.cb = cb
	slot.shard = s.shardID
	slot.nbytes = len(payload)
	c.enqueue(slot, s.hp)
}

// DecryptAsync queues one packet for verification and recovery; cb
// receives the plaintext or ErrAuth.
func (s *Session) DecryptAsync(nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	c := s.cl
	slot := c.getSlot()
	slot.kind = opDecrypt
	slot.ch = s.chID
	slot.nonce, slot.aad, slot.data, slot.tag = nonce, aad, ct, tag
	slot.class = s.class
	slot.cb = cb
	slot.shard = s.shardID
	slot.nbytes = len(ct)
	c.enqueue(slot, s.hp)
}

// EncryptWireAsync is EncryptDeadlineAsync for service-boundary callers:
// cb additionally receives the shard-side service latency — virtual
// cycles from the start of the batch that carried the packet to the
// packet's completion (or verdict). The server front end adds this to the
// client-side batching wait to report end-to-end wire latency.
func (s *Session) EncryptWireAsync(nonce, aad, payload []byte, deadline sim.Time, cb func([]byte, sim.Time, error)) {
	c := s.cl
	slot := c.getSlot()
	slot.kind = opEncrypt
	slot.ch = s.chID
	slot.nonce, slot.aad, slot.data = nonce, aad, payload
	slot.class, slot.deadline = s.class, deadline
	slot.cbt = cb
	slot.shard = s.shardID
	slot.nbytes = len(payload)
	c.enqueue(slot, s.hp)
}

// DecryptWireAsync is DecryptAsync with the same shard-side service
// latency reporting as EncryptWireAsync.
func (s *Session) DecryptWireAsync(nonce, aad, ct, tag []byte, cb func([]byte, sim.Time, error)) {
	c := s.cl
	slot := c.getSlot()
	slot.kind = opDecrypt
	slot.ch = s.chID
	slot.nonce, slot.aad, slot.data, slot.tag = nonce, aad, ct, tag
	slot.class = s.class
	slot.cbt = cb
	slot.shard = s.shardID
	slot.nbytes = len(ct)
	c.enqueue(slot, s.hp)
}

// SumAsync queues a Whirlpool digest on a hash session.
func (s *Session) SumAsync(msg []byte, cb func([]byte, error)) {
	c := s.cl
	slot := c.getSlot()
	slot.kind = opHash
	slot.ch = s.chID
	slot.data = msg
	slot.cb = cb
	slot.shard = s.shardID
	slot.nbytes = len(msg)
	c.enqueue(slot, s.hp)
}

// Encrypt is the synchronous form of EncryptAsync: it flushes the batch
// containing the packet and returns its result.
func (s *Session) Encrypt(nonce, aad, payload []byte) ([]byte, error) {
	var out []byte
	var err error
	s.EncryptAsync(nonce, aad, payload, func(o []byte, e error) { out, err = o, e })
	s.cl.Flush()
	return out, err
}

// Decrypt is the synchronous form of DecryptAsync.
func (s *Session) Decrypt(nonce, aad, ct, tag []byte) ([]byte, error) {
	var out []byte
	var err error
	s.DecryptAsync(nonce, aad, ct, tag, func(o []byte, e error) { out, err = o, e })
	s.cl.Flush()
	return out, err
}

// Sum is the synchronous form of SumAsync.
func (s *Session) Sum(msg []byte) ([]byte, error) {
	var out []byte
	var err error
	s.SumAsync(msg, func(o []byte, e error) { out, err = o, e })
	s.cl.Flush()
	return out, err
}

// closeOn enqueues a channel close; the returned slot is retained for the
// caller to read after a Flush.
func (c *Cluster) closeOn(shardID, ch int) *pendingOp {
	slot := c.getSlot()
	slot.kind = opGeneric
	slot.retain = true
	slot.shard = shardID
	slot.nbytes = 0
	slot.cb = nil
	slot.run = func(sh *shard, op *pendingOp, done func()) {
		sh.cc.CloseChannel(ch, func(err error) {
			op.err = err
			done()
		})
	}
	return c.enqueue(slot, false)
}

// Closed reports whether the session is gone — explicitly closed, or a
// crash casualty RehomeFrom could not place on any survivor.
func (s *Session) Closed() bool { return s.closed }

// Close drains outstanding work, closes the device channel and retires
// the session.
func (s *Session) Close() error {
	if s.closed {
		return fmt.Errorf("cluster: session %d already closed", s.id)
	}
	s.closed = true
	c := s.cl
	c.Flush()
	var err error
	if !c.quarantined[s.shardID] {
		// On a quarantined shard the channel died with the shard; only
		// the front-end bookkeeping remains to retire.
		slot := c.closeOn(s.shardID, s.chID)
		c.Flush()
		err = slot.err
		c.putSlot(slot)
	}
	delete(c.sessions, s.id)
	c.shardSessions[s.shardID].Add(-1)
	c.shardWeight[s.shardID] -= s.weight
	if s.hp {
		c.shardHPWeight[s.shardID] -= s.weight
	}
	return err
}

// Rebalance re-routes every session under the current policy and load
// view, transparently re-opening moved sessions on their new shard (the
// session key is re-installed there; in-flight work is flushed first so
// no packet straddles the move). It returns the number of sessions moved.
//
// Re-homing is class-prioritized: voice sessions are routed first (they
// claim the best placements before anyone else), then video, data and
// background in that order, with session IDs breaking ties inside a
// class. Because the migration operations (key re-install + OPEN) are
// enqueued in the same order, a moving voice session's crossbar transfers
// also run ahead of any bulk session's — bulk migrations yield the
// crossbar to voice during the shuffle.
func (c *Cluster) Rebalance() int {
	c.Flush()
	ids := make([]int, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := c.sessions[ids[i]], c.sessions[ids[j]]
		if a.class != b.class {
			return a.class > b.class
		}
		return a.id < b.id
	})
	c.lastMoves = c.lastMoves[:0]
	type move struct {
		ses  *Session
		to   int
		open *pendingOp
	}
	var moves []move
	var closes []*pendingOp
	for _, id := range ids {
		ses := c.sessions[id]
		// Withdraw the session's own load while deciding, so a heavy
		// session is free to stay put.
		c.shardSessions[ses.shardID].Add(-1)
		c.shardWeight[ses.shardID] -= ses.weight
		if ses.hp {
			c.shardHPWeight[ses.shardID] -= ses.weight
		}
		to := c.router.Route(ses.info(), c.views())
		if to < 0 {
			to = ses.shardID
		}
		c.shardSessions[to].Add(1)
		c.shardWeight[to] += ses.weight
		if ses.hp {
			c.shardHPWeight[to] += ses.weight
		}
		if to == ses.shardID {
			continue
		}
		c.lastMoves = append(c.lastMoves, ses.id)
		if !c.quarantined[ses.shardID] {
			// A quarantined shard's channel state is lost — there is
			// nothing to close there (and nothing should be enqueued on a
			// corpse).
			closes = append(closes, c.closeOn(ses.shardID, ses.chID))
		}
		moves = append(moves, move{ses: ses, to: to, open: c.openOn(ses, to)})
	}
	c.Flush()
	for _, slot := range closes {
		c.putSlot(slot) // the close verdict is irrelevant on a move
	}
	for _, m := range moves {
		if m.open.err != nil {
			panic(fmt.Sprintf("cluster: rebalance could not re-open session %d on shard %d: %v",
				m.ses.id, m.to, m.open.err))
		}
		m.ses.shardID = m.to
		m.ses.chID = m.open.chOut
		c.putSlot(m.open)
	}
	return len(moves)
}

// Reconfigure rewrites one core's reconfigurable region on one shard
// (streaming the partial bitstream from src, as in the paper's §VII.B)
// and then rebalances: sessions whose preferred shard changed — hash
// sessions gaining a Whirlpool home, AES sessions fleeing a shard that
// just lost a core — are re-homed transparently. It returns the swap's
// virtual duration and the number of sessions moved.
func (c *Cluster) Reconfigure(shardID, coreID int, target reconfig.Engine, src reconfig.Source) (sim.Time, int, error) {
	op, err := c.BeginReconfigure(shardID, coreID, target, src)
	if err != nil {
		return 0, 0, err
	}
	took, err := op.Wait()
	if err != nil {
		return 0, 0, err
	}
	moved := c.Rebalance()
	return took, moved, nil
}

// LastMoves returns the session IDs the most recent Rebalance moved, in
// re-homing order (voice sessions first). The slice is reused by the next
// Rebalance.
func (c *Cluster) LastMoves() []int { return c.lastMoves }

// Shaped reports whether the cluster runs per-shard QoS shapers.
func (c *Cluster) Shaped() bool { return c.cfg.Shape }

// ShardClassStats returns one shard's per-class shaper counters, highest
// priority first (nil without Config.Shape). It flushes first: the shard
// must be idle for the front end to read its shaper.
func (c *Cluster) ShardClassStats(shard int) []qos.ClassStats {
	if !c.cfg.Shape || shard < 0 || shard >= len(c.shards) {
		return nil
	}
	c.Flush()
	return c.shards[shard].shaper.AllStats()
}

// ClassStats aggregates per-class shaper counters across every shard,
// highest priority first (nil without Config.Shape). Counters are summed;
// the virtual-time interval fields are left zero because shard timelines
// are independent — use ClassLatencyPercentile for cross-shard latency.
func (c *Cluster) ClassStats() []qos.ClassStats {
	if !c.cfg.Shape {
		return nil
	}
	c.Flush()
	out := make([]qos.ClassStats, 0, qos.NumClasses)
	for _, class := range qos.Classes() {
		agg := qos.ClassStats{Class: class}
		for _, sh := range c.shards {
			agg.Accumulate(sh.shaper.Stats(class))
		}
		out = append(out, agg)
	}
	return out
}

// ClassLatencyPercentile merges every shard's enqueue-to-completion
// latency samples for a class and returns the p-th nearest-rank
// percentile in cycles (0 without Config.Shape or samples). Samples are
// durations, so they compare across independent shard timelines.
func (c *Cluster) ClassLatencyPercentile(class qos.Class, p float64) sim.Time {
	if !c.cfg.Shape {
		return 0
	}
	c.Flush()
	var samples []sim.Time
	for _, sh := range c.shards {
		samples = sh.shaper.AppendLatencySamples(class, samples)
	}
	return qos.PercentileOf(samples, p)
}

// checkReconfigLeavesHomes refuses a swap that would strand an open
// session with no eligible shard anywhere (e.g. converting the cluster's
// last Whirlpool core back to AES while hash sessions are open): a
// stranded session's next packet could never complete. Safe to read the
// shard's engine map here — the caller flushed, so the shard goroutine is
// idle.
func (c *Cluster) checkReconfigLeavesHomes(shardID, coreID int, target reconfig.Engine) error {
	sh := c.shards[shardID]
	if coreID < 0 || coreID >= len(sh.dev.Engines) {
		return nil // let the reconfiguration controller report the bad core ID
	}
	after := make([]int, c.cfg.Shards)
	copy(after, c.hashCores)
	wasHash := sh.dev.Engines[coreID] == scheduler.EngineHash
	if target == reconfig.EngineWhirlpool && !wasHash {
		after[shardID]++
	} else if target == reconfig.EngineAES && wasHash {
		after[shardID]--
	}
	hashHomes, aesHomes := 0, 0
	for _, n := range after {
		if n > 0 {
			hashHomes++
		}
		if c.cfg.CoresPerShard-n > 0 {
			aesHomes++
		}
	}
	// Find the lowest-ID stranded session (stable error message).
	stranded, strandedHash := -1, false
	for _, ses := range c.sessions {
		isHash := ses.suite.Family == cryptocore.FamilyHash
		if (isHash && hashHomes == 0) || (!isHash && aesHomes == 0) {
			if stranded < 0 || ses.id < stranded {
				stranded, strandedHash = ses.id, isHash
			}
		}
	}
	if stranded >= 0 {
		engine := "AES"
		if strandedHash {
			engine = "Whirlpool"
		}
		return fmt.Errorf("cluster: reconfiguring shard %d core %d to %v would strand open session %d (no %s core would remain)",
			shardID, coreID, target, stranded, engine)
	}
	return nil
}
