// Package cluster runs N independent MCCP platforms ("shards") behind a
// single front end, the first layer of the sharded service architecture
// the ROADMAP calls for. Each shard owns a full simulated device — its
// own discrete-event engine, four cryptographic cores, task/key
// schedulers, crossbar and radio controllers — and is driven by a
// dedicated goroutine, so shards execute concurrently in wall-clock time
// while every shard's virtual timeline stays byte-for-byte deterministic.
//
// The front end provides:
//
//   - pluggable routing policies (hash-by-key, least-loaded,
//     family-affinity, qos-aware) that decide which shard homes each
//     session;
//   - an asynchronous batch dispatcher that coalesces submitted packets
//     per shard and drains each shard's engine once per batch instead of
//     once per packet;
//   - session management that opens a device channel on the owning shard
//     and transparently re-opens it elsewhere when Rebalance or a shard's
//     reconfiguration makes another home preferable;
//   - an aggregated Metrics snapshot: per-shard and total packets,
//     simulated Mbps at virtual time, and the host-side wall-clock
//     throughput of the simulation itself.
//
// The Cluster front end is single-caller: one goroutine submits work and
// reads results (the shard goroutines are the concurrency). All
// completion callbacks run on the caller's goroutine, in enqueue order.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/radio"
	"mccp/internal/reconfig"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// Config sizes a Cluster.
type Config struct {
	// Shards is the number of independent MCCP platforms (default 2).
	Shards int
	// CoresPerShard sizes each shard's device (default 4, the paper's
	// implementation).
	CoresPerShard int
	// Router selects the session-routing policy by name (default
	// hash-by-key).
	Router string
	// Policy selects each shard's device-level dispatch policy by name
	// (default first-idle).
	Policy string
	// QueueRequests enables the §VIII QoS extension on every shard.
	QueueRequests bool
	// MaxQueue bounds each shard's device request queue when
	// QueueRequests is on (0 = unbounded); overflow is shed with an
	// explicit verdict and counted per shard (see core.Config.MaxQueue).
	MaxQueue int
	// Seed drives deterministic key generation across the cluster.
	Seed uint64
	// BatchWindow is the number of queued operations that triggers an
	// automatic Flush (default 32). Explicit Flush is always allowed.
	BatchWindow int
	// ShardWindow bounds the packets a shard keeps in flight within one
	// batch, pipelining oversized batches instead of saturating the
	// device. Default: 2 x CoresPerShard with QueueRequests on;
	// CoresPerShard with it off, where any oversubscription draws the
	// paper's error flag the instant all cores are busy (a window above
	// the core count with queueing off is allowed, but rejects are then
	// expected behaviour — split-CCM suites halve the effective capacity
	// and should run with queueing on).
	ShardWindow int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.CoresPerShard <= 0 {
		c.CoresPerShard = 4
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 32
	}
	if c.ShardWindow <= 0 {
		if c.QueueRequests {
			c.ShardWindow = 2 * c.CoresPerShard
		} else {
			c.ShardWindow = c.CoresPerShard
		}
	}
}

// pendingOp is one queued operation's result slot. The shard goroutine
// fills out/ch/took/err during Flush; the front end reads them after the
// batch barrier (shard and nbytes are set at enqueue time, for the
// delivered-bytes accounting).
type pendingOp struct {
	out    []byte
	ch     int
	took   sim.Time
	err    error
	cb     func([]byte, error)
	shard  int
	nbytes int
}

// Session is a cluster-level channel: a cipher suite bound to a session
// key, homed on one shard (and re-homed by Rebalance when profitable).
type Session struct {
	cl     *Cluster
	id     int
	suite  core.Suite
	keyLen int
	key    []byte
	weight int

	// hp marks a high-priority (video/voice class) session; the qos-aware
	// router balances these separately.
	hp bool

	shardID int
	chID    int // device channel ID on the owning shard
	closed  bool
}

// Cluster is the sharded multi-MCCP front end.
type Cluster struct {
	cfg    Config
	router Router
	shards []*shard

	sessions    map[int]*Session
	nextSession int

	// Per-shard routing state, owned by the front end. bytesRouted is the
	// offered load (routing signal, counted at enqueue); bytesDone counts
	// only payload bytes whose operation completed without error.
	shardSessions []int
	shardWeight   []int
	// shardHPWeight sums the weights of open high-priority sessions per
	// shard; hpPending counts high-priority operations queued for each
	// shard's next batch (cleared by Flush). Both feed the qos-aware
	// router.
	shardHPWeight []int
	hpPending     []int
	bytesRouted   []uint64
	bytesDone     []uint64
	hashCores     []int

	// Batch queues: perShard feeds the dispatcher, order preserves the
	// global enqueue sequence for callback delivery.
	perShard [][]shardOp
	order    []*pendingOp

	keys *radio.Keystream

	flushes     uint64
	batches     uint64
	wallSeconds float64
	closed      bool
}

// New builds and starts a Cluster; every shard's firmware is settled and
// its goroutine running when New returns.
func New(cfg Config) (*Cluster, error) {
	cfg.fill()
	router, err := RouterByName(cfg.Router)
	if err != nil {
		return nil, err
	}
	if _, err := scheduler.ByName(cfg.Policy); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:           cfg,
		router:        router,
		sessions:      make(map[int]*Session),
		nextSession:   1,
		shardSessions: make([]int, cfg.Shards),
		shardWeight:   make([]int, cfg.Shards),
		shardHPWeight: make([]int, cfg.Shards),
		hpPending:     make([]int, cfg.Shards),
		bytesRouted:   make([]uint64, cfg.Shards),
		bytesDone:     make([]uint64, cfg.Shards),
		hashCores:     make([]int, cfg.Shards),
		perShard:      make([][]shardOp, cfg.Shards),
		keys:          radio.NewKeystream(cfg.Seed ^ 0xC1A5731D),
	}
	for i := 0; i < cfg.Shards; i++ {
		pol, _ := scheduler.ByName(cfg.Policy) // fresh instance per shard
		c.shards = append(c.shards, newShard(i, cfg, pol))
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// RouterName returns the active routing policy's name.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Close flushes outstanding work and stops every shard goroutine. The
// cluster must not be used afterwards.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.Flush()
	c.closed = true
	for _, sh := range c.shards {
		close(sh.work)
		<-sh.done
	}
}

// genKey produces deterministic session-key bytes from the cluster's
// keystream. The front end generates keys itself (rather than per-shard
// ProvisionKey) because the router hashes the key bytes before a shard
// is chosen, and a re-homed session must carry its key to the new shard.
func (c *Cluster) genKey(n int) []byte {
	key := make([]byte, n)
	for i := range key {
		key[i] = c.keys.Next()
	}
	return key
}

// views snapshots per-shard routing state for the router.
func (c *Cluster) views() []ShardView {
	vs := make([]ShardView, c.cfg.Shards)
	for i := range vs {
		vs[i] = ShardView{
			ID:              i,
			Sessions:        c.shardSessions[i],
			SessionWeight:   c.shardWeight[i],
			Bytes:           c.bytesRouted[i],
			HashCores:       c.hashCores[i],
			Cores:           c.cfg.CoresPerShard,
			HighPrioWeight:  c.shardHPWeight[i],
			PendingHighPrio: c.hpPending[i],
		}
	}
	return vs
}

// enqueue appends an operation to a shard's next batch and records it in
// the global callback order. hp marks a high-priority (video/voice class)
// packet for the router's pending-depth signal.
func (c *Cluster) enqueue(shardID, nbytes int, hp bool, cb func([]byte, error),
	start func(sh *shard, slot *pendingOp, done func())) *pendingOp {
	if c.closed {
		panic("cluster: operation submitted after Close")
	}
	slot := &pendingOp{cb: cb, shard: shardID, nbytes: nbytes}
	c.perShard[shardID] = append(c.perShard[shardID], func(sh *shard, done func()) {
		start(sh, slot, done)
	})
	c.order = append(c.order, slot)
	c.bytesRouted[shardID] += uint64(nbytes)
	if hp {
		c.hpPending[shardID]++
	}
	if len(c.order) >= c.cfg.BatchWindow {
		c.Flush()
	}
	return slot
}

// Flush dispatches every queued operation as one batch per shard, runs
// the shards concurrently to completion, then delivers completion
// callbacks in enqueue order on the caller's goroutine.
func (c *Cluster) Flush() {
	if len(c.order) == 0 {
		return
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		if len(c.perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		c.batches++
		sh.work <- batch{ops: c.perShard[i], wg: &wg}
		c.perShard[i] = nil
		c.hpPending[i] = 0
	}
	wg.Wait()
	c.wallSeconds += time.Since(start).Seconds()
	c.flushes++
	order := c.order
	c.order = nil
	// Count delivered bytes before delivering callbacks, so a callback
	// reading Metrics sees its own batch accounted for.
	for _, slot := range order {
		if slot.err == nil {
			c.bytesDone[slot.shard] += uint64(slot.nbytes)
		}
	}
	for _, slot := range order {
		if slot.cb != nil {
			slot.cb(slot.out, slot.err)
		}
	}
}

// OpenSpec parameterizes Open.
type OpenSpec struct {
	Suite core.Suite
	// KeyLen is the session-key length in bytes (16, 24 or 32); 0 for
	// Whirlpool/hash sessions, which need no key material.
	KeyLen int
	// Weight is the session's expected relative load, used by the
	// least-loaded and family-affinity routers to balance placement
	// before any traffic has flowed (default 1).
	Weight int
}

// Open provisions a session key, routes the session to a shard and opens
// a device channel there. Open flushes any queued operations first.
func (c *Cluster) Open(spec OpenSpec) (*Session, error) {
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	isHash := spec.Suite.Family == cryptocore.FamilyHash
	if isHash {
		spec.KeyLen = 0
	} else {
		switch spec.KeyLen {
		case 16, 24, 32:
		default:
			return nil, fmt.Errorf("cluster: invalid key length %d (want 16, 24 or 32)", spec.KeyLen)
		}
	}
	c.Flush()
	ses := &Session{
		cl:     c,
		id:     c.nextSession,
		suite:  spec.Suite,
		keyLen: spec.KeyLen,
		weight: spec.Weight,
		hp:     qos.ClassForPriority(spec.Suite.Priority).HighPriority(),
	}
	if !isHash {
		ses.key = c.genKey(spec.KeyLen)
	}
	shardID := c.router.Route(ses.info(), c.views())
	if shardID < 0 {
		if isHash {
			return nil, fmt.Errorf("cluster: no shard has a Whirlpool-reconfigured core (run Reconfigure first)")
		}
		return nil, fmt.Errorf("cluster: no shard can serve family %v", spec.Suite.Family)
	}
	slot := c.openOn(ses, shardID)
	c.Flush()
	if slot.err != nil {
		return nil, slot.err
	}
	c.nextSession++
	ses.shardID = shardID
	ses.chID = slot.ch
	c.sessions[ses.id] = ses
	c.shardSessions[shardID]++
	c.shardWeight[shardID] += ses.weight
	if ses.hp {
		c.shardHPWeight[shardID] += ses.weight
	}
	return ses, nil
}

// openOn enqueues the install-key + OPEN composite on a shard.
func (c *Cluster) openOn(ses *Session, shardID int) *pendingOp {
	key := ses.key
	suite := ses.suite
	return c.enqueue(shardID, 0, false, nil, func(sh *shard, slot *pendingOp, done func()) {
		keyID := 0
		if len(key) > 0 {
			id, err := sh.mc.InstallKey(key)
			if err != nil {
				slot.err = err
				done()
				return
			}
			keyID = id
		}
		sh.cc.OpenChannel(suite, keyID, func(ch int, err error) {
			slot.ch, slot.err = ch, err
			done()
		})
	})
}

// info builds the router's view of the session.
func (s *Session) info() SessionInfo {
	h := fnv.New64a()
	if len(s.key) > 0 {
		h.Write(s.key)
	} else {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(s.id))
		h.Write(b[:])
	}
	return SessionInfo{ID: s.id, KeyHash: h.Sum64(), Family: s.suite.Family,
		Weight: s.weight, Priority: s.suite.Priority}
}

// ID returns the cluster-wide session ID.
func (s *Session) ID() int { return s.id }

// Shard returns the shard currently homing the session.
func (s *Session) Shard() int { return s.shardID }

// EncryptAsync queues one packet for the session's shard; cb runs during
// the Flush that completes it, receiving ciphertext||tag (GCM/CCM), the
// transformed data (CTR) or the MAC (CBC-MAC).
func (s *Session) EncryptAsync(nonce, aad, payload []byte, cb func([]byte, error)) {
	ch := s.chID
	s.cl.enqueue(s.shardID, len(payload), s.hp, cb, func(sh *shard, slot *pendingOp, done func()) {
		sh.cc.Encrypt(ch, nonce, aad, payload, func(out []byte, err error) {
			slot.out, slot.err = out, err
			done()
		})
	})
}

// DecryptAsync queues one packet for verification and recovery; cb
// receives the plaintext or ErrAuth.
func (s *Session) DecryptAsync(nonce, aad, ct, tag []byte, cb func([]byte, error)) {
	ch := s.chID
	s.cl.enqueue(s.shardID, len(ct), s.hp, cb, func(sh *shard, slot *pendingOp, done func()) {
		sh.cc.Decrypt(ch, nonce, aad, ct, tag, func(out []byte, err error) {
			slot.out, slot.err = out, err
			done()
		})
	})
}

// SumAsync queues a Whirlpool digest on a hash session.
func (s *Session) SumAsync(msg []byte, cb func([]byte, error)) {
	ch := s.chID
	s.cl.enqueue(s.shardID, len(msg), s.hp, cb, func(sh *shard, slot *pendingOp, done func()) {
		sh.cc.Hash(ch, msg, func(out []byte, err error) {
			slot.out, slot.err = out, err
			done()
		})
	})
}

// Encrypt is the synchronous form of EncryptAsync: it flushes the batch
// containing the packet and returns its result.
func (s *Session) Encrypt(nonce, aad, payload []byte) ([]byte, error) {
	var out []byte
	var err error
	s.EncryptAsync(nonce, aad, payload, func(o []byte, e error) { out, err = o, e })
	s.cl.Flush()
	return out, err
}

// Decrypt is the synchronous form of DecryptAsync.
func (s *Session) Decrypt(nonce, aad, ct, tag []byte) ([]byte, error) {
	var out []byte
	var err error
	s.DecryptAsync(nonce, aad, ct, tag, func(o []byte, e error) { out, err = o, e })
	s.cl.Flush()
	return out, err
}

// Sum is the synchronous form of SumAsync.
func (s *Session) Sum(msg []byte) ([]byte, error) {
	var out []byte
	var err error
	s.SumAsync(msg, func(o []byte, e error) { out, err = o, e })
	s.cl.Flush()
	return out, err
}

// Close drains outstanding work, closes the device channel and retires
// the session.
func (s *Session) Close() error {
	if s.closed {
		return fmt.Errorf("cluster: session %d already closed", s.id)
	}
	s.closed = true
	c := s.cl
	c.Flush()
	ch := s.chID
	slot := c.enqueue(s.shardID, 0, false, nil, func(sh *shard, slot *pendingOp, done func()) {
		sh.cc.CloseChannel(ch, func(err error) {
			slot.err = err
			done()
		})
	})
	c.Flush()
	delete(c.sessions, s.id)
	c.shardSessions[s.shardID]--
	c.shardWeight[s.shardID] -= s.weight
	if s.hp {
		c.shardHPWeight[s.shardID] -= s.weight
	}
	return slot.err
}

// Rebalance re-routes every session under the current policy and load
// view, transparently re-opening moved sessions on their new shard (the
// session key is re-installed there; in-flight work is flushed first so
// no packet straddles the move). It returns the number of sessions moved.
func (c *Cluster) Rebalance() int {
	c.Flush()
	ids := make([]int, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	type move struct {
		ses  *Session
		to   int
		open *pendingOp
	}
	var moves []move
	for _, id := range ids {
		ses := c.sessions[id]
		// Withdraw the session's own load while deciding, so a heavy
		// session is free to stay put.
		c.shardSessions[ses.shardID]--
		c.shardWeight[ses.shardID] -= ses.weight
		if ses.hp {
			c.shardHPWeight[ses.shardID] -= ses.weight
		}
		to := c.router.Route(ses.info(), c.views())
		if to < 0 {
			to = ses.shardID
		}
		c.shardSessions[to]++
		c.shardWeight[to] += ses.weight
		if ses.hp {
			c.shardHPWeight[to] += ses.weight
		}
		if to == ses.shardID {
			continue
		}
		from, ch := ses.shardID, ses.chID
		c.enqueue(from, 0, false, nil, func(sh *shard, slot *pendingOp, done func()) {
			sh.cc.CloseChannel(ch, func(err error) {
				slot.err = err
				done()
			})
		})
		moves = append(moves, move{ses: ses, to: to, open: c.openOn(ses, to)})
	}
	c.Flush()
	for _, m := range moves {
		if m.open.err != nil {
			panic(fmt.Sprintf("cluster: rebalance could not re-open session %d on shard %d: %v",
				m.ses.id, m.to, m.open.err))
		}
		m.ses.shardID = m.to
		m.ses.chID = m.open.ch
	}
	return len(moves)
}

// Reconfigure rewrites one core's reconfigurable region on one shard
// (streaming the partial bitstream from src, as in the paper's §VII.B)
// and then rebalances: sessions whose preferred shard changed — hash
// sessions gaining a Whirlpool home, AES sessions fleeing a shard that
// just lost a core — are re-homed transparently. It returns the swap's
// virtual duration and the number of sessions moved.
func (c *Cluster) Reconfigure(shardID, coreID int, target reconfig.Engine, src reconfig.Source) (sim.Time, int, error) {
	if shardID < 0 || shardID >= c.cfg.Shards {
		return 0, 0, fmt.Errorf("cluster: no shard %d", shardID)
	}
	c.Flush()
	if err := c.checkReconfigLeavesHomes(shardID, coreID, target); err != nil {
		return 0, 0, err
	}
	slot := c.enqueue(shardID, 0, false, nil, func(sh *shard, slot *pendingOp, done func()) {
		sh.rc.Reconfigure(coreID, target, src, func(took sim.Time, err error) {
			slot.took, slot.err = took, err
			done()
		})
	})
	c.Flush()
	if slot.err != nil {
		return 0, 0, slot.err
	}
	c.hashCores[shardID] = c.shards[shardID].hashCores()
	moved := c.Rebalance()
	return slot.took, moved, nil
}

// checkReconfigLeavesHomes refuses a swap that would strand an open
// session with no eligible shard anywhere (e.g. converting the cluster's
// last Whirlpool core back to AES while hash sessions are open): a
// stranded session's next packet could never complete. Safe to read the
// shard's engine map here — the caller flushed, so the shard goroutine is
// idle.
func (c *Cluster) checkReconfigLeavesHomes(shardID, coreID int, target reconfig.Engine) error {
	sh := c.shards[shardID]
	if coreID < 0 || coreID >= len(sh.dev.Engines) {
		return nil // let the reconfiguration controller report the bad core ID
	}
	after := make([]int, c.cfg.Shards)
	copy(after, c.hashCores)
	wasHash := sh.dev.Engines[coreID] == scheduler.EngineHash
	if target == reconfig.EngineWhirlpool && !wasHash {
		after[shardID]++
	} else if target == reconfig.EngineAES && wasHash {
		after[shardID]--
	}
	hashHomes, aesHomes := 0, 0
	for _, n := range after {
		if n > 0 {
			hashHomes++
		}
		if c.cfg.CoresPerShard-n > 0 {
			aesHomes++
		}
	}
	// Find the lowest-ID stranded session (stable error message).
	stranded, strandedHash := -1, false
	for _, ses := range c.sessions {
		isHash := ses.suite.Family == cryptocore.FamilyHash
		if (isHash && hashHomes == 0) || (!isHash && aesHomes == 0) {
			if stranded < 0 || ses.id < stranded {
				stranded, strandedHash = ses.id, isHash
			}
		}
	}
	if stranded >= 0 {
		engine := "AES"
		if strandedHash {
			engine = "Whirlpool"
		}
		return fmt.Errorf("cluster: reconfiguring shard %d core %d to %v would strand open session %d (no %s core would remain)",
			shardID, coreID, target, stranded, engine)
	}
	return nil
}
