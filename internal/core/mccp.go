// Package core implements the paper's primary contribution: the
// reconfigurable Multi-Core Crypto-Processor (MCCP). It assembles N
// Cryptographic Cores (default four, as in the paper's implementation), the
// Task Scheduler with its OPEN/CLOSE/ENCRYPT/DECRYPT/RETRIEVE_DATA/
// TRANSFER_DONE control protocol, the Key Scheduler and Key Memory, the
// Cross Bar, the inter-core shift-register ring and the Data Available
// interrupt toward the communication controller.
package core

import (
	"fmt"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/crossbar"
	"mccp/internal/cryptocore"
	"mccp/internal/keysched"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// Task Scheduler instruction costs, in clock cycles. The scheduler is "a
// simple 8-bit controller which executes the task scheduling software"
// (§III.A) at two cycles per instruction; the constants model the
// instruction counts of each protocol handler.
const (
	CostOpen         = 40
	CostClose        = 24
	CostDispatch     = 36 // ENCRYPT/DECRYPT decode + core selection
	CostParamWrite   = 16 // mode/count/mask parameter writes + start strobe
	CostRetrieve     = 16
	CostTransferDone = 12
	CostIRQ          = 2
)

// Errors returned through the 8-bit Return Register.
var (
	ErrNoResources = fmt.Errorf("mccp: no idle cryptographic core (error flag)")
	ErrBadChannel  = fmt.Errorf("mccp: unknown or closed channel")
	ErrNoData      = fmt.Errorf("mccp: RETRIEVE_DATA with empty done queue")
	// ErrQueueFull is the bounded-queue verdict of the QoS extension: the
	// request queue hit Config.MaxQueue, so the request was shed rather
	// than queued unboundedly (distinct from ErrNoResources, the paper's
	// error flag with queueing disabled entirely).
	ErrQueueFull = fmt.Errorf("mccp: request queue full (load shed)")
)

// Suite is a channel's cryptographic configuration.
type Suite struct {
	Family cryptocore.Family
	// TagLen is the authentication tag length in bytes (GCM/CCM).
	TagLen int
	// SplitCCM requests the two-core CCM mapping when a core pair is idle.
	SplitCCM bool
	// Priority orders queued requests when the QoS extension is enabled.
	Priority int
}

// Config sizes the device.
type Config struct {
	// Cores is the number of Cryptographic Cores (the paper implements 4;
	// "more or less than four cores may be implemented according to the
	// communication system requirements").
	Cores int
	// Policy selects the dispatch policy; nil means the paper's first-idle.
	Policy scheduler.Policy
	// QueueRequests enables the §VIII extension: instead of returning the
	// error flag when no core is idle, requests wait in a priority queue.
	QueueRequests bool
	// MaxQueue bounds the request queue when QueueRequests is enabled
	// (0 = unbounded). A request arriving at a full queue is shed with
	// ErrQueueFull and counted in Stats.Shed — backpressure with an
	// explicit verdict instead of unbounded memory growth.
	MaxQueue int
}

// channel is one open communication channel.
type channel struct {
	id    int
	suite Suite
	keyID int
}

// reqState tracks a request through the protocol.
type reqState int

const (
	reqProcessing reqState = iota // cores running (upload may still be going)
	reqDoneQueued                 // results in, waiting for RETRIEVE_DATA
	reqRetrieved                  // CC notified, draining output
)

// request is one in-flight ENCRYPT/DECRYPT.
type request struct {
	id      int
	ch      *channel
	cores   []int
	outCore int
	out     int // retrievable 32-bit words on success
	state   reqState
	tdAcked bool  // first TRANSFER_DONE (upload side) seen
	pending int   // cores still running
	code    uint8 // worst result code
	started sim.Time
	// doneAt records result arrival for latency metrics.
	doneAt sim.Time
}

// Assignment is what the ENCRYPT/DECRYPT done signal hands back to the
// communication controller: the request ID and the core mapping it needs
// to format and route the packet streams.
type Assignment struct {
	ReqID int
	// Tasks and CoreIDs are parallel: Tasks[i] runs on core CoreIDs[i].
	// For split CCM the CBC-MAC half is first, the CTR half second.
	Tasks   []cryptocore.Task
	CoreIDs []int
}

// Retrieval is RETRIEVE_DATA's return value.
type Retrieval struct {
	ReqID    int
	Code     uint8 // firmware.ResultOK or ResultAuthFail
	OutCore  int
	OutWords int
	// Latency is dispatch-to-result in cycles (for the latency benches).
	Latency sim.Time
}

// MCCP is the device.
type MCCP struct {
	Eng   *sim.Engine
	Cfg   Config
	Cores []*cryptocore.Core
	// Caches holds each core's Key Cache.
	Caches   []*keysched.Cache
	XBar     *crossbar.Crossbar
	KeyMem   *keysched.KeyMemory
	KeySched *keysched.Scheduler
	// Engines tracks what occupies each core's reconfigurable region
	// (scheduler.EngineAES / EngineHash); internal/reconfig rewrites it.
	Engines []string
	// Reconfiguring marks cores whose region is being rewritten; the
	// scheduler treats them as busy.
	Reconfiguring []bool

	// OnDataAvailable is the Data Available interrupt line to the
	// communication controller (raised when the done queue becomes
	// non-empty).
	OnDataAvailable func()

	policy    scheduler.Policy
	channels  map[int]*channel
	requests  map[int]*request
	nextCh    int
	nextReq   int
	allocated []bool // core allocation (held until TRANSFER_DONE)
	doneQ     []*request
	// waitQ is the QoS request queue; waitHead its consumed prefix (the
	// backing array is reused instead of re-sliced away, keeping the
	// queue-cycle allocation-free).
	waitQ    []*waiting
	waitHead int
	viewsBuf []scheduler.CoreView // reused per dispatch (single-threaded)

	// Stats aggregates device-level counters.
	Stats Stats
}

// Stats counts device activity. The three saturation outcomes are
// disjoint: Rejected is the paper's error flag (queueing disabled),
// Queued a request that waited in the QoS queue, Shed a request dropped
// because the bounded queue was full. internal/cluster aggregates the
// same three counters per shard, so the single-device and cluster views
// stay comparable.
type Stats struct {
	Opens, Submits, Retrieves uint64
	Rejected                  uint64 // error-flag returns (no resources)
	Queued                    uint64 // QoS extension: requests that waited
	Shed                      uint64 // QoS extension: bounded-queue drops
	AuthFails                 uint64
}

type waiting struct {
	ch      *channel
	encrypt bool
	aadLen  int
	dataLen int
	cb      func(Assignment, error)
	prio    int
	seq     int
}

// New builds an MCCP. The cores are joined by a shift-register ring
// (core i's output mailbox feeds core i+1 mod N).
func New(eng *sim.Engine, cfg Config) *MCCP {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.FirstIdle{}
	}
	m := &MCCP{
		Eng:      eng,
		Cfg:      cfg,
		XBar:     crossbar.New(eng),
		KeyMem:   keysched.NewKeyMemory(),
		policy:   cfg.Policy,
		channels: make(map[int]*channel),
		requests: make(map[int]*request),
		nextCh:   1,
		nextReq:  1,
	}
	m.KeySched = keysched.NewScheduler(eng, m.KeyMem)
	for i := 0; i < cfg.Cores; i++ {
		c := cryptocore.New(eng, i)
		m.Cores = append(m.Cores, c)
		m.Caches = append(m.Caches, keysched.NewCache())
		m.Engines = append(m.Engines, scheduler.EngineAES)
		m.Reconfiguring = append(m.Reconfiguring, false)
		m.allocated = append(m.allocated, false)
	}
	// Neighbouring cores are paired, as in the paper (each core "shares its
	// double port instruction memory with its right neighbouring
	// Cryptographic Core"); each pair is joined by a directional 4x32-bit
	// shift-register link in each direction. Two-core CCM uses the forward
	// link for the MAC and, on decryption, the reverse link to feed
	// recovered plaintext back to the CBC-MAC half.
	for i := 0; i+1 < cfg.Cores; i += 2 {
		fwd := sim.NewMailbox128(eng) // core i   -> core i+1
		rev := sim.NewMailbox128(eng) // core i+1 -> core i
		m.Cores[i].ConnectNeighbors(rev, fwd)
		m.Cores[i+1].ConnectNeighbors(fwd, rev)
	}
	return m
}

// views snapshots core state for the dispatch policy. The returned slice
// is reused across calls (the device is single-threaded and policies do
// not retain it).
func (m *MCCP) views(keyID int) []scheduler.CoreView {
	if m.viewsBuf == nil {
		m.viewsBuf = make([]scheduler.CoreView, len(m.Cores))
	}
	vs := m.viewsBuf
	for i := range m.Cores {
		vs[i] = scheduler.CoreView{
			ID:         i,
			Busy:       m.allocated[i] || m.Reconfiguring[i],
			HasKey:     m.Caches[i].Contains(keyID),
			Engine:     m.Engines[i],
			CachedKeys: m.Caches[i].Len(),
		}
	}
	return vs
}

// Open executes the OPEN instruction: it binds a channel to an algorithm
// suite and a session-key ID and returns the channel ID.
func (m *MCCP) Open(s Suite, keyID int, cb func(ch int, err error)) {
	m.Eng.After(CostOpen, func() {
		m.Stats.Opens++
		if s.Family != cryptocore.FamilyHash && !m.KeyMem.Has(keyID) {
			cb(0, fmt.Errorf("mccp: OPEN with unknown key ID %d", keyID))
			return
		}
		id := m.nextCh
		m.nextCh++
		m.channels[id] = &channel{id: id, suite: s, keyID: keyID}
		cb(id, nil)
	})
}

// Close executes the CLOSE instruction.
func (m *MCCP) Close(ch int, cb func(error)) {
	m.Eng.After(CostClose, func() {
		if _, ok := m.channels[ch]; !ok {
			cb(ErrBadChannel)
			return
		}
		delete(m.channels, ch)
		cb(nil)
	})
}

// Submit executes an ENCRYPT or DECRYPT instruction: plan the packet,
// select cores, stage keys, write parameters and start the firmware. The
// done signal delivers the Assignment the communication controller needs
// to upload the packet streams.
//
// With QueueRequests disabled this behaves exactly like the paper: if no
// suitable core is idle the error flag (ErrNoResources) comes back.
func (m *MCCP) Submit(ch int, encrypt bool, aadLen, dataLen int, cb func(Assignment, error)) {
	m.Eng.After(CostDispatch, func() {
		c, ok := m.channels[ch]
		if !ok {
			cb(Assignment{}, ErrBadChannel)
			return
		}
		m.Stats.Submits++
		m.tryDispatch(c, encrypt, aadLen, dataLen, cb, true)
	})
}

func (m *MCCP) tryDispatch(c *channel, encrypt bool, aadLen, dataLen int, cb func(Assignment, error), fresh bool) {
	tasks, err := cryptocore.PlanTasks(c.suite.Family, encrypt, c.suite.SplitCCM, aadLen, dataLen, c.suite.TagLen)
	if err != nil {
		cb(Assignment{}, err)
		return
	}
	req := scheduler.Request{
		Family:    c.suite.Family,
		WantSplit: c.suite.SplitCCM && len(tasks) == 2,
		KeyID:     c.keyID,
		Priority:  c.suite.Priority,
	}
	ids := m.policy.Pick(req, m.views(c.keyID))
	if ids == nil {
		if m.Cfg.QueueRequests {
			// Only fresh submissions are shed: a request re-tried from the
			// queue by pump keeps its admission.
			if fresh && m.Cfg.MaxQueue > 0 && len(m.waitQ)-m.waitHead >= m.Cfg.MaxQueue {
				m.Stats.Shed++
				cb(Assignment{}, ErrQueueFull)
				return
			}
			m.Stats.Queued++
			w := &waiting{ch: c, encrypt: encrypt, aadLen: aadLen, dataLen: dataLen,
				cb: cb, prio: c.suite.Priority, seq: len(m.waitQ) - m.waitHead}
			m.enqueue(w)
			return
		}
		m.Stats.Rejected++
		cb(Assignment{}, ErrNoResources)
		return
	}
	// The policy may have downgraded a split request to one core.
	if len(ids) == 1 && len(tasks) == 2 {
		tasks, err = cryptocore.PlanTasks(c.suite.Family, encrypt, false, aadLen, dataLen, c.suite.TagLen)
		if err != nil {
			cb(Assignment{}, err)
			return
		}
	}
	for _, id := range ids {
		m.allocated[id] = true
	}
	m.stageKeysAndStart(c, tasks, ids, cb)
}

func (m *MCCP) enqueue(w *waiting) {
	// Priority queue: higher priority first, FIFO within a priority. The
	// live window is waitQ[waitHead:]; the consumed prefix is reused.
	at := len(m.waitQ)
	for i := m.waitHead; i < len(m.waitQ); i++ {
		if w.prio > m.waitQ[i].prio {
			at = i
			break
		}
	}
	m.waitQ = append(m.waitQ, nil)
	copy(m.waitQ[at+1:], m.waitQ[at:])
	m.waitQ[at] = w
}

// stageKeysAndStart loads round keys into every engaged core's Key Cache
// (through the Key Scheduler on a miss) and then starts the firmware.
func (m *MCCP) stageKeysAndStart(c *channel, tasks []cryptocore.Task, ids []int, cb func(Assignment, error)) {
	var stage func(i int)
	stage = func(i int) {
		if i == len(ids) {
			m.startCores(c, tasks, ids, cb)
			return
		}
		coreID := ids[i]
		if c.suite.Family == cryptocore.FamilyHash {
			// Hashing needs no key material.
			stage(i + 1)
			return
		}
		if size, rk, ok := m.Caches[coreID].Get(c.keyID); ok {
			// Cache hit: the engine reads round keys straight from the
			// core's Key Cache block RAM, no extra latency.
			m.Cores[coreID].InstallAESKeys(size, rk)
			stage(i + 1)
			return
		}
		m.KeySched.Prepare(c.keyID, func(size aes.KeySize, rk []bits.Block) {
			m.Caches[coreID].Put(c.keyID, size, rk)
			m.Cores[coreID].InstallAESKeys(size, rk)
		}, func(err error) {
			if err != nil {
				for _, id := range ids {
					m.allocated[id] = false
				}
				cb(Assignment{}, err)
				return
			}
			stage(i + 1)
		})
	}
	stage(0)
}

// startCores writes task parameters and strobes start on every engaged
// core, then signals the ENCRYPT/DECRYPT done with the Assignment.
func (m *MCCP) startCores(c *channel, tasks []cryptocore.Task, ids []int, cb func(Assignment, error)) {
	req := &request{
		id:      m.nextReq,
		ch:      c,
		cores:   ids,
		outCore: ids[len(ids)-1], // single core, or the CTR half of a split
		out:     cryptocore.OutWords(tasks[len(tasks)-1]),
		pending: len(ids),
		started: m.Eng.Now(),
	}
	m.nextReq++
	m.requests[req.id] = req

	m.Eng.After(CostParamWrite, func() {
		for i, id := range ids {
			coreID := id
			m.Cores[coreID].Start(tasks[i], func(r cryptocore.Result) {
				m.coreFinished(req, r)
			})
		}
		cb(Assignment{ReqID: req.id, Tasks: tasks, CoreIDs: ids}, nil)
	})
}

// coreFinished collects per-core results; when every engaged core is done
// the request enters the done queue and the Data Available interrupt is
// raised.
func (m *MCCP) coreFinished(req *request, r cryptocore.Result) {
	if r.Code > req.code {
		req.code = r.Code
	}
	req.pending--
	if req.pending > 0 {
		return
	}
	req.state = reqDoneQueued
	req.doneAt = m.Eng.Now()
	if req.code != 0 {
		m.Stats.AuthFails++
	}
	m.doneQ = append(m.doneQ, req)
	if len(m.doneQ) == 1 && m.OnDataAvailable != nil {
		m.Eng.After(CostIRQ, m.OnDataAvailable)
	}
}

// DataAvailable reports whether RETRIEVE_DATA would succeed (the level of
// the interrupt line).
func (m *MCCP) DataAvailable() bool { return len(m.doneQ) > 0 }

// RetrieveData executes the RETRIEVE_DATA instruction: it pops the oldest
// completed request, returns OK or AUTH_FAIL plus the request ID, and (on
// OK) configures the Cross Bar for reading that core's output FIFO.
func (m *MCCP) RetrieveData(cb func(Retrieval, error)) {
	m.Eng.After(CostRetrieve, func() {
		if len(m.doneQ) == 0 {
			cb(Retrieval{}, ErrNoData)
			return
		}
		req := m.doneQ[0]
		m.doneQ = m.doneQ[1:]
		req.state = reqRetrieved
		m.Stats.Retrieves++
		out := 0
		if req.code == 0 {
			out = req.outWords()
		}
		cb(Retrieval{
			ReqID:    req.id,
			Code:     req.code,
			OutCore:  req.outCore,
			OutWords: out,
			Latency:  req.doneAt - req.started,
		}, nil)
	})
}

// outWords returns the retrievable output of a completed request, recorded
// at dispatch time (only the output core produces FIFO data).
func (r *request) outWords() int { return r.out }

// TransferDone executes the TRANSFER_DONE instruction. The first call (after
// upload) is bookkeeping; the final call (after download, or after an
// ENCRYPT/DECRYPT whose data the controller abandoned) releases the cores
// and retires the request, letting queued requests dispatch.
func (m *MCCP) TransferDone(reqID int, cb func(error)) {
	m.Eng.After(CostTransferDone, func() {
		req, ok := m.requests[reqID]
		if !ok {
			cb(fmt.Errorf("mccp: TRANSFER_DONE for unknown request %d", reqID))
			return
		}
		if !req.tdAcked {
			// Upload-side acknowledgement; the download side (or the
			// abandon-after-AUTH_FAIL path) releases the cores.
			req.tdAcked = true
			cb(nil)
			return
		}
		delete(m.requests, reqID)
		for _, id := range req.cores {
			m.allocated[id] = false
		}
		cb(nil)
		m.pump()
	})
}

// pump retries queued requests after resources free up (QoS extension).
func (m *MCCP) pump() {
	if m.waitHead == len(m.waitQ) {
		if m.waitHead > 0 {
			m.waitQ = m.waitQ[:0]
			m.waitHead = 0
		}
		return
	}
	// Try in priority order; stop at the first that still cannot dispatch
	// (strict priority, no bypass).
	w := m.waitQ[m.waitHead]
	req := scheduler.Request{
		Family:    w.ch.suite.Family,
		WantSplit: w.ch.suite.SplitCCM,
		KeyID:     w.ch.keyID,
		Priority:  w.prio,
	}
	if m.policy.Pick(req, m.views(w.ch.keyID)) == nil {
		return
	}
	m.waitQ[m.waitHead] = nil
	m.waitHead++
	m.tryDispatch(w.ch, w.encrypt, w.aadLen, w.dataLen, w.cb, false)
}

// WriteToCore streams words into a core's input FIFO through the Cross Bar
// (one 32-bit word per cycle, one core at a time).
func (m *MCCP) WriteToCore(coreID int, words []uint32, done func()) {
	m.WriteToCorePrio(coreID, words, 0, done)
}

// WriteToCorePrio is WriteToCore with a QoS priority on the Cross Bar
// grant, so a high-priority packet's upload never queues behind a backlog
// of bulk transfers.
func (m *MCCP) WriteToCorePrio(coreID int, words []uint32, prio int, done func()) {
	m.XBar.WriteFIFOPrio(m.Cores[coreID].In, words, prio, done)
}

// ReadFromCore drains n words from a core's output FIFO through the Cross
// Bar.
func (m *MCCP) ReadFromCore(coreID int, n int, done func([]uint32)) {
	m.ReadFromCorePrio(coreID, n, 0, done)
}

// ReadFromCorePrio is ReadFromCore with a QoS priority on the Cross Bar
// grant.
func (m *MCCP) ReadFromCorePrio(coreID int, n, prio int, done func([]uint32)) {
	m.XBar.ReadFIFOPrio(m.Cores[coreID].Out, n, prio, done)
}
