package core_test

import (
	"testing"

	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/firmware"
	"mccp/internal/sim"
)

func newDev(cfg core.Config) (*sim.Engine, *core.MCCP) {
	eng := sim.NewEngine()
	dev := core.New(eng, cfg)
	eng.Run()
	return eng, dev
}

func TestOpenCloseLifecycle(t *testing.T) {
	eng, dev := newDev(core.Config{})
	dev.KeyMem.Store(1, make([]byte, 16))
	var ch int
	dev.Open(core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, 1, func(c int, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ch = c
	})
	eng.Run()
	if ch == 0 {
		t.Fatal("no channel ID")
	}
	// OPEN consumes scheduler cycles (the instruction is not free).
	if eng.Now() < core.CostOpen {
		t.Errorf("OPEN completed in %d cycles, want >= %d", eng.Now(), core.CostOpen)
	}
	dev.Close(ch, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	dev.Close(ch, func(err error) {
		if err != core.ErrBadChannel {
			t.Errorf("double close: %v", err)
		}
	})
	eng.Run()
}

// TestProtocolFullDance drives the six-instruction protocol by hand, the
// way the paper's communication controller does, without the radio layer.
func TestProtocolFullDance(t *testing.T) {
	eng, dev := newDev(core.Config{})
	dev.KeyMem.Store(1, make([]byte, 16))

	irqs := 0
	dev.OnDataAvailable = func() { irqs++ }

	var ch int
	dev.Open(core.Suite{Family: cryptocore.FamilyCTR}, 1, func(c int, err error) { ch = c })
	eng.Run()

	// ENCRYPT: 32 bytes of CTR data.
	var asg core.Assignment
	dev.Submit(ch, true, 0, 32, func(a core.Assignment, err error) {
		if err != nil {
			t.Fatal(err)
		}
		asg = a
	})
	eng.Run()
	if len(asg.CoreIDs) != 1 || asg.Tasks[0].Mode != firmware.ModeCTR {
		t.Fatalf("assignment = %+v", asg)
	}

	// Upload: ICB + 2 data blocks, then the upload-side TRANSFER_DONE.
	words := make([]uint32, 12)
	dev.WriteToCore(asg.CoreIDs[0], words, func() {
		dev.TransferDone(asg.ReqID, func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
	})
	eng.Run()
	if irqs != 1 {
		t.Fatalf("Data Available IRQs = %d, want 1", irqs)
	}

	// RETRIEVE_DATA and drain.
	var ret core.Retrieval
	dev.RetrieveData(func(r core.Retrieval, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ret = r
	})
	eng.Run()
	if ret.ReqID != asg.ReqID || ret.Code != firmware.ResultOK || ret.OutWords != 8 {
		t.Fatalf("retrieval = %+v", ret)
	}
	if ret.Latency == 0 {
		t.Error("zero latency recorded")
	}
	var got []uint32
	dev.ReadFromCore(ret.OutCore, ret.OutWords, func(ws []uint32) { got = ws })
	eng.Run()
	if len(got) != 8 {
		t.Fatalf("drained %d words", len(got))
	}
	// Final TRANSFER_DONE frees the core.
	dev.TransferDone(asg.ReqID, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if dev.Cores[asg.CoreIDs[0]].Busy() {
		t.Error("core still busy after final TRANSFER_DONE")
	}
	// The request is retired: another TRANSFER_DONE errors.
	dev.TransferDone(asg.ReqID, func(err error) {
		if err == nil {
			t.Error("TRANSFER_DONE on retired request succeeded")
		}
	})
	eng.Run()
}

func TestCoresHeldUntilTransferDone(t *testing.T) {
	// The paper's protocol holds a core from ENCRYPT until the final
	// TRANSFER_DONE: a 1-core device must reject a second submit while the
	// first request's data has not been collected.
	eng, dev := newDev(core.Config{Cores: 1})
	dev.KeyMem.Store(1, make([]byte, 16))
	var ch int
	dev.Open(core.Suite{Family: cryptocore.FamilyCTR}, 1, func(c int, err error) { ch = c })
	eng.Run()

	var first core.Assignment
	dev.Submit(ch, true, 0, 16, func(a core.Assignment, err error) {
		if err != nil {
			t.Fatal(err)
		}
		first = a
	})
	eng.Run()
	dev.WriteToCore(0, make([]uint32, 8), func() {
		dev.TransferDone(first.ReqID, func(error) {})
	})
	eng.Run() // task completes, sits in the done queue

	dev.Submit(ch, true, 0, 16, func(_ core.Assignment, err error) {
		if err != core.ErrNoResources {
			t.Errorf("second submit: %v, want ErrNoResources", err)
		}
	})
	eng.Run()

	// Drain and release, then the core is reusable.
	dev.RetrieveData(func(r core.Retrieval, err error) {
		dev.ReadFromCore(r.OutCore, r.OutWords, func([]uint32) {
			dev.TransferDone(r.ReqID, func(error) {})
		})
	})
	eng.Run()
	dev.Submit(ch, true, 0, 16, func(_ core.Assignment, err error) {
		if err != nil {
			t.Errorf("post-release submit: %v", err)
		}
	})
	eng.Run()
}

// TestBoundedQueueSheds: with MaxQueue set, saturating submissions split
// into the three distinct outcomes — dispatched, queued, shed — and the
// counters agree with the callbacks.
func TestBoundedQueueSheds(t *testing.T) {
	eng, dev := newDev(core.Config{Cores: 1, QueueRequests: true, MaxQueue: 2})
	dev.KeyMem.Store(1, make([]byte, 16))
	var ch int
	dev.Open(core.Suite{Family: cryptocore.FamilyCTR}, 1, func(c int, _ error) { ch = c })
	eng.Run()

	shed, ok := 0, 0
	serve := func(a core.Assignment, err error) {
		switch err {
		case nil:
			ok++
			dev.WriteToCore(a.CoreIDs[0], make([]uint32, 8), func() {
				dev.TransferDone(a.ReqID, func(error) {})
			})
		case core.ErrQueueFull:
			shed++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	dev.OnDataAvailable = func() {
		dev.RetrieveData(func(r core.Retrieval, err error) {
			if err != nil {
				return
			}
			dev.ReadFromCore(r.OutCore, r.OutWords, func([]uint32) {
				dev.TransferDone(r.ReqID, func(error) {})
			})
		})
	}
	// Six submissions against one core with a 2-deep queue: 1 dispatches,
	// 2 queue, 3 shed (the queued ones drain as the core frees).
	for i := 0; i < 6; i++ {
		dev.Submit(ch, true, 0, 16, serve)
	}
	eng.Run()
	if ok != 3 || shed != 3 {
		t.Fatalf("ok=%d shed=%d, want 3/3", ok, shed)
	}
	if dev.Stats.Queued != 2 || dev.Stats.Shed != 3 || dev.Stats.Rejected != 0 {
		t.Fatalf("stats = %+v, want Queued=2 Shed=3 Rejected=0", dev.Stats)
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	// With queueing enabled and the device saturated, a high-priority
	// channel's request dispatches before earlier low-priority ones.
	eng, dev := newDev(core.Config{Cores: 1, QueueRequests: true})
	dev.KeyMem.Store(1, make([]byte, 16))
	dev.KeyMem.Store(2, make([]byte, 16))
	var lowCh, highCh int
	dev.Open(core.Suite{Family: cryptocore.FamilyCTR, Priority: 0}, 1, func(c int, _ error) { lowCh = c })
	dev.Open(core.Suite{Family: cryptocore.FamilyCTR, Priority: 5}, 2, func(c int, _ error) { highCh = c })
	eng.Run()

	var order []string
	serve := func(name string) func(core.Assignment, error) {
		return func(a core.Assignment, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			order = append(order, name)
			dev.WriteToCore(a.CoreIDs[0], make([]uint32, 8), func() {
				dev.TransferDone(a.ReqID, func(error) {})
			})
		}
	}
	// Occupy the core, then queue low before high.
	dev.Submit(lowCh, true, 0, 16, serve("first"))
	dev.Submit(lowCh, true, 0, 16, serve("low"))
	dev.Submit(highCh, true, 0, 16, serve("high"))

	drain := func() {
		dev.RetrieveData(func(r core.Retrieval, err error) {
			if err != nil {
				return
			}
			dev.ReadFromCore(r.OutCore, r.OutWords, func([]uint32) {
				dev.TransferDone(r.ReqID, func(error) {})
			})
		})
	}
	dev.OnDataAvailable = drain
	eng.Run()
	if len(order) != 3 || order[1] != "high" || order[2] != "low" {
		t.Fatalf("dispatch order = %v, want [first high low]", order)
	}
}
