// Package modes implements the block-cipher modes of operation the MCCP
// supports — CTR, CBC-MAC, CCM (SP 800-38C / RFC 3610) and GCM (SP 800-38D)
// — as pure software reference implementations over a generic 128-bit block
// cipher.
//
// These references serve two purposes. First, they are the ground truth the
// cycle-accurate MCCP firmware is differentially tested against. Second,
// they define the packet formatting contract of the radio's communication
// controller: the paper's Cryptographic Unit "cannot be used to format the
// plain text according to the specifications of block cipher modes of
// operation", so B0/A0/J0 construction, padding and tag truncation live
// outside the cores.
package modes

import (
	"errors"
	"fmt"

	"mccp/internal/bits"
)

// BlockCipher is a 128-bit block cipher in the forward (encrypt) direction.
// The MCCP hardware only ever uses the forward direction: CTR, CCM and GCM
// need no block decryption. AES is the paper's instantiation; Twofish is
// provided to demonstrate the "any 128-bit block cipher" claim.
type BlockCipher interface {
	Encrypt(bits.Block) bits.Block
}

// ErrAuth is returned when an authenticated decryption fails tag
// verification. The MCCP reports this as the AUTH_FAIL flag of
// RETRIEVE_DATA and flushes the output FIFO.
var ErrAuth = errors.New("modes: message authentication failed")

// CTR encrypts (or, identically, decrypts) data with counter mode starting
// from the given initial counter block. Counters step via 32-bit increment
// on the final word, per SP 800-38D; the hardware uses the 16-bit Inc core,
// which agrees for all packets that fit the 2 KB FIFO.
func CTR(c BlockCipher, icb bits.Block, data []byte) []byte {
	out := make([]byte, len(data))
	ctr := icb
	for i := 0; i < len(data); i += bits.BlockBytes {
		ks := c.Encrypt(ctr)
		n := len(data) - i
		if n > bits.BlockBytes {
			n = bits.BlockBytes
		}
		for j := 0; j < n; j++ {
			out[i+j] = data[i+j] ^ ks[j]
		}
		ctr = ctr.Inc32(1)
	}
	return out
}

// CBCMAC computes the raw CBC-MAC over whole blocks with a zero IV
// (FIPS 113 style, as used inside CCM). The caller is responsible for
// length-prefixing / padding rules; CCM's B-block formatting provides them.
func CBCMAC(c BlockCipher, blocks []bits.Block) bits.Block {
	var acc bits.Block
	for _, b := range blocks {
		acc = c.Encrypt(acc.XOR(b))
	}
	return acc
}

// ccmFormat builds the B blocks (B0, encoded AAD, padded payload) and the
// initial counter block A0 for CCM, per SP 800-38C Appendix A / RFC 3610.
// nonce length determines the length-field width q = 15 - len(nonce).
func ccmFormat(nonce, aad, payload []byte, tagLen int) (bblocks []bits.Block, a0 bits.Block, err error) {
	n := len(nonce)
	if n < 7 || n > 13 {
		return nil, a0, fmt.Errorf("modes: CCM nonce length %d not in [7,13]", n)
	}
	if tagLen < 4 || tagLen > 16 || tagLen%2 != 0 {
		return nil, a0, fmt.Errorf("modes: CCM tag length %d invalid", tagLen)
	}
	q := 15 - n
	if q < 8 {
		limit := uint64(1) << uint(8*q)
		if uint64(len(payload)) >= limit {
			return nil, a0, fmt.Errorf("modes: payload too long for %d-byte length field", q)
		}
	}

	// B0: flags || nonce || Q.
	var b0 bits.Block
	flags := byte(0)
	if len(aad) > 0 {
		flags |= 0x40
	}
	flags |= byte((tagLen-2)/2) << 3
	flags |= byte(q - 1)
	b0[0] = flags
	copy(b0[1:1+n], nonce)
	plen := uint64(len(payload))
	for i := 0; i < q; i++ {
		b0[15-i] = byte(plen >> uint(8*i))
	}
	bblocks = append(bblocks, b0)

	// AAD encoding: length prefix then data, zero-padded to a block edge.
	if len(aad) > 0 {
		var enc []byte
		switch {
		case len(aad) < 0xFF00:
			enc = append(enc, byte(len(aad)>>8), byte(len(aad)))
		default:
			enc = append(enc, 0xFF, 0xFE,
				byte(len(aad)>>24), byte(len(aad)>>16), byte(len(aad)>>8), byte(len(aad)))
		}
		enc = append(enc, aad...)
		bblocks = append(bblocks, bits.PadBlocks(enc)...)
	}

	// Payload, zero-padded.
	bblocks = append(bblocks, bits.PadBlocks(payload)...)

	// A0: flags' || nonce || counter(=0).
	a0[0] = byte(q - 1)
	copy(a0[1:1+n], nonce)
	return bblocks, a0, nil
}

// CCMSeal encrypts and authenticates payload with AES-CCM semantics,
// returning ciphertext || tag (tagLen bytes).
func CCMSeal(c BlockCipher, nonce, aad, payload []byte, tagLen int) ([]byte, error) {
	bblocks, a0, err := ccmFormat(nonce, aad, payload, tagLen)
	if err != nil {
		return nil, err
	}
	mac := CBCMAC(c, bblocks)
	s0 := c.Encrypt(a0)
	ct := CTR(c, a0.Inc32(1), payload)
	tag := mac.XOR(s0)
	return append(ct, tag[:tagLen]...), nil
}

// CCMOpen verifies and decrypts ciphertext||tag produced by CCMSeal.
func CCMOpen(c BlockCipher, nonce, aad, sealed []byte, tagLen int) ([]byte, error) {
	if len(sealed) < tagLen {
		return nil, ErrAuth
	}
	ct, tag := sealed[:len(sealed)-tagLen], sealed[len(sealed)-tagLen:]
	_, a0, err := ccmFormat(nonce, aad, make([]byte, len(ct)), tagLen)
	if err != nil {
		return nil, err
	}
	pt := CTR(c, a0.Inc32(1), ct)
	bblocks, _, err := ccmFormat(nonce, aad, pt, tagLen)
	if err != nil {
		return nil, err
	}
	mac := CBCMAC(c, bblocks)
	s0 := c.Encrypt(a0)
	want := mac.XOR(s0)
	var diff byte
	for i := 0; i < tagLen; i++ {
		diff |= want[i] ^ tag[i]
	}
	if diff != 0 {
		return nil, ErrAuth
	}
	return pt, nil
}

// gcmGHASH computes GHASH_H over padded AAD, padded ciphertext and the
// 64+64-bit lengths block, using the multiply function supplied by the
// caller (the ghash package provides it; taking it as a parameter keeps the
// package dependency graph acyclic).
type MulFunc func(x, y bits.Block) bits.Block

func gcmGHASH(mul MulFunc, h bits.Block, aad, ct []byte) bits.Block {
	var y bits.Block
	absorb := func(p []byte) {
		for _, b := range bits.PadBlocks(p) {
			y = mul(y.XOR(b), h)
		}
	}
	absorb(aad)
	absorb(ct)
	var lens bits.Block
	putLen := func(off, n int) {
		v := uint64(n) * 8
		for k := 0; k < 8; k++ {
			lens[off+k] = byte(v >> uint(56-8*k))
		}
	}
	putLen(0, len(aad))
	putLen(8, len(ct))
	y = mul(y.XOR(lens), h)
	return y
}

// GCM provides SP 800-38D seal/open over a BlockCipher and a GF(2^128)
// multiplier.
type GCM struct {
	C   BlockCipher
	Mul MulFunc
	// TagLen is the tag length in bytes; zero means 16.
	TagLen int
}

func (g *GCM) tagLen() int {
	if g.TagLen == 0 {
		return 16
	}
	return g.TagLen
}

// j0 derives the pre-counter block from the IV.
func (g *GCM) j0(h bits.Block, iv []byte) bits.Block {
	if len(iv) == 12 {
		var j bits.Block
		copy(j[:12], iv)
		j[15] = 1
		return j
	}
	return gcmGHASH(g.Mul, h, nil, iv) // GHASH(pad(iv) || lens) with aad="" ct=iv
}

// Seal encrypts and authenticates payload, returning ciphertext || tag.
func (g *GCM) Seal(iv, aad, payload []byte) []byte {
	h := g.C.Encrypt(bits.Block{})
	j0 := g.j0(h, iv)
	ct := CTR(g.C, j0.Inc32(1), payload)
	s := gcmGHASH(g.Mul, h, aad, ct)
	tag := s.XOR(g.C.Encrypt(j0))
	return append(ct, tag[:g.tagLen()]...)
}

// Open verifies and decrypts ciphertext||tag.
func (g *GCM) Open(iv, aad, sealed []byte) ([]byte, error) {
	tl := g.tagLen()
	if len(sealed) < tl {
		return nil, ErrAuth
	}
	ct, tag := sealed[:len(sealed)-tl], sealed[len(sealed)-tl:]
	h := g.C.Encrypt(bits.Block{})
	j0 := g.j0(h, iv)
	s := gcmGHASH(g.Mul, h, aad, ct)
	want := s.XOR(g.C.Encrypt(j0))
	var diff byte
	for i := 0; i < tl; i++ {
		diff |= want[i] ^ tag[i]
	}
	if diff != 0 {
		return nil, ErrAuth
	}
	return CTR(g.C, j0.Inc32(1), ct), nil
}
