package modes

import (
	"fmt"

	"mccp/internal/bits"
)

// The helpers in this file expose the mode-of-operation formatting rules
// (SP 800-38C/D block construction) to the radio's communication
// controller, which must format packets before streaming them into the
// Cryptographic Cores (paper §VI.B: "the communication controller must
// format data prior to send them to the cryptographic cores").

// GCMJ0 builds the pre-counter block from a 96-bit IV (the hardware path;
// the cores' 16-bit incrementer and the FIFO-framing contract assume the
// standard 12-byte communication nonce).
func GCMJ0(iv []byte) bits.Block {
	if len(iv) != 12 {
		panic("modes: hardware GCM framing requires a 96-bit IV")
	}
	var j bits.Block
	copy(j[:12], iv)
	j[15] = 1
	return j
}

// GCMLengths builds GCM's final GHASH block: 64-bit AAD bit-length followed
// by 64-bit ciphertext bit-length.
func GCMLengths(aadLen, ctLen int) bits.Block {
	var b bits.Block
	put := func(off, n int) {
		v := uint64(n) * 8
		for k := 0; k < 8; k++ {
			b[off+k] = byte(v >> uint(56-8*k))
		}
	}
	put(0, aadLen)
	put(8, ctLen)
	return b
}

// CCMB0A0 builds CCM's first MAC block B0 and initial counter block A0 for
// the given nonce, AAD length, payload length and tag length. It performs
// the same parameter validation as the full formatter (ccmFormat) without
// materializing any block stream, so the per-packet framing path never
// allocates here.
func CCMB0A0(nonce []byte, aadLen, payloadLen, tagLen int) (b0, a0 bits.Block, err error) {
	n := len(nonce)
	if n < 7 || n > 13 {
		return b0, a0, fmt.Errorf("modes: CCM nonce length %d not in [7,13]", n)
	}
	if tagLen < 4 || tagLen > 16 || tagLen%2 != 0 {
		return b0, a0, fmt.Errorf("modes: CCM tag length %d invalid", tagLen)
	}
	q := 15 - n
	if q < 8 {
		limit := uint64(1) << uint(8*q)
		if uint64(payloadLen) >= limit {
			return b0, a0, fmt.Errorf("modes: payload too long for %d-byte length field", q)
		}
	}
	// B0: flags || nonce || Q (see ccmFormat, which the mode tests pin
	// against this function).
	flags := byte(0)
	if aadLen > 0 {
		flags |= 0x40
	}
	flags |= byte((tagLen-2)/2) << 3
	flags |= byte(q - 1)
	b0[0] = flags
	copy(b0[1:1+n], nonce)
	plen := uint64(payloadLen)
	for i := 0; i < q; i++ {
		b0[15-i] = byte(plen >> uint(8*i))
	}
	// A0: flags' || nonce || counter(=0).
	a0[0] = byte(q - 1)
	copy(a0[1:1+n], nonce)
	return b0, a0, nil
}

// CCMEncodeAAD returns CCM's length-prefixed, zero-padded AAD blocks
// (empty slice for empty AAD).
func CCMEncodeAAD(aad []byte) []bits.Block {
	if len(aad) == 0 {
		return nil
	}
	return AppendCCMEncodeAAD(nil, aad)
}

// AppendCCMEncodeAAD appends the CCM AAD encoding to dst and returns the
// extended slice — the allocation-free form of CCMEncodeAAD. Every
// appended block is fully written, so recycled destination buffers are
// safe.
func AppendCCMEncodeAAD(dst []bits.Block, aad []byte) []bits.Block {
	if len(aad) == 0 {
		return dst
	}
	var pre [6]byte
	np := 2
	if len(aad) < 0xFF00 {
		pre[0], pre[1] = byte(len(aad)>>8), byte(len(aad))
	} else {
		pre = [6]byte{0xFF, 0xFE,
			byte(len(aad) >> 24), byte(len(aad) >> 16), byte(len(aad) >> 8), byte(len(aad))}
		np = 6
	}
	total := np + len(aad)
	for off := 0; off < total; off += bits.BlockBytes {
		var b bits.Block
		for i := 0; i < bits.BlockBytes && off+i < total; i++ {
			if off+i < np {
				b[i] = pre[off+i]
			} else {
				b[i] = aad[off+i-np]
			}
		}
		dst = append(dst, b)
	}
	return dst
}
