package modes

import "mccp/internal/bits"

// The helpers in this file expose the mode-of-operation formatting rules
// (SP 800-38C/D block construction) to the radio's communication
// controller, which must format packets before streaming them into the
// Cryptographic Cores (paper §VI.B: "the communication controller must
// format data prior to send them to the cryptographic cores").

// GCMJ0 builds the pre-counter block from a 96-bit IV (the hardware path;
// the cores' 16-bit incrementer and the FIFO-framing contract assume the
// standard 12-byte communication nonce).
func GCMJ0(iv []byte) bits.Block {
	if len(iv) != 12 {
		panic("modes: hardware GCM framing requires a 96-bit IV")
	}
	var j bits.Block
	copy(j[:12], iv)
	j[15] = 1
	return j
}

// GCMLengths builds GCM's final GHASH block: 64-bit AAD bit-length followed
// by 64-bit ciphertext bit-length.
func GCMLengths(aadLen, ctLen int) bits.Block {
	var b bits.Block
	put := func(off, n int) {
		v := uint64(n) * 8
		for k := 0; k < 8; k++ {
			b[off+k] = byte(v >> uint(56-8*k))
		}
	}
	put(0, aadLen)
	put(8, ctLen)
	return b
}

// CCMB0A0 builds CCM's first MAC block B0 and initial counter block A0 for
// the given nonce, AAD length, payload length and tag length.
func CCMB0A0(nonce []byte, aadLen, payloadLen, tagLen int) (b0, a0 bits.Block, err error) {
	payload := make([]byte, 0)
	_ = payload
	bblocks, a0, err := ccmFormat(nonce, make([]byte, minInt(aadLen, 1)), make([]byte, payloadLen), tagLen)
	if err != nil {
		return b0, a0, err
	}
	b0 = bblocks[0]
	// ccmFormat sets the Adata flag from its aad argument; reproduce the
	// real flag for the caller's aadLen.
	if aadLen > 0 {
		b0[0] |= 0x40
	} else {
		b0[0] &^= 0x40
	}
	return b0, a0, nil
}

// CCMEncodeAAD returns CCM's length-prefixed, zero-padded AAD blocks
// (empty slice for empty AAD).
func CCMEncodeAAD(aad []byte) []bits.Block {
	if len(aad) == 0 {
		return nil
	}
	var enc []byte
	if len(aad) < 0xFF00 {
		enc = append(enc, byte(len(aad)>>8), byte(len(aad)))
	} else {
		enc = append(enc, 0xFF, 0xFE,
			byte(len(aad)>>24), byte(len(aad)>>16), byte(len(aad)>>8), byte(len(aad)))
	}
	enc = append(enc, aad...)
	return bits.PadBlocks(enc)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
