package modes

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"

	"mccp/internal/aes"
	"mccp/internal/bits"
	"mccp/internal/ghash"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b := make([]byte, len(s)/2)
	for i := range b {
		hi := hexNib(s[2*i])
		lo := hexNib(s[2*i+1])
		if hi < 0 || lo < 0 {
			t.Fatalf("bad hex %q", s)
		}
		b[i] = byte(hi<<4 | lo)
	}
	return b
}

func hexNib(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

func newGCM(c BlockCipher) *GCM { return &GCM{C: c, Mul: ghash.Mul} }

// TestCCMVectorRFC3610 checks Packet Vector #1 of RFC 3610.
func TestCCMVectorRFC3610(t *testing.T) {
	key := mustHex(t, "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf")
	nonce := mustHex(t, "00000003020100a0a1a2a3a4a5")
	aad := mustHex(t, "0001020304050607")
	payload := mustHex(t, "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e")
	want := mustHex(t, "588c979a61c663d2f066d0c2c0f989806d5f6b61dac38417e8d12cfdf926e0")

	c := aes.MustNew(key)
	got, err := CCMSeal(c, nonce, aad, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CCMSeal = %x, want %x", got, want)
	}
	back, err := CCMOpen(c, nonce, aad, got, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatalf("CCMOpen = %x, want %x", back, payload)
	}
}

func TestCCMRoundTripAndTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		keyLens := []int{16, 24, 32}
		key := make([]byte, keyLens[i%3])
		rng.Read(key)
		nonce := make([]byte, 7+rng.Intn(7)) // 7..13
		rng.Read(nonce)
		aad := make([]byte, rng.Intn(64))
		rng.Read(aad)
		payload := make([]byte, rng.Intn(200))
		rng.Read(payload)
		tagLen := []int{4, 8, 12, 16}[rng.Intn(4)]

		c := aes.MustNew(key)
		sealed, err := CCMSeal(c, nonce, aad, payload, tagLen)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := CCMOpen(c, nonce, aad, sealed, tagLen)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if !bytes.Equal(pt, payload) {
			t.Fatalf("roundtrip mismatch")
		}
		// Any single-bit corruption must be rejected.
		mut := append([]byte(nil), sealed...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := CCMOpen(c, nonce, aad, mut, tagLen); err != ErrAuth {
			t.Fatalf("tampered open: got err %v, want ErrAuth", err)
		}
		// Wrong AAD must be rejected (when AAD participates).
		if len(aad) > 0 {
			mutAAD := append([]byte(nil), aad...)
			mutAAD[0] ^= 0x80
			if _, err := CCMOpen(c, nonce, mutAAD, sealed, tagLen); err != ErrAuth {
				t.Fatalf("wrong-AAD open: got err %v, want ErrAuth", err)
			}
		}
	}
}

func TestCCMParameterValidation(t *testing.T) {
	c := aes.MustNew(make([]byte, 16))
	if _, err := CCMSeal(c, make([]byte, 6), nil, nil, 8); err == nil {
		t.Error("nonce too short accepted")
	}
	if _, err := CCMSeal(c, make([]byte, 14), nil, nil, 8); err == nil {
		t.Error("nonce too long accepted")
	}
	if _, err := CCMSeal(c, make([]byte, 13), nil, nil, 7); err == nil {
		t.Error("odd tag length accepted")
	}
	if _, err := CCMSeal(c, make([]byte, 13), nil, nil, 2); err == nil {
		t.Error("tag length 2 accepted")
	}
	if _, err := CCMOpen(c, make([]byte, 13), nil, []byte{1, 2}, 8); err != ErrAuth {
		t.Error("short sealed input not rejected")
	}
}

// TestGCMDifferentialVsStdlib is the primary GCM oracle: every IV length,
// AAD length and payload length combination must match crypto/cipher.
func TestGCMDifferentialVsStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120; i++ {
		keyLens := []int{16, 24, 32}
		key := make([]byte, keyLens[i%3])
		rng.Read(key)
		ivLen := 12
		if i%5 == 0 {
			ivLen = 1 + rng.Intn(32) // exercise the GHASH-derived J0 path
		}
		iv := make([]byte, ivLen)
		rng.Read(iv)
		aad := make([]byte, rng.Intn(64))
		rng.Read(aad)
		pt := make([]byte, rng.Intn(256))
		rng.Read(pt)

		ours := newGCM(aes.MustNew(key))
		sealed := ours.Seal(iv, aad, pt)

		std, _ := stdaes.NewCipher(key)
		ref, err := cipher.NewGCMWithNonceSize(std, ivLen)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Seal(nil, iv, pt, aad)
		if !bytes.Equal(sealed, want) {
			t.Fatalf("seal mismatch (ivLen=%d aad=%d pt=%d):\n got %x\nwant %x",
				ivLen, len(aad), len(pt), sealed, want)
		}
		back, err := ours.Open(iv, aad, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatal("open roundtrip mismatch")
		}
	}
}

func TestGCMTamper(t *testing.T) {
	g := newGCM(aes.MustNew(make([]byte, 16)))
	iv := make([]byte, 12)
	sealed := g.Seal(iv, []byte("hdr"), []byte("hello, radio"))
	sealed[3] ^= 0x40
	if _, err := g.Open(iv, []byte("hdr"), sealed); err != ErrAuth {
		t.Errorf("tampered GCM open: err = %v, want ErrAuth", err)
	}
	if _, err := g.Open(iv, []byte("hdX"), g.Seal(iv, []byte("hdr"), nil)); err != ErrAuth {
		t.Errorf("wrong AAD: err = %v, want ErrAuth", err)
	}
}

func TestCTRInvolution(t *testing.T) {
	f := func(key [16]byte, icb bits.Block, data []byte) bool {
		c := aes.MustNew(key[:])
		return bytes.Equal(CTR(c, icb, CTR(c, icb, data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCTRMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		key := make([]byte, 16)
		rng.Read(key)
		var icb bits.Block
		rng.Read(icb[:])
		// Avoid 32-bit counter wrap divergence: stdlib CTR carries into the
		// full block, GCM-style CTR32 does not. Packets are way below 2^32
		// blocks, so pin the counter low bits to a small value.
		icb[12], icb[13], icb[14], icb[15] = 0, 0, 0, byte(i)
		data := make([]byte, rng.Intn(300))
		rng.Read(data)

		got := CTR(aes.MustNew(key), icb, data)
		std, _ := stdaes.NewCipher(key)
		want := make([]byte, len(data))
		cipher.NewCTR(std, icb[:]).XORKeyStream(want, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("CTR mismatch at iter %d", i)
		}
	}
}

func TestCBCMACKnownStructure(t *testing.T) {
	// CBC-MAC of a single block B is E(B); of two blocks is E(E(B1)^B2).
	c := aes.MustNew(make([]byte, 16))
	b1 := bits.BlockFromHex("000102030405060708090a0b0c0d0e0f")
	b2 := bits.BlockFromHex("101112131415161718191a1b1c1d1e1f")
	if got := CBCMAC(c, []bits.Block{b1}); got != c.Encrypt(b1) {
		t.Error("single-block CBC-MAC mismatch")
	}
	want := c.Encrypt(c.Encrypt(b1).XOR(b2))
	if got := CBCMAC(c, []bits.Block{b1, b2}); got != want {
		t.Error("two-block CBC-MAC mismatch")
	}
	if got := CBCMAC(c, nil); !got.IsZero() {
		t.Error("empty CBC-MAC should be the zero IV")
	}
}

// TestCCMDecomposition verifies the paper's two-core split: CCM really is
// CBC-MAC over the B blocks combined with CTR over the payload, with
// tag = MAC XOR E(A0). This is the algebraic fact that lets the MCCP map one
// CCM packet onto two cooperating Cryptographic Cores.
func TestCCMDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		key := make([]byte, 16)
		rng.Read(key)
		nonce := make([]byte, 13)
		rng.Read(nonce)
		aad := make([]byte, rng.Intn(32))
		rng.Read(aad)
		payload := make([]byte, 1+rng.Intn(120))
		rng.Read(payload)
		c := aes.MustNew(key)

		sealed, err := CCMSeal(c, nonce, aad, payload, 16)
		if err != nil {
			t.Fatal(err)
		}

		// Independent recomputation from the two halves.
		bblocks, a0, err := ccmFormat(nonce, aad, payload, 16)
		if err != nil {
			t.Fatal(err)
		}
		mac := CBCMAC(c, bblocks)          // "CBC-MAC core"
		ct := CTR(c, a0.Inc32(1), payload) // "CTR core"
		tag := mac.XOR(c.Encrypt(a0))      // forwarded MAC ^ S0

		want := append(ct, tag[:]...)
		if !bytes.Equal(sealed, want) {
			t.Fatalf("decomposition mismatch at iter %d", i)
		}
	}
}

func BenchmarkGCMSealReference(b *testing.B) {
	g := newGCM(aes.MustNew(make([]byte, 16)))
	iv := make([]byte, 12)
	pt := make([]byte, 2048)
	b.SetBytes(2048)
	for i := 0; i < b.N; i++ {
		g.Seal(iv, nil, pt)
	}
}

func BenchmarkCCMSealReference(b *testing.B) {
	c := aes.MustNew(make([]byte, 16))
	nonce := make([]byte, 13)
	pt := make([]byte, 2048)
	b.SetBytes(2048)
	for i := 0; i < b.N; i++ {
		if _, err := CCMSeal(c, nonce, nil, pt, 16); err != nil {
			b.Fatal(err)
		}
	}
}
