// Package bits provides the 128-bit block type shared by every layer of the
// MCCP model: the Cryptographic Unit bank registers, the AES and GHASH cores,
// and the block-cipher modes of operation.
//
// A Block is stored big-endian: Block[0] is the most significant byte, which
// matches the byte ordering of FIPS-197, SP 800-38C/D and the paper's
// datapath (the unit moves 128-bit words as four 32-bit sub-words, most
// significant first).
package bits

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// BlockBytes is the size of a cipher block in bytes.
const BlockBytes = 16

// Block is a 128-bit datapath word.
type Block [BlockBytes]byte

// BlockFromHex parses a 32-hex-digit string. It panics on malformed input;
// it is intended for test vectors and constants.
func BlockFromHex(s string) Block {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != BlockBytes {
		panic(fmt.Sprintf("bits: bad block hex %q", s))
	}
	var out Block
	copy(out[:], b)
	return out
}

// Hex returns the block as 32 lowercase hex digits.
func (b Block) Hex() string { return hex.EncodeToString(b[:]) }

// XOR returns a ^ o.
func (b Block) XOR(o Block) Block {
	var r Block
	for i := range r {
		r[i] = b[i] ^ o[i]
	}
	return r
}

// AND returns a & o.
func (b Block) AND(o Block) Block {
	var r Block
	for i := range r {
		r[i] = b[i] & o[i]
	}
	return r
}

// IsZero reports whether every byte is zero.
func (b Block) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Word returns 32-bit sub-word i (0 = most significant), matching the
// Cryptographic Unit's 2-bit sub-word counter.
func (b Block) Word(i int) uint32 {
	return binary.BigEndian.Uint32(b[4*i : 4*i+4])
}

// SetWord stores w into 32-bit sub-word i.
func (b *Block) SetWord(i int, w uint32) {
	binary.BigEndian.PutUint32(b[4*i:4*i+4], w)
}

// Words returns the four 32-bit sub-words, most significant first.
func (b Block) Words() [4]uint32 {
	return [4]uint32{b.Word(0), b.Word(1), b.Word(2), b.Word(3)}
}

// BlockFromWords assembles a block from four 32-bit sub-words.
func BlockFromWords(w [4]uint32) Block {
	var b Block
	for i, v := range w {
		b.SetWord(i, v)
	}
	return b
}

// Inc16 adds delta to the 16 least significant bits of the block, wrapping
// modulo 2^16 and leaving the upper 112 bits untouched. This is the paper's
// "Inc Core" operation (16-bit incrementation by 1..4 of a 128-bit word),
// used to step CTR-mode counter blocks.
func (b Block) Inc16(delta uint16) Block {
	r := b
	v := binary.BigEndian.Uint16(r[14:16])
	binary.BigEndian.PutUint16(r[14:16], v+delta)
	return r
}

// Inc32 adds delta to the 32 least significant bits (GCM's inc32). The
// paper's hardware only increments 16 bits because packet payloads are
// bounded by the 2 KB FIFO (<= 128 blocks); Inc32 is provided for the
// reference-mode implementations.
func (b Block) Inc32(delta uint32) Block {
	r := b
	v := binary.BigEndian.Uint32(r[12:16])
	binary.BigEndian.PutUint32(r[12:16], v+delta)
	return r
}

// ByteMask expands a 16-bit mask into a block mask: bit 15 of m controls
// byte 0 (most significant), bit 0 controls byte 15. A set bit keeps the
// byte, a clear bit zeroes it. This mirrors the Cryptographic Unit's
// Xor/Comparator mask register, which lets firmware zero the tail of a
// partial final block.
func ByteMask(m uint16) Block {
	var r Block
	for i := 0; i < BlockBytes; i++ {
		if m&(1<<uint(15-i)) != 0 {
			r[i] = 0xFF
		}
	}
	return r
}

// MaskForLen returns the ByteMask keeping the first n bytes (0 <= n <= 16).
func MaskForLen(n int) uint16 {
	if n < 0 || n > BlockBytes {
		panic(fmt.Sprintf("bits: mask length %d out of range", n))
	}
	if n == 0 {
		return 0
	}
	return ^uint16(0) << uint(16-n)
}

// PadBlocks zero-pads p to a whole number of blocks and returns the block
// slice. An empty input yields an empty slice.
func PadBlocks(p []byte) []Block {
	n := (len(p) + BlockBytes - 1) / BlockBytes
	out := make([]Block, n)
	for i := range out {
		copy(out[i][:], p[i*BlockBytes:min(len(p), (i+1)*BlockBytes)])
	}
	return out
}

// AppendPadBlocks appends p's zero-padded 16-byte blocks to dst and
// returns the extended slice — the allocation-free form of PadBlocks for
// callers staging into a recycled buffer. Each appended block is fully
// written (stale bytes in a recycled dst cannot leak into the padding).
func AppendPadBlocks(dst []Block, p []byte) []Block {
	n := (len(p) + BlockBytes - 1) / BlockBytes
	for i := 0; i < n; i++ {
		var b Block
		copy(b[:], p[i*BlockBytes:min(len(p), (i+1)*BlockBytes)])
		dst = append(dst, b)
	}
	return dst
}

// Flatten concatenates blocks into a byte slice.
func Flatten(bs []Block) []byte {
	out := make([]byte, 0, len(bs)*BlockBytes)
	for _, b := range bs {
		out = append(out, b[:]...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
