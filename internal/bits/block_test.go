package bits

import (
	"testing"
	"testing/quick"
)

func TestHexRoundTrip(t *testing.T) {
	b := BlockFromHex("00112233445566778899aabbccddeeff")
	if b.Hex() != "00112233445566778899aabbccddeeff" {
		t.Errorf("hex roundtrip = %s", b.Hex())
	}
	if b[0] != 0x00 || b[15] != 0xFF {
		t.Error("byte order: block must be big-endian, MSB first")
	}
}

func TestWords(t *testing.T) {
	b := BlockFromHex("00112233445566778899aabbccddeeff")
	if b.Word(0) != 0x00112233 || b.Word(3) != 0xccddeeff {
		t.Errorf("words = %x", b.Words())
	}
	if BlockFromWords(b.Words()) != b {
		t.Error("words roundtrip failed")
	}
	var c Block
	c.SetWord(2, 0xdeadbeef)
	if c.Word(2) != 0xdeadbeef {
		t.Error("SetWord/Word mismatch")
	}
}

func TestXORProperties(t *testing.T) {
	if err := quick.Check(func(a, b Block) bool {
		return a.XOR(b) == b.XOR(a) && a.XOR(a).IsZero() && a.XOR(Block{}) == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInc16(t *testing.T) {
	b := BlockFromHex("000000000000000000000000000000ff")
	if got := b.Inc16(1); got.Hex() != "00000000000000000000000000000100" {
		t.Errorf("Inc16(1) = %s", got.Hex())
	}
	// 16-bit wrap must not carry into byte 13.
	b = BlockFromHex("0000000000000000000000000001ffff")
	if got := b.Inc16(1); got.Hex() != "00000000000000000000000000010000" {
		t.Errorf("Inc16 wrap = %s", got.Hex())
	}
	b = BlockFromHex("00000000000000000000000000000000")
	if got := b.Inc16(4); got.Hex() != "00000000000000000000000000000004" {
		t.Errorf("Inc16(4) = %s", got.Hex())
	}
}

func TestInc32(t *testing.T) {
	b := BlockFromHex("000000000000000000000000ffffffff")
	if got := b.Inc32(1); got.Hex() != "00000000000000000000000000000000" {
		t.Errorf("Inc32 wrap = %s", got.Hex())
	}
	// Inc16 and Inc32 agree while the low 16 bits do not wrap — the
	// condition under which the paper's 16-bit Inc core is sufficient.
	if err := quick.Check(func(a Block, d uint16) bool {
		if d == 0 {
			d = 1
		}
		low := uint16(a[14])<<8 | uint16(a[15])
		if low > low+d { // would wrap
			return true
		}
		return a.Inc16(d) == a.Inc32(uint32(d))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestByteMask(t *testing.T) {
	full := ByteMask(0xFFFF)
	for i := range full {
		if full[i] != 0xFF {
			t.Fatal("full mask must keep every byte")
		}
	}
	if !ByteMask(0).IsZero() {
		t.Fatal("zero mask must clear every byte")
	}
	m := ByteMask(0x8001)
	if m[0] != 0xFF || m[15] != 0xFF || m[1] != 0 || m[14] != 0 {
		t.Errorf("mask 0x8001 = %s", m.Hex())
	}
}

func TestMaskForLen(t *testing.T) {
	cases := map[int]uint16{0: 0x0000, 1: 0x8000, 8: 0xFF00, 15: 0xFFFE, 16: 0xFFFF}
	for n, want := range cases {
		if got := MaskForLen(n); got != want {
			t.Errorf("MaskForLen(%d) = %#04x, want %#04x", n, got, want)
		}
	}
	// Masking a block with MaskForLen(n) keeps exactly the first n bytes.
	b := BlockFromHex("ffffffffffffffffffffffffffffffff")
	got := b.AND(ByteMask(MaskForLen(5)))
	if got.Hex() != "ffffffffff0000000000000000000000" {
		t.Errorf("masked = %s", got.Hex())
	}
}

func TestPadFlatten(t *testing.T) {
	p := []byte{1, 2, 3}
	bs := PadBlocks(p)
	if len(bs) != 1 || bs[0][0] != 1 || bs[0][3] != 0 {
		t.Errorf("PadBlocks short = %v", bs)
	}
	if got := PadBlocks(nil); len(got) != 0 {
		t.Error("PadBlocks(nil) should be empty")
	}
	if got := PadBlocks(make([]byte, 16)); len(got) != 1 {
		t.Error("exact block should pad to one block")
	}
	if got := PadBlocks(make([]byte, 17)); len(got) != 2 {
		t.Error("17 bytes should pad to two blocks")
	}
	flat := Flatten(bs)
	if len(flat) != 16 || flat[0] != 1 {
		t.Errorf("Flatten = %x", flat)
	}
}
