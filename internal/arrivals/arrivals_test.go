package arrivals

import (
	"math"
	"reflect"
	"testing"

	"mccp/internal/sim"
)

// TestRandSplitIndependence: a split child stream diverges from the
// parent and from a sibling, and the same seed reproduces everything.
func TestRandSplitIndependence(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	if a.Uint64() != b.Uint64() {
		t.Fatal("same seed must reproduce the stream")
	}
	c1 := a.Split()
	c2 := a.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits should diverge")
	}
	// Replaying the parent reproduces the same children in order.
	d1, d2 := b.Split(), b.Split()
	d1.Uint64() // d1 aligns with c1, whose first draw was consumed above
	if d1.Uint64() != c1.Uint64() || d2.Uint64() == c1.Uint64() {
		t.Fatal("split streams must be a pure function of the seed")
	}
}

// TestPoissonMeanRate: the empirical mean gap converges to the configured
// mean (within a few percent over many draws).
func TestPoissonMeanRate(t *testing.T) {
	p := Poisson{Mean: 500}
	r := NewRand(7)
	var sum sim.Time
	n := 20000
	for i := 0; i < n; i++ {
		sum += p.Gap(r)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-500)/500 > 0.05 {
		t.Fatalf("poisson mean gap %.1f, want ~500", mean)
	}
}

// TestOnOffMeanRateAndBurstiness: same mean as Poisson, but clumped — the
// variance of the gaps must be well above the exponential's.
func TestOnOffMeanRateAndBurstiness(t *testing.T) {
	r := NewRand(11)
	p := NewOnOff(500, DefaultDuty, DefaultBurstLen)
	n := 50000
	gaps := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		g := float64(p.Gap(r))
		gaps[i] = g
		sum += g
	}
	mean := sum / float64(n)
	if math.Abs(mean-500)/500 > 0.10 {
		t.Fatalf("onoff mean gap %.1f, want ~500", mean)
	}
	var varSum float64
	for _, g := range gaps {
		varSum += (g - mean) * (g - mean)
	}
	cv2 := varSum / float64(n) / (mean * mean) // squared coefficient of variation
	if cv2 < 2 {
		t.Fatalf("onoff squared CV %.2f, want > 2 (exponential is 1: not bursty enough)", cv2)
	}
}

// TestTraceReplaysCyclically.
func TestTraceReplaysCyclically(t *testing.T) {
	tr := &Trace{Gaps: []sim.Time{10, 0, 30}}
	var got []sim.Time
	for i := 0; i < 6; i++ {
		got = append(got, tr.Gap(nil))
	}
	want := []sim.Time{10, 1, 30, 10, 1, 30} // 0 lifted to 1
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace gaps %v, want %v", got, want)
	}
}

// TestSourceOpenLoop: arrivals fire at process-determined virtual times
// regardless of what emit does, the budget bounds the count, and Done
// fires exactly once.
func TestSourceOpenLoop(t *testing.T) {
	eng := sim.NewEngine()
	var times []sim.Time
	doneCount := 0
	s := NewSource(eng, Deterministic{Interval: 100}, NewRand(1), func(seq int) {
		times = append(times, eng.Now())
	})
	s.Done = func() { doneCount++ }
	s.Start(5, 0)
	eng.Run()
	want := []sim.Time{100, 200, 300, 400, 500}
	if !reflect.DeepEqual(times, want) {
		t.Fatalf("arrival times %v, want %v", times, want)
	}
	if s.Emitted() != 5 || !s.Stopped() || doneCount != 1 {
		t.Fatalf("emitted=%d stopped=%v done=%d", s.Emitted(), s.Stopped(), doneCount)
	}
}

// TestSourceHorizon: an unbounded source stops at the horizon; an arrival
// that would land past it is not emitted.
func TestSourceHorizon(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	s := NewSource(eng, Deterministic{Interval: 100}, NewRand(1), func(int) { n++ })
	s.Start(-1, 350)
	eng.Run()
	if n != 3 { // arrivals at 100, 200, 300; 400 > 350
		t.Fatalf("emitted %d arrivals before horizon 350, want 3", n)
	}
	if !s.Stopped() {
		t.Fatal("source should have stopped at the horizon")
	}
}

// TestSourceDeterminism: two sources with the same seed produce identical
// arrival schedules.
func TestSourceDeterminism(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		var times []sim.Time
		root := NewRand(99)
		s := NewSource(eng, Poisson{Mean: 250}, root.Split(), func(int) {
			times = append(times, eng.Now())
		})
		s.Start(64, 0)
		eng.Run()
		return times
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give bit-identical arrival times")
	}
}

// TestByName: names resolve to fresh instances with the requested mean;
// unknown names and bad means error.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		mk, err := ByName(name, 500)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p1, p2 := mk(), mk()
		if p1.Name() != name {
			t.Fatalf("%s: got %s", name, p1.Name())
		}
		// Stateful processes must be distinct instances.
		if _, ok := p1.(*OnOff); ok && p1 == p2 {
			t.Fatalf("%s: factory returned a shared instance", name)
		}
	}
	if _, err := ByName("bogus", 500); err == nil {
		t.Fatal("unknown process accepted")
	}
	if _, err := ByName(ProcPoisson, 0); err == nil {
		t.Fatal("non-positive mean accepted")
	}
}

// TestClassProfileMeanGap.
func TestClassProfileMeanGap(t *testing.T) {
	p := ClassProfile{Share: 0.5, Bytes: 2048}
	// Total 8 bits/cycle, class share 4 bits/cycle -> 2048*8/4 cycles/packet.
	if g := p.MeanGap(8); g != 4096 {
		t.Fatalf("mean gap %v, want 4096", g)
	}
	if g := (ClassProfile{Share: 0, Bytes: 64}).MeanGap(8); !math.IsInf(g, 1) {
		t.Fatalf("zero-share gap %v, want +Inf", g)
	}
}
