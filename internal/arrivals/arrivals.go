// Package arrivals is the open-loop workload engine: arrival processes
// scheduled as virtual-time events on the simulation engine, feeding
// packets at a configured offered rate regardless of device backpressure.
// Every experiment before this package was closed-loop — the generator
// refilled the device as fast as it drained, so loss and latency could
// never be measured *as a function of offered load*. An open-loop Source
// keeps emitting on its own clock; what the downstream shaper does with
// the packet (queue it, shed it, expire it) is the measurement.
//
// Determinism: every random draw comes from a splittable SplitMix64
// stream (Rand), so a seed fully determines every arrival time. Two runs
// with the same seed are bit-identical, on the fast simulation kernel and
// on the cycle-by-cycle reference path alike — the differential
// determinism tests assert it.
package arrivals

import (
	"fmt"
	"math"
	"strings"

	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/sim"
)

// Rand is a splittable SplitMix64 PRNG. Unlike math/rand's single shared
// stream, a Rand can Split off independent child streams, so every source
// in a multi-class, multi-shard workload draws from its own deterministic
// sequence regardless of how the other sources interleave.
type Rand struct{ state uint64 }

// NewRand seeds a stream. Any seed is fine, including 0.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent child stream, advancing this one by one
// draw. Children of children are independent too.
func (r *Rand) Split() *Rand { return &Rand{state: r.Uint64() ^ 0x6A09E667F3BCC909} }

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Exp returns a unit-mean exponential draw (inverse-CDF on a uniform).
func (r *Rand) Exp() float64 { return -math.Log(1 - r.Float64()) }

// Process produces interarrival gaps in cycles. Stateful processes (OnOff,
// Trace) must not be shared between sources — every Source gets a fresh
// instance, like the qos drain policies.
type Process interface {
	Name() string
	// Gap returns the cycles until the next arrival (>= 1, so a source
	// always makes progress).
	Gap(r *Rand) sim.Time
}

// Process names for ByName.
const (
	ProcDeterministic = "deterministic"
	ProcPoisson       = "poisson"
	ProcOnOff         = "onoff"
)

// Names lists the selectable arrival processes (Trace is constructed
// programmatically from recorded gaps, not by name).
func Names() []string { return []string{ProcDeterministic, ProcPoisson, ProcOnOff} }

// ByName returns a constructor for fresh process instances with the given
// mean interarrival gap in cycles. The factory form matters: every source
// needs its own instance, and the mean is the only knob an offered-load
// sweep turns.
func ByName(name string, meanGap float64) (func() Process, error) {
	if meanGap <= 0 {
		return nil, fmt.Errorf("arrivals: mean interarrival gap must be positive, got %v", meanGap)
	}
	switch name {
	case "", ProcPoisson:
		return func() Process { return Poisson{Mean: meanGap} }, nil
	case ProcDeterministic:
		return func() Process { return Deterministic{Interval: sim.Time(math.Max(1, math.Round(meanGap)))} }, nil
	case ProcOnOff:
		return func() Process { return NewOnOff(meanGap, DefaultDuty, DefaultBurstLen) }, nil
	}
	return nil, fmt.Errorf("arrivals: unknown process %q (have %s)", name, strings.Join(Names(), ", "))
}

// Deterministic emits at a fixed interval — the constant-bit-rate source.
type Deterministic struct{ Interval sim.Time }

// Name implements Process.
func (Deterministic) Name() string { return ProcDeterministic }

// Gap implements Process.
func (d Deterministic) Gap(*Rand) sim.Time {
	if d.Interval < 1 {
		return 1
	}
	return d.Interval
}

// Poisson emits with exponentially distributed gaps of the given mean —
// the memoryless reference process for offered-load sweeps.
type Poisson struct{ Mean float64 }

// Name implements Process.
func (Poisson) Name() string { return ProcPoisson }

// Gap implements Process.
func (p Poisson) Gap(r *Rand) sim.Time {
	g := sim.Time(math.Round(p.Mean * r.Exp()))
	if g < 1 {
		g = 1
	}
	return g
}

// OnOff defaults: a source is "on" a quarter of the time, and an average
// on-period carries 32 arrivals — bursty enough that queues see the
// difference from Poisson at the same mean rate.
const (
	DefaultDuty     = 0.25
	DefaultBurstLen = 32
)

// OnOff is a two-state Markov-modulated (MMPP) burst source: Poisson
// arrivals at a high rate while "on", silence while "off", with
// exponentially distributed dwell times in both states. The overall mean
// gap equals the configured mean, but arrivals clump.
type OnOff struct {
	// BurstGap is the mean interarrival gap while on; OnMean and OffMean
	// the mean dwell times of the two states, all in cycles.
	BurstGap, OnMean, OffMean float64

	started bool
	off     bool
	dwell   float64 // cycles left in the current state
}

// NewOnOff builds an on/off source with overall mean gap meanGap, duty
// cycle duty (fraction of time on, in (0, 1]) and an average of burstLen
// arrivals per on-period.
func NewOnOff(meanGap, duty float64, burstLen int) *OnOff {
	if duty <= 0 || duty > 1 {
		duty = DefaultDuty
	}
	if burstLen < 1 {
		burstLen = DefaultBurstLen
	}
	burstGap := meanGap * duty
	onMean := burstGap * float64(burstLen)
	return &OnOff{
		BurstGap: burstGap,
		OnMean:   onMean,
		OffMean:  onMean * (1 - duty) / duty,
	}
}

// Name implements Process.
func (*OnOff) Name() string { return ProcOnOff }

// Gap implements Process.
func (p *OnOff) Gap(r *Rand) sim.Time {
	if !p.started {
		p.started = true
		p.dwell = p.OnMean * r.Exp()
	}
	carry := 0.0
	for {
		if p.off {
			carry += p.dwell
			p.off = false
			p.dwell = p.OnMean * r.Exp()
			continue
		}
		g := p.BurstGap * r.Exp()
		if g <= p.dwell {
			p.dwell -= g
			gap := sim.Time(math.Round(carry + g))
			if gap < 1 {
				gap = 1
			}
			return gap
		}
		carry += p.dwell
		p.off = true
		p.dwell = p.OffMean * r.Exp()
	}
}

// Trace replays a recorded gap sequence cyclically — the reproducible
// "replay yesterday's traffic" source. Gaps of 0 are lifted to 1.
type Trace struct {
	Gaps []sim.Time
	i    int
}

// Name implements Process.
func (*Trace) Name() string { return "trace" }

// Gap implements Process.
func (t *Trace) Gap(*Rand) sim.Time {
	if len(t.Gaps) == 0 {
		return 1
	}
	g := t.Gaps[t.i%len(t.Gaps)]
	t.i++
	if g < 1 {
		g = 1
	}
	return g
}

// Source emits open-loop arrivals as events on a simulation engine: each
// arrival schedules the next one on the source's own clock, never waiting
// for the emitted packet's completion — that independence is what makes
// offered load an input instead of an outcome.
type Source struct {
	eng  *sim.Engine
	proc Process
	rng  *Rand
	emit func(seq int)

	// Done, if set, runs once when the source stops (budget exhausted or
	// horizon reached).
	Done func()

	left    int // remaining arrivals; -1 = unbounded
	until   sim.Time
	seq     int
	tick    *sim.Ticker
	stopped bool
}

// NewSource binds a source to an engine. emit runs at each arrival's
// virtual time with the arrival sequence number (0-based); it must submit
// the packet and return (it must not run the engine).
func NewSource(eng *sim.Engine, proc Process, rng *Rand, emit func(seq int)) *Source {
	s := &Source{eng: eng, proc: proc, rng: rng, emit: emit}
	s.tick = eng.NewTicker(s.fire)
	return s
}

// Start schedules the first arrival one gap from now. count bounds the
// number of arrivals (-1 or 0 = unbounded); until, when non-zero, is an
// absolute virtual-time horizon past which no arrival is emitted. An
// unbounded source needs a horizon, or the simulation would never drain.
func (s *Source) Start(count int, until sim.Time) {
	if count <= 0 {
		count = -1
	}
	if count < 0 && until == 0 {
		panic("arrivals: unbounded source needs a horizon")
	}
	s.left = count
	s.until = until
	s.schedule()
}

// Emitted reports how many arrivals have fired so far.
func (s *Source) Emitted() int { return s.seq }

// Stopped reports whether the source has finished emitting.
func (s *Source) Stopped() bool { return s.stopped }

func (s *Source) schedule() {
	if s.left == 0 {
		s.stop()
		return
	}
	at := s.eng.Now() + s.proc.Gap(s.rng)
	if s.until != 0 && at > s.until {
		s.stop()
		return
	}
	s.tick.At(at)
}

func (s *Source) stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if s.Done != nil {
		s.Done()
	}
}

// fire is one arrival: emit, then schedule the successor. Emitting first
// matters for the stop edge — Done must not fire (and Stopped must not
// read true) until the final arrival has actually been emitted, since
// callers use Done as "no more emits will happen". The schedule stays
// open-loop either way: the gap is drawn from the source's own stream,
// never from anything emit does.
func (s *Source) fire() {
	seq := s.seq
	s.seq++
	if s.left > 0 {
		s.left--
	}
	s.emit(seq)
	s.schedule()
}

// DigestInit is the FNV-64a offset basis every arrival digest starts
// from.
const DigestInit uint64 = 0xcbf29ce484222325

// FoldArrival folds one arrival's (source index, sequence number,
// virtual time) into a running FNV-64a digest — the shared determinism
// witness: two runs with the same seed must produce the same digest, on
// the fast simulation kernel and the reference path alike.
func FoldArrival(d, source, seq uint64, at sim.Time) uint64 {
	for _, w := range [3]uint64{source, seq, uint64(at)} {
		for b := 0; b < 8; b++ {
			d = (d ^ (w >> (8 * b) & 0xff)) * 0x100000001b3
		}
	}
	return d
}

// StampNonce returns a fresh copy of base with the low 16 bits of seq
// stamped into its trailing bytes. The copy matters: a queued packet
// holds its nonce until dispatch, so stamping a shared buffer in place
// would retroactively rewrite every packet still waiting behind it.
func StampNonce(base []byte, seq int) []byte {
	n := append([]byte(nil), base...)
	n[len(n)-1] = byte(seq)
	n[len(n)-2] = byte(seq >> 8)
	return n
}

// ClassProfile describes one traffic class of an open-loop mix: its QoS
// class, its share of the total offered bits, its fixed packet size and
// suite, and an optional per-packet relative deadline. The load-curve
// harness and the cluster's open-loop runner share this shape.
type ClassProfile struct {
	Class  qos.Class
	Share  float64 // fraction of total offered bits
	Bytes  int     // payload bytes per packet
	Family cryptocore.Family
	KeyLen int
	TagLen int
	// Deadline is the per-packet relative deadline in cycles (0 = none):
	// a packet still queued this long after arrival is dropped with an
	// expiry verdict, and a late completion counts a deadline miss.
	Deadline sim.Time
}

// ExpectedVerdict reports whether err is a verdict the open-loop
// experiments treat as a measured outcome — success, or one of the
// shaper's explicit drops (shed, expired, aged) — rather than a hard
// failure.
func ExpectedVerdict(err error) bool {
	switch err {
	case nil, qos.ErrShed, qos.ErrExpired, qos.ErrAged:
		return true
	}
	return false
}

// Emitter turns arrivals into packets for one class profile: it owns the
// nonce/payload buffers, folds every arrival into a shared determinism
// digest, stamps a fresh per-packet nonce and converts the profile's
// relative deadline into absolute virtual time. The single-device and
// cluster E13 paths both build their sources on it, so the digest and
// packet wiring cannot drift apart.
type Emitter struct {
	eng     *sim.Engine
	prof    ClassProfile
	src     uint64
	digest  *uint64
	nonce   []byte
	payload []byte
	submit  func(class qos.Class, nonce, payload []byte, deadline sim.Time)
}

// NewEmitter binds an emitter to an engine, a class profile, a source
// index (folded into the digest alongside the sequence number) and the
// submit function that hands each packet downstream.
func NewEmitter(eng *sim.Engine, prof ClassProfile, srcIdx uint64, digest *uint64,
	submit func(class qos.Class, nonce, payload []byte, deadline sim.Time)) *Emitter {
	return &Emitter{
		eng: eng, prof: prof, src: srcIdx, digest: digest,
		nonce:   make([]byte, prof.NonceLen()),
		payload: make([]byte, prof.Bytes),
		submit:  submit,
	}
}

// Emit is the Source callback.
func (e *Emitter) Emit(seq int) {
	*e.digest = FoldArrival(*e.digest, e.src, uint64(seq), e.eng.Now())
	nonce := StampNonce(e.nonce, seq)
	deadline := sim.Time(0)
	if e.prof.Deadline != 0 {
		deadline = e.eng.Now() + e.prof.Deadline
	}
	e.submit(e.prof.Class, nonce, e.payload, deadline)
}

// MeanGap returns the class's mean interarrival gap in cycles at the
// given total offered load (in bits per cycle).
func (p ClassProfile) MeanGap(totalBitsPerCycle float64) float64 {
	classBits := p.Share * totalBitsPerCycle
	if classBits <= 0 {
		return math.Inf(1)
	}
	return float64(p.Bytes*8) / classBits
}

// NonceLen returns the suite's nonce length.
func (p ClassProfile) NonceLen() int {
	if p.Family == cryptocore.FamilyCCM {
		return 13
	}
	return 12
}
