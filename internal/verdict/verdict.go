// Package verdict defines the one classification of per-packet outcomes
// the whole stack shares. Every layer used to keep its own mapping from
// the sentinel errors (core.ErrNoResources, qos.ErrShed, ...) to a small
// integer — the cluster's verdict counters and the server's wire protocol
// statuses were two parallel switch statements that had to agree by
// convention. This package is that agreement, written once: a typed
// Verdict whose numeric values ARE the cluster counter indices and the
// low protocol status codes, a single For(err) classifier, and Err() to
// recover the canonical sentinel for a verdict.
//
// The sentinel error values themselves stay where they always lived
// (core, qos, radio) so existing == and errors.Is comparisons keep
// working; this package only centralizes the classification.
package verdict

import (
	"mccp/internal/core"
	"mccp/internal/qos"
	"mccp/internal/radio"
)

// Verdict classifies the outcome of one packet operation. The numeric
// values are load-bearing: they index the cluster's per-verdict counters
// and equal the server wire protocol's status codes (server.Status), so
// the cluster → wire mapping is the identity.
type Verdict uint8

// The verdicts, in wire-protocol status order.
const (
	// OK: the operation completed cleanly.
	OK Verdict = iota
	// Rejected: the paper's error flag — no idle core and no queue slot
	// (core.ErrNoResources), or session-level admission control.
	Rejected
	// Shed: dropped by QoS admission at a full class queue (qos.ErrShed)
	// or at a bounded device request queue (core.ErrQueueFull).
	Shed
	// Expired: dropped at dispatch because the packet's deadline passed
	// while it was queued (qos.ErrExpired).
	Expired
	// Aged: dropped by CoDel-style in-queue aging (qos.ErrAged).
	Aged
	// AuthFail: tag verification failed on decrypt (radio.ErrAuth).
	AuthFail
	// Failed: any other error.
	Failed

	// Num is the number of verdicts (the counter-array length).
	Num = int(Failed) + 1
)

// For classifies an operation's returned error. It is the single mapping
// the cluster counters and the server protocol statuses both derive from.
func For(err error) Verdict {
	switch err {
	case nil:
		return OK
	case core.ErrNoResources:
		return Rejected
	case qos.ErrShed, core.ErrQueueFull:
		return Shed
	case qos.ErrExpired:
		return Expired
	case qos.ErrAged:
		return Aged
	case radio.ErrAuth:
		return AuthFail
	}
	return Failed
}

var names = [Num]string{"ok", "rejected", "shed", "expired", "aged", "auth-fail", "failed"}

// String returns the verdict's wire-protocol name.
func (v Verdict) String() string {
	if int(v) >= Num {
		return "invalid"
	}
	return names[v]
}

// Err returns the canonical sentinel error for the verdict: the exact
// error value the stack raises for that outcome, so errors.Is and ==
// comparisons against the long-standing sentinels keep working. OK maps
// to nil; Shed maps to qos.ErrShed (the admission-control sentinel —
// core.ErrQueueFull classifies to the same verdict but is not the
// canonical representative); Failed maps to radio.ErrBadParam's generic
// cousin, a nil-free placeholder is not useful, so Failed returns a
// distinct generic error value.
func (v Verdict) Err() error {
	switch v {
	case OK:
		return nil
	case Rejected:
		return core.ErrNoResources
	case Shed:
		return qos.ErrShed
	case Expired:
		return qos.ErrExpired
	case Aged:
		return qos.ErrAged
	case AuthFail:
		return radio.ErrAuth
	}
	return errFailed
}

type failedError struct{}

func (failedError) Error() string { return "verdict: operation failed" }

var errFailed error = failedError{}
