package fleet

import (
	"testing"

	"mccp/internal/arrivals"
	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
)

func testCluster(t *testing.T, shards int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Shards:        shards,
		Router:        cluster.RouterLeastLoaded,
		QueueRequests: true,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func openSessions(t *testing.T, cl *cluster.Cluster, n int) []*cluster.Session {
	t.Helper()
	var out []*cluster.Session
	for i := 0; i < n; i++ {
		ses, err := cl.Open(cluster.OpenSpec{
			Suite:  core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16},
			KeyLen: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ses)
	}
	return out
}

func TestScaleDrainsAndReadmits(t *testing.T) {
	cl := testCluster(t, 4)
	f := New(cl)
	sessions := openSessions(t, cl, 8)
	if got := f.Active(); got != 4 {
		t.Fatalf("active = %d, want 4", got)
	}

	rep, err := f.Scale(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Active != 1 || f.Active() != 1 {
		t.Fatalf("scale-in report %+v, active %d", rep, f.Active())
	}
	for _, ses := range sessions {
		if ses.Shard() != 0 {
			t.Fatalf("session %d still on shard %d after scale-in", ses.ID(), ses.Shard())
		}
	}

	rep, err = f.Scale(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Active != 4 || rep.Moved == 0 {
		t.Fatalf("scale-out report %+v", rep)
	}
	perShard := map[int]int{}
	for _, ses := range sessions {
		perShard[ses.Shard()]++
	}
	if len(perShard) != 4 {
		t.Fatalf("sessions on %d shards after scale-out, want 4 (%v)", len(perShard), perShard)
	}

	if _, err := f.Scale(0); err == nil {
		t.Fatal("Scale(0) accepted")
	}
	if _, err := f.Scale(5); err == nil {
		t.Fatal("Scale(5) accepted on a 4-shard pool")
	}
}

func TestRollingSwapVisitsEveryShard(t *testing.T) {
	cl := testCluster(t, 3)
	f := New(cl)
	sessions := openSessions(t, cl, 6)

	want := SwapWindow(reconfig.EngineWhirlpool, reconfig.StagingRAM)
	var visited []int
	reports, err := f.RollingSwap(0, reconfig.EngineWhirlpool, reconfig.StagingRAM,
		func(shard int, window sim.Time) error {
			if window != want {
				t.Fatalf("window %d, want %d", window, want)
			}
			if cl.ShardActive(shard) {
				t.Fatalf("shard %d still active during its own swap", shard)
			}
			visited = append(visited, shard)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 || len(visited) != 3 {
		t.Fatalf("reports %v, visited %v", reports, visited)
	}
	for i, rep := range reports {
		if rep.Shard != i {
			t.Fatalf("report %d for shard %d, want rolling order", i, rep.Shard)
		}
		if rep.Took != want {
			t.Fatalf("shard %d swap took %d, want %d", rep.Shard, rep.Took, want)
		}
	}
	if got := f.Active(); got != 3 {
		t.Fatalf("active = %d after rolling swap, want 3", got)
	}
	// Every shard now exposes a Whirlpool core; traffic still flows.
	nonce := make([]byte, 12)
	if _, err := sessions[0].Encrypt(nonce, nil, []byte("post-swap traffic")); err != nil {
		t.Fatal(err)
	}
}

// offeredSeries bins the superposition of several independent on-off
// MMPP arrival streams (the E13 burst profile: a cluster serves many
// bursty sources, not one) into control intervals and converts each bin
// to offered Mbps — the signal the autoscaler consumes.
func offeredSeries(bins, sources int, binCycles sim.Time, meanGap float64, bytesPer int, seed uint64) []float64 {
	root := arrivals.NewRand(seed)
	out := make([]float64, bins)
	horizon := binCycles * sim.Time(bins)
	for s := 0; s < sources; s++ {
		rng := root.Split()
		proc := arrivals.NewOnOff(meanGap*float64(sources), arrivals.DefaultDuty, arrivals.DefaultBurstLen)
		var at sim.Time
		for {
			at += proc.Gap(rng)
			if at >= horizon {
				break
			}
			out[at/binCycles] += float64(bytesPer * 8)
		}
	}
	for i := range out {
		out[i] = out[i] / float64(binCycles) * sim.DefaultFreqHz / 1e6
	}
	return out
}

func TestAutoscalerHysteresisNoThrash(t *testing.T) {
	const knee = 1000.0 // Mbps per shard
	cfg := AutoscalerConfig{Min: 1, Max: 4, KneeMbpsPerShard: knee}
	a, err := NewAutoscaler(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Sixteen superposed bursty streams whose long-run average (~1300
	// Mbps, util 0.65 on two shards) sits inside the hysteresis band but
	// whose on-off bursts (4x the mean while on, silence while off)
	// cross both watermarks constantly bin-by-bin.
	series := offeredSeries(240, 16, 19200, 600, 512, 0xE13B)
	naive, naiveSteps := 2, 0
	for _, offered := range series {
		a.Observe(offered)
		// The controller the hysteresis exists to beat: step on every
		// single-observation threshold crossing.
		util := offered / (float64(naive) * knee)
		if util >= 0.85 && naive < cfg.Max {
			naive++
			naiveSteps++
		} else if util <= 0.50 && naive > cfg.Min {
			naive--
			naiveSteps++
		}
	}
	if naiveSteps < 10 {
		t.Fatalf("burst profile too tame: naive controller only took %d steps", naiveSteps)
	}
	if a.Steps() > naiveSteps/10 {
		t.Fatalf("autoscaler thrashed: %d steps under the MMPP burst (naive: %d)", a.Steps(), naiveSteps)
	}
}

func TestAutoscalerStepsUnderSustainedLoad(t *testing.T) {
	a, err := NewAutoscaler(AutoscalerConfig{Min: 1, Max: 4, KneeMbpsPerShard: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained overload grows the fleet one debounced step at a time.
	for i := 0; i < 20; i++ {
		a.Observe(3000)
	}
	if a.Active() != 4 {
		t.Fatalf("active = %d after sustained overload, want 4", a.Active())
	}
	// Sustained idle shrinks it back, but never below Min.
	for i := 0; i < 60; i++ {
		a.Observe(100)
	}
	if a.Active() != 1 {
		t.Fatalf("active = %d after sustained idle, want 1", a.Active())
	}
	// A retire that would immediately re-trip the high watermark is
	// refused: 2 shards at util 0.5 (exactly the low watermark) would
	// become util 1.0 on one shard.
	b, err := NewAutoscaler(AutoscalerConfig{Min: 1, Max: 4, KneeMbpsPerShard: 1000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		b.Observe(1000)
	}
	if b.Active() != 2 {
		t.Fatalf("active = %d, want 2 (flap-guard should refuse the retire)", b.Active())
	}
}
