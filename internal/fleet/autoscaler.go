package fleet

import (
	"fmt"
	"math"
)

// AutoscalerConfig tunes the hysteresis autoscaler. Utilization is
// offered load divided by the serving capacity (active shards times the
// per-shard saturation knee from the E13 load curves).
type AutoscalerConfig struct {
	// Min and Max bound the serving shard count.
	Min, Max int
	// KneeMbpsPerShard is one shard's saturation knee — the E13
	// calibration (harness.SaturationMbps).
	KneeMbpsPerShard float64
	// HighWater and LowWater are the utilization thresholds (defaults
	// 0.85 and 0.50). The gap between them is the hysteresis band: an
	// offered load oscillating inside it never changes the fleet size.
	HighWater, LowWater float64
	// ScaleUpAfter and ScaleDownAfter are the consecutive observations a
	// threshold must hold before the fleet steps (defaults 2 and 4 —
	// growing is cheap, retiring a shard forces a drain, so shrinking
	// demands more evidence).
	ScaleUpAfter, ScaleDownAfter int
	// Cooldown is the number of observations ignored after a step, so a
	// step's own utilization shift cannot trigger the next (default 3).
	Cooldown int
	// Smoothing is the EWMA weight applied to incoming load observations
	// (0 < Smoothing <= 1, default 0.05). The watermark comparison uses
	// the smoothed load, so an on-off burst shorter than the smoothing
	// horizon is averaged away before it can trip a step — the first
	// and strongest of the anti-thrash mechanisms.
	Smoothing float64
}

func (c *AutoscalerConfig) fill() error {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = c.Min
	}
	if c.Max < c.Min {
		return fmt.Errorf("fleet: autoscaler Max %d below Min %d", c.Max, c.Min)
	}
	if c.KneeMbpsPerShard <= 0 {
		return fmt.Errorf("fleet: autoscaler needs a positive per-shard saturation knee")
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.85
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.50
	}
	if c.LowWater >= c.HighWater {
		return fmt.Errorf("fleet: autoscaler low watermark %.2f must sit below high watermark %.2f",
			c.LowWater, c.HighWater)
	}
	if c.ScaleUpAfter <= 0 {
		c.ScaleUpAfter = 2
	}
	if c.ScaleDownAfter <= 0 {
		c.ScaleDownAfter = 4
	}
	if c.Cooldown < 0 {
		c.Cooldown = 0
	} else if c.Cooldown == 0 {
		c.Cooldown = 3
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.05
	}
	return nil
}

// Autoscaler decides the serving shard count from an offered-load
// signal. It is pure decision logic — feed it one observation per
// control interval with Observe and apply the returned target with
// Fleet.Scale. Four mechanisms prevent thrash under bursty (on-off
// MMPP) load: EWMA smoothing of the load signal, the watermark band,
// consecutive-observation debouncing, and a post-step cooldown.
type Autoscaler struct {
	cfg      AutoscalerConfig
	active   int
	hot      int
	cold     int
	cooldown int
	steps    int
	ewma     float64
	primed   bool
}

// NewAutoscaler builds an autoscaler starting at active shards.
func NewAutoscaler(cfg AutoscalerConfig, active int) (*Autoscaler, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if active < cfg.Min {
		active = cfg.Min
	}
	if active > cfg.Max {
		active = cfg.Max
	}
	return &Autoscaler{cfg: cfg, active: active}, nil
}

// Active returns the current target shard count.
func (a *Autoscaler) Active() int { return a.active }

// Steps returns the number of scale steps taken so far (the thrash
// metric: a well-damped controller takes few).
func (a *Autoscaler) Steps() int { return a.steps }

// Utilization returns the fraction of serving capacity an offered load
// consumes at the current fleet size.
func (a *Autoscaler) Utilization(offeredMbps float64) float64 {
	return offeredMbps / (float64(a.active) * a.cfg.KneeMbpsPerShard)
}

// Smoothed returns the EWMA-smoothed offered load the watermark
// comparisons use.
func (a *Autoscaler) Smoothed() float64 { return a.ewma }

// Observe feeds one control-interval observation of offered load and
// returns the (possibly updated) target shard count.
func (a *Autoscaler) Observe(offeredMbps float64) int {
	// A NaN, Inf or negative rate (a zero-length measurement interval
	// upstream, an uninitialized counter) carries no information and —
	// fed to the EWMA — would poison every later comparison: NaN never
	// compares true, so the controller would freeze at the current size
	// forever. Drop the sample instead; debounce and cooldown state are
	// untouched, exactly as if the interval had not elapsed.
	if math.IsNaN(offeredMbps) || math.IsInf(offeredMbps, 0) || offeredMbps < 0 {
		return a.active
	}
	if !a.primed {
		a.ewma, a.primed = offeredMbps, true
	} else {
		a.ewma += a.cfg.Smoothing * (offeredMbps - a.ewma)
	}
	if a.cooldown > 0 {
		a.cooldown--
		a.hot, a.cold = 0, 0
		return a.active
	}
	util := a.Utilization(a.ewma)
	switch {
	case util >= a.cfg.HighWater:
		a.hot++
		a.cold = 0
	case util <= a.cfg.LowWater:
		a.cold++
		a.hot = 0
	default:
		a.hot, a.cold = 0, 0
	}
	if a.hot >= a.cfg.ScaleUpAfter && a.active < a.cfg.Max {
		a.step(+1)
	} else if a.cold >= a.cfg.ScaleDownAfter && a.active > a.cfg.Min {
		// Refuse a retire that would immediately re-trip the high
		// watermark at the smaller fleet — that retire is a guaranteed
		// flap, not a saving.
		if util*float64(a.active)/float64(a.active-1) < a.cfg.HighWater {
			a.step(-1)
		} else {
			a.cold = 0
		}
	}
	return a.active
}

func (a *Autoscaler) step(d int) {
	a.active += d
	a.steps++
	a.hot, a.cold = 0, 0
	a.cooldown = a.cfg.Cooldown
}
