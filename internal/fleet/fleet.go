// Package fleet is the elastic control plane over a cluster: rolling
// per-shard algorithm swaps (drain voice-first, rewrite the
// reconfigurable region while the remaining shards keep serving, then
// re-admit) and a hysteresis autoscaler that grows or shrinks the
// serving shard set from the arrivals offered-load signal versus the
// E13-calibrated saturation knee. It is the paper's §VII.B runtime
// agility lifted from a single device to the cluster — the machinery
// behind the E15 "agility cost under traffic" experiment.
package fleet

import (
	"fmt"

	"mccp/internal/cluster"
	"mccp/internal/firmware"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
)

// Fleet drives elastic operations on a caller-owned cluster. All
// methods are front-end-only (same single-caller discipline as the
// cluster itself).
type Fleet struct {
	cl *cluster.Cluster
}

// New binds a fleet controller to a cluster.
func New(cl *cluster.Cluster) *Fleet { return &Fleet{cl: cl} }

// Cluster returns the underlying cluster.
func (f *Fleet) Cluster() *cluster.Cluster { return f.cl }

// Active returns the number of shards currently serving placements.
func (f *Fleet) Active() int { return f.cl.ActiveShards() }

// FailOver is the fleet-level crash response: quarantine a dead shard
// (detected by its frozen heartbeat in cluster.Snapshot) and re-home
// every session it held onto the survivors, voice first. See
// cluster.FailOver; a quarantined shard stays out of every later Scale
// and RollingSwap rotation.
func (f *Fleet) FailOver(dead int) (cluster.RehomeReport, error) {
	return f.cl.FailOver(dead)
}

// ScaleReport describes one Scale call.
type ScaleReport struct {
	// Active is the serving shard count after the call; Moved the number
	// of sessions re-homed by the rebalance.
	Active int
	Moved  int
}

// Scale sets the serving shard set to shards 0..n-1 and rebalances:
// scale-in drains the retired shards' sessions voice-first onto the
// survivors, scale-out re-admits the reactivated shards and spreads
// load back. The shard pool itself is fixed at construction (the
// hardware exists); Scale changes which shards the routers may use —
// the cluster-scope analogue of powering cores up and down.
func (f *Fleet) Scale(n int) (ScaleReport, error) {
	// Quarantined shards are corpses, not capacity: they stay out of the
	// serving set whatever n says, and the pool shrinks accordingly.
	pool := 0
	for id := 0; id < f.cl.Shards(); id++ {
		if !f.cl.QuarantinedShard(id) {
			pool++
		}
	}
	if n < 1 || n > pool {
		return ScaleReport{}, fmt.Errorf("fleet: cannot scale to %d shards (pool has %d healthy)", n, pool)
	}
	assigned := 0
	for id := 0; id < f.cl.Shards(); id++ {
		if f.cl.QuarantinedShard(id) {
			continue
		}
		active := assigned < n
		if active {
			assigned++
		}
		if err := f.cl.SetShardActive(id, active); err != nil {
			return ScaleReport{}, err
		}
	}
	moved := f.cl.Rebalance()
	return ScaleReport{Active: n, Moved: moved}, nil
}

// SwapReport describes one shard's leg of a rolling swap.
type SwapReport struct {
	Shard int
	// Took is the swap's virtual duration (bitstream stream-in plus the
	// 1024-word controller image rewrite) at the source speed used.
	Took sim.Time
	// Drained counts sessions re-homed off the shard before the swap;
	// Readmitted counts sessions re-homed after it was reactivated.
	Drained    int
	Readmitted int
}

// SwapWindow returns the expected virtual duration of one swap: the
// bitstream window rolling legs overlap with served traffic.
func SwapWindow(target reconfig.Engine, src reconfig.Source) sim.Time {
	n := reconfig.BitstreamBytes(target.Component())
	return src.Cycles(n, sim.DefaultFreqHz) + firmware.ImageWordsLoadCycles
}

// RollingSwap rewrites core coreID to the target engine on every active
// shard, one shard at a time: deactivate the shard, drain its sessions
// voice-first onto the others (Rebalance), start the bitstream swap
// with BeginReconfigure, run the caller's during hook — the measurement
// window: the remaining shards serve the arrival stream for the
// duration of the bitstream window — then collect the swap and re-admit
// the shard. A nil during hook swaps back-to-back. If during returns an
// error the in-flight swap is still collected and the shard reactivated
// before the error is returned, so the cluster is never left drained.
func (f *Fleet) RollingSwap(coreID int, target reconfig.Engine, src reconfig.Source, during func(shard int, window sim.Time) error) ([]SwapReport, error) {
	window := SwapWindow(target, src)
	var reports []SwapReport
	for id := 0; id < f.cl.Shards(); id++ {
		if !f.cl.ShardActive(id) {
			continue
		}
		// A solo shard swaps in place — there is nowhere to drain to, and
		// the paper's single-device story holds: the other cores keep
		// serving while one region is rewritten.
		solo := f.cl.ActiveShards() == 1
		var drained int
		if !solo {
			if err := f.cl.SetShardActive(id, false); err != nil {
				return reports, err
			}
			drained = f.cl.Rebalance()
		}
		op, err := f.cl.BeginReconfigure(id, coreID, target, src)
		if err != nil {
			if !solo {
				f.cl.SetShardActive(id, true)
				f.cl.Rebalance()
			}
			return reports, fmt.Errorf("fleet: shard %d swap: %w", id, err)
		}
		var duringErr error
		if during != nil {
			duringErr = during(id, window)
		}
		took, swapErr := op.Wait()
		var readmitted int
		if !solo {
			if err := f.cl.SetShardActive(id, true); err != nil {
				return reports, err
			}
			readmitted = f.cl.Rebalance()
		}
		if swapErr != nil {
			return reports, fmt.Errorf("fleet: shard %d swap: %w", id, swapErr)
		}
		if duringErr != nil {
			return reports, duringErr
		}
		reports = append(reports, SwapReport{
			Shard:      id,
			Took:       took,
			Drained:    drained,
			Readmitted: readmitted,
		})
	}
	return reports, nil
}

// Reconfigure swaps one core on one shard and rebalances — the
// single-shard form of RollingSwap, delegating to the cluster.
func (f *Fleet) Reconfigure(shardID, coreID int, target reconfig.Engine, src reconfig.Source) (sim.Time, int, error) {
	return f.cl.Reconfigure(shardID, coreID, target, src)
}
