package fleet

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"mccp/internal/cluster"
	"mccp/internal/reconfig"
)

// TestAutoscalerStepUpRefusedAtPool: with the fleet already at the full
// pool, sustained overload is an observation, not a step — the
// controller must not count phantom capacity.
func TestAutoscalerStepUpRefusedAtPool(t *testing.T) {
	a, err := NewAutoscaler(AutoscalerConfig{Min: 1, Max: 2, KneeMbpsPerShard: 1000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if got := a.Observe(5000); got != 2 {
			t.Fatalf("observation %d: target %d, want 2 (pool exhausted)", i, got)
		}
	}
	if a.Steps() != 0 {
		t.Fatalf("controller stepped %d times with nowhere to grow", a.Steps())
	}
}

// TestAutoscalerFlapGuardFirstPostCooldown: the very first observation
// after a cooldown expires satisfies the (single-observation) retire
// debounce, but the flap guard still refuses it when the smaller fleet
// would immediately re-breach the high watermark.
func TestAutoscalerFlapGuardFirstPostCooldown(t *testing.T) {
	cfg := AutoscalerConfig{
		Min: 1, Max: 4, KneeMbpsPerShard: 1000,
		ScaleDownAfter: 1, Smoothing: 1, // no EWMA lag, instant retire evidence
	}
	a, err := NewAutoscaler(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// util 0.50 on 3 shards -> retire to 2 is safe (util 0.75) and taken.
	if got := a.Observe(1500); got != 2 {
		t.Fatalf("first retire refused: target %d, want 2", got)
	}
	// Cooldown (default 3) swallows the next observations.
	for i := 0; i < 3; i++ {
		if got := a.Observe(1000); got != 2 {
			t.Fatalf("cooldown observation %d stepped to %d", i, got)
		}
	}
	// First post-cooldown observation: util 0.50 on 2 shards trips the
	// low watermark instantly (ScaleDownAfter 1), but one shard would run
	// at util 1.00 >= high water — a guaranteed flap. Refused, forever.
	for i := 0; i < 10; i++ {
		if got := a.Observe(1000); got != 2 {
			t.Fatalf("flap guard failed on post-cooldown observation %d: target %d", i, got)
		}
	}
	if a.Steps() != 1 {
		t.Fatalf("steps = %d, want exactly the one safe retire", a.Steps())
	}
}

// TestAutoscalerIgnoresNonFinite: NaN/Inf/negative offered rates (a
// zero-length measurement interval upstream) are dropped whole — they
// must neither step the fleet nor poison the EWMA for later samples.
func TestAutoscalerIgnoresNonFinite(t *testing.T) {
	a, err := NewAutoscaler(AutoscalerConfig{Min: 1, Max: 4, KneeMbpsPerShard: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Poison attempts before priming and after.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -42} {
		if got := a.Observe(bad); got != 1 {
			t.Fatalf("Observe(%v) stepped to %d", bad, got)
		}
	}
	a.Observe(500)
	if s := a.Smoothed(); s != 500 {
		t.Fatalf("smoothed = %v after first finite sample, want 500 (EWMA poisoned?)", s)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		a.Observe(bad)
		if s := a.Smoothed(); math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("Observe(%v) poisoned the EWMA: %v", bad, s)
		}
	}
	// The controller still works after the garbage.
	for i := 0; i < 80; i++ {
		a.Observe(5000)
	}
	if a.Active() != 4 {
		t.Fatalf("active = %d after sustained overload, want 4", a.Active())
	}
}

// TestScaleSkipsQuarantinedShards: after a fail-over the corpse is not
// capacity — Scale assigns the serving set from the healthy pool only,
// and nothing can re-admit the quarantined shard.
func TestScaleSkipsQuarantinedShards(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Shards: 3, Router: cluster.RouterLeastLoaded,
		QueueRequests: true, Seed: 23, Shape: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := New(cl)
	sessions := openSessions(t, cl, 6)

	rep, err := f.FailOver(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved+rep.Lost == 0 && sessionsOn(sessions, 1) > 0 {
		t.Fatalf("fail-over left sessions on the corpse: %+v", rep)
	}
	for _, ses := range sessions {
		if !ses.Closed() && ses.Shard() == 1 {
			t.Fatalf("session %d still homed on quarantined shard", ses.ID())
		}
	}
	if err := cl.SetShardActive(1, true); err == nil {
		t.Fatal("quarantined shard re-admitted by SetShardActive")
	}
	if _, err := f.Scale(3); err == nil {
		t.Fatal("Scale(3) accepted with only 2 healthy shards")
	}
	if _, err := f.Scale(2); err != nil {
		t.Fatal(err)
	}
	if !cl.ShardActive(0) || cl.ShardActive(1) || !cl.ShardActive(2) {
		t.Fatalf("Scale(2) serving set: %v %v %v, want shards 0 and 2",
			cl.ShardActive(0), cl.ShardActive(1), cl.ShardActive(2))
	}
	if _, err := f.Scale(1); err != nil {
		t.Fatal(err)
	}
	if f.Active() != 1 || cl.ShardActive(1) {
		t.Fatalf("Scale(1) active=%d, corpse active=%v", f.Active(), cl.ShardActive(1))
	}
}

func sessionsOn(sessions []*cluster.Session, shard int) int {
	n := 0
	for _, ses := range sessions {
		if !ses.Closed() && ses.Shard() == shard {
			n++
		}
	}
	return n
}

// TestSnapshotDuringScaleStress hammers Snapshot (and the other
// any-goroutine metrics surfaces) from readers while the front end
// scales in and out and rolling-swaps — the torn-read hunt this test
// exists for runs under -race in CI.
func TestSnapshotDuringScaleStress(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Shards: 4, Router: cluster.RouterLeastLoaded,
		QueueRequests: true, Seed: 29, Shape: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f := New(cl)
	openSessions(t, cl, 16)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				m := cl.Snapshot()
				if len(m.Shards) != 4 {
					t.Errorf("snapshot saw %d shards", len(m.Shards))
					return
				}
				active := 0
				for i, sh := range m.Shards {
					if sh.Active {
						active++
					}
					_ = cl.NextHeartbeat(i)
					_ = cl.QuarantinedShard(i)
				}
				if active < 1 || active > 4 {
					t.Errorf("snapshot saw %d active shards", active)
					return
				}
			}
		}()
	}
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters && !t.Failed(); i++ {
		if _, err := f.Scale(1 + i%4); err != nil {
			t.Errorf("scale: %v", err)
			break
		}
		if i%8 == 3 {
			if _, err := f.RollingSwap(0, reconfig.EngineWhirlpool, reconfig.StagingRAM, nil); err != nil {
				t.Errorf("rolling swap: %v", err)
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
