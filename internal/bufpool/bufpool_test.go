package bufpool

import "testing"

func TestClassRounding(t *testing.T) {
	b := Bytes(100)
	if cap(b) < 100 || len(b) != 0 {
		t.Fatalf("Bytes(100): len=%d cap=%d", len(b), cap(b))
	}
	if cap(b) != 128 {
		t.Fatalf("Bytes(100) capacity %d, want class 128", cap(b))
	}
	PutBytes(b)
	b2 := Bytes(128)
	if cap(b2) != 128 {
		t.Fatalf("recycled capacity %d", cap(b2))
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	b := Bytes(1 << 20)
	if cap(b) < 1<<20 {
		t.Fatalf("oversize request shorted: cap=%d", cap(b))
	}
	PutBytes(b) // dropped, must not panic or poison a class
	if got := Bytes(64); cap(got) > 8192 {
		t.Fatalf("oversize buffer entered a class: cap=%d", cap(got))
	}
}

func TestForeignPutDropped(t *testing.T) {
	PutWords(make([]uint32, 0, 100)) // non-class capacity
	w := Words(100)
	if cap(w) != 128 {
		t.Fatalf("foreign buffer served: cap=%d", cap(w))
	}
}

func TestBytesN(t *testing.T) {
	b := BytesN(300)
	if len(b) != 300 || cap(b) != 512 {
		t.Fatalf("BytesN(300): len=%d cap=%d", len(b), cap(b))
	}
}

func TestRecycleIsAllocFree(t *testing.T) {
	b := Bytes(2048)
	PutBytes(b)
	allocs := testing.AllocsPerRun(100, func() {
		x := Bytes(2048)
		PutBytes(x)
	})
	if allocs > 0 {
		t.Fatalf("recycled Get/Put allocated %.1f objects per run", allocs)
	}
}
