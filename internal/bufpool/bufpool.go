// Package bufpool is the packet-buffer arena shared by the simulation's
// host-side hot path: trafficgen packet buffers (nonce/AAD/payload), the
// radio layer's frame-block and crossbar word staging buffers, and the
// assembled ciphertext/plaintext results. Steady-state packet traffic
// recycles every one of these instead of allocating, which is what keeps
// BenchmarkCluster's allocs/packet near zero.
//
// Ownership is explicit and opt-in: Get hands the caller a buffer, Put
// returns it. A consumer that never calls Put simply leaves the buffer to
// the garbage collector — nothing is ever recycled behind a live
// reference, so APIs that hand pooled buffers to callbacks stay safe for
// callers that retain them. The flip side: a caller that does Put a
// buffer must not touch it afterwards.
//
// The pools are deliberately content-agnostic: a recycled buffer carries
// stale bytes, so producers must fully overwrite the range they hand out
// (every in-repo user does — rand.Read fills, appends start from length
// zero). Buffer reuse therefore cannot influence any simulated result,
// and the pools are safe for concurrent use from the cluster's shard
// goroutines.
package bufpool

import (
	"sync"

	"mccp/internal/bits"
)

// classes are power-of-two capacity buckets. Requests above the largest
// class fall through to plain make and Puts of such buffers are dropped.
const (
	minClassBits = 6  // 64
	maxClassBits = 13 // 8192
	numClasses   = maxClassBits - minClassBits + 1
)

// classFor returns the bucket index whose capacity is >= n, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	for c := 0; c < numClasses; c++ {
		if n <= 1<<(minClassBits+c) {
			return c
		}
	}
	return -1
}

// putClassFor returns the bucket a buffer of capacity c can serve, or -1
// when the capacity matches no class (foreign buffer: drop it).
func putClassFor(c int) int {
	for i := 0; i < numClasses; i++ {
		if c == 1<<(minClassBits+i) {
			return i
		}
	}
	return -1
}

// pool is one element type's class array. A mutex-protected stack per
// class beats sync.Pool here: no per-Put boxing, and the packet rate
// (microseconds apart, a handful of goroutines) never contends.
type pool[T any] struct {
	mu    sync.Mutex
	stack [numClasses][][]T
}

func (p *pool[T]) get(n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, 0, n)
	}
	p.mu.Lock()
	s := p.stack[c]
	if len(s) == 0 {
		p.mu.Unlock()
		return make([]T, 0, 1<<(minClassBits+c))
	}
	b := s[len(s)-1]
	s[len(s)-1] = nil
	p.stack[c] = s[:len(s)-1]
	p.mu.Unlock()
	return b[:0]
}

func (p *pool[T]) put(b []T) {
	c := putClassFor(cap(b))
	if c < 0 {
		return
	}
	p.mu.Lock()
	p.stack[c] = append(p.stack[c], b[:0])
	p.mu.Unlock()
}

var (
	bytePool  pool[byte]
	wordPool  pool[uint32]
	blockPool pool[bits.Block]
)

// Bytes returns a zeroed-length byte buffer with capacity >= n.
func Bytes(n int) []byte { return bytePool.get(n) }

// BytesN returns a length-n byte buffer (contents undefined; overwrite it).
func BytesN(n int) []byte { return bytePool.get(n)[:n] }

// PutBytes recycles a buffer obtained from Bytes/BytesN. The caller must
// not use b afterwards.
func PutBytes(b []byte) { bytePool.put(b) }

// Words returns a zeroed-length []uint32 with capacity >= n.
func Words(n int) []uint32 { return wordPool.get(n) }

// PutWords recycles a buffer obtained from Words.
func PutWords(w []uint32) { wordPool.put(w) }

// Blocks returns a zeroed-length []bits.Block with capacity >= n.
func Blocks(n int) []bits.Block { return blockPool.get(n) }

// PutBlocks recycles a buffer obtained from Blocks.
func PutBlocks(b []bits.Block) { blockPool.put(b) }
