package twofish

import (
	"testing"
	"testing/quick"

	"mccp/internal/bits"
)

func TestKnownVector128(t *testing.T) {
	c := MustNew(make([]byte, 16))
	got := c.Encrypt(bits.Block{})
	if got.Hex() != "9f589f5cf6122c32b6bfec2f2ae8c35a" {
		t.Fatalf("Twofish-128 E_0(0) = %s, want 9f589f5cf6122c32b6bfec2f2ae8c35a", got.Hex())
	}
}

// TestIteratedVector reproduces the paper's iterated table construction:
// starting from all-zero key and plaintext, repeatedly set
// (key, pt) <- (pt_prev||..., ct). After one step with the 128-bit key the
// published I=2 ciphertext is D491DB16E7B1C39E86CB086B789F5419.
func TestIteratedVector(t *testing.T) {
	key := make([]byte, 16)
	var pt bits.Block
	ct := MustNew(key).Encrypt(pt) // I=1
	// I=2: key = previous plaintext (zero), pt = previous ciphertext.
	copy(key, pt[:])
	ct2 := MustNew(key).Encrypt(ct)
	if ct2.Hex() != "d491db16e7b1c39e86cb086b789f5419" {
		t.Fatalf("I=2 ciphertext = %s, want d491db16e7b1c39e86cb086b789f5419", ct2.Hex())
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key [32]byte, pt bits.Block, sel uint8) bool {
		sizes := []int{16, 24, 32}
		c := MustNew(key[:sizes[int(sel)%3]])
		return c.Decrypt(c.Encrypt(pt)) == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQPermutations(t *testing.T) {
	seen0 := map[byte]bool{}
	seen1 := map[byte]bool{}
	for i := 0; i < 256; i++ {
		if seen0[q0[i]] || seen1[q1[i]] {
			t.Fatalf("q tables not permutations at %d", i)
		}
		seen0[q0[i]] = true
		seen1[q1[i]] = true
	}
	// Published anchors: q0(0) = 0xA9, q1(0) = 0x75.
	if q0[0] != 0xA9 {
		t.Errorf("q0[0] = %#x, want 0xA9", q0[0])
	}
	if q1[0] != 0x75 {
		t.Errorf("q1[0] = %#x, want 0x75", q1[0])
	}
}

func TestAvalanche(t *testing.T) {
	c := MustNew([]byte("sixteen byte key"))
	base := c.Encrypt(bits.Block{})
	var flipped bits.Block
	flipped[15] = 1
	diff := 0
	out := c.Encrypt(flipped)
	for i := range base {
		for k := 0; k < 8; k++ {
			if (base[i]^out[i])>>uint(k)&1 != 0 {
				diff++
			}
		}
	}
	if diff < 40 || diff > 88 {
		t.Errorf("avalanche: %d/128 bits flipped", diff)
	}
}

func TestInvalidKey(t *testing.T) {
	if _, err := New(make([]byte, 17)); err == nil {
		t.Error("17-byte key accepted")
	}
	e := NewEngine()
	if err := e.LoadKey(make([]byte, 3)); err == nil {
		t.Error("engine accepted bad key")
	}
}

func TestEngineTiming(t *testing.T) {
	e := NewEngine()
	if err := e.LoadKey(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	ready := e.Start(100, bits.Block{})
	if ready != 100+CoreCycles {
		t.Errorf("ready at %d, want %d", ready, 100+CoreCycles)
	}
	if !e.Busy() {
		t.Error("engine should be busy")
	}
	got := e.Collect()
	if got.Hex() != "9f589f5cf6122c32b6bfec2f2ae8c35a" {
		t.Errorf("engine output = %s", got.Hex())
	}
	if e.Busy() {
		t.Error("engine should be idle after Collect")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := MustNew(make([]byte, 16))
	var pt bits.Block
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		pt = c.Encrypt(pt)
	}
}
