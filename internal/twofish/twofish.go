// Package twofish implements the Twofish block cipher (Schneier et al.,
// 1998) from scratch. The paper's conclusion claims the MCCP's "AES core
// may be easily replaced by any other 128-bit block cipher (such as
// Twofish)"; this package substantiates that claim: Engine drops into the
// Cryptographic Unit's reconfigurable region and every mode of operation's
// firmware runs unchanged on it.
//
// Twofish is a 16-round Feistel network over four 32-bit words with
// key-dependent S-boxes (built from the q0/q1 permutations and the key
// material via the RS code), an MDS diffusion matrix over GF(2^8) mod
// x^8+x^6+x^5+x^3+1, a pseudo-Hadamard transform and 1-bit rotations.
package twofish

import (
	"encoding/binary"
	"fmt"

	"mccp/internal/bits"
)

const rounds = 16

// rsPoly and mdsPoly are the GF(2^8) moduli of the RS and MDS codes.
const (
	rsPoly  = 0x14D
	mdsPoly = 0x169
)

// The q0/q1 fixed permutations, built from their 4-bit mini-box tables.
var q0, q1 [256]byte

func init() {
	build := func(t0, t1, t2, t3 [16]byte) (q [256]byte) {
		ror4 := func(x byte) byte { return (x>>1 | x<<3) & 0xF }
		for x := 0; x < 256; x++ {
			a0, b0 := byte(x)/16, byte(x)%16
			a1 := a0 ^ b0
			b1 := (a0 ^ ror4(b0) ^ (8 * a0 % 16)) & 0xF
			a2, b2 := t0[a1], t1[b1]
			a3 := a2 ^ b2
			b3 := (a2 ^ ror4(b2) ^ (8 * a2 % 16)) & 0xF
			a4, b4 := t2[a3], t3[b3]
			q[x] = 16*b4 + a4
		}
		return
	}
	q0 = build(
		[16]byte{0x8, 0x1, 0x7, 0xD, 0x6, 0xF, 0x3, 0x2, 0x0, 0xB, 0x5, 0x9, 0xE, 0xC, 0xA, 0x4},
		[16]byte{0xE, 0xC, 0xB, 0x8, 0x1, 0x2, 0x3, 0x5, 0xF, 0x4, 0xA, 0x6, 0x7, 0x0, 0x9, 0xD},
		[16]byte{0xB, 0xA, 0x5, 0xE, 0x6, 0xD, 0x9, 0x0, 0xC, 0x8, 0xF, 0x3, 0x2, 0x4, 0x7, 0x1},
		[16]byte{0xD, 0x7, 0xF, 0x4, 0x1, 0x2, 0x6, 0xE, 0x9, 0xB, 0x3, 0x0, 0x8, 0x5, 0xC, 0xA},
	)
	q1 = build(
		[16]byte{0x2, 0x8, 0xB, 0xD, 0xF, 0x7, 0x6, 0xE, 0x3, 0x1, 0x9, 0x4, 0x0, 0xA, 0xC, 0x5},
		[16]byte{0x1, 0xE, 0x2, 0xB, 0x4, 0xC, 0x3, 0x7, 0x6, 0xD, 0xA, 0x5, 0xF, 0x9, 0x0, 0x8},
		[16]byte{0x4, 0xC, 0x7, 0x5, 0x1, 0x6, 0x9, 0xA, 0x0, 0xE, 0xD, 0x8, 0x2, 0xB, 0x3, 0xF},
		[16]byte{0xB, 0x9, 0x5, 0x1, 0xC, 0x3, 0xD, 0xE, 0x6, 0x4, 0x7, 0xF, 0x2, 0x0, 0x8, 0xA},
	)
}

// gfMul multiplies in GF(2^8) modulo poly.
func gfMul(a, b byte, poly uint16) byte {
	var p uint16
	x, y := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if y&1 != 0 {
			p ^= x
		}
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
		y >>= 1
	}
	return byte(p)
}

var mds = [4][4]byte{
	{0x01, 0xEF, 0x5B, 0x5B},
	{0x5B, 0xEF, 0xEF, 0x01},
	{0xEF, 0x5B, 0x01, 0xEF},
	{0xEF, 0x01, 0xEF, 0x5B},
}

var rs = [4][8]byte{
	{0x01, 0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E},
	{0xA4, 0x56, 0x82, 0xF3, 0x1E, 0xC6, 0x68, 0xE5},
	{0x02, 0xA1, 0xFC, 0xC1, 0x47, 0xAE, 0x3D, 0x19},
	{0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E, 0x03},
}

// mdsMul applies the MDS matrix to four bytes, returning a 32-bit word
// (little-endian byte significance, per the spec).
func mdsMul(y [4]byte) uint32 {
	var z uint32
	for i := 0; i < 4; i++ {
		var acc byte
		for j := 0; j < 4; j++ {
			acc ^= gfMul(mds[i][j], y[j], mdsPoly)
		}
		z |= uint32(acc) << (8 * uint(i))
	}
	return z
}

// h is the Twofish h-function over the key words l (length k = 2, 3 or 4).
func h(x uint32, l []uint32) uint32 {
	var y [4]byte
	for i := 0; i < 4; i++ {
		y[i] = byte(x >> (8 * uint(i)))
	}
	lb := func(w int, i int) byte { return byte(l[w] >> (8 * uint(i))) }
	k := len(l)
	if k >= 4 {
		y[0] = q1[y[0]] ^ lb(3, 0)
		y[1] = q0[y[1]] ^ lb(3, 1)
		y[2] = q0[y[2]] ^ lb(3, 2)
		y[3] = q1[y[3]] ^ lb(3, 3)
	}
	if k >= 3 {
		y[0] = q1[y[0]] ^ lb(2, 0)
		y[1] = q1[y[1]] ^ lb(2, 1)
		y[2] = q0[y[2]] ^ lb(2, 2)
		y[3] = q0[y[3]] ^ lb(2, 3)
	}
	y[0] = q1[q0[q0[y[0]]^lb(1, 0)]^lb(0, 0)]
	y[1] = q0[q0[q1[y[1]]^lb(1, 1)]^lb(0, 1)]
	y[2] = q1[q1[q0[y[2]]^lb(1, 2)]^lb(0, 2)]
	y[3] = q0[q1[q1[y[3]]^lb(1, 3)]^lb(0, 3)]
	return mdsMul(y)
}

// Cipher is an expanded-key Twofish instance.
type Cipher struct {
	k    int        // key words / 2 (2, 3 or 4)
	sub  [40]uint32 // round subkeys
	sbox []uint32   // S vector for g (len k, reversed order)
}

// New expands a 16-, 24- or 32-byte key.
func New(key []byte) (*Cipher, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("twofish: invalid key length %d", len(key))
	}
	k := len(key) / 8
	me := make([]uint32, k)
	mo := make([]uint32, k)
	for i := 0; i < k; i++ {
		me[i] = binary.LittleEndian.Uint32(key[8*i:])
		mo[i] = binary.LittleEndian.Uint32(key[8*i+4:])
	}
	// S vector from the RS code, in reverse order.
	s := make([]uint32, k)
	for i := 0; i < k; i++ {
		var v uint32
		for row := 0; row < 4; row++ {
			var acc byte
			for col := 0; col < 8; col++ {
				acc ^= gfMul(rs[row][col], key[8*i+col], rsPoly)
			}
			v |= uint32(acc) << (8 * uint(row))
		}
		s[k-1-i] = v
	}
	c := &Cipher{k: k, sbox: s}
	const rho = 0x01010101
	for i := 0; i < 20; i++ {
		a := h(uint32(2*i)*rho, me)
		b := rol(h(uint32(2*i+1)*rho, mo), 8)
		c.sub[2*i] = a + b
		c.sub[2*i+1] = rol(a+2*b, 9)
	}
	return c, nil
}

// MustNew is New for known-good keys.
func MustNew(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

func rol(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }
func ror(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// g is the key-dependent S-box function.
func (c *Cipher) g(x uint32) uint32 { return h(x, c.sbox) }

// Encrypt enciphers one block. Twofish's external byte order is
// little-endian per 32-bit word.
func (c *Cipher) Encrypt(in bits.Block) bits.Block {
	var r [4]uint32
	for i := range r {
		r[i] = binary.LittleEndian.Uint32(in[4*i:]) ^ c.sub[i]
	}
	for rd := 0; rd < rounds; rd++ {
		t0 := c.g(r[0])
		t1 := c.g(rol(r[1], 8))
		f0 := t0 + t1 + c.sub[8+2*rd]
		f1 := t0 + 2*t1 + c.sub[9+2*rd]
		r[2] = ror(r[2]^f0, 1)
		r[3] = rol(r[3], 1) ^ f1
		if rd < rounds-1 {
			r[0], r[1], r[2], r[3] = r[2], r[3], r[0], r[1]
		}
	}
	var out bits.Block
	// Skipping the 16th swap already realizes the spec's output reorder
	// (C = R2,R3,R0,R1), so whitening applies in natural order here.
	for i := range r {
		binary.LittleEndian.PutUint32(out[4*i:], r[i]^c.sub[4+i])
	}
	return out
}

// Decrypt deciphers one block.
func (c *Cipher) Decrypt(in bits.Block) bits.Block {
	var r [4]uint32
	for i := range r {
		r[i] = binary.LittleEndian.Uint32(in[4*i:]) ^ c.sub[4+i]
	}
	for rd := rounds - 1; rd >= 0; rd-- {
		t0 := c.g(r[0])
		t1 := c.g(rol(r[1], 8))
		f0 := t0 + t1 + c.sub[8+2*rd]
		f1 := t0 + 2*t1 + c.sub[9+2*rd]
		r[2] = rol(r[2], 1) ^ f0
		r[3] = ror(r[3]^f1, 1)
		if rd > 0 {
			r[0], r[1], r[2], r[3] = r[2], r[3], r[0], r[1]
		}
	}
	var out bits.Block
	for i := range r {
		binary.LittleEndian.PutUint32(out[4*i:], r[i]^c.sub[i])
	}
	return out
}

// CoreCycles models a compact iterative Twofish core in the reconfigurable
// region: one Feistel round per 3 cycles (two g lookups sharing the h
// pipeline plus the PHT/rotate step) plus whitening, independent of key
// size (Twofish's schedule is precomputed, unlike the AES core whose round
// count grows with the key).
const CoreCycles = 3*rounds + 6

// Engine adapts the cipher to the Cryptographic Unit's engine slot
// (cryptounit.CipherEngine).
type Engine struct {
	c         *Cipher
	out       bits.Block
	busyUntil uint64
	started   bool
}

// NewEngine returns an engine with no key loaded.
func NewEngine() *Engine { return &Engine{} }

// LoadKey installs a session key (the Key Scheduler computes the subkeys;
// the transfer cost is modeled at that layer, as for AES).
func (e *Engine) LoadKey(key []byte) error {
	c, err := New(key)
	if err != nil {
		return err
	}
	e.c = c
	return nil
}

// Busy implements cryptounit.CipherEngine.
func (e *Engine) Busy() bool { return e.started }

// ReadyAt implements cryptounit.CipherEngine.
func (e *Engine) ReadyAt() uint64 { return e.busyUntil }

// Start implements cryptounit.CipherEngine.
func (e *Engine) Start(now uint64, in bits.Block) uint64 {
	if e.c == nil {
		panic("twofish: Start with no key loaded")
	}
	e.out = e.c.Encrypt(in)
	e.busyUntil = now + CoreCycles
	e.started = true
	return e.busyUntil
}

// Collect implements cryptounit.CipherEngine.
func (e *Engine) Collect() bits.Block {
	if !e.started {
		panic("twofish: Collect with no computation in flight")
	}
	e.started = false
	return e.out
}
