// Package reconfig models FPGA partial reconfiguration of the MCCP's
// Cryptographic Units (paper §VII.B): partial bitstreams for the AES and
// Whirlpool engines, bitstream sources with the measured bandwidths
// (CompactFlash vs staging RAM), and the runtime swap of one core's
// reconfigurable region while the other cores keep processing packets.
package reconfig

import (
	"fmt"

	"mccp/internal/aes"
	"mccp/internal/core"
	"mccp/internal/firmware"
	"mccp/internal/fpga"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
	"mccp/internal/whirlpool"
)

// Bitstream size model, calibrated to Table IV: the partial bitstream
// covers the fixed reconfigurable region (its configuration frames dominate)
// plus content that grows with the occupied slices. With
// size = RegionBaseBytes + SliceBytes * slices:
//
//	AES (351 slices):        85490 + 10*351  = 89.0 kB   (paper: 89 kB)
//	Whirlpool (1153 slices): 85490 + 10*1153 = 97.0 kB   (paper: 97 kB)
const (
	RegionBaseBytes = 85490
	SliceBytes      = 10
)

// BitstreamBytes returns the partial-bitstream size for an engine occupying
// the demonstrator region.
func BitstreamBytes(c fpga.Component) int {
	return RegionBaseBytes + SliceBytes*c.Slices
}

// Source is a bitstream storage medium feeding the ICAP. Bandwidths are
// calibrated to Table IV's reconfiguration times:
//
//	CompactFlash: 89 kB / 380 ms = 234.2 kB/s (Whirlpool: 97 kB -> 414 ms)
//	RAM:          89 kB / 63 ms  = 1.413 MB/s (Whirlpool: 97 kB -> 69 ms)
type Source struct {
	Name        string
	BytesPerSec float64
}

// The paper's two measured sources, plus the fast-source ceiling the
// paper points at for future work: feeding the ICAP at its native port
// bandwidth (8-bit port at the 50 MHz configuration clock = 50 MB/s)
// instead of through the slow storage path — an 89 kB bitstream then
// takes ~1.8 ms instead of 63–380 ms.
var (
	CompactFlash = Source{Name: "compact-flash", BytesPerSec: 234210}
	StagingRAM   = Source{Name: "ram", BytesPerSec: 1412698}
	FastICAP     = Source{Name: "icap", BytesPerSec: 50e6}
)

// Sources lists the bitstream sources slowest-first, the order the E15
// agility tables sweep.
func Sources() []Source { return []Source{CompactFlash, StagingRAM, FastICAP} }

// SourceByName resolves a bitstream source by its Name.
func SourceByName(name string) (Source, error) {
	for _, s := range Sources() {
		if s.Name == name {
			return s, nil
		}
	}
	return Source{}, fmt.Errorf("reconfig: unknown bitstream source %q (have compact-flash, ram, icap)", name)
}

// Time returns the wall-clock reconfiguration time for n bitstream bytes.
func (s Source) Time(n int) float64 { return float64(n) / s.BytesPerSec }

// Cycles converts a reconfiguration to clock cycles at the MCCP frequency.
func (s Source) Cycles(n int, freqHz float64) sim.Time {
	return sim.Time(s.Time(n) * freqHz)
}

// Scaled returns a source f times faster than s (same name). The E15
// harness uses it to compress the bitstream window by a fixed time-scale
// so a CompactFlash swap (72M+ cycles at full scale) stays simulable,
// while reporting true durations by multiplying back.
func (s Source) Scaled(f float64) Source {
	if f <= 0 {
		return s
	}
	return Source{Name: s.Name, BytesPerSec: s.BytesPerSec * f}
}

// Engine identifies a reconfigurable-region payload.
type Engine int

// Available engines.
const (
	EngineAES Engine = iota
	EngineWhirlpool
)

// Component returns the engine's resource footprint.
func (e Engine) Component() fpga.Component {
	if e == EngineWhirlpool {
		return fpga.WhirlpoolCore
	}
	return fpga.AESCore
}

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == EngineWhirlpool {
		return "Whirlpool"
	}
	return "AES"
}

// Controller drives partial reconfiguration of one device's cores. It
// stands in for the platform's configuration controller (ICAP manager +
// bitstream store).
type Controller struct {
	eng *sim.Engine
	dev *core.MCCP

	// Reconfigurations counts completed swaps.
	Reconfigurations uint64
}

// NewController binds a reconfiguration controller to a device.
func NewController(eng *sim.Engine, dev *core.MCCP) *Controller {
	return &Controller{eng: eng, dev: dev}
}

// Reconfigure rewrites core coreID's reconfigurable region with the target
// engine, streaming the bitstream from src. The core must be idle
// (unallocated); it is marked as reconfiguring for the duration, so the
// Task Scheduler routes around it — the paper's point that "the
// reconfiguration of one part of the FPGA does not prevent others parts to
// work". The controller program image is swapped along with the engine and
// the swap cost includes rewriting the 1024-word instruction memory.
func (c *Controller) Reconfigure(coreID int, target Engine, src Source, cb func(took sim.Time, err error)) {
	dev := c.dev
	if coreID < 0 || coreID >= len(dev.Cores) {
		cb(0, fmt.Errorf("reconfig: no core %d", coreID))
		return
	}
	if dev.Cores[coreID].Busy() || dev.Reconfiguring[coreID] {
		cb(0, fmt.Errorf("reconfig: core %d is busy", coreID))
		return
	}
	comp := target.Component()
	if comp.Slices > fpga.DemoRegion.Slices || comp.BRAMs > fpga.DemoRegion.BRAMs {
		cb(0, fmt.Errorf("reconfig: %v does not fit the region", target))
		return
	}
	dev.Reconfiguring[coreID] = true
	start := c.eng.Now()
	cycles := src.Cycles(BitstreamBytes(comp), sim.DefaultFreqHz) + firmware.ImageWordsLoadCycles
	c.eng.After(cycles, func() {
		cr := dev.Cores[coreID]
		cr.CPU.Stop()
		switch target {
		case EngineWhirlpool:
			cr.AES = nil
			cr.Unit.Cipher = whirlpool.NewEngine()
			cr.CPU.LoadProgram(firmware.ImageHash)
			dev.Engines[coreID] = scheduler.EngineHash
		case EngineAES:
			cr.AES = aes.NewCore32()
			cr.Unit.Cipher = cr.AES
			cr.CPU.LoadProgram(firmware.ImageAES)
			dev.Engines[coreID] = scheduler.EngineAES
		}
		cr.CPU.Reset()
		cr.CPU.Start()
		dev.Reconfiguring[coreID] = false
		c.Reconfigurations++
		cb(c.eng.Now()-start, nil)
	})
}

// TableIVRow is one row of the paper's Table IV.
type TableIVRow struct {
	Core            string
	Slices, BRAMs   int
	BitstreamKB     float64
	FromFlashMillis float64
	FromRAMMillis   float64
}

// TableIV regenerates the paper's partial-reconfiguration table from the
// bitstream and source models.
func TableIV() []TableIVRow {
	rows := make([]TableIVRow, 0, 2)
	for _, e := range []Engine{EngineAES, EngineWhirlpool} {
		comp := e.Component()
		n := BitstreamBytes(comp)
		rows = append(rows, TableIVRow{
			Core:            e.String(),
			Slices:          comp.Slices,
			BRAMs:           comp.BRAMs,
			BitstreamKB:     float64(n) / 1000,
			FromFlashMillis: CompactFlash.Time(n) * 1000,
			FromRAMMillis:   StagingRAM.Time(n) * 1000,
		})
	}
	return rows
}
