package reconfig_test

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"testing"

	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/radio"
	"mccp/internal/reconfig"
	"mccp/internal/sim"
	"mccp/internal/whirlpool"
)

// TestTableIVReproduction pins the bitstream/source models against every
// cell of the paper's Table IV.
func TestTableIVReproduction(t *testing.T) {
	rows := reconfig.TableIV()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	checks := []struct {
		name    string
		slices  int
		kb      float64
		flashMs float64
		ramMs   float64
	}{
		{"AES", 351, 89, 380, 63},
		{"Whirlpool", 1153, 97, 416, 69},
	}
	for i, want := range checks {
		got := rows[i]
		if got.Core != want.name || got.Slices != want.slices {
			t.Errorf("row %d: %+v", i, got)
		}
		approx := func(field string, g, w, tolPct float64) {
			if g < w*(1-tolPct/100) || g > w*(1+tolPct/100) {
				t.Errorf("%s %s = %.1f, want %.1f (±%.0f%%)", want.name, field, g, w, tolPct)
			}
		}
		approx("bitstream kB", got.BitstreamKB, want.kb, 1)
		approx("flash ms", got.FromFlashMillis, want.flashMs, 1)
		approx("ram ms", got.FromRAMMillis, want.ramMs, 2)
	}
}

func TestReconfigureToWhirlpoolAndBack(t *testing.T) {
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{Cores: 4})
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, 1)
	rc := reconfig.NewController(eng, dev)
	eng.Run()

	// Swap core 3 to Whirlpool from RAM.
	var took sim.Time
	rc.Reconfigure(3, reconfig.EngineWhirlpool, reconfig.StagingRAM, func(d sim.Time, err error) {
		if err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
		took = d
	})
	eng.Run()
	wantCycles := reconfig.StagingRAM.Cycles(reconfig.BitstreamBytes(reconfig.EngineWhirlpool.Component()), sim.DefaultFreqHz)
	if took < wantCycles || took > wantCycles+2048 {
		t.Errorf("swap took %d cycles, want ~%d", took, wantCycles)
	}

	// Hash a message end-to-end through the reconfigured core.
	ch := 0
	cc.OpenChannel(core.Suite{Family: cryptocore.FamilyHash}, 0, func(c int, err error) {
		if err != nil {
			t.Fatalf("open hash channel: %v", err)
		}
		ch = c
	})
	eng.Run()
	msg := []byte("The quick brown fox jumps over the lazy dog -- radio firmware update image")
	var digest []byte
	cc.Hash(ch, msg, func(d []byte, err error) {
		if err != nil {
			t.Fatalf("hash: %v", err)
		}
		digest = d
	})
	eng.Run()
	want := whirlpool.Sum(msg)
	if !bytes.Equal(digest, want[:]) {
		t.Fatalf("device digest != whirlpool.Sum:\n got %x\nwant %x", digest, want)
	}

	// The other cores must still run AES traffic: the hash channel used
	// core 3; GCM traffic uses cores 0-2.
	keyID, key, _ := mc.ProvisionKey(16)
	gcmCh := 0
	cc.OpenChannel(core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, keyID, func(c int, err error) { gcmCh = c })
	eng.Run()
	nonce := make([]byte, 12)
	pt := []byte("still encrypting while core 3 hashes")
	var sealed []byte
	cc.Encrypt(gcmCh, nonce, nil, pt, func(b []byte, err error) {
		if err != nil {
			t.Fatalf("gcm after reconfig: %v", err)
		}
		sealed = b
	})
	eng.Run()
	blk, _ := aes.NewCipher(key)
	ref, _ := cipher.NewGCM(blk)
	if !bytes.Equal(sealed, ref.Seal(nil, nonce, pt, nil)) {
		t.Fatal("GCM output wrong after a sibling core was reconfigured")
	}

	// Swap back to AES and use core 3 for GCM again.
	rc.Reconfigure(3, reconfig.EngineAES, reconfig.CompactFlash, func(_ sim.Time, err error) {
		if err != nil {
			t.Fatalf("swap back: %v", err)
		}
	})
	eng.Run()
	for i := 0; i < 4; i++ { // keep all cores busy so core 3 must serve one
		cc.Encrypt(gcmCh, nonce, nil, pt, func(b []byte, err error) {
			if err != nil {
				t.Errorf("post-swap-back encrypt: %v", err)
			}
		})
	}
	eng.Run()
	if dev.Engines[3] != "AES" {
		t.Errorf("core 3 engine = %s after swap back", dev.Engines[3])
	}
}

// TestReconfigurationDoesNotStopOtherCores overlaps a CompactFlash swap
// (~72M cycles) with continuous GCM traffic on the remaining cores and
// checks packets keep completing during the window — §VII.B's key property.
func TestReconfigurationDoesNotStopOtherCores(t *testing.T) {
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{Cores: 4, QueueRequests: true})
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, 2)
	rc := reconfig.NewController(eng, dev)
	eng.Run()

	keyID, _, _ := mc.ProvisionKey(16)
	ch := 0
	cc.OpenChannel(core.Suite{Family: cryptocore.FamilyGCM, TagLen: 16}, keyID, func(c int, err error) { ch = c })
	eng.Run()

	// A fast synthetic source keeps the simulated window at ~1M cycles; the
	// real CompactFlash/RAM bandwidths are pinned by TestTableIVReproduction
	// and the overlap property does not depend on the absolute duration.
	fastSource := reconfig.Source{Name: "test-dma", BytesPerSec: 20e6}
	swapDone := sim.Time(0)
	rc.Reconfigure(0, reconfig.EngineWhirlpool, fastSource, func(d sim.Time, err error) {
		if err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
		swapDone = eng.Now()
	})

	// Pump packets: each completion immediately submits the next.
	completedDuringSwap := 0
	nonce := make([]byte, 12)
	pt := make([]byte, 1024)
	var pump func()
	pump = func() {
		cc.Encrypt(ch, nonce, nil, pt, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("packet during swap: %v", err)
				return
			}
			if swapDone == 0 {
				completedDuringSwap++
				pump()
			}
		})
	}
	for i := 0; i < 3; i++ {
		pump()
	}
	eng.Run()
	if swapDone == 0 {
		t.Fatal("swap never completed")
	}
	// ~920k cycles of swap at ~4.3k cycles/packet/core on 3 cores: hundreds
	// of packets must have flowed. Require a conservative floor.
	if completedDuringSwap < 100 {
		t.Errorf("only %d packets completed during reconfiguration", completedDuringSwap)
	}
	t.Logf("%d packets completed on 3 cores during the %.0f ms swap",
		completedDuringSwap, 1000*float64(swapDone)/sim.DefaultFreqHz)
}
