package harness

import (
	"sort"
	"strings"
)

// Experiment is one registered composite experiment: a stable ID from
// the roadmap's numbering, the headline the drivers print, a Run entry
// point producing the formatted table, and the interpretation notes
// that belong under it. Drivers (benchtables, benchjson) iterate this
// registry instead of hand-wiring each experiment's constructor.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment and returns its formatted table.
	// scale is the driver's size knob (benchtables -packets); <= 0
	// selects each experiment's default.
	Run func(scale int) string
	// Notes are interpretation lines printed after the table.
	Notes []string
}

// Experiments indexes the composite evaluation experiments by ID.
// Tables E1–E11 predate the registry and stay as direct harness calls
// (they are single-table reproductions of the paper); the composite
// extensions register here.
var Experiments = map[string]Experiment{
	"E12": {
		ID:    "E12",
		Title: "QoS priority classes (§VIII extension)",
		Run: func(scale int) string {
			if scale <= 0 {
				scale = 12
			}
			var b strings.Builder
			b.WriteString(FormatQoSTable(QoSTable(2 * scale)))
			b.WriteString("shaper drain fairness (sustained voice + background burst, capacity 4):\n")
			b.WriteString(FormatQoSDrains(QoSDrainComparison(4 * scale)))
			return b.String()
		},
		Notes: []string{
			"(qos-priority must retain >= 90% of uncontended voice throughput;",
			" first-idle documents the head-of-line blocking the QoS layer removes)",
		},
	},
	"E13": {
		ID:    "E13",
		Title: "open-loop load curves (loss/latency vs offered load)",
		Run: func(scale int) string {
			if scale <= 0 {
				scale = 12
			}
			return FormatLoadCurve(LoadCurve(LoadCurveConfig{BackgroundPackets: 16 * scale}))
		},
		Notes: []string{
			"(open-loop Poisson arrivals into a bounded shaper; the knee is where",
			" delivered throughput plateaus — voice must hold ~0% loss and a flat",
			" p99 past it under qos-priority while background loss climbs)",
		},
	},
	"E14": {
		ID:    "E14",
		Title: "wire-level latency curves (loopback mccpserver)",
		Run: func(scale int) string {
			return FormatWireLatency(WireLatency(WireConfig{}))
		},
		Notes: []string{
			"(every arrival crosses the server protocol on a loopback transport;",
			" wire latency adds the client batching wait to the shard service)",
		},
	},
	"E15": {
		ID:    "E15",
		Title: "rolling reconfiguration under load (fleet agility cost)",
		Run: func(scale int) string {
			return FormatReconfigUnderLoad(ReconfigUnderLoad(ReconfigLoadConfig{}))
		},
		Notes: []string{
			"(a rolling Whirlpool swap drains each shard voice-first and measures",
			" every bitstream window on the serving shards; voice must hold ~0%",
			" loss with qos-priority keeping its p99 below first-idle's at every",
			" source speed, while background pays for the reservation)",
		},
	},
	"E16": {
		ID:    "E16",
		Title: "fault curves (crash + churn under load, re-home and brownout)",
		Run: func(scale int) string {
			return FormatFaultCurves(FaultCurves(FaultConfig{}))
		},
		Notes: []string{
			"(a seeded schedule crashes shards mid-window at 0.9x saturation while",
			" sessions churn; the detector quarantines each frozen heartbeat at the",
			" next flush boundary, re-homes voice-first and browns out background;",
			" the zero-fault row is bit-identical to the E14 pipeline at 0.9x)",
		},
	},
	"E17": {
		ID:    "E17",
		Title: "recovery curves (restart + rejoin per bitstream source, brownout lift)",
		Run: func(scale int) string {
			return FormatRecoveryCurves(RecoveryCurves(RecoveryConfig{}))
		},
		Notes: []string{
			"(the E16 crash with the restart loop armed: the corpse is rebuilt by",
			" streaming the base bitstream back in at each Table IV source speed,",
			" rejoined voice-first, and the brownout lifted class-by-class as the",
			" measured load fits under the restored capacity; the reconfiguration",
			" hierarchy survives the full stack — icap rejoins before ram before",
			" compact-flash — and the zero-fault baseline is E16's row verbatim)",
		},
	},
	"E18": {
		ID:    "E18",
		Title: "stage attribution (traced per-class latency decomposition)",
		Run: func(scale int) string {
			return FormatStageAttribution(StageAttribution(StageCurveConfig{}))
		},
		Notes: []string{
			"(the E13 sweep replayed with the lifecycle tracer at sample rate 1;",
			" each delivered packet's latency tiles exactly into class queue,",
			" scheduler, crossbar upload, core service and drain, so the traced",
			" percentiles reconcile bit-for-bit with E13's and the table shows",
			" where qos-priority buys voice its headroom: the queue stage)",
		},
	},
}

// ExperimentIDs returns the registered experiment IDs in order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
