package harness

import (
	"fmt"
	"net"
	"strings"

	"mccp/internal/arrivals"
	"mccp/internal/cluster"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/server"
	"mccp/internal/sim"
)

// This file is experiment E14: wire-level latency curves. E13 measured
// the QoS story in-process — arrivals fed a shaper sitting directly on a
// device. Here the same open-loop mixes cross a service boundary: an
// mccpserver fronts the cluster, an open-loop client generates per-
// session arrival streams on a wire clock, batches each fixed window
// behind a FLUSH barrier, and measures end-to-end wire latency — the
// client-side batching wait plus the shard-side service cycles each
// response reports. On the loopback transport with one connection the
// whole table is a pure function of (config, seed): bit-reproducible,
// CI-runnable, and still showing the saturation knee with voice held
// flat under qos-priority.

// WireMix is the E14 class mix: E13's LoadMix with deadline budgets on
// the bulk classes. On the wire every packet inherits its session's
// deadline; the bulk budget (~1.5 client windows) is what converts a
// shard's growing per-window drain time into expiry verdicts past the
// knee, while voice keeps E13's generous 16000-cycle budget and the
// strict-priority drain keeps its service wait flat.
var WireMix = []arrivals.ClassProfile{
	{Class: qos.Voice, Share: 0.10, Bytes: 256, Family: cryptocore.FamilyCCM, KeyLen: 16, TagLen: 8, Deadline: 16000},
	{Class: qos.Video, Share: 0.15, Bytes: 1024, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Deadline: 12000},
	{Class: qos.Data, Share: 0.15, Bytes: 512, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Deadline: 12000},
	{Class: qos.Background, Share: 0.60, Bytes: 2048, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16, Deadline: 12000},
}

// WireConfig parameterizes WireLatency.
type WireConfig struct {
	// Shards and CoresPerShard size the backend cluster (defaults 2 and
	// 4); Router and Policy its routing and dispatch (defaults qos-aware
	// and qos-priority); Drain the per-shard shaper policy.
	Shards, CoresPerShard int
	Router, Policy, Drain string
	// Sessions is the concurrent wire session count (default 1000 —
	// the E14 table's 10^3 point; the server stress test covers 10^5).
	Sessions int
	// Offered are the load points as fractions of cluster saturation
	// (default DefaultOfferedPoints).
	Offered []float64
	// WindowCycles is the client batching window on the wire clock
	// (default 8192); Windows the measurement length per point (default
	// 48).
	WindowCycles sim.Time
	Windows      int
	// BatchOps is the server's size trigger (default 256, above any
	// window's packet count, so the per-window FLUSH is the only batch
	// boundary and the run is sequence-deterministic).
	BatchOps int
	// Capacity and QueueDepth size each shard's shaper (defaults 4, 16).
	Capacity, QueueDepth int
	// Mix, Process, Seed as in the E13 config (defaults WireMix,
	// poisson, 31).
	Mix     []arrivals.ClassProfile
	Process string
	Seed    uint64
	// SatMbps overrides the calibrated cluster saturation (0 =
	// calibrate: per-shard mix saturation times the shard count).
	SatMbps float64
	// SatPackets sizes the calibration (default 8).
	SatPackets int
}

func (c *WireConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.CoresPerShard <= 0 {
		c.CoresPerShard = 4
	}
	if c.Router == "" {
		c.Router = "qos-aware"
	}
	if c.Policy == "" {
		c.Policy = "qos-priority"
	}
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if len(c.Offered) == 0 {
		c.Offered = DefaultOfferedPoints
	}
	if c.WindowCycles == 0 {
		c.WindowCycles = 8192
	}
	if c.Windows <= 0 {
		c.Windows = 48
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 256
	}
	if c.Capacity <= 0 {
		c.Capacity = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if len(c.Mix) == 0 {
		c.Mix = WireMix
	}
	if c.Seed == 0 {
		c.Seed = 31
	}
	if c.SatPackets <= 0 {
		c.SatPackets = 8
	}
}

// WireClassCell is one class's measurement at one offered point.
type WireClassCell struct {
	Class qos.Class
	// Verdict counts from the protocol status codes.
	Submitted, Completed, Rejected, Shed, Expired, Aged, Failed uint64
	// LossFrac is (Submitted-Completed)/Submitted.
	LossFrac float64
	// P50/P99 are end-to-end wire latency percentiles in cycles:
	// batching wait (window end minus arrival on the wire clock) plus
	// shard-side service.
	P50, P99 sim.Time
	// DeliveredMbps is the class's delivered rate over the wire-clock
	// horizon at the modeled frequency.
	DeliveredMbps float64
}

// WirePoint is one offered-rate measurement of the E14 table.
type WirePoint struct {
	Offered  float64
	Sessions int
	Classes  []WireClassCell // highest priority first
	// Totals: WireMbps is the delivered wire throughput over the
	// horizon.
	TotalOfferedMbps float64
	WireMbps         float64
	TotalLossFrac    float64
	// ArrivalDigest witnesses the generated arrival stream;
	// ServerDigests are the server's per-shard output-byte folds
	// (RETRIEVE_DATA); ClusterCycles the slowest shard's virtual time.
	ArrivalDigest uint64
	ServerDigests []uint64
	ClusterCycles sim.Time
}

// Cell returns the point's cell for a class (zero value if absent).
func (p WirePoint) Cell(c qos.Class) WireClassCell {
	for _, cell := range p.Classes {
		if cell.Class == c {
			return cell
		}
	}
	return WireClassCell{Class: c}
}

// WireResult is the E14 table.
type WireResult struct {
	// SaturationMbps is the calibrated cluster capacity for the mix.
	SaturationMbps float64
	Policy         string
	Sessions       int
	Points         []WirePoint
}

// WireLatency runs E14: for each offered point it starts a fresh
// loopback server in front of a fresh cluster, opens cfg.Sessions
// sessions, replays the open-loop mix through the wire protocol and
// tears everything down. Single connection, no wall-clock flush trigger:
// the table is deterministic.
func WireLatency(cfg WireConfig) WireResult {
	cfg.fill()
	sat := cfg.SatMbps
	if sat <= 0 {
		sat = SaturationMbps(cfg.Mix, cfg.SatPackets) * float64(cfg.Shards) *
			float64(cfg.CoresPerShard) / 4
	}
	res := WireResult{SaturationMbps: sat, Policy: cfg.Policy, Sessions: cfg.Sessions}
	for _, offered := range cfg.Offered {
		res.Points = append(res.Points, WirePointRun(offered, sat, cfg))
	}
	return res
}

// WirePointRun measures one offered point of the E14 table.
func WirePointRun(offered, satMbps float64, cfg WireConfig) WirePoint {
	cfg.fill()
	srv, err := server.New(server.Config{
		Cluster: cluster.Config{
			Shards:        cfg.Shards,
			CoresPerShard: cfg.CoresPerShard,
			Router:        cfg.Router,
			Policy:        cfg.Policy,
			QueueRequests: true,
			Shape:         true,
			// The whole batch enters the shaper as one burst, anchoring
			// deadline budgets at batch start and letting the class
			// queues express the drain order — the wire analogue of
			// E13's open-loop shaper feed.
			ShardWindow: cfg.BatchOps,
			Seed:        cfg.Seed,
			Shaper: qos.Config{
				Capacity:   cfg.Capacity,
				QueueDepth: cfg.QueueDepth,
				Drain:      cfg.Drain,
			},
		},
		BatchOps: cfg.BatchOps,
	})
	if err != nil {
		panic(err) // experiment drivers pass literal configurations
	}
	defer srv.Close()
	lb := server.NewLoopback()
	srv.Serve(lb)

	bitsPerCycle := offered * satMbps * 1e6 / sim.DefaultFreqHz
	load, err := server.RunLoad(func() (net.Conn, error) { return lb.Dial() }, server.LoadConfig{
		Sessions:     cfg.Sessions,
		Mix:          cfg.Mix,
		Process:      cfg.Process,
		BitsPerCycle: bitsPerCycle,
		WindowCycles: cfg.WindowCycles,
		Windows:      cfg.Windows,
		Seed:         cfg.Seed,
	})
	if err != nil {
		panic(err)
	}

	return buildWirePoint(offered, satMbps, cfg.Sessions, load)
}

// buildWirePoint reduces one RunLoad outcome to a table point — shared
// by the E14 wire curves and the E16 fault curves, so a fault table's
// zero-fault row is computed by the very same code as the E14 baseline.
func buildWirePoint(offered, satMbps float64, sessions int, load server.LoadResult) WirePoint {
	horizon := load.HorizonCycles
	toMbps := func(bytes uint64) float64 {
		return float64(bytes*8) / float64(horizon) * sim.DefaultFreqHz / 1e6
	}
	point := WirePoint{
		Offered:       offered,
		Sessions:      sessions,
		ArrivalDigest: load.ArrivalDigest,
	}
	if load.Stats != nil {
		point.ServerDigests = load.Stats.Digests
		point.ClusterCycles = load.Stats.ClusterCycles
	}
	var submitted, completed uint64
	var deliveredBytes uint64
	for _, class := range qos.Classes() {
		cl := load.Classes[class]
		cell := WireClassCell{
			Class:         class,
			Submitted:     cl.Submitted,
			Completed:     cl.OK,
			Rejected:      cl.Rejected,
			Shed:          cl.Shed,
			Expired:       cl.Expired,
			Aged:          cl.Aged,
			Failed:        cl.AuthFail + cl.Failed,
			P50:           qos.PercentileOf(cl.WireSamples, 50),
			P99:           qos.PercentileOf(cl.WireSamples, 99),
			DeliveredMbps: toMbps(cl.DeliveredBytes),
		}
		if cl.Submitted > 0 {
			cell.LossFrac = float64(cl.Submitted-cl.OK) / float64(cl.Submitted)
		}
		submitted += cl.Submitted
		completed += cl.OK
		deliveredBytes += cl.DeliveredBytes
		point.Classes = append(point.Classes, cell)
	}
	point.TotalOfferedMbps = offered * satMbps
	point.WireMbps = toMbps(deliveredBytes)
	if submitted > 0 {
		point.TotalLossFrac = float64(submitted-completed) / float64(submitted)
	}
	return point
}

// FormatWireLatency renders the E14 table.
func FormatWireLatency(r WireResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire-level latency curves (E14): loopback mccpserver, %d sessions, policy %s, cluster saturation ~%.0f Mbps\n",
		r.Sessions, r.Policy, r.SaturationMbps)
	fmt.Fprintf(&b, "wire latency = client batching wait + shard service; loss%% = arrivals not delivered (verdict mix at right)\n")
	fmt.Fprintf(&b, "%8s | %9s %9s | %10s %10s | %10s %10s %8s | %8s %8s %8s\n",
		"offered", "off Mbps", "wire Mbps",
		"v p50 cyc", "v p99 cyc", "bg p50", "bg p99", "bg loss%", "shed", "expired", "aged")
	for _, p := range r.Points {
		v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
		var shed, expired, aged uint64
		for _, c := range p.Classes {
			shed += c.Shed
			expired += c.Expired
			aged += c.Aged
		}
		fmt.Fprintf(&b, "%7.2fx | %9.0f %9.0f | %10d %10d | %10d %10d %7.2f%% | %8d %8d %8d\n",
			p.Offered, p.TotalOfferedMbps, p.WireMbps,
			v.P50, v.P99, bg.P50, bg.P99, 100*bg.LossFrac, shed, expired, aged)
	}
	return b.String()
}

// WireSmokeVerdict is the CI -wiresmoke gate's result: at half the
// saturation load the service boundary must cost voice at most a factor
// of two in p99 versus the in-process E13 measurement, and shed nothing.
type WireSmokeVerdict struct {
	// VoiceWireP99 is the wire-level voice p99 at 0.5x saturation;
	// VoiceE13P99 the in-process E13 voice p99 at the same point; Factor
	// the allowed ratio.
	VoiceWireP99 sim.Time
	VoiceE13P99  sim.Time
	Factor       float64
	VoiceShed    uint64
	Point        WirePoint
}

// Pass reports whether the gate held.
func (v WireSmokeVerdict) Pass() bool {
	return v.VoiceShed == 0 &&
		float64(v.VoiceWireP99) <= v.Factor*float64(v.VoiceE13P99)
}

func (v WireSmokeVerdict) String() string {
	verdict := "ok"
	if !v.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("wiresmoke %s: voice wire p99 %d cycles vs %d in-process at 0.5x saturation (limit %.0fx), voice shed %d (limit 0)",
		verdict, v.VoiceWireP99, v.VoiceE13P99, v.Factor, v.VoiceShed)
}

// WireSmoke runs the one-point loopback E14 gate CI checks. Small on
// purpose: one offered point, a short window, 64 sessions.
func WireSmoke() WireSmokeVerdict {
	e13 := LoadPointRun("qos-priority", 0.5, SaturationMbps(LoadMix, 8),
		LoadCurveConfig{BackgroundPackets: 120})
	cfg := WireConfig{
		Sessions:     64,
		Offered:      []float64{0.5},
		WindowCycles: 4096,
		Windows:      24,
	}
	res := WireLatency(cfg)
	p := res.Points[0]
	return WireSmokeVerdict{
		VoiceWireP99: p.Cell(qos.Voice).P99,
		VoiceE13P99:  e13.Cell(qos.Voice).P99,
		Factor:       2,
		VoiceShed:    p.Cell(qos.Voice).Shed,
		Point:        p,
	}
}
