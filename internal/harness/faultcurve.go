package harness

import (
	"fmt"
	"net"
	"strings"

	"mccp/internal/cluster"
	"mccp/internal/faults"
	"mccp/internal/qos"
	"mccp/internal/server"
	"mccp/internal/sim"
)

// This file is experiment E16: fault curves. The E14 wire pipeline runs
// at a fixed offered load (0.9x saturation — busy but not yet over the
// knee) while a seeded fault schedule kills shards mid-window and a
// session-churn storm hammers the control plane. The server's failure
// detector notices each frozen heartbeat at the next FLUSH boundary,
// quarantines the corpse, re-homes its sessions voice-first onto the
// survivors and sheds lower classes (brownout) when the surviving
// capacity no longer covers the offered load. The table sweeps fault
// intensity (crash count x churn rate) under first-idle vs qos-priority
// and reports per-class loss, wire p99, re-home latency and recovery
// time. Single connection on the loopback transport: every row is a
// pure function of (config, seed), and the zero-fault row is computed
// by the same code path as the E14 baseline — bit-identical to it.

// FaultRow is one fault intensity: how many distinct shards crash
// (in successive windows, mid-window) and how many sessions churn
// (close + re-open) at every window boundary once faults begin.
type FaultRow struct {
	Crashes int
	Churn   int
}

// FaultConfig parameterizes FaultCurves.
type FaultConfig struct {
	// Wire is the base pipeline configuration (cluster shape, mix,
	// windows, seed). Defaults differ from E14's in two places: Shards
	// defaults to 4 (a 2-shard cluster cannot absorb the 2-crash row)
	// and Sessions to 256 (8 runs per table).
	Wire WireConfig
	// Offered is the fixed load as a fraction of saturation (default
	// 0.9).
	Offered float64
	// Rows are the fault intensities (default none / 1 crash / 1 crash +
	// churn 8 / 2 crashes + churn 8).
	Rows []FaultRow
	// Policies are swept per row (default first-idle, qos-priority).
	Policies []string
	// FaultWindow is the window the first crash lands in; churn starts
	// at the same boundary (default Windows/3).
	FaultWindow int
	// VoiceRecovered is the per-window voice delivered fraction that
	// counts as recovered (default 0.99).
	VoiceRecovered float64
}

func (c *FaultConfig) fill() {
	if c.Wire.Shards <= 0 {
		c.Wire.Shards = 4
	}
	if c.Wire.Sessions <= 0 {
		c.Wire.Sessions = 256
	}
	if c.Wire.Windows <= 0 {
		c.Wire.Windows = 36
	}
	c.Wire.fill()
	if c.Offered <= 0 {
		c.Offered = 0.9
	}
	if len(c.Rows) == 0 {
		c.Rows = []FaultRow{{0, 0}, {1, 0}, {1, 8}, {2, 8}}
	}
	if len(c.Policies) == 0 {
		c.Policies = []string{"first-idle", "qos-priority"}
	}
	if c.FaultWindow <= 0 {
		c.FaultWindow = c.Wire.Windows / 3
		if c.FaultWindow == 0 {
			c.FaultWindow = 1
		}
	}
	if c.VoiceRecovered <= 0 {
		c.VoiceRecovered = 0.99
	}
}

// FaultPoint is one (policy, fault intensity) measurement.
type FaultPoint struct {
	Policy string
	Row    FaultRow
	// WirePoint carries the per-class verdict/latency cells, digests and
	// cluster cycles, built by the same reduction as the E14 table.
	WirePoint
	// Schedule is the printable fault plan the row ran under.
	Schedule string
	// Rehomes is the detector's fail-over log; Moved/Lost/RehomeTook
	// aggregate it (Took is the worst single fail-over).
	Rehomes    []server.RehomeEvent
	Moved      int
	Lost       int
	RehomeTook sim.Time
	// RecoveryCycles is the worst crash-to-recovered span on the wire
	// clock: from the crash's fire point to the end of the first window
	// whose voice delivered fraction is back at VoiceRecovered.
	// Recovered reports every crash recovered within the horizon.
	RecoveryCycles sim.Time
	Recovered      bool
	// Churned counts storm-cycled sessions; Windows the per-window
	// tallies behind the recovery numbers.
	Churned uint64
	Windows []server.WindowLoad
}

// FaultResult is the E16 table.
type FaultResult struct {
	SaturationMbps float64
	Offered        float64
	Sessions       int
	Points         []FaultPoint // policy-major, row order
}

// FaultCurves runs E16: for each policy and fault intensity it starts a
// fresh loopback server with the fault plane wired in and replays the
// fixed-load mix through it.
func FaultCurves(cfg FaultConfig) FaultResult {
	cfg.fill()
	sat := cfg.Wire.SatMbps
	if sat <= 0 {
		sat = SaturationMbps(cfg.Wire.Mix, cfg.Wire.SatPackets) * float64(cfg.Wire.Shards) *
			float64(cfg.Wire.CoresPerShard) / 4
	}
	res := FaultResult{SaturationMbps: sat, Offered: cfg.Offered, Sessions: cfg.Wire.Sessions}
	for _, pol := range cfg.Policies {
		for _, row := range cfg.Rows {
			res.Points = append(res.Points, FaultPointRun(pol, row, sat, cfg))
		}
	}
	return res
}

// FaultPointRun measures one (policy, fault intensity) point.
func FaultPointRun(policy string, row FaultRow, satMbps float64, cfg FaultConfig) FaultPoint {
	return faultPointRun(policy, row, satMbps, cfg, nil)
}

// faultPointRun is FaultPointRun with an inspection hook that runs while
// the server is still open — the obs smoke gate reads flight-recorder
// postmortems through it before teardown.
func faultPointRun(policy string, row FaultRow, satMbps float64, cfg FaultConfig,
	inspect func(*server.Server)) FaultPoint {
	cfg.fill()
	wire := cfg.Wire
	wire.Policy = policy

	sched := faults.Schedule{Seed: wire.Seed}
	if row.Crashes > 0 {
		var err error
		sched, err = faults.Plan(faults.PlanConfig{
			Seed:         wire.Seed,
			Shards:       wire.Shards,
			Windows:      wire.Windows,
			Crashes:      row.Crashes,
			FaultWindow:  cfg.FaultWindow,
			WindowCycles: wire.WindowCycles,
		})
		if err != nil {
			panic(err) // experiment drivers pass literal configurations
		}
	}
	var shares [qos.NumClasses]float64
	for _, p := range wire.Mix {
		shares[p.Class] += p.Share
	}

	srv, err := server.New(server.Config{
		Cluster: cluster.Config{
			Shards:        wire.Shards,
			CoresPerShard: wire.CoresPerShard,
			Router:        wire.Router,
			Policy:        wire.Policy,
			QueueRequests: true,
			Shape:         true,
			ShardWindow:   wire.BatchOps,
			Seed:          wire.Seed,
			Shaper: qos.Config{
				Capacity:   wire.Capacity,
				QueueDepth: wire.QueueDepth,
				Drain:      wire.Drain,
			},
		},
		BatchOps: wire.BatchOps,
		Faults: &server.FaultPolicy{
			Schedule:        sched,
			Detect:          true,
			OfferedMbps:     cfg.Offered * satMbps,
			SatMbpsPerShard: satMbps / float64(wire.Shards),
			Shares:          shares,
		},
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	lb := server.NewLoopback()
	srv.Serve(lb)

	bitsPerCycle := cfg.Offered * satMbps * 1e6 / sim.DefaultFreqHz
	load, err := server.RunLoad(func() (net.Conn, error) { return lb.Dial() }, server.LoadConfig{
		Sessions:      wire.Sessions,
		Mix:           wire.Mix,
		Process:       wire.Process,
		BitsPerCycle:  bitsPerCycle,
		WindowCycles:  wire.WindowCycles,
		Windows:       wire.Windows,
		Seed:          wire.Seed,
		WindowTallies: true,
		ChurnSessions: row.Churn,
		ChurnFrom:     cfg.FaultWindow,
	})
	if err != nil {
		panic(err)
	}

	point := FaultPoint{
		Policy:    policy,
		Row:       row,
		WirePoint: buildWirePoint(cfg.Offered, satMbps, wire.Sessions, load),
		Schedule:  sched.String(),
		Rehomes:   srv.FaultReport(),
		Churned:   load.Churned,
		Windows:   load.Windows,
	}
	for _, ev := range point.Rehomes {
		point.Moved += ev.Moved
		point.Lost += ev.Lost
		if ev.Took > point.RehomeTook {
			point.RehomeTook = ev.Took
		}
	}
	point.RecoveryCycles, point.Recovered = recoveryOf(sched, wire.WindowCycles, cfg.VoiceRecovered, load.Windows)
	if inspect != nil {
		inspect(srv)
	}
	return point
}

// recoveryOf derives the worst crash recovery span: for each scheduled
// crash, the wire-clock distance from its fire point to the end of the
// first window (at or after the crash window) whose voice delivered
// fraction is back at the threshold. A crash with no such window inside
// the horizon reports recovered == false.
func recoveryOf(sched faults.Schedule, windowCycles sim.Time, threshold float64, wins []server.WindowLoad) (sim.Time, bool) {
	var worst sim.Time
	recovered := true
	for _, e := range sched.Events {
		if e.Kind != faults.ShardCrash {
			continue
		}
		crashAt := sim.Time(e.Window)*windowCycles + e.Offset
		found := false
		for w := e.Window; w < len(wins); w++ {
			if wins[w].DeliveredFrac(qos.Voice) >= threshold {
				if d := sim.Time(w+1)*windowCycles - crashAt; d > worst {
					worst = d
				}
				found = true
				break
			}
		}
		if !found {
			recovered = false
		}
	}
	return worst, recovered
}

// FormatFaultCurves renders the E16 table.
func FormatFaultCurves(r FaultResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault curves (E16): loopback mccpserver at %.1fx saturation (~%.0f Mbps), %d sessions, crash + churn under load\n",
		r.Offered, r.SaturationMbps, r.Sessions)
	fmt.Fprintf(&b, "recovery = crash fire point to the first window with voice delivered back >= 99%%; rehome = worst fail-over's virtual-time cost\n")
	fmt.Fprintf(&b, "%-12s %7s %6s | %8s %8s %8s | %10s | %6s %5s %12s %12s\n",
		"policy", "crashes", "churn", "v loss%", "bg loss%", "loss%", "v p99 cyc", "moved", "lost", "rehome cyc", "recover cyc")
	for _, p := range r.Points {
		v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
		rec := fmt.Sprintf("%d", p.RecoveryCycles)
		if !p.Recovered {
			rec = "DNF"
		} else if p.Row.Crashes == 0 {
			rec = "-"
		}
		fmt.Fprintf(&b, "%-12s %7d %6d | %7.2f%% %7.2f%% %7.2f%% | %10d | %6d %5d %12d %12s\n",
			p.Policy, p.Row.Crashes, p.Row.Churn,
			100*v.LossFrac, 100*bg.LossFrac, 100*p.TotalLossFrac,
			v.P99, p.Moved, p.Lost, p.RehomeTook, rec)
	}
	return b.String()
}

// FaultSmokeVerdict is the CI -faultsmoke gate's result: with 1 of 4
// shards crashed mid-load (plus an 8-session churn storm) at 0.9x
// saturation under qos-priority, every session on the corpse must
// re-home (none lost), voice loss must stay within 1%, and voice
// delivery must recover within the window limit.
type FaultSmokeVerdict struct {
	VoiceLossFrac  float64
	Moved          int
	Lost           int
	Rehomes        int
	Recovered      bool
	RecoveryCycles sim.Time
	RecoveryLimit  sim.Time
	Point          FaultPoint
}

// Pass reports whether the gate held.
func (v FaultSmokeVerdict) Pass() bool {
	return v.VoiceLossFrac <= 0.01 &&
		v.Lost == 0 &&
		v.Rehomes >= 1 &&
		v.Recovered &&
		v.RecoveryCycles <= v.RecoveryLimit
}

func (v FaultSmokeVerdict) String() string {
	verdict := "ok"
	if !v.Pass() {
		verdict = "FAIL"
	}
	rec := fmt.Sprintf("%d", v.RecoveryCycles)
	if !v.Recovered {
		rec = "DNF"
	}
	return fmt.Sprintf("faultsmoke %s: voice loss %.2f%% (limit 1%%), rehomed %d sessions across %d fail-overs with %d lost (limit 0), recovery %s cycles (limit %d)",
		verdict, 100*v.VoiceLossFrac, v.Moved, v.Rehomes, v.Lost, rec, v.RecoveryLimit)
}

// FaultSmoke runs the one-row loopback E16 gate CI checks. Small on
// purpose: 64 sessions, 24 short windows, one crash in a 4-shard
// cluster with the churn storm on.
func FaultSmoke() FaultSmokeVerdict {
	cfg := FaultConfig{
		Wire: WireConfig{
			Shards:       4,
			Sessions:     64,
			WindowCycles: 4096,
			Windows:      24,
		},
		Rows:        []FaultRow{{Crashes: 1, Churn: 8}},
		Policies:    []string{"qos-priority"},
		FaultWindow: 8,
	}
	res := FaultCurves(cfg)
	p := res.Points[0]
	return FaultSmokeVerdict{
		VoiceLossFrac:  p.Cell(qos.Voice).LossFrac,
		Moved:          p.Moved,
		Lost:           p.Lost,
		Rehomes:        len(p.Rehomes),
		Recovered:      p.Recovered,
		RecoveryCycles: p.RecoveryCycles,
		RecoveryLimit:  3 * 4096,
		Point:          p,
	}
}
