package harness

import (
	"fmt"
	"net"
	"strings"

	"mccp/internal/cluster"
	"mccp/internal/faults"
	"mccp/internal/qos"
	"mccp/internal/reconfig"
	"mccp/internal/server"
	"mccp/internal/sim"
)

// This file is experiment E17: recovery curves. E16 measured the fall —
// crash, detection, fail-over, brownout floor. E17 measures the climb
// back: with the server's restart loop armed, the quarantined corpse is
// rebuilt by streaming the base bitstream back in at one of the paper's
// Table IV source speeds (CompactFlash, staging RAM, or the ICAP-rate
// ceiling), rejoined to the pool, reloaded voice-first, and the brownout
// mask lifted class-by-class as the measured load fits back under the
// restored capacity. The table sweeps the bitstream source at a fixed
// 0.9x-saturation load and reports the full arc per source: restart
// duration (scaled and at true paper speed), rejoin window, voice
// recovery, and time back to full delivered capacity. The paper's
// reconfiguration-speed hierarchy should survive the trip through the
// whole serving stack: ICAP rejoins before RAM rejoins before
// CompactFlash. Single loopback connection, seeded schedule: the whole
// drill is a pure function of (config, seed), and the zero-fault
// baseline row is computed by E16's own FaultPointRun — bit-identical
// to its zero row.

// RecoveryConfig parameterizes RecoveryCurves.
type RecoveryConfig struct {
	// Wire is the base pipeline configuration; defaults match E16's
	// (4 shards, 256 sessions, 36 windows) so the zero-fault baseline
	// is E16's zero-fault row verbatim.
	Wire WireConfig
	// Offered is the fixed load as a fraction of saturation (default
	// 0.9 — the E16 operating point).
	Offered float64
	// Sources are the bitstream sources swept, slowest first (default
	// the paper's three: compact-flash, ram, icap).
	Sources []reconfig.Source
	// TimeScale compresses each source's reload time onto the simulated
	// window horizon (default 4096): the virtual restart takes
	// 1/TimeScale of the true reload, and TrueRestartMillis reports the
	// unscaled figure. The hierarchy between sources is unaffected.
	TimeScale float64
	// Policies are swept per source (default qos-priority only — the
	// policy E16 showed survives the fall with zero voice loss).
	Policies []string
	// FaultWindow is the window the crash lands in (default Windows/3).
	FaultWindow int
	// VoiceRecovered is the per-window voice delivered fraction that
	// counts as voice recovery (default 0.99); CapacityFrac the fraction
	// of the pre-crash delivered rate that counts as full capacity
	// restored (default 0.95).
	VoiceRecovered float64
	CapacityFrac   float64
}

func (c *RecoveryConfig) fill() {
	if c.Wire.Shards <= 0 {
		c.Wire.Shards = 4
	}
	if c.Wire.Sessions <= 0 {
		c.Wire.Sessions = 256
	}
	if c.Wire.Windows <= 0 {
		c.Wire.Windows = 36
	}
	c.Wire.fill()
	if c.Offered <= 0 {
		c.Offered = 0.9
	}
	if len(c.Sources) == 0 {
		c.Sources = reconfig.Sources()
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 4096
	}
	if len(c.Policies) == 0 {
		c.Policies = []string{"qos-priority"}
	}
	if c.FaultWindow <= 0 {
		c.FaultWindow = c.Wire.Windows / 3
		if c.FaultWindow == 0 {
			c.FaultWindow = 1
		}
	}
	if c.VoiceRecovered <= 0 {
		c.VoiceRecovered = 0.99
	}
	if c.CapacityFrac <= 0 {
		c.CapacityFrac = 0.95
	}
}

// RecoveryPoint is one (policy, bitstream source) drill.
type RecoveryPoint struct {
	Policy string
	// Source is the bitstream source the restart streamed from.
	Source string
	// WirePoint carries the horizon-wide per-class cells and digests,
	// built by the same reduction as the E14/E16 tables.
	WirePoint
	// Schedule is the printable fault plan; Rehomes the fail-over log
	// with its aggregates (as in E16).
	Schedule   string
	Rehomes    []server.RehomeEvent
	Moved      int
	Lost       int
	RehomeTook sim.Time
	// Heals is the recovery plane's action log: the restart, the
	// rebalance back, and each brownout lift.
	Heals []server.HealEvent
	// RestartCycles is the bitstream reload's virtual duration on the
	// rebuilt shard's timeline (at the TimeScale-compressed source);
	// TrueRestartMillis undoes the compression — the reload at the
	// paper's real source speed, in milliseconds. RejoinWindow is the
	// boundary the shard came back at (-1: never rejoined).
	RestartCycles     sim.Time
	TrueRestartMillis float64
	RejoinWindow      int
	// BrownoutImposed reports the fail-over shed at least one class;
	// BrownoutLifted that the mask was fully clear by the horizon.
	BrownoutImposed bool
	BrownoutLifted  bool
	// RecoveryCycles is the crash-to-voice-recovered span (E16's
	// definition); CapacityCycles the crash to the first post-rejoin
	// window delivering CapacityFrac of the pre-crash rate.
	RecoveryCycles   sim.Time
	Recovered        bool
	CapacityCycles   sim.Time
	CapacityRestored bool
	// Windows is the per-window tally series behind the spans.
	Windows []server.WindowLoad
}

// RecoveryResult is the E17 table.
type RecoveryResult struct {
	SaturationMbps float64
	Offered        float64
	Sessions       int
	TimeScale      float64
	// Baseline is the zero-fault row, computed by E16's FaultPointRun
	// so the two experiments' baselines are bit-identical.
	Baseline FaultPoint
	// Points are policy-major, sources in the configured order.
	Points []RecoveryPoint
}

// RecoveryCurves runs E17: the zero-fault baseline through the E16
// pipeline, then one full crash-and-recovery drill per (policy, source).
func RecoveryCurves(cfg RecoveryConfig) RecoveryResult {
	cfg.fill()
	sat := cfg.Wire.SatMbps
	if sat <= 0 {
		sat = SaturationMbps(cfg.Wire.Mix, cfg.Wire.SatPackets) * float64(cfg.Wire.Shards) *
			float64(cfg.Wire.CoresPerShard) / 4
	}
	res := RecoveryResult{
		SaturationMbps: sat,
		Offered:        cfg.Offered,
		Sessions:       cfg.Wire.Sessions,
		TimeScale:      cfg.TimeScale,
	}
	base := FaultConfig{
		Wire:           cfg.Wire,
		Offered:        cfg.Offered,
		FaultWindow:    cfg.FaultWindow,
		VoiceRecovered: cfg.VoiceRecovered,
	}
	res.Baseline = FaultPointRun(cfg.Policies[0], FaultRow{}, sat, base)
	for _, pol := range cfg.Policies {
		for _, src := range cfg.Sources {
			res.Points = append(res.Points, RecoveryPointRun(pol, src, sat, cfg))
		}
	}
	return res
}

// RecoveryPointRun measures one (policy, source) drill: one shard
// crashes mid-window at the fixed load, the detector fails it over and
// browns out, the restart loop rebuilds it from src and rejoins it, and
// the point records how long the climb back took.
func RecoveryPointRun(policy string, src reconfig.Source, satMbps float64, cfg RecoveryConfig) RecoveryPoint {
	cfg.fill()
	wire := cfg.Wire
	wire.Policy = policy

	sched, err := faults.Plan(faults.PlanConfig{
		Seed:         wire.Seed,
		Shards:       wire.Shards,
		Windows:      wire.Windows,
		Crashes:      1,
		FaultWindow:  cfg.FaultWindow,
		WindowCycles: wire.WindowCycles,
	})
	if err != nil {
		panic(err) // experiment drivers pass literal configurations
	}
	var shares [qos.NumClasses]float64
	for _, p := range wire.Mix {
		shares[p.Class] += p.Share
	}

	srv, err := server.New(server.Config{
		Cluster: cluster.Config{
			Shards:        wire.Shards,
			CoresPerShard: wire.CoresPerShard,
			Router:        wire.Router,
			Policy:        wire.Policy,
			QueueRequests: true,
			Shape:         true,
			ShardWindow:   wire.BatchOps,
			Seed:          wire.Seed,
			Shaper: qos.Config{
				Capacity:   wire.Capacity,
				QueueDepth: wire.QueueDepth,
				Drain:      wire.Drain,
			},
		},
		BatchOps: wire.BatchOps,
		Faults: &server.FaultPolicy{
			Schedule:        sched,
			Detect:          true,
			OfferedMbps:     cfg.Offered * satMbps,
			SatMbpsPerShard: satMbps / float64(wire.Shards),
			Shares:          shares,
			Restart:         true,
			RestartSource:   src.Scaled(cfg.TimeScale),
			WindowCycles:    wire.WindowCycles,
		},
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	lb := server.NewLoopback()
	srv.Serve(lb)

	bitsPerCycle := cfg.Offered * satMbps * 1e6 / sim.DefaultFreqHz
	load, err := server.RunLoad(func() (net.Conn, error) { return lb.Dial() }, server.LoadConfig{
		Sessions:      wire.Sessions,
		Mix:           wire.Mix,
		Process:       wire.Process,
		BitsPerCycle:  bitsPerCycle,
		WindowCycles:  wire.WindowCycles,
		Windows:       wire.Windows,
		Seed:          wire.Seed,
		WindowTallies: true,
	})
	if err != nil {
		panic(err)
	}

	point := RecoveryPoint{
		Policy:       policy,
		Source:       src.Name,
		WirePoint:    buildWirePoint(cfg.Offered, satMbps, wire.Sessions, load),
		Schedule:     sched.String(),
		Rehomes:      srv.FaultReport(),
		Heals:        srv.HealReport(),
		RejoinWindow: -1,
		Windows:      load.Windows,
	}
	for _, ev := range point.Rehomes {
		point.Moved += ev.Moved
		point.Lost += ev.Lost
		if ev.Took > point.RehomeTook {
			point.RehomeTook = ev.Took
		}
		for _, deny := range ev.Deny {
			if deny {
				point.BrownoutImposed = true
			}
		}
	}
	// The final mask on record decides whether the brownout fully
	// lifted; every heal event carries the mask in force after it ran.
	finalDeny := [qos.NumClasses]bool{}
	if n := len(point.Rehomes); n > 0 {
		finalDeny = point.Rehomes[n-1].Deny
	}
	for _, ev := range point.Heals {
		if ev.Restarted {
			point.RestartCycles = ev.RestartCycles
			point.RejoinWindow = ev.Window
		}
		finalDeny = ev.Deny
	}
	point.BrownoutLifted = true
	for _, deny := range finalDeny {
		if deny {
			point.BrownoutLifted = false
		}
	}
	point.TrueRestartMillis = float64(point.RestartCycles) * cfg.TimeScale / sim.DefaultFreqHz * 1e3
	point.RecoveryCycles, point.Recovered = recoveryOf(sched, wire.WindowCycles, cfg.VoiceRecovered, load.Windows)
	point.CapacityCycles, point.CapacityRestored = capacityOf(sched, wire.WindowCycles,
		cfg.CapacityFrac, cfg.FaultWindow, point.RejoinWindow, load.Windows)
	return point
}

// capacityOf derives the crash-to-full-capacity span: the pre-crash
// delivered rate is the mean per-window OK count over the steady windows
// before the crash (skipping two warm-up windows), and capacity counts
// as restored at the end of the first window at or after the rejoin
// delivering at least frac of that rate. rejoin < 0 (never rejoined)
// reports restored == false.
func capacityOf(sched faults.Schedule, windowCycles sim.Time, frac float64,
	faultWindow, rejoin int, wins []server.WindowLoad) (sim.Time, bool) {
	if rejoin < 0 || len(wins) == 0 {
		return 0, false
	}
	var crashAt sim.Time
	for _, e := range sched.Events {
		if e.Kind == faults.ShardCrash {
			crashAt = sim.Time(e.Window)*windowCycles + e.Offset
			break
		}
	}
	total := func(w server.WindowLoad) uint64 {
		var ok uint64
		for _, cw := range w.Classes {
			ok += cw.OK
		}
		return ok
	}
	lo := 2
	if lo >= faultWindow {
		lo = 0
	}
	var steady float64
	for w := lo; w < faultWindow && w < len(wins); w++ {
		steady += float64(total(wins[w]))
	}
	if n := faultWindow - lo; n > 0 {
		steady /= float64(n)
	}
	if steady <= 0 {
		return 0, false
	}
	for w := rejoin; w < len(wins); w++ {
		if float64(total(wins[w])) >= frac*steady {
			return sim.Time(w+1)*windowCycles - crashAt, true
		}
	}
	return 0, false
}

// FormatRecoveryCurves renders the E17 table.
func FormatRecoveryCurves(r RecoveryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery curves (E17): loopback mccpserver at %.1fx saturation (~%.0f Mbps), %d sessions, crash -> restart -> rejoin per bitstream source (reload time-compressed %gx)\n",
		r.Offered, r.SaturationMbps, r.Sessions, r.TimeScale)
	fmt.Fprintf(&b, "restart = bitstream reload on the rebuilt shard (true ms at paper source speed); recover = crash to voice back >= 99%%; capacity = crash to delivered rate back >= 95%% of pre-crash\n")
	fmt.Fprintf(&b, "%-12s %-13s | %8s %8s | %6s %5s | %12s %10s %6s | %12s %12s %8s\n",
		"policy", "source", "v loss%", "loss%", "moved", "lost",
		"restart cyc", "true ms", "rejoin", "recover cyc", "capacity cyc", "lifted")
	base := r.Baseline
	fmt.Fprintf(&b, "%-12s %-13s | %7.2f%% %7.2f%% | %6d %5d | %12s %10s %6s | %12s %12s %8s\n",
		base.Policy, "(no fault)", 100*base.Cell(qos.Voice).LossFrac, 100*base.TotalLossFrac,
		base.Moved, base.Lost, "-", "-", "-", "-", "-", "-")
	for _, p := range r.Points {
		rec := fmt.Sprintf("%d", p.RecoveryCycles)
		if !p.Recovered {
			rec = "DNF"
		}
		cap := fmt.Sprintf("%d", p.CapacityCycles)
		if !p.CapacityRestored {
			cap = "DNF"
		}
		rejoin := fmt.Sprintf("%d", p.RejoinWindow)
		if p.RejoinWindow < 0 {
			rejoin = "DNF"
		}
		lifted := "yes"
		if !p.BrownoutLifted {
			lifted = "NO"
		}
		fmt.Fprintf(&b, "%-12s %-13s | %7.2f%% %7.2f%% | %6d %5d | %12d %10.1f %6s | %12s %12s %8s\n",
			p.Policy, p.Source, 100*p.Cell(qos.Voice).LossFrac, 100*p.TotalLossFrac,
			p.Moved, p.Lost, p.RestartCycles, p.TrueRestartMillis, rejoin, rec, cap, lifted)
	}
	return b.String()
}

// HealSmokeVerdict is the CI -healsmoke gate's result: with 1 of 4
// shards crashed mid-load at 0.9x saturation under qos-priority and the
// restart loop armed (icap source), the shard must rebuild and rejoin,
// voice must ride through both the fall and the climb within 1% loss
// and zero lost sessions, the brownout mask must be fully lifted by the
// horizon, and the delivered rate must climb back to the pre-crash
// level.
type HealSmokeVerdict struct {
	VoiceLossFrac    float64
	Lost             int
	Restarts         int
	RejoinWindow     int
	BrownoutLifted   bool
	Recovered        bool
	RecoveryCycles   sim.Time
	RecoveryLimit    sim.Time
	CapacityRestored bool
	CapacityCycles   sim.Time
	Point            RecoveryPoint
}

// Pass reports whether the gate held.
func (v HealSmokeVerdict) Pass() bool {
	return v.VoiceLossFrac <= 0.01 &&
		v.Lost == 0 &&
		v.Restarts >= 1 &&
		v.BrownoutLifted &&
		v.Recovered &&
		v.RecoveryCycles <= v.RecoveryLimit &&
		v.CapacityRestored
}

func (v HealSmokeVerdict) String() string {
	verdict := "ok"
	if !v.Pass() {
		verdict = "FAIL"
	}
	rec := fmt.Sprintf("%d", v.RecoveryCycles)
	if !v.Recovered {
		rec = "DNF"
	}
	cap := fmt.Sprintf("%d cycles", v.CapacityCycles)
	if !v.CapacityRestored {
		cap = "DNF"
	}
	lifted := "lifted"
	if !v.BrownoutLifted {
		lifted = "NOT lifted"
	}
	return fmt.Sprintf("healsmoke %s: voice loss %.2f%% (limit 1%%), %d lost (limit 0), %d restart(s) rejoining at window %d, brownout %s, voice recovery %s cycles (limit %d), capacity back in %s",
		verdict, 100*v.VoiceLossFrac, v.Lost, v.Restarts, v.RejoinWindow, lifted, rec, v.RecoveryLimit, cap)
}

// HealSmoke runs the one-drill loopback E17 gate CI checks. Small on
// purpose: 64 sessions, 24 short windows, one crash in a 4-shard
// cluster, restart from the icap source.
func HealSmoke() HealSmokeVerdict {
	cfg := RecoveryConfig{
		Wire: WireConfig{
			Shards:       4,
			Sessions:     64,
			WindowCycles: 4096,
			Windows:      24,
		},
		Sources:     []reconfig.Source{reconfig.FastICAP},
		FaultWindow: 8,
	}
	cfg.fill()
	sat := cfg.Wire.SatMbps
	if sat <= 0 {
		sat = SaturationMbps(cfg.Wire.Mix, cfg.Wire.SatPackets) * float64(cfg.Wire.Shards) *
			float64(cfg.Wire.CoresPerShard) / 4
	}
	p := RecoveryPointRun(cfg.Policies[0], cfg.Sources[0], sat, cfg)
	restarts := 0
	for _, ev := range p.Heals {
		if ev.Restarted {
			restarts++
		}
	}
	return HealSmokeVerdict{
		VoiceLossFrac:    p.Cell(qos.Voice).LossFrac,
		Lost:             p.Lost,
		Restarts:         restarts,
		RejoinWindow:     p.RejoinWindow,
		BrownoutLifted:   p.BrownoutLifted,
		Recovered:        p.Recovered,
		RecoveryCycles:   p.RecoveryCycles,
		RecoveryLimit:    3 * 4096,
		CapacityRestored: p.CapacityRestored,
		CapacityCycles:   p.CapacityCycles,
		Point:            p,
	}
}
