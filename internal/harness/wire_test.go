package harness

import (
	"reflect"
	"testing"

	"mccp/internal/qos"
)

// wireTestConfig keeps the E14 table small enough for CI while leaving
// the knee visible.
func wireTestConfig() WireConfig {
	return WireConfig{
		Sessions: 64,
		Offered:  []float64{0.25, 0.5, 1.0, 1.5, 2.0},
		Windows:  24,
	}
}

func TestWireLatencyDeterministic(t *testing.T) {
	a := WireLatency(wireTestConfig())
	b := WireLatency(wireTestConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E14 table not reproducible:\n%s\nvs\n%s",
			FormatWireLatency(a), FormatWireLatency(b))
	}
	for i, p := range a.Points {
		if p.ArrivalDigest == 0 {
			t.Fatalf("point %d: zero arrival digest", i)
		}
		if len(p.ServerDigests) == 0 {
			t.Fatalf("point %d: no server shard digests", i)
		}
	}
}

func TestWireLatencyCurveShape(t *testing.T) {
	res := WireLatency(wireTestConfig())
	t.Logf("\n%s", FormatWireLatency(res))
	if len(res.Points) != 5 {
		t.Fatalf("expected 5 points, got %d", len(res.Points))
	}
	var prevLoss float64
	for i, p := range res.Points {
		v := p.Cell(qos.Voice)
		if v.Submitted == 0 || v.Completed == 0 {
			t.Fatalf("point %.2fx: no voice traffic (%+v)", p.Offered, v)
		}
		if v.LossFrac > 0.01 {
			t.Errorf("point %.2fx: voice loss %.2f%% above 1%%", p.Offered, 100*v.LossFrac)
		}
		if p.TotalLossFrac+1e-9 < prevLoss {
			t.Errorf("point %.2fx: total loss %.4f below previous %.4f (not monotone)",
				p.Offered, p.TotalLossFrac, prevLoss)
		}
		prevLoss = p.TotalLossFrac
		if i > 0 && p.WireMbps+1e-9 < res.Points[i-1].WireMbps &&
			p.Offered <= 1.0 {
			t.Errorf("point %.2fx: delivered %.0f Mbps dropped below previous %.0f under saturation",
				p.Offered, p.WireMbps, res.Points[i-1].WireMbps)
		}
	}
	under := res.Points[0]                // 0.25x
	over := res.Points[len(res.Points)-1] // 2.0x
	bgU, bgO := under.Cell(qos.Background), over.Cell(qos.Background)
	if bgO.P99 <= bgU.P99 {
		t.Errorf("background wire p99 did not grow past the knee: %d -> %d cycles",
			bgU.P99, bgO.P99)
	}
	if over.TotalLossFrac <= under.TotalLossFrac {
		t.Errorf("no saturation knee: loss %.4f at 0.25x vs %.4f at 2.0x",
			under.TotalLossFrac, over.TotalLossFrac)
	}
	vU, vO := under.Cell(qos.Voice), over.Cell(qos.Voice)
	// Voice stays flat past the knee under qos-priority: its p99 may grow
	// only modestly while background's blows out.
	if vO.P99 > 2*vU.P99 {
		t.Errorf("voice wire p99 not flat past the knee: %d -> %d cycles", vU.P99, vO.P99)
	}
}

func TestWireSmoke(t *testing.T) {
	v := WireSmoke()
	t.Logf("%s", v)
	if !v.Pass() {
		t.Fatalf("wiresmoke gate failed: %s", v)
	}
	a, b := WireSmoke(), WireSmoke()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("wiresmoke not reproducible: %s vs %s", a, b)
	}
}
