package harness

import (
	"reflect"
	"testing"

	"mccp/internal/qos"
)

// loadCurveFixture runs one moderate-size E13 sweep shared by the
// acceptance tests (the sweep is deterministic, so sharing is safe).
var loadCurveFixture *LoadCurveResult

func e13(t *testing.T) LoadCurveResult {
	t.Helper()
	if loadCurveFixture == nil {
		res := LoadCurve(LoadCurveConfig{BackgroundPackets: 200})
		loadCurveFixture = &res
	}
	return *loadCurveFixture
}

// TestLoadCurveShape is the E13 acceptance gate: the loss curve is
// monotone in offered load with a visible saturation knee — delivered
// throughput plateaus and background loss climbs steeply past it.
func TestLoadCurveShape(t *testing.T) {
	res := e13(t)
	if res.SaturationMbps < 500 || res.SaturationMbps > 4000 {
		t.Fatalf("implausible calibrated saturation %.0f Mbps", res.SaturationMbps)
	}
	for _, pol := range []string{"first-idle", "qos-priority"} {
		pts := res.PolicyPoints(pol)
		if len(pts) != len(DefaultOfferedPoints) {
			t.Fatalf("%s: %d points", pol, len(pts))
		}
		const eps = 0.02
		for i := 1; i < len(pts); i++ {
			if pts[i].TotalLossFrac+eps < pts[i-1].TotalLossFrac {
				t.Errorf("%s: total loss not monotone: %.3f at %.2fx after %.3f at %.2fx",
					pol, pts[i].TotalLossFrac, pts[i].Offered, pts[i-1].TotalLossFrac, pts[i-1].Offered)
			}
			bg, prev := pts[i].Cell(qos.Background), pts[i-1].Cell(qos.Background)
			if bg.LossFrac+eps < prev.LossFrac {
				t.Errorf("%s: background loss not monotone at %.2fx", pol, pts[i].Offered)
			}
		}
		// Underload is lossless; deep overload loses a big background
		// fraction (the knee is visible).
		for _, p := range pts {
			bg := p.Cell(qos.Background)
			if p.Offered <= 0.75 && bg.LossFrac > 0.01 {
				t.Errorf("%s: background loses %.1f%% at %.2fx (underload must be lossless)",
					pol, 100*bg.LossFrac, p.Offered)
			}
		}
		last := pts[len(pts)-1]
		if bg := last.Cell(qos.Background); bg.LossFrac < 0.2 {
			t.Errorf("%s: background loss %.1f%% at %.2fx, want a steep climb past the knee",
				pol, 100*bg.LossFrac, last.Offered)
		}
		// Delivered throughput saturates: the 2x point delivers no more
		// than ~15% above the 1.5x point (offered grows 33%, delivery
		// has hit the ceiling).
		var at15, at2 float64
		for _, p := range pts {
			if p.Offered == 1.5 {
				at15 = p.TotalDeliveredMbps
			}
			if p.Offered == 2.0 {
				at2 = p.TotalDeliveredMbps
			}
		}
		if at15 <= 0 || at2 > 1.15*at15 {
			t.Errorf("%s: no saturation plateau: delivered %.0f at 1.5x vs %.0f at 2x", pol, at15, at2)
		}
	}
}

// TestLoadCurveVoiceProtection: under qos-priority the voice class holds
// ~0%% loss everywhere and a flat p99 past the knee, while first-idle's
// voice p99 keeps climbing — the E13 headline.
func TestLoadCurveVoiceProtection(t *testing.T) {
	res := e13(t)
	qp := res.PolicyPoints("qos-priority")
	fi := res.PolicyPoints("first-idle")
	for _, p := range qp {
		v := p.Cell(qos.Voice)
		if v.LossFrac > 0.01 {
			t.Errorf("qos-priority: voice loses %.2f%% at %.2fx, want <= 1%%", 100*v.LossFrac, p.Offered)
		}
	}
	// Flatness past the knee: across the points at or beyond 1.25x, the
	// voice p99 spread stays within 1.5x.
	var pastKnee []float64
	for _, p := range qp {
		if p.Offered >= 1.25 {
			pastKnee = append(pastKnee, float64(p.Cell(qos.Voice).P99))
		}
	}
	min, max := pastKnee[0], pastKnee[0]
	for _, v := range pastKnee {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min <= 0 || max/min > 1.5 {
		t.Errorf("qos-priority: voice p99 not flat past the knee: %v", pastKnee)
	}
	// The contrast: at deep overload first-idle's voice p99 exceeds
	// qos-priority's.
	lastQP, lastFI := qp[len(qp)-1].Cell(qos.Voice), fi[len(fi)-1].Cell(qos.Voice)
	if lastFI.P99 <= lastQP.P99 {
		t.Errorf("first-idle voice p99 %d should exceed qos-priority %d at 2x overload",
			lastFI.P99, lastQP.P99)
	}
}

// TestLoadPointDeterminism: a load point is a pure function of its
// configuration — counters, percentiles and the arrival digest all match
// across runs.
func TestLoadPointDeterminism(t *testing.T) {
	cfg := LoadCurveConfig{BackgroundPackets: 80}
	cfg.fill()
	sat := SaturationMbps(cfg.Mix, cfg.SatPackets)
	a := LoadPointRun("qos-priority", 1.25, sat, cfg)
	b := LoadPointRun("qos-priority", 1.25, sat, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("load point not deterministic:\n%+v\n%+v", a, b)
	}
	if a.ArrivalDigest == 0 {
		t.Fatal("no arrival digest recorded")
	}
}

// TestLoadSmoke: the CI mini-curve gate passes on a healthy tree and
// carries the three points it measured.
func TestLoadSmoke(t *testing.T) {
	v := LoadSmoke()
	if !v.Pass() {
		t.Fatalf("%s", v)
	}
	if len(v.Points) != 3 {
		t.Fatalf("smoke ran %d points, want 3", len(v.Points))
	}
	if v.VoiceLossAtHalf > 0.01 {
		t.Fatalf("voice loss at 0.5x = %.3f", v.VoiceLossAtHalf)
	}
}

// TestLoadCurveProcesses: the deterministic and bursty on/off processes
// drive the same machinery; the bursty source sheds more background at
// the same mean load (clumps overflow the bounded queue).
func TestLoadCurveProcesses(t *testing.T) {
	base := LoadCurveConfig{BackgroundPackets: 150}
	base.fill()
	sat := SaturationMbps(base.Mix, base.SatPackets)

	det := base
	det.Process = "deterministic"
	onoff := base
	onoff.Process = "onoff"
	pDet := LoadPointRun("qos-priority", 1.0, sat, det)
	pBurst := LoadPointRun("qos-priority", 1.0, sat, onoff)
	if pDet.Cell(qos.Background).Submitted == 0 || pBurst.Cell(qos.Background).Submitted == 0 {
		t.Fatal("process sweep produced no arrivals")
	}
	lossDet := pDet.Cell(qos.Background).LossFrac
	lossBurst := pBurst.Cell(qos.Background).LossFrac
	if lossBurst <= lossDet {
		t.Errorf("bursty on/off background loss %.3f should exceed deterministic %.3f at the knee",
			lossBurst, lossDet)
	}
}
