package harness

import (
	"reflect"
	"testing"

	"mccp/internal/qos"
	"mccp/internal/reconfig"
)

// recoveryTestConfig keeps the E17 table small enough for CI: 4 shards,
// 64 sessions, short windows, qos-priority over all three sources. The
// higher TimeScale squeezes even the compact-flash reload into the short
// horizon; the ordering between sources is what the drill checks, and
// that is scale-invariant.
func recoveryTestConfig() RecoveryConfig {
	return RecoveryConfig{
		Wire: WireConfig{
			Shards:       4,
			Sessions:     64,
			WindowCycles: 4096,
			Windows:      24,
		},
		FaultWindow: 8,
		TimeScale:   16384,
	}
}

func TestRecoveryCurvesDeterministic(t *testing.T) {
	a := RecoveryCurves(recoveryTestConfig())
	b := RecoveryCurves(recoveryTestConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E17 table not reproducible:\n%s\nvs\n%s",
			FormatRecoveryCurves(a), FormatRecoveryCurves(b))
	}
	for i, p := range a.Points {
		if p.ArrivalDigest == 0 {
			t.Fatalf("point %d: zero arrival digest", i)
		}
	}
}

// TestRecoveryCurvesShape pins the drill's substance per source: the
// shard restarts and rejoins, nothing is lost, voice rides through the
// whole arc, the brownout lifts, capacity comes back — and the paper's
// Table IV hierarchy survives the full stack: the icap reload beats ram
// beats compact-flash, in restart cost and in time back to capacity.
func TestRecoveryCurvesShape(t *testing.T) {
	res := RecoveryCurves(recoveryTestConfig())
	t.Logf("\n%s", FormatRecoveryCurves(res))
	if len(res.Points) != 3 {
		t.Fatalf("expected 1 policy x 3 sources = 3 points, got %d", len(res.Points))
	}
	byName := map[string]RecoveryPoint{}
	for _, p := range res.Points {
		byName[p.Source] = p
		if p.RejoinWindow < 0 {
			t.Errorf("%s: shard never rejoined", p.Source)
			continue
		}
		if p.Lost != 0 {
			t.Errorf("%s: %d sessions lost", p.Source, p.Lost)
		}
		if p.Moved == 0 {
			t.Errorf("%s: no sessions re-homed at the crash", p.Source)
		}
		if v := p.Cell(qos.Voice); v.LossFrac > 0.01 {
			t.Errorf("%s: voice loss %.2f%% above 1%% across crash and recovery",
				p.Source, 100*v.LossFrac)
		}
		if !p.BrownoutImposed {
			t.Errorf("%s: the fail-over shed nothing (drill not exercising brownout)", p.Source)
		}
		if !p.BrownoutLifted {
			t.Errorf("%s: brownout never fully lifted", p.Source)
		}
		if !p.Recovered {
			t.Errorf("%s: voice never recovered", p.Source)
		}
		if !p.CapacityRestored {
			t.Errorf("%s: delivered capacity never climbed back", p.Source)
		}
		if p.RestartCycles == 0 {
			t.Errorf("%s: free bitstream reload", p.Source)
		}
	}
	cf, ram, icap := byName[reconfig.CompactFlash.Name], byName[reconfig.StagingRAM.Name], byName[reconfig.FastICAP.Name]
	if !(icap.RestartCycles < ram.RestartCycles && ram.RestartCycles < cf.RestartCycles) {
		t.Errorf("restart cost ordering broken: icap %d, ram %d, compact-flash %d",
			icap.RestartCycles, ram.RestartCycles, cf.RestartCycles)
	}
	if !(icap.CapacityCycles <= ram.CapacityCycles && ram.CapacityCycles <= cf.CapacityCycles) {
		t.Errorf("time-to-capacity ordering broken: icap %d, ram %d, compact-flash %d",
			icap.CapacityCycles, ram.CapacityCycles, cf.CapacityCycles)
	}
}

// TestRecoveryBaselineMatchesFaultZeroRow is the E17 lineage guard: the
// zero-fault baseline row is computed by E16's own FaultPointRun with
// the same wire config, so the two experiments share one baseline bit
// for bit — and the restart plumbing costs nothing until a crash fires.
func TestRecoveryBaselineMatchesFaultZeroRow(t *testing.T) {
	cfg := recoveryTestConfig()
	cfg.fill()
	sat := SaturationMbps(cfg.Wire.Mix, cfg.Wire.SatPackets) * float64(cfg.Wire.Shards) *
		float64(cfg.Wire.CoresPerShard) / 4
	res := RecoveryCurves(recoveryTestConfig())
	base := FaultPointRun("qos-priority", FaultRow{}, sat, FaultConfig{
		Wire:           cfg.Wire,
		Offered:        cfg.Offered,
		FaultWindow:    cfg.FaultWindow,
		VoiceRecovered: cfg.VoiceRecovered,
	})
	if !reflect.DeepEqual(res.Baseline, base) {
		t.Fatalf("E17 baseline diverges from the E16 zero-fault row:\n%+v\nvs\n%+v",
			res.Baseline, base)
	}
}

func TestHealSmoke(t *testing.T) {
	v := HealSmoke()
	t.Logf("%s", v)
	if !v.Pass() {
		t.Fatalf("healsmoke gate failed: %s", v)
	}
	a, b := HealSmoke(), HealSmoke()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("healsmoke not reproducible: %s vs %s", a, b)
	}
}
