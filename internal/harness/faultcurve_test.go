package harness

import (
	"reflect"
	"testing"

	"mccp/internal/qos"
	"mccp/internal/sim"
)

// faultTestConfig keeps the E16 table small enough for CI: 4 shards,
// 64 sessions, short windows, both policies over the default rows.
func faultTestConfig() FaultConfig {
	return FaultConfig{
		Wire: WireConfig{
			Shards:       4,
			Sessions:     64,
			WindowCycles: 4096,
			Windows:      24,
		},
		FaultWindow: 8,
	}
}

func TestFaultCurvesDeterministic(t *testing.T) {
	a := FaultCurves(faultTestConfig())
	b := FaultCurves(faultTestConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E16 table not reproducible:\n%s\nvs\n%s",
			FormatFaultCurves(a), FormatFaultCurves(b))
	}
	for i, p := range a.Points {
		if p.ArrivalDigest == 0 {
			t.Fatalf("point %d: zero arrival digest", i)
		}
		if len(p.ServerDigests) == 0 {
			t.Fatalf("point %d: no server shard digests", i)
		}
	}
}

// TestFaultCurvesCompat replays one faulted point on the reference
// simulation kernel: digests, verdicts, fail-over log and recovery
// times must all match the fast path bit for bit.
func TestFaultCurvesCompat(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Rows = []FaultRow{{Crashes: 1, Churn: 8}}
	cfg.Policies = []string{"qos-priority"}
	fast := FaultCurves(cfg)
	sim.CompatDefault = true
	defer func() { sim.CompatDefault = false }()
	ref := FaultCurves(cfg)
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("fast path diverges from the Compat reference kernel:\n%s\nvs\n%s",
			FormatFaultCurves(fast), FormatFaultCurves(ref))
	}
}

// TestFaultZeroRowMatchesWireBaseline is the E16 lineage guard: the
// zero-fault row — fault plane wired in, schedule empty, detector live —
// must be bit-identical to the plain E14 pipeline at the same offered
// point. The fault machinery may cost nothing until a fault fires.
func TestFaultZeroRowMatchesWireBaseline(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Rows = []FaultRow{{0, 0}}
	cfg.Policies = []string{"qos-priority"}
	cfg.fill()
	sat := SaturationMbps(cfg.Wire.Mix, cfg.Wire.SatPackets) * float64(cfg.Wire.Shards) *
		float64(cfg.Wire.CoresPerShard) / 4

	fault := FaultPointRun("qos-priority", FaultRow{0, 0}, sat, cfg)

	wire := cfg.Wire
	wire.Policy = "qos-priority"
	base := WirePointRun(cfg.Offered, sat, wire)

	if !reflect.DeepEqual(fault.WirePoint, base) {
		t.Fatalf("zero-fault row diverges from the E14 baseline:\nfault: %+v\nbase:  %+v",
			fault.WirePoint, base)
	}
	if len(fault.Rehomes) != 0 {
		t.Fatalf("zero-fault row recorded fail-overs: %+v", fault.Rehomes)
	}
	if fault.Churned != 0 {
		t.Fatalf("zero-fault row churned %d sessions", fault.Churned)
	}
}

func TestFaultCurvesShape(t *testing.T) {
	res := FaultCurves(faultTestConfig())
	t.Logf("\n%s", FormatFaultCurves(res))
	if len(res.Points) != 8 {
		t.Fatalf("expected 2 policies x 4 rows = 8 points, got %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Row.Crashes == 0 {
			if len(p.Rehomes) != 0 {
				t.Errorf("%s zero-fault row has fail-overs: %+v", p.Policy, p.Rehomes)
			}
			continue
		}
		if len(p.Rehomes) != p.Row.Crashes {
			t.Errorf("%s crashes=%d: detector logged %d fail-overs",
				p.Policy, p.Row.Crashes, len(p.Rehomes))
		}
		if p.Lost != 0 {
			t.Errorf("%s crashes=%d: %d sessions lost in re-home", p.Policy, p.Row.Crashes, p.Lost)
		}
		if p.Moved == 0 {
			t.Errorf("%s crashes=%d: no sessions re-homed", p.Policy, p.Row.Crashes)
		}
		if !p.Recovered {
			t.Errorf("%s crashes=%d: voice never recovered", p.Policy, p.Row.Crashes)
		}
		if p.Policy == "qos-priority" {
			v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
			if p.Row.Crashes == 1 && v.LossFrac > 0.01 {
				t.Errorf("qos-priority crashes=1 churn=%d: voice loss %.2f%% above 1%%",
					p.Row.Churn, 100*v.LossFrac)
			}
			// With half the cluster dead some voice bound for the corpses
			// is unavoidable; it must still be a small fraction of the
			// background loss the brownout deliberately takes.
			if v.LossFrac > bg.LossFrac/4 {
				t.Errorf("qos-priority crashes=%d: voice loss %.2f%% not well under background %.2f%%",
					p.Row.Crashes, 100*v.LossFrac, 100*bg.LossFrac)
			}
		}
		if p.Row.Churn > 0 && p.Churned == 0 {
			t.Errorf("%s churn=%d: no sessions churned", p.Policy, p.Row.Churn)
		}
	}
}

func TestFaultSmoke(t *testing.T) {
	v := FaultSmoke()
	t.Logf("%s", v)
	if !v.Pass() {
		t.Fatalf("faultsmoke gate failed: %s", v)
	}
	a, b := FaultSmoke(), FaultSmoke()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faultsmoke not reproducible: %s vs %s", a, b)
	}
}
