package harness

import (
	"fmt"
	"strings"

	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/qos"
	"mccp/internal/radio"
	"mccp/internal/scheduler"
	"mccp/internal/sim"
)

// This file is experiment E12: the §VIII quality-of-service extension.
// A 4:1 overload mix — four closed-loop background streams of
// maximum-size packets against one latency-critical voice stream — runs
// through the qos.Shaper front end under each dispatch policy. The
// headline claim mirrors the paper's outlook: with the qos-priority
// core-reservation policy, voice keeps >= 90% of its uncontended
// throughput while the paper's first-idle policy lets bulk traffic
// head-of-line block it.

// QoSVoiceBytes and QoSBackgroundBytes are the experiment's fixed packet
// sizes (a small CCM voice frame vs the Table II bulk packet size).
const (
	QoSVoiceBytes      = 256
	QoSBackgroundBytes = PacketBytes
	// QoSBackgroundStreams : 1 voice stream is the 4:1 overload mix.
	QoSBackgroundStreams = 4
	// QoSVoiceDeadline is the per-packet relative deadline tag: about 2x
	// the uncontended voice round trip, so misses indicate real queueing.
	QoSVoiceDeadline sim.Time = 8000
)

// QoSCell is one class's measurement in one scenario.
type QoSCell struct {
	Class qos.Class
	// Mbps is the class's delivered throughput over its own active
	// window at 190 MHz; P50/P95/P99 are enqueue-to-completion latency
	// percentiles in cycles.
	Mbps          float64
	P50, P95, P99 sim.Time
	Completed     uint64
	// DeadlineMisses counts voice packets finishing past their tag.
	DeadlineMisses uint64
	// Queued and Shed are the device's saturation counters for the run
	// (whole-device, reported on the background row).
	Queued, Shed uint64
}

// QoSScenario is one experiment run: a dispatch policy against the
// overload mix (or the uncontended voice baseline).
type QoSScenario struct {
	Name   string // scenario label ("uncontended", "first-idle", "qos-priority")
	Policy string // device dispatch policy used
	Cells  []QoSCell
}

// VoiceMbps returns the scenario's voice-class throughput.
func (s QoSScenario) VoiceMbps() float64 {
	for _, c := range s.Cells {
		if c.Class == qos.Voice {
			return c.Mbps
		}
	}
	return 0
}

// Cell returns the scenario's cell for a class (zero value if absent).
func (s QoSScenario) Cell(c qos.Class) QoSCell {
	for _, cell := range s.Cells {
		if cell.Class == c {
			return cell
		}
	}
	return QoSCell{Class: c}
}

// QoSResult is the full E12 sweep.
type QoSResult struct {
	// VoiceUncontendedMbps is the baseline: the voice stream alone on the
	// device.
	VoiceUncontendedMbps float64
	// Scenarios holds the overload runs, one per dispatch policy.
	Scenarios []QoSScenario
}

// Retention returns a policy's voice throughput under overload relative
// to the uncontended baseline (1.0 = no degradation).
func (r QoSResult) Retention(policy string) float64 {
	if r.VoiceUncontendedMbps == 0 {
		return 0
	}
	for _, s := range r.Scenarios {
		if s.Policy == policy {
			return s.VoiceMbps() / r.VoiceUncontendedMbps
		}
	}
	return 0
}

// qosDevice is the shared experiment fixture: one device under a named
// dispatch policy with queueing on, firmware settled.
func qosDevice(policy string, seed uint64) (*sim.Engine, *core.MCCP, *radio.CommController, *radio.MainController) {
	pol, err := scheduler.ByName(policy)
	if err != nil {
		// Experiment drivers pass literal policy names; a typo is a
		// programming error, not user input.
		panic(err)
	}
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{Cores: 4, Policy: pol, QueueRequests: true})
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, seed)
	eng.Run()
	return eng, dev, cc, mc
}

// openQoSChannel provisions a 128-bit key and opens a channel with the
// suite, draining the engine; it panics on error like the rest of the
// experiment fixtures.
func openQoSChannel(eng *sim.Engine, cc *radio.CommController, mc *radio.MainController, s core.Suite) int {
	keyID, _, err := mc.ProvisionKey(16)
	if err != nil {
		panic(err)
	}
	ch := 0
	cc.OpenChannel(s, keyID, func(c int, e error) {
		if e != nil {
			panic(e)
		}
		ch = c
	})
	eng.Run()
	return ch
}

// QoSRunConfig parameterizes one runQoS scenario.
type QoSRunConfig struct {
	Policy            string
	VoicePackets      int
	BackgroundStreams int
	Drain             string
}

// runQoS drives the overload mix through one device and returns the
// scenario. Everything is closed-loop and virtual-time, so the result is
// a pure function of the configuration.
func runQoS(cfg QoSRunConfig) QoSScenario {
	eng, dev, cc, mc := qosDevice(cfg.Policy, 17)
	shaper := qos.NewShaper(eng, cc, qos.Config{Drain: cfg.Drain})

	voiceCh := openQoSChannel(eng, cc, mc, core.Suite{Family: cryptocore.FamilyCCM,
		TagLen: 8, Priority: qos.Voice.Priority()})
	voiceNonce := make([]byte, 13)
	voicePayload := make([]byte, QoSVoiceBytes)

	bgCh := 0
	bgNonce := make([]byte, 12)
	bgPayload := make([]byte, QoSBackgroundBytes)
	if cfg.BackgroundStreams > 0 {
		bgCh = openQoSChannel(eng, cc, mc, core.Suite{Family: cryptocore.FamilyGCM,
			TagLen: 16, Priority: qos.Background.Priority()})
	}

	voiceLeft := cfg.VoicePackets
	voiceDone := false
	var launchVoice func()
	launchVoice = func() {
		if voiceLeft == 0 {
			voiceDone = true
			return
		}
		voiceLeft--
		shaper.EncryptDeadline(qos.Voice, voiceCh, voiceNonce, nil, voicePayload,
			eng.Now()+QoSVoiceDeadline, func(_ []byte, err error) {
				if err != nil {
					panic(err)
				}
				launchVoice()
			})
	}
	var launchBG func()
	launchBG = func() {
		// Keep the background load saturating until the voice measurement
		// finishes, then let the run drain.
		if voiceDone {
			return
		}
		shaper.Encrypt(qos.Background, bgCh, bgNonce, nil, bgPayload,
			func(_ []byte, err error) {
				if err != nil {
					panic(err)
				}
				launchBG()
			})
	}
	for i := 0; i < cfg.BackgroundStreams; i++ {
		launchBG()
	}
	launchVoice()
	eng.Run()

	scen := QoSScenario{Name: cfg.Policy, Policy: cfg.Policy}
	for _, class := range []qos.Class{qos.Voice, qos.Background} {
		st := shaper.Stats(class)
		if st.Submitted == 0 {
			continue
		}
		cell := QoSCell{
			Class:          class,
			Mbps:           st.Mbps(sim.DefaultFreqHz),
			P50:            shaper.LatencyPercentile(class, 50),
			P95:            shaper.LatencyPercentile(class, 95),
			P99:            shaper.LatencyPercentile(class, 99),
			Completed:      st.Completed,
			DeadlineMisses: st.DeadlineMisses,
		}
		if class == qos.Background {
			cell.Queued = dev.Stats.Queued
			cell.Shed = dev.Stats.Shed
		}
		scen.Cells = append(scen.Cells, cell)
	}
	return scen
}

// QoSTable runs E12: the uncontended voice baseline, then the 4:1
// overload mix under first-idle and qos-priority. voicePackets sizes the
// measurement (24 gives stable figures in well under a second).
func QoSTable(voicePackets int) QoSResult {
	base := runQoS(QoSRunConfig{Policy: "first-idle", VoicePackets: voicePackets})
	res := QoSResult{VoiceUncontendedMbps: base.VoiceMbps()}
	for _, pol := range []string{"first-idle", "qos-priority"} {
		s := runQoS(QoSRunConfig{
			Policy:            pol,
			VoicePackets:      voicePackets,
			BackgroundStreams: QoSBackgroundStreams,
		})
		res.Scenarios = append(res.Scenarios, s)
	}
	return res
}

// FormatQoSTable renders the E12 sweep.
func FormatQoSTable(r QoSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "QoS under a 4:1 overload mix (4 x %dB background streams vs 1 x %dB voice stream)\n",
		QoSBackgroundBytes, QoSVoiceBytes)
	fmt.Fprintf(&b, "voice uncontended baseline: %.0f Mbps\n", r.VoiceUncontendedMbps)
	fmt.Fprintf(&b, "%-14s %-12s %10s %10s %10s %10s %8s %10s\n",
		"policy", "class", "Mbps", "p50 cyc", "p95 cyc", "p99 cyc", "misses", "retention")
	for _, s := range r.Scenarios {
		for _, c := range s.Cells {
			ret := "-"
			if c.Class == qos.Voice {
				ret = fmt.Sprintf("%9.0f%%", 100*c.Mbps/r.VoiceUncontendedMbps)
			}
			fmt.Fprintf(&b, "%-14s %-12s %10.0f %10d %10d %10d %8d %10s\n",
				s.Name, c.Class, c.Mbps, c.P50, c.P95, c.P99, c.DeadlineMisses, ret)
		}
	}
	return b.String()
}

// QoSDrainRow is one drain policy's fairness measurement.
type QoSDrainRow struct {
	Drain string
	// VoiceP95 and BackgroundP95 are per-class latency percentiles under
	// a shaper whose capacity equals the core count (so the shaper's
	// queues, not the device's, do the ordering).
	VoiceP95, BackgroundP95 sim.Time
	// BackgroundCompleted counts background packets finished before the
	// sustained voice load ended; BackgroundShed counts admission drops
	// at the bounded class queue.
	BackgroundCompleted, BackgroundShed uint64
}

// QoSDrainComparison contrasts strict-priority and weighted-fair drains
// under sustained voice load with a burst of background packets behind a
// bounded queue: strict priority starves background until the voice load
// ends (and sheds the burst overflow), weighted-fair drains it at the
// configured ratio with bounded wait.
func QoSDrainComparison(voicePackets int) []QoSDrainRow {
	var rows []QoSDrainRow
	for _, drain := range qos.DrainNames() {
		eng, _, cc, mc := qosDevice("first-idle", 23)
		shaper := qos.NewShaper(eng, cc, qos.Config{
			Capacity:   4,
			QueueDepth: 8,
			Drain:      drain,
		})
		voiceCh := openQoSChannel(eng, cc, mc, core.Suite{Family: cryptocore.FamilyCCM,
			TagLen: 8, Priority: qos.Voice.Priority()})
		bgCh := openQoSChannel(eng, cc, mc, core.Suite{Family: cryptocore.FamilyGCM,
			TagLen: 16, Priority: qos.Background.Priority()})

		voiceNonce := make([]byte, 13)
		voicePayload := make([]byte, QoSVoiceBytes)
		left := voicePackets
		var launch func()
		launch = func() {
			if left == 0 {
				return
			}
			left--
			shaper.Encrypt(qos.Voice, voiceCh, voiceNonce, nil, voicePayload,
				func(_ []byte, err error) {
					if err != nil {
						panic(err)
					}
					launch()
				})
		}
		// Six sustained voice streams over a capacity of four keep the
		// voice queue backlogged, so the drain policy decides every slot.
		for i := 0; i < 6; i++ {
			launch()
		}
		// A 12-packet background burst against an 8-deep class queue:
		// 4 shed immediately, the rest wait on the drain policy.
		bgNonce := make([]byte, 12)
		bgPayload := make([]byte, QoSBackgroundBytes)
		for i := 0; i < 12; i++ {
			shaper.Encrypt(qos.Background, bgCh, bgNonce, nil, bgPayload, func(_ []byte, err error) {
				if err != nil && err != qos.ErrShed {
					panic(err)
				}
			})
		}
		eng.Run()
		bg := shaper.Stats(qos.Background)
		rows = append(rows, QoSDrainRow{
			Drain:               drain,
			VoiceP95:            shaper.LatencyPercentile(qos.Voice, 95),
			BackgroundP95:       shaper.LatencyPercentile(qos.Background, 95),
			BackgroundCompleted: bg.Completed,
			BackgroundShed:      bg.Shed,
		})
	}
	return rows
}

// FormatQoSDrains renders the drain-policy comparison.
func FormatQoSDrains(rows []QoSDrainRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %8s\n",
		"drain", "voice p95", "bg p95", "bg done", "bg shed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12d %12d %10d %8d\n",
			r.Drain, r.VoiceP95, r.BackgroundP95, r.BackgroundCompleted, r.BackgroundShed)
	}
	return b.String()
}
