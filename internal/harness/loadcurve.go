package harness

import (
	"fmt"
	"strings"

	"mccp/internal/arrivals"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/obs"
	"mccp/internal/qos"
	"mccp/internal/sim"
	"mccp/internal/verdict"
)

// This file is experiment E13: open-loop offered-load curves. Every
// earlier experiment was closed-loop — the generator refilled the device
// as fast as it drained — so loss and latency could never be reported as
// a function of offered load. Here arrival processes (internal/arrivals)
// emit packets on their own virtual-time clock into a bounded qos.Shaper
// in front of the device, and the sweep walks the offered load from deep
// underload through the saturation knee. Past the knee the background
// class's loss climbs while, under the qos-priority dispatch policy, the
// voice class holds a flat p99 and ~0% loss; the paper's first-idle
// policy is the contrast that shows what the reservation buys.

// LoadMix is the E13 class mix: voice-light, background-heavy, all four
// classes present. Shares are fractions of the total offered bits; the
// voice deadline is about 4x its uncontended round trip, so expiries
// indicate real queueing, not tightness.
var LoadMix = []arrivals.ClassProfile{
	{Class: qos.Voice, Share: 0.10, Bytes: 256, Family: cryptocore.FamilyCCM, KeyLen: 16, TagLen: 8, Deadline: 16000},
	{Class: qos.Video, Share: 0.15, Bytes: 1024, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
	{Class: qos.Data, Share: 0.15, Bytes: 512, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
	{Class: qos.Background, Share: 0.60, Bytes: 2048, Family: cryptocore.FamilyGCM, KeyLen: 16, TagLen: 16},
}

// DefaultOfferedPoints is the default sweep: underload, the knee, and
// twice saturation.
var DefaultOfferedPoints = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}

// SaturationMbps calibrates the device's nominal capacity for a class mix
// as the share-weighted harmonic blend of the per-family four-core
// throughputs (harmonic, because the classes time-share one device). The
// result is deterministic; packets sizes the calibration runs.
func SaturationMbps(mix []arrivals.ClassProfile, packets int) float64 {
	capGCM := MeasureThroughput(cryptocore.FamilyGCM, GCM4x1, 16, PacketBytes, packets)
	capCCM := MeasureThroughput(cryptocore.FamilyCCM, CCM4x1, 16, 256, packets)
	denom := 0.0
	for _, p := range mix {
		c := capGCM
		if p.Family == cryptocore.FamilyCCM {
			c = capCCM
		}
		denom += p.Share / c
	}
	if denom <= 0 {
		return 0
	}
	return 1 / denom
}

// LoadClassCell is one class's measurement at one offered-load point.
type LoadClassCell struct {
	Class qos.Class
	// OfferedMbps and DeliveredMbps are over the measurement window at
	// the modeled clock.
	OfferedMbps, DeliveredMbps float64
	// Verdict counters: Shed includes Expired and Aged.
	Submitted, Completed, Shed, Expired, Aged uint64
	// LossFrac is (Submitted-Completed)/Submitted — every packet that
	// arrived but was never delivered.
	LossFrac float64
	// P50/P99 are enqueue-to-completion latency percentiles in cycles;
	// Misses counts completions past their deadline tag.
	P50, P99 sim.Time
	Misses   uint64
}

// LoadPoint is one (policy, offered) measurement.
type LoadPoint struct {
	Policy  string
	Offered float64 // fraction of the calibrated saturation capacity
	Classes []LoadClassCell
	// Totals across classes.
	TotalOfferedMbps, TotalDeliveredMbps, TotalLossFrac float64
	// ArrivalDigest folds every arrival's (class, seq, time) — the
	// determinism witness.
	ArrivalDigest uint64
}

// Cell returns the point's cell for a class (zero value if absent).
func (p LoadPoint) Cell(c qos.Class) LoadClassCell {
	for _, cell := range p.Classes {
		if cell.Class == c {
			return cell
		}
	}
	return LoadClassCell{Class: c}
}

// LoadCurveConfig parameterizes LoadCurve.
type LoadCurveConfig struct {
	// Policies are the device dispatch policies swept (default first-idle
	// then qos-priority, the E13 contrast).
	Policies []string
	// Offered are the load points as fractions of saturation (default
	// DefaultOfferedPoints).
	Offered []float64
	// BackgroundPackets sizes each point's measurement window: the window
	// is long enough for this many expected background arrivals (default
	// 300).
	BackgroundPackets int
	// Process names the arrival process (default poisson); Drain the
	// shaper drain policy (default strict-priority); Mix the class mix
	// (default LoadMix).
	Process string
	Drain   string
	Mix     []arrivals.ClassProfile
	// Capacity and QueueDepth size the shaper (defaults 8 and 32): the
	// bounded element that converts overload into shed/expired verdicts.
	Capacity, QueueDepth int
	Seed                 uint64
	// SatPackets sizes the capacity calibration (default 8).
	SatPackets int
}

func (c *LoadCurveConfig) fill() {
	if len(c.Policies) == 0 {
		c.Policies = []string{"first-idle", "qos-priority"}
	}
	if len(c.Offered) == 0 {
		c.Offered = DefaultOfferedPoints
	}
	if c.BackgroundPackets <= 0 {
		c.BackgroundPackets = 300
	}
	if len(c.Mix) == 0 {
		c.Mix = LoadMix
	}
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.SatPackets <= 0 {
		c.SatPackets = 8
	}
	if c.Seed == 0 {
		c.Seed = 29
	}
}

// LoadCurveResult is the full E13 sweep.
type LoadCurveResult struct {
	SaturationMbps float64
	Drain          string
	// Points hold every (policy, offered) run: for each policy in
	// Policies order, the offered points ascending.
	Points []LoadPoint
}

// PolicyPoints filters the sweep down to one policy.
func (r LoadCurveResult) PolicyPoints(policy string) []LoadPoint {
	var out []LoadPoint
	for _, p := range r.Points {
		if p.Policy == policy {
			out = append(out, p)
		}
	}
	return out
}

// LoadCurve runs E13: the open-loop offered-load sweep under each policy.
// Everything is virtual-time and seeded, so the result is a pure function
// of the configuration.
func LoadCurve(cfg LoadCurveConfig) LoadCurveResult {
	cfg.fill()
	sat := SaturationMbps(cfg.Mix, cfg.SatPackets)
	res := LoadCurveResult{SaturationMbps: sat, Drain: cfg.Drain}
	if res.Drain == "" {
		res.Drain = qos.DrainStrict
	}
	for _, pol := range cfg.Policies {
		for _, offered := range cfg.Offered {
			res.Points = append(res.Points, LoadPointRun(pol, offered, sat, cfg))
		}
	}
	return res
}

// LoadPointRun measures one (policy, offered) point: open-loop sources
// for every class emit into a bounded shaper over a fixed virtual-time
// window, and the per-class verdict counters and latency percentiles are
// the result.
func LoadPointRun(policy string, offered, satMbps float64, cfg LoadCurveConfig) LoadPoint {
	point, _ := loadPointTraced(policy, offered, satMbps, cfg, obs.TraceConfig{}, false)
	return point
}

// loadPointTraced is LoadPointRun with an optional lifecycle tracer
// attached to the shaper and device layer (E18 reads the spans). With
// attach false it is LoadPointRun exactly; with attach true the tracer
// only reads the engine clock, so the returned LoadPoint is bit-identical
// either way — the reconciliation ObsSmoke checks.
func loadPointTraced(policy string, offered, satMbps float64, cfg LoadCurveConfig,
	tc obs.TraceConfig, attach bool) (LoadPoint, *obs.Tracer) {
	cfg.fill()
	// Experiment drivers pass literal mixes; a non-positive share or size
	// is a programming error (a zero share would flood at one packet per
	// cycle through MeanGap's +Inf), so fail loudly like the rest of the
	// harness fixtures.
	for _, prof := range cfg.Mix {
		if prof.Share <= 0 || prof.Bytes <= 0 {
			panic(fmt.Sprintf("harness: load-curve profile %v needs positive share and size (got share %v, %d bytes)",
				prof.Class, prof.Share, prof.Bytes))
		}
	}
	eng, _, cc, mc := qosDevice(policy, 17)
	shaper := qos.NewShaper(eng, cc, qos.Config{
		Capacity:   cfg.Capacity,
		QueueDepth: cfg.QueueDepth,
		Drain:      cfg.Drain,
	})
	var tr *obs.Tracer
	if attach {
		tc.Classify = func(err error) obs.Outcome { return obs.Outcome(verdict.For(err)) }
		tr = obs.NewTracer(eng, tc)
		shaper.SetTracer(tr)
		cc.SetTracer(tr)
	}

	bitsPerCycle := offered * satMbps * 1e6 / sim.DefaultFreqHz
	// The window covers cfg.BackgroundPackets expected background
	// arrivals (the background class paces the sweep's cost).
	var bgGap float64
	for _, p := range cfg.Mix {
		if p.Class == qos.Background {
			bgGap = p.MeanGap(bitsPerCycle)
		}
	}
	if bgGap == 0 {
		bgGap = cfg.Mix[len(cfg.Mix)-1].MeanGap(bitsPerCycle)
	}
	window := sim.Time(float64(cfg.BackgroundPackets) * bgGap)

	point := LoadPoint{Policy: policy, Offered: offered}
	root := arrivals.NewRand(cfg.Seed ^ 0x10AD)
	digest := arrivals.DigestInit
	// Open every class's channel before any source starts: opening drains
	// the engine, and a started source must not run ahead of the others.
	chans := make([]int, len(cfg.Mix))
	for i, prof := range cfg.Mix {
		chans[i] = openQoSChannel(eng, cc, mc, arrivalsSuite(prof))
	}
	start := eng.Now()
	until := start + window
	for idx, prof := range cfg.Mix {
		prof := prof
		ch := chans[idx]
		mk, err := arrivals.ByName(cfg.Process, prof.MeanGap(bitsPerCycle))
		if err != nil {
			panic(err) // experiment drivers pass literal process names
		}
		em := arrivals.NewEmitter(eng, prof, uint64(idx), &digest,
			func(class qos.Class, nonce, payload []byte, deadline sim.Time) {
				shaper.EncryptDeadline(class, ch, nonce, nil, payload, deadline,
					func(_ []byte, err error) {
						if !arrivals.ExpectedVerdict(err) {
							panic(err)
						}
					})
			})
		src := arrivals.NewSource(eng, mk(), root.Split(), em.Emit)
		src.Start(-1, until)
	}
	eng.Run()
	point.ArrivalDigest = digest

	toMbps := func(bytes uint64) float64 {
		return float64(bytes*8) / float64(window) * sim.DefaultFreqHz / 1e6
	}
	var offeredSum, deliveredSum float64
	var submitted, completed uint64
	for _, prof := range cfg.Mix {
		st := shaper.Stats(prof.Class)
		cell := LoadClassCell{
			Class:         prof.Class,
			OfferedMbps:   toMbps(st.Submitted * uint64(prof.Bytes)),
			DeliveredMbps: toMbps(st.Completed * uint64(prof.Bytes)),
			Submitted:     st.Submitted,
			Completed:     st.Completed,
			Shed:          st.Shed,
			Expired:       st.Expired,
			Aged:          st.Aged,
			Misses:        st.DeadlineMisses,
			P50:           shaper.LatencyPercentile(prof.Class, 50),
			P99:           shaper.LatencyPercentile(prof.Class, 99),
		}
		if st.Submitted > 0 {
			cell.LossFrac = float64(st.Submitted-st.Completed) / float64(st.Submitted)
		}
		offeredSum += cell.OfferedMbps
		deliveredSum += cell.DeliveredMbps
		submitted += st.Submitted
		completed += st.Completed
		point.Classes = append(point.Classes, cell)
	}
	point.TotalOfferedMbps = offeredSum
	point.TotalDeliveredMbps = deliveredSum
	if submitted > 0 {
		point.TotalLossFrac = float64(submitted-completed) / float64(submitted)
	}
	return point, tr
}

// arrivalsSuite converts a class profile to its device suite.
func arrivalsSuite(p arrivals.ClassProfile) core.Suite {
	return core.Suite{Family: p.Family, TagLen: p.TagLen, Priority: p.Class.Priority()}
}

// FormatLoadCurve renders the E13 sweep.
func FormatLoadCurve(r LoadCurveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Open-loop load curves (E13): loss and latency vs offered load, saturation ~%.0f Mbps\n",
		r.SaturationMbps)
	fmt.Fprintf(&b, "shaper drain %s; offered is the fraction of saturation; loss%% = arrivals never delivered\n", r.Drain)
	fmt.Fprintf(&b, "%-14s %8s | %9s %9s | %8s %10s %8s | %8s %10s %8s\n",
		"policy", "offered", "off Mbps", "del Mbps",
		"v loss%", "v p99 cyc", "v miss", "bg loss%", "bg p99 cyc", "bg shed")
	for _, p := range r.Points {
		v, bg := p.Cell(qos.Voice), p.Cell(qos.Background)
		fmt.Fprintf(&b, "%-14s %7.2fx | %9.0f %9.0f | %7.2f%% %10d %8d | %7.2f%% %10d %8d\n",
			p.Policy, p.Offered, p.TotalOfferedMbps, p.TotalDeliveredMbps,
			100*v.LossFrac, v.P99, v.Misses, 100*bg.LossFrac, bg.P99, bg.Shed)
	}
	return b.String()
}

// LoadSmokeVerdict is the CI mini-curve gate's result.
type LoadSmokeVerdict struct {
	// VoiceLossAtHalf is the voice class's loss fraction at 0.5x
	// saturation under qos-priority; Limit the gate's ceiling.
	VoiceLossAtHalf float64
	Limit           float64
	Points          []LoadPoint
}

// Pass reports whether the gate held.
func (v LoadSmokeVerdict) Pass() bool { return v.VoiceLossAtHalf <= v.Limit }

func (v LoadSmokeVerdict) String() string {
	verdict := "ok"
	if !v.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("loadsmoke %s: voice loss %.2f%% at 0.5x saturation under qos-priority (limit %.0f%%)",
		verdict, 100*v.VoiceLossAtHalf, 100*v.Limit)
}

// LoadSmoke runs the 3-point mini load curve the CI gate checks: under
// qos-priority, the voice class must lose at most 1% of its packets at
// half the saturation load. It is deliberately small (a few hundred
// packets per point) so the gate costs seconds.
func LoadSmoke() LoadSmokeVerdict {
	res := LoadCurve(LoadCurveConfig{
		Policies:          []string{"qos-priority"},
		Offered:           []float64{0.25, 0.5, 1.5},
		BackgroundPackets: 120,
	})
	v := LoadSmokeVerdict{Limit: 0.01, VoiceLossAtHalf: 1}
	for _, p := range res.Points {
		if p.Offered == 0.5 {
			v.VoiceLossAtHalf = p.Cell(qos.Voice).LossFrac
		}
	}
	v.Points = res.Points
	return v
}
