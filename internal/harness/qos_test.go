package harness

import (
	"reflect"
	"testing"

	"mccp/internal/qos"
)

// TestQoSVoiceRetention is the E12 acceptance gate: under the 4:1
// overload mix, the qos-priority policy keeps voice at >= 90% of its
// uncontended throughput while the paper's first-idle policy falls well
// below.
func TestQoSVoiceRetention(t *testing.T) {
	res := QoSTable(24)
	if res.VoiceUncontendedMbps <= 0 {
		t.Fatal("no uncontended baseline")
	}
	fi, qp := res.Retention("first-idle"), res.Retention("qos-priority")
	t.Logf("voice retention: first-idle %.0f%%, qos-priority %.0f%% (baseline %.0f Mbps)",
		100*fi, 100*qp, res.VoiceUncontendedMbps)
	if qp < 0.9 {
		t.Errorf("qos-priority retention %.2f, want >= 0.90", qp)
	}
	if fi >= 0.9 {
		t.Errorf("first-idle retention %.2f, want < 0.90 (head-of-line blocking expected)", fi)
	}
	// The reservation trades bulk throughput for voice latency; background
	// must still make real progress (not starve) under qos-priority.
	for _, s := range res.Scenarios {
		bg := s.Cell(qos.Background)
		if bg.Completed == 0 {
			t.Errorf("%s: background starved", s.Name)
		}
		if v := s.Cell(qos.Voice); v.P99 == 0 || v.P50 > v.P99 {
			t.Errorf("%s: bad voice percentiles %+v", s.Name, v)
		}
	}
	// Deadline tags: under first-idle the queued voice frames blow their
	// deadline; under qos-priority none do.
	if m := res.Scenarios[0].Cell(qos.Voice).DeadlineMisses; m == 0 {
		t.Error("first-idle: expected deadline misses under overload")
	}
	if m := res.Scenarios[1].Cell(qos.Voice).DeadlineMisses; m != 0 {
		t.Errorf("qos-priority: %d deadline misses, want 0", m)
	}
}

// TestQoSTableDeterministic: the whole E12 sweep is a pure function of
// its configuration (virtual time only, fixed seeds).
func TestQoSTableDeterministic(t *testing.T) {
	a, b := QoSTable(12), QoSTable(12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("QoSTable not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestQoSDrainComparison pins the fairness contrast: weighted-fair
// serves the background burst alongside sustained voice (bounded wait),
// strict priority makes it wait longer for voice's benefit, and both
// shed the burst overflow at the bounded class queue.
func TestQoSDrainComparison(t *testing.T) {
	rows := QoSDrainComparison(40)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]QoSDrainRow{}
	for _, r := range rows {
		byName[r.Drain] = r
	}
	strict, wfq, drr := byName[qos.DrainStrict], byName[qos.DrainWeightedFair], byName[qos.DrainDRRBytes]
	if strict.BackgroundShed != 4 || wfq.BackgroundShed != 4 || drr.BackgroundShed != 4 {
		t.Errorf("burst overflow: strict shed %d, wfq shed %d, drr shed %d, want 4 each",
			strict.BackgroundShed, wfq.BackgroundShed, drr.BackgroundShed)
	}
	if strict.BackgroundCompleted != 8 || wfq.BackgroundCompleted != 8 || drr.BackgroundCompleted != 8 {
		t.Errorf("admitted background must complete: %d/%d/%d",
			strict.BackgroundCompleted, wfq.BackgroundCompleted, drr.BackgroundCompleted)
	}
	// DRR-by-bytes under the default voice-heavy weights is at least as
	// voice-friendly as weighted-fair in *bytes* (an 8:1 byte ratio is far
	// stricter than 8:1 in packets when background packets are 8x larger),
	// but must never leave background worse off than strict priority.
	if drr.BackgroundP95 > strict.BackgroundP95 {
		t.Errorf("drr-bytes bg p95 %d worse than strict %d", drr.BackgroundP95, strict.BackgroundP95)
	}
	// Strict priority privileges voice latency; weighted-fair trades some
	// of it for background service.
	if strict.VoiceP95 >= wfq.VoiceP95 {
		t.Errorf("strict voice p95 %d should beat weighted-fair %d",
			strict.VoiceP95, wfq.VoiceP95)
	}
	if wfq.BackgroundP95 >= strict.BackgroundP95 {
		t.Errorf("weighted-fair bg p95 %d should beat strict %d",
			wfq.BackgroundP95, strict.BackgroundP95)
	}
}
