package harness

import (
	"testing"

	"mccp/internal/aes"
	"mccp/internal/cryptocore"
)

func TestTheoreticalMatchesPaperFormulas(t *testing.T) {
	// Every theoretical cell of Table II must come out of the loop
	// formulas exactly as printed (the paper rounds down).
	cases := []struct {
		fam  cryptocore.Family
		m    Mapping
		size aes.KeySize
		want float64
	}{
		{cryptocore.FamilyGCM, GCM1, aes.Key128, 496},
		{cryptocore.FamilyGCM, GCM4x1, aes.Key128, 1984},
		{cryptocore.FamilyGCM, GCM1, aes.Key192, 426},
		{cryptocore.FamilyGCM, GCM1, aes.Key256, 374},
		{cryptocore.FamilyCCM, CCM1, aes.Key128, 233},
		{cryptocore.FamilyCCM, CCM2, aes.Key128, 442},
		{cryptocore.FamilyCCM, CCM2x2, aes.Key128, 884},
		{cryptocore.FamilyCCM, CCM1, aes.Key192, 202},
		{cryptocore.FamilyCCM, CCM2, aes.Key192, 386},
		{cryptocore.FamilyCCM, CCM1, aes.Key256, 178},
		{cryptocore.FamilyCCM, CCM2, aes.Key256, 342},
	}
	for _, c := range cases {
		got := TheoreticalMbps(c.fam, c.m, c.size)
		// The paper rounds the per-core figure down before multiplying by
		// the stream count, so allow up to one Mbps per stream of slack.
		slack := float64(c.m.Streams)
		if got < c.want || got >= c.want+slack+0.5 {
			t.Errorf("%v %s %v: theoretical = %.2f, want [%.0f, %.0f)",
				c.fam, c.m.Name, c.size, got, c.want, c.want+slack+0.5)
		}
	}
}

func TestLoopCycleFormulas(t *testing.T) {
	// T_GCM = 49, T_CCM2 = 55, T_CCM1 = 104 (128-bit keys); +8/+16 per AES.
	if got := TheoreticalLoopCycles(cryptocore.FamilyGCM, false, aes.Key128); got != 49 {
		t.Errorf("T_GCM = %v", got)
	}
	if got := TheoreticalLoopCycles(cryptocore.FamilyCCM, true, aes.Key128); got != 55 {
		t.Errorf("T_CCM2 = %v", got)
	}
	if got := TheoreticalLoopCycles(cryptocore.FamilyCCM, false, aes.Key128); got != 104 {
		t.Errorf("T_CCM1 = %v", got)
	}
	if got := TheoreticalLoopCycles(cryptocore.FamilyGCM, false, aes.Key192); got != 57 {
		t.Errorf("T_GCM/192 = %v", got)
	}
	if got := TheoreticalLoopCycles(cryptocore.FamilyCCM, false, aes.Key256); got != 136 {
		t.Errorf("T_CCM1/256 = %v", got)
	}
}

// TestMeasuredShapeGCM128 is the headline shape check: the measured 2 KB
// figures must sit in the right order and within ~12% of the paper's 2 KB
// column for the flagship cells.
func TestMeasuredShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device measurement")
	}
	const packets = 10
	within := func(name string, got, want, tolPct float64) {
		lo, hi := want*(1-tolPct/100), want*(1+tolPct/100)
		if got < lo || got > hi {
			t.Errorf("%s = %.0f Mbps, want %.0f ±%.0f%%", name, got, want, tolPct)
		} else {
			t.Logf("%s = %.0f Mbps (paper 2KB: %.0f)", name, got, want)
		}
	}
	// Paper methodology: single-instance end-to-end throughput, scaled by
	// the number of parallel instances (see TableIIRow.MeasuredMbps).
	gcm1 := MeasureThroughput(cryptocore.FamilyGCM, GCM1, 16, PacketBytes, packets)
	ccm1 := MeasureThroughput(cryptocore.FamilyCCM, CCM1, 16, PacketBytes, packets)
	ccm2 := MeasureThroughput(cryptocore.FamilyCCM, CCM2, 16, PacketBytes, packets)
	gcm4 := 4 * gcm1
	ccm4 := 4 * ccm1
	ccm22 := 2 * ccm2

	within("GCM 1-core", gcm1, 437, 10)
	within("GCM 4x1", gcm4, 1748, 10)
	within("CCM 1-core", ccm1, 214, 10)
	within("CCM 2-core", ccm2, 393, 10)
	within("CCM 4x1", ccm4, 856, 10)
	within("CCM 2x2", ccm22, 786, 10)

	// Ordering claims from §VII.A: one-core-per-packet beats two-core
	// splitting for throughput; splitting beats a single core.
	if !(ccm4 > ccm22) {
		t.Errorf("CCM 4x1 (%.0f) must beat 2x2 (%.0f): the paper's packet-on-one-core advantage", ccm4, ccm22)
	}
	if !(ccm2 > ccm1*1.6) {
		t.Errorf("CCM 2-core (%.0f) should be ~1.8x one core (%.0f)", ccm2, ccm1)
	}

	// The contention-aware system measurement (not available to the paper)
	// must still clear 3x on four streams for GCM.
	gcmSys := MeasureThroughput(cryptocore.FamilyGCM, GCM4x1, 16, PacketBytes, 4*packets)
	if gcmSys < 3*gcm1 {
		t.Errorf("system GCM 4x1 = %.0f, want >= 3x single (%.0f)", gcmSys, 3*gcm1)
	}
	t.Logf("system-level GCM 4x1 with crossbar contention: %.0f Mbps", gcmSys)
}

// TestLatencyTradeoffCCM verifies §VII.A's observation: CCM 4x1 delivers
// about twice the throughput of 2x2, at about twice the packet latency.
func TestLatencyTradeoffCCM(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device measurement")
	}
	four := MeasureLatency(CCM4x1, 12)
	two := MeasureLatency(CCM2x2, 12)
	ratioLat := four.MeanLatencyCyc / two.MeanLatencyCyc
	if ratioLat < 1.5 || ratioLat > 2.3 {
		t.Errorf("latency ratio 4x1/2x2 = %.2f, want ~2 (paper: 'almost two times greater')", ratioLat)
	}
	if four.ThroughputMbps <= two.ThroughputMbps {
		t.Errorf("4x1 throughput (%.0f) must exceed 2x2 (%.0f)", four.ThroughputMbps, two.ThroughputMbps)
	}
	t.Logf("4x1: %.0f Mbps, mean latency %.0f cyc; 2x2: %.0f Mbps, mean latency %.0f cyc",
		four.ThroughputMbps, four.MeanLatencyCyc, two.ThroughputMbps, two.MeanLatencyCyc)
}
