// Package harness runs the paper's experiments against the simulated MCCP
// and formats the results as the tables the paper prints. Every table and
// quantitative claim of the evaluation section has a runner here; the root
// bench_test.go and cmd/benchtables expose them.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"mccp/internal/aes"
	"mccp/internal/cluster"
	"mccp/internal/core"
	"mccp/internal/cryptocore"
	"mccp/internal/fpga"
	"mccp/internal/radio"
	"mccp/internal/sim"
)

// HostStats records what a measurement cost the host machine: wall-clock
// time and heap allocations. Unlike every virtual-time figure in this
// package it is nondeterministic and informational only (the CI gate
// ignores host metrics; see internal/benchfmt).
type HostStats struct {
	WallSeconds float64
	Allocs      uint64
}

// measureHost runs fn and captures its wall-clock and allocation cost.
func measureHost(fn func()) HostStats {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	return HostStats{WallSeconds: wall, Allocs: m1.Mallocs - m0.Mallocs}
}

// Mapping is a Table II column: how packets map onto cores.
type Mapping struct {
	Name string
	// Streams is the number of packets kept in flight concurrently.
	Streams int
	// Split marks two-core CCM processing.
	Split bool
}

// The paper's six Table II mappings.
var (
	GCM1   = Mapping{Name: "1 core", Streams: 1}
	GCM4x1 = Mapping{Name: "4x1 cores", Streams: 4}
	CCM1   = Mapping{Name: "1 core", Streams: 1}
	CCM4x1 = Mapping{Name: "4x1 cores", Streams: 4}
	CCM2   = Mapping{Name: "2 cores", Streams: 1, Split: true}
	CCM2x2 = Mapping{Name: "2x2 cores", Streams: 2, Split: true}
)

// TheoreticalLoopCycles returns the paper's per-block loop bounds (§VII.A):
// T_GCM = T_SAES+T_FAES, T_CCM,2cores = +T_XOR, T_CCM,1core = T_CTR+T_CBC,
// with eight extra cycles per AES pass for each key-size step.
func TheoreticalLoopCycles(family cryptocore.Family, split bool, size aes.KeySize) float64 {
	aesC := float64(size.CoreCycles()) // 44 / 52 / 60
	switch {
	case family == cryptocore.FamilyGCM:
		return aesC + 5
	case split:
		return aesC + 5 + 6
	default:
		return (aesC + 5) + (aesC + 5 + 6)
	}
}

// TheoreticalMbps is the Table II "theoretical" column: 128 bits per loop
// iteration per engaged stream at 190 MHz.
func TheoreticalMbps(family cryptocore.Family, m Mapping, size aes.KeySize) float64 {
	perCore := 128.0 / TheoreticalLoopCycles(family, m.Split, size) * (sim.DefaultFreqHz / 1e6)
	return perCore * float64(m.Streams)
}

// TableIIRow is one cell group of Table II.
type TableIIRow struct {
	Family  cryptocore.Family
	Mapping Mapping
	KeyBits int
	// TheoreticalMbps is computed from the loop formulas.
	TheoreticalMbps float64
	// MeasuredMbps follows the paper's 2 KB-column methodology: the
	// end-to-end throughput of a single packet instance on its core
	// mapping, multiplied by the number of parallel instances.
	MeasuredMbps float64
	// SystemMbps is the additional full-contention measurement this model
	// enables: all instances in flight against the shared 32-bit crossbar
	// and control protocol. The paper's methodology does not capture this
	// serialization, so SystemMbps < MeasuredMbps on multi-stream rows.
	SystemMbps float64
	// PaperTheoreticalMbps / Paper2KBMbps are Table II's printed values.
	PaperTheoreticalMbps float64
	Paper2KBMbps         float64
	// HostMBs and AllocsPerPacket describe what producing the SystemMbps
	// measurement cost the simulator on this host: payload megabytes
	// simulated per wall second and heap allocations per packet
	// (nondeterministic, informational only).
	HostMBs         float64
	AllocsPerPacket float64
}

// paperTableII holds the printed values, keyed by family/mapping/keybits.
var paperTableII = map[string][2]float64{
	"GCM/1 core/128":    {496, 437},
	"GCM/4x1 cores/128": {1984, 1748},
	"GCM/1 core/192":    {426, 382},
	"GCM/4x1 cores/192": {1704, 1528},
	"GCM/1 core/256":    {374, 337},
	"GCM/4x1 cores/256": {1496, 1348},
	"CCM/1 core/128":    {233, 214},
	"CCM/4x1 cores/128": {932, 856},
	"CCM/2 cores/128":   {442, 393},
	"CCM/2x2 cores/128": {884, 786},
	"CCM/1 core/192":    {202, 187},
	"CCM/4x1 cores/192": {808, 748},
	"CCM/2 cores/192":   {386, 348},
	"CCM/2x2 cores/192": {772, 696},
	"CCM/1 core/256":    {178, 171},
	"CCM/4x1 cores/256": {712, 684},
	"CCM/2 cores/256":   {342, 313},
	"CCM/2x2 cores/256": {684, 626},
}

// PacketBytes is Table II's packet size.
const PacketBytes = 2048

// MeasureThroughput runs packets of the given size through a full device
// and returns aggregate Mbps. Streams packets are kept in flight
// back-to-back; total is the number of packets to time.
func MeasureThroughput(family cryptocore.Family, m Mapping, keyBytes, packetBytes, total int) float64 {
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{Cores: 4, QueueRequests: true})
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, 99)
	eng.Run()

	keyID, _, err := mc.ProvisionKey(keyBytes)
	if err != nil {
		panic(err)
	}
	suite := core.Suite{Family: family, TagLen: 16, SplitCCM: m.Split}
	ch := 0
	cc.OpenChannel(suite, keyID, func(c int, e error) {
		if e != nil {
			panic(e)
		}
		ch = c
	})
	eng.Run()

	nonce := make([]byte, 12)
	if family == cryptocore.FamilyCCM {
		nonce = make([]byte, 13)
	}
	payload := make([]byte, packetBytes)

	// Warm the key caches and firmware paths with one packet per stream.
	warm := m.Streams
	for i := 0; i < warm; i++ {
		cc.Encrypt(ch, nonce, nil, payload, func(_ []byte, e error) {
			if e != nil {
				panic(e)
			}
		})
	}
	eng.Run()

	start := eng.Now()
	completed := 0
	launched := 0
	var launch func()
	launch = func() {
		if launched >= total {
			return
		}
		launched++
		cc.Encrypt(ch, nonce, nil, payload, func(_ []byte, e error) {
			if e != nil {
				panic(e)
			}
			completed++
			launch()
		})
	}
	for i := 0; i < m.Streams; i++ {
		launch()
	}
	eng.Run()
	if completed != total {
		panic(fmt.Sprintf("harness: %d/%d packets completed", completed, total))
	}
	cycles := eng.Now() - start
	return eng.ThroughputMbps(total*packetBytes*8, cycles)
}

// TableII regenerates the paper's Table II. packets controls measurement
// length per cell (20 gives stable numbers in ~2 s).
func TableII(packets int) []TableIIRow {
	var rows []TableIIRow
	type cell struct {
		fam cryptocore.Family
		m   Mapping
	}
	cells := []cell{
		{cryptocore.FamilyGCM, GCM1}, {cryptocore.FamilyGCM, GCM4x1},
		{cryptocore.FamilyCCM, CCM1}, {cryptocore.FamilyCCM, CCM4x1},
		{cryptocore.FamilyCCM, CCM2}, {cryptocore.FamilyCCM, CCM2x2},
	}
	for _, kb := range []int{16, 24, 32} {
		for _, c := range cells {
			key := fmt.Sprintf("%v/%s/%d", c.fam, c.m.Name, kb*8)
			paper := paperTableII[key]
			single := Mapping{Name: c.m.Name, Streams: 1, Split: c.m.Split}
			var perInstance, system float64
			total := packets
			host := measureHost(func() {
				perInstance = MeasureThroughput(c.fam, single, kb, PacketBytes, packets)
				system = perInstance
				if c.m.Streams > 1 {
					total = packets * c.m.Streams
					system = MeasureThroughput(c.fam, c.m, kb, PacketBytes, total)
					total += packets
				}
			})
			row := TableIIRow{
				Family:               c.fam,
				Mapping:              c.m,
				KeyBits:              kb * 8,
				TheoreticalMbps:      TheoreticalMbps(c.fam, c.m, aes.KeySize(kb)),
				MeasuredMbps:         perInstance * float64(c.m.Streams),
				SystemMbps:           system,
				PaperTheoreticalMbps: paper[0],
				Paper2KBMbps:         paper[1],
				AllocsPerPacket:      float64(host.Allocs) / float64(total),
			}
			if host.WallSeconds > 0 {
				row.HostMBs = float64(total) * PacketBytes / host.WallSeconds / 1e6
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatTableII renders rows in the paper's layout, with the simulator's
// own host-side cost (payload MB/s and allocations per packet) appended.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: MCCP encryption throughput at 190 MHz (Mbps)\n")
	fmt.Fprintf(&b, "%-8s %-12s %-5s | %12s %12s %12s | %10s %10s | %9s %10s\n",
		"Mode", "Mapping", "Key", "theor(model)", "2KB(model)", "system", "theor(ppr)", "2KB(ppr)",
		"host MB/s", "allocs/pkt")
	for _, r := range rows {
		fmt.Fprintf(&b, "AES-%-4v %-12s %-5d | %12.0f %12.0f %12.0f | %10.0f %10.0f | %9.1f %10.0f\n",
			r.Family, r.Mapping.Name, r.KeyBits,
			r.TheoreticalMbps, r.MeasuredMbps, r.SystemMbps, r.PaperTheoreticalMbps, r.Paper2KBMbps,
			r.HostMBs, r.AllocsPerPacket)
	}
	return b.String()
}

// LoopTimeRow is one steady-state loop measurement (experiment E1).
type LoopTimeRow struct {
	Name           string
	MeasuredCycles float64
	PaperCycles    float64 // the §VII.A formula value
}

// MeasureLoopTimes measures firmware steady-state cycles per block by
// differencing a 128-block and a 64-block packet on a single core, for
// each mode/key-size combination with a published bound.
func MeasureLoopTimes() []LoopTimeRow {
	measure := func(family cryptocore.Family, split bool, keyBytes int) float64 {
		run := func(blocks int) sim.Time {
			eng := sim.NewEngine()
			dev := core.New(eng, core.Config{Cores: 4})
			cc := radio.NewCommController(dev)
			mc := radio.NewMainController(dev, 7)
			eng.Run()
			keyID, _, _ := mc.ProvisionKey(keyBytes)
			ch := 0
			cc.OpenChannel(core.Suite{Family: family, TagLen: 16, SplitCCM: split}, keyID,
				func(c int, _ error) { ch = c })
			eng.Run()
			nonce := make([]byte, 12)
			if family == cryptocore.FamilyCCM {
				nonce = make([]byte, 13)
			}
			// Warm-up packet absorbs the key expansion.
			cc.Encrypt(ch, nonce, nil, make([]byte, 256), func(_ []byte, _ error) {})
			eng.Run()
			start := eng.Now()
			cc.Encrypt(ch, nonce, nil, make([]byte, 16*blocks), func(_ []byte, _ error) {})
			eng.Run()
			return eng.Now() - start
		}
		return float64(run(128)-run(64)) / 64
	}

	var rows []LoopTimeRow
	for _, k := range []struct {
		bytes int
		bits  int
	}{{16, 128}, {24, 192}, {32, 256}} {
		aesC := float64(aes.KeySize(k.bytes).CoreCycles())
		rows = append(rows,
			LoopTimeRow{
				Name:           fmt.Sprintf("T_GCMloop (%d-bit key)", k.bits),
				MeasuredCycles: measure(cryptocore.FamilyGCM, false, k.bytes),
				PaperCycles:    aesC + 5,
			},
			LoopTimeRow{
				Name:           fmt.Sprintf("T_CCMloop 2 cores (%d-bit key)", k.bits),
				MeasuredCycles: measure(cryptocore.FamilyCCM, true, k.bytes),
				PaperCycles:    aesC + 11,
			},
			LoopTimeRow{
				Name:           fmt.Sprintf("T_CCMloop 1 core (%d-bit key)", k.bits),
				MeasuredCycles: measure(cryptocore.FamilyCCM, false, k.bytes),
				PaperCycles:    2*aesC + 16,
			},
		)
	}
	return rows
}

// TableIIIRow is one comparison line (Table III).
type TableIIIRow struct {
	Implementation string
	Platform       string
	Programmable   string
	Algorithm      string
	MbpsPerMHz     float64
	FreqMHz        float64
	Slices         int
	BRAMs          int
}

// OurTableIIIRows measures this MCCP's Mbps/MHz for GCM and CCM on the
// four-core mapping and attaches the resource model's area.
func OurTableIIIRows(packets int) []TableIIIRow {
	gcm := MeasureThroughput(cryptocore.FamilyGCM, GCM4x1, 16, PacketBytes, packets)
	ccm := MeasureThroughput(cryptocore.FamilyCCM, CCM4x1, 16, PacketBytes, packets)
	d := fpga.MCCPDesign(4)
	return []TableIIIRow{{
		Implementation: "This work (model)",
		Platform:       "v4-SX35-11",
		Programmable:   "Yes (AES modes)",
		Algorithm:      "GCM/CCM",
		MbpsPerMHz:     gcm / (sim.DefaultFreqHz / 1e6),
		FreqMHz:        fpga.PaperFrequencyMHz,
		Slices:         d.Slices(),
		BRAMs:          d.BRAMs(),
	}, {
		Implementation: "This work (model, CCM)",
		Platform:       "v4-SX35-11",
		Programmable:   "Yes (AES modes)",
		Algorithm:      "CCM",
		MbpsPerMHz:     ccm / (sim.DefaultFreqHz / 1e6),
		FreqMHz:        fpga.PaperFrequencyMHz,
		Slices:         d.Slices(),
		BRAMs:          d.BRAMs(),
	}}
}

// ClusterScaling runs the mixed multi-standard workload on 1/2/4/8-shard
// clusters (experiment E11: the sharded service layer's head-room beyond
// one device) and returns the sweep. packets sizes the workload; 256
// gives stable figures in a few seconds. Packet generation runs on a
// prefetch goroutine (identical draw order and bytes, so every
// virtual-time figure matches the synchronous path) so it overlaps shard
// simulation on multi-core hosts.
func ClusterScaling(packets int) []cluster.ScalingRow {
	rows, err := cluster.RunScaling([]int{1, 2, 4, 8}, cluster.WorkloadConfig{
		Router:        cluster.RouterLeastLoaded,
		QueueRequests: true,
		Packets:       packets,
		Sessions:      16,
		Seed:          1,
		BatchWindow:   128,
		PrefetchDepth: 256,
	})
	if err != nil {
		panic(err)
	}
	return rows
}

// ClusterSweep is the scale-out sweep mode: per-session generators,
// grouped per shard so packet generation itself parallelizes, driving
// packets (a million and beyond stays tractable after the pipelined
// dispatch and zero-alloc packet path) through 1/2/4/8-shard clusters.
// The workload differs from ClusterScaling's shared-generator stream but
// is equally deterministic: two sweeps with the same arguments are
// byte-identical.
func ClusterSweep(packets int) []cluster.ScalingRow {
	rows, err := cluster.RunScaling([]int{1, 2, 4, 8}, cluster.WorkloadConfig{
		Router:        cluster.RouterLeastLoaded,
		QueueRequests: true,
		Packets:       packets,
		Sessions:      32,
		Seed:          1,
		BatchWindow:   256,
		PerShardGen:   true,
	})
	if err != nil {
		panic(err)
	}
	return rows
}

// FormatClusterScaling renders the sweep as a table.
func FormatClusterScaling(rows []cluster.ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %10s\n", "shards", "aggregate Mbps", "cluster cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %14.0f %14d %9.2fx\n", r.Shards, r.AggregateSimMbps, r.ClusterCycles, r.Speedup)
	}
	return b.String()
}

// LatencyStats summarizes experiment E5 (the paper's 4x1 vs 2x2 latency
// observation: one-core packets double the per-packet latency).
type LatencyStats struct {
	Mapping        string
	ThroughputMbps float64
	MeanLatencyCyc float64
	MaxLatencyCyc  sim.Time
}

// MeasureLatency runs CCM packets under a mapping and reports mean/max
// dispatch-to-result latency alongside throughput.
func MeasureLatency(m Mapping, packets int) LatencyStats {
	eng := sim.NewEngine()
	dev := core.New(eng, core.Config{Cores: 4, QueueRequests: true})
	cc := radio.NewCommController(dev)
	mc := radio.NewMainController(dev, 5)
	eng.Run()
	keyID, _, _ := mc.ProvisionKey(16)
	ch := 0
	cc.OpenChannel(core.Suite{Family: cryptocore.FamilyCCM, TagLen: 16, SplitCCM: m.Split}, keyID,
		func(c int, _ error) { ch = c })
	eng.Run()

	nonce := make([]byte, 13)
	payload := make([]byte, PacketBytes)
	var lats []sim.Time
	start := eng.Now()
	completed := 0
	launched := 0
	var launch func()
	launch = func() {
		if launched >= packets {
			return
		}
		launched++
		sent := eng.Now()
		cc.Encrypt(ch, nonce, nil, payload, func(_ []byte, e error) {
			if e != nil {
				panic(e)
			}
			lats = append(lats, eng.Now()-sent)
			completed++
			launch()
		})
	}
	for i := 0; i < m.Streams; i++ {
		launch()
	}
	eng.Run()
	cycles := eng.Now() - start
	var sum, max sim.Time
	for _, l := range lats {
		sum += l
		if l > max {
			max = l
		}
	}
	return LatencyStats{
		Mapping:        m.Name,
		ThroughputMbps: eng.ThroughputMbps(packets*PacketBytes*8, cycles),
		MeanLatencyCyc: float64(sum) / float64(len(lats)),
		MaxLatencyCyc:  max,
	}
}
